//go:build !race

package main

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool deliberately drops items to widen race coverage, so
// allocation-count assertions do not hold.
const raceEnabled = false
