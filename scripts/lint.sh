#!/usr/bin/env bash
# Repo lint driver: runs every checker the environment supports and
# prints an explicit summary of what ran, so a skipped checker is
# visible instead of a silent gap.
#
#   go vet       — always
#   dcpimlint    — always (the in-repo analyzer suite; JSON artifact to
#                  $DCPIMLINT_JSON when set)
#   staticcheck  — pinned version; installed on demand when the module
#                  proxy is reachable
#   govulncheck  — pinned version; needs the network for the vuln DB
#
# Off the network (local dev containers), the external checkers are
# skipped with a notice. In CI ($CI set) a skip is a hard failure: the
# lint leg must never green-light a commit it only half-checked.
set -u -o pipefail

STATICCHECK_VERSION=2024.1.1
GOVULNCHECK_VERSION=v1.1.4

ran=()
skipped=()
failed=()

run_checker() {
    local name="$1"
    shift
    echo "=== ${name}"
    if "$@"; then
        ran+=("${name}")
    else
        failed+=("${name}")
    fi
}

skip_checker() {
    local name="$1" why="$2"
    skipped+=("${name}")
    if [[ -n "${CI:-}" ]]; then
        echo "=== ${name}: REQUIRED in CI but unavailable (${why})"
        failed+=("${name}")
    else
        echo "=== ${name}: skipped (${why})"
    fi
}

# Network probe: `go install` of the pinned tools is the only step that
# needs the proxy, so test exactly that capability.
online() {
    [[ "${GOFLAGS:-}" != *"-mod=vendor"* ]] || return 1
    GOPROXY=$(go env GOPROXY)
    [[ "${GOPROXY}" != "off" ]] || return 1
    command -v curl >/dev/null 2>&1 || return 0 # can't probe; let go install decide
    curl -fsI --max-time 10 https://proxy.golang.org >/dev/null 2>&1
}

ensure_tool() {
    local bin="$1" mod="$2"
    command -v "${bin}" >/dev/null 2>&1 && return 0
    online || return 1
    go install "${mod}" >/dev/null 2>&1 && command -v "${bin}" >/dev/null 2>&1
}

run_checker "go vet" go vet ./...

if [[ -n "${DCPIMLINT_JSON:-}" ]]; then
    mkdir -p "$(dirname "${DCPIMLINT_JSON}")"
    echo "=== dcpimlint (JSON artifact: ${DCPIMLINT_JSON})"
    if go run ./cmd/dcpimlint -json ./... >"${DCPIMLINT_JSON}"; then
        ran+=("dcpimlint")
    else
        failed+=("dcpimlint")
    fi
    # Human-readable echo of the findings for the log.
    go run ./cmd/dcpimlint ./... || true
else
    run_checker "dcpimlint" go run ./cmd/dcpimlint ./...
fi

if ensure_tool staticcheck "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}"; then
    run_checker "staticcheck" staticcheck ./...
else
    skip_checker "staticcheck" "offline and not preinstalled; pinned @${STATICCHECK_VERSION}"
fi

if ensure_tool govulncheck "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}"; then
    run_checker "govulncheck" govulncheck ./...
else
    skip_checker "govulncheck" "offline and not preinstalled; pinned @${GOVULNCHECK_VERSION}"
fi

echo
echo "lint summary:"
echo "  ran:     ${ran[*]:-none}"
echo "  skipped: ${skipped[*]:-none}"
echo "  failed:  ${failed[*]:-none}"

if ((${#failed[@]} > 0)); then
    exit 1
fi
