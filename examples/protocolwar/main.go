// Protocolwar: head-to-head of all four simulated transports on the same
// trace — the paper's central claim in one screen. At load 0.6 on the
// 144-host leaf-spine with the Web Search workload, dcPIM should post
// near-1 short-flow slowdowns at both mean and p99 while delivering as
// many bytes as the best baseline.
package main

import (
	"fmt"

	"dcpim/internal/experiments"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func main() {
	tp := topo.DefaultLeafSpine().Build()
	horizon := 500 * sim.Microsecond
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
		Dist: workload.WebSearch(), Horizon: horizon, Seed: 17,
	}.Generate()
	fmt.Printf("Web Search all-to-all at load 0.6 on %s: %d flows, %.1f MB\n\n",
		tp.Name, len(tr.Flows), float64(tr.OfferedBytes)/1e6)

	fmt.Printf("%-12s %10s %10s %10s %10s %10s %8s\n",
		"protocol", "short-mean", "short-p99", "all-mean", "delivered", "completed", "drops")
	for _, proto := range []string{
		experiments.DCPIM, experiments.HomaAeolus,
		experiments.NDP, experiments.HPCC, experiments.PHost,
	} {
		res := experiments.Run(experiments.RunSpec{
			Protocol: proto, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: 18,
		})
		short := stats.Summarize(res.Records, func(r stats.FlowRecord) bool {
			return r.Size <= tp.BDP()
		})
		all := stats.Summarize(res.Records, nil)
		fmt.Printf("%-12s %10.2f %10.2f %10.2f %9.1f%% %9.1f%% %8d\n",
			proto, short.Mean, short.P99, all.Mean,
			100*res.Utilization(), 100*res.Completion(),
			res.Counters.DataDrops+res.Counters.AeolusDrops)
	}
	fmt.Println("\nexpected shape (paper Fig. 3): dcPIM lowest short-flow mean and p99 while")
	fmt.Println("matching the best baseline's delivered bytes; NDP worst tail; HPCC in between.")
}
