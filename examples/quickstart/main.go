// Quickstart: simulate dcPIM on an 8-host leaf-spine with a mixed
// workload and print per-flow results. This is the smallest end-to-end
// use of the library: build a topology, a fabric, attach the protocol,
// inject flows, run, and read the collector.
package main

import (
	"fmt"

	"dcpim/internal/core"
	"dcpim/internal/netsim"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func main() {
	// 1. A deterministic event engine: same seed ⇒ same run, always.
	eng := sim.NewEngine(42)

	// 2. A topology: 2 racks × 4 hosts, 100G access, 400G core — a small
	// version of the paper's evaluation fabric.
	tp := topo.SmallLeafSpine().Build()
	fmt.Printf("topology %s: BDP=%dB dataRTT=%v ctrlRTT=%v\n\n",
		tp.Name, tp.BDP(), tp.DataRTT(), tp.CtrlRTT())

	// 3. A fabric with per-packet spraying (dcPIM's preferred dataplane).
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})

	// 4. dcPIM on every host, sharing one stats collector.
	col := stats.NewCollector(10 * sim.Microsecond)
	core.Attach(fab, core.DefaultConfig(), col)
	fab.Start()

	// 5. A handful of flows: a short flow (bypasses matching), a medium
	// flow (matched, pays one matching phase of latency), and a long
	// flow (matched, amortizes it), plus a small incast.
	flows := []workload.Flow{
		{ID: 1, Src: 0, Dst: 5, Size: 20_000, Arrival: 0},                              // short
		{ID: 2, Src: 1, Dst: 6, Size: 200_000, Arrival: 0},                             // medium
		{ID: 3, Src: 2, Dst: 7, Size: 5_000_000, Arrival: 0},                           // long
		{ID: 4, Src: 3, Dst: 5, Size: 10_000, Arrival: sim.Time(50 * sim.Microsecond)}, // short, contended
		{ID: 5, Src: 4, Dst: 5, Size: 10_000, Arrival: sim.Time(50 * sim.Microsecond)}, // short, contended
		{ID: 6, Src: 6, Dst: 0, Size: 1_000_000, Arrival: sim.Time(100 * sim.Microsecond)},
	}
	fab.Inject(&workload.Trace{Flows: flows})

	// 6. Run for 2 simulated milliseconds.
	eng.Run(sim.Time(2 * sim.Millisecond))

	// 7. Read the results.
	fmt.Printf("%-4s %-5s %-5s %12s %12s %12s %9s\n",
		"flow", "src", "dst", "size(B)", "fct", "optimal", "slowdown")
	for _, r := range col.Records() {
		fmt.Printf("%-4d %-5d %-5d %12d %12v %12v %9.2f\n",
			r.ID, r.Src, r.Dst, r.Size, r.FCT(), r.Optimal, r.Slowdown())
	}
	fmt.Printf("\ncompleted %d/%d flows, %d bytes delivered, %d simulation events\n",
		col.Completed(), col.Started(), col.DeliveredBytes(), eng.Events())
}
