// Testbed: the paper's §4.2 evaluation in miniature — dcPIM against
// kernel-style transports (DCTCP, TCP Cubic) on the simulated 32-host
// 10 Gbps cluster with software host stacks. Prints short-flow and
// long-flow slowdowns plus dcPIM's advantage factors (the paper reports
// 21–43× mean and 34–76× p99 for short flows).
package main

import (
	"fmt"

	"dcpim/internal/experiments"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func main() {
	tp := topo.TestbedLeafSpine().Build()
	horizon := 10 * sim.Millisecond
	fmt.Printf("testbed %s: %d hosts at 10G, cRTT %v, BDP %d B\n\n",
		tp.Name, tp.NumHosts, tp.CtrlRTT(), tp.BDP())

	type row struct {
		shortMean, shortP99, longMean float64
	}
	rows := map[string]row{}
	protos := []string{experiments.DCPIM, experiments.DCTCP, experiments.Cubic}
	for _, proto := range protos {
		tr := workload.AllToAllConfig{
			Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.5,
			Dist: workload.WebSearch(), Horizon: horizon, Seed: 23,
		}.Generate()
		res := experiments.Run(experiments.RunSpec{
			Protocol: proto, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: 24,
		})
		short := stats.Summarize(res.Records, func(r stats.FlowRecord) bool {
			return r.Size <= tp.BDP()
		})
		long := stats.Summarize(res.Records, func(r stats.FlowRecord) bool {
			return r.Size > 16*tp.BDP()
		})
		rows[proto] = row{short.Mean, short.P99, long.Mean}
		fmt.Printf("%-8s short flows: mean %.2f p99 %.2f   long flows: mean %.2f   (completed %d/%d)\n",
			proto, short.Mean, short.P99, long.Mean, res.Col.Completed(), res.Started)
	}

	d := rows[experiments.DCPIM]
	fmt.Println()
	for _, proto := range protos[1:] {
		r := rows[proto]
		fmt.Printf("dcPIM advantage vs %-6s: %.0fx mean, %.0fx p99 (short flows); %.1fx long-flow mean\n",
			proto, r.shortMean/d.shortMean, r.shortP99/d.shortP99, r.longMean/d.longMean)
	}
	fmt.Println("\npaper (§4.2): 21-43x mean, 34-76x p99 short-flow advantage; 1.71-2.61x long-flow throughput")
}
