// Incast: the paper's motivating stress scenario — a parameter-server
// style 50:1 incast colocated with a MapReduce-style shuffle (Figure 4a).
// The example runs dcPIM and Homa Aeolus side by side on the 144-host
// leaf-spine and prints the utilization timeline of the loaded rack so
// you can watch dcPIM's matching absorb the bursts.
package main

import (
	"fmt"

	"dcpim/internal/experiments"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func main() {
	tp := topo.DefaultLeafSpine().Build()
	horizon := 600 * sim.Microsecond

	// Shuffle: rack 0's 16 hosts send all-to-all to rack 1's 16 hosts.
	senders := make([]int, 16)
	receivers := make([]int, 16)
	for i := range senders {
		senders[i], receivers[i] = i, 16+i
	}
	var others []int
	for h := 32; h < tp.NumHosts; h++ {
		others = append(others, h)
	}
	shuffle := workload.SubsetAllToAll{
		Senders: senders, Receivers: receivers,
		HostRate: tp.HostRate, Load: 0.9,
		Dist:    workload.FixedDist{Size: 500 << 10, Tag: "shuffle"},
		Horizon: horizon, Seed: 7,
	}.Generate()

	// Incast: every 100 µs, 50 of the other hosts blast 128 KB at one
	// of the shuffle receivers.
	incast := workload.IncastConfig{
		Senders: others, Receivers: receivers[:1], Fanin: 50,
		BurstSize: 128 << 10, Interval: 100 * sim.Microsecond,
		Bursts: 6, Horizon: horizon, Seed: 8,
	}.Generate()
	trace := workload.Merge(shuffle, incast)

	fmt.Printf("bursty microbenchmark on %s: %d shuffle+incast flows, %.1f MB\n\n",
		tp.Name, len(trace.Flows), float64(trace.OfferedBytes)/1e6)

	for _, proto := range []string{experiments.DCPIM, experiments.HomaAeolus} {
		res := experiments.Run(experiments.RunSpec{
			Protocol: proto, Topo: tp, Trace: trace,
			Horizon: horizon, Seed: 9, BinWidth: 50 * sim.Microsecond,
		})
		series := res.Col.UtilizationSeries(16, tp.HostRate) // 16 loaded downlinks
		fmt.Printf("%-12s drops=%-5d aeolus-drops=%-5d  utilization per 50us:\n  ",
			proto, res.Counters.DataDrops, res.Counters.AeolusDrops)
		for _, u := range series {
			fmt.Printf("%4.2f ", u)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("expected shape: dcPIM converges within tens of µs and holds high utilization;")
	fmt.Println("Homa Aeolus sheds unscheduled incast packets and converges more slowly.")
}
