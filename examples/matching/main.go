// Matching: a standalone walk through the paper's theory, no packet
// simulation involved. It reruns Figure 1's 4×4 PIM example, then
// demonstrates Theorem 1 numerically: on sparse graphs, a constant number
// of rounds reaches almost the converged matching size, independent of n.
package main

import (
	"fmt"
	"math/rand"

	"dcpim/internal/matching"
)

func main() {
	// ---- Figure 1's example ----
	// Inputs (senders): blue(0)→{1,3,4}, red(1)→{2,4}, green(2)→{1},
	// yellow(3)→{1,3}; outputs 1..4 are receivers 0..3 here.
	g, err := matching.NewGraph(4, 4, [][]int{{0, 2, 3}, {1, 3}, {0}, {0, 2}})
	if err != nil {
		panic(err)
	}
	names := []string{"blue", "red", "green", "yellow"}
	m := matching.ConvergedPIM(g, rand.New(rand.NewSource(3)))
	fmt.Println("Figure 1 example, PIM run to convergence:")
	for s, r := range m.ReceiverOf {
		if r >= 0 {
			fmt.Printf("  %-6s matched to output %d\n", names[s], r+1)
		} else {
			fmt.Printf("  %-6s unmatched\n", names[s])
		}
	}
	fmt.Printf("  matching size %d (the paper's walkthrough lands on 3; other\n", m.Size())
	fmt.Println("  random choices, like this seed's, reach the perfect matching of 4)")
	fmt.Println()

	// ---- Theorem 1, numerically ----
	// δ̄ = 5 across three network sizes: the fraction of M* reached after
	// r rounds is essentially independent of n.
	fmt.Println("Theorem 1: matched fraction of M* after r rounds (avg degree 5):")
	fmt.Printf("  %-8s", "n")
	for _, r := range []int{1, 2, 3, 4} {
		fmt.Printf("  r=%-6d", r)
	}
	fmt.Printf("  bound(r=4)\n")
	for _, n := range []int{256, 1024, 4096} {
		fmt.Printf("  %-8d", n)
		rng := rand.New(rand.NewSource(int64(n)))
		g := matching.RandomGraph(rng, n, n, 5)
		mStar := matching.ConvergedPIM(g, rand.New(rand.NewSource(1))).Size()
		for _, r := range []int{1, 2, 3, 4} {
			mr := matching.PIM(g, r, rand.New(rand.NewSource(2))).Size()
			fmt.Printf("  %-8.3f", float64(mr)/float64(mStar))
		}
		alpha := float64(n) / float64(mStar)
		fmt.Printf("  %.3f\n", matching.TheoremBound(g.AvgDegree(), alpha, 4))
	}

	// ---- Multi-channel matching (§3.4) ----
	// With per-edge demand of one channel (flows barely above 1 BDP),
	// k channels admit k× more concurrent pairs.
	fmt.Println("\nMulti-channel matching with unit demands (144 hosts, avg degree 4):")
	rng := rand.New(rand.NewSource(9))
	g2 := matching.RandomGraph(rng, 144, 144, 4)
	for _, k := range []int{1, 2, 4} {
		cm := matching.ChannelMatch(g2, 4, k, rand.New(rand.NewSource(5)), matching.ChannelOptions{
			Demand: func(s, r int) int { return 1 },
		})
		fmt.Printf("  k=%d: %3d matched sender-receiver pairs\n", k, cm.TotalChannels())
	}
}
