// Matching: a standalone walk through the paper's theory, no packet
// simulation involved. It reruns Figure 1's 4×4 PIM example, then
// demonstrates Theorem 1 numerically: on sparse graphs, a constant number
// of rounds reaches almost the converged matching size, independent of n.
// All matchers are resolved through the matcher registry — the same
// interface cmd/pimlab and `experiments -run matchers` drive.
package main

import (
	"fmt"
	"math/rand"

	"dcpim/internal/matching"
)

func must(m matching.Matcher, err error) matching.Matcher {
	if err != nil {
		panic(err)
	}
	return m
}

func main() {
	// ---- Figure 1's example ----
	// Inputs (senders): blue(0)→{1,3,4}, red(1)→{2,4}, green(2)→{1},
	// yellow(3)→{1,3}; outputs 1..4 are receivers 0..3 here.
	g, err := matching.NewGraph(4, 4, [][]int{{0, 2, 3}, {1, 3}, {0}, {0, 2}})
	if err != nil {
		panic(err)
	}
	names := []string{"blue", "red", "green", "yellow"}
	pim := must(matching.MustLookup("pim").New(matching.Options{}))
	m, st := pim.Match(g, rand.New(rand.NewSource(3)))
	fmt.Println("Figure 1 example, PIM run to convergence (registry matcher \"pim\"):")
	for s, r := range m.ReceiverOf {
		if r >= 0 {
			fmt.Printf("  %-6s matched to output %d\n", names[s], r+1)
		} else {
			fmt.Printf("  %-6s unmatched\n", names[s])
		}
	}
	fmt.Printf("  matching size %d in %d rounds, %d control messages\n", m.Size(), st.Rounds, st.Msgs)
	fmt.Println("  (the paper's walkthrough lands on 3; other random choices,")
	fmt.Println("  like this seed's, reach the perfect matching of 4)")
	fmt.Println()

	// ---- Theorem 1, numerically ----
	// δ̄ = 5 across three network sizes: the fraction of M* reached after
	// r rounds is essentially independent of n.
	fmt.Println("Theorem 1: matched fraction of M* after r rounds (avg degree 5):")
	fmt.Printf("  %-8s", "n")
	for _, r := range []int{1, 2, 3, 4} {
		fmt.Printf("  r=%-6d", r)
	}
	fmt.Printf("  bound(r=4)\n")
	for _, n := range []int{256, 1024, 4096} {
		fmt.Printf("  %-8d", n)
		rng := rand.New(rand.NewSource(int64(n)))
		g := matching.RandomGraph(rng, n, n, 5)
		ref, _ := pim.Match(g, rand.New(rand.NewSource(1)))
		mStar := ref.Size()
		for _, r := range []int{1, 2, 3, 4} {
			bounded := must(matching.MustLookup("dcpim").New(matching.Options{Rounds: r}))
			mr, _ := bounded.Match(g, rand.New(rand.NewSource(2)))
			fmt.Printf("  %-8.3f", float64(mr.Size())/float64(mStar))
		}
		alpha := float64(n) / float64(mStar)
		fmt.Printf("  %.3f\n", matching.TheoremBound(g.AvgDegree(), alpha, 4))
	}

	// ---- Multi-channel matching (§3.4) ----
	// With per-edge demand of one channel (flows barely above 1 BDP),
	// k channels admit k× more concurrent pairs. Stats.MatchedChannels
	// carries the b-matching's channel count alongside the projected
	// unit matching.
	fmt.Println("\nMulti-channel matching with unit demands (144 hosts, avg degree 4):")
	rng := rand.New(rand.NewSource(9))
	g2 := matching.RandomGraph(rng, 144, 144, 4)
	for _, k := range []int{1, 2, 4} {
		km := must(matching.MustLookup("dcpim-k").New(matching.Options{
			Rounds: 4, K: k,
			Demand: func(s, r int) int { return 1 },
		}))
		_, kst := km.Match(g2, rand.New(rand.NewSource(5)))
		fmt.Printf("  k=%d: %3d matched sender-receiver pairs\n", k, kst.MatchedChannels)
	}

	// ---- The budget frontier ----
	// The communication-budget matcher trades control bits for rounds:
	// at 25% of an unconstrained round's bits it still converges, just
	// more slowly.
	fmt.Println("\nCommunication-budget matching (budget-pim, 1024 hosts, δ̄=4):")
	g3 := matching.SparseRandomGraph(rand.New(rand.NewSource(17)), 1024, 1024, 4)
	full := 3 * float64(g3.Edges()) * matching.ControlMsgBits
	for _, frac := range []float64{0, 0.25, 0.05} {
		bm := must(matching.MustLookup("budget-pim").New(matching.Options{BudgetBits: frac * full}))
		m3, st3 := bm.Match(g3, rand.New(rand.NewSource(23)))
		label := "unlimited"
		if frac > 0 {
			label = fmt.Sprintf("%2.0f%% budget", frac*100)
		}
		fmt.Printf("  %-10s: size %4d in %2d rounds, %6d control msgs\n",
			label, m3.Size(), st3.Rounds, st3.Msgs)
	}
}
