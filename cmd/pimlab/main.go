// Command pimlab explores the matching theory standalone (no packet
// simulation). It drives the matcher registry in internal/matching: pick
// any registered matcher (or all of them), a graph grid, and optional
// communication budgets, and it prints convergence rounds, control
// overhead and matching size vs M* — the same sweep engine and CSV
// schema as `experiments -run matchers`.
//
// Usage:
//
//	pimlab -list
//	pimlab -n 1024 -deg 5 -trials 10
//	pimlab -matcher budget-pim -budget 0.25,0.05 -n 4096
//	pimlab -matcher dcpim,maximal -dense -n 256 -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dcpim/internal/experiments"
	"dcpim/internal/matching"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		list     = flag.Bool("list", false, "list registered matchers and exit")
		ns       = flag.String("n", "1024", "ports per side to sweep (comma-separated)")
		deg      = flag.Float64("deg", 4, "average sender degree of the sparse graphs")
		dense    = flag.Bool("dense", false, "use complete bipartite graphs instead of sparse random ones")
		matcher  = flag.String("matcher", "", "registered matchers to run (comma-separated; empty = all)")
		budget   = flag.String("budget", "", "per-round communication budgets as fractions of an unconstrained round, e.g. 0.25,0.05 (budgeted matchers only)")
		trials   = flag.Int("trials", 5, "trials per cell")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "sweep cells run on this many workers (0 = GOMAXPROCS); output is identical at any setting")
		csvPath  = flag.String("csv", "", "also write every trial row as CSV to this file (same schema as experiments -metrics)")
	)
	flag.Parse()

	if *list {
		fmt.Println("registered matchers:")
		for _, name := range matching.Names() {
			d := matching.MustLookup(name)
			tag := ""
			if d.Budgeted {
				tag = " [budgeted]"
			}
			fmt.Printf("  %-14s %s%s\n", name, d.Doc, tag)
		}
		return
	}

	ports, err := parseInts(*ns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -n:", err)
		os.Exit(2)
	}
	var fracs []float64
	if *budget != "" {
		if fracs, err = parseFloats(*budget); err != nil {
			fmt.Fprintln(os.Stderr, "bad -budget:", err)
			os.Exit(2)
		}
	}
	names := matching.Names()
	if *matcher != "" {
		names = nil
		for _, name := range strings.Split(*matcher, ",") {
			name = strings.TrimSpace(name)
			if _, ok := matching.Lookup(name); !ok {
				fmt.Fprintf(os.Stderr, "unknown matcher %q (registered: %v)\n", name, matching.Names())
				os.Exit(2)
			}
			names = append(names, name)
		}
	}

	cfg := experiments.MatcherSweepConfig{
		Matchers:    names,
		Degree:      *deg,
		BudgetFracs: fracs,
		Trials:      *trials,
		Seed:        *seed,
		Workers:     *parallel,
	}
	kind := "sparse"
	if *dense {
		cfg.DensePorts = ports
		kind = "dense"
	} else {
		cfg.SparsePorts = ports
	}

	fmt.Printf("pimlab: %v on %s graphs n=%v (δ̄=%.1f), %d trials per cell\n\n",
		names, kind, ports, *deg, *trials)
	rows, err := experiments.MatcherSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	experiments.FormatMatcherTable(os.Stdout, rows)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		if err := experiments.WriteMatcherCSV(f, rows); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d rows)\n", *csvPath, len(rows))
	}
}
