// Command pimlab explores the matching theory standalone (no packet
// simulation): it sweeps rounds and average degree over random bipartite
// graphs and prints measured matching fractions next to Theorem 1's
// analytical bound, plus the multi-channel extension's effective capacity.
//
// Usage:
//
//	pimlab -n 1024 -deg 5 -trials 30
//	pimlab -n 4096 -deg 2,5,10 -rounds 1,2,3,4,6 -k 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dcpim/internal/matching"
)

func parseList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		n      = flag.Int("n", 1024, "hosts per side of the bipartite graph")
		degs   = flag.String("deg", "2,5,10", "average degrees to sweep (comma-separated)")
		rounds = flag.String("rounds", "1,2,3,4,6", "round counts to sweep")
		k      = flag.Int("k", 4, "channels for the multi-channel table")
		trials = flag.Int("trials", 20, "trials per cell")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	degList, err := parseList(*degs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -deg:", err)
		os.Exit(2)
	}
	roundList, err := parseList(*rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -rounds:", err)
		os.Exit(2)
	}

	fmt.Printf("PIM matching quality on random bipartite graphs, n=%d, %d trials per cell\n\n", *n, *trials)
	fmt.Printf("%-8s", "deg\\r")
	for _, r := range roundList {
		fmt.Printf("  r=%-12.0f", r)
	}
	fmt.Println()
	for _, deg := range degList {
		fmt.Printf("%-8.1f", deg)
		for _, rf := range roundList {
			r := int(rf)
			var frac, bound float64
			for trial := 0; trial < *trials; trial++ {
				rng := rand.New(rand.NewSource(*seed + int64(trial) + int64(1000*r)))
				g := matching.RandomGraph(rng, *n, *n, deg)
				mStar := matching.ConvergedPIM(g, rand.New(rand.NewSource(*seed+int64(trial)))).Size()
				if mStar == 0 {
					continue
				}
				frac += float64(matching.PIM(g, r, rng).Size()) / float64(mStar)
				bound += matching.TheoremBound(g.AvgDegree(), float64(*n)/float64(mStar), r)
			}
			fmt.Printf("  %.3f(≥%.3f)", frac/float64(*trials), bound/float64(*trials))
		}
		fmt.Println()
	}

	fmt.Printf("\nMulti-channel matching (k=%d) with unit per-edge demand — matched pairs:\n", *k)
	fmt.Printf("%-8s  %-10s  %-10s\n", "deg", "k=1", fmt.Sprintf("k=%d", *k))
	for _, deg := range degList {
		rng := rand.New(rand.NewSource(*seed + 99))
		g := matching.RandomGraph(rng, *n, *n, deg)
		demand := matching.ChannelOptions{Demand: func(s, r int) int { return 1 }}
		m1 := matching.ChannelMatch(g, 4, 1, rand.New(rand.NewSource(*seed)), demand)
		mk := matching.ChannelMatch(g, 4, *k, rand.New(rand.NewSource(*seed)), demand)
		fmt.Printf("%-8.1f  %-10d  %-10d\n", deg, m1.TotalChannels(), mk.TotalChannels())
	}
}
