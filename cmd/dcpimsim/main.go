// Command dcpimsim runs one packet-level simulation: pick a topology, a
// workload, a traffic load and a transport protocol, and get completion,
// utilization and slowdown statistics.
//
// Usage:
//
//	dcpimsim -protocol dcpim -topo leafspine -workload imc10 -load 0.6 -horizon 1000
//	dcpimsim -protocol hpcc -topo oversub -workload websearch -load 0.5
//	dcpimsim -protocol dctcp -topo testbed -workload datamining -load 0.5 -horizon 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dcpim/internal/experiments"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func buildTopo(name string) *topo.Topology {
	switch strings.ToLower(name) {
	case "leafspine":
		return topo.DefaultLeafSpine().Build()
	case "small":
		return topo.SmallLeafSpine().Build()
	case "oversub":
		return topo.OversubscribedLeafSpine().Build()
	case "fattree":
		return topo.DefaultFatTree().Build()
	case "fattree16":
		return topo.SmallFatTree().Build()
	case "testbed":
		return topo.TestbedLeafSpine().Build()
	default:
		fail("unknown topology %q (leafspine|small|oversub|fattree|fattree16|testbed)", name)
		return nil
	}
}

func main() {
	var (
		proto    = flag.String("protocol", "dcpim", "dcpim|homa-aeolus|homa|ndp|hpcc|phost|fastpass|dctcp|cubic")
		topoName = flag.String("topo", "leafspine", "leafspine|small|oversub|fattree|fattree16|testbed")
		wl       = flag.String("workload", "imc10", "imc10|websearch|datamining")
		load     = flag.Float64("load", 0.6, "offered load as a fraction of access bandwidth")
		horizon  = flag.Float64("horizon", 1000, "trace horizon in microseconds (run adds 50% drain)")
		seed     = flag.Int64("seed", 1, "random seed")
		csvDir   = flag.String("csv", "", "directory to write flows.csv/utilization.csv/buckets.csv (optional)")
	)
	flag.Parse()

	tp := buildTopo(*topoName)
	dist, err := workload.ByName(*wl)
	if err != nil {
		fail("%v", err)
	}
	h := sim.FromMicroseconds(*horizon)
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: *load,
		Dist: dist, Horizon: h, Seed: *seed,
	}.Generate()

	fmt.Printf("topology %s: %d hosts, BDP %d B, data RTT %v, ctrl RTT %v\n",
		tp.Name, tp.NumHosts, tp.BDP(), tp.DataRTT(), tp.CtrlRTT())
	fmt.Printf("workload %s at load %.2f: %d flows, %.1f MB offered over %v\n\n",
		dist.Name(), *load, len(tr.Flows), float64(tr.OfferedBytes)/1e6, h)

	res := experiments.Run(experiments.RunSpec{
		Protocol: *proto, Topo: tp, Trace: tr,
		Horizon: h + h/2, Seed: *seed + 1,
	})

	fmt.Printf("protocol %s:\n", *proto)
	fmt.Printf("  completed   %d/%d flows (%.1f%%)\n",
		res.Col.Completed(), res.Started, 100*res.Completion())
	fmt.Printf("  goodput     %.1f MB delivered (%.1f%% of offered)\n",
		float64(res.Col.DeliveredBytes())/1e6, 100*res.Utilization())
	fmt.Printf("  drops=%d trims=%d aeolus-drops=%d ecn-marks=%d pfc-pauses=%d\n\n",
		res.Counters.DataDrops, res.Counters.Trims, res.Counters.AeolusDrops,
		res.Counters.ECNMarks, res.Counters.PFCPauses)

	buckets := stats.BucketSlowdowns(res.Records, stats.DefaultBuckets(tp.BDP()))
	fmt.Printf("  %-14s %8s %8s %8s %8s\n", "size bucket", "count", "mean", "p99", "max")
	for _, b := range buckets {
		if b.Summary.Count == 0 {
			continue
		}
		fmt.Printf("  %-14s %8d %8.2f %8.2f %8.2f\n",
			b.Label, b.Summary.Count, b.Summary.Mean, b.Summary.P99, b.Summary.Max)
	}
	all := stats.Summarize(res.Records, nil)
	fmt.Printf("  %-14s %8d %8.2f %8.2f %8.2f\n", "all", all.Count, all.Mean, all.P99, all.Max)

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, res, buckets, tp.NumHosts, tp.HostRate); err != nil {
			fail("writing CSVs: %v", err)
		}
		fmt.Printf("\nwrote flows.csv, utilization.csv, buckets.csv to %s\n", *csvDir)
	}
}

// writeCSVs exports the run's raw data for external plotting.
func writeCSVs(dir string, res experiments.RunResult, buckets []stats.SizeBucket, hosts int, rate float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("flows.csv", func(f *os.File) error {
		return stats.WriteRecordsCSV(f, res.Records)
	}); err != nil {
		return err
	}
	if err := write("utilization.csv", func(f *os.File) error {
		return stats.WriteUtilizationCSV(f, res.Col.UtilizationSeries(hosts, rate), 10)
	}); err != nil {
		return err
	}
	return write("buckets.csv", func(f *os.File) error {
		return stats.WriteBucketsCSV(f, buckets)
	})
}
