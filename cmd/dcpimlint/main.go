// Command dcpimlint runs the repo's determinism, ownership, checkpoint,
// and hot-path analyzers (internal/analysis, DESIGN.md §12, §17) over the
// given package patterns and exits nonzero on any unsuppressed finding,
// so CI can gate on it:
//
//	go run ./cmd/dcpimlint ./...
//
// Findings are silenced inline with `//lint:ignore <analyzer> <reason>`
// (or the analyzer-specific forms //lint:deterministic, //ckpt:skip,
// //lint:coldpath); the reason is always mandatory. `-fix` prints, for
// each finding, the exact directive that would accept it — a dry run:
// nothing is edited. `-json` emits machine-readable findings for CI
// artifacts, and `-factcache <dir>` reuses per-package facts across runs
// (entries invalidate on any change to the package, its module-internal
// dependencies, or the analyzer set).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dcpim/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings and run stats as JSON on stdout")
	fix := flag.Bool("fix", false, "dry run: print each finding with the directive that would accept it")
	factCache := flag.String("factcache", "", "directory for the on-disk fact cache (empty disables caching)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dcpimlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "dcpimlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpimlint: %v\n", err)
		os.Exit(2)
	}
	res, err := analysis.RunModule(wd, analyzers, analysis.Options{CacheDir: *factCache}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpimlint: %v\n", err)
		os.Exit(2)
	}

	switch {
	case *jsonOut:
		out := struct {
			Findings []analysis.Diagnostic `json:"findings"`
			Stats    analysis.Stats        `json:"stats"`
		}{Findings: res.Diags, Stats: res.Stats}
		if out.Findings == nil {
			out.Findings = []analysis.Diagnostic{} // emit [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "dcpimlint: %v\n", err)
			os.Exit(2)
		}
	case *fix:
		for _, d := range res.Diags {
			fmt.Println(d)
			if d.Suggest != "" {
				fmt.Printf("\taccept with: %s\n", d.Suggest)
			}
		}
		if n := len(res.Diags); n > 0 {
			fmt.Printf("%d finding(s); directives above are suggestions — review each reason before pasting\n", n)
		}
	default:
		for _, d := range res.Diags {
			fmt.Println(d)
		}
	}
	if *factCache != "" && !*jsonOut {
		fmt.Fprintf(os.Stderr, "dcpimlint: %d package(s) analyzed, %d from fact cache\n",
			res.Stats.Analyzed, res.Stats.Cached)
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}
