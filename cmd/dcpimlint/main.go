// Command dcpimlint runs the repo's determinism and ownership analyzers
// (internal/analysis, DESIGN.md §12) over the given package patterns and
// exits nonzero on any unsuppressed finding, so CI can gate on it:
//
//	go run ./cmd/dcpimlint ./...
//
// Findings are silenced inline with `//lint:ignore <analyzer> <reason>`
// (or `//lint:deterministic <reason>` for maprange); the reason is
// mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcpim/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dcpimlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "dcpimlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpimlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunDir(wd, analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpimlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
