// Command experiments regenerates the dcPIM paper's evaluation artifacts
// (every table and figure of §4), plus extensions such as the fault
// resilience grid. Each experiment prints the rows or series the paper
// plots.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3a
//	experiments -run all -scale 0.25      # quicker, lower-fidelity pass
//	experiments -run fig5cd -hosts 16     # scaled-down topology
//	experiments -run fig3a -parallel 8    # sweep probes on 8 workers
//	experiments -run fig5cd -shards 4     # one fabric across 4 cores, byte-identical output
//	experiments -run faults               # scripted link/switch/host faults
//	experiments -run matchers             # matcher lab: registry-wide sweep
//	experiments -run matchers -matchers pim,budget-pim -metrics out/
//	experiments -benchjson bench/         # machine-readable substrate benchmarks
//	experiments -run fig3a -metrics out/  # per-run CSV series + JSON reports
//	experiments -run fig3b -cpuprofile cpu.pprof
//	experiments -run ckpt -checkpoint 100us -checkpoint-dir ck/   # periodic snapshots
//	experiments -resume ck/ckpt-fattree-128-seed1.ck0002.dcpimck  # verified replay + continue
//	experiments -bisect ckA,ckB           # first diverging event between two snapshot dirs
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dcpim/internal/experiments"
	"dcpim/internal/sim"
)

func main() {
	var (
		run        = flag.String("run", "", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list experiments")
		seed       = flag.Int64("seed", 1, "random seed")
		scale      = flag.Float64("scale", 1, "horizon scale factor (1 = paper fidelity)")
		hosts      = flag.Int("hosts", 0, "topology size override (0 = paper size)")
		parallel   = flag.Int("parallel", 0, "concurrent simulations in sweeps (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
		shards     = flag.Int("shards", 0, "split each fabric into this many barrier-synchronized shards (0/1 = serial); output is identical at any setting")
		procs      = flag.Int("procs", 0, "pin the scale campaign's GOMAXPROCS axis to this value (0 = sweep 1 and min(8, NumCPU)); output is identical at any setting")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metricsDir = flag.String("metrics", "", "write per-run telemetry (CSV time series + JSON report) into this directory")
		benchjson  = flag.String("benchjson", "", "run the substrate benchmark suite and write BENCH_<name>.json files into this directory, then exit")
		benchcheck = flag.String("benchcheck", "", "re-run the substrate benchmarks against the baseline BENCH_*.json files in this directory and exit nonzero on a >10% ns/op regression")
		queue      = flag.String("queue", "auto", "engine event-queue discipline: auto, heap, or ladder; output is identical under any setting")
		matchers   = flag.String("matchers", "", "restrict the matchers experiment to these comma-separated registered matchers (empty = all)")
		ckptEvery  = flag.Duration("checkpoint", 0, "snapshot instrumented runs every this much simulated time (e.g. 100us); pair with -checkpoint-dir to keep the files")
		ckptDir    = flag.String("checkpoint-dir", "", "write snapshot files (*.dcpimck) into this directory")
		resume     = flag.String("resume", "", "resume (verified replay) a ckpt-experiment snapshot file to its horizon, then exit")
		bisect     = flag.String("bisect", "", "compare two snapshot directories 'dirA,dirB' and localize the first diverging event, then exit")
	)
	flag.Parse()

	var qd sim.QueueDiscipline
	switch *queue {
	case "", "auto":
		qd = sim.QueueAuto
	case "heap":
		qd = sim.QueueHeap
	case "ladder":
		qd = sim.QueueLadder
	default:
		fmt.Fprintf(os.Stderr, "unknown -queue %q (want auto, heap, or ladder)\n", *queue)
		os.Exit(2)
	}

	if *benchjson != "" {
		if err := experiments.WriteBenchJSON(*benchjson, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchcheck != "" {
		if err := experiments.CheckBenchJSON(*benchcheck, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || (*run == "" && *resume == "" && *bisect == "") {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: experiments -run <id>   (or -run all)")
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint-dir: %v\n", err)
			os.Exit(1)
		}
	}

	opts := experiments.Options{
		Seed: *seed, Scale: *scale, Hosts: *hosts, Workers: *parallel,
		Shards: *shards, Procs: *procs, MetricsDir: *metricsDir, Queue: qd, Matchers: *matchers,
		// Simulated time is picoseconds; time.Duration is nanoseconds.
		CheckpointEvery: sim.Duration(ckptEvery.Nanoseconds()) * 1000,
		CheckpointDir:   *ckptDir,
	}

	if *bisect != "" {
		dirs := strings.SplitN(*bisect, ",", 2)
		if len(dirs) != 2 {
			fmt.Fprintln(os.Stderr, "-bisect wants two snapshot directories: dirA,dirB")
			os.Exit(2)
		}
		if err := experiments.BisectDirs(dirs[0], dirs[1], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bisect: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *resume != "" {
		if err := experiments.ResumeFile(opts, *resume, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "resume: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	// The effective pool is the flag value after the shard clamp
	// (workers × shards ≤ GOMAXPROCS) — what actually bounds sweep
	// concurrency, which the raw -parallel value no longer shows.
	if n := opts.EffectiveWorkers(); *parallel != 0 || *shards > 1 {
		fmt.Printf("(sweep pool: %d workers × %d shards on GOMAXPROCS %d)\n",
			n, max(1, *shards), runtime.GOMAXPROCS(0))
	}

	for i, e := range todo {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		elapsed := experiments.WallTimer()
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall time)\n", elapsed().Round(time.Millisecond))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
