// Command experiments regenerates the dcPIM paper's evaluation artifacts
// (every table and figure of §4). Each experiment prints the rows or
// series the paper plots.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3a
//	experiments -run all -scale 0.25      # quicker, lower-fidelity pass
//	experiments -run fig5cd -hosts 16     # scaled-down topology
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dcpim/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run, or 'all'")
		list  = flag.Bool("list", false, "list experiments")
		seed  = flag.Int64("seed", 1, "random seed")
		scale = flag.Float64("scale", 1, "horizon scale factor (1 = paper fidelity)")
		hosts = flag.Int("hosts", 0, "topology size override (0 = paper size)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: experiments -run <id>   (or -run all)")
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Hosts: *hosts}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	for i, e := range todo {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall time)\n", time.Since(start).Round(time.Millisecond))
	}
}
