package packet

import (
	"testing"
	"testing/quick"
)

func TestPacketsForBytes(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {PayloadSize, 1}, {PayloadSize + 1, 2},
		{10 * PayloadSize, 10}, {10*PayloadSize + 1, 11},
	}
	for _, c := range cases {
		if got := PacketsForBytes(c.size); got != c.want {
			t.Errorf("PacketsForBytes(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestDataPacketSize(t *testing.T) {
	// A 2.5-packet flow: two full MTUs plus a tail.
	size := int64(2*PayloadSize + 100)
	if got := DataPacketSize(size, 0); got != MTU {
		t.Errorf("pkt 0 size = %d, want %d", got, MTU)
	}
	if got := DataPacketSize(size, 1); got != MTU {
		t.Errorf("pkt 1 size = %d, want %d", got, MTU)
	}
	if got := DataPacketSize(size, 2); got != 100+HeaderSize {
		t.Errorf("tail size = %d, want %d", got, 100+HeaderSize)
	}
	if got := DataPacketSize(size, 3); got != 0 {
		t.Errorf("out-of-range seq size = %d, want 0", got)
	}
	if got := DataPacketSize(size, -1); got != 0 {
		t.Errorf("negative seq size = %d, want 0", got)
	}
}

// Property: per-packet wire sizes are consistent with the packet count —
// every packet is within (HeaderSize, MTU] and payload sums to flow size.
func TestDataPacketSizeConservation(t *testing.T) {
	f := func(raw uint32) bool {
		size := int64(raw%5_000_000) + 1
		n := PacketsForBytes(size)
		var payload int64
		for i := 0; i < n; i++ {
			w := DataPacketSize(size, i)
			if w <= HeaderSize || w > MTU {
				return false
			}
			payload += int64(w - HeaderSize)
		}
		return payload == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "DATA" || Token.String() != "TOKEN" {
		t.Fatal("Kind.String mismatch for known kinds")
	}
	if Kind(200).String() != "KIND(200)" {
		t.Fatalf("unknown kind string = %q", Kind(200).String())
	}
}

func TestIsControl(t *testing.T) {
	if Data.IsControl() {
		t.Fatal("Data must not be control")
	}
	for _, k := range []Kind{Notification, NotificationAck, FinishSender,
		FinishReceiver, Token, RTS, Grant, Accept, Nack, Pull, Ack} {
		if !k.IsControl() {
			t.Fatalf("%v must be control", k)
		}
	}
}

func TestNewControl(t *testing.T) {
	p := NewControl(Token, 3, 7, 42)
	if p.Kind != Token || p.Src != 3 || p.Dst != 7 || p.Flow != 42 {
		t.Fatalf("NewControl fields: %v", p)
	}
	if p.Size != HeaderSize || p.Priority != PrioControl {
		t.Fatalf("NewControl size/prio: %v", p)
	}
}

func TestNewData(t *testing.T) {
	p := NewData(1, 2, 9, 5, MTU, PrioShort)
	if p.Kind != Data || p.Seq != 5 || p.Size != MTU || p.Priority != PrioShort {
		t.Fatalf("NewData fields: %v", p)
	}
}

func TestStringFormat(t *testing.T) {
	p := NewData(1, 2, 9, 5, MTU, 3)
	want := "DATA 1->2 flow=9 seq=5 size=1500 prio=3"
	if got := p.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
