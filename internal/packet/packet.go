// Package packet defines the wire-level packet model shared by every
// transport protocol in the simulator. Following the layered-constant idiom
// of packet libraries, each packet carries a typed Kind, a priority class
// (0 is highest, mapped to switch priority queues), addressing, and a small
// set of protocol-specific header fields. One struct serves all protocols;
// unused fields cost nothing and keep the fabric simulator free of
// per-protocol knowledge.
package packet

import (
	"fmt"
	"sync"

	"dcpim/internal/sim"
)

// Kind identifies the role of a packet. Control kinds are small (HeaderSize
// bytes on the wire) and are sent at the highest priority by proactive
// protocols, making the fabric effectively lossless for them.
type Kind uint8

const (
	// Data carries flow payload.
	Data Kind = iota
	// Notification announces a new flow from sender to receiver (dcPIM,
	// pHost) and may carry the flow size.
	Notification
	// NotificationAck acknowledges a Notification (dcPIM).
	NotificationAck
	// FinishSender tells the receiver the sender transmitted all packets.
	FinishSender
	// FinishReceiver confirms the receiver got all packets of a flow.
	FinishReceiver
	// Token admits one data packet (receiver-driven protocols).
	Token
	// RTS is a matching-phase request (dcPIM: receiver → sender).
	RTS
	// Grant is a matching-phase grant (dcPIM: sender → receiver; Homa:
	// receiver → sender scheduled credit).
	Grant
	// Accept is a matching-phase accept (dcPIM: receiver → sender).
	Accept
	// Nack reports a trimmed packet (NDP).
	Nack
	// Pull requests (re)transmission of one packet (NDP pull clock).
	Pull
	// Ack is a transport acknowledgement (HPCC, DCTCP, Cubic) and may echo
	// INT telemetry or ECN state.
	Ack
	// Pause and Resume are PFC hop-by-hop flow control frames.
	Pause
	// ResumeKind resumes a PFC-paused priority ("Resume" would collide
	// with no method but reads oddly as a const; keep the Kind suffix).
	ResumeKind
)

var kindNames = [...]string{
	"DATA", "NOTIF", "NOTIF-ACK", "FIN-SND", "FIN-RCV", "TOKEN",
	"RTS", "GRANT", "ACCEPT", "NACK", "PULL", "ACK", "PAUSE", "RESUME",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// IsControl reports whether the kind is a control packet (everything except
// Data). Trimmed data packets remain Kind Data with Trimmed set.
func (k Kind) IsControl() bool { return k != Data }

// Wire sizes in bytes. MTU is the maximum on-wire packet size including
// headers; HeaderSize is the size of any control packet and of a trimmed
// data packet; PayloadSize is the useful payload per full data packet.
const (
	MTU         = 1500
	HeaderSize  = 64
	PayloadSize = MTU - HeaderSize
)

// PacketsForBytes returns the number of data packets needed to carry size
// payload bytes.
func PacketsForBytes(size int64) int {
	if size <= 0 {
		return 0
	}
	return int((size + PayloadSize - 1) / PayloadSize)
}

// Priority classes. Switches have NumPriorities queues; 0 drains first.
const (
	NumPriorities = 8
	// PrioControl is the class for all control packets.
	PrioControl = 0
	// PrioShort is the class proactive protocols use for short-flow data.
	PrioShort = 1
	// PrioDataHigh..PrioDataLow are available for scheduled/long data.
	PrioDataHigh = 2
	PrioDataLow  = NumPriorities - 1
)

// INTHop is one hop's worth of in-band network telemetry, appended by each
// traversed output port when Packet.CollectINT is set (HPCC).
type INTHop struct {
	QueueBytes int64    // queue length at dequeue
	TxBytes    int64    // cumulative bytes transmitted by the port
	Timestamp  sim.Time // dequeue time
	RateBps    float64  // port line rate
}

// Packet is a simulated packet, allocated from a shared pool (Get) and
// recycled (Release) when its owner is done with it.
//
// Ownership rules: the fabric owns a packet from the moment it is handed
// to Host.Send until it is dropped or delivered; protocols must not retain
// or mutate a packet after sending it. On delivery the fabric lends the
// packet to Protocol.OnPacket and recycles it when OnPacket returns — a
// protocol that needs the packet afterwards (e.g. buffering tokens or
// grants for a later phase) must call Keep inside OnPacket, after which it
// owns the packet and should Release it once consumed.
type Packet struct {
	Kind     Kind
	Src, Dst int    // host ids
	Flow     uint64 // flow id (0 = none)
	Seq      int    // data/token sequence number within the flow
	Size     int    // bytes on the wire
	Priority uint8  // 0 (highest) .. NumPriorities-1

	// Transport header fields; which are meaningful depends on Kind and
	// the protocol in use.
	FlowSize  int64 // total flow payload bytes (Notification, RTS)
	Remaining int64 // remaining payload bytes (RTS, Grant for SRPT choices)
	CumAck    int   // cumulative ack: smallest seq not yet received
	Round     int   // matching round (dcPIM RTS/Grant/Accept)
	Epoch     int64 // matching epoch (dcPIM)
	Channels  int   // number of channels requested/granted/accepted (dcPIM)
	Count     int   // generic count (FinishSender: packets sent; Homa grant: granted prio)

	// Fabric-maintained state.
	ECN        bool     // congestion-experienced mark
	Trimmed    bool     // payload was trimmed to a header (NDP)
	Unsched    bool     // unscheduled data, eligible for selective drop (Aeolus)
	CollectINT bool     // gather per-hop telemetry (HPCC)
	INT        []INTHop // telemetry, appended per hop
	SentAt     sim.Time // when the source host handed the packet to its NIC
	PauseClass uint8    // priority class a Pause/Resume applies to

	keep bool //ckpt:skip transient ownership flag, false for every packet at rest in a captured queue
}

// pool recycles packets across the whole process. Packets carry no
// engine-specific state, so concurrent simulations (experiments.RunMany)
// share it safely.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// Get returns a zeroed packet from the pool. Prefer NewControl/NewData,
// which also fill the common fields.
func Get() *Packet {
	return pool.Get().(*Packet)
}

// Release zeroes p and returns it to the pool. The caller must own p and
// drop every reference to it; the INT backing array is kept for reuse.
func Release(p *Packet) {
	hops := p.INT[:0]
	*p = Packet{}
	p.INT = hops
	pool.Put(p)
}

// Keep marks a delivered packet as taken over by the receiving protocol:
// the fabric will not recycle it after OnPacket returns. The protocol
// then owns the packet and should Release it when consumed (leaving it to
// the garbage collector is correct but defeats pooling). The release must
// happen from a later event, never synchronously inside the OnPacket that
// received the packet: the fabric reads the packet again right after
// OnPacket returns, and a released packet may already have been reissued
// by the pool — to a concurrent simulation under experiments.RunMany.
func (p *Packet) Keep() { p.keep = true }

// ReleaseUnlessKept is the fabric's post-delivery release point: it
// recycles p unless the protocol claimed it with Keep, clearing the mark
// either way. Because the fabric still touches the packet here, a protocol
// must never Release a delivered packet inside OnPacket itself — it keeps
// the packet and consumes it from a later event (see Keep).
func ReleaseUnlessKept(p *Packet) {
	if p.keep {
		p.keep = false
		return
	}
	Release(p)
}

// String renders a compact one-line description for traces and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %d->%d flow=%d seq=%d size=%d prio=%d",
		p.Kind, p.Src, p.Dst, p.Flow, p.Seq, p.Size, p.Priority)
}

// NewControl builds a control packet of the given kind between two hosts at
// the control priority with the standard control size.
func NewControl(kind Kind, src, dst int, flow uint64) *Packet {
	p := Get()
	p.Kind, p.Src, p.Dst, p.Flow = kind, src, dst, flow
	p.Size, p.Priority = HeaderSize, PrioControl
	return p
}

// NewData builds a full-size data packet for one MTU of flow payload.
// The final packet of a flow may be smaller; callers size it explicitly.
func NewData(src, dst int, flow uint64, seq int, size int, prio uint8) *Packet {
	p := Get()
	p.Kind, p.Src, p.Dst, p.Flow = Data, src, dst, flow
	p.Seq, p.Size, p.Priority = seq, size, prio
	return p
}

// DataPacketSize returns the on-wire size of data packet seq (0-indexed) of
// a flow with the given payload size: full MTUs except a short tail.
func DataPacketSize(flowSize int64, seq int) int {
	n := PacketsForBytes(flowSize)
	if seq < 0 || seq >= n {
		return 0
	}
	if seq < n-1 {
		return MTU
	}
	tail := flowSize - int64(n-1)*PayloadSize
	return int(tail) + HeaderSize
}
