// Package stats collects and summarizes the evaluation metrics the paper
// reports: per-flow completion times normalized to the unloaded optimum
// (slowdown), mean and tail percentiles overall and bucketed by flow size,
// and network utilization over time.
package stats

import (
	"fmt"
	"math"
	"sort"

	"dcpim/internal/sim"
)

// FlowRecord is the completion record of one flow. Src/Dst are int32 —
// host ids fit comfortably (the largest built topology is 27648 hosts) —
// which packs the record to 48 bytes instead of 64. The records slice is
// the dominant steady-state cost per completed flow (see
// core.TestSteadyStateBytesPerFlow), so the record is kept tight.
type FlowRecord struct {
	ID       uint64
	Src, Dst int32
	Size     int64
	Arrival  sim.Time
	Finish   sim.Time
	Optimal  sim.Duration // unloaded FCT, the slowdown denominator
}

// FCT returns the measured flow completion time.
func (r FlowRecord) FCT() sim.Duration { return r.Finish.Sub(r.Arrival) }

// Slowdown returns FCT normalized by the unloaded optimum (≥ 1 up to
// simulation granularity).
func (r FlowRecord) Slowdown() float64 {
	if r.Optimal <= 0 {
		return 1
	}
	return float64(r.FCT()) / float64(r.Optimal)
}

// Collector accumulates flow completions and delivered-byte samples during
// one simulation run.
//
// Sharded runs give every shard its own child collector (ForShard), so
// protocol callbacks never contend across shards; the root's readers
// merge the children deterministically — counts and bins sum, and
// Records always returns (Finish, ID) order, which is the same total
// order at every shard count.
type Collector struct {
	records   []FlowRecord
	started   int64
	delivered int64 // unique payload bytes confirmed delivered

	binWidth sim.Duration
	bins     []int64 // delivered payload bytes per time bin

	// shards holds the per-shard child collectors on the root; index 0 is
	// the root itself. Empty for single-shard runs.
	shards []*Collector //ckpt:skip sharding structure, rebuilt by ForShard; each child captures its own state
}

// NewCollector returns a collector with the given utilization bin width
// (0 disables the time series).
func NewCollector(binWidth sim.Duration) *Collector {
	return &Collector{binWidth: binWidth}
}

// ForShard returns the child collector for shard i, creating children up
// to i on first use (call during setup, before events run). Shard 0 is
// the root itself, so single-shard runs never allocate children. Safe on
// a nil root (returns nil; writer methods are not nil-safe, matching the
// root's own contract).
func (c *Collector) ForShard(i int) *Collector {
	if c == nil || (i == 0 && c.shards == nil) {
		return c
	}
	for len(c.shards) <= i {
		if len(c.shards) == 0 {
			c.shards = append(c.shards, c)
		} else {
			c.shards = append(c.shards, &Collector{binWidth: c.binWidth})
		}
	}
	return c.shards[i]
}

// each visits every shard-local collector exactly once (just the root
// when unsharded).
func (c *Collector) each(f func(*Collector)) {
	if len(c.shards) == 0 {
		f(c)
		return
	}
	for _, s := range c.shards {
		f(s)
	}
}

// FlowStarted counts an injected flow (denominator for completion checks).
func (c *Collector) FlowStarted() { c.started++ }

// FlowDone records a completed flow.
func (c *Collector) FlowDone(r FlowRecord) { c.records = append(c.records, r) }

// Delivered records unique payload bytes arriving at a receiver at time t.
// Protocols call this exactly once per distinct payload byte, so the sum
// is goodput, not raw throughput.
func (c *Collector) Delivered(t sim.Time, bytes int64) {
	c.delivered += bytes
	if c.binWidth <= 0 {
		return
	}
	bin := int(sim.Duration(t) / c.binWidth)
	for len(c.bins) <= bin {
		//lint:ignore hotalloc bin growth is bounded by run length / binWidth and amortized; the series is opt-in (binWidth 0 disables it)
		c.bins = append(c.bins, 0)
	}
	c.bins[bin] += bytes
}

// Started returns the number of injected flows across all shards.
func (c *Collector) Started() int64 {
	var n int64
	c.each(func(s *Collector) { n += s.started })
	return n
}

// Completed returns the number of completed flows across all shards.
func (c *Collector) Completed() int64 {
	var n int64
	c.each(func(s *Collector) { n += int64(len(s.records)) })
	return n
}

// DeliveredBytes returns total unique payload bytes delivered.
func (c *Collector) DeliveredBytes() int64 {
	var n int64
	c.each(func(s *Collector) { n += s.delivered })
	return n
}

// Records returns all completion records in (Finish, ID) order — a total
// order over any run, so the slice is byte-identical at every shard
// count. The slice is shared on single-shard collectors (do not mutate)
// and freshly merged on sharded ones.
func (c *Collector) Records() []FlowRecord {
	out := c.records
	if len(c.shards) > 0 {
		out = make([]FlowRecord, 0, c.Completed())
		for _, s := range c.shards {
			out = append(out, s.records...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Finish != out[j].Finish {
			return out[i].Finish < out[j].Finish
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// UtilizationSeries returns, for each time bin, delivered goodput as a
// fraction of aggregate capacity (hosts × rate), summed across shards.
func (c *Collector) UtilizationSeries(hosts int, rateBps float64) []float64 {
	bins := 0
	c.each(func(s *Collector) {
		if len(s.bins) > bins {
			bins = len(s.bins)
		}
	})
	out := make([]float64, bins)
	cap := rateBps * float64(hosts) / 8 * c.binWidth.Seconds()
	c.each(func(s *Collector) {
		for i, b := range s.bins {
			out[i] += float64(b) / cap
		}
	})
	return out
}

// Summary condenses a set of slowdowns.
type Summary struct {
	Count int
	Mean  float64
	P50   float64
	P99   float64
	P999  float64
	Max   float64
}

// Summarize computes slowdown statistics over records matching the filter
// (nil matches all).
func Summarize(records []FlowRecord, keep func(FlowRecord) bool) Summary {
	var xs []float64
	for _, r := range records {
		if keep == nil || keep(r) {
			xs = append(xs, r.Slowdown())
		}
	}
	return summarizeValues(xs)
}

func summarizeValues(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sort.Float64s(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return Summary{
		Count: len(xs),
		Mean:  sum / float64(len(xs)),
		P50:   Percentile(xs, 0.50),
		P99:   Percentile(xs, 0.99),
		P999:  Percentile(xs, 0.999),
		Max:   xs[len(xs)-1],
	}
}

// Percentile returns the p-quantile (0..1) of xs using the nearest-rank
// method. xs MUST already be sorted ascending — the function reads ranks
// directly and returns garbage on unsorted input (it cannot afford to
// verify or sort per call; Summarize sorts once and queries many times).
// Degenerate inputs are total: an empty slice yields 0 (never NaN, never
// a panic), a single element is every quantile of itself, and p is
// clamped to [0, 1] with NaN treated as 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if !(p > 0) { // also catches NaN
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// SizeBucket is one x-axis group of the paper's per-flow-size slowdown
// plots (Figures 3c–e, 5b, 5d, 7).
type SizeBucket struct {
	Label   string
	Lo, Hi  int64 // payload bytes, inclusive lo, exclusive hi (Hi 0 = ∞)
	Summary Summary
}

// DefaultBuckets returns geometric flow-size buckets anchored at the short
// flow threshold: the first bucket is the paper's "short flows".
func DefaultBuckets(shortThreshold int64) []SizeBucket {
	edges := []int64{0, shortThreshold, 4 * shortThreshold, 16 * shortThreshold,
		64 * shortThreshold, 256 * shortThreshold, 0}
	labels := []string{"short(≤BDP)", "1-4BDP", "4-16BDP", "16-64BDP", "64-256BDP", ">256BDP"}
	out := make([]SizeBucket, len(labels))
	for i := range labels {
		out[i] = SizeBucket{Label: labels[i], Lo: edges[i], Hi: edges[i+1]}
	}
	return out
}

// BucketSlowdowns fills each bucket's summary from the records.
func BucketSlowdowns(records []FlowRecord, buckets []SizeBucket) []SizeBucket {
	out := append([]SizeBucket(nil), buckets...)
	for i := range out {
		lo, hi := out[i].Lo, out[i].Hi
		out[i].Summary = Summarize(records, func(r FlowRecord) bool {
			if r.Size < lo {
				return false
			}
			return hi == 0 || r.Size < hi
		})
	}
	return out
}

// String renders a summary as a compact table cell.
func (s Summary) String() string {
	if s.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("n=%d mean=%.2f p99=%.2f", s.Count, s.Mean, s.P99)
}
