// Package stats collects and summarizes the evaluation metrics the paper
// reports: per-flow completion times normalized to the unloaded optimum
// (slowdown), mean and tail percentiles overall and bucketed by flow size,
// and network utilization over time.
package stats

import (
	"fmt"
	"math"
	"sort"

	"dcpim/internal/sim"
)

// FlowRecord is the completion record of one flow.
type FlowRecord struct {
	ID       uint64
	Src, Dst int
	Size     int64
	Arrival  sim.Time
	Finish   sim.Time
	Optimal  sim.Duration // unloaded FCT, the slowdown denominator
}

// FCT returns the measured flow completion time.
func (r FlowRecord) FCT() sim.Duration { return r.Finish.Sub(r.Arrival) }

// Slowdown returns FCT normalized by the unloaded optimum (≥ 1 up to
// simulation granularity).
func (r FlowRecord) Slowdown() float64 {
	if r.Optimal <= 0 {
		return 1
	}
	return float64(r.FCT()) / float64(r.Optimal)
}

// Collector accumulates flow completions and delivered-byte samples during
// one simulation run.
type Collector struct {
	records   []FlowRecord
	started   int64
	delivered int64 // unique payload bytes confirmed delivered

	binWidth sim.Duration
	bins     []int64 // delivered payload bytes per time bin
}

// NewCollector returns a collector with the given utilization bin width
// (0 disables the time series).
func NewCollector(binWidth sim.Duration) *Collector {
	return &Collector{binWidth: binWidth}
}

// FlowStarted counts an injected flow (denominator for completion checks).
func (c *Collector) FlowStarted() { c.started++ }

// FlowDone records a completed flow.
func (c *Collector) FlowDone(r FlowRecord) { c.records = append(c.records, r) }

// Delivered records unique payload bytes arriving at a receiver at time t.
// Protocols call this exactly once per distinct payload byte, so the sum
// is goodput, not raw throughput.
func (c *Collector) Delivered(t sim.Time, bytes int64) {
	c.delivered += bytes
	if c.binWidth <= 0 {
		return
	}
	bin := int(sim.Duration(t) / c.binWidth)
	for len(c.bins) <= bin {
		c.bins = append(c.bins, 0)
	}
	c.bins[bin] += bytes
}

// Started returns the number of injected flows.
func (c *Collector) Started() int64 { return c.started }

// Completed returns the number of completed flows.
func (c *Collector) Completed() int64 { return int64(len(c.records)) }

// DeliveredBytes returns total unique payload bytes delivered.
func (c *Collector) DeliveredBytes() int64 { return c.delivered }

// Records returns all completion records (shared slice; do not mutate).
func (c *Collector) Records() []FlowRecord { return c.records }

// UtilizationSeries returns, for each time bin, delivered goodput as a
// fraction of aggregate capacity (hosts × rate).
func (c *Collector) UtilizationSeries(hosts int, rateBps float64) []float64 {
	out := make([]float64, len(c.bins))
	cap := rateBps * float64(hosts) / 8 * c.binWidth.Seconds()
	for i, b := range c.bins {
		out[i] = float64(b) / cap
	}
	return out
}

// Summary condenses a set of slowdowns.
type Summary struct {
	Count int
	Mean  float64
	P50   float64
	P99   float64
	P999  float64
	Max   float64
}

// Summarize computes slowdown statistics over records matching the filter
// (nil matches all).
func Summarize(records []FlowRecord, keep func(FlowRecord) bool) Summary {
	var xs []float64
	for _, r := range records {
		if keep == nil || keep(r) {
			xs = append(xs, r.Slowdown())
		}
	}
	return summarizeValues(xs)
}

func summarizeValues(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sort.Float64s(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return Summary{
		Count: len(xs),
		Mean:  sum / float64(len(xs)),
		P50:   Percentile(xs, 0.50),
		P99:   Percentile(xs, 0.99),
		P999:  Percentile(xs, 0.999),
		Max:   xs[len(xs)-1],
	}
}

// Percentile returns the p-quantile (0..1) of xs using the nearest-rank
// method. xs MUST already be sorted ascending — the function reads ranks
// directly and returns garbage on unsorted input (it cannot afford to
// verify or sort per call; Summarize sorts once and queries many times).
// Degenerate inputs are total: an empty slice yields 0 (never NaN, never
// a panic), a single element is every quantile of itself, and p is
// clamped to [0, 1] with NaN treated as 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if !(p > 0) { // also catches NaN
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// SizeBucket is one x-axis group of the paper's per-flow-size slowdown
// plots (Figures 3c–e, 5b, 5d, 7).
type SizeBucket struct {
	Label   string
	Lo, Hi  int64 // payload bytes, inclusive lo, exclusive hi (Hi 0 = ∞)
	Summary Summary
}

// DefaultBuckets returns geometric flow-size buckets anchored at the short
// flow threshold: the first bucket is the paper's "short flows".
func DefaultBuckets(shortThreshold int64) []SizeBucket {
	edges := []int64{0, shortThreshold, 4 * shortThreshold, 16 * shortThreshold,
		64 * shortThreshold, 256 * shortThreshold, 0}
	labels := []string{"short(≤BDP)", "1-4BDP", "4-16BDP", "16-64BDP", "64-256BDP", ">256BDP"}
	out := make([]SizeBucket, len(labels))
	for i := range labels {
		out[i] = SizeBucket{Label: labels[i], Lo: edges[i], Hi: edges[i+1]}
	}
	return out
}

// BucketSlowdowns fills each bucket's summary from the records.
func BucketSlowdowns(records []FlowRecord, buckets []SizeBucket) []SizeBucket {
	out := append([]SizeBucket(nil), buckets...)
	for i := range out {
		lo, hi := out[i].Lo, out[i].Hi
		out[i].Summary = Summarize(records, func(r FlowRecord) bool {
			if r.Size < lo {
				return false
			}
			return hi == 0 || r.Size < hi
		})
	}
	return out
}

// String renders a summary as a compact table cell.
func (s Summary) String() string {
	if s.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("n=%d mean=%.2f p99=%.2f", s.Count, s.Mean, s.P99)
}
