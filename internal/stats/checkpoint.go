package stats

import "dcpim/internal/checkpoint"

// CaptureState serializes the collector's accumulated results: per
// shard-local child (in shard order), the start/delivery counters, a
// fold over every completion record, and the utilization bins. Records
// are folded rather than listed — capture size stays bounded by bin
// count, not flow count — while still pinning every record field: any
// differing completion changes the fold. Call on the root collector with
// all shards quiescent.
func (c *Collector) CaptureState(enc *checkpoint.Encoder) {
	if c == nil {
		enc.U32(0)
		return
	}
	var locals []*Collector
	c.each(func(s *Collector) { locals = append(locals, s) })
	enc.U32(uint32(len(locals)))
	for _, s := range locals {
		enc.I64(s.started)
		enc.I64(s.delivered)
		enc.U32(uint32(len(s.records)))
		h := uint64(checkpoint.FoldInit)
		for _, r := range s.records {
			h = checkpoint.Fold(h, r.ID)
			h = checkpoint.Fold(h, uint64(uint32(r.Src))<<32|uint64(uint32(r.Dst)))
			h = checkpoint.Fold(h, uint64(r.Size))
			h = checkpoint.Fold(h, uint64(r.Arrival))
			h = checkpoint.Fold(h, uint64(r.Finish))
			h = checkpoint.Fold(h, uint64(r.Optimal))
		}
		enc.U64(h)
		enc.I64(int64(s.binWidth))
		enc.U32(uint32(len(s.bins)))
		for _, b := range s.bins {
			enc.I64(b)
		}
	}
}
