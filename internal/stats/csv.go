package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteRecordsCSV writes per-flow completion records as CSV with a header
// row — the raw data behind every slowdown figure, ready for external
// plotting.
func WriteRecordsCSV(w io.Writer, records []FlowRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"flow", "src", "dst", "size_bytes", "arrival_us", "finish_us",
		"fct_us", "optimal_us", "slowdown",
	}); err != nil {
		return err
	}
	for _, r := range records {
		rec := []string{
			strconv.FormatUint(r.ID, 10),
			strconv.Itoa(int(r.Src)),
			strconv.Itoa(int(r.Dst)),
			strconv.FormatInt(r.Size, 10),
			fmt.Sprintf("%.3f", r.Arrival.Microseconds()),
			fmt.Sprintf("%.3f", r.Finish.Microseconds()),
			fmt.Sprintf("%.3f", r.FCT().Microseconds()),
			fmt.Sprintf("%.3f", r.Optimal.Microseconds()),
			fmt.Sprintf("%.4f", r.Slowdown()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteUtilizationCSV writes a utilization time series (one row per bin)
// as CSV.
func WriteUtilizationCSV(w io.Writer, series []float64, binUS float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_us", "utilization"}); err != nil {
		return err
	}
	for i, u := range series {
		rec := []string{
			fmt.Sprintf("%.1f", float64(i+1)*binUS),
			fmt.Sprintf("%.4f", u),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBucketsCSV writes bucketed slowdown summaries as CSV.
func WriteBucketsCSV(w io.Writer, buckets []SizeBucket) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bucket", "lo_bytes", "hi_bytes", "count", "mean", "p50", "p99", "p999", "max"}); err != nil {
		return err
	}
	for _, b := range buckets {
		rec := []string{
			b.Label,
			strconv.FormatInt(b.Lo, 10),
			strconv.FormatInt(b.Hi, 10),
			strconv.Itoa(b.Summary.Count),
			fmt.Sprintf("%.4f", b.Summary.Mean),
			fmt.Sprintf("%.4f", b.Summary.P50),
			fmt.Sprintf("%.4f", b.Summary.P99),
			fmt.Sprintf("%.4f", b.Summary.P999),
			fmt.Sprintf("%.4f", b.Summary.Max),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
