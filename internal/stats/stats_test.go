package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dcpim/internal/sim"
)

func rec(size int64, fct, opt sim.Duration) FlowRecord {
	return FlowRecord{Size: size, Arrival: 0, Finish: sim.Time(fct), Optimal: opt}
}

func TestSlowdown(t *testing.T) {
	r := rec(1000, 20*sim.Microsecond, 10*sim.Microsecond)
	if got := r.Slowdown(); got != 2 {
		t.Fatalf("Slowdown = %v, want 2", got)
	}
	if got := (FlowRecord{Optimal: 0}).Slowdown(); got != 1 {
		t.Fatalf("zero-optimal slowdown = %v, want 1", got)
	}
	if r.FCT() != 20*sim.Microsecond {
		t.Fatalf("FCT = %v", r.FCT())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0.5); p != 5 {
		t.Fatalf("P50 = %v, want 5", p)
	}
	if p := Percentile(xs, 0.99); p != 10 {
		t.Fatalf("P99 = %v, want 10", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("P0 = %v, want 1", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
	if p := Percentile([]float64{7}, 0.999); p != 7 {
		t.Fatalf("single-element P99.9 = %v, want 7", p)
	}
	if p := Percentile(xs, 1.5); p != 10 {
		t.Fatalf("p>1 percentile = %v, want max", p)
	}
	if p := Percentile(xs, math.NaN()); p != 1 {
		t.Fatalf("NaN percentile = %v, want min", p)
	}
}

func TestSummarize(t *testing.T) {
	records := []FlowRecord{
		rec(100, 10, 10), rec(100, 20, 10), rec(100, 30, 10),
		rec(9999, 100, 10),
	}
	all := Summarize(records, nil)
	if all.Count != 4 {
		t.Fatalf("Count = %d", all.Count)
	}
	if math.Abs(all.Mean-4) > 1e-9 { // (1+2+3+10)/4
		t.Fatalf("Mean = %v, want 4", all.Mean)
	}
	if all.Max != 10 {
		t.Fatalf("Max = %v", all.Max)
	}
	small := Summarize(records, func(r FlowRecord) bool { return r.Size < 1000 })
	if small.Count != 3 || small.Max != 3 {
		t.Fatalf("filtered summary = %+v", small)
	}
	empty := Summarize(nil, nil)
	if empty.Count != 0 || empty.String() != "-" {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestBuckets(t *testing.T) {
	bdp := int64(72500)
	buckets := DefaultBuckets(bdp)
	if len(buckets) != 6 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	records := []FlowRecord{
		rec(100, 10, 10),      // short
		rec(bdp, 10, 10),      // boundary: Hi exclusive → second bucket
		rec(5*bdp, 30, 10),    // 4–16 BDP
		rec(1000*bdp, 50, 10), // >256 BDP
	}
	got := BucketSlowdowns(records, buckets)
	if got[0].Summary.Count != 1 {
		t.Fatalf("short bucket count = %d, want 1", got[0].Summary.Count)
	}
	if got[1].Summary.Count != 1 {
		t.Fatalf("1-4BDP bucket count = %d, want 1", got[1].Summary.Count)
	}
	if got[2].Summary.Count != 1 {
		t.Fatalf("4-16BDP count = %d", got[2].Summary.Count)
	}
	if got[5].Summary.Count != 1 {
		t.Fatalf(">256BDP count = %d", got[5].Summary.Count)
	}
	// The original buckets are untouched.
	if buckets[0].Summary.Count != 0 {
		t.Fatal("BucketSlowdowns mutated input")
	}
}

func TestCollectorUtilization(t *testing.T) {
	c := NewCollector(10 * sim.Microsecond)
	// 2 hosts at 100G: one bin at full rate = 2 × 125 GB/s × 10 µs = 2.5e6 B... per host 125000 B per bin.
	c.Delivered(sim.Time(5*sim.Microsecond), 125000)  // bin 0: one host's full bin
	c.Delivered(sim.Time(15*sim.Microsecond), 62500)  // bin 1: quarter of 2-host capacity
	c.Delivered(sim.Time(35*sim.Microsecond), 250000) // bin 3: both hosts full
	u := c.UtilizationSeries(2, 100e9)
	if len(u) != 4 {
		t.Fatalf("bins = %d, want 4", len(u))
	}
	want := []float64{0.5, 0.25, 0, 1.0}
	for i := range want {
		if math.Abs(u[i]-want[i]) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", i, u[i], want[i])
		}
	}
	if c.DeliveredBytes() != 437500 {
		t.Fatalf("DeliveredBytes = %d", c.DeliveredBytes())
	}
}

func TestCollectorCounts(t *testing.T) {
	c := NewCollector(0)
	c.FlowStarted()
	c.FlowStarted()
	c.FlowDone(rec(10, 5, 5))
	if c.Started() != 2 || c.Completed() != 1 {
		t.Fatalf("started=%d completed=%d", c.Started(), c.Completed())
	}
	// binWidth 0: Delivered must not panic or allocate bins.
	c.Delivered(100, 5)
	if c.DeliveredBytes() != 5 {
		t.Fatal("delivered bytes lost with zero bin width")
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			xs[i] = math.Abs(v)
		}
		sort.Float64s(xs)
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := Percentile(xs, pa), Percentile(xs, pb)
		return qa <= qb && qa >= xs[0] && qb <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize mean lies within [min, max] of the slowdowns.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(fcts []uint32) bool {
		var records []FlowRecord
		for _, v := range fcts {
			records = append(records, rec(100, sim.Duration(v%100000+1), 100))
		}
		s := Summarize(records, nil)
		if len(records) == 0 {
			return s.Count == 0
		}
		return s.Mean <= s.Max && s.P50 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
