package stats

import (
	"strings"
	"testing"

	"dcpim/internal/sim"
)

func TestWriteRecordsCSV(t *testing.T) {
	records := []FlowRecord{
		{ID: 1, Src: 0, Dst: 5, Size: 1000,
			Arrival: sim.Time(10 * sim.Microsecond),
			Finish:  sim.Time(30 * sim.Microsecond),
			Optimal: 10 * sim.Microsecond},
	}
	var sb strings.Builder
	if err := WriteRecordsCSV(&sb, records); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "flow,src,dst,size_bytes") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "2.0000") { // slowdown 20us/10us
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteUtilizationCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteUtilizationCSV(&sb, []float64{0.5, 0.75}, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[1] != "10.0,0.5000" || lines[2] != "20.0,0.7500" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestWriteBucketsCSV(t *testing.T) {
	buckets := BucketSlowdowns([]FlowRecord{
		{Size: 100, Finish: sim.Time(20), Optimal: 10},
	}, DefaultBuckets(72500))
	var sb strings.Builder
	if err := WriteBucketsCSV(&sb, buckets); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+len(buckets) {
		t.Fatalf("lines = %d, want %d", len(lines), 1+len(buckets))
	}
	if !strings.Contains(lines[1], "short(≤BDP)") {
		t.Fatalf("first bucket row = %q", lines[1])
	}
}
