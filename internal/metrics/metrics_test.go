package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dcpim/internal/sim"
)

// TestNilInstruments locks the disabled-telemetry contract: every
// instrument obtained from a nil registry no-ops without panicking.
func TestNilInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %d", g.Value())
	}
	h := r.Histogram("h")
	h.Observe(1.5)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("nil histogram not inert")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	if s := NewSampler(nil, r, sim.Microsecond); s != nil {
		t.Error("sampler over nil registry should be nil")
	}
	var s *Sampler
	s.Start()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil sampler wrote output")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Add(10)
	c.Inc()
	if c.Value() != 11 {
		t.Errorf("counter = %d, want 11", c.Value())
	}
	g := r.Gauge("depth")
	g.Set(100)
	g.Add(-40)
	if g.Value() != 60 {
		t.Errorf("gauge = %d, want 60", g.Value())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

// TestHistogramQuantileErrorBound is the satellite-mandated accuracy
// test: for several value distributions, every estimated quantile must
// be within 5% relative error of the exact empirical quantile.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"uniform":   func() float64 { return 1 + 9999*rng.Float64() },
		"exp":       func() float64 { return rng.ExpFloat64() * 1e6 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()*2 + 5) },
		"heavy":     func() float64 { return math.Pow(1/(1e-9+rng.Float64()), 1.3) },
	}
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			h := newHistogram(name)
			vals := make([]float64, 20000)
			for i := range vals {
				vals[i] = draw()
				h.Observe(vals[i])
			}
			sort.Float64s(vals)
			for _, q := range quantiles {
				rank := int(math.Ceil(q * float64(len(vals))))
				if rank < 1 {
					rank = 1
				}
				exact := vals[rank-1]
				got := h.Quantile(q)
				if relErr := math.Abs(got-exact) / exact; relErr > 0.05 {
					t.Errorf("q=%v: estimate %v vs exact %v (rel err %.2f%%)", q, got, exact, relErr*100)
				}
			}
		})
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram("h")
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}

	h.Observe(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := h.Quantile(q)
		if math.Abs(got-42)/42 > 0.05 {
			t.Errorf("single element: Quantile(%v) = %v", q, got)
		}
	}
	if h.Min() != 42 || h.Max() != 42 || h.Mean() != 42 {
		t.Errorf("single element: min/max/mean = %v/%v/%v", h.Min(), h.Max(), h.Mean())
	}

	// Non-positive values go to the zeros bucket and report as the exact
	// minimum at low quantiles.
	z := newHistogram("z")
	z.Observe(-3)
	z.Observe(0)
	z.Observe(10)
	if got := z.Quantile(0.01); got != -3 {
		t.Errorf("zeros-bucket quantile = %v, want -3", got)
	}
	if z.Count() != 3 || z.Min() != -3 || z.Max() != 10 {
		t.Errorf("zeros histogram stats wrong: %+v", z.Summary())
	}
}

func TestHistogramSummaryOrdering(t *testing.T) {
	r := NewRegistry()
	hb := r.Histogram("b")
	ha := r.Histogram("a")
	ha.Observe(1)
	hb.Observe(2)
	sums := r.HistogramSummaries()
	if len(sums) != 2 || sums[0].Name != "a" || sums[1].Name != "b" {
		t.Errorf("summaries not name-sorted: %+v", sums)
	}
}

// TestSamplerCadence drives a sampler off the sim engine and checks tick
// count, column sorting, and that snapshots see gauge updates made by
// interleaved simulation events.
func TestSamplerCadence(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRegistry()
	g := r.Gauge("z/depth")
	c := r.Counter("a/pkts")
	r.GaugeFunc("m/load", func() float64 { return 0.25 })

	for i := 1; i <= 9; i++ {
		i := i
		eng.Schedule(sim.Time(i)*sim.Time(sim.Microsecond)+1, func() {
			g.Set(int64(i))
			c.Add(2)
		})
	}
	s := NewSampler(eng, r, 2*sim.Microsecond)
	s.Start()
	eng.Run(sim.Time(10 * sim.Microsecond))

	// Ticks at 0,2,...,10 µs inclusive.
	if s.Len() != 6 {
		t.Fatalf("ticks = %d, want 6", s.Len())
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_ps,a/pkts,m/load,z/depth" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 7 {
		t.Fatalf("rows = %d, want 7", len(lines))
	}
	// At t=4µs the events for i=1..3 have run (each at iµs+1ps).
	if lines[3] != "4000000,6,0.25,3" {
		t.Errorf("row at 4µs = %q, want %q", lines[3], "4000000,6,0.25,3")
	}
	// Re-serialization is byte-identical.
	var again bytes.Buffer
	s.WriteCSV(&again)
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("CSV serialization not stable")
	}
}

func TestRegistryReportValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(3)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(9)
	r.GaugeFunc("f", func() float64 { return 1.5 })
	cv := r.CounterValues()
	if len(cv) != 2 || cv[0].Name != "a" || cv[0].Value != 1 || cv[1].Name != "b" || cv[1].Value != 3 {
		t.Errorf("counter values: %+v", cv)
	}
	gv := r.GaugeValues()
	if len(gv) != 2 || gv[0].Name != "f" || gv[0].Value != 1.5 || gv[1].Name != "g" || gv[1].Value != 9 {
		t.Errorf("gauge values: %+v", gv)
	}
}
