// Package metrics is the simulator's deterministic telemetry layer: a
// per-run registry of typed instruments (Counter, Gauge, GaugeFunc,
// log-bucketed Histogram) plus a Sampler that snapshots instrument values
// on a simulation-clock cadence.
//
// Two properties shape the design:
//
//   - Zero cost when disabled. Every instrument method is nil-safe — a
//     nil *Counter, *Gauge or *Histogram no-ops — so instrumented code
//     carries no "is telemetry on?" branches and a run without a
//     registry allocates nothing on the hot path.
//
//   - Determinism. Instruments are updated from simulation events and
//     sampled on the simulation clock, never wall clock, and the
//     registry is per-run (no globals), so sampled series are
//     byte-identical between serial and parallel executions of the same
//     seed — and between shard counts of a sharded run. Aggregations use
//     int64 or fixed-order slices; nothing sums floats over Go map
//     iteration, whose order is randomized, and Histogram keeps its sum
//     in fixed point so concurrent shard updates commute exactly.
//
// Registration (Counter, Gauge, GaugeFunc, Histogram) is setup-time and
// single-threaded. Instrument updates are shard-safe: Counter and Gauge
// are atomic and Histogram locks, so sharded fabrics may update them
// from concurrent engine goroutines. Sampling and summarizing must
// happen between epochs (the Sampler is driven from barrier sync
// points).
package metrics

import (
	"sort"
	"sync/atomic"
)

// Counter is a monotonically-increasing int64 instrument. Updates are
// atomic: counters accumulate from every shard of a sharded run, and
// addition commutes, so totals are deterministic.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 instrument (queue depth, window
// occupancy). Updated incrementally from events so sampling it is a
// plain read. Updates are atomic; a gauge should nonetheless be owned by
// one shard's devices (Set from two shards is a last-writer race the
// sampler would surface).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (use a negative n to decrease). No-op on a
// nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds one run's instruments, keyed by slash-separated names
// ("netsim/sw0/port2/queue_bytes"). All lookups on a nil registry return
// nil instruments, which no-op — callers register unconditionally and pay
// nothing when telemetry is off.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	funcs    []gaugeFunc
	hists    []*Histogram
	kinds    map[string]string
}

type gaugeFunc struct {
	name string
	fn   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{kinds: make(map[string]string)}
}

func (r *Registry) claim(name, kind string) {
	if prev, dup := r.kinds[name]; dup {
		panic("metrics: instrument " + name + " registered twice (" + prev + ", " + kind + ")")
	}
	r.kinds[name] = kind
}

// Counter registers and returns a counter. Returns nil (a no-op
// instrument) when the registry is nil. Panics on a duplicate name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.claim(name, "counter")
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers and returns a gauge. Returns nil when the registry is
// nil. Panics on a duplicate name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.claim(name, "gauge")
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// GaugeFunc registers a computed gauge: fn is invoked at each sample
// tick. fn must be a pure read of simulation state — it must not draw
// randomness or mutate anything, or determinism is lost. No-op when the
// registry is nil.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.claim(name, "gaugefunc")
	r.funcs = append(r.funcs, gaugeFunc{name, fn})
}

// Histogram registers and returns a log-bucketed histogram. Returns nil
// when the registry is nil. Panics on a duplicate name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.claim(name, "histogram")
	h := newHistogram(name)
	r.hists = append(r.hists, h)
	return h
}

// NameValue is one instrument's end-of-run value in a report.
type NameValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// CounterValues returns every counter's final value, sorted by name.
func (r *Registry) CounterValues() []NameValue {
	if r == nil {
		return nil
	}
	out := make([]NameValue, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, NameValue{c.name, float64(c.Value())})
	}
	sortByName(out)
	return out
}

// GaugeValues returns the final value of every gauge and computed gauge,
// sorted by name.
func (r *Registry) GaugeValues() []NameValue {
	if r == nil {
		return nil
	}
	out := make([]NameValue, 0, len(r.gauges)+len(r.funcs))
	for _, g := range r.gauges {
		out = append(out, NameValue{g.name, float64(g.Value())})
	}
	for _, f := range r.funcs {
		out = append(out, NameValue{f.name, f.fn()})
	}
	sortByName(out)
	return out
}

// HistogramSummaries returns a summary of every histogram, sorted by
// name.
func (r *Registry) HistogramSummaries() []HistogramSummary {
	if r == nil {
		return nil
	}
	out := make([]HistogramSummary, 0, len(r.hists))
	for _, h := range r.hists {
		out = append(out, h.Summary())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortByName(nv []NameValue) {
	sort.Slice(nv, func(i, j int) bool { return nv[i].Name < nv[j].Name })
}

// columns returns the sampled instruments (counters, gauges, computed
// gauges — histograms summarize at end of run instead) as named read
// functions, sorted by name. The Sampler freezes this set at Start.
func (r *Registry) columns() []column {
	if r == nil {
		return nil
	}
	cols := make([]column, 0, len(r.counters)+len(r.gauges)+len(r.funcs))
	for _, c := range r.counters {
		c := c
		cols = append(cols, column{c.name, func() float64 { return float64(c.Value()) }})
	}
	for _, g := range r.gauges {
		g := g
		cols = append(cols, column{g.name, func() float64 { return float64(g.Value()) }})
	}
	for _, f := range r.funcs {
		cols = append(cols, column{f.name, f.fn})
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })
	return cols
}

type column struct {
	name string
	read func() float64
}
