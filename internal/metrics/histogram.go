package metrics

import (
	"math"
	"sync"
)

// Histogram accumulates float64 observations into logarithmically-spaced
// buckets (the DDSketch layout): bucket i covers (γ^(i-1), γ^i] with
// γ = (1+α)/(1−α), so any quantile is reported with relative error ≤ α.
// α is fixed at 4%, comfortably inside the 5% bound the tests enforce,
// and gives ~176 buckets per decade-of-e — a few KB for the value ranges
// the simulator observes (bytes, packets, window sizes).
//
// Buckets are kept in a dense slice between the lowest and highest index
// seen, growing on demand; non-positive observations land in a separate
// zeros bucket and are reported as the observed minimum. Exact min, max,
// count and sum are tracked alongside, and quantile estimates are clamped
// to [min, max].
//
// Observe locks, so shards of a sharded run may feed one histogram
// concurrently. The running sum is fixed point (1/4096 resolution):
// integer addition commutes, so the end-of-run mean is bit-identical no
// matter how shard observations interleave — a float sum would pick up
// rounding differences from the addition order. Counts, min and max are
// order-independent by nature.
type Histogram struct {
	name        string
	gamma       float64
	invLogGamma float64

	mu    sync.Mutex
	count int64
	sumFP int64 // Σ round(v·histogramSumScale)
	min   float64
	max   float64

	zeros   int64
	minIdx  int
	buckets []int64
}

// histogramAlpha is the relative-accuracy guarantee of the log buckets.
const histogramAlpha = 0.04

// histogramSumScale is the fixed-point resolution of the running sum:
// 2^12 keeps the mean's quantization (≤ 1/8192 per observation) far
// below the 4% bucket error while leaving 50 bits of integer headroom.
const histogramSumScale = 1 << 12

func newHistogram(name string) *Histogram {
	gamma := (1 + histogramAlpha) / (1 - histogramAlpha)
	return &Histogram{
		name:        name,
		gamma:       gamma,
		invLogGamma: 1 / math.Log(gamma),
	}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sumFP += int64(math.Round(v * histogramSumScale))
	if v <= 0 {
		h.zeros++
		return
	}
	idx := int(math.Ceil(math.Log(v) * h.invLogGamma))
	switch {
	case len(h.buckets) == 0:
		h.minIdx = idx
		h.buckets = append(h.buckets, 1)
	case idx < h.minIdx:
		grown := make([]int64, len(h.buckets)+(h.minIdx-idx))
		copy(grown[h.minIdx-idx:], h.buckets)
		h.buckets = grown
		h.minIdx = idx
		h.buckets[0]++
	case idx >= h.minIdx+len(h.buckets):
		for idx >= h.minIdx+len(h.buckets) {
			h.buckets = append(h.buckets, 0)
		}
		h.buckets[idx-h.minIdx]++
	default:
		h.buckets[idx-h.minIdx]++
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean at the sum's 1/4096 fixed-point
// resolution (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sumFP) / histogramSumScale / float64(h.count)
}

// Min returns the exact minimum observation (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum observation (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the p-quantile (p in [0,1], clamped) with relative
// error ≤ 4%. Returns 0 when empty or nil.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Nearest-rank: the smallest value with at least ⌈p·n⌉ observations
	// at or below it.
	rank := int64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	cum := h.zeros
	if cum >= rank {
		// Non-positive observations: report the exact minimum (they are
		// outside the log buckets' domain).
		return h.min
	}
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			// Midpoint estimate for (γ^(i-1), γ^i]: 2γ^i/(γ+1), the value
			// equidistant (in relative terms) from both bucket edges.
			v := 2 * math.Pow(h.gamma, float64(h.minIdx+i)) / (h.gamma + 1)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50 estimates the median.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P99 estimates the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// P999 estimates the 99.9th percentile.
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// HistogramSummary is one histogram's end-of-run digest in a report.
type HistogramSummary struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Summary digests the histogram.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Name: h.name, Count: h.count}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
		s.Mean = float64(h.sumFP) / histogramSumScale / float64(h.count)
	}
	s.P50 = h.quantileLocked(0.50)
	s.P99 = h.quantileLocked(0.99)
	s.P999 = h.quantileLocked(0.999)
	return s
}
