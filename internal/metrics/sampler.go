package metrics

import (
	"io"
	"strconv"

	"dcpim/internal/sim"
)

// Sampler snapshots a registry's sampled instruments (counters, gauges,
// computed gauges) on a fixed simulation-clock cadence. Because ticks are
// simulation events — never wall-clock timers — and reads are pure, the
// recorded series is a deterministic function of the run: serial and
// parallel executions of the same seed produce byte-identical CSV.
//
// The column set is frozen at Start (register every instrument before
// starting the sampler). Ticks self-reschedule, so driving the engine
// with Run(horizon) stops sampling at the horizon naturally; sampler
// events read state but never mutate it, draw no randomness, and
// therefore leave the simulated packet stream untouched.
type Sampler struct {
	eng      *sim.Engine //ckpt:skip engine wiring, re-established by the resuming run's setup
	interval sim.Duration
	cols     []column
	times    []sim.Time
	rows     [][]float64
	started  bool //ckpt:skip lifecycle flag; the resuming run re-arms sampling through its own Start/SampleAt
}

// NewSampler builds a sampler over reg's current instruments. Returns
// nil when reg is nil — a nil Sampler no-ops — so callers can wire it
// unconditionally.
func NewSampler(eng *sim.Engine, reg *Registry, interval sim.Duration) *Sampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		panic("metrics: sampler interval must be positive")
	}
	return &Sampler{eng: eng, interval: interval, cols: reg.columns()}
}

// Start takes the first snapshot at the current simulation time and
// schedules the rest as self-rescheduling engine events. Call after all
// instruments are registered and before running the engine. No-op on a
// nil receiver or second call.
//
// Sharded runs must NOT Start the sampler: its ticks would run on one
// shard's engine while other shards mutate instruments. Drive it with
// SampleAt from barrier sync points instead (netsim.Fabric.RunSynced),
// which also works single-shard and produces the same rows.
func (s *Sampler) Start() {
	if s == nil || s.started {
		return
	}
	s.started = true
	s.tick()
}

func (s *Sampler) tick() {
	s.SampleAt(s.eng.Now())
	s.eng.After(s.interval, s.tick)
}

// SampleAt takes one snapshot stamped with time t. Callers sample at
// deterministic simulation times with all shards quiescent — between
// epochs — so the recorded series is identical at every shard count.
// No-op on a nil receiver.
func (s *Sampler) SampleAt(t sim.Time) {
	if s == nil {
		return
	}
	row := make([]float64, len(s.cols))
	for i := range s.cols {
		row[i] = s.cols[i].read()
	}
	s.times = append(s.times, t)
	s.rows = append(s.rows, row)
}

// Len returns the number of snapshots taken (0 for nil).
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.times)
}

// Interval returns the sampling cadence (0 for nil).
func (s *Sampler) Interval() sim.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// WriteCSV emits the sampled series: a header line
// "time_ps,<instrument>,..." (instruments sorted by name) followed by
// one row per tick. Times are integer picoseconds; values print as
// exact decimal integers when integral, shortest round-trip float form
// otherwise — both byte-stable for identical runs. A nil sampler writes
// nothing.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, "time_ps"...)
	for _, c := range s.cols {
		buf = append(buf, ',')
		buf = append(buf, c.name...)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i, t := range s.times {
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(t), 10)
		for _, v := range s.rows[i] {
			buf = append(buf, ',')
			buf = appendValue(buf, v)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendValue formats integral values as plain decimals (counters and
// gauges stay readable) and everything else in shortest round-trip form.
func appendValue(buf []byte, v float64) []byte {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
