package metrics

import (
	"math"

	"dcpim/internal/checkpoint"
)

// CaptureState serializes the sampler's position and a fold of everything
// sampled so far: row count, cadence, and an FNV fold over every
// timestamp and value bit pattern. The fold keeps capture size constant
// over arbitrarily long series while still pinning each sample
// byte-for-byte — any diverging sample changes the fold. Nil-safe (the
// disabled-telemetry sampler captures as an empty marker).
func (s *Sampler) CaptureState(enc *checkpoint.Encoder) {
	if s == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	enc.I64(int64(s.interval))
	enc.U32(uint32(len(s.cols)))
	enc.U32(uint32(len(s.times)))
	h := uint64(checkpoint.FoldInit)
	for i, t := range s.times {
		h = checkpoint.Fold(h, uint64(t))
		for _, v := range s.rows[i] {
			h = checkpoint.Fold(h, math.Float64bits(v))
		}
	}
	enc.U64(h)
}
