package netsim

import (
	"math/rand"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

// queued is one buffered packet plus the ingress port it arrived through
// (for PFC accounting; -1 when not applicable).
type queued struct {
	p  *packet.Packet
	in int
}

// outPort models one transmit side of a full-duplex link: eight
// strict-priority FIFO queues sharing a byte budget, a serializing
// transmitter, and the attached link's rate and propagation delay.
// A port belongs either to a switch (owner set) or to a host NIC
// (hostNIC set).
// A port's checkpoint (outPort.captureState) covers the dynamic plane:
// queues, byte counts, PFC/fault state, and the boundary arrival
// sequence. Link parameters and device wiring are static topology,
// re-created identically by building the fabric before restore.
type outPort struct {
	fab      *Fabric      //ckpt:skip owner back-pointer, re-established by construction
	sh       *shardState  //ckpt:skip shard wiring, re-established by construction
	rng      *rand.Rand   //ckpt:skip aliases the owning device's stream; its position is captured there
	rate     float64      //ckpt:skip static link parameter from topology
	delay    sim.Duration //ckpt:skip static link parameter from topology
	capacity int64        //ckpt:skip static link parameter from topology

	owner     *swDev //ckpt:skip device wiring, re-established by construction
	ownerPort int    //ckpt:skip device wiring, re-established by construction
	hostNIC   *Host  //ckpt:skip device wiring, re-established by construction

	queues      [packet.NumPriorities][]queued
	heads       [packet.NumPriorities]int
	queuedBytes int64
	maxQueued   int64 // high-water mark of queuedBytes
	txBytes     int64 // cumulative bytes transmitted (INT)
	busy        bool
	paused      bool

	// Injected fault state (see Fabric's fault-control methods). down
	// halts the transmitter like a PFC pause but is independent of it;
	// lossRate is a persistent degraded-link drop probability; burstRate
	// applies instead while the clock is before burstUntil.
	down       bool
	lossRate   float64
	burstRate  float64
	burstUntil sim.Time

	// Boundary egress (switch↔switch links marked topo.Port.Boundary):
	// delivery is fused into a single arrival-band event — the forward at
	// the peer switch, scheduled tx+delay+SwitchDelay ahead with a key
	// built from the directed link id and a per-link sequence, so its
	// execution order is identical at every shard count. Data and PFC
	// frames on the same directed link share arrSeq.
	boundary bool   //ckpt:skip static topology attribute (topo.Port.Boundary)
	linkID   uint64 //ckpt:skip derived from the directed link identity at construction
	arrSeq   uint64
	peerSw   *swDev //ckpt:skip peer wiring, re-established by construction
	peerIn   int    //ckpt:skip peer wiring, re-established by construction
}

// faultDrop applies injected link faults (degrade / loss burst) at enqueue
// time and reports whether the packet was consumed. Faulty links draw from
// the owning device's seeded stream, so runs stay deterministic at any
// shard count; clean links draw nothing.
func (o *outPort) faultDrop(p *packet.Packet) bool {
	r := o.lossRate
	if o.burstRate > r && o.sh.eng.Now() < o.burstUntil {
		r = o.burstRate
	}
	if r <= 0 || o.rng.Float64() >= r {
		return false
	}
	o.sh.counters.FaultDrops++
	o.fab.dropped(p)
	return true
}

// enqueue is the host-NIC entry point: plain drop-tail, no dataplane
// features (a host never trims or marks its own packets).
func (o *outPort) enqueue(p *packet.Packet) {
	if o.faultDrop(p) {
		return
	}
	if o.queuedBytes+int64(p.Size) > o.capacity {
		o.sh.counters.HostDrops++
		o.fab.dropped(p)
		return
	}
	o.push(p, -1)
}

// enqueueAt is the switch entry point, applying Aeolus selective dropping,
// NDP trimming, ECN marking, and drop-tail in that order, then PFC
// accounting for the ingress the packet came through.
func (o *outPort) enqueueAt(p *packet.Packet, sw *swDev, in int) {
	cfg := &o.fab.cfg
	if o.faultDrop(p) {
		return
	}
	if cfg.RandomLossRate > 0 && o.rng.Float64() < cfg.RandomLossRate {
		if p.Kind == packet.Data {
			o.sh.counters.DataDrops++
		} else {
			o.sh.counters.CtrlDrops++
		}
		o.fab.dropped(p)
		return
	}
	isData := p.Kind == packet.Data && !p.Trimmed

	if isData && p.Unsched && cfg.AeolusThresholdBytes > 0 &&
		o.queuedBytes >= cfg.AeolusThresholdBytes {
		o.sh.counters.AeolusDrops++
		o.fab.dropped(p)
		return
	}
	// Trimming applies to regular data only: NDP carries retransmissions
	// in a protected high-priority queue (modeled as PrioShort) precisely
	// so they are not trimmed twice.
	if isData && p.Priority >= packet.PrioDataHigh &&
		cfg.TrimThresholdBytes > 0 && o.queuedBytes >= cfg.TrimThresholdBytes {
		p.Trimmed = true
		p.Size = packet.HeaderSize
		p.Priority = packet.PrioControl
		o.sh.counters.Trims++
		for _, ob := range o.fab.obs {
			ob.PacketTrimmed(p)
		}
		isData = false
	}
	if o.queuedBytes+int64(p.Size) > o.capacity {
		if p.Kind == packet.Data {
			o.sh.counters.DataDrops++
		} else {
			o.sh.counters.CtrlDrops++
		}
		o.fab.dropped(p)
		return
	}
	if isData && cfg.ECNThresholdBytes > 0 && o.queuedBytes >= cfg.ECNThresholdBytes {
		p.ECN = true
		o.sh.counters.ECNMarks++
	}
	o.push(p, in)
	if cfg.EnablePFC && in >= 0 {
		sw.ingressBytes[in] += int64(p.Size)
		sw.checkPause(in)
	}
}

// push appends to the packet's priority queue and kicks the transmitter.
func (o *outPort) push(p *packet.Packet, in int) {
	pr := p.Priority
	if int(pr) >= packet.NumPriorities {
		pr = packet.NumPriorities - 1
	}
	o.queues[pr] = append(o.queues[pr], queued{p, in})
	o.queuedBytes += int64(p.Size)
	if o.queuedBytes > o.maxQueued {
		o.maxQueued = o.queuedBytes
	}
	o.tryTransmit()
}

// pop removes the highest-priority head-of-line packet.
func (o *outPort) pop() (queued, bool) {
	for pr := 0; pr < packet.NumPriorities; pr++ {
		q := o.queues[pr]
		h := o.heads[pr]
		if h >= len(q) {
			continue
		}
		el := q[h]
		q[h] = queued{}
		h++
		switch {
		case h == len(q):
			// Empty: reset to reuse the backing array.
			o.queues[pr] = q[:0]
			h = 0
		case h > 64 && h*2 > len(q):
			// Compact once the dead prefix dominates, amortized O(1).
			n := copy(q, q[h:])
			o.queues[pr] = q[:n]
			h = 0
		}
		o.heads[pr] = h
		o.queuedBytes -= int64(el.p.Size)
		return el, true
	}
	return queued{}, false
}

// tryTransmit starts serializing the next packet if the port is idle, not
// PFC-paused, and the link is not administratively down.
func (o *outPort) tryTransmit() {
	if o.busy || o.paused || o.down {
		return
	}
	el, ok := o.pop()
	if !ok {
		return
	}
	o.busy = true
	p := el.p

	// Release PFC accounting as soon as the packet leaves the buffer.
	if o.owner != nil && o.fab.cfg.EnablePFC && el.in >= 0 {
		o.owner.ingressBytes[el.in] -= int64(p.Size)
		o.owner.checkResume(el.in)
	}

	tx := sim.TransmissionTime(p.Size, o.rate)
	o.txBytes += int64(p.Size)
	if p.CollectINT {
		p.INT = append(p.INT, packet.INTHop{
			QueueBytes: o.queuedBytes,
			TxBytes:    o.txBytes,
			Timestamp:  o.sh.eng.Now(),
			RateBps:    o.rate,
		})
	}
	eng := o.sh.eng
	eng.AfterFunc(tx, portTxDone, o, nil, 0)
	if o.boundary {
		// Fused boundary delivery: skip the portDeliver and receive
		// intermediaries and schedule the forward at the peer switch
		// directly, keyed in the arrival band so execution order does not
		// depend on which shard inserted it, or when.
		at := eng.Now().Add(tx + o.delay + o.fab.topo.SwitchDelay)
		key := bandKey(o.linkID, o.arrSeq)
		o.arrSeq++
		if peer := o.peerSw.sh; peer == o.sh {
			eng.ScheduleArrival(at, key, swForward, o.peerSw, p, o.peerIn)
		} else {
			o.sh.stage(peer, at, key, swForward, o.peerSw, p, o.peerIn)
		}
		return
	}
	eng.AfterFunc(tx+o.delay, portDeliver, o, p, 0)
}

func portTxDone(a, _ any, _ int) {
	o := a.(*outPort)
	o.busy = false
	o.tryTransmit()
}

func portDeliver(a, b any, _ int) {
	a.(*outPort).deliverToPeer(b.(*packet.Packet))
}

// deliverToPeer hands the packet to the device at the far end of the
// link. Boundary links never reach here (their delivery is fused into
// the arrival-band event at transmit time), so the peer is always on
// the same shard.
func (o *outPort) deliverToPeer(p *packet.Packet) {
	if o.hostNIC != nil {
		// Host NIC → its ToR; the packet enters through the ToR port
		// facing this host.
		h := o.hostNIC.id
		tor := o.fab.switches[o.fab.topo.HostSwitch[h]]
		tor.receive(p, o.fab.topo.HostPort[h])
		return
	}
	spec := o.owner.spec.Ports[o.ownerPort]
	if spec.ToHost {
		o.fab.hosts[spec.Peer].deliver(p)
		return
	}
	o.fab.switches[spec.Peer].receive(p, spec.PeerPort)
}

// checkPause sends a PFC pause upstream when an ingress's buffered bytes
// cross the pause watermark.
func (d *swDev) checkPause(in int) {
	if d.paused == nil {
		d.paused = make([]bool, len(d.ports))
	}
	if d.paused[in] || d.ingressBytes[in] < d.fab.cfg.PFCPause {
		return
	}
	d.paused[in] = true
	d.sh.counters.PFCPauses++
	d.signalUpstream(in, true)
}

// checkResume lifts the pause once the ingress drains below the resume
// watermark.
func (d *swDev) checkResume(in int) {
	if d.paused == nil || !d.paused[in] || d.ingressBytes[in] > d.fab.cfg.PFCResume {
		return
	}
	d.paused[in] = false
	d.sh.counters.PFCResumes++
	d.signalUpstream(in, false)
}

// signalUpstream delivers a pause/resume to the transmitter feeding
// ingress port in. PFC frames are modeled as link-level control that
// arrives after the propagation delay without queueing. On boundary
// links the frame travels the same directed link as this switch's data
// toward the upstream (our output port in), so it borrows that port's
// arrival-band sequence; on intra-shard links plain scheduling suffices.
func (d *swDev) signalUpstream(in int, pause bool) {
	spec := d.spec.Ports[in]
	i := 0
	if pause {
		i = 1
	}
	if spec.ToHost {
		// Hosts always share their ToR's shard.
		d.sh.eng.AfterFunc(spec.Delay, pfcApply, d.fab.hosts[spec.Peer].nic, nil, i)
		return
	}
	up := d.fab.switches[spec.Peer].ports[spec.PeerPort]
	if !spec.Boundary {
		d.sh.eng.AfterFunc(spec.Delay, pfcApply, up, nil, i)
		return
	}
	rev := d.ports[in] // our transmitter on the same directed link d→peer
	at := d.sh.eng.Now().Add(spec.Delay)
	key := bandKey(rev.linkID, rev.arrSeq)
	rev.arrSeq++
	if peer := up.sh; peer == d.sh {
		d.sh.eng.ScheduleArrival(at, key, pfcApply, up, nil, i)
	} else {
		d.sh.stage(peer, at, key, pfcApply, up, nil, i)
	}
}

// pfcApply lands a PFC frame at the upstream transmitter: i==1 pauses,
// i==0 resumes and kicks the transmitter.
func pfcApply(a, _ any, i int) {
	up := a.(*outPort)
	up.paused = i == 1
	if i == 0 {
		up.tryTransmit()
	}
}

// dropped fans the drop out to the observers, then recycles the
// packet — the fabric's second release point (the first is delivery).
func (f *Fabric) dropped(p *packet.Packet) {
	for _, o := range f.obs {
		o.PacketDropped(p)
	}
	packet.Release(p)
}
