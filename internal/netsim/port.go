package netsim

import (
	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

// queued is one buffered packet plus the ingress port it arrived through
// (for PFC accounting; -1 when not applicable).
type queued struct {
	p  *packet.Packet
	in int
}

// outPort models one transmit side of a full-duplex link: eight
// strict-priority FIFO queues sharing a byte budget, a serializing
// transmitter, and the attached link's rate and propagation delay.
// A port belongs either to a switch (owner set) or to a host NIC
// (hostNIC set).
type outPort struct {
	fab      *Fabric
	rate     float64
	delay    sim.Duration
	capacity int64

	owner     *swDev // nil for host NICs
	ownerPort int
	hostNIC   *Host // nil for switch ports

	queues      [packet.NumPriorities][]queued
	heads       [packet.NumPriorities]int
	queuedBytes int64
	maxQueued   int64 // high-water mark of queuedBytes
	txBytes     int64 // cumulative bytes transmitted (INT)
	busy        bool
	paused      bool

	// Injected fault state (see Fabric's fault-control methods). down
	// halts the transmitter like a PFC pause but is independent of it;
	// lossRate is a persistent degraded-link drop probability; burstRate
	// applies instead while the clock is before burstUntil.
	down       bool
	lossRate   float64
	burstRate  float64
	burstUntil sim.Time
}

// faultDrop applies injected link faults (degrade / loss burst) at enqueue
// time and reports whether the packet was consumed. Faulty links draw from
// the engine's seeded Rand, so runs stay deterministic; clean links draw
// nothing.
func (o *outPort) faultDrop(p *packet.Packet) bool {
	r := o.lossRate
	if o.burstRate > r && o.fab.eng.Now() < o.burstUntil {
		r = o.burstRate
	}
	if r <= 0 || o.fab.eng.Rand().Float64() >= r {
		return false
	}
	o.fab.Counters.FaultDrops++
	o.fab.dropped(p)
	return true
}

// enqueue is the host-NIC entry point: plain drop-tail, no dataplane
// features (a host never trims or marks its own packets).
func (o *outPort) enqueue(p *packet.Packet) {
	if o.faultDrop(p) {
		return
	}
	if o.queuedBytes+int64(p.Size) > o.capacity {
		o.fab.Counters.HostDrops++
		o.fab.dropped(p)
		return
	}
	o.push(p, -1)
}

// enqueueAt is the switch entry point, applying Aeolus selective dropping,
// NDP trimming, ECN marking, and drop-tail in that order, then PFC
// accounting for the ingress the packet came through.
func (o *outPort) enqueueAt(p *packet.Packet, sw *swDev, in int) {
	cfg := &o.fab.cfg
	if o.faultDrop(p) {
		return
	}
	if cfg.RandomLossRate > 0 && o.fab.eng.Rand().Float64() < cfg.RandomLossRate {
		if p.Kind == packet.Data {
			o.fab.Counters.DataDrops++
		} else {
			o.fab.Counters.CtrlDrops++
		}
		o.fab.dropped(p)
		return
	}
	isData := p.Kind == packet.Data && !p.Trimmed

	if isData && p.Unsched && cfg.AeolusThresholdBytes > 0 &&
		o.queuedBytes >= cfg.AeolusThresholdBytes {
		o.fab.Counters.AeolusDrops++
		o.fab.dropped(p)
		return
	}
	// Trimming applies to regular data only: NDP carries retransmissions
	// in a protected high-priority queue (modeled as PrioShort) precisely
	// so they are not trimmed twice.
	if isData && p.Priority >= packet.PrioDataHigh &&
		cfg.TrimThresholdBytes > 0 && o.queuedBytes >= cfg.TrimThresholdBytes {
		p.Trimmed = true
		p.Size = packet.HeaderSize
		p.Priority = packet.PrioControl
		o.fab.Counters.Trims++
		for _, ob := range o.fab.obs {
			ob.PacketTrimmed(p)
		}
		isData = false
	}
	if o.queuedBytes+int64(p.Size) > o.capacity {
		if p.Kind == packet.Data {
			o.fab.Counters.DataDrops++
		} else {
			o.fab.Counters.CtrlDrops++
		}
		o.fab.dropped(p)
		return
	}
	if isData && cfg.ECNThresholdBytes > 0 && o.queuedBytes >= cfg.ECNThresholdBytes {
		p.ECN = true
		o.fab.Counters.ECNMarks++
	}
	o.push(p, in)
	if cfg.EnablePFC && in >= 0 {
		sw.ingressBytes[in] += int64(p.Size)
		sw.checkPause(in)
	}
}

// push appends to the packet's priority queue and kicks the transmitter.
func (o *outPort) push(p *packet.Packet, in int) {
	pr := p.Priority
	if int(pr) >= packet.NumPriorities {
		pr = packet.NumPriorities - 1
	}
	o.queues[pr] = append(o.queues[pr], queued{p, in})
	o.queuedBytes += int64(p.Size)
	if o.queuedBytes > o.maxQueued {
		o.maxQueued = o.queuedBytes
	}
	o.tryTransmit()
}

// pop removes the highest-priority head-of-line packet.
func (o *outPort) pop() (queued, bool) {
	for pr := 0; pr < packet.NumPriorities; pr++ {
		q := o.queues[pr]
		h := o.heads[pr]
		if h >= len(q) {
			continue
		}
		el := q[h]
		q[h] = queued{}
		h++
		switch {
		case h == len(q):
			// Empty: reset to reuse the backing array.
			o.queues[pr] = q[:0]
			h = 0
		case h > 64 && h*2 > len(q):
			// Compact once the dead prefix dominates, amortized O(1).
			n := copy(q, q[h:])
			o.queues[pr] = q[:n]
			h = 0
		}
		o.heads[pr] = h
		o.queuedBytes -= int64(el.p.Size)
		return el, true
	}
	return queued{}, false
}

// tryTransmit starts serializing the next packet if the port is idle, not
// PFC-paused, and the link is not administratively down.
func (o *outPort) tryTransmit() {
	if o.busy || o.paused || o.down {
		return
	}
	el, ok := o.pop()
	if !ok {
		return
	}
	o.busy = true
	p := el.p

	// Release PFC accounting as soon as the packet leaves the buffer.
	if o.owner != nil && o.fab.cfg.EnablePFC && el.in >= 0 {
		o.owner.ingressBytes[el.in] -= int64(p.Size)
		o.owner.checkResume(el.in)
	}

	tx := sim.TransmissionTime(p.Size, o.rate)
	o.txBytes += int64(p.Size)
	if p.CollectINT {
		p.INT = append(p.INT, packet.INTHop{
			QueueBytes: o.queuedBytes,
			TxBytes:    o.txBytes,
			Timestamp:  o.fab.eng.Now(),
			RateBps:    o.rate,
		})
	}
	eng := o.fab.eng
	eng.AfterFunc(tx, portTxDone, o, nil, 0)
	eng.AfterFunc(tx+o.delay, portDeliver, o, p, 0)
}

func portTxDone(a, _ any, _ int) {
	o := a.(*outPort)
	o.busy = false
	o.tryTransmit()
}

func portDeliver(a, b any, _ int) {
	a.(*outPort).deliverToPeer(b.(*packet.Packet))
}

// deliverToPeer hands the packet to the device at the far end of the link.
func (o *outPort) deliverToPeer(p *packet.Packet) {
	if o.hostNIC != nil {
		// Host NIC → its ToR; the packet enters through the ToR port
		// facing this host.
		h := o.hostNIC.id
		tor := o.fab.switches[o.fab.topo.HostSwitch[h]]
		tor.receive(p, o.fab.topo.HostPort[h])
		return
	}
	spec := o.owner.spec.Ports[o.ownerPort]
	if spec.ToHost {
		o.fab.hosts[spec.Peer].deliver(p)
		return
	}
	o.fab.switches[spec.Peer].receive(p, spec.PeerPort)
}

// checkPause sends a PFC pause upstream when an ingress's buffered bytes
// cross the pause watermark.
func (d *swDev) checkPause(in int) {
	if d.paused == nil {
		d.paused = make([]bool, len(d.ports))
	}
	if d.paused[in] || d.ingressBytes[in] < d.fab.cfg.PFCPause {
		return
	}
	d.paused[in] = true
	d.fab.Counters.PFCPauses++
	d.signalUpstream(in, true)
}

// checkResume lifts the pause once the ingress drains below the resume
// watermark.
func (d *swDev) checkResume(in int) {
	if d.paused == nil || !d.paused[in] || d.ingressBytes[in] > d.fab.cfg.PFCResume {
		return
	}
	d.paused[in] = false
	d.fab.Counters.PFCResumes++
	d.signalUpstream(in, false)
}

// signalUpstream delivers a pause/resume to the transmitter feeding
// ingress port in. PFC frames are modeled as link-level control that
// arrives after the propagation delay without queueing.
func (d *swDev) signalUpstream(in int, pause bool) {
	spec := d.spec.Ports[in]
	var up *outPort
	if spec.ToHost {
		up = d.fab.hosts[spec.Peer].nic
	} else {
		up = d.fab.switches[spec.Peer].ports[spec.PeerPort]
	}
	d.fab.eng.After(spec.Delay, func() {
		up.paused = pause
		if !pause {
			up.tryTransmit()
		}
	})
}

// dropped fans the drop out to the observers, then recycles the
// packet — the fabric's second release point (the first is delivery).
func (f *Fabric) dropped(p *packet.Packet) {
	for _, o := range f.obs {
		o.PacketDropped(p)
	}
	packet.Release(p)
}
