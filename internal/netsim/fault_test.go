package netsim

import (
	"testing"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
)

// TestDropSiteCounters forces every drop path in the fabric and checks
// that each increments exactly one counter and that the conservation
// equation holds: sent = delivered + Σ(disjoint drop counters), with
// nothing left queued once faults are lifted. (The auditor installed by
// buildFabric re-checks the same equation from packet identity.)
func TestDropSiteCounters(t *testing.T) {
	const mtu = packet.MTU
	incast := func(n int) func(f *Fabric) int64 {
		return func(f *Fabric) int64 {
			for src := 1; src < 8; src++ {
				for i := 0; i < n; i++ {
					f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, mtu, packet.PrioShort))
				}
			}
			return int64(7 * n)
		}
	}
	cases := []struct {
		name string
		cfg  Config
		run  func(f *Fabric) int64 // inject traffic; returns packets sent
		// restore lifts fault state so queues can drain before checking.
		restore func(f *Fabric)
		want    func(t *testing.T, c Counters)
	}{
		{
			name: "host-overflow",
			cfg:  Config{Spray: true, HostQueueBytes: 2 * mtu},
			run: func(f *Fabric) int64 {
				for i := 0; i < 50; i++ {
					f.Host(0).Send(packet.NewData(0, 1, 1, i, mtu, packet.PrioShort))
				}
				return 50
			},
			want: func(t *testing.T, c Counters) {
				if c.HostDrops == 0 {
					t.Error("no HostDrops")
				}
				if c.DataDrops+c.CtrlDrops+c.AeolusDrops+c.FaultDrops != 0 {
					t.Errorf("NIC overflow leaked into other counters: %+v", c)
				}
			},
		},
		{
			name: "droptail-data",
			cfg:  Config{Spray: true, PortBufferBytes: 5 * mtu},
			run:  incast(20),
			want: func(t *testing.T, c Counters) {
				if c.DataDrops == 0 {
					t.Error("no DataDrops")
				}
				if c.CtrlDrops+c.AeolusDrops+c.HostDrops+c.FaultDrops != 0 {
					t.Errorf("drop-tail leaked into other counters: %+v", c)
				}
			},
		},
		{
			name: "droptail-ctrl",
			cfg:  Config{Spray: true, PortBufferBytes: 3 * packet.HeaderSize},
			run: func(f *Fabric) int64 {
				for src := 1; src < 8; src++ {
					for i := 0; i < 20; i++ {
						f.Host(src).Send(packet.NewControl(packet.Token, src, 0, uint64(src)))
					}
				}
				return 140
			},
			want: func(t *testing.T, c Counters) {
				if c.CtrlDrops == 0 {
					t.Error("no CtrlDrops")
				}
				if c.DataDrops+c.AeolusDrops+c.HostDrops+c.FaultDrops != 0 {
					t.Errorf("control drop-tail leaked into other counters: %+v", c)
				}
			},
		},
		{
			name: "random-loss",
			cfg:  Config{Spray: true, RandomLossRate: 0.3},
			run: func(f *Fabric) int64 {
				for src := 1; src < 8; src++ {
					for i := 0; i < 10; i++ {
						f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, mtu, packet.PrioShort))
						f.Host(src).Send(packet.NewControl(packet.Token, src, 0, uint64(src)))
					}
				}
				return 140
			},
			want: func(t *testing.T, c Counters) {
				if c.DataDrops == 0 || c.CtrlDrops == 0 {
					t.Errorf("random loss spared a class: %+v", c)
				}
				if c.AeolusDrops+c.HostDrops+c.FaultDrops != 0 {
					t.Errorf("random loss leaked into other counters: %+v", c)
				}
			},
		},
		{
			name: "aeolus-selective",
			cfg:  Config{Spray: true, AeolusThresholdBytes: 3 * mtu},
			run: func(f *Fabric) int64 {
				for src := 1; src < 8; src++ {
					for i := 0; i < 10; i++ {
						p := packet.NewData(src, 0, uint64(src), i, mtu, packet.PrioShort)
						p.Unsched = true
						f.Host(src).Send(p)
					}
				}
				return 70
			},
			want: func(t *testing.T, c Counters) {
				if c.AeolusDrops == 0 {
					t.Error("no AeolusDrops")
				}
				// Regression: the Aeolus site used to double-count into
				// DataDrops, breaking the conservation equation.
				if c.DataDrops != 0 {
					t.Errorf("Aeolus drop double-counted as DataDrops: %+v", c)
				}
			},
		},
		{
			name: "degraded-link",
			cfg:  Config{Spray: true},
			run: func(f *Fabric) int64 {
				f.SetLinkLossRate(0, 0, 0.5) // leaf 0 → host 0 downlink
				return incast(10)(f)
			},
			restore: func(f *Fabric) { f.SetLinkLossRate(0, 0, 0) },
			want: func(t *testing.T, c Counters) {
				if c.FaultDrops == 0 {
					t.Error("no FaultDrops on degraded link")
				}
				if c.DataDrops+c.CtrlDrops+c.AeolusDrops+c.HostDrops != 0 {
					t.Errorf("degrade leaked into other counters: %+v", c)
				}
			},
		},
		{
			name: "reboot-drain",
			cfg:  Config{Spray: true},
			run: func(f *Fabric) int64 {
				// Park an incast in the dark downlink's queue, then cold
				// reboot the ToR: the whole queue must drain as FaultDrops.
				f.SetLinkDown(0, 0, true)
				n := incast(5)(f)
				f.Engine().RunAll()
				f.RebootSwitch(0, true)
				return n
			},
			restore: func(f *Fabric) { f.RestoreSwitch(0) },
			want: func(t *testing.T, c Counters) {
				if c.FaultDrops != 35 {
					t.Errorf("FaultDrops = %d, want all 35 parked packets", c.FaultDrops)
				}
				if c.DeliveredData != 0 {
					t.Errorf("delivered %d through a dark link", c.DeliveredData)
				}
			},
		},
		{
			name: "dark-switch",
			cfg:  Config{Spray: true},
			run: func(f *Fabric) int64 {
				// Both spines rebooting: every cross-rack packet arrives at
				// a dark forwarding plane and is discarded.
				f.RebootSwitch(2, true)
				f.RebootSwitch(3, true)
				for i := 0; i < 10; i++ {
					f.Host(0).Send(packet.NewData(0, 4, 1, i, mtu, packet.PrioShort))
				}
				return 10
			},
			restore: func(f *Fabric) { f.RestoreSwitch(2); f.RestoreSwitch(3) },
			want: func(t *testing.T, c Counters) {
				if c.FaultDrops != 10 {
					t.Errorf("FaultDrops = %d, want 10 (all cross-rack)", c.FaultDrops)
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f, sinks := buildFabric(t, topo.SmallLeafSpine(), tc.cfg)
			sent := tc.run(f)
			f.Engine().RunAll()
			if tc.restore != nil {
				tc.restore(f)
				f.Engine().RunAll()
			}
			c := f.Counters
			tc.want(t, c)
			var delivered int64
			for _, s := range sinks {
				delivered += int64(len(s.received))
			}
			if delivered != c.DeliveredData+c.DeliveredCtrl {
				t.Errorf("delivered %d but counters say %d", delivered, c.DeliveredData+c.DeliveredCtrl)
			}
			if got := delivered + c.TotalDrops(); got != sent {
				t.Errorf("conservation: delivered %d + drops %d = %d, want %d sent",
					delivered, c.TotalDrops(), got, sent)
			}
		})
	}
}

// TestLinkDownBuffersThenDelivers checks LinkDown semantics: a dark link
// buffers (it does not drop), and everything flows after LinkUp.
func TestLinkDownBuffersThenDelivers(t *testing.T) {
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	eng := f.Engine()
	f.SetLinkDown(0, 0, true)
	for i := 0; i < 10; i++ {
		f.Host(1).Send(packet.NewData(1, 0, 7, i, packet.MTU, packet.PrioShort))
	}
	eng.RunAll()
	if n := len(sinks[0].received); n != 0 {
		t.Fatalf("%d packets crossed a dark link", n)
	}
	if f.Counters.TotalDrops() != 0 {
		t.Fatalf("dark link dropped: %+v", f.Counters)
	}
	restored := eng.Now()
	f.SetLinkDown(0, 0, false)
	eng.RunAll()
	if n := len(sinks[0].received); n != 10 {
		t.Fatalf("delivered %d after restore, want 10", n)
	}
	for _, at := range sinks[0].at {
		if at <= restored {
			t.Fatal("delivery timestamped before the link came back")
		}
	}
}

// TestLossBurstWindow checks that a rate-1.0 burst kills exactly the
// packets whose switch enqueue falls inside the window.
func TestLossBurstWindow(t *testing.T) {
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	eng := f.Engine()
	us := func(x int64) sim.Time { return sim.Time(x) * sim.Time(sim.Microsecond) }
	f.SetLossBurst(0, 0, us(20), 1.0)
	send := func() {
		f.Host(1).Send(packet.NewData(1, 0, 7, 0, packet.MTU, packet.PrioShort))
	}
	eng.Schedule(us(5), send)  // enqueues inside the window → dropped
	eng.Schedule(us(30), send) // after the window → delivered
	eng.RunAll()
	if f.Counters.FaultDrops != 1 {
		t.Fatalf("FaultDrops = %d, want exactly the in-window packet", f.Counters.FaultDrops)
	}
	if len(sinks[0].received) != 1 {
		t.Fatalf("delivered %d, want the post-window packet", len(sinks[0].received))
	}
}

// TestHostPauseHaltsEgress checks that a paused host buffers its own
// sends in the NIC and releases them on resume; inbound still works.
func TestHostPauseHaltsEgress(t *testing.T) {
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	eng := f.Engine()
	f.SetHostDown(0, true)
	f.Host(0).Send(packet.NewData(0, 1, 7, 0, packet.MTU, packet.PrioShort))
	f.Host(2).Send(packet.NewData(2, 0, 8, 0, packet.MTU, packet.PrioShort))
	eng.RunAll()
	if len(sinks[1].received) != 0 {
		t.Fatal("paused host transmitted")
	}
	if len(sinks[0].received) != 1 {
		t.Fatal("paused host should still receive")
	}
	f.SetHostDown(0, false)
	eng.RunAll()
	if len(sinks[1].received) != 1 {
		t.Fatal("parked packet not released on resume")
	}
}

// TestRebootKeepPreservesBuffers checks the warm-reboot drain policy:
// parked packets survive and deliver after restore.
func TestRebootKeepPreservesBuffers(t *testing.T) {
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	eng := f.Engine()
	f.SetLinkDown(0, 0, true)
	for i := 0; i < 10; i++ {
		f.Host(1).Send(packet.NewData(1, 0, 7, i, packet.MTU, packet.PrioShort))
	}
	eng.RunAll()
	f.RebootSwitch(0, false) // warm: keep buffers
	eng.RunAll()
	f.RestoreSwitch(0)
	eng.RunAll()
	if n := len(sinks[0].received); n != 10 {
		t.Fatalf("delivered %d after warm reboot, want 10", n)
	}
	if f.Counters.FaultDrops != 0 {
		t.Fatalf("warm reboot dropped: %+v", f.Counters)
	}
}

// TestRebootDrainReleasesPFC checks that a cold reboot's drain keeps the
// PFC ingress accounting consistent: upstream neighbours paused on the
// rebooted switch resume instead of wedging forever.
func TestRebootDrainReleasesPFC(t *testing.T) {
	cfg := Config{
		Spray: true, EnablePFC: true,
		PFCPause: 4 * packet.MTU, PFCResume: 2 * packet.MTU,
		PortBufferBytes: 1 << 20,
	}
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), cfg)
	eng := f.Engine()
	// Park a cross-rack incast in leaf 1's dark downlink to host 4 so the
	// spine→leaf1 ingresses accumulate and PFC pauses the spines.
	f.SetLinkDown(1, 0, true)
	for src := 0; src < 4; src++ {
		for i := 0; i < 20; i++ {
			f.Host(src).Send(packet.NewData(src, 4, uint64(src), i, packet.MTU, packet.PrioShort))
		}
	}
	eng.RunAll()
	if f.Counters.PFCPauses == 0 {
		t.Fatal("setup: PFC never paused")
	}
	f.RebootSwitch(1, true)
	eng.RunAll()
	f.RestoreSwitch(1)
	eng.RunAll()
	// The fabric must still be able to deliver cross-rack traffic.
	before := len(sinks[4].received)
	f.Host(0).Send(packet.NewData(0, 4, 99, 0, packet.MTU, packet.PrioShort))
	eng.RunAll()
	if len(sinks[4].received) != before+1 {
		t.Fatal("fabric wedged after reboot drain under PFC")
	}
}
