package netsim

import (
	"fmt"
	"sync"

	"dcpim/internal/packet"
)

// auditor is the debug-mode packet-conservation checker. It tracks every
// packet the fabric owns — from Host.Send until the drop or delivery
// release point — and records ownership violations as they happen:
// injecting a packet the fabric already owns (double-inject, or a
// protocol Released a fabric-owned packet and the pool reissued it) and
// releasing a packet the fabric does not own (double-free). AuditVerify
// then checks the conservation equation against the queues and Counters.
//
// The auditor guards the sync.Pool ownership contract (see
// packet.Packet): fault paths add new drop sites (reboot drains, dark
// switches, degraded links), and a site that forgets to release — or
// releases twice — would silently corrupt concurrent simulations sharing
// the pool.
// The mutex makes the auditor safe under sharded execution, where
// observer callbacks fire concurrently from shard goroutines. Tallies
// and set membership are commutative, so the audit verdict is still
// deterministic; only the recording order of errs can vary, and then
// only in runs that already have bugs.
type auditor struct {
	mu        sync.Mutex
	live      map[*packet.Packet]struct{}
	injected  int64
	delivered int64
	dropped   int64
	errs      []string
}

// maxAuditErrs bounds recorded violations; one bug can fire per packet.
const maxAuditErrs = 16

func (a *auditor) fail(format string, args ...any) {
	if len(a.errs) < maxAuditErrs {
		a.errs = append(a.errs, fmt.Sprintf(format, args...))
	}
}

// The auditor subscribes to the fabric as an Observer: injection,
// delivery and drop transitions arrive through the same fan-out every
// other probe uses.
func (a *auditor) PacketInjected(_ int, p *packet.Packet) { a.inject(p) }

// PacketDelivered implements Observer.
func (a *auditor) PacketDelivered(_ int, p *packet.Packet) { a.deliver(p) }

// PacketDropped implements Observer.
func (a *auditor) PacketDropped(p *packet.Packet) { a.drop(p) }

// PacketTrimmed implements Observer. Trims keep the packet in flight, so
// ownership does not change hands and the auditor ignores them.
func (a *auditor) PacketTrimmed(*packet.Packet) {}

func (a *auditor) inject(p *packet.Packet) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.live[p]; ok {
		a.fail("audit: packet injected while fabric still owns it (double-inject or premature Release): %v", p)
		return
	}
	a.live[p] = struct{}{}
	a.injected++
}

func (a *auditor) deliver(p *packet.Packet) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.live[p]; !ok {
		a.fail("audit: delivered packet the fabric does not own (double-free): %v", p)
		return
	}
	delete(a.live, p)
	a.delivered++
}

func (a *auditor) drop(p *packet.Packet) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.live[p]; !ok {
		a.fail("audit: dropped packet the fabric does not own (double-free): %v", p)
		return
	}
	delete(a.live, p)
	a.dropped++
}

// EnableAudit turns on the packet-conservation auditor. Call before any
// traffic is injected; Config.Audit does the same at construction.
func (f *Fabric) EnableAudit() {
	if f.audit == nil {
		f.audit = &auditor{live: make(map[*packet.Packet]struct{})}
		f.AddObserver(f.audit)
	}
}

// AuditErrors returns the ownership violations recorded so far, nil when
// the audit is clean or disabled.
func (f *Fabric) AuditErrors() []string {
	if f.audit == nil {
		return nil
	}
	return f.audit.errs
}

// queuedCount returns the number of packets buffered in port o, and
// checks each against the live set when an auditor is present.
func (o *outPort) auditQueued(a *auditor) int64 {
	var n int64
	for pr := range o.queues {
		for _, el := range o.queues[pr][o.heads[pr]:] {
			n++
			if _, ok := a.live[el.p]; !ok {
				a.fail("audit: queued packet not owned by fabric (released while buffered): %v", el.p)
			}
		}
	}
	return n
}

// AuditVerify checks the conservation invariant and returns every
// violation found (nil when clean). It must be called at quiescence — no
// packets in flight on links or inside host/switch processing delays —
// typically after the engine drains or after traffic has fully completed.
// The invariant: every injected packet is exactly one of delivered,
// counted-dropped, or still buffered in a NIC or switch queue, and the
// disjoint Counters agree with the auditor's own release tallies.
func (f *Fabric) AuditVerify() []string {
	a := f.audit
	if a == nil {
		return nil
	}
	f.mergeCounters()
	var queued int64
	for _, h := range f.hosts {
		queued += h.nic.auditQueued(a)
	}
	for _, d := range f.switches {
		for _, o := range d.ports {
			queued += o.auditQueued(a)
		}
	}
	if outstanding := int64(len(a.live)); a.injected != a.delivered+a.dropped+outstanding {
		a.fail("audit: ownership leak: injected %d != delivered %d + dropped %d + outstanding %d",
			a.injected, a.delivered, a.dropped, outstanding)
	}
	if queued != int64(len(a.live)) {
		a.fail("audit: %d packets owned by fabric but only %d buffered (in flight at a non-quiescent instant, or leaked)",
			len(a.live), queued)
	}
	c := &f.Counters
	if got := c.DeliveredData + c.DeliveredCtrl; got != a.delivered {
		a.fail("audit: delivery counters sum to %d, auditor delivered %d", got, a.delivered)
	}
	if got := c.TotalDrops(); got != a.dropped {
		a.fail("audit: drop counters sum to %d, auditor dropped %d (a drop site counts zero or two counters)",
			got, a.dropped)
	}
	return a.errs
}
