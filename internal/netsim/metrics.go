package netsim

import (
	"fmt"
	"sync"

	"dcpim/internal/metrics"
	"dcpim/internal/packet"
)

// portNameTab interns the per-port gauge names. A 1024-host FatTree has
// 5120 switch ports, and a sweep re-registers the same names for every
// (load, shard, seed) cell; the table formats each name once per process
// instead of once per run. Guarded by a mutex because RunMany registers
// several runs' metrics concurrently.
var portNameTab struct {
	mu    sync.Mutex
	names [][]string // [switch][port]
}

func portName(si, pi int) string {
	t := &portNameTab
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.names) <= si {
		t.names = append(t.names, nil)
	}
	for len(t.names[si]) <= pi {
		t.names[si] = append(t.names[si], "")
	}
	if t.names[si][pi] == "" {
		t.names[si][pi] = fmt.Sprintf("netsim/sw%d/port%d/queue_bytes", si, pi)
	}
	return t.names[si][pi]
}

// RegisterMetrics instruments the fabric on reg: a computed queue-depth
// gauge per switch output port, aggregate NIC and fabric occupancy, the
// port high-water mark, and — through an Observer — per-priority drop
// counters, delivered bytes/packets and trims as cumulative time series.
// No-op when reg is nil (telemetry disabled); call before traffic is
// injected.
//
// Gauge reads are pure state inspections over fixed-order device slices,
// so sampled series are deterministic. The per-port gauges are sampled,
// not updated per packet, keeping the forwarding path untouched.
func (f *Fabric) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for si, sw := range f.switches {
		for pi, port := range sw.ports {
			port := port
			reg.GaugeFunc(portName(si, pi),
				func() float64 { return float64(port.queuedBytes) })
		}
	}
	reg.GaugeFunc("netsim/nic_queued_bytes", func() float64 {
		var total int64
		for _, h := range f.hosts {
			total += h.nic.queuedBytes
		}
		return float64(total)
	})
	reg.GaugeFunc("netsim/switch_queued_bytes", func() float64 {
		var total int64
		for _, sw := range f.switches {
			for _, p := range sw.ports {
				total += p.queuedBytes
			}
		}
		return float64(total)
	})
	reg.GaugeFunc("netsim/max_port_queue_bytes", func() float64 {
		return float64(f.MaxPortQueue())
	})

	mo := &metricsObserver{
		deliveredPkts:  reg.Counter("netsim/delivered_pkts"),
		deliveredBytes: reg.Counter("netsim/delivered_bytes"),
		trims:          reg.Counter("netsim/trims"),
	}
	for pr := 0; pr < packet.NumPriorities; pr++ {
		mo.prioDrops[pr] = reg.Counter(fmt.Sprintf("netsim/drops/prio%d", pr))
	}
	f.AddObserver(mo)
}

// RegisterShardMetrics exposes the barrier-overhead counters — epochs,
// per-shard dispatched/skipped epochs, executed events, and staged
// cross-shard arrivals — as gauges on reg. Deliberately NOT part of
// RegisterMetrics: these series depend on the shard count by
// construction, and the standard metric set must stay byte-identical
// across shard counts (TestShardedByteIdentity). Opt in from
// shard-profiling runs only. No-op when reg is nil.
func (f *Fabric) RegisterShardMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("netsim/shard/epochs", func() float64 { return float64(f.Epochs()) })
	for i := range f.shards {
		s := f.shards[i]
		id := s.id
		reg.GaugeFunc(fmt.Sprintf("netsim/shard%d/events", id),
			func() float64 { return float64(s.eng.Events()) })
		reg.GaugeFunc(fmt.Sprintf("netsim/shard%d/staged_in", id),
			func() float64 { return float64(s.staged) })
		reg.GaugeFunc(fmt.Sprintf("netsim/shard%d/epochs_dispatched", id),
			func() float64 { return float64(f.grp.Dispatched(id)) })
		reg.GaugeFunc(fmt.Sprintf("netsim/shard%d/epochs_skipped", id),
			func() float64 { return float64(f.grp.Skipped(id)) })
	}
}

// metricsObserver folds packet-lifecycle events into counters so the
// Sampler can expose drops and throughput as time series rather than
// end-of-run totals.
type metricsObserver struct {
	prioDrops      [packet.NumPriorities]*metrics.Counter
	deliveredPkts  *metrics.Counter
	deliveredBytes *metrics.Counter
	trims          *metrics.Counter
}

// PacketInjected implements Observer.
func (m *metricsObserver) PacketInjected(int, *packet.Packet) {}

// PacketDelivered implements Observer.
func (m *metricsObserver) PacketDelivered(_ int, p *packet.Packet) {
	m.deliveredPkts.Inc()
	if p.Kind == packet.Data {
		m.deliveredBytes.Add(int64(p.Size))
	}
}

// PacketDropped implements Observer.
func (m *metricsObserver) PacketDropped(p *packet.Packet) {
	pr := p.Priority
	if int(pr) >= packet.NumPriorities {
		pr = packet.NumPriorities - 1
	}
	m.prioDrops[pr].Inc()
}

// PacketTrimmed implements Observer.
func (m *metricsObserver) PacketTrimmed(*packet.Packet) {
	m.trims.Inc()
}
