package netsim

import (
	"dcpim/internal/checkpoint"
	"dcpim/internal/packet"
)

// Checkpoint capture for the fabric. CaptureState serializes every piece
// of netsim state that determines future behavior — per-shard counters,
// switch fault/PFC state, per-port queue contents and transmitter state,
// per-device RNG positions, and each host's protocol state — into one
// canonical byte stream. Canonical means independent of physical layout:
// port queues are written from their live region (compaction offsets
// excluded), and devices are walked in topology order, so two fabrics in
// the same logical state always serialize identically. Capture is pure
// reads; taking a snapshot never perturbs the run.
//
// There is no fabric-level restore: resume rebuilds the fabric from its
// spec and replays deterministically to the snapshot time, then verifies
// the re-captured state byte-for-byte (see experiments.Resume). That
// verified-replay design is what lets checkpoints double as correctness
// oracles.

// StateCaptor is implemented by protocols whose state participates in
// checkpoint capture (internal/core does). Protocols without it are
// captured as a zero marker — their runs still checkpoint, but protocol
// state is not part of the divergence oracle.
type StateCaptor interface {
	CaptureState(enc *checkpoint.Encoder)
}

// CaptureState serializes the fabric's complete netsim-level state.
// Engine state (clocks, queues, RNGs) is captured separately through
// sim.Engine.CaptureState; this covers everything the fabric layers on
// top. Call it only between runs or at barriers — never from inside an
// event callback — and after mergeCounters has run (RunSynced guarantees
// both at its sync points).
func (f *Fabric) CaptureState(enc *checkpoint.Encoder) {
	enc.U32(uint32(len(f.shards)))
	for _, s := range f.shards {
		captureCounters(enc, s.counters)
		enc.U64(s.staged)
	}
	enc.U32(uint32(len(f.switches)))
	for _, d := range f.switches {
		enc.Bool(d.down)
		enc.U64(d.src.Draws())
		enc.U32(uint32(len(d.ingressBytes)))
		for _, b := range d.ingressBytes {
			enc.I64(b)
		}
		enc.U32(uint32(len(d.paused))) // lazily sized: 0 until first pause
		for _, p := range d.paused {
			enc.Bool(p)
		}
		enc.U32(uint32(len(d.ports)))
		for _, o := range d.ports {
			o.captureState(enc)
		}
	}
	enc.U32(uint32(len(f.hosts)))
	for _, h := range f.hosts {
		enc.U64(h.src.Draws())
		h.nic.captureState(enc)
		if c, ok := h.proto.(StateCaptor); ok {
			enc.U8(1)
			c.CaptureState(enc)
		} else {
			enc.U8(0)
		}
	}
}

func captureCounters(enc *checkpoint.Encoder, c *Counters) {
	enc.I64(c.DataDrops)
	enc.I64(c.CtrlDrops)
	enc.I64(c.Trims)
	enc.I64(c.AeolusDrops)
	enc.I64(c.ECNMarks)
	enc.I64(c.PFCPauses)
	enc.I64(c.PFCResumes)
	enc.I64(c.DeliveredData)
	enc.I64(c.DeliveredCtrl)
	enc.I64(c.DeliveredBytes)
	enc.I64(c.HostDrops)
	enc.I64(c.FaultDrops)
}

// captureState serializes one port: transmitter and fault state, the
// arrival-band sequence, and the live content of each priority queue.
// The compaction offsets (heads) and dead prefixes are physical layout
// and deliberately excluded.
func (o *outPort) captureState(enc *checkpoint.Encoder) {
	enc.I64(o.queuedBytes)
	enc.I64(o.maxQueued)
	enc.I64(o.txBytes)
	enc.Bool(o.busy)
	enc.Bool(o.paused)
	enc.Bool(o.down)
	enc.F64(o.lossRate)
	enc.F64(o.burstRate)
	enc.I64(int64(o.burstUntil))
	enc.U64(o.arrSeq)
	for pr := 0; pr < packet.NumPriorities; pr++ {
		q := o.queues[pr][o.heads[pr]:]
		enc.U32(uint32(len(q)))
		for _, el := range q {
			capturePacket(enc, el.p)
			enc.I64(int64(el.in))
		}
	}
}

// capturePacket serializes every packet field that influences future
// execution (pool bookkeeping excluded).
func capturePacket(enc *checkpoint.Encoder, p *packet.Packet) {
	enc.U8(uint8(p.Kind))
	enc.I64(int64(p.Src))
	enc.I64(int64(p.Dst))
	enc.U64(p.Flow)
	enc.I64(int64(p.Seq))
	enc.I64(int64(p.Size))
	enc.U8(p.Priority)
	enc.I64(p.FlowSize)
	enc.I64(p.Remaining)
	enc.I64(int64(p.CumAck))
	enc.I64(int64(p.Round))
	enc.I64(p.Epoch)
	enc.I64(int64(p.Channels))
	enc.I64(int64(p.Count))
	enc.Bool(p.ECN)
	enc.Bool(p.Trimmed)
	enc.Bool(p.Unsched)
	enc.Bool(p.CollectINT)
	enc.U32(uint32(len(p.INT)))
	for _, h := range p.INT {
		enc.I64(h.QueueBytes)
		enc.I64(h.TxBytes)
		enc.I64(int64(h.Timestamp))
		enc.F64(h.RateBps)
	}
	enc.I64(int64(p.SentAt))
	enc.U8(p.PauseClass)
}
