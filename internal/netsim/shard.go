package netsim

import (
	"dcpim/internal/sim"
)

// Sharded execution splits one fabric across several engines along the
// topology's Boundary links (rack↔spine, pod↔core): every device lives
// on exactly one shard and all of its events run on that shard's engine.
// Epochs advance all shards to a common barrier no further than one
// lookahead window (the minimum cross-shard link delay) past the
// earliest pending event, so no shard can observe an effect from another
// shard's current epoch. Packets and PFC frames crossing a boundary link
// are staged per shard pair during the epoch and scheduled on the
// destination engine at the barrier, keyed by (directed link id, link
// sequence) in the engine's arrival band — an ordering derived from
// simulation identity, not insertion order, so event execution order is
// identical at every shard count, including 1.

// shardState is the per-shard slice of the fabric: engine, disjoint
// counters, and outbound staging queues.
type shardState struct {
	id       int               //ckpt:skip shard ordinal, re-established by construction
	eng      *sim.Engine       //ckpt:skip engine wiring; EngineStates are captured by the checkpoint driver
	counters *Counters         // aliases Fabric.Counters when single-shard
	out      [][]stagedArrival //ckpt:skip barrier staging queues, empty at every capture point (synced barrier)
	staged   uint64            // cross-shard arrivals drained INTO this shard
}

// stagedArrival is one cross-shard event awaiting the barrier: an
// argument-form callback plus the arrival-band key that fixes its
// execution order on the destination engine.
type stagedArrival struct {
	at   sim.Time
	key  uint64
	fn   func(a, b any, i int)
	a, b any
	i    int
}

// stage queues a cross-shard arrival. Only the owning shard's goroutine
// appends to its out rows during an epoch, so no locking is needed.
func (s *shardState) stage(dst *shardState, at sim.Time, key uint64, fn func(a, b any, i int), a, b any, i int) {
	s.out[dst.id] = append(s.out[dst.id], stagedArrival{at, key, fn, a, b, i})
}

// bandKey packs a directed boundary link's identity and its per-link
// arrival sequence into an arrival-band ordering key: link id in the
// high 23 bits (below the band bit), sequence in the low 40. Both fields
// are range-checked: an overflow would silently bleed into the other
// field and corrupt cross-shard arrival ordering. New shards gets caught
// at build time (New checks boundary counts against maxBoundaryLinks),
// but seq grows with simulated time, so the packing itself must guard.
const (
	arrSeqBits       = 40
	maxArrSeq        = 1 << arrSeqBits
	maxBoundaryLinks = 1 << 23
)

func bandKey(linkID, seq uint64) uint64 {
	if linkID >= maxBoundaryLinks {
		panic("netsim: boundary link id overflows bandKey packing")
	}
	if seq >= maxArrSeq {
		panic("netsim: per-link arrival sequence overflows bandKey packing")
	}
	return linkID<<arrSeqBits | seq
}

// Run advances the simulation to until across all shards. With one
// shard it is exactly Engine.Run; with several it executes
// barrier-synchronized epochs, draining staged cross-shard arrivals at
// each barrier. Fabric.Counters is up to date when it returns.
func (f *Fabric) Run(until sim.Time) { f.RunSynced(until, 0, nil) }

// RunSynced is Run with evenly spaced synchronization points: atSync is
// called at every multiple of interval up to until, after all events at
// that instant have executed and counters have merged — the hook the
// metrics sampler uses so that sampled series are identical at every
// shard count. interval <= 0 disables the hook.
func (f *Fabric) RunSynced(until sim.Time, interval sim.Duration, atSync func(sim.Time)) {
	if len(f.shards) == 1 {
		eng := f.eng
		if interval > 0 {
			// Sample points at or before the current clock were already
			// taken by an earlier windowed call (checkpointing drivers call
			// RunSynced repeatedly with increasing horizons); <= keeps the
			// resumed schedule identical to one uninterrupted call.
			for next := sim.Time(interval); next <= until; next = next.Add(interval) {
				if next <= eng.Now() {
					continue
				}
				eng.Run(next)
				if atSync != nil {
					atSync(next)
				}
			}
		}
		eng.Run(until)
		return
	}

	now := f.grp.Now()
	next := sim.Time(interval)
	for interval > 0 && next <= now {
		next = next.Add(interval)
	}
	// Epoch target: one lookahead past the earliest pending event, minus
	// one picosecond. Every staged arrival from an epoch ending at T
	// lands strictly after T — a cross-shard packet arrives at
	// send + tx + delay ≥ M + 1ps + W, and a PFC frame at send + delay ≥
	// M + W, both > M + W − 1ps — so the barrier never truncates a
	// causal chain.
	for now < until {
		t := until
		if m, ok := f.grp.NextAt(); ok {
			if c := m.Add(f.lookahead) - 1; c < t {
				t = c
			}
		}
		if interval > 0 && next <= until && next < t {
			t = next
		}
		f.grp.RunEpoch(t)
		f.drainStaging()
		now = t
		if interval > 0 && now == next {
			f.mergeCounters()
			if atSync != nil {
				atSync(now)
			}
			next = next.Add(interval)
		}
	}
	f.mergeCounters()
}

// drainStaging moves every staged cross-shard arrival onto its
// destination engine. Runs between epochs on the coordinating
// goroutine; arrival-band keys make the heap insertion order
// irrelevant, but shards are drained in id order anyway so the pass is
// fully deterministic.
func (f *Fabric) drainStaging() {
	for _, src := range f.shards {
		for di, q := range src.out {
			if len(q) == 0 {
				continue
			}
			dst := f.shards[di]
			dst.staged += uint64(len(q))
			for _, s := range q {
				dst.eng.ScheduleArrival(s.at, s.key, s.fn, s.a, s.b, s.i)
			}
			for i := range q {
				q[i] = stagedArrival{} // drop packet references
			}
			src.out[di] = q[:0]
		}
	}
}

// mergeCounters recomputes Fabric.Counters as the sum of the per-shard
// counters. No-op when single-shard (the shard's counters alias the
// fabric's). Recomputing from scratch keeps the merge idempotent, so it
// can run at every barrier and at quiescence without double counting.
func (f *Fabric) mergeCounters() {
	if len(f.shards) == 1 {
		return
	}
	var c Counters
	for _, s := range f.shards {
		sc := s.counters
		c.DataDrops += sc.DataDrops
		c.CtrlDrops += sc.CtrlDrops
		c.Trims += sc.Trims
		c.AeolusDrops += sc.AeolusDrops
		c.ECNMarks += sc.ECNMarks
		c.PFCPauses += sc.PFCPauses
		c.PFCResumes += sc.PFCResumes
		c.DeliveredData += sc.DeliveredData
		c.DeliveredCtrl += sc.DeliveredCtrl
		c.DeliveredBytes += sc.DeliveredBytes
		c.HostDrops += sc.HostDrops
		c.FaultDrops += sc.FaultDrops
	}
	f.Counters = c
}

// NumShards returns how many shards the fabric runs on.
func (f *Fabric) NumShards() int { return len(f.shards) }

// ShardStats describes one shard's share of a sharded run — the numbers
// that quantify barrier overhead: how many epochs the shard actually had
// work in (versus idle-skipped at the barrier), how many events it
// executed, and how many cross-shard arrivals were staged into it. All
// are plain counters maintained unconditionally (their upkeep is noise
// against an epoch's channel round-trip); they are only formatted when a
// caller opts in via RegisterShardMetrics or reads them here.
type ShardStats struct {
	Shard      int
	Events     uint64 // events executed on the shard's engine
	Pending    int    // events still queued (0 after a drained run)
	Staged     uint64 // cross-shard arrivals drained into this shard
	Dispatched uint64 // epochs the shard had work inside the window
	Skipped    uint64 // epochs the shard was idle and only advanced its clock
}

// ShardStats returns per-shard barrier-overhead counters, indexed by
// shard id. Epochs() gives the common denominator.
func (f *Fabric) ShardStats() []ShardStats {
	out := make([]ShardStats, len(f.shards))
	for i, s := range f.shards {
		out[i] = ShardStats{
			Shard:   i,
			Events:  s.eng.Events(),
			Pending: s.eng.Pending(),
			Staged:  s.staged,
		}
		if f.grp != nil {
			out[i].Dispatched = f.grp.Dispatched(i)
			out[i].Skipped = f.grp.Skipped(i)
		}
	}
	return out
}

// Epochs returns the number of barriers executed (0 when single-shard
// without a group).
func (f *Fabric) Epochs() uint64 {
	if f.grp == nil {
		return 0
	}
	return f.grp.Epochs()
}

// Lookahead returns the conservative synchronization window: the
// minimum delay over cross-shard links (0 when single-shard).
func (f *Fabric) Lookahead() sim.Duration { return f.lookahead }

// ShardOfHost returns the shard owning host h.
func (f *Fabric) ShardOfHost(h int) int { return f.hosts[h].sh.id }

// HostEngine returns the engine host h's events run on. Protocol code
// reaches it through Host.Engine; fault installers use this form.
func (f *Fabric) HostEngine(h int) *sim.Engine { return f.hosts[h].sh.eng }

// SwitchEngine returns the engine switch sw's events run on.
func (f *Fabric) SwitchEngine(sw int) *sim.Engine { return f.switches[sw].sh.eng }

// deviceSeed derives a per-device RNG seed from the run seed (splitmix64
// finalizer). Every random draw a device makes comes from its own
// stream, so draw order — and therefore every sampled value — does not
// depend on how devices interleave across shards.
func deviceSeed(seed int64, kind, id int) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(kind)<<32|uint64(uint32(id))+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
