package netsim

import "dcpim/internal/packet"

// Observer watches the fabric's packet lifecycle. It is the single
// attachment surface for instrumentation: tracing (trace.Attach), the
// packet-conservation auditor (EnableAudit), delivered-stream digests and
// metrics probes all register through AddObserver and receive the same
// fan-out, replacing the earlier per-purpose hook fields.
//
// Callbacks run synchronously at the fabric's ownership transition
// points. Observers must copy whatever they need from the packet — the
// fabric recycles it when the observed transition completes — and must
// not mutate packets, inject traffic, or draw randomness (determinism
// depends on observers being pure recorders).
type Observer interface {
	// PacketInjected fires when a host hands a packet to its NIC stack
	// (Host.Send): the moment the fabric takes ownership.
	PacketInjected(host int, p *packet.Packet)
	// PacketDelivered fires just before the destination protocol's
	// OnPacket, after delivery counters update.
	PacketDelivered(host int, p *packet.Packet)
	// PacketDropped fires at every drop site — switch and NIC drop-tail,
	// Aeolus selective drops, random loss, and injected faults — after
	// the drop counters update and before the packet is recycled.
	PacketDropped(p *packet.Packet)
	// PacketTrimmed fires when a data packet is trimmed to a header
	// (NDP). Trimmed packets are still delivered, so a trim is not a
	// drop.
	PacketTrimmed(p *packet.Packet)
}

// AddObserver registers o; every observer receives every event in
// registration order. Register before traffic is injected.
func (f *Fabric) AddObserver(o Observer) {
	f.obs = append(f.obs, o)
}

// ObserverFuncs adapts bare functions to Observer; nil fields no-op.
// Tests and single-purpose probes use it to subscribe to one lifecycle
// point without stubbing the rest.
type ObserverFuncs struct {
	Injected  func(host int, p *packet.Packet)
	Delivered func(host int, p *packet.Packet)
	Dropped   func(p *packet.Packet)
	Trimmed   func(p *packet.Packet)
}

// PacketInjected implements Observer.
func (o ObserverFuncs) PacketInjected(host int, p *packet.Packet) {
	if o.Injected != nil {
		o.Injected(host, p)
	}
}

// PacketDelivered implements Observer.
func (o ObserverFuncs) PacketDelivered(host int, p *packet.Packet) {
	if o.Delivered != nil {
		o.Delivered(host, p)
	}
}

// PacketDropped implements Observer.
func (o ObserverFuncs) PacketDropped(p *packet.Packet) {
	if o.Dropped != nil {
		o.Dropped(p)
	}
}

// PacketTrimmed implements Observer.
func (o ObserverFuncs) PacketTrimmed(p *packet.Packet) {
	if o.Trimmed != nil {
		o.Trimmed(p)
	}
}
