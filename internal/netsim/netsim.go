// Package netsim simulates a datacenter network fabric at packet level on
// top of the sim engine: hosts with NIC egress queues, output-queued
// switches with eight strict-priority queues and shared per-port buffers,
// per-packet spraying or per-flow ECMP multipathing, and the switch
// dataplane features the evaluated protocols rely on — ECN marking (DCTCP),
// packet trimming (NDP), priority flow control (HPCC), and in-band network
// telemetry (HPCC).
//
// The fabric is protocol-agnostic: transports implement the Protocol
// interface and exchange packet.Packets through their Host.
package netsim

import (
	"fmt"
	"math/rand"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// Config selects the fabric's dataplane features. The zero value gives
// plain drop-tail priority queues with per-packet spraying and the default
// 500 KB port buffers.
type Config struct {
	// PortBufferBytes is the buffer shared by all priority queues of one
	// switch output port. 0 selects the paper's 500 KB default.
	PortBufferBytes int64
	// ECNThresholdBytes marks Data packets (ECN bit) enqueued while the
	// port holds at least this many bytes. 0 disables marking.
	ECNThresholdBytes int64
	// TrimThresholdBytes trims Data packets to headers instead of
	// dropping when the port holds at least this many bytes (NDP).
	// 0 disables trimming.
	TrimThresholdBytes int64
	// AeolusThresholdBytes drops *unscheduled* Data packets (Unsched set)
	// arriving when the port holds at least this many bytes — Aeolus's
	// selective dropping. 0 disables.
	AeolusThresholdBytes int64
	// EnablePFC turns on hop-by-hop priority flow control with the given
	// per-ingress pause/resume watermarks (bytes buffered at the
	// downstream node attributable to one ingress).
	EnablePFC bool
	PFCPause  int64
	PFCResume int64
	// Spray selects per-packet uniform spraying across equal-cost ports;
	// when false the fabric ECMP-hashes on the flow id.
	Spray bool
	// HostQueueBytes bounds the NIC egress queue. 0 means effectively
	// unbounded (protocols are trusted to pace themselves).
	HostQueueBytes int64
	// RandomLossRate drops each packet (data AND control) at each switch
	// enqueue with this probability — failure injection for protocol
	// robustness tests. 0 disables.
	RandomLossRate float64
	// Audit enables the packet-conservation auditor (see EnableAudit).
	Audit bool
}

// DefaultPortBuffer is the paper's per-port buffer (Table 1).
const DefaultPortBuffer = 500 << 10

// Counters aggregates fabric-wide dataplane statistics. The five drop
// counters are disjoint — every dropped packet increments exactly one of
// them — so they sum to the total loss (the conservation equation the
// auditor checks). Trims and ECNMarks are not drops: a trimmed or marked
// packet is still delivered.
type Counters struct {
	DataDrops      int64 // data lost to drop-tail or random loss at switch ports
	CtrlDrops      int64 // control lost to drop-tail or random loss at switch ports
	Trims          int64
	AeolusDrops    int64 // unscheduled data selectively dropped (Aeolus)
	ECNMarks       int64
	PFCPauses      int64
	PFCResumes     int64
	DeliveredData  int64 // data packets handed to destination protocols
	DeliveredCtrl  int64 // control packets handed to destination protocols
	DeliveredBytes int64 // wire bytes of delivered data packets
	HostDrops      int64 // NIC egress overflow (bounded host queues only)
	FaultDrops     int64 // injected faults: degraded links, loss bursts, reboot drains, dark switches
}

// TotalDrops sums the disjoint drop counters.
func (c *Counters) TotalDrops() int64 {
	return c.DataDrops + c.CtrlDrops + c.AeolusDrops + c.HostDrops + c.FaultDrops
}

// Protocol is a transport running on one host. The fabric calls Start once
// before the simulation begins, OnFlowArrival when the workload hands the
// host a new flow to send, and OnPacket for every packet addressed to the
// host. Implementations schedule their own timers through Host.Engine.
type Protocol interface {
	Start(h *Host)
	OnFlowArrival(f workload.Flow)
	OnPacket(p *packet.Packet)
}

// Fabric is an instantiated network: topology + devices + configuration.
// Its checkpoint (netsim/checkpoint.go) captures the dynamic plane —
// shard counters, port queues, device fault state, protocol state —
// while topology and execution wiring are reconstructed by building the
// same fabric again before Restore.
type Fabric struct {
	eng  *sim.Engine    //ckpt:skip shard 0's engine, captured through shardState
	topo *topo.Topology //ckpt:skip static topology, rebuilt by construction before restore
	cfg  Config         //ckpt:skip construction input, supplied again by the resuming run

	// Sharded execution state (see shard.go). A fabric built with New has
	// one shard whose engine is eng and whose counters alias Counters, so
	// the serial path is unchanged.
	grp       *sim.Group      //ckpt:skip execution wiring, rebuilt by Shard; its counters are captured separately
	part      *topo.Partition //ckpt:skip derived from topology + shard count at construction
	shards    []*shardState
	lookahead sim.Duration //ckpt:skip derived from topology boundary delays at construction

	hosts    []*Host
	switches []*swDev

	// Counters aggregates across shards. Always current single-shard;
	// with several shards it is recomputed at every barrier and when Run
	// returns, so read it between runs, not from inside event callbacks.
	Counters Counters //ckpt:skip aggregate view, recomputed from the captured per-shard counters

	// audit, when non-nil, tracks every packet the fabric owns and flags
	// leaks, double-frees, and counter mismatches (see EnableAudit). It
	// receives events as one of the observers but keeps a direct
	// reference for AuditVerify/AuditErrors.
	audit *auditor //ckpt:skip debugging instrumentation, re-enabled by the resuming run if wanted

	// obs fans packet-lifecycle events out to every registered Observer
	// (tracing, auditing, digests, metrics probes). Empty for
	// uninstrumented runs, which keeps the hot path allocation-free.
	obs []Observer //ckpt:skip observer wiring, re-registered at setup
}

// New builds a single-shard fabric over the topology: everything runs on
// eng and callers drive it with eng.Run as before. Protocols are attached
// afterwards with AttachProtocol (every host must have one before Run).
func New(eng *sim.Engine, t *topo.Topology, cfg Config) *Fabric {
	part, err := topo.MakePartition(t, 1)
	if err != nil {
		panic(err)
	}
	return NewSharded(sim.NewGroup([]*sim.Engine{eng}), t, cfg, part)
}

// NewSharded builds a fabric split across the group's engines according
// to the partition (one engine per shard; every engine must carry the
// same seed, which also seeds the per-device random streams). Drive it
// with Fabric.Run or RunSynced — never a member engine's Run directly —
// and close the group when done. Output is byte-identical to the same
// seed on any other shard count.
func NewSharded(grp *sim.Group, t *topo.Topology, cfg Config, part *topo.Partition) *Fabric {
	if grp.N() != part.NumShards {
		panic(fmt.Sprintf("netsim: %d engines for %d shards", grp.N(), part.NumShards))
	}
	if cfg.PortBufferBytes == 0 {
		cfg.PortBufferBytes = DefaultPortBuffer
	}
	if cfg.HostQueueBytes == 0 {
		cfg.HostQueueBytes = 1 << 40
	}
	if cfg.EnablePFC {
		if cfg.PFCPause == 0 {
			cfg.PFCPause = cfg.PortBufferBytes / 2
		}
		if cfg.PFCResume == 0 {
			cfg.PFCResume = cfg.PFCPause / 2
		}
	}
	f := &Fabric{
		eng: grp.Engine(0), topo: t, cfg: cfg,
		grp: grp, part: part, lookahead: part.Lookahead,
	}
	n := grp.N()
	seed := f.eng.Seed()
	for i := 0; i < n; i++ {
		s := &shardState{id: i, eng: grp.Engine(i)}
		if n == 1 {
			s.counters = &f.Counters
		} else {
			s.counters = new(Counters)
			s.out = make([][]stagedArrival, n)
		}
		f.shards = append(f.shards, s)
	}
	if cfg.Audit {
		f.EnableAudit()
	}

	f.switches = make([]*swDev, len(t.Switches))
	for i, sw := range t.Switches {
		sh := f.shards[part.SwitchShard[i]]
		src := sim.NewCountingSource(deviceSeed(seed, 1, i))
		d := &swDev{
			fab: f, spec: sw, sh: sh,
			src: src, rng: rand.New(src),
		}
		d.ports = make([]*outPort, len(sw.Ports))
		d.ingressBytes = make([]int64, len(sw.Ports)+1)
		for pi, p := range sw.Ports {
			d.ports[pi] = &outPort{
				fab: f, sh: sh, rng: d.rng,
				rate: p.Rate, delay: p.Delay,
				capacity: cfg.PortBufferBytes,
				owner:    d, ownerPort: pi,
			}
		}
		f.switches[i] = d
	}
	f.hosts = make([]*Host, t.NumHosts)
	for h := 0; h < t.NumHosts; h++ {
		up := t.HostLink
		sh := f.shards[part.HostShard[h]]
		src := sim.NewCountingSource(deviceSeed(seed, 2, h))
		host := &Host{
			id: h, fab: f, sh: sh,
			src: src, rng: rand.New(src),
		}
		host.nic = &outPort{
			fab: f, sh: sh, rng: host.rng,
			rate: up.Rate, delay: up.Delay,
			capacity: cfg.HostQueueBytes,
			hostNIC:  host,
		}
		f.hosts[h] = host
	}

	// Wire boundary egress: directed boundary links get stable ids in
	// (switch, port) order, and each boundary port learns its peer so
	// tryTransmit can schedule the fused forward event — intra-shard via
	// its own engine's arrival band, cross-shard via staging.
	var linkID uint64
	for _, sw := range t.Switches {
		for pi, p := range sw.Ports {
			if p.ToHost || !p.Boundary {
				continue
			}
			o := f.switches[sw.ID].ports[pi]
			o.boundary = true
			o.linkID = linkID
			o.peerSw = f.switches[p.Peer]
			o.peerIn = p.PeerPort
			linkID++
		}
	}
	if linkID >= maxBoundaryLinks {
		panic("netsim: too many boundary links for the arrival-band key space")
	}
	return f
}

// Engine returns the event engine driving the fabric.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *topo.Topology { return f.topo }

// Host returns host h.
func (f *Fabric) Host(h int) *Host { return f.hosts[h] }

// AttachProtocol installs p on host h.
func (f *Fabric) AttachProtocol(h int, p Protocol) {
	f.hosts[h].proto = p
}

// Start calls Start on every attached protocol. Must run before events.
func (f *Fabric) Start() {
	for _, h := range f.hosts {
		if h.proto == nil {
			panic(fmt.Sprintf("netsim: host %d has no protocol", h.id))
		}
		h.proto.Start(h)
	}
}

// Inject schedules every flow of the trace as an arrival event at its
// sender, on the sender's shard. Trace order within a shard is preserved,
// so arrivals tie-break identically at every shard count.
func (f *Fabric) Inject(tr *workload.Trace) {
	for _, fl := range tr.Flows {
		fl := fl
		h := f.hosts[fl.Src]
		h.sh.eng.Schedule(fl.Arrival, func() {
			h.proto.OnFlowArrival(fl)
		})
	}
}

// Host is one end host: a protocol instance plus a NIC egress queue.
type Host struct {
	id    int                 //ckpt:skip topology identity, re-established by construction
	fab   *Fabric             //ckpt:skip owner back-pointer, re-established by construction
	sh    *shardState         //ckpt:skip shard wiring, re-established by construction
	src   *sim.CountingSource // rng's source, counted for checkpointing
	rng   *rand.Rand          //ckpt:skip rebuilt from the host seed + captured src draws
	proto Protocol
	nic   *outPort
}

// ID returns the host id.
func (h *Host) ID() int { return h.id }

// Engine returns the engine this host's events run on (the shard's
// engine; the fabric-wide engine when single-shard). Protocols must
// schedule all their timers here.
func (h *Host) Engine() *sim.Engine { return h.sh.eng }

// Rng returns the host's private deterministic random stream. Protocols
// must draw here rather than from Engine().Rand(): per-host streams make
// draw sequences independent of cross-host event interleaving, which
// sharded execution requires.
func (h *Host) Rng() *rand.Rand { return h.rng }

// Topo returns the topology (for RTT/BDP math in protocols).
func (h *Host) Topo() *topo.Topology { return h.fab.topo }

// LineRate returns the host's access link rate in bits per second.
func (h *Host) LineRate() float64 { return h.nic.rate }

// NICQueuedBytes returns the bytes currently queued in the NIC, which
// window/pacing protocols use to avoid building local queues.
func (h *Host) NICQueuedBytes() int64 { return h.nic.queuedBytes }

// Send hands a packet to the NIC after the host's stack latency. The
// packet must have Src == h.ID(); the fabric owns it afterwards.
func (h *Host) Send(p *packet.Packet) {
	if p.Src != h.id {
		panic("netsim: packet Src does not match sending host")
	}
	p.SentAt = h.sh.eng.Now()
	for _, o := range h.fab.obs {
		o.PacketInjected(h.id, p)
	}
	h.sh.eng.AfterFunc(h.fab.topo.HostDelay, hostEnqueue, h, p, 0)
}

func hostEnqueue(a, b any, _ int) {
	a.(*Host).nic.enqueue(b.(*packet.Packet))
}

// deliver passes a packet up the receive stack to the protocol.
func (h *Host) deliver(p *packet.Packet) {
	h.sh.eng.AfterFunc(h.fab.topo.HostDelay, hostDeliver, h, p, 0)
}

// hostDeliver is the fabric's delivery point and one of its two packet
// release points: once the protocol's OnPacket returns the packet is
// recycled, unless the protocol claimed it with packet.Keep.
func hostDeliver(a, b any, _ int) {
	h := a.(*Host)
	p := b.(*packet.Packet)
	if p.Kind == packet.Data {
		h.sh.counters.DeliveredData++
		h.sh.counters.DeliveredBytes += int64(p.Size)
	} else {
		h.sh.counters.DeliveredCtrl++
	}
	for _, o := range h.fab.obs {
		o.PacketDelivered(h.id, p)
	}
	h.proto.OnPacket(p)
	packet.ReleaseUnlessKept(p)
}

// swDev is a running switch: per-port output queues plus PFC state.
type swDev struct {
	fab   *Fabric             //ckpt:skip owner back-pointer, re-established by construction
	spec  *topo.Switch        //ckpt:skip static topology, rebuilt by construction
	sh    *shardState         //ckpt:skip shard wiring, re-established by construction
	src   *sim.CountingSource // rng's source, counted for checkpointing
	rng   *rand.Rand          //ckpt:skip rebuilt from the switch seed + captured src draws
	ports []*outPort

	// down marks a rebooting switch: arrivals are discarded (FaultDrops)
	// until RestoreSwitch brings the forwarding plane back.
	down bool

	// ingressBytes tracks, per ingress port, bytes currently buffered in
	// this switch that arrived through that port (PFC accounting). Index
	// len(ports) is used for packets from directly attached hosts, which
	// are never paused collectively — host pause state is per host port.
	ingressBytes []int64
	paused       []bool // lazily sized; whether we've paused each ingress
}

// receive handles a packet arriving at the switch from ingress port `in`
// (-1 for host-attached arrivals; those are accounted per their host
// port). Processing latency is applied before enqueueing.
func (d *swDev) receive(p *packet.Packet, in int) {
	d.sh.eng.AfterFunc(d.fab.topo.SwitchDelay, swForward, d, p, in)
}

func swForward(a, b any, in int) {
	a.(*swDev).forward(b.(*packet.Packet), in)
}

func (d *swDev) forward(p *packet.Packet, in int) {
	if p.Dst < 0 || p.Dst >= d.fab.topo.NumHosts {
		panic("netsim: packet to unknown host")
	}
	if d.down {
		d.sh.counters.FaultDrops++
		d.fab.dropped(p)
		return
	}
	pi, cands := d.spec.Route(p.Dst)
	if pi < 0 {
		// Multipath: spray draws from the device RNG, ECMP hashes flow
		// identity; a resolved down port consumes no randomness in either
		// mode (matching the old single-candidate table rows).
		if d.fab.cfg.Spray {
			pi = cands[d.rng.Intn(len(cands))]
		} else {
			pi = cands[ecmpHash(p.Flow, p.Src, p.Dst)%uint64(len(cands))]
		}
	}
	port := d.ports[pi]
	port.enqueueAt(p, d, in)
}

// ecmpHash mixes flow identity into a path choice (64-bit splitmix).
func ecmpHash(flow uint64, src, dst int) uint64 {
	x := flow*0x9e3779b97f4a7c15 + uint64(src)<<32 + uint64(dst)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MaxPortQueue returns the highest buffer occupancy any switch output
// port reached during the run, in bytes. The paper argues dcPIM bounds
// this near one BDP (token windows admit exactly one RTT of data);
// experiments and tests assert it.
func (f *Fabric) MaxPortQueue() int64 {
	var max int64
	for _, sw := range f.switches {
		for _, p := range sw.ports {
			if p.maxQueued > max {
				max = p.maxQueued
			}
		}
	}
	return max
}
