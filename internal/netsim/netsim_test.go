package netsim

import (
	"strings"
	"testing"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// sink is a trivial protocol that records everything it receives and can
// be handed packets to transmit.
type sink struct {
	host     *Host
	received []*packet.Packet
	at       []sim.Time
	onPacket func(p *packet.Packet)
}

func (s *sink) Start(h *Host)                 { s.host = h }
func (s *sink) OnFlowArrival(f workload.Flow) {}
func (s *sink) OnPacket(p *packet.Packet) {
	p.Keep() // retained in received past OnPacket; tests inspect it later
	s.received = append(s.received, p)
	s.at = append(s.at, s.host.Engine().Now())
	if s.onPacket != nil {
		s.onPacket(p)
	}
}

func buildFabric(t *testing.T, cfgTopo topo.LeafSpineConfig, cfg Config) (*Fabric, []*sink) {
	t.Helper()
	eng := sim.NewEngine(1)
	tp := cfgTopo.Build()
	f := New(eng, tp, cfg)
	// Every fabric test runs under the conservation auditor; the check
	// fires after the test body, when the engine has drained.
	f.EnableAudit()
	t.Cleanup(func() {
		if errs := f.AuditVerify(); len(errs) != 0 {
			t.Errorf("packet conservation audit failed:\n%s", strings.Join(errs, "\n"))
		}
	})
	sinks := make([]*sink, tp.NumHosts)
	for i := range sinks {
		sinks[i] = &sink{}
		f.AttachProtocol(i, sinks[i])
	}
	f.Start()
	return f, sinks
}

func TestUnloadedDeliveryLatency(t *testing.T) {
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	eng := f.Engine()
	tp := f.Topology()

	// Cross-rack MTU data packet: delivery time must equal the analytic
	// one-way delay exactly (this pins the whole latency model).
	p := packet.NewData(0, 7, 1, 0, packet.MTU, packet.PrioShort)
	f.Host(0).Send(p)
	eng.RunAll()
	if len(sinks[7].received) != 1 {
		t.Fatalf("received %d packets, want 1", len(sinks[7].received))
	}
	want := tp.OneWayDelay(0, 7, packet.MTU)
	if got := sinks[7].at[0]; got != sim.Time(want) {
		t.Fatalf("delivery at %v, want %v", got, want)
	}

	// Control packet, same rack.
	c := packet.NewControl(packet.Token, 1, 2, 5)
	f.Host(1).Send(c)
	start := eng.Now()
	eng.RunAll()
	if len(sinks[2].received) != 1 {
		t.Fatal("control packet lost")
	}
	wantCtl := tp.OneWayDelay(1, 2, packet.HeaderSize)
	if got := sinks[2].at[0].Sub(start); got != wantCtl {
		t.Fatalf("ctrl delivery took %v, want %v", got, wantCtl)
	}
}

func TestSerializationBackToBack(t *testing.T) {
	// Two MTU packets sent at once arrive exactly one access-link
	// serialization time apart (the core is faster, so spacing is set by
	// the 100G access link).
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	f.Host(0).Send(packet.NewData(0, 7, 1, 0, packet.MTU, packet.PrioShort))
	f.Host(0).Send(packet.NewData(0, 7, 1, 1, packet.MTU, packet.PrioShort))
	f.Engine().RunAll()
	if len(sinks[7].received) != 2 {
		t.Fatalf("received %d, want 2", len(sinks[7].received))
	}
	gap := sinks[7].at[1].Sub(sinks[7].at[0])
	want := sim.TransmissionTime(packet.MTU, 100e9)
	if gap != want {
		t.Fatalf("arrival gap = %v, want %v", gap, want)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Enqueue a low-priority packet then a burst of high-priority ones;
	// after the in-flight low packet, all high-priority packets overtake
	// queued low-priority ones.
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	for i := 0; i < 4; i++ {
		f.Host(0).Send(packet.NewData(0, 7, 1, i, packet.MTU, packet.PrioDataLow))
	}
	for i := 0; i < 4; i++ {
		f.Host(0).Send(packet.NewData(0, 7, 2, i, packet.MTU, packet.PrioShort))
	}
	f.Engine().RunAll()
	if len(sinks[7].received) != 8 {
		t.Fatalf("received %d, want 8", len(sinks[7].received))
	}
	// First received is the head-of-line low packet (already committed),
	// then the four short ones, then the remaining low ones.
	order := make([]uint64, 0, 8)
	for _, p := range sinks[7].received {
		order = append(order, p.Flow)
	}
	want := []uint64{1, 2, 2, 2, 2, 1, 1, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSprayingUsesAllSpines(t *testing.T) {
	// Default leaf-spine has 4 spines; sending many packets cross-rack
	// must use all of them. We detect path diversity via arrival overlap:
	// with spraying, 4 packets can be in flight concurrently on the core.
	eng := sim.NewEngine(1)
	tp := topo.DefaultLeafSpine().Build()
	f := New(eng, tp, Config{Spray: true})
	s := &sink{}
	for i := 0; i < tp.NumHosts; i++ {
		if i == 143 {
			f.AttachProtocol(i, s)
		} else {
			f.AttachProtocol(i, &sink{})
		}
	}
	f.Start()
	// Count spine usage directly from switch counters.
	for i := 0; i < 400; i++ {
		f.Host(0).Send(packet.NewData(0, 143, uint64(i), 0, packet.MTU, packet.PrioShort))
	}
	eng.RunAll()
	used := 0
	for si := 9; si < 13; si++ { // spines are switches 9..12
		sw := f.switches[si]
		for _, p := range sw.ports {
			if p.txBytes > 0 {
				used++
				break
			}
		}
	}
	if used != 4 {
		t.Fatalf("spines used = %d, want 4", used)
	}
	if len(s.received) != 400 {
		t.Fatalf("delivered %d, want 400", len(s.received))
	}
}

func TestECMPSticksToOnePath(t *testing.T) {
	eng := sim.NewEngine(1)
	tp := topo.DefaultLeafSpine().Build()
	f := New(eng, tp, Config{Spray: false})
	for i := 0; i < tp.NumHosts; i++ {
		f.AttachProtocol(i, &sink{})
	}
	f.Start()
	for i := 0; i < 100; i++ {
		f.Host(0).Send(packet.NewData(0, 143, 77, i, packet.MTU, packet.PrioShort))
	}
	eng.RunAll()
	used := 0
	for si := 9; si < 13; si++ {
		sw := f.switches[si]
		for _, p := range sw.ports {
			if p.txBytes > 0 {
				used++
				break
			}
		}
	}
	if used != 1 {
		t.Fatalf("ECMP flow used %d spines, want 1", used)
	}
}

func TestDropTailAndCounters(t *testing.T) {
	// Tiny port buffers: an incast through one downlink must drop.
	cfg := Config{Spray: true, PortBufferBytes: 5 * packet.MTU}
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), cfg)
	for src := 1; src < 8; src++ {
		for i := 0; i < 20; i++ {
			f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioShort))
		}
	}
	f.Engine().RunAll()
	if f.Counters.DataDrops == 0 {
		t.Fatal("expected drops with tiny buffers")
	}
	if got := int64(len(sinks[0].received)) + f.Counters.DataDrops; got != 140 {
		t.Fatalf("delivered+dropped = %d, want 140 (conservation)", got)
	}
	if f.Counters.DeliveredData != int64(len(sinks[0].received)) {
		t.Fatal("DeliveredData counter mismatch")
	}
}

func TestECNMarking(t *testing.T) {
	cfg := Config{Spray: true, ECNThresholdBytes: 3 * packet.MTU}
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), cfg)
	for src := 1; src < 8; src++ {
		for i := 0; i < 10; i++ {
			f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioShort))
		}
	}
	f.Engine().RunAll()
	if f.Counters.ECNMarks == 0 {
		t.Fatal("no ECN marks under congestion")
	}
	marked := 0
	for _, p := range sinks[0].received {
		if p.ECN {
			marked++
		}
	}
	if int64(marked) != f.Counters.ECNMarks {
		t.Fatalf("marked delivered %d vs counter %d", marked, f.Counters.ECNMarks)
	}
}

func TestTrimming(t *testing.T) {
	cfg := Config{Spray: true, TrimThresholdBytes: 8 * packet.MTU}
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), cfg)
	for src := 1; src < 8; src++ {
		for i := 0; i < 20; i++ {
			f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioDataHigh))
		}
	}
	f.Engine().RunAll()
	if f.Counters.Trims == 0 {
		t.Fatal("no trims under congestion")
	}
	full, trimmed := 0, 0
	for _, p := range sinks[0].received {
		if p.Trimmed {
			trimmed++
			if p.Size != packet.HeaderSize || p.Priority != packet.PrioControl {
				t.Fatal("trimmed packet not header-sized at control priority")
			}
		} else {
			full++
		}
	}
	// Everything arrives: trimming replaces dropping.
	if full+trimmed != 140 {
		t.Fatalf("full %d + trimmed %d != 140 (drops=%d)", full, trimmed, f.Counters.DataDrops)
	}
	if int64(trimmed) != f.Counters.Trims {
		t.Fatalf("trimmed delivered %d vs counter %d", trimmed, f.Counters.Trims)
	}
}

func TestAeolusSelectiveDrop(t *testing.T) {
	cfg := Config{Spray: true, AeolusThresholdBytes: 3 * packet.MTU}
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), cfg)
	for src := 1; src < 8; src++ {
		for i := 0; i < 10; i++ {
			p := packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioShort)
			p.Unsched = true
			f.Host(src).Send(p)
		}
	}
	// Scheduled packets at the same priority are spared.
	f.Host(1).Send(packet.NewData(1, 0, 99, 0, packet.MTU, packet.PrioShort))
	f.Engine().RunAll()
	if f.Counters.AeolusDrops == 0 {
		t.Fatal("no Aeolus drops under congestion")
	}
	for _, p := range sinks[0].received {
		if p.Flow == 99 {
			return // scheduled packet survived
		}
	}
	t.Fatal("scheduled packet was dropped")
}

func TestPFCPausesUpstream(t *testing.T) {
	cfg := Config{
		Spray: true, EnablePFC: true,
		PFCPause: 10 * packet.MTU, PFCResume: 5 * packet.MTU,
		PortBufferBytes: 1 << 20,
	}
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), cfg)
	// Incast from 7 hosts into host 0 overflows the ToR downlink; PFC
	// must pause and, because the buffer is ample, nothing is dropped.
	for src := 1; src < 8; src++ {
		for i := 0; i < 60; i++ {
			f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioDataHigh))
		}
	}
	f.Engine().RunAll()
	if f.Counters.PFCPauses == 0 {
		t.Fatal("PFC never paused")
	}
	if f.Counters.PFCResumes == 0 {
		t.Fatal("PFC never resumed")
	}
	if f.Counters.DataDrops != 0 {
		t.Fatalf("drops = %d with PFC, want 0", f.Counters.DataDrops)
	}
	if len(sinks[0].received) != 420 {
		t.Fatalf("delivered %d, want 420", len(sinks[0].received))
	}
}

func TestINTCollection(t *testing.T) {
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: false})
	p := packet.NewData(0, 7, 1, 0, packet.MTU, packet.PrioDataHigh)
	p.CollectINT = true
	f.Host(0).Send(p)
	f.Engine().RunAll()
	got := sinks[7].received[0]
	// Hops: host NIC, leaf uplink, spine downlink, leaf downlink = 4.
	if len(got.INT) != 4 {
		t.Fatalf("INT hops = %d, want 4", len(got.INT))
	}
	if got.INT[0].RateBps != 100e9 || got.INT[1].RateBps != 400e9 {
		t.Fatalf("INT rates = %v/%v", got.INT[0].RateBps, got.INT[1].RateBps)
	}
	for _, h := range got.INT {
		if h.TxBytes < int64(packet.MTU) {
			t.Fatal("INT TxBytes missing this packet")
		}
	}
}

func TestInjectTrace(t *testing.T) {
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	var arrivals []workload.Flow
	for i := range sinks {
		i := i
		sinks[i].onPacket = func(p *packet.Packet) {}
		_ = i
	}
	// Attach a protocol that records arrivals on host 2.
	rec := &flowRecorder{got: &arrivals}
	f.AttachProtocol(2, rec)
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 2, Dst: 5, Size: 1000, Arrival: sim.Time(10 * sim.Microsecond)},
		{ID: 2, Src: 2, Dst: 6, Size: 2000, Arrival: sim.Time(20 * sim.Microsecond)},
	}}
	f.Inject(tr)
	f.Engine().RunAll()
	if len(arrivals) != 2 || arrivals[0].ID != 1 || arrivals[1].ID != 2 {
		t.Fatalf("arrivals = %+v", arrivals)
	}
}

type flowRecorder struct {
	got *[]workload.Flow
}

func (r *flowRecorder) Start(h *Host)                 {}
func (r *flowRecorder) OnFlowArrival(f workload.Flow) { *r.got = append(*r.got, f) }
func (r *flowRecorder) OnPacket(p *packet.Packet)     {}

func TestHostQueueBound(t *testing.T) {
	cfg := Config{Spray: true, HostQueueBytes: 2 * packet.MTU}
	f, _ := buildFabric(t, topo.SmallLeafSpine(), cfg)
	for i := 0; i < 10; i++ {
		f.Host(0).Send(packet.NewData(0, 7, 1, i, packet.MTU, packet.PrioShort))
	}
	f.Engine().RunAll()
	if f.Counters.HostDrops == 0 {
		t.Fatal("bounded NIC queue never dropped")
	}
}

func TestSendWrongSourcePanics(t *testing.T) {
	f, _ := buildFabric(t, topo.SmallLeafSpine(), Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Send with wrong Src did not panic")
		}
	}()
	f.Host(0).Send(packet.NewData(1, 2, 1, 0, packet.MTU, 1))
}

func TestFabricDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		eng := sim.NewEngine(99)
		tp := topo.SmallLeafSpine().Build()
		f := New(eng, tp, Config{Spray: true, PortBufferBytes: 10 * packet.MTU})
		last := sim.Time(0)
		for i := 0; i < tp.NumHosts; i++ {
			s := &sink{}
			s.onPacket = func(p *packet.Packet) { last = eng.Now() }
			f.AttachProtocol(i, s)
		}
		f.Start()
		for src := 0; src < 8; src++ {
			for i := 0; i < 30; i++ {
				dst := (src + 1 + i%7) % 8
				f.Host(src).Send(packet.NewData(src, dst, uint64(src*100+i), i, packet.MTU, packet.PrioShort))
			}
		}
		eng.RunAll()
		return last, eng.Events()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("non-deterministic fabric: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
}

func TestRandomLossInjection(t *testing.T) {
	cfg := Config{Spray: true, RandomLossRate: 0.2}
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), cfg)
	const n = 500
	for i := 0; i < n; i++ {
		f.Host(0).Send(packet.NewData(0, 7, uint64(i), 0, packet.MTU, packet.PrioShort))
	}
	f.Engine().RunAll()
	got := len(sinks[7].received)
	drops := f.Counters.DataDrops
	if got+int(drops) != n {
		t.Fatalf("conservation: delivered %d + dropped %d != %d", got, drops, n)
	}
	// Cross-rack path has 3 switch enqueues; survival ≈ 0.8^3 ≈ 0.51.
	if got < n/3 || got > 2*n/3 {
		t.Fatalf("delivered %d/%d at 20%% per-hop loss, want ≈51%%", got, n)
	}
}

func TestDropObserverFires(t *testing.T) {
	cfg := Config{Spray: true, PortBufferBytes: 3 * packet.MTU}
	f, _ := buildFabric(t, topo.SmallLeafSpine(), cfg)
	var observed int64
	f.AddObserver(ObserverFuncs{Dropped: func(p *packet.Packet) { observed++ }})
	for src := 1; src < 8; src++ {
		for i := 0; i < 20; i++ {
			f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioShort))
		}
	}
	f.Engine().RunAll()
	if observed == 0 || observed != f.Counters.DataDrops {
		t.Fatalf("drop observer fired %d times, counters %d", observed, f.Counters.DataDrops)
	}
}

func TestMaxPortQueueTracksHighWater(t *testing.T) {
	f, _ := buildFabric(t, topo.SmallLeafSpine(), Config{Spray: true})
	if f.MaxPortQueue() != 0 {
		t.Fatal("high-water mark nonzero before traffic")
	}
	for src := 1; src < 8; src++ {
		for i := 0; i < 10; i++ {
			f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioShort))
		}
	}
	f.Engine().RunAll()
	max := f.MaxPortQueue()
	// 7 senders × 10 MTU converge on one downlink; the queue must have
	// built up several packets but cannot exceed what was sent.
	if max < 5*packet.MTU || max > 70*packet.MTU {
		t.Fatalf("max port queue = %d bytes", max)
	}
}

func TestPFCWatermarkHysteresis(t *testing.T) {
	// Pause must engage above the pause mark and release only below the
	// resume mark (not in between).
	cfg := Config{
		Spray: true, EnablePFC: true,
		PFCPause: 20 * packet.MTU, PFCResume: 10 * packet.MTU,
		PortBufferBytes: 1 << 20,
	}
	f, sinks := buildFabric(t, topo.SmallLeafSpine(), cfg)
	for src := 1; src < 8; src++ {
		for i := 0; i < 40; i++ {
			f.Host(src).Send(packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioDataHigh))
		}
	}
	f.Engine().RunAll()
	if f.Counters.PFCPauses == 0 {
		t.Fatal("no pauses")
	}
	// Every pause eventually resumes once traffic drains.
	if f.Counters.PFCResumes != f.Counters.PFCPauses {
		t.Fatalf("pauses %d != resumes %d after drain", f.Counters.PFCPauses, f.Counters.PFCResumes)
	}
	if len(sinks[0].received) != 280 {
		t.Fatalf("delivered %d/280 with PFC", len(sinks[0].received))
	}
}
