package netsim

import "dcpim/internal/sim"

// Fault-injection control surface. These methods flip per-port and
// per-switch fault state; internal/faults drives them from a scripted
// Schedule via sim timers, but tests may call them directly. All fault
// behaviour is deterministic: loss draws come from each device's seeded
// stream, and state flips happen at scheduled event times. In a sharded
// fabric each method touches exactly one device, so it must run as an
// event on that device's engine (SwitchEngine/HostEngine) — the faults
// package schedules the two sides of a link fault separately.

// SetLinkDown halts (down=true) or restores the transmitter of switch
// sw's output port pt. While down, queued packets stay buffered (overflow
// drops via normal drop-tail accounting) and a packet already being
// serialized finishes its transmission — the fault takes the link dark,
// it does not destroy the bits already on the wire.
func (f *Fabric) SetLinkDown(sw, pt int, down bool) {
	o := f.switches[sw].ports[pt]
	o.down = down
	if !down {
		o.tryTransmit()
	}
}

// SetHostDown halts or restores host h's NIC transmitter: a host pause,
// or the host side of a downed access link.
func (f *Fabric) SetHostDown(h int, down bool) {
	o := f.hosts[h].nic
	o.down = down
	if !down {
		o.tryTransmit()
	}
}

// LinkDown reports whether switch sw's output port pt is currently down.
func (f *Fabric) LinkDown(sw, pt int) bool { return f.switches[sw].ports[pt].down }

// HostDown reports whether host h's NIC transmitter is currently down.
func (f *Fabric) HostDown(h int) bool { return f.hosts[h].nic.down }

// SetLinkLossRate sets a persistent per-packet drop probability on the
// transmit side of switch sw's port pt (degraded optics). Drops count as
// Counters.FaultDrops. Rate 0 restores a clean link.
func (f *Fabric) SetLinkLossRate(sw, pt int, rate float64) {
	f.switches[sw].ports[pt].lossRate = rate
}

// SetHostLossRate is SetLinkLossRate for host h's NIC (the host→ToR
// direction of a degraded access link).
func (f *Fabric) SetHostLossRate(h int, rate float64) {
	f.hosts[h].nic.lossRate = rate
}

// SetLossBurst installs a transient loss window on switch sw's port pt:
// until the given time, packets drop with probability rate (if higher
// than any persistent degrade already present).
func (f *Fabric) SetLossBurst(sw, pt int, until sim.Time, rate float64) {
	o := f.switches[sw].ports[pt]
	o.burstUntil, o.burstRate = until, rate
}

// SetHostLossBurst is SetLossBurst for host h's NIC.
func (f *Fabric) SetHostLossBurst(h int, until sim.Time, rate float64) {
	o := f.hosts[h].nic
	o.burstUntil, o.burstRate = until, rate
}

// RebootSwitch takes switch sw out of service: every output port goes
// down and arrivals are discarded (FaultDrops) until RestoreSwitch. With
// drainDrop the buffered packets are flushed and counted as FaultDrops (a
// cold reboot loses its buffers); without it buffers survive and resume
// draining on restore (a warm control-plane restart).
func (f *Fabric) RebootSwitch(sw int, drainDrop bool) {
	d := f.switches[sw]
	d.down = true
	for _, o := range d.ports {
		o.down = true
	}
	if drainDrop {
		d.drainQueues()
	}
}

// RestoreSwitch brings a rebooted switch back: the forwarding plane
// accepts arrivals again and every port resumes transmitting.
func (f *Fabric) RestoreSwitch(sw int) {
	d := f.switches[sw]
	d.down = false
	for _, o := range d.ports {
		o.down = false
		o.tryTransmit()
	}
}

// drainQueues flushes every buffered packet on the switch's output ports,
// keeping PFC ingress accounting consistent so upstream neighbours paused
// on this switch resume rather than wedge.
func (d *swDev) drainQueues() {
	for _, o := range d.ports {
		for {
			el, ok := o.pop()
			if !ok {
				break
			}
			if d.fab.cfg.EnablePFC && el.in >= 0 {
				d.ingressBytes[el.in] -= int64(el.p.Size)
				d.checkResume(el.in)
			}
			d.sh.counters.FaultDrops++
			d.fab.dropped(el.p)
		}
	}
}
