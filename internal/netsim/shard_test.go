package netsim

import "testing"

// TestBandKeyPacking pins the bit split and the range guards: link id
// and sequence must round-trip through the packed key at their limits,
// and one past either limit must panic rather than silently bleed into
// the neighboring field (which would corrupt cross-shard arrival order).
func TestBandKeyPacking(t *testing.T) {
	cases := []struct{ link, seq uint64 }{
		{0, 0},
		{0, maxArrSeq - 1},
		{maxBoundaryLinks - 1, 0},
		{maxBoundaryLinks - 1, maxArrSeq - 1},
	}
	for _, c := range cases {
		k := bandKey(c.link, c.seq)
		if k>>arrSeqBits != c.link || k&(maxArrSeq-1) != c.seq {
			t.Fatalf("bandKey(%d, %d) = %#x does not round-trip", c.link, c.seq, k)
		}
		if k>>63 != 0 {
			t.Fatalf("bandKey(%d, %d) = %#x collides with the arrival band bit", c.link, c.seq, k)
		}
	}
	// Ordering: higher link id sorts after every sequence of a lower one.
	if !(bandKey(1, 0) > bandKey(0, maxArrSeq-1)) {
		t.Fatal("link id must dominate sequence in the packed order")
	}

	mustPanic(t, "link overflow", func() { bandKey(maxBoundaryLinks, 0) })
	mustPanic(t, "seq overflow", func() { bandKey(0, maxArrSeq) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}
