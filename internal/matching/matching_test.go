package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(2, 2, [][]int{{0}}); err == nil {
		t.Error("accepted wrong row count")
	}
	if _, err := NewGraph(1, 2, [][]int{{5}}); err == nil {
		t.Error("accepted out-of-range receiver")
	}
	if _, err := NewGraph(1, 2, [][]int{{1, 1}}); err == nil {
		t.Error("accepted duplicate edge")
	}
	g, err := NewGraph(2, 2, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 3 || g.AvgDegree() != 1.5 {
		t.Fatalf("edges=%d avg=%v", g.Edges(), g.AvgDegree())
	}
}

func TestDenseGraph(t *testing.T) {
	g := DenseGraph(4, 5)
	if g.Edges() != 20 || g.AvgDegree() != 5 {
		t.Fatalf("dense: edges=%d avg=%v", g.Edges(), g.AvgDegree())
	}
}

func TestRandomGraphDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomGraph(rng, 500, 500, 6)
	if d := g.AvgDegree(); d < 5 || d > 7 {
		t.Fatalf("avg degree = %v, want ≈6", d)
	}
}

// Figure 1's example: 4 inputs × 4 outputs. Blue(0)→{1,3,4}, Red(1)→{2,4},
// Green(2)→{1}, Yellow(3)→{1,3} (0-indexed: 0→{0,2,3}, 1→{1,3}, 2→{0},
// 3→{0,2}). PIM must converge to a maximal matching of size 3
// (output 3 / receiver index 3 can only pair with senders 0 or 1, and
// senders 2,3 compete for {0,2}).
func TestPIMFigure1Example(t *testing.T) {
	g, err := NewGraph(4, 4, [][]int{{0, 2, 3}, {1, 3}, {0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		m := ConvergedPIM(g, rand.New(rand.NewSource(seed)))
		if !m.Valid(g) {
			t.Fatal("invalid matching")
		}
		if m.Size() < 3 {
			t.Fatalf("seed %d: converged size %d, want ≥3", seed, m.Size())
		}
	}
}

func TestPIMZeroRounds(t *testing.T) {
	g := DenseGraph(3, 3)
	m := PIM(g, 0, rand.New(rand.NewSource(1)))
	if m.Size() != 0 || !m.Valid(g) {
		t.Fatal("0-round PIM must be an empty valid matching")
	}
}

func TestPIMPerfectMatchingOnPermutation(t *testing.T) {
	// Permutation graph (degree 1): PIM matches everyone in 1 round.
	adj := make([][]int, 64)
	for i := range adj {
		adj[i] = []int{(i * 7) % 64}
	}
	g, _ := NewGraph(64, 64, adj)
	m := PIM(g, 1, rand.New(rand.NewSource(2)))
	if m.Size() != 64 {
		t.Fatalf("permutation matching size = %d, want 64", m.Size())
	}
}

func TestPIMMaximality(t *testing.T) {
	// After convergence, no edge may connect two unmatched nodes.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := RandomGraph(rng, 100, 100, 3)
		m := ConvergedPIM(g, rng)
		if !m.Valid(g) {
			t.Fatal("invalid matching")
		}
		for s, rs := range g.Adj {
			if m.ReceiverOf[s] >= 0 {
				continue
			}
			for _, r := range rs {
				if m.SenderOf[r] < 0 {
					t.Fatalf("trial %d: edge (%d,%d) both unmatched — not maximal", trial, s, r)
				}
			}
		}
	}
}

// Theorem 1 (the paper's core theory): after r rounds, the expected
// matching size is at least (1 − δ̄α/4^r)·M*. Instead of a few worked
// cells, sample the whole (n, δ̄, α, r) space: random graph sizes and
// densities give random realized (δ̄, α), and every sampled configuration
// must satisfy the bound on its trial-averaged matching size. The bound
// holds in expectation, so the empirical mean gets 2% relative slack
// against sampling noise (which shrinks as 1/√trials; at 24 trials the
// observed slack needed is under 1%).
func TestTheorem1Bound(t *testing.T) {
	pick := rand.New(rand.NewSource(7))
	const configs = 24
	const trials = 24
	for c := 0; c < configs; c++ {
		n := 100 + pick.Intn(400)          // 100 .. 499 nodes per side
		avgDeg := 1.5 + pick.Float64()*6.5 // target δ̄ in 1.5 .. 8
		r := 2 + pick.Intn(4)              // rounds 2 .. 5
		var sumSize, sumBound, sumAlpha float64
		used := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(100_000*c + trial)))
			g := RandomGraph(rng, n, n, avgDeg)
			mStar := ConvergedPIM(g, rand.New(rand.NewSource(int64(trial+1)))).Size()
			if mStar == 0 {
				continue
			}
			alpha := float64(n) / float64(mStar)
			bound := TheoremBound(g.AvgDegree(), alpha, r) * float64(mStar)
			m := PIM(g, r, rng)
			if !m.Valid(g) {
				t.Fatalf("config %d trial %d: invalid matching", c, trial)
			}
			sumSize += float64(m.Size())
			sumBound += bound
			sumAlpha += alpha
			used++
		}
		if used == 0 {
			continue
		}
		if sumSize < sumBound*(1-0.02) {
			t.Errorf("config %d (n=%d δ̄≈%.1f ᾱ≈%.2f r=%d): mean matching %.1f below Theorem 1 bound %.1f",
				c, n, avgDeg, sumAlpha/float64(used), r,
				sumSize/float64(used), sumBound/float64(used))
		}
	}
}

func TestTheoremBoundValues(t *testing.T) {
	// The paper's example: δ̄=5, 80% matched (α=1.25), r=4 ⇒ ≥ 97.5% of M*
	// (the paper states >78% of senders/receivers = 0.975 × 0.8).
	b := TheoremBound(5, 1.25, 4)
	if b < 0.975 || b > 0.9756 {
		t.Fatalf("bound = %v, want ≈0.9756", b)
	}
	// Fig. 4c worked example: n=144, δ=144, α=1.2, r=4 ⇒ 32.5%.
	b = TheoremBound(144, 1.2, 4)
	if b < 0.32 || b > 0.33 {
		t.Fatalf("dense bound = %v, want ≈0.325", b)
	}
	if TheoremBound(100, 2, 1) != 0 {
		t.Fatal("bound must clamp at 0")
	}
}

// Property: PIM output is always a valid matching and never shrinks with
// more rounds (monotone growth).
func TestPIMMonotoneProperty(t *testing.T) {
	f := func(seed int64, degree, size uint8) bool {
		n := int(size%50) + 2
		d := float64(degree%8) + 0.5
		g := RandomGraph(rand.New(rand.NewSource(seed)), n, n, d)
		prev := 0
		for r := 0; r <= 6; r++ {
			m := PIM(g, r, rand.New(rand.NewSource(seed+7)))
			if !m.Valid(g) {
				return false
			}
			// Same RNG seed replays the same choices, so prefix rounds
			// agree and size is monotone.
			if m.Size() < prev {
				return false
			}
			prev = m.Size()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelMatchBasics(t *testing.T) {
	g := DenseGraph(4, 4)
	rng := rand.New(rand.NewSource(5))
	m := ChannelMatch(g, Options{Rounds: 4, K: 4}, rng)
	if !m.Valid(g) {
		t.Fatal("invalid channel matching")
	}
	// Dense graph with unlimited demand: every host should saturate all
	// channels after enough rounds.
	if m.TotalChannels() != 16 {
		t.Fatalf("channels = %d, want 16 (all saturated)", m.TotalChannels())
	}
	if m.EffectiveSize() != 4 {
		t.Fatalf("effective size = %v, want 4", m.EffectiveSize())
	}
}

func TestChannelMatchRespectsDemand(t *testing.T) {
	g := DenseGraph(3, 3)
	rng := rand.New(rand.NewSource(8))
	m := ChannelMatch(g, Options{Rounds: 6, K: 4,
		Demand: func(s, r int) int { return 1 },
	}, rng)
	if !m.Valid(g) {
		t.Fatal("invalid")
	}
	for key, c := range m.Channels {
		if c > 1 {
			t.Fatalf("edge %v got %d channels, demand was 1", key, c)
		}
	}
	// With unit demands on K3,3 and k=4, each node can still only match 3
	// channels (one per neighbor).
	for s, used := range m.SenderUsed {
		if used > 3 {
			t.Fatalf("sender %d used %d channels", s, used)
		}
	}
}

func TestChannelMatchK1EquivalentToPIM(t *testing.T) {
	// With k=1 the channel matcher degenerates to PIM-style matching:
	// sizes should be comparable (both maximal-ish on sparse graphs).
	rng := rand.New(rand.NewSource(11))
	g := RandomGraph(rng, 80, 80, 3)
	m := ChannelMatch(g, Options{Rounds: 16, K: 1}, rng)
	if !m.Valid(g) {
		t.Fatal("invalid")
	}
	pim := ConvergedPIM(g, rand.New(rand.NewSource(12)))
	if float64(m.TotalChannels()) < 0.8*float64(pim.Size()) {
		t.Fatalf("k=1 channel matching %d far below PIM %d", m.TotalChannels(), pim.Size())
	}
}

func TestChannelMatchSRPTFirstRound(t *testing.T) {
	// Two senders want the same receiver, one channel each, k=1: the
	// FCT-optimizing round must pick the smaller remaining flow.
	g, _ := NewGraph(2, 1, [][]int{{0}, {0}})
	remaining := []int64{500, 100}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := ChannelMatch(g, Options{Rounds: 1, K: 1,
			Remaining: func(s, r int) int64 { return remaining[s] },
		}, rng)
		if m.Channels[[2]int{1, 0}] != 1 {
			t.Fatalf("seed %d: SRPT round did not pick the shorter flow", seed)
		}
	}
}

// Property: channel matching never exceeds per-node budgets for arbitrary
// k, rounds and graphs, and all matched channels lie on edges.
func TestChannelMatchBudgetProperty(t *testing.T) {
	f := func(seed int64, kRaw, rRaw, nRaw, dRaw uint8) bool {
		k := int(kRaw%8) + 1
		rounds := int(rRaw % 6)
		n := int(nRaw%30) + 2
		d := float64(dRaw%6) + 0.5
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(rng, n, n, d)
		m := ChannelMatch(g, Options{Rounds: rounds, K: k}, rng)
		return m.Valid(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Sparse graphs: few rounds of multi-channel matching should reach most of
// the saturated allocation — the quantitative heart of §3.4.
func TestChannelMatchUtilizationSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := RandomGraph(rng, 144, 144, 4)
	// With unlimited demand, k does not change effective capacity much.
	m4 := ChannelMatch(g, Options{Rounds: 4, K: 4}, rng)
	m1 := ChannelMatch(g, Options{Rounds: 4, K: 1}, rand.New(rand.NewSource(21)))
	if m4.EffectiveSize() < 0.85*m1.EffectiveSize() {
		t.Fatalf("k=4 effective %v ≪ k=1 effective %v", m4.EffectiveSize(), m1.EffectiveSize())
	}
	// The §3.4 win: when flows are small (demand 1 channel ≈ one BDP of
	// data), k=1 leaves most of the data phase idle (effective size equals
	// matching size but each pair only fills 1/k of the phase). Model this
	// by comparing matched *demand-limited* capacity: with demand 1 and
	// k=4, hosts match up to 4 distinct peers, quadrupling admitted pairs.
	d1k4 := ChannelMatch(g, Options{Rounds: 4, K: 4,
		Demand: func(s, r int) int { return 1 },
	}, rand.New(rand.NewSource(22)))
	d1k1 := ChannelMatch(g, Options{Rounds: 4, K: 1,
		Demand: func(s, r int) int { return 1 },
	}, rand.New(rand.NewSource(22)))
	if d1k4.TotalChannels() < 2*d1k1.TotalChannels() {
		t.Fatalf("demand-1: k=4 matched %d pairs, k=1 matched %d — expected ≥2× gain",
			d1k4.TotalChannels(), d1k1.TotalChannels())
	}
}

// PIM's classic property: convergence in O(log n) rounds. On sparse
// graphs it converges even faster — always within a small multiple of
// log2(n), and the count matches what Theorem 1 predicts matters (the
// residual active set shrinks 4x per round).
func TestRoundsToMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{64, 256, 1024} {
		for _, deg := range []float64{2, 8} {
			g := RandomGraph(rng, n, n, deg)
			rounds, err := RoundsToMaximal(g, rng)
			if err != nil {
				t.Fatalf("n=%d deg=%.0f: %v", n, deg, err)
			}
			logN := math.Ilogb(float64(n)) + 1
			if rounds > 3*logN {
				t.Errorf("n=%d deg=%.0f: %d rounds to maximal, > 3·log2(n)=%d", n, deg, rounds, 3*logN)
			}
			if rounds < 1 && g.Edges() > 0 {
				t.Errorf("n=%d: converged in %d rounds with edges present", n, rounds)
			}
		}
	}
	// Empty graph converges immediately.
	empty, _ := NewGraph(3, 3, [][]int{{}, {}, {}})
	if r, err := RoundsToMaximal(empty, rng); err != nil || r != 0 {
		t.Errorf("empty graph rounds = %d err = %v", r, err)
	}
}
