package matching

import "math/rand"

// This file re-expresses the package's fixed algorithms — classic PIM,
// dcPIM's bounded-round matcher, the greedy maximal reference, and the
// multi-channel b-matcher — as registered matchers. The adapters call the
// exact same cores (runPIM, MaximalMatch, ChannelMatch) with the exact
// same RNG draw order as the direct entry points, so a registry run and a
// hardwired call produce identical matchings for the same seed.

// matcherFunc adapts a closure to the Matcher interface.
type matcherFunc func(g *Graph, rng *rand.Rand) (*Matching, Stats)

func (f matcherFunc) Match(g *Graph, rng *rand.Rand) (*Matching, Stats) { return f(g, rng) }

// newUnit validates unit-matcher options (K forced to 1).
func newUnit(o Options) (Options, error) {
	o = o.withDefaults(1)
	if err := o.Validate(); err != nil {
		return o, err
	}
	return o, nil
}

func init() {
	Register(Descriptor{
		Name: "pim",
		Doc:  "classic Parallel Iterative Matching run to convergence (the paper's M*)",
		New: func(o Options) (Matcher, error) {
			o, err := newUnit(o)
			if err != nil {
				return nil, err
			}
			return matcherFunc(func(g *Graph, rng *rand.Rand) (*Matching, Stats) {
				var st Stats
				// Ignore o.Rounds: "pim" always runs the full
				// convergence budget, making it the M* reference.
				m := runPIM(g, convergenceRounds(g), rng, &st)
				return m, st
			}), nil
		},
	})

	Register(Descriptor{
		Name: "dcpim",
		Doc:  "dcPIM's bounded-round PIM (Theorem 1 regime; default r = 4·log2(n)+8)",
		New: func(o Options) (Matcher, error) {
			o, err := newUnit(o)
			if err != nil {
				return nil, err
			}
			return matcherFunc(func(g *Graph, rng *rand.Rand) (*Matching, Stats) {
				var st Stats
				m := runPIM(g, o.roundsFor(g), rng, &st)
				return m, st
			}), nil
		},
	})

	Register(Descriptor{
		Name: "maximal",
		Doc:  "deterministic greedy maximal matching (centralized reference, zero control bits)",
		New: func(o Options) (Matcher, error) {
			if _, err := newUnit(o); err != nil {
				return nil, err
			}
			return matcherFunc(func(g *Graph, rng *rand.Rand) (*Matching, Stats) {
				m := MaximalMatch(g)
				st := Stats{Converged: true}
				st.RoundSizes = []int{m.Size()}
				return m, st
			}), nil
		},
	})

	Register(Descriptor{
		Name: "dcpim-k",
		Doc:  "dcPIM multi-channel b-matching (§3.4; default K = 4), projected to a unit matching",
		New: func(o Options) (Matcher, error) {
			o = o.withDefaults(DefaultK)
			if err := o.Validate(); err != nil {
				return nil, err
			}
			return matcherFunc(func(g *Graph, rng *rand.Rand) (*Matching, Stats) {
				var st Stats
				ro := o
				ro.Rounds = o.roundsFor(g)
				ro.stats = &st
				cm := ChannelMatch(g, ro, rng)
				return cm.Project(g), st
			}), nil
		},
	})
}
