package matching

import "math"

// ControlMsgBits is the modeled wire cost of one control-plane message
// (request, grant or accept): a compact 8-byte frame carrying sender id,
// receiver id and a channel/flag field. All matchers charge every control
// message this flat rate so budgets and control-overhead comparisons are
// matcher-independent. dcPIM's real RTS/Grant packets are bigger (they
// ride full headers), but the *relative* control economy between matchers
// is what the lab measures, and a flat per-message rate keeps budget
// accounting exact.
const ControlMsgBits = 64

// EpochPayloadBytes is the modeled data volume one matched pair transfers
// during the epoch that follows a matching decision (one BDP-ish chunk,
// mirroring dcPIM's epoch sizing). ControlBytesPerMatchedByte uses it to
// turn message counts into an overhead ratio.
const EpochPayloadBytes = 64 << 10

// Stats reports how a matcher run behaved: how fast it converged, how
// much control-plane communication it spent, and the per-round matching
// trajectory. Matchers accumulate Stats without ever drawing from the
// RNG, so an instrumented run and a bare run produce identical matchings
// for the same seed.
type Stats struct {
	// Rounds is the number of executed (message-bearing) rounds. Rounds
	// skipped by early convergence are not counted.
	Rounds int
	// Converged reports whether the matcher reached a fixed point (no
	// further messages would change the matching) within its round
	// budget. Single-shot matchers (maximal) are always converged.
	Converged bool
	// Msgs is the total number of control messages sent (requests +
	// grants + accepts across all rounds).
	Msgs int64
	// ControlBits = Msgs × ControlMsgBits: total control-plane bits.
	ControlBits int64
	// RoundBits[i] is the control bits sent in executed round i. For
	// budgeted matchers every entry is ≤ the per-round budget.
	RoundBits []int64
	// RoundSizes[i] is the cumulative matching size (or matched channel
	// count for b-matchers) after executed round i. Monotone for
	// matchers that never reconfigure; the online b-matcher's evictions
	// can shrink it between epochs.
	RoundSizes []int
	// MatchedChannels and K are set by b-matchers (dcpim-k,
	// online-bmatch): total matched channels and the per-node channel
	// budget. Zero for unit matchers.
	MatchedChannels int
	K               int
	// Reconfigs counts matching reconfigurations paid by the online
	// dynamic b-matcher (edges evicted to admit new demand). Zero for
	// one-shot matchers.
	Reconfigs int
}

// note records one executed round: msgs control messages sent and the
// cumulative matching size afterwards.
func (st *Stats) note(msgs int64, size int) {
	st.Rounds++
	st.Msgs += msgs
	st.ControlBits += msgs * ControlMsgBits
	st.RoundBits = append(st.RoundBits, msgs*ControlMsgBits)
	st.RoundSizes = append(st.RoundSizes, size)
}

// EffectiveSize returns the matching size normalized so unit matchings
// and K-channel b-matchings are comparable: matched pairs for unit
// matchers, matched channels ÷ K for b-matchers (each channel carries
// 1/K of a link).
func (st *Stats) EffectiveSize(m *Matching) float64 {
	if st.K > 1 {
		return float64(st.MatchedChannels) / float64(st.K)
	}
	return float64(m.Size())
}

// ControlBytesPerMatchedByte returns the control-plane overhead ratio:
// total control bytes divided by the payload bytes the matched pairs move
// in one epoch (EffectiveSize × EpochPayloadBytes). Returns 0 when
// nothing matched and nothing was sent, and +Inf when control bits were
// spent but nothing matched.
func (st *Stats) ControlBytesPerMatchedByte(m *Matching) float64 {
	ctl := float64(st.ControlBits) / 8
	matched := st.EffectiveSize(m) * EpochPayloadBytes
	if matched == 0 {
		if ctl == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return ctl / matched
}
