// Package matching implements Parallel Iterative Matching (PIM) on
// bipartite demand graphs, plus the bounded-round, multi-channel variant
// dcPIM builds on, in pure algorithmic form (no packets, no clocks). It is
// the testable embodiment of the paper's §2 and Theorem 1: the transport
// in internal/core realizes the same logic with control packets and stage
// timers.
//
// Beyond the fixed algorithms, the package hosts a self-registering
// matcher registry (Register/MustLookup, mirroring internal/protocols):
// every variant — classic PIM, dcPIM's bounded-round matcher, the greedy
// maximal reference, the multi-channel b-matcher, communication-budget
// matching (arXiv 2604.10744) and online dynamic b-matching
// (arXiv 2006.10692) — is a Matcher resolved by name with validated
// Options, returning a Matching plus convergence/communication Stats.
package matching

import (
	"fmt"
	"math"
	"math/rand"
)

// Graph is a bipartite demand graph: edge (s, r) means sender s has
// outstanding data for receiver r.
type Graph struct {
	Senders   int
	Receivers int
	Adj       [][]int // Adj[s] = sorted receiver indices
}

// NewGraph builds a graph and validates the adjacency.
func NewGraph(senders, receivers int, adj [][]int) (*Graph, error) {
	if len(adj) != senders {
		return nil, fmt.Errorf("matching: adj has %d rows, want %d", len(adj), senders)
	}
	for s, rs := range adj {
		seen := make(map[int]bool, len(rs))
		for _, r := range rs {
			if r < 0 || r >= receivers {
				return nil, fmt.Errorf("matching: sender %d has bad receiver %d", s, r)
			}
			if seen[r] {
				return nil, fmt.Errorf("matching: sender %d has duplicate edge to %d", s, r)
			}
			seen[r] = true
		}
	}
	return &Graph{Senders: senders, Receivers: receivers, Adj: adj}, nil
}

// RandomGraph generates a sparse bipartite graph where each possible edge
// exists independently with probability avgDegree/receivers, giving
// expected sender degree avgDegree — the sparse-traffic-matrix regime of
// Theorem 1. It draws one uniform variate per possible edge (O(n²)); for
// the 10^5-port regime use SparseRandomGraph, which samples the same
// distribution in O(edges).
func RandomGraph(rng *rand.Rand, senders, receivers int, avgDegree float64) *Graph {
	p := avgDegree / float64(receivers)
	if p > 1 {
		p = 1
	}
	adj := make([][]int, senders)
	for s := range adj {
		for r := 0; r < receivers; r++ {
			if rng.Float64() < p {
				adj[s] = append(adj[s], r)
			}
		}
	}
	return &Graph{Senders: senders, Receivers: receivers, Adj: adj}
}

// SparseRandomGraph samples the same edge distribution as RandomGraph —
// each edge present independently with probability avgDegree/receivers —
// but in O(edges) by drawing geometric gaps between successive present
// edges instead of one coin per possible edge. This is what makes
// 10^5-port sweep cells affordable (RandomGraph would need 10^10 draws).
// The two generators realize different graphs for the same seed; within
// one experiment always use one of them.
func SparseRandomGraph(rng *rand.Rand, senders, receivers int, avgDegree float64) *Graph {
	p := avgDegree / float64(receivers)
	if p >= 1 {
		return DenseGraph(senders, receivers)
	}
	adj := make([][]int, senders)
	if p <= 0 {
		return &Graph{Senders: senders, Receivers: receivers, Adj: adj}
	}
	logq := math.Log1p(-p) // log(1-p) < 0
	for s := range adj {
		r := 0
		for {
			// Geometric gap: number of absent edges before the next
			// present one, Floor(log(1-U)/log(1-p)).
			gap := math.Floor(math.Log1p(-rng.Float64()) / logq)
			if gap >= float64(receivers-r) {
				break
			}
			r += int(gap)
			adj[s] = append(adj[s], r)
			r++
			if r >= receivers {
				break
			}
		}
	}
	return &Graph{Senders: senders, Receivers: receivers, Adj: adj}
}

// DenseGraph returns the complete bipartite graph (the switch-fabric
// worst case and the paper's Fig. 4c dense traffic matrix).
func DenseGraph(senders, receivers int) *Graph {
	adj := make([][]int, senders)
	for s := range adj {
		adj[s] = make([]int, receivers)
		for r := 0; r < receivers; r++ {
			adj[s][r] = r
		}
	}
	return &Graph{Senders: senders, Receivers: receivers, Adj: adj}
}

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	n := 0
	for _, rs := range g.Adj {
		n += len(rs)
	}
	return n
}

// AvgDegree returns the average sender degree δ̄.
func (g *Graph) AvgDegree() float64 {
	if g.Senders == 0 {
		return 0
	}
	return float64(g.Edges()) / float64(g.Senders)
}

// Matching is a one-to-one assignment. SenderOf[r] is the sender matched
// to receiver r (-1 if unmatched) and ReceiverOf[s] the converse.
type Matching struct {
	SenderOf   []int
	ReceiverOf []int
}

// Size returns the number of matched pairs.
func (m *Matching) Size() int {
	n := 0
	for _, s := range m.SenderOf {
		if s >= 0 {
			n++
		}
	}
	return n
}

// Valid reports whether m is a matching on g: consistent inverse maps and
// every matched pair an actual edge.
func (m *Matching) Valid(g *Graph) bool {
	if len(m.SenderOf) != g.Receivers || len(m.ReceiverOf) != g.Senders {
		return false
	}
	for r, s := range m.SenderOf {
		if s < 0 {
			continue
		}
		if s >= g.Senders || m.ReceiverOf[s] != r {
			return false
		}
		found := false
		for _, rr := range g.Adj[s] {
			if rr == r {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for s, r := range m.ReceiverOf {
		if r >= 0 && (r >= g.Receivers || m.SenderOf[r] != s) {
			return false
		}
	}
	return true
}

// runPIM is the shared three-stage PIM loop behind PIM, PIMRounds,
// ConvergedPIM, RoundsToMaximal and the registry's pim/dcpim matchers:
// unmatched senders request every unmatched neighbor, each unmatched
// receiver grants one request uniformly at random, and each sender
// accepts one received grant uniformly at random. When st is non-nil it
// accumulates per-round accounting (rounds, control messages, cumulative
// sizes); the accounting never draws from rng, so instrumented and plain
// runs produce identical matchings for the same seed.
func runPIM(g *Graph, rounds int, rng *rand.Rand, st *Stats) *Matching {
	m := &Matching{
		SenderOf:   fillNeg(g.Receivers),
		ReceiverOf: fillNeg(g.Senders),
	}
	grants := make([][]int, g.Senders) // grants[s] = receivers granting s
	for round := 0; round < rounds; round++ {
		// Request + grant stage: each unmatched receiver collects its
		// incident requests and grants one. Building receiver-side request
		// lists explicitly keeps the random choice uniform.
		requests := make([][]int, g.Receivers)
		active := false
		var reqMsgs int64
		for s := 0; s < g.Senders; s++ {
			if m.ReceiverOf[s] >= 0 {
				continue
			}
			for _, r := range g.Adj[s] {
				if m.SenderOf[r] < 0 {
					requests[r] = append(requests[r], s)
					reqMsgs++
					active = true
				}
			}
		}
		if !active {
			// Converged: maximal matching reached. The probe round that
			// observes it sends no messages and is not counted.
			if st != nil {
				st.Converged = true
			}
			break
		}
		for s := range grants {
			grants[s] = grants[s][:0]
		}
		var grantMsgs int64
		for r := 0; r < g.Receivers; r++ {
			if m.SenderOf[r] >= 0 || len(requests[r]) == 0 {
				continue
			}
			s := requests[r][rng.Intn(len(requests[r]))]
			grants[s] = append(grants[s], r)
			grantMsgs++
		}
		// Accept stage.
		var acceptMsgs int64
		for s := 0; s < g.Senders; s++ {
			if len(grants[s]) == 0 || m.ReceiverOf[s] >= 0 {
				continue
			}
			r := grants[s][rng.Intn(len(grants[s]))]
			m.ReceiverOf[s] = r
			m.SenderOf[r] = s
			acceptMsgs++
		}
		if st != nil {
			st.note(reqMsgs+grantMsgs+acceptMsgs, m.Size())
		}
	}
	return m
}

// PIM runs the classic three-stage protocol for the given number of
// rounds.
func PIM(g *Graph, rounds int, rng *rand.Rand) *Matching {
	return runPIM(g, rounds, rng, nil)
}

// PIMRounds runs PIM like PIM but additionally returns the cumulative
// matching size after each completed round — the per-round trajectory
// Theorem 1 bounds (sizes[i] is the size after round i). Rounds skipped
// by early convergence are not reported, so len(sizes) ≤ rounds.
func PIMRounds(g *Graph, rounds int, rng *rand.Rand) (*Matching, []int) {
	var st Stats
	m := runPIM(g, rounds, rng, &st)
	return m, st.RoundSizes
}

// convergenceRounds is the round budget that makes PIM non-convergence
// vanishingly unlikely on an n-port graph: PIM resolves ≥ 3/4 of requests
// per round in expectation, so 4·log₂(n)+8 rounds suffice, and the
// early-exit in runPIM stops as soon as the matching is maximal.
func convergenceRounds(g *Graph) int {
	n := g.Senders
	if g.Receivers > n {
		n = g.Receivers
	}
	return 4*int(math.Ceil(math.Log2(float64(n+1)))) + 8
}

// ConvergedPIM runs PIM until it reaches a maximal matching (PIM always
// converges; ~log n rounds in expectation). This is the paper's M*.
func ConvergedPIM(g *Graph, rng *rand.Rand) *Matching {
	return runPIM(g, convergenceRounds(g), rng, nil)
}

// MaximalMatch returns a deterministic greedy maximal matching: each
// sender in index order takes its first still-free neighbor. Like every
// maximal matching it is a ≥1/2 approximation of the maximum matching —
// the registry's centralized M* reference (zero control-plane cost, no
// randomness).
func MaximalMatch(g *Graph) *Matching {
	m := &Matching{
		SenderOf:   fillNeg(g.Receivers),
		ReceiverOf: fillNeg(g.Senders),
	}
	for s := 0; s < g.Senders; s++ {
		for _, r := range g.Adj[s] {
			if m.SenderOf[r] < 0 {
				m.SenderOf[r] = s
				m.ReceiverOf[s] = r
				break
			}
		}
	}
	return m
}

// TheoremBound returns Theorem 1's guaranteed fraction of M* that dcPIM
// reaches after r rounds on a graph with average degree delta when PIM's
// converged matching has size n/alpha: 1 − delta·alpha/4^r (clamped ≥ 0).
func TheoremBound(delta, alpha float64, r int) float64 {
	b := 1 - delta*alpha/math.Pow(4, float64(r))
	if b < 0 {
		return 0
	}
	return b
}

func fillNeg(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = -1
	}
	return xs
}

// MaxMaximalRounds caps RoundsToMaximal. PIM provably matches at least
// one pair per active round (some receiver grants, some sender accepts),
// so min(senders, receivers) rounds always suffice — and on any graph it
// converges in O(log n) rounds with overwhelming probability. A run that
// is still active after this many rounds indicates a pathological or
// corrupted graph rather than slow convergence, and RoundsToMaximal
// reports it as an error instead of spinning unbounded.
const MaxMaximalRounds = 4096

// RoundsToMaximal runs PIM until the matching is maximal and returns how
// many rounds it took — the quantity PIM's classic ~log n analysis bounds
// and Theorem 1 sidesteps. Useful for convergence studies (cmd/pimlab).
// If the run is still not maximal after MaxMaximalRounds it returns the
// executed round count and a non-nil error.
func RoundsToMaximal(g *Graph, rng *rand.Rand) (int, error) {
	return roundsToMaximalCapped(g, rng, MaxMaximalRounds)
}

// roundsToMaximalCapped is RoundsToMaximal with an explicit cap, split
// out so tests can exercise the guard without a 4096-round pathology.
func roundsToMaximalCapped(g *Graph, rng *rand.Rand, cap int) (int, error) {
	var st Stats
	runPIM(g, cap, rng, &st)
	if !st.Converged {
		return st.Rounds, fmt.Errorf("matching: not maximal after %d rounds (cap %d): pathological graph?", st.Rounds, cap)
	}
	return st.Rounds, nil
}
