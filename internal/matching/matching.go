// Package matching implements Parallel Iterative Matching (PIM) on
// bipartite demand graphs, plus the bounded-round, multi-channel variant
// dcPIM builds on, in pure algorithmic form (no packets, no clocks). It is
// the testable embodiment of the paper's §2 and Theorem 1: the transport
// in internal/core realizes the same logic with control packets and stage
// timers.
package matching

import (
	"fmt"
	"math"
	"math/rand"
)

// Graph is a bipartite demand graph: edge (s, r) means sender s has
// outstanding data for receiver r.
type Graph struct {
	Senders   int
	Receivers int
	Adj       [][]int // Adj[s] = sorted receiver indices
}

// NewGraph builds a graph and validates the adjacency.
func NewGraph(senders, receivers int, adj [][]int) (*Graph, error) {
	if len(adj) != senders {
		return nil, fmt.Errorf("matching: adj has %d rows, want %d", len(adj), senders)
	}
	for s, rs := range adj {
		seen := make(map[int]bool, len(rs))
		for _, r := range rs {
			if r < 0 || r >= receivers {
				return nil, fmt.Errorf("matching: sender %d has bad receiver %d", s, r)
			}
			if seen[r] {
				return nil, fmt.Errorf("matching: sender %d has duplicate edge to %d", s, r)
			}
			seen[r] = true
		}
	}
	return &Graph{Senders: senders, Receivers: receivers, Adj: adj}, nil
}

// RandomGraph generates a sparse bipartite graph where each possible edge
// exists independently with probability avgDegree/receivers, giving
// expected sender degree avgDegree — the sparse-traffic-matrix regime of
// Theorem 1.
func RandomGraph(rng *rand.Rand, senders, receivers int, avgDegree float64) *Graph {
	p := avgDegree / float64(receivers)
	if p > 1 {
		p = 1
	}
	adj := make([][]int, senders)
	for s := range adj {
		for r := 0; r < receivers; r++ {
			if rng.Float64() < p {
				adj[s] = append(adj[s], r)
			}
		}
	}
	return &Graph{Senders: senders, Receivers: receivers, Adj: adj}
}

// DenseGraph returns the complete bipartite graph (the switch-fabric
// worst case and the paper's Fig. 4c dense traffic matrix).
func DenseGraph(senders, receivers int) *Graph {
	adj := make([][]int, senders)
	for s := range adj {
		adj[s] = make([]int, receivers)
		for r := 0; r < receivers; r++ {
			adj[s][r] = r
		}
	}
	return &Graph{Senders: senders, Receivers: receivers, Adj: adj}
}

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	n := 0
	for _, rs := range g.Adj {
		n += len(rs)
	}
	return n
}

// AvgDegree returns the average sender degree δ̄.
func (g *Graph) AvgDegree() float64 {
	if g.Senders == 0 {
		return 0
	}
	return float64(g.Edges()) / float64(g.Senders)
}

// Matching is a one-to-one assignment. SenderOf[r] is the sender matched
// to receiver r (-1 if unmatched) and ReceiverOf[s] the converse.
type Matching struct {
	SenderOf   []int
	ReceiverOf []int
}

// Size returns the number of matched pairs.
func (m *Matching) Size() int {
	n := 0
	for _, s := range m.SenderOf {
		if s >= 0 {
			n++
		}
	}
	return n
}

// Valid reports whether m is a matching on g: consistent inverse maps and
// every matched pair an actual edge.
func (m *Matching) Valid(g *Graph) bool {
	if len(m.SenderOf) != g.Receivers || len(m.ReceiverOf) != g.Senders {
		return false
	}
	for r, s := range m.SenderOf {
		if s < 0 {
			continue
		}
		if s >= g.Senders || m.ReceiverOf[s] != r {
			return false
		}
		found := false
		for _, rr := range g.Adj[s] {
			if rr == r {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for s, r := range m.ReceiverOf {
		if r >= 0 && (r >= g.Receivers || m.SenderOf[r] != s) {
			return false
		}
	}
	return true
}

// PIM runs the classic three-stage protocol for the given number of
// rounds: unmatched senders request every unmatched neighbor, each
// unmatched receiver grants one request uniformly at random, and each
// sender accepts one received grant uniformly at random.
func PIM(g *Graph, rounds int, rng *rand.Rand) *Matching {
	m := &Matching{
		SenderOf:   fillNeg(g.Receivers),
		ReceiverOf: fillNeg(g.Senders),
	}
	grants := make([][]int, g.Senders) // grants[s] = receivers granting s
	for round := 0; round < rounds; round++ {
		// Request + grant stage: each unmatched receiver collects its
		// incident requests and grants one. Building receiver-side request
		// lists explicitly keeps the random choice uniform.
		requests := make([][]int, g.Receivers)
		active := false
		for s := 0; s < g.Senders; s++ {
			if m.ReceiverOf[s] >= 0 {
				continue
			}
			for _, r := range g.Adj[s] {
				if m.SenderOf[r] < 0 {
					requests[r] = append(requests[r], s)
					active = true
				}
			}
		}
		if !active {
			break // converged: maximal matching reached
		}
		for s := range grants {
			grants[s] = grants[s][:0]
		}
		for r := 0; r < g.Receivers; r++ {
			if m.SenderOf[r] >= 0 || len(requests[r]) == 0 {
				continue
			}
			s := requests[r][rng.Intn(len(requests[r]))]
			grants[s] = append(grants[s], r)
		}
		// Accept stage.
		for s := 0; s < g.Senders; s++ {
			if len(grants[s]) == 0 || m.ReceiverOf[s] >= 0 {
				continue
			}
			r := grants[s][rng.Intn(len(grants[s]))]
			m.ReceiverOf[s] = r
			m.SenderOf[r] = s
		}
	}
	return m
}

// PIMRounds runs PIM like PIM but additionally returns the cumulative
// matching size after each completed round — the per-round trajectory
// Theorem 1 bounds (sizes[i] is the size after round i). Rounds skipped
// by early convergence are not reported, so len(sizes) ≤ rounds.
func PIMRounds(g *Graph, rounds int, rng *rand.Rand) (*Matching, []int) {
	m := &Matching{
		SenderOf:   fillNeg(g.Receivers),
		ReceiverOf: fillNeg(g.Senders),
	}
	sizes := make([]int, 0, rounds)
	grants := make([][]int, g.Senders)
	for round := 0; round < rounds; round++ {
		requests := make([][]int, g.Receivers)
		active := false
		for s := 0; s < g.Senders; s++ {
			if m.ReceiverOf[s] >= 0 {
				continue
			}
			for _, r := range g.Adj[s] {
				if m.SenderOf[r] < 0 {
					requests[r] = append(requests[r], s)
					active = true
				}
			}
		}
		if !active {
			break
		}
		for s := range grants {
			grants[s] = grants[s][:0]
		}
		for r := 0; r < g.Receivers; r++ {
			if m.SenderOf[r] >= 0 || len(requests[r]) == 0 {
				continue
			}
			s := requests[r][rng.Intn(len(requests[r]))]
			grants[s] = append(grants[s], r)
		}
		for s := 0; s < g.Senders; s++ {
			if len(grants[s]) == 0 || m.ReceiverOf[s] >= 0 {
				continue
			}
			r := grants[s][rng.Intn(len(grants[s]))]
			m.ReceiverOf[s] = r
			m.SenderOf[r] = s
		}
		sizes = append(sizes, m.Size())
	}
	return m, sizes
}

// ConvergedPIM runs PIM until it reaches a maximal matching (PIM always
// converges; ~log n rounds in expectation). This is the paper's M*.
func ConvergedPIM(g *Graph, rng *rand.Rand) *Matching {
	n := g.Senders
	if g.Receivers > n {
		n = g.Receivers
	}
	// PIM resolves ≥ 3/4 of requests per round in expectation; 4·log₂(n)+8
	// rounds make non-convergence vanishingly unlikely, and the early-exit
	// in PIM stops as soon as the matching is maximal.
	rounds := 4*int(math.Ceil(math.Log2(float64(n+1)))) + 8
	return PIM(g, rounds, rng)
}

// TheoremBound returns Theorem 1's guaranteed fraction of M* that dcPIM
// reaches after r rounds on a graph with average degree delta when PIM's
// converged matching has size n/alpha: 1 − delta·alpha/4^r (clamped ≥ 0).
func TheoremBound(delta, alpha float64, r int) float64 {
	b := 1 - delta*alpha/math.Pow(4, float64(r))
	if b < 0 {
		return 0
	}
	return b
}

func fillNeg(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = -1
	}
	return xs
}

// RoundsToMaximal runs PIM until the matching is maximal and returns how
// many rounds it took — the quantity PIM's classic ~log n analysis bounds
// and Theorem 1 sidesteps. Useful for convergence studies (cmd/pimlab).
func RoundsToMaximal(g *Graph, rng *rand.Rand) int {
	m := &Matching{
		SenderOf:   fillNeg(g.Receivers),
		ReceiverOf: fillNeg(g.Senders),
	}
	grants := make([][]int, g.Senders)
	for round := 0; ; round++ {
		requests := make([][]int, g.Receivers)
		active := false
		for s := 0; s < g.Senders; s++ {
			if m.ReceiverOf[s] >= 0 {
				continue
			}
			for _, r := range g.Adj[s] {
				if m.SenderOf[r] < 0 {
					requests[r] = append(requests[r], s)
					active = true
				}
			}
		}
		if !active {
			return round
		}
		for s := range grants {
			grants[s] = grants[s][:0]
		}
		for r := 0; r < g.Receivers; r++ {
			if m.SenderOf[r] >= 0 || len(requests[r]) == 0 {
				continue
			}
			s := requests[r][rng.Intn(len(requests[r]))]
			grants[s] = append(grants[s], r)
		}
		for s := 0; s < g.Senders; s++ {
			if len(grants[s]) == 0 || m.ReceiverOf[s] >= 0 {
				continue
			}
			r := grants[s][rng.Intn(len(grants[s]))]
			m.ReceiverOf[s] = r
			m.SenderOf[r] = s
		}
	}
}
