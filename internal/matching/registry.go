package matching

import (
	"fmt"
	"math/rand"
	"sort"
)

// Matcher computes a matching on a bipartite demand graph and reports
// convergence and communication statistics. Implementations must be
// deterministic given the graph and the RNG stream, and must accumulate
// Stats without drawing from the RNG.
type Matcher interface {
	Match(g *Graph, rng *rand.Rand) (*Matching, Stats)
}

// Descriptor registers one matcher variant. New builds an instance for
// validated Options; it is invoked once per Match-site configuration, so
// construction may normalize options but must not touch global state.
type Descriptor struct {
	// Name is the registry key (e.g. "pim", "dcpim", "budget-pim").
	Name string
	// Doc is a one-line human description, shown by cmd/pimlab -list.
	Doc string
	// Budgeted reports whether the matcher honors Options.BudgetBits;
	// the matchers sweep only varies budgets for budgeted matchers.
	Budgeted bool
	// New constructs a matcher for g-independent options. Zero-valued
	// Options fields are resolved to matcher defaults before Validate,
	// so New never sees K=0 or Rounds<0.
	New func(o Options) (Matcher, error)
}

var registry = map[string]Descriptor{}

// Register adds a matcher descriptor. It panics on duplicate names or
// incomplete descriptors — registration happens in init functions, where
// a bad descriptor is a programming error.
func Register(d Descriptor) {
	if d.Name == "" || d.Doc == "" || d.New == nil {
		panic(fmt.Sprintf("matching: incomplete descriptor %+v", d))
	}
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("matching: duplicate matcher %q", d.Name))
	}
	registry[d.Name] = d
}

// Lookup returns the descriptor for name.
func Lookup(name string) (Descriptor, bool) {
	d, ok := registry[name]
	return d, ok
}

// MustLookup returns the descriptor for name, panicking with the list of
// registered matchers if it is unknown.
func MustLookup(name string) Descriptor {
	d, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("matching: unknown matcher %q (registered: %v)", name, Names()))
	}
	return d
}

// Names returns all registered matcher names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
