package matching

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"pim", "dcpim", "maximal", "dcpim-k", "budget-pim", "online-bmatch"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("matcher %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	mustPanic := func(name string, d Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	ok := MustLookup("pim") // a complete descriptor to clone from
	dup := ok
	mustPanic("duplicate name", dup)
	mustPanic("empty name", Descriptor{Doc: "d", New: ok.New})
	mustPanic("empty doc", Descriptor{Name: "x-incomplete", New: ok.New})
	mustPanic("nil constructor", Descriptor{Name: "x-incomplete", Doc: "d"})
}

func TestMustLookupUnknownPanicsWithNames(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustLookup did not panic on unknown name")
		}
		if msg, _ := r.(string); !strings.Contains(msg, "pim") {
			t.Fatalf("panic message does not list registered matchers: %v", r)
		}
	}()
	MustLookup("no-such-matcher")
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-matcher"); ok {
		t.Fatal("Lookup found a matcher that was never registered")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Rounds: -1, K: 1},
		{K: 0},
		{K: -3},
		{K: 1, BudgetBits: math.NaN()},
		{K: 1, BudgetBits: -5},
		{K: 1, BudgetBits: math.Inf(1)},
		{K: 1, ReconfigCost: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	good := []Options{
		{K: 1},
		{Rounds: 10, K: 4, BudgetBits: 1024, ReconfigCost: 2},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected %+v: %v", i, o, err)
		}
	}
	// Registry constructors surface the same rejections as errors.
	for _, name := range Names() {
		if _, err := MustLookup(name).New(Options{Rounds: -1}); err == nil {
			t.Errorf("%s: New accepted Rounds=-1", name)
		}
		if _, err := MustLookup(name).New(Options{BudgetBits: math.NaN()}); err == nil {
			t.Errorf("%s: New accepted NaN budget", name)
		}
	}
}

func TestChannelMatchPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ChannelMatch accepted K=0")
		}
	}()
	ChannelMatch(DenseGraph(2, 2), Options{Rounds: 1, K: 0}, rand.New(rand.NewSource(1)))
}

// Adapters must replay the exact RNG streams of the direct entry points:
// the registry is a re-expression, not a reimplementation.
func TestAdaptersMatchDirectCalls(t *testing.T) {
	g := RandomGraph(rand.New(rand.NewSource(4)), 96, 96, 3)

	pim, err := MustLookup("pim").New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, st := pim.Match(g, rand.New(rand.NewSource(7)))
	want := ConvergedPIM(g, rand.New(rand.NewSource(7)))
	if got.Size() != want.Size() {
		t.Fatalf("pim adapter size %d != ConvergedPIM %d", got.Size(), want.Size())
	}
	for s, r := range want.ReceiverOf {
		if got.ReceiverOf[s] != r {
			t.Fatalf("pim adapter diverged from ConvergedPIM at sender %d", s)
		}
	}
	if !st.Converged {
		t.Error("pim adapter did not report convergence on a sparse graph")
	}
	if st.Msgs <= 0 || st.ControlBits != st.Msgs*ControlMsgBits {
		t.Errorf("pim stats inconsistent: msgs=%d bits=%d", st.Msgs, st.ControlBits)
	}

	bounded, err := MustLookup("dcpim").New(Options{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	bm, bst := bounded.Match(g, rand.New(rand.NewSource(9)))
	ref := PIM(g, 3, rand.New(rand.NewSource(9)))
	if bm.Size() != ref.Size() {
		t.Fatalf("dcpim adapter size %d != PIM(3) %d", bm.Size(), ref.Size())
	}
	if bst.Rounds > 3 {
		t.Fatalf("dcpim ran %d rounds with budget 3", bst.Rounds)
	}
	if len(bst.RoundSizes) != bst.Rounds {
		t.Fatalf("RoundSizes len %d != Rounds %d", len(bst.RoundSizes), bst.Rounds)
	}

	max, err := MustLookup("maximal").New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mm, mst := max.Match(g, rand.New(rand.NewSource(11)))
	dref := MaximalMatch(g)
	if mm.Size() != dref.Size() || mst.Msgs != 0 || !mst.Converged {
		t.Fatalf("maximal adapter: size %d (want %d), msgs %d, converged %v",
			mm.Size(), dref.Size(), mst.Msgs, mst.Converged)
	}
}

func TestRoundsToMaximalCap(t *testing.T) {
	// A graph with edges always converges, so force the error path with a
	// cap of zero rounds.
	g := DenseGraph(4, 4)
	if _, err := roundsToMaximalCapped(g, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Fatal("cap 0 on a non-empty graph must error")
	}
	if r, err := RoundsToMaximal(g, rand.New(rand.NewSource(1))); err != nil || r < 1 {
		t.Fatalf("RoundsToMaximal on K4,4: rounds=%d err=%v", r, err)
	}
	if MaxMaximalRounds < 1024 {
		t.Fatalf("MaxMaximalRounds = %d implausibly small", MaxMaximalRounds)
	}
}

func TestSparseRandomGraphDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := SparseRandomGraph(rng, 2000, 2000, 6)
	if d := g.AvgDegree(); d < 5.5 || d > 6.5 {
		t.Fatalf("sparse generator avg degree = %v, want ≈6", d)
	}
	// Edges must be sorted, in-range and duplicate-free per sender.
	for s, rs := range g.Adj {
		for i, r := range rs {
			if r < 0 || r >= 2000 {
				t.Fatalf("sender %d: receiver %d out of range", s, r)
			}
			if i > 0 && rs[i-1] >= r {
				t.Fatalf("sender %d: adjacency not strictly increasing: %v", s, rs)
			}
		}
	}
	// p >= 1 degenerates to the dense graph.
	if g := SparseRandomGraph(rng, 8, 8, 9); g.Edges() != 64 {
		t.Fatalf("p>=1 should give the complete graph, got %d edges", g.Edges())
	}
	// Degree 0 gives no edges.
	if g := SparseRandomGraph(rng, 8, 8, 0); g.Edges() != 0 {
		t.Fatalf("degree 0 gave %d edges", g.Edges())
	}
}

func TestChannelMatchingProject(t *testing.T) {
	g := RandomGraph(rand.New(rand.NewSource(6)), 40, 40, 4)
	cm := ChannelMatch(g, Options{Rounds: 8, K: 4}, rand.New(rand.NewSource(8)))
	um := cm.Project(g)
	if !um.Valid(g) {
		t.Fatal("projected matching invalid")
	}
	// Every projected pair must hold at least one channel in the b-matching.
	for s, r := range um.ReceiverOf {
		if r >= 0 && cm.Channels[[2]int{s, r}] == 0 {
			t.Fatalf("projection invented pair (%d,%d) with no channels", s, r)
		}
	}
}
