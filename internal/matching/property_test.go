package matching

import (
	"math/rand"
	"testing"
)

// Randomized property grid over every registered matcher: each must
// return a Valid matching on arbitrary graphs, report internally
// consistent Stats, and — when budgeted — keep every round's control
// bits within the stated budget (the budget-pim construction has zero
// slack: requests are truncated so even all-grants-all-accepts rounds
// fit).
func TestAllRegisteredMatchersPropertyGrid(t *testing.T) {
	pick := rand.New(rand.NewSource(41))
	const configs = 30
	for c := 0; c < configs; c++ {
		n := 8 + pick.Intn(120)
		deg := 0.5 + pick.Float64()*5
		dense := pick.Intn(4) == 0
		gseed := int64(1000 + c)
		var g *Graph
		if dense {
			g = DenseGraph(n, n)
		} else {
			g = SparseRandomGraph(rand.New(rand.NewSource(gseed)), n, n, deg)
		}
		budget := float64((pick.Intn(4) + 1)) * 0.1 * 3 * float64(g.Edges()+1) * ControlMsgBits
		for _, name := range Names() {
			d := MustLookup(name)
			o := Options{}
			if d.Budgeted {
				o.BudgetBits = budget
			}
			m, err := d.New(o)
			if err != nil {
				t.Fatalf("config %d: %s.New: %v", c, name, err)
			}
			got, st := m.Match(g, rand.New(rand.NewSource(gseed+int64(c)+77)))
			if !got.Valid(g) {
				t.Fatalf("config %d (n=%d dense=%v): %s returned invalid matching", c, n, dense, name)
			}
			if st.ControlBits != st.Msgs*ControlMsgBits {
				t.Fatalf("%s: ControlBits %d != Msgs %d × %d", name, st.ControlBits, st.Msgs, ControlMsgBits)
			}
			if len(st.RoundBits) > 0 && len(st.RoundBits) != st.Rounds {
				t.Fatalf("%s: %d RoundBits entries for %d rounds", name, len(st.RoundBits), st.Rounds)
			}
			var sum int64
			for i, b := range st.RoundBits {
				sum += b
				if d.Budgeted && o.BudgetBits > 0 && float64(b) > o.BudgetBits {
					t.Fatalf("config %d: %s round %d spent %d bits > budget %.0f",
						c, name, i, b, o.BudgetBits)
				}
			}
			if len(st.RoundBits) > 0 && sum != st.ControlBits {
				t.Fatalf("%s: RoundBits sum %d != ControlBits %d", name, sum, st.ControlBits)
			}
			// Matchers that never reconfigure only add pairs, so their
			// trajectory is monotone; the online b-matcher may evict.
			if st.Reconfigs == 0 {
				for i := 1; i < len(st.RoundSizes); i++ {
					if st.RoundSizes[i] < st.RoundSizes[i-1] {
						t.Fatalf("%s: matching shrank between rounds: %v", name, st.RoundSizes)
					}
				}
			}
		}
	}
}

// Budgeted matchers still converge — just in more rounds — and unlimited
// budget reproduces plain dcPIM exactly (same RNG stream).
func TestBudgetPIMBehaviors(t *testing.T) {
	g := SparseRandomGraph(rand.New(rand.NewSource(3)), 512, 512, 4)
	d := MustLookup("budget-pim")

	unlimited, err := d.New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	um, ust := unlimited.Match(g, rand.New(rand.NewSource(5)))
	plain, err := MustLookup("dcpim").New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm, _ := plain.Match(g, rand.New(rand.NewSource(5)))
	if um.Size() != pm.Size() {
		t.Fatalf("unlimited budget-pim size %d != dcpim %d", um.Size(), pm.Size())
	}
	for s, r := range pm.ReceiverOf {
		if um.ReceiverOf[s] != r {
			t.Fatalf("unlimited budget-pim diverged from dcpim at sender %d", s)
		}
	}

	full := 3 * float64(g.Edges()) * ControlMsgBits
	tight, err := d.New(Options{BudgetBits: 0.1 * full})
	if err != nil {
		t.Fatal(err)
	}
	tm, tst := tight.Match(g, rand.New(rand.NewSource(5)))
	if !tm.Valid(g) {
		t.Fatal("budgeted matching invalid")
	}
	if tst.Rounds <= ust.Rounds {
		t.Errorf("10%% budget converged in %d rounds, unlimited took %d — truncation had no cost?",
			tst.Rounds, ust.Rounds)
	}
	if float64(tm.Size()) < 0.8*float64(um.Size()) {
		t.Errorf("10%% budget matched %d vs unlimited %d — should still approach maximal", tm.Size(), um.Size())
	}
	// A budget too small for a single exchange makes no progress at all.
	starved, err := d.New(Options{BudgetBits: ControlMsgBits})
	if err != nil {
		t.Fatal(err)
	}
	sm, sst := starved.Match(g, rand.New(rand.NewSource(5)))
	if sm.Size() != 0 || sst.Msgs != 0 {
		t.Fatalf("sub-exchange budget matched %d with %d msgs", sm.Size(), sst.Msgs)
	}
}

// The online dynamic b-matcher reaches a competitive matching and
// reports its reconfiguration spend.
func TestOnlineBMatchQuality(t *testing.T) {
	g := SparseRandomGraph(rand.New(rand.NewSource(13)), 256, 256, 4)
	d := MustLookup("online-bmatch")
	m, err := d.New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, st := m.Match(g, rand.New(rand.NewSource(17)))
	if !got.Valid(g) {
		t.Fatal("invalid matching")
	}
	if st.Reconfigs <= 0 {
		t.Error("online b-matcher reports zero reconfigurations on a non-empty graph")
	}
	if st.K != DefaultK || st.MatchedChannels <= 0 {
		t.Errorf("stats K=%d channels=%d", st.K, st.MatchedChannels)
	}
	ref, err := MustLookup("pim").New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rm, _ := ref.Match(g, rand.New(rand.NewSource(19)))
	// K channels per node admit at least as much effective capacity as a
	// unit matching; the projected unit matching should reach a healthy
	// fraction of M*.
	if float64(got.Size()) < 0.5*float64(rm.Size()) {
		t.Errorf("online-bmatch projected size %d ≪ M* %d", got.Size(), rm.Size())
	}
	if st.EffectiveSize(got) < float64(rm.Size())*0.8 {
		t.Errorf("online-bmatch effective size %.1f ≪ M* %d", st.EffectiveSize(got), rm.Size())
	}
	// Rent-or-buy: a higher reconfiguration cost must not increase the
	// number of reconfigurations.
	costly, err := d.New(Options{ReconfigCost: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, cst := costly.Match(g, rand.New(rand.NewSource(17)))
	if cst.Reconfigs > st.Reconfigs {
		t.Errorf("α=8 paid %d reconfigs, α=2 paid %d", cst.Reconfigs, st.Reconfigs)
	}
}

// Stats overhead accounting sanity.
func TestStatsOverheadAccounting(t *testing.T) {
	var st Stats
	m := &Matching{SenderOf: []int{0, -1}, ReceiverOf: []int{0, -1}}
	if v := st.ControlBytesPerMatchedByte(m); v != 0 {
		// One matched pair, zero control bits.
		t.Fatalf("free matching should cost 0, got %v", v)
	}
	st.note(100, 1)
	want := float64(100*ControlMsgBits/8) / float64(EpochPayloadBytes)
	if v := st.ControlBytesPerMatchedByte(m); v != want {
		t.Fatalf("overhead = %v, want %v", v, want)
	}
	empty := &Matching{SenderOf: []int{-1}, ReceiverOf: []int{-1}}
	if v := st.ControlBytesPerMatchedByte(empty); !(v > 1e300) {
		t.Fatalf("spent bits with nothing matched should be +Inf, got %v", v)
	}
}
