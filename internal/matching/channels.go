package matching

import (
	"fmt"
	"math/rand"
)

// ChannelMatching is a bipartite b-matching: up to K channels per sender
// and per receiver, each matched channel pairing one sender with one
// receiver.
type ChannelMatching struct {
	K            int
	Channels     map[[2]int]int // {s, r} → matched channel count
	SenderUsed   []int          // channels used per sender
	ReceiverUsed []int          // channels used per receiver
}

// TotalChannels returns the number of matched channels.
func (m *ChannelMatching) TotalChannels() int {
	n := 0
	//lint:deterministic int sum: map order cannot affect the result
	for _, c := range m.Channels {
		n += c
	}
	return n
}

// EffectiveSize returns matched channels normalized by K — the analogue of
// matching size for utilization math (each channel carries 1/K of a link).
func (m *ChannelMatching) EffectiveSize() float64 {
	return float64(m.TotalChannels()) / float64(m.K)
}

// Valid reports whether the b-matching respects per-node channel budgets
// and only uses graph edges.
func (m *ChannelMatching) Valid(g *Graph) bool {
	su := make([]int, g.Senders)
	ru := make([]int, g.Receivers)
	//lint:deterministic per-edge budget accumulation and validity AND: order-insensitive
	for key, c := range m.Channels {
		s, r := key[0], key[1]
		if c <= 0 || s < 0 || s >= g.Senders || r < 0 || r >= g.Receivers {
			return false
		}
		found := false
		for _, rr := range g.Adj[s] {
			if rr == r {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		su[s] += c
		ru[r] += c
	}
	for s, c := range su {
		if c > m.K || c != m.SenderUsed[s] {
			return false
		}
	}
	for r, c := range ru {
		if c > m.K || c != m.ReceiverUsed[r] {
			return false
		}
	}
	return true
}

// Project collapses the b-matching onto a unit Matching on g: each
// sender is paired with the neighbor it holds the most channels toward
// (ties to the lower receiver index), subject to one-to-one feasibility,
// processing senders in index order. Deterministic; used by the registry
// adapters so every matcher yields a comparable *Matching.
func (m *ChannelMatching) Project(g *Graph) *Matching {
	um := &Matching{
		SenderOf:   fillNeg(g.Receivers),
		ReceiverOf: fillNeg(g.Senders),
	}
	for s := 0; s < g.Senders; s++ {
		best, bestC := -1, 0
		for _, r := range g.Adj[s] {
			if um.SenderOf[r] >= 0 {
				continue
			}
			if c := m.Channels[[2]int{s, r}]; c > bestC {
				best, bestC = r, c
			}
		}
		if best >= 0 {
			um.SenderOf[best] = s
			um.ReceiverOf[s] = best
		}
	}
	return um
}

// channelReq is a request or grant for some channels on one edge.
type channelReq struct {
	peer int // the other endpoint
	want int
}

// ChannelMatch runs dcPIM's multi-channel matching (§3.4) for o.Rounds
// rounds with o.K channels per host. Receivers request channels from
// senders they have demand for; senders grant within their free budget;
// receivers accept within theirs. If o.Remaining is set, the first round
// orders grant and accept choices by smallest remaining bytes (the
// FCT-optimizing round); all other choices are uniform random.
//
// Options are taken literally (no registry defaulting): Rounds = 0 runs
// zero rounds. Invalid options (o.Validate() != nil) panic — a direct
// call with k < 1 or a NaN budget is a programmer error; the registry's
// New returns it as an error instead.
func ChannelMatch(g *Graph, o Options, rng *rand.Rand) *ChannelMatching {
	if err := o.Validate(); err != nil {
		panic(fmt.Sprintf("matching: ChannelMatch: %v", err))
	}
	k := o.K
	m := &ChannelMatching{
		K:            k,
		Channels:     make(map[[2]int]int),
		SenderUsed:   make([]int, g.Senders),
		ReceiverUsed: make([]int, g.Receivers),
	}
	demand := o.Demand
	if demand == nil {
		demand = func(int, int) int { return k }
	}
	matched := 0 // running TotalChannels, kept incrementally for OnRound

	for round := 0; round < o.Rounds; round++ {
		srpt := round == 0 && o.Remaining != nil

		// Request stage: receivers ask senders for channels. We iterate
		// sender-side for cache friendliness; requests[s] collects them.
		requests := make([][]channelReq, g.Senders)
		active := false
		var reqMsgs int64
		for s := 0; s < g.Senders; s++ {
			freeS := k - m.SenderUsed[s]
			if freeS <= 0 {
				continue
			}
			for _, r := range g.Adj[s] {
				freeR := k - m.ReceiverUsed[r]
				if freeR <= 0 {
					continue
				}
				want := demand(s, r) - m.Channels[[2]int{s, r}]
				if want <= 0 {
					continue
				}
				if want > freeR {
					want = freeR
				}
				requests[s] = append(requests[s], channelReq{peer: r, want: want})
				reqMsgs++
				active = true
			}
		}
		if !active {
			if o.stats != nil {
				o.stats.Converged = true
			}
			break
		}

		// Grant stage: each sender distributes its free channels over the
		// requests, in SRPT or random order.
		grants := make([][]channelReq, g.Receivers)
		var grantMsgs int64
		for s := 0; s < g.Senders; s++ {
			reqs := requests[s]
			if len(reqs) == 0 {
				continue
			}
			free := k - m.SenderUsed[s]
			order(reqs, rng, srpt, func(r int) int64 { return o.Remaining(s, r) })
			for _, rq := range reqs {
				if free <= 0 {
					break
				}
				give := rq.want
				if give > free {
					give = free
				}
				grants[rq.peer] = append(grants[rq.peer], channelReq{peer: s, want: give})
				grantMsgs++
				free -= give
			}
		}

		// Accept stage: each receiver accepts grants within its budget.
		var acceptMsgs int64
		for r := 0; r < g.Receivers; r++ {
			gs := grants[r]
			if len(gs) == 0 {
				continue
			}
			free := k - m.ReceiverUsed[r]
			order(gs, rng, srpt, func(s int) int64 { return o.Remaining(s, r) })
			for _, gr := range gs {
				if free <= 0 {
					break
				}
				take := gr.want
				if take > free {
					take = free
				}
				m.Channels[[2]int{gr.peer, r}] += take
				m.SenderUsed[gr.peer] += take
				m.ReceiverUsed[r] += take
				if take > 0 {
					acceptMsgs++
				}
				matched += take
				free -= take
			}
		}
		if o.stats != nil {
			o.stats.note(reqMsgs+grantMsgs+acceptMsgs, matched)
		}
		if o.OnRound != nil {
			o.OnRound(round, matched)
		}
	}
	if o.stats != nil {
		o.stats.MatchedChannels = matched
		o.stats.K = k
	}
	return m
}

// order arranges reqs either by ascending remaining-bytes key (SRPT) or in
// a uniform random permutation.
func order(reqs []channelReq, rng *rand.Rand, srpt bool, key func(peer int) int64) {
	if srpt {
		// Insertion sort: request lists are short (node degree).
		for i := 1; i < len(reqs); i++ {
			for j := i; j > 0 && key(reqs[j].peer) < key(reqs[j-1].peer); j-- {
				reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
			}
		}
		return
	}
	rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
}
