package matching

import "math/rand"

// Communication-budget matching, after "bipartite matching under
// communication constraints" (arXiv 2604.10744): the control plane is
// the scarce resource, so each PIM round must fit an explicit bit
// budget. The matcher truncates the request fan-out so that even in the
// worst case — every request answered by a grant and every grant by an
// accept — the round's total bits stay within Options.BudgetBits.
//
// Budget accounting (DESIGN.md §15): every control message costs
// ControlMsgBits, and one admitted request can induce at most one grant
// and one accept, so a round that sends R requests costs at most
// 3·R·ControlMsgBits bits. The per-round request quota is therefore
//
//	maxReq = floor(BudgetBits / (3 · ControlMsgBits))
//
// which makes the budget guarantee exact (zero slack), at the price of
// under-using the budget in late rounds where few grants echo back.
// The quota is split fairly across the senders still unmatched: each
// active sender may send floor(maxReq/active) requests, and the
// remainder goes one extra request each to the lowest-indexed active
// senders. A sender with more unmatched neighbors than its quota picks a
// uniform random subset (partial Fisher-Yates), so the truncation stays
// unbiased and the matcher remains PIM-convergent, just slower: fewer
// requests per round means fewer resolved pairs per round.
func runBudgetPIM(g *Graph, o Options, rng *rand.Rand) (*Matching, Stats) {
	var st Stats
	m := &Matching{
		SenderOf:   fillNeg(g.Receivers),
		ReceiverOf: fillNeg(g.Senders),
	}
	maxReq := int64(-1) // unlimited
	if o.BudgetBits > 0 {
		maxReq = int64(o.BudgetBits / (3 * ControlMsgBits))
	}
	rounds := o.roundsFor(g)
	grants := make([][]int, g.Senders)
	scratch := make([]int, 0, 64) // reused candidate buffer
	for round := 0; round < rounds; round++ {
		// Census pass: which senders still have an unmatched neighbor?
		// Costs no messages and no RNG draws.
		activeSenders := 0
		for s := 0; s < g.Senders; s++ {
			if m.ReceiverOf[s] >= 0 {
				continue
			}
			for _, r := range g.Adj[s] {
				if m.SenderOf[r] < 0 {
					activeSenders++
					break
				}
			}
		}
		if activeSenders == 0 {
			st.Converged = true
			break
		}

		// Fair-share quotas: base requests per active sender, remainder
		// distributed one each to the first active senders in index
		// order (deterministic, no RNG).
		base, extra := int64(-1), int64(0)
		if maxReq >= 0 {
			base = maxReq / int64(activeSenders)
			extra = maxReq % int64(activeSenders)
		}

		// Request stage under quota.
		requests := make([][]int, g.Receivers)
		var reqMsgs int64
		seen := 0
		for s := 0; s < g.Senders; s++ {
			if m.ReceiverOf[s] >= 0 {
				continue
			}
			scratch = scratch[:0]
			for _, r := range g.Adj[s] {
				if m.SenderOf[r] < 0 {
					scratch = append(scratch, r)
				}
			}
			if len(scratch) == 0 {
				continue
			}
			quota := int64(len(scratch))
			if base >= 0 {
				quota = base
				if int64(seen) < extra {
					quota++
				}
			}
			seen++
			if quota <= 0 {
				continue
			}
			if quota < int64(len(scratch)) {
				// Uniform random subset of size quota via partial
				// Fisher-Yates: after i swaps, scratch[:i] is a uniform
				// i-subset in uniform order.
				for i := int64(0); i < quota; i++ {
					j := int(i) + rng.Intn(len(scratch)-int(i))
					scratch[i], scratch[j] = scratch[j], scratch[i]
				}
				scratch = scratch[:quota]
			}
			for _, r := range scratch {
				requests[r] = append(requests[r], s)
				reqMsgs++
			}
		}
		if reqMsgs == 0 {
			// Quota rounded to zero requests: the budget cannot carry a
			// single three-message exchange, so no progress is possible.
			break
		}

		// Grant and accept stages mirror runPIM; grants ≤ requests and
		// accepts ≤ grants keep the round under budget by construction.
		for s := range grants {
			grants[s] = grants[s][:0]
		}
		var grantMsgs int64
		for r := 0; r < g.Receivers; r++ {
			if m.SenderOf[r] >= 0 || len(requests[r]) == 0 {
				continue
			}
			s := requests[r][rng.Intn(len(requests[r]))]
			grants[s] = append(grants[s], r)
			grantMsgs++
		}
		var acceptMsgs int64
		for s := 0; s < g.Senders; s++ {
			if len(grants[s]) == 0 || m.ReceiverOf[s] >= 0 {
				continue
			}
			r := grants[s][rng.Intn(len(grants[s]))]
			m.ReceiverOf[s] = r
			m.SenderOf[r] = s
			acceptMsgs++
		}
		st.note(reqMsgs+grantMsgs+acceptMsgs, m.Size())
	}
	return m, st
}

func init() {
	Register(Descriptor{
		Name:     "budget-pim",
		Doc:      "PIM with request fan-out truncated to a per-round communication budget (arXiv 2604.10744)",
		Budgeted: true,
		New: func(o Options) (Matcher, error) {
			o, err := newUnit(o)
			if err != nil {
				return nil, err
			}
			return matcherFunc(func(g *Graph, rng *rand.Rand) (*Matching, Stats) {
				return runBudgetPIM(g, o, rng)
			}), nil
		},
	})
}
