package matching

import "math/rand"

// Online dynamic b-matching, after arXiv 2006.10692: a reconfigurable
// fabric serves a *sequence* of demands, and changing the matching costs
// real work (circuit reconfiguration), so the matcher must amortize
// reconfiguration cost against the traffic an edge will actually carry.
//
// The adaptation here presents the graph's edge set as a demand sequence
// (DefaultBMatchEpochs passes, each a fresh uniform permutation of the
// edges) to an online algorithm with per-node capacity b = Options.K:
//
//   - A demand on an edge already in the b-matching is served free
//     (served[e]++).
//   - A demand on an unmatched edge increments that edge's rent counter.
//     Only once the counter reaches α = Options.ReconfigCost does the
//     matcher pay to install the edge — the classic rent-or-buy rule
//     that makes the reconfiguration cost O(1)-competitive against the
//     traffic the edge has proven it will carry.
//   - Installing into a full endpoint evicts the incident matched edge
//     with the fewest served demands, but only if that victim has served
//     fewer demands than the newcomer has pending — otherwise the
//     newcomer keeps renting.
//
// Communication accounting: each demand presentation costs one control
// message (the fabric learns the demand exists), and each installation
// or eviction costs one message (the reconfiguration command). Stats are
// noted once per epoch; Reconfigs counts installs + evictions.
func runOnlineB(g *Graph, o Options, rng *rand.Rand) (*Matching, Stats) {
	var st Stats
	k := o.K
	cm := &ChannelMatching{
		K:            k,
		Channels:     make(map[[2]int]int),
		SenderUsed:   make([]int, g.Senders),
		ReceiverUsed: make([]int, g.Receivers),
	}
	// Flat edge list; perm indices into it give the demand sequence.
	type edge struct{ s, r int }
	edges := make([]edge, 0, g.Edges())
	for s, rs := range g.Adj {
		for _, r := range rs {
			edges = append(edges, edge{s, r})
		}
	}
	served := make(map[[2]int]int) // demands served while matched
	rent := make(map[[2]int]int)   // unmatched-demand counters
	matched := 0

	// matchedAt[r] lists the senders currently matched to receiver r
	// (≤ k entries, kept sorted ascending so eviction scans are
	// deterministic and O(k) instead of O(senders)).
	matchedAt := make([][]int, g.Receivers)
	insertMatched := func(r, s int) {
		lst := matchedAt[r]
		i := len(lst)
		for i > 0 && lst[i-1] > s {
			i--
		}
		lst = append(lst, 0)
		copy(lst[i+1:], lst[i:])
		lst[i] = s
		matchedAt[r] = lst
	}
	removeMatched := func(r, s int) {
		lst := matchedAt[r]
		for i, v := range lst {
			if v == s {
				matchedAt[r] = append(lst[:i], lst[i+1:]...)
				return
			}
		}
	}

	// evictLeast picks the least-served matched edge incident to a full
	// endpoint of (s, r), scanning the sender's adjacency and the
	// receiver's matched list in index order for determinism.
	evictLeast := func(s, r int) ([2]int, bool) {
		best := [2]int{-1, -1}
		bestServed := 0
		if cm.SenderUsed[s] >= k {
			for _, rr := range g.Adj[s] {
				key := [2]int{s, rr}
				if cm.Channels[key] == 0 {
					continue
				}
				if best[0] < 0 || served[key] < bestServed {
					best, bestServed = key, served[key]
				}
			}
		}
		if cm.ReceiverUsed[r] >= k {
			for _, ss := range matchedAt[r] {
				key := [2]int{ss, r}
				if best[0] < 0 || served[key] < bestServed {
					best, bestServed = key, served[key]
				}
			}
		}
		return best, best[0] >= 0
	}

	epochs := o.Rounds
	if epochs <= 0 {
		epochs = DefaultBMatchEpochs
	}
	alpha := o.ReconfigCost
	for epoch := 0; epoch < epochs; epoch++ {
		var msgs int64
		changed := false
		for _, i := range rng.Perm(len(edges)) {
			e := edges[i]
			key := [2]int{e.s, e.r}
			msgs++ // the demand presentation itself
			if cm.Channels[key] > 0 {
				served[key]++
				continue
			}
			rent[key]++
			if rent[key] < alpha {
				continue
			}
			// Buy: make room on both endpoints if justified, then install.
			for cm.SenderUsed[e.s] >= k || cm.ReceiverUsed[e.r] >= k {
				victim, ok := evictLeast(e.s, e.r)
				if !ok || served[victim] >= rent[key] {
					victim = [2]int{-1, -1}
				}
				if victim[0] < 0 {
					break
				}
				delete(cm.Channels, victim)
				cm.SenderUsed[victim[0]]--
				cm.ReceiverUsed[victim[1]]--
				removeMatched(victim[1], victim[0])
				served[victim] = 0
				matched--
				st.Reconfigs++
				msgs++ // eviction command
				changed = true
			}
			if cm.SenderUsed[e.s] < k && cm.ReceiverUsed[e.r] < k {
				cm.Channels[key] = 1
				cm.SenderUsed[e.s]++
				cm.ReceiverUsed[e.r]++
				insertMatched(e.r, e.s)
				served[key] = rent[key]
				delete(rent, key)
				matched++
				st.Reconfigs++
				msgs++ // install command
				changed = true
			}
		}
		st.note(msgs, matched)
		if o.OnRound != nil {
			o.OnRound(epoch, matched)
		}
		if !changed && epoch > 0 {
			st.Converged = true
			break
		}
	}
	st.MatchedChannels = matched
	st.K = k
	return cm.Project(g), st
}

func init() {
	Register(Descriptor{
		Name: "online-bmatch",
		Doc:  "online dynamic b-matching with rent-or-buy reconfiguration amortization (arXiv 2006.10692)",
		New: func(o Options) (Matcher, error) {
			o = o.withDefaults(DefaultK)
			if err := o.Validate(); err != nil {
				return nil, err
			}
			return matcherFunc(func(g *Graph, rng *rand.Rand) (*Matching, Stats) {
				return runOnlineB(g, o, rng)
			}), nil
		},
	})
}
