package matching

import (
	"math/rand"
	"testing"
)

// PIMRounds must agree with PIM on the final matching (same RNG stream)
// and report a nondecreasing per-round size trajectory ending at the
// final size.
func TestPIMRoundsTrajectory(t *testing.T) {
	g := RandomGraph(rand.New(rand.NewSource(7)), 32, 32, 4)
	m, sizes := PIMRounds(g, 6, rand.New(rand.NewSource(9)))
	if !m.Valid(g) {
		t.Fatal("invalid matching")
	}
	if len(sizes) == 0 {
		t.Fatal("no rounds reported")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("round %d shrank the matching: %v", i, sizes)
		}
	}
	if sizes[len(sizes)-1] != m.Size() {
		t.Fatalf("last round size %d != final %d", sizes[len(sizes)-1], m.Size())
	}

	ref := PIM(g, 6, rand.New(rand.NewSource(9)))
	if ref.Size() != m.Size() {
		t.Fatalf("PIMRounds size %d != PIM size %d under the same seed", m.Size(), ref.Size())
	}
	for s, r := range ref.ReceiverOf {
		if m.ReceiverOf[s] != r {
			t.Fatalf("sender %d matched to %d, PIM says %d", s, m.ReceiverOf[s], r)
		}
	}
}

// OnRound fires once per executed round with a cumulative, nondecreasing
// channel count ending at TotalChannels, and convergence-skipped rounds
// never fire.
func TestChannelMatchOnRound(t *testing.T) {
	g := RandomGraph(rand.New(rand.NewSource(3)), 24, 24, 3)
	var rounds []int
	var counts []int
	m := ChannelMatch(g, Options{Rounds: 8, K: 4,
		OnRound: func(round, matched int) {
			rounds = append(rounds, round)
			counts = append(counts, matched)
		},
	}, rand.New(rand.NewSource(5)))
	if !m.Valid(g) {
		t.Fatal("invalid b-matching")
	}
	if len(rounds) == 0 || len(rounds) > 8 {
		t.Fatalf("OnRound fired %d times", len(rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("round indices %v not consecutive from 0", rounds)
		}
		if i > 0 && counts[i] < counts[i-1] {
			t.Fatalf("matched channels decreased: %v", counts)
		}
	}
	if last := counts[len(counts)-1]; last != m.TotalChannels() {
		t.Fatalf("final OnRound count %d != TotalChannels %d", last, m.TotalChannels())
	}

	// The callback must not perturb the matching: same seed, no callback.
	ref := ChannelMatch(g, Options{Rounds: 8, K: 4}, rand.New(rand.NewSource(5)))
	if ref.TotalChannels() != m.TotalChannels() {
		t.Fatalf("OnRound changed the outcome: %d vs %d channels",
			m.TotalChannels(), ref.TotalChannels())
	}
}
