package matching

import (
	"fmt"
	"math"
)

// Options is the one validated tuning struct shared by every matcher,
// replacing the old per-call (rounds, k, rng, ChannelOptions) parameter
// sprawl. Zero values mean "matcher default" when resolved through the
// registry (New applies withDefaults before Validate); direct callers of
// ChannelMatch get the literal values and must pass a complete struct.
type Options struct {
	// Rounds is the round budget. Through the registry, 0 selects the
	// matcher's default (the convergence budget 4·log₂(n)+8 for
	// round-based matchers). Negative is rejected.
	Rounds int
	// K is the per-node channel count for b-matchers (dcpim-k,
	// online-bmatch). Through the registry, 0 selects the matcher
	// default; unit matchers force K=1. K<1 after defaulting is
	// rejected — the old ChannelMatch silently accepted it and returned
	// a degenerate empty matching.
	K int
	// BudgetBits is the per-round communication budget in bits for
	// budgeted matchers (budget-pim): total request+grant+accept bits in
	// any one round never exceed it. 0 means unlimited. NaN, negative
	// and +Inf-from-arithmetic-garbage values are rejected.
	BudgetBits float64
	// ReconfigCost is the online b-matcher's rent-or-buy threshold α: an
	// edge must be demanded α times before the matcher pays to add it
	// (arXiv 2006.10692). Through the registry, 0 selects the default.
	ReconfigCost int
	// Demand returns how many channels sender s needs toward receiver r
	// (≥1; capped at K). Nil means "as many as possible" (K).
	Demand func(s, r int) int
	// Remaining returns the remaining-bytes key used by the
	// FCT-optimizing first round (§3.5): lower sorts first. Nil disables
	// the FCT round (all rounds pick uniformly at random).
	Remaining func(s, r int) int64
	// OnRound, if non-nil, is invoked after every completed round with
	// the 0-based round index and the cumulative number of matched
	// pairs/channels. Rounds skipped by early convergence do not fire.
	OnRound func(round, matched int)

	// stats, when non-nil, receives per-round accounting. Set by the
	// registry adapters; accumulation never draws from the RNG.
	stats *Stats
}

// Validate rejects option combinations no matcher can honor: negative
// round budgets, channel counts below 1, and NaN/negative/infinite
// communication budgets. It does not apply defaults — use the registry's
// New (or withDefaults) for that.
func (o Options) Validate() error {
	if o.Rounds < 0 {
		return fmt.Errorf("matching: Rounds = %d, must be ≥ 0", o.Rounds)
	}
	if o.K < 1 {
		return fmt.Errorf("matching: K = %d, must be ≥ 1", o.K)
	}
	if math.IsNaN(o.BudgetBits) {
		return fmt.Errorf("matching: BudgetBits is NaN")
	}
	if o.BudgetBits < 0 {
		return fmt.Errorf("matching: BudgetBits = %v, must be ≥ 0", o.BudgetBits)
	}
	if math.IsInf(o.BudgetBits, 0) {
		return fmt.Errorf("matching: BudgetBits is infinite; use 0 for unlimited")
	}
	if o.ReconfigCost < 0 {
		return fmt.Errorf("matching: ReconfigCost = %d, must be ≥ 0", o.ReconfigCost)
	}
	return nil
}

// Matcher defaults, applied by the registry when the corresponding
// Options field is zero.
const (
	// DefaultK is the channel count dcPIM runs with (§3.4).
	DefaultK = 4
	// DefaultReconfigCost is the online b-matcher's rent-or-buy
	// threshold α: pay for an edge after it has been demanded twice,
	// the classic 2-competitive ski-rental choice.
	DefaultReconfigCost = 2
	// DefaultBMatchEpochs is how many passes over the demand sequence
	// the online b-matcher makes; each pass replays every edge once in
	// a fresh random order.
	DefaultBMatchEpochs = 6
)

// withDefaults resolves the graph-independent zero-valued fields against
// matcher defaults: K→defK (unit matchers pass 1, channel matchers
// DefaultK), ReconfigCost→DefaultReconfigCost. Rounds=0 stays 0 here —
// it means "convergence budget for this graph" and is resolved per-graph
// inside Match via roundsFor.
func (o Options) withDefaults(defK int) Options {
	if o.K == 0 {
		o.K = defK
	}
	if o.ReconfigCost == 0 {
		o.ReconfigCost = DefaultReconfigCost
	}
	return o
}

// roundsFor resolves the round budget for one graph: the explicit budget
// if set, else the 4·log₂(n)+8 convergence budget.
func (o Options) roundsFor(g *Graph) int {
	if o.Rounds > 0 {
		return o.Rounds
	}
	return convergenceRounds(g)
}
