package trace

import (
	"dcpim/internal/netsim"
	"dcpim/internal/packet"
)

// Attach registers r as an observer on the fabric so drops, trims, and
// deliveries are recorded automatically. Call before fab.Start.
func Attach(fab *netsim.Fabric, r *Recorder) {
	eng := fab.Engine()
	fab.AddObserver(netsim.ObserverFuncs{
		Delivered: func(_ int, p *packet.Packet) {
			r.Record(FromPacket(eng.Now(), Deliver, p))
		},
		Dropped: func(p *packet.Packet) {
			r.Record(FromPacket(eng.Now(), Drop, p))
		},
		Trimmed: func(p *packet.Packet) {
			r.Record(FromPacket(eng.Now(), Trim, p))
		},
	})
}
