// Package trace records simulation events into a bounded ring buffer for
// debugging and analysis: packet drops, trims, and deliveries as observed
// by the fabric. Attach a Recorder to a netsim.Fabric via Attach and
// dump (or filter) the tail after a run. Recording is allocation-light so
// it can stay enabled in tests.
package trace

import (
	"fmt"
	"io"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

// Op is the event type.
type Op uint8

const (
	// Drop is a packet lost at a switch queue.
	Drop Op = iota
	// Trim is a data packet cut to a header (NDP).
	Trim
	// Deliver is a packet handed to a destination protocol.
	Deliver
)

var opNames = [...]string{"DROP", "TRIM", "DELIVER"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Event is one recorded observation.
type Event struct {
	At   sim.Time
	Op   Op
	Kind packet.Kind
	Src  int
	Dst  int
	Flow uint64
	Seq  int
	Size int
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("%12s %-8s %-9s %3d->%-3d flow=%-6d seq=%-5d %dB",
		e.At, e.Op, e.Kind, e.Src, e.Dst, e.Flow, e.Seq, e.Size)
}

// Recorder is a fixed-capacity ring buffer of events.
type Recorder struct {
	events []Event
	next   int
	filled bool
	total  uint64
}

// NewRecorder returns a recorder keeping the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest once full.
func (r *Recorder) Record(e Event) {
	r.events[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Total returns how many events were ever recorded (including evicted).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if !r.filled {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Filter returns retained events matching keep, oldest first.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes retained events to w, oldest first.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}

// FlowEvents returns the retained events of one flow.
func (r *Recorder) FlowEvents(flow uint64) []Event {
	return r.Filter(func(e Event) bool { return e.Flow == flow })
}

// FromPacket builds an event from a packet at a given time.
func FromPacket(at sim.Time, op Op, p *packet.Packet) Event {
	return Event{
		At: at, Op: op, Kind: p.Kind,
		Src: p.Src, Dst: p.Dst, Flow: p.Flow, Seq: p.Seq, Size: p.Size,
	}
}
