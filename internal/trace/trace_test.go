package trace

import (
	"strings"
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func TestRingBuffer(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: sim.Time(i), Flow: uint64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	// Oldest first: flows 2, 3, 4.
	for i, e := range evs {
		if e.Flow != uint64(i+2) {
			t.Fatalf("events = %+v", evs)
		}
	}
}

func TestRecorderPartial(t *testing.T) {
	r := NewRecorder(10)
	r.Record(Event{Flow: 7})
	evs := r.Events()
	if len(evs) != 1 || evs[0].Flow != 7 {
		t.Fatalf("events = %+v", evs)
	}
	// Zero capacity clamps to 1.
	r2 := NewRecorder(0)
	r2.Record(Event{Flow: 1})
	r2.Record(Event{Flow: 2})
	if evs := r2.Events(); len(evs) != 1 || evs[0].Flow != 2 {
		t.Fatalf("clamped recorder events = %+v", evs)
	}
}

func TestFilterAndFlowEvents(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Op: Drop, Flow: 1})
	r.Record(Event{Op: Deliver, Flow: 2})
	r.Record(Event{Op: Drop, Flow: 2})
	drops := r.Filter(func(e Event) bool { return e.Op == Drop })
	if len(drops) != 2 {
		t.Fatalf("drops = %d", len(drops))
	}
	if evs := r.FlowEvents(2); len(evs) != 2 {
		t.Fatalf("flow 2 events = %d", len(evs))
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRecorder(2)
	p := packet.NewData(1, 2, 9, 4, packet.MTU, 3)
	r.Record(FromPacket(sim.Time(5*sim.Microsecond), Trim, p))
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"TRIM", "DATA", "1->2", "flow=9", "seq=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump %q missing %q", out, want)
		}
	}
	if Op(99).String() != "OP(99)" {
		t.Fatal("unknown op string")
	}
}

// End-to-end: a recorder attached via the fabric observer captures drops
// and trims from a real simulation.
func TestFabricIntegration(t *testing.T) {
	eng := sim.NewEngine(1)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{
		Spray:              true,
		TrimThresholdBytes: 8 * packet.MTU,
	})
	rec := NewRecorder(1024)
	Attach(fab, rec)
	for i := 0; i < tp.NumHosts; i++ {
		fab.AttachProtocol(i, nop{})
	}
	fab.Start()
	for src := 1; src < 8; src++ {
		for i := 0; i < 20; i++ {
			fab.Host(src).Send(packet.NewData(src, 0, uint64(src), i, packet.MTU, packet.PrioDataHigh))
		}
	}
	eng.RunAll()
	trims := rec.Filter(func(e Event) bool { return e.Op == Trim })
	if len(trims) == 0 {
		t.Fatal("no trim events recorded")
	}
	if int64(len(trims)) != fab.Counters.Trims {
		t.Fatalf("recorded %d trims, counters say %d", len(trims), fab.Counters.Trims)
	}
}

type nop struct{}

func (nop) Start(*netsim.Host)          {}
func (nop) OnFlowArrival(workload.Flow) {}
func (nop) OnPacket(*packet.Packet)     {}
