package faults

import "dcpim/internal/checkpoint"

// Fingerprint returns a stable hash of the schedule, folding its
// canonical text form (Format is a lossless round trip, so two schedules
// fingerprint equal iff they install identical fault timelines). It
// feeds the run-spec hash that checkpoint resume uses to reject
// snapshots taken under a different fault schedule. Nil-safe: no
// schedule hashes to the fold seed.
func (s *Schedule) Fingerprint() uint64 {
	h := uint64(checkpoint.FoldInit)
	if s == nil {
		return h
	}
	return checkpoint.FoldBytes(h, []byte(s.Format()))
}
