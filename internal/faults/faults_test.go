package faults

import (
	"reflect"
	"strings"
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
)

const sampleText = `
# one of every kind
linkdown  sw=1 port=2 at=100us dur=50us
linkup    sw=1 port=2 at=200us
degrade   sw=0 port=1 at=50us rate=0.01 dur=1ms
burst     sw=0 port=3 at=10us dur=5us rate=0.5
reboot    sw=2 at=1ms dur=100us drain=keep
hostpause host=4 at=20us dur=10us
`

func TestParseSample(t *testing.T) {
	s, err := ParseSchedule(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(s.Events))
	}
	want := Event{Kind: LinkDown, Switch: 1, Port: 2,
		At: sim.Time(100 * sim.Microsecond), Dur: 50 * sim.Microsecond}
	if s.Events[0] != want {
		t.Fatalf("event 0 = %+v, want %+v", s.Events[0], want)
	}
	if s.Events[4].Drain != DrainKeep {
		t.Fatalf("reboot drain = %v, want keep", s.Events[4].Drain)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	s, err := ParseSchedule(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	text := s.Format()
	s2, err := ParseSchedule(text)
	if err != nil {
		t.Fatalf("canonical form did not reparse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip changed the schedule:\n%+v\n%+v", s, s2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"unknown kind", "explode sw=1 port=2 at=1us"},
		{"missing key", "linkdown sw=1 at=1us"},
		{"duplicate key", "linkup sw=1 sw=2 port=0 at=1us"},
		{"inapplicable key", "linkup sw=1 port=0 at=1us rate=0.5"},
		{"malformed field", "linkup sw=1 port at=1us"},
		{"negative id", "linkup sw=-1 port=0 at=1us"},
		{"bad unit", "linkup sw=1 port=0 at=1parsec"},
		{"negative time", "linkup sw=1 port=0 at=-5us"},
		{"huge time", "linkup sw=1 port=0 at=999999999999s"},
		{"rate above one", "degrade sw=1 port=0 at=1us rate=1.5"},
		{"rate NaN", "degrade sw=1 port=0 at=1us rate=NaN"},
		{"zero rate", "degrade sw=1 port=0 at=1us rate=0"},
		{"zero burst dur", "burst sw=1 port=0 at=1us dur=0us rate=0.5"},
		{"bad drain", "reboot sw=1 at=1us dur=1us drain=maybe"},
	}
	for _, c := range cases {
		if _, err := ParseSchedule(c.in); err == nil {
			t.Errorf("%s: %q parsed without error", c.name, c.in)
		}
	}
}

func TestValidateBounds(t *testing.T) {
	tp := topo.SmallLeafSpine().Build() // 8 hosts, 4 switches
	good, err := ParseSchedule("linkdown sw=3 port=0 at=1us\nhostpause host=7 at=1us dur=1us")
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(tp); err != nil {
		t.Fatalf("in-range schedule rejected: %v", err)
	}
	bad := []string{
		"linkdown sw=4 port=0 at=1us",  // switch out of range
		"linkdown sw=0 port=99 at=1us", // port out of range
		"reboot sw=9 at=1us dur=1us",
		"hostpause host=8 at=1us dur=1us",
	}
	for _, text := range bad {
		s, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("%q: parse: %v", text, err)
		}
		if err := s.Validate(tp); err == nil {
			t.Errorf("%q: validated against an 8-host topology", text)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tp := topo.SmallLeafSpine().Build()
	cfg := Intensity(3, 42, 500*sim.Microsecond)
	a, b := Generate(cfg, tp), Generate(cfg, tp)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("intensity 3 generated no events")
	}
	if err := a.Validate(tp); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatal("generated schedule not sorted by time")
		}
	}
	cfg.Seed = 43
	if c := Generate(cfg, tp); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if n := len(Generate(Intensity(0, 1, sim.Millisecond), tp).Events); n != 0 {
		t.Fatalf("intensity 0 generated %d events, want 0", n)
	}
}

// TestInstallTiming installs a schedule on a real fabric and probes the
// fault state before, during, and after each window.
func TestInstallTiming(t *testing.T) {
	tp := topo.SmallLeafSpine().Build()
	eng := sim.NewEngine(1)
	fab := netsim.New(eng, tp, netsim.Config{})
	text := `
linkdown sw=0 port=0 at=10us dur=20us
linkdown sw=2 port=1 at=15us
linkup   sw=2 port=1 at=40us
reboot   sw=3 at=50us dur=10us
hostpause host=5 at=70us dur=5us
`
	s, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tp); err != nil {
		t.Fatal(err)
	}
	Install(fab, s)

	us := func(x int64) sim.Time { return sim.Time(x) * sim.Time(sim.Microsecond) }
	expect := func(at sim.Time, fn func() bool, desc string) {
		eng.Schedule(at, func() {
			if !fn() {
				t.Errorf("at %v: %s", at, desc)
			}
		})
	}
	// sw=0 port=0 is a ToR downlink: both the switch port and the peer
	// host's NIC flap together.
	expect(us(9), func() bool { return !fab.LinkDown(0, 0) && !fab.HostDown(0) }, "link up before flap")
	expect(us(11), func() bool { return fab.LinkDown(0, 0) && fab.HostDown(0) }, "link down during flap")
	expect(us(31), func() bool { return !fab.LinkDown(0, 0) && !fab.HostDown(0) }, "link restored after flap")
	// sw=2 port=1 is a spine→leaf link: both directions down until linkup.
	expect(us(20), func() bool { return fab.LinkDown(2, 1) && fab.LinkDown(1, 4) }, "core link down both directions")
	expect(us(41), func() bool { return !fab.LinkDown(2, 1) && !fab.LinkDown(1, 4) }, "core link up both directions")
	// Reboot downs every port of sw=3.
	expect(us(55), func() bool { return fab.LinkDown(3, 0) && fab.LinkDown(3, 1) }, "rebooting switch ports down")
	expect(us(61), func() bool { return !fab.LinkDown(3, 0) }, "switch restored")
	expect(us(72), func() bool { return fab.HostDown(5) }, "host paused")
	expect(us(76), func() bool { return !fab.HostDown(5) }, "host resumed")
	eng.RunAll()
}

func TestFormatAllKindsParse(t *testing.T) {
	// Every generated schedule must serialize and reparse.
	tp := topo.SmallLeafSpine().Build()
	s := Generate(Intensity(3, 7, sim.Millisecond), tp)
	s2, err := ParseSchedule(s.Format())
	if err != nil {
		t.Fatalf("generated schedule did not reparse: %v\n%s", err, s.Format())
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatal("generated schedule round trip mismatch")
	}
	if !strings.Contains(s.Format(), "reboot") {
		t.Fatal("intensity 3 has no reboot")
	}
}
