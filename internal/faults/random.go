package faults

import (
	"math/rand"

	"dcpim/internal/sim"
	"dcpim/internal/topo"
)

// GenConfig parameterizes Generate: how many faults of each type to place
// on a topology, and how severe. The zero value yields an empty schedule;
// the Intensity helper fills in the resilience-grid presets.
type GenConfig struct {
	Seed    int64
	Horizon sim.Duration // faults start within [0.1, 0.6] of this

	Flaps   int // LinkDown with auto-restore
	FlapDur sim.Duration

	Degrades    int // LinkDegrade healed after DegradeDur
	DegradeRate float64
	DegradeDur  sim.Duration

	Bursts    int // LossBurst
	BurstDur  sim.Duration
	BurstRate float64

	Reboots   int // SwitchReboot, buffers dropped
	RebootDur sim.Duration

	Pauses   int // HostPause
	PauseDur sim.Duration
}

// Generate builds a random fault schedule from its own seeded source, so
// the result depends only on (cfg, topology) — hermetic across runs and
// across RunMany workers. Events are sorted by start time.
func Generate(cfg GenConfig, t *topo.Topology) *Schedule {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{}
	at := func() sim.Time {
		lo := cfg.Horizon / 10
		return sim.Time(lo + sim.Duration(rng.Int63n(int64(cfg.Horizon/2)+1)))
	}
	// pickLink returns a random (switch, port) transmit side.
	pickLink := func() (int, int) {
		sw := rng.Intn(len(t.Switches))
		return sw, rng.Intn(len(t.Switches[sw].Ports))
	}
	for i := 0; i < cfg.Flaps; i++ {
		sw, pt := pickLink()
		s.Events = append(s.Events, Event{
			Kind: LinkDown, At: at(), Dur: cfg.FlapDur, Switch: sw, Port: pt,
		})
	}
	for i := 0; i < cfg.Degrades; i++ {
		sw, pt := pickLink()
		s.Events = append(s.Events, Event{
			Kind: LinkDegrade, At: at(), Dur: cfg.DegradeDur,
			Switch: sw, Port: pt, Rate: cfg.DegradeRate,
		})
	}
	for i := 0; i < cfg.Bursts; i++ {
		sw, pt := pickLink()
		s.Events = append(s.Events, Event{
			Kind: LossBurst, At: at(), Dur: cfg.BurstDur,
			Switch: sw, Port: pt, Rate: cfg.BurstRate,
		})
	}
	for i := 0; i < cfg.Reboots; i++ {
		s.Events = append(s.Events, Event{
			Kind: SwitchReboot, At: at(), Dur: cfg.RebootDur,
			Switch: rng.Intn(len(t.Switches)), Drain: DrainDrop,
		})
	}
	for i := 0; i < cfg.Pauses; i++ {
		s.Events = append(s.Events, Event{
			Kind: HostPause, At: at(), Dur: cfg.PauseDur,
			Host: rng.Intn(t.NumHosts),
		})
	}
	s.Sort()
	return s
}

// Intensity returns the resilience-grid presets used by the `-run faults`
// experiment: level 0 is fault-free, and each level up adds harsher
// structured failures (flaps → bursts and degrades → a ToR reboot plus
// host pauses). Durations scale with the horizon so a scaled-down smoke
// run still exercises every event.
func Intensity(level int, seed int64, horizon sim.Duration) GenConfig {
	cfg := GenConfig{
		Seed:        seed,
		Horizon:     horizon,
		FlapDur:     horizon / 20,
		DegradeRate: 0.02,
		DegradeDur:  horizon / 4,
		BurstDur:    horizon / 50,
		BurstRate:   0.5,
		RebootDur:   horizon / 20,
		PauseDur:    horizon / 30,
	}
	if level >= 1 {
		cfg.Flaps = 2
	}
	if level >= 2 {
		cfg.Bursts = 2
		cfg.Degrades = 2
	}
	if level >= 3 {
		cfg.Flaps = 4
		cfg.Reboots = 1
		cfg.Pauses = 2
	}
	return cfg
}
