// Package faults provides deterministic, scripted fault injection for the
// netsim fabric. A Schedule is a timeline of typed events — link flaps,
// degraded links, loss bursts, switch reboots, host pauses — installed
// as ordinary timers on the engines owning the affected devices, so a
// faulted run is exactly as hermetic and reproducible as a clean one:
// byte-identical under experiments.RunMany at any worker count and at
// any fabric shard count.
//
// Schedules come from three places: literal Go values (tests), the text
// format parsed by ParseSchedule (experiment scripts), and the seeded
// Generate (resilience grids parameterized by intensity).
package faults

import (
	"fmt"
	"sort"

	"dcpim/internal/netsim"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
)

// Kind identifies a fault event type.
type Kind uint8

const (
	// LinkDown takes both directions of a link dark at At. Queued packets
	// stay buffered; transmitters halt. With Dur > 0 the link restores
	// itself at At+Dur, otherwise it stays down until a matching LinkUp.
	LinkDown Kind = iota
	// LinkUp restores a downed link at At.
	LinkUp
	// LinkDegrade sets a persistent per-packet loss probability Rate on
	// both directions at At (failing optics). Dur > 0 heals the link at
	// At+Dur; Dur == 0 degrades it for the rest of the run.
	LinkDegrade
	// LossBurst drops packets with probability Rate on both directions
	// during [At, At+Dur) — a transient event (microwave fade, FEC storm).
	LossBurst
	// SwitchReboot takes every port of a switch down and discards
	// arrivals during [At, At+Dur). Drain selects what happens to the
	// buffered packets.
	SwitchReboot
	// HostPause halts a host's NIC transmitter during [At, At+Dur) — an
	// OS stall or VM migration blackout. Inbound delivery still works.
	HostPause
)

var kindNames = [...]string{
	"linkdown", "linkup", "degrade", "burst", "reboot", "hostpause",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// DrainPolicy selects what a rebooting switch does with buffered packets.
type DrainPolicy uint8

const (
	// DrainDrop flushes the buffers; the packets count as FaultDrops
	// (cold reboot — the usual case).
	DrainDrop DrainPolicy = iota
	// DrainKeep preserves the buffers across the reboot (warm
	// control-plane restart); they resume draining on restore.
	DrainKeep
)

func (d DrainPolicy) String() string {
	if d == DrainKeep {
		return "keep"
	}
	return "drop"
}

// Event is one fault on the timeline. Link events name the transmit side
// (Switch, Port) of a full-duplex link; the installer applies them to
// both directions, resolving the reverse side through the topology.
// Events apply in timeline order; overlapping events touching the same
// element resolve last-writer-wins.
type Event struct {
	Kind   Kind
	At     sim.Time
	Dur    sim.Duration // see each Kind for whether it is required
	Switch int          // link and reboot events
	Port   int          // link events
	Host   int          // HostPause
	Rate   float64      // LinkDegrade, LossBurst: drop probability in [0, 1]
	Drain  DrainPolicy  // SwitchReboot
}

// Schedule is an ordered fault timeline.
type Schedule struct {
	Events []Event
}

// Sort orders events by time, preserving input order for ties.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].At < s.Events[j].At
	})
}

// needsDur reports whether the kind requires a positive duration.
func (k Kind) needsDur() bool {
	return k == LossBurst || k == SwitchReboot || k == HostPause
}

// check validates an event's internal invariants (no topology needed).
func (ev *Event) check(i int) error {
	if int(ev.Kind) >= len(kindNames) {
		return fmt.Errorf("event %d: unknown kind %d", i, ev.Kind)
	}
	if ev.At < 0 {
		return fmt.Errorf("event %d (%s): negative time %v", i, ev.Kind, ev.At)
	}
	if ev.Dur < 0 {
		return fmt.Errorf("event %d (%s): negative duration %v", i, ev.Kind, ev.Dur)
	}
	if ev.Kind.needsDur() && ev.Dur == 0 {
		return fmt.Errorf("event %d (%s): duration required", i, ev.Kind)
	}
	if ev.Rate < 0 || ev.Rate > 1 {
		return fmt.Errorf("event %d (%s): rate %v outside [0, 1]", i, ev.Kind, ev.Rate)
	}
	if (ev.Kind == LinkDegrade || ev.Kind == LossBurst) && ev.Rate == 0 {
		return fmt.Errorf("event %d (%s): rate required", i, ev.Kind)
	}
	if ev.Switch < 0 || ev.Port < 0 || ev.Host < 0 {
		return fmt.Errorf("event %d (%s): negative element id", i, ev.Kind)
	}
	return nil
}

// Validate checks every event against the topology: ids in range, times
// and rates well-formed. Install panics on out-of-range ids, so callers
// feeding untrusted schedules must Validate first.
func (s *Schedule) Validate(t *topo.Topology) error {
	for i := range s.Events {
		ev := &s.Events[i]
		if err := ev.check(i); err != nil {
			return err
		}
		switch ev.Kind {
		case LinkDown, LinkUp, LinkDegrade, LossBurst:
			if ev.Switch >= len(t.Switches) {
				return fmt.Errorf("event %d (%s): switch %d outside topology (%d switches)",
					i, ev.Kind, ev.Switch, len(t.Switches))
			}
			if ev.Port >= len(t.Switches[ev.Switch].Ports) {
				return fmt.Errorf("event %d (%s): port %d outside switch %d (%d ports)",
					i, ev.Kind, ev.Port, ev.Switch, len(t.Switches[ev.Switch].Ports))
			}
		case SwitchReboot:
			if ev.Switch >= len(t.Switches) {
				return fmt.Errorf("event %d (%s): switch %d outside topology (%d switches)",
					i, ev.Kind, ev.Switch, len(t.Switches))
			}
		case HostPause:
			if ev.Host >= t.NumHosts {
				return fmt.Errorf("event %d (%s): host %d outside topology (%d hosts)",
					i, ev.Kind, ev.Host, t.NumHosts)
			}
		}
	}
	return nil
}

// end returns the time of the event's restore action, if it has one.
func (ev *Event) end() (sim.Time, bool) {
	switch ev.Kind {
	case LinkDown, LinkDegrade:
		if ev.Dur > 0 {
			return ev.At.Add(ev.Dur), true
		}
	case SwitchReboot, HostPause:
		return ev.At.Add(ev.Dur), true
	}
	return 0, false
}

// Install schedules the fault timeline onto the fabric. Must be called
// before the clock passes the earliest event (normally before the run
// starts); the schedule must outlive the run and not be mutated after.
//
// Each fault action mutates one device, and devices belong to shards, so
// the installer schedules every action on the engine that owns the
// affected device: a link event becomes two timers — the named transmit
// side on its switch's engine, the reverse side on the peer's — which on
// a sharded fabric may be different engines. Both fire at the same
// simulation instant, and the two sides of a link never race (each timer
// touches only its own side), so faulted runs stay byte-identical at
// every shard count.
func Install(fab *netsim.Fabric, s *Schedule) {
	for i := range s.Events {
		ev := &s.Events[i]
		installSide(fab, ev, sideNamed)
		switch ev.Kind {
		case LinkDown, LinkUp, LinkDegrade, LossBurst:
			installSide(fab, ev, sideReverse)
		}
	}
}

// Sides of a link event, carried in the timer's int payload.
const (
	sideNamed   = 0 // the (Switch, Port) transmit side the event names
	sideReverse = 1 // the opposite direction, resolved via the topology
)

// installSide schedules one side's start (and restore, if any) timers on
// the engine owning that side's device.
func installSide(fab *netsim.Fabric, ev *Event, side int) {
	eng := sideEngine(fab, ev, side)
	eng.ScheduleFunc(ev.At, applyStart, fab, ev, side)
	if end, ok := ev.end(); ok {
		eng.ScheduleFunc(end, applyEnd, fab, ev, side)
	}
}

// sideEngine returns the engine owning the device a side's action mutates.
func sideEngine(fab *netsim.Fabric, ev *Event, side int) *sim.Engine {
	switch ev.Kind {
	case SwitchReboot:
		return fab.SwitchEngine(ev.Switch)
	case HostPause:
		return fab.HostEngine(ev.Host)
	}
	if side == sideNamed {
		return fab.SwitchEngine(ev.Switch)
	}
	spec := fab.Topology().Switches[ev.Switch].Ports[ev.Port]
	if spec.ToHost {
		return fab.HostEngine(spec.Peer)
	}
	return fab.SwitchEngine(spec.Peer)
}

// setLinkDown applies down state to one direction of the link whose
// transmit side is (Switch, Port).
func setLinkDown(fab *netsim.Fabric, ev *Event, side int, down bool) {
	if side == sideNamed {
		fab.SetLinkDown(ev.Switch, ev.Port, down)
		return
	}
	spec := fab.Topology().Switches[ev.Switch].Ports[ev.Port]
	if spec.ToHost {
		fab.SetHostDown(spec.Peer, down)
	} else {
		fab.SetLinkDown(spec.Peer, spec.PeerPort, down)
	}
}

// setLinkLoss applies a persistent loss rate to one direction.
func setLinkLoss(fab *netsim.Fabric, ev *Event, side int, rate float64) {
	if side == sideNamed {
		fab.SetLinkLossRate(ev.Switch, ev.Port, rate)
		return
	}
	spec := fab.Topology().Switches[ev.Switch].Ports[ev.Port]
	if spec.ToHost {
		fab.SetHostLossRate(spec.Peer, rate)
	} else {
		fab.SetLinkLossRate(spec.Peer, spec.PeerPort, rate)
	}
}

// applyStart fires at Event.At on the owning shard's engine; side selects
// which direction of a link event this timer applies.
func applyStart(a, b any, side int) {
	fab, ev := a.(*netsim.Fabric), b.(*Event)
	switch ev.Kind {
	case LinkDown:
		setLinkDown(fab, ev, side, true)
	case LinkUp:
		setLinkDown(fab, ev, side, false)
	case LinkDegrade:
		setLinkLoss(fab, ev, side, ev.Rate)
	case LossBurst:
		until := ev.At.Add(ev.Dur)
		if side == sideNamed {
			fab.SetLossBurst(ev.Switch, ev.Port, until, ev.Rate)
			return
		}
		spec := fab.Topology().Switches[ev.Switch].Ports[ev.Port]
		if spec.ToHost {
			fab.SetHostLossBurst(spec.Peer, until, ev.Rate)
		} else {
			fab.SetLossBurst(spec.Peer, spec.PeerPort, until, ev.Rate)
		}
	case SwitchReboot:
		fab.RebootSwitch(ev.Switch, ev.Drain == DrainDrop)
	case HostPause:
		fab.SetHostDown(ev.Host, true)
	}
}

// applyEnd fires at the event's restore time (see Event.end).
func applyEnd(a, b any, side int) {
	fab, ev := a.(*netsim.Fabric), b.(*Event)
	switch ev.Kind {
	case LinkDown:
		setLinkDown(fab, ev, side, false)
	case LinkDegrade:
		setLinkLoss(fab, ev, side, 0)
	case SwitchReboot:
		fab.RestoreSwitch(ev.Switch)
	case HostPause:
		fab.SetHostDown(ev.Host, false)
	}
}
