package faults

import (
	"reflect"
	"testing"

	"dcpim/internal/topo"
)

// FuzzScheduleParse asserts the text parser never panics, never yields an
// event violating the internal invariants (negative times or ids, rates
// outside [0, 1]), never lets Validate pass an out-of-range link id, and
// that the canonical Format of anything it accepts reparses to an equal
// schedule.
func FuzzScheduleParse(f *testing.F) {
	seeds := []string{
		sampleText,
		"linkdown sw=1 port=2 at=100us",
		"linkdown sw=1 port=2 at=100us dur=50us\nlinkup sw=1 port=2 at=1ms",
		"degrade sw=0 port=1 at=50us rate=0.01",
		"burst sw=0 port=3 at=10us dur=5us rate=0.5",
		"reboot sw=2 at=1ms dur=100us drain=drop",
		"hostpause host=4 at=20us dur=10us",
		"# comment only\n\n",
		"linkup sw=0 port=0 at=0ps",
		"linkup sw=0 port=0 at=1.5us",
		"linkup sw=0 port=0 at=9007199254740992ps",
		"degrade sw=0 port=0 at=1us rate=1e-3",
		"degrade sw=0 port=0 at=1us rate=0x1p-2",
		"linkdown sw=1048576 port=0 at=1us",
		"linkup sw=1 port=0 at=1parsec",
		"reboot sw=1 at=1us dur=1us drain=keep extra=1",
		"hostpause host=+4 at=2e3us dur=10us",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tp := topo.SmallLeafSpine().Build()
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSchedule(text)
		if err != nil {
			return
		}
		for i := range s.Events {
			ev := &s.Events[i]
			if ev.At < 0 || ev.Dur < 0 {
				t.Fatalf("event %d: negative time: %+v", i, ev)
			}
			if ev.Rate < 0 || ev.Rate > 1 || ev.Rate != ev.Rate {
				t.Fatalf("event %d: rate out of range: %+v", i, ev)
			}
			if ev.Switch < 0 || ev.Port < 0 || ev.Host < 0 {
				t.Fatalf("event %d: negative element id: %+v", i, ev)
			}
		}
		if s.Validate(tp) == nil {
			for i := range s.Events {
				ev := &s.Events[i]
				if ev.Switch >= len(tp.Switches) || ev.Host >= tp.NumHosts {
					t.Fatalf("event %d: Validate passed an out-of-range id: %+v", i, ev)
				}
			}
		}
		canon := s.Format()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form did not reparse: %v\n%q", err, canon)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("canonical round trip changed the schedule:\nin:  %+v\nout: %+v", s, s2)
		}
	})
}
