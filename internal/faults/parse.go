package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dcpim/internal/sim"
)

// Text format: one event per line, `kind key=value ...`. Blank lines and
// `#` comments are ignored. Times take a unit suffix (ps, ns, us, ms, s);
// the canonical form written by Format uses integer picoseconds so a
// formatted schedule reparses exactly.
//
//	linkdown  sw=1 port=2 at=100us [dur=50us]
//	linkup    sw=1 port=2 at=200us
//	degrade   sw=1 port=2 at=50us rate=0.01 [dur=1ms]
//	burst     sw=0 port=3 at=10us dur=5us rate=0.5
//	reboot    sw=2 at=1ms dur=100us [drain=drop|keep]
//	hostpause host=4 at=20us dur=10us

// kindByName maps format keywords to kinds.
var kindByName = map[string]Kind{
	"linkdown": LinkDown, "linkup": LinkUp, "degrade": LinkDegrade,
	"burst": LossBurst, "reboot": SwitchReboot, "hostpause": HostPause,
}

// maxElementID bounds parsed switch/port/host ids; real topologies are
// orders of magnitude smaller, and the bound keeps hostile input from
// smuggling huge ids past Validate-less callers.
const maxElementID = 1 << 20

// allowedKeys lists the keys each kind accepts; anything else is an
// error, which keeps Format(Parse(x)) a lossless round trip.
var allowedKeys = map[Kind]string{
	LinkDown:     "sw port at dur",
	LinkUp:       "sw port at",
	LinkDegrade:  "sw port at rate dur",
	LossBurst:    "sw port at dur rate",
	SwitchReboot: "sw at dur drain",
	HostPause:    "host at dur",
}

// ParseSchedule parses the text format. Every returned event satisfies
// the internal invariants (non-negative times and ids, rates in [0, 1]);
// topology bounds still require Schedule.Validate.
func ParseSchedule(text string) (*Schedule, error) {
	s := &Schedule{}
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		ev, err := parseEvent(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if err := ev.check(len(s.Events)); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

func parseEvent(fields []string) (Event, error) {
	var ev Event
	kind, ok := kindByName[fields[0]]
	if !ok {
		return ev, fmt.Errorf("unknown event kind %q", fields[0])
	}
	ev.Kind = kind
	seen := map[string]bool{}
	for _, kv := range fields[1:] {
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 {
			return ev, fmt.Errorf("malformed field %q (want key=value)", kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		if seen[key] {
			return ev, fmt.Errorf("duplicate key %q", key)
		}
		if !strings.Contains(" "+allowedKeys[kind]+" ", " "+key+" ") {
			return ev, fmt.Errorf("%s: key %q not applicable", kind, key)
		}
		seen[key] = true
		var err error
		switch key {
		case "sw":
			ev.Switch, err = parseID(val)
		case "port":
			ev.Port, err = parseID(val)
		case "host":
			ev.Host, err = parseID(val)
		case "at":
			var d sim.Duration
			d, err = parseDur(val)
			ev.At = sim.Time(d)
		case "dur":
			ev.Dur, err = parseDur(val)
		case "rate":
			ev.Rate, err = parseRate(val)
		case "drain":
			switch val {
			case "drop":
				ev.Drain = DrainDrop
			case "keep":
				ev.Drain = DrainKeep
			default:
				err = fmt.Errorf("drain policy %q (want drop or keep)", val)
			}
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return ev, err
		}
	}
	// Required keys per kind; every kind needs a time.
	need := func(keys ...string) error {
		for _, k := range keys {
			if !seen[k] {
				return fmt.Errorf("%s: missing key %q", ev.Kind, k)
			}
		}
		return nil
	}
	switch kind {
	case LinkDown, LinkUp:
		return ev, need("sw", "port", "at")
	case LinkDegrade:
		return ev, need("sw", "port", "at", "rate")
	case LossBurst:
		return ev, need("sw", "port", "at", "dur", "rate")
	case SwitchReboot:
		return ev, need("sw", "at", "dur")
	default: // HostPause
		return ev, need("host", "at", "dur")
	}
}

func parseID(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("id %q: %v", v, err)
	}
	if n < 0 || n > maxElementID {
		return 0, fmt.Errorf("id %d outside [0, %d]", n, maxElementID)
	}
	return n, nil
}

// durUnits scales a unit suffix to picoseconds.
var durUnits = map[string]float64{
	"ps": 1, "ns": 1e3, "us": 1e6, "µs": 1e6, "ms": 1e9, "s": 1e12,
}

// maxDurPs keeps scaled times inside the exactly-representable float64
// integer range (2^53 ps ≈ 2.5 simulated hours, far beyond any run), so
// the canonical integer-picosecond form round-trips losslessly.
const maxDurPs = 1 << 53

func parseDur(v string) (sim.Duration, error) {
	i := 0
	for i < len(v) && (v[i] == '.' || (v[i] >= '0' && v[i] <= '9')) {
		i++
	}
	mant, unit := v[:i], v[i:]
	scale, ok := durUnits[unit]
	if !ok {
		return 0, fmt.Errorf("time %q: unknown unit %q (want ps/ns/us/ms/s)", v, unit)
	}
	x, err := strconv.ParseFloat(mant, 64)
	if err != nil {
		return 0, fmt.Errorf("time %q: %v", v, err)
	}
	ps := x * scale
	if math.IsNaN(ps) || ps < 0 || ps > maxDurPs {
		return 0, fmt.Errorf("time %q outside [0, 1h]", v)
	}
	return sim.Duration(ps + 0.5), nil
}

func parseRate(v string) (float64, error) {
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("rate %q: %v", v, err)
	}
	if math.IsNaN(x) || x < 0 || x > 1 {
		return 0, fmt.Errorf("rate %q outside [0, 1]", v)
	}
	return x, nil
}

// Format renders the schedule in the canonical text form: integer
// picosecond times, one event per line, reparsing to an equal schedule.
func (s *Schedule) Format() string {
	var b strings.Builder
	for i := range s.Events {
		ev := &s.Events[i]
		switch ev.Kind {
		case LinkDown, LinkUp:
			fmt.Fprintf(&b, "%s sw=%d port=%d at=%dps", ev.Kind, ev.Switch, ev.Port, int64(ev.At))
			if ev.Kind == LinkDown && ev.Dur > 0 {
				fmt.Fprintf(&b, " dur=%dps", int64(ev.Dur))
			}
		case LinkDegrade:
			fmt.Fprintf(&b, "%s sw=%d port=%d at=%dps rate=%g", ev.Kind, ev.Switch, ev.Port, int64(ev.At), ev.Rate)
			if ev.Dur > 0 {
				fmt.Fprintf(&b, " dur=%dps", int64(ev.Dur))
			}
		case LossBurst:
			fmt.Fprintf(&b, "%s sw=%d port=%d at=%dps dur=%dps rate=%g",
				ev.Kind, ev.Switch, ev.Port, int64(ev.At), int64(ev.Dur), ev.Rate)
		case SwitchReboot:
			fmt.Fprintf(&b, "%s sw=%d at=%dps dur=%dps drain=%s",
				ev.Kind, ev.Switch, int64(ev.At), int64(ev.Dur), ev.Drain)
		case HostPause:
			fmt.Fprintf(&b, "%s host=%d at=%dps dur=%dps",
				ev.Kind, ev.Host, int64(ev.At), int64(ev.Dur))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
