package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// barrierTrial is everything observable about one group run that the two
// barrier implementations must agree on: per-shard execution order, the
// shared clock, the event total, and the epoch/dispatch/skip counters.
type barrierTrial struct {
	orders     [][]string
	epochs     uint64
	dispatched []uint64
	skipped    []uint64
	events     uint64
	now        Time
	crossings  uint64
	inlined    uint64
}

// runBarrierTrial drives a randomized schedule — initial events, event
// chains scheduled from inside callbacks, and cross-shard scheduling
// between epochs (the staging-drain pattern) — through a group in the
// given barrier mode. Everything is a pure function of (shards, seed):
// epoch windows derive from NextAt, which both modes compute identically,
// so the rng stream stays aligned across modes.
func runBarrierTrial(mode BarrierMode, shards int, seed int64) barrierTrial {
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = NewEngine(int64(100 + i))
	}
	g := NewGroupMode(engines, mode)
	defer g.Close()

	orders := make([][]string, shards)
	var sched func(i int, at Time, tag, chain int)
	sched = func(i int, at Time, tag, chain int) {
		eng := engines[i]
		eng.Schedule(at, func() {
			orders[i] = append(orders[i], fmt.Sprintf("%d/%d", eng.Now(), tag))
			if chain > 0 {
				sched(i, eng.Now().Add(Duration(1+tag%37)), tag+1000, chain-1)
			}
		})
	}

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < shards; i++ {
		for k := 0; k < 30; k++ {
			sched(i, Time(1+rng.Intn(500)), i*10000+k, rng.Intn(3))
		}
	}

	const lookahead = Duration(7)
	for epoch := 0; ; epoch++ {
		at, ok := g.NextAt()
		if !ok {
			break
		}
		g.RunEpoch(at.Add(lookahead - 1))
		// Cross-shard scheduling between epochs, like netsim's staging
		// drain. Bounded so the run terminates.
		if epoch < 200 && rng.Intn(3) == 0 {
			dst := rng.Intn(shards)
			sched(dst, g.Now().Add(Duration(1+rng.Intn(50))), 50000+epoch, 0)
		}
		if epoch > 1_000_000 {
			panic("runaway barrier trial")
		}
	}

	tr := barrierTrial{
		orders:    orders,
		epochs:    g.Epochs(),
		events:    g.Events(),
		now:       g.Now(),
		crossings: g.Crossings(),
		inlined:   g.Inlined(),
	}
	for i := 0; i < shards; i++ {
		tr.dispatched = append(tr.dispatched, g.Dispatched(i))
		tr.skipped = append(tr.skipped, g.Skipped(i))
	}
	return tr
}

// TestGroupBarrierEquivalence is the randomized equivalence property for
// the hybrid barrier: for identical schedules, the hybrid spin-then-park
// barrier (with its inline epoch batching) and the legacy channel barrier
// must produce identical per-shard execution orders, clocks, event totals,
// and epoch/dispatch/skip counters at every shard count.
func TestGroupBarrierEquivalence(t *testing.T) {
	var sawCrossing, sawInline bool
	for _, shards := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 6; trial++ {
			seed := int64(shards*1000 + trial)
			want := runBarrierTrial(BarrierChannel, shards, seed)
			got := runBarrierTrial(BarrierHybrid, shards, seed)

			if got.epochs != want.epochs || got.events != want.events || got.now != want.now {
				t.Fatalf("shards=%d seed=%d: epochs/events/now = %d/%d/%d vs %d/%d/%d",
					shards, seed, got.epochs, got.events, got.now, want.epochs, want.events, want.now)
			}
			for i := 0; i < shards; i++ {
				if got.dispatched[i] != want.dispatched[i] || got.skipped[i] != want.skipped[i] {
					t.Fatalf("shards=%d seed=%d: shard %d dispatched/skipped %d/%d vs %d/%d",
						shards, seed, i, got.dispatched[i], got.skipped[i], want.dispatched[i], want.skipped[i])
				}
				if len(got.orders[i]) != len(want.orders[i]) {
					t.Fatalf("shards=%d seed=%d: shard %d ran %d events, channel ran %d",
						shards, seed, i, len(got.orders[i]), len(want.orders[i]))
				}
				for k := range want.orders[i] {
					if got.orders[i][k] != want.orders[i][k] {
						t.Fatalf("shards=%d seed=%d: shard %d diverges at %d: %s vs %s",
							shards, seed, i, k, got.orders[i][k], want.orders[i][k])
					}
				}
			}
			if got.crossings > 0 {
				sawCrossing = true
			}
			if got.inlined > 0 {
				sawInline = true
			}
			if want.crossings != 0 || want.inlined != 0 {
				t.Fatalf("channel mode reported hybrid counters: crossings=%d inlined=%d",
					want.crossings, want.inlined)
			}
		}
	}
	if !sawCrossing {
		t.Fatal("no trial exercised the multi-shard barrier crossing path")
	}
	if !sawInline {
		t.Fatal("no trial exercised the inline epoch-batching path")
	}
}

// TestGroupBarrierBatching pins the batching contract directly: when at
// most one worker shard ever has pending work, the hybrid barrier must
// run every epoch inline — zero cross-goroutine crossings.
func TestGroupBarrierBatching(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2), NewEngine(3)}
	g := NewGroupMode(engines, BarrierHybrid)
	defer g.Close()

	// Per-shard counters: shards may run on different goroutines, so no
	// event callback shares state across shards.
	var ran [3]int
	for i := 0; i < 100; i++ {
		engines[2].Schedule(Time(10*i+5), func() { ran[2]++ })
	}
	for {
		at, ok := g.NextAt()
		if !ok {
			break
		}
		g.RunEpoch(at.Add(3))
	}
	if ran[2] != 100 {
		t.Fatalf("ran %d of 100 events", ran[2])
	}
	if g.Crossings() != 0 {
		t.Fatalf("singleton-busy windows paid %d barrier crossings, want 0", g.Crossings())
	}
	if g.Inlined() == 0 {
		t.Fatal("no epochs were batched inline")
	}
	// A window with two busy worker shards must cross the barrier.
	engines[1].Schedule(g.Now().Add(5), func() { ran[1]++ })
	engines[2].Schedule(g.Now().Add(5), func() { ran[2]++ })
	g.RunEpoch(g.Now().Add(10))
	if g.Crossings() != 1 {
		t.Fatalf("two-busy window crossings = %d, want 1", g.Crossings())
	}
	if ran[1] != 1 || ran[2] != 101 {
		t.Fatalf("crossing epoch ran %d/%d events, want 1/101", ran[1], ran[2])
	}
}
