package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// queueRecorder drives one engine through a scripted schedule and records
// the execution order as "at/tag" strings.
type queueRecorder struct {
	eng   *Engine
	order []string
}

func (r *queueRecorder) log(tag int) {
	r.order = append(r.order, fmt.Sprintf("%d/%d", r.eng.Now(), tag))
}

// op is one step of a randomized schedule: either a new event (band 0 via
// Schedule/AfterFunc, band 1 via ScheduleArrival) or the cancellation of
// an earlier band-0 event.
type queueOp struct {
	cancel  bool
	victim  int // index into the timer list when cancel
	arrival bool
	delay   Duration
	key     uint64
	tag     int
}

// runSchedule replays ops on an engine with the given discipline,
// interleaving execution (Step bursts) with scheduling so the drain front
// moves while inserts keep landing across all ladder tiers.
func runSchedule(disc QueueDiscipline, ops []queueOp, steps []int) []string {
	r := &queueRecorder{eng: NewEngineQueue(7, disc)}
	var timers []Timer
	si := 0
	for i, o := range ops {
		switch {
		case o.cancel:
			if len(timers) > 0 {
				timers[o.victim%len(timers)].Cancel()
			}
		case o.arrival:
			r.eng.ScheduleArrival(r.eng.Now().Add(o.delay), o.key,
				func(a, b any, i int) { a.(*queueRecorder).log(i) }, r, nil, o.tag)
		default:
			tag := o.tag
			timers = append(timers, r.eng.After(o.delay, func() { r.log(tag) }))
		}
		if si < len(steps) && steps[si] == i {
			si++
			for k := 0; k < 3; k++ {
				r.eng.Step()
			}
		}
	}
	r.eng.RunAll()
	return r.order
}

// TestQueueDisciplineEquivalence is the property test behind the ladder
// queue's correctness claim: identical randomized schedules — including
// cancellations, same-instant ties in both bands, near events, far-future
// overflow events, and dense same-bucket bursts — executed through the
// 4-ary heap and the ladder queue produce the identical execution order.
func TestQueueDisciplineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 200 + rng.Intn(800)
		ops := make([]queueOp, n)
		arrKeys := map[uint64]bool{}
		for i := range ops {
			o := &ops[i]
			o.tag = i
			switch rng.Intn(10) {
			case 0: // cancellation of a random earlier band-0 timer
				o.cancel = true
				o.victim = rng.Intn(1 << 20)
			case 1, 2: // band-1 arrival with a unique identity key
				o.arrival = true
				for {
					o.key = uint64(rng.Intn(1 << 30))
					if !arrKeys[o.key] {
						arrKeys[o.key] = true
						break
					}
				}
				o.delay = Duration(rng.Intn(2000))
			default:
				// Delay mix spanning every ladder tier: 0 forces same-instant
				// FIFO ties, small lands in active/near buckets, huge lands in
				// the upper rungs (the largest tier crosses several geometric
				// rung spans), and the modulo clustering packs bucket bursts.
				switch rng.Intn(5) {
				case 0:
					o.delay = 0
				case 1:
					o.delay = Duration(rng.Intn(64))
				case 2:
					o.delay = Duration(rng.Intn(100_000))
				case 3:
					o.delay = Duration(1_000_000 + rng.Intn(10_000_000))
				default:
					o.delay = Duration(100_000_000 + rng.Int63n(100_000_000_000))
				}
			}
		}
		// Step bursts at random points so scheduling interleaves with
		// execution (events land behind, at, and ahead of the drain front).
		var steps []int
		for i := 0; i < n; i += 1 + rng.Intn(20) {
			steps = append(steps, i)
		}

		want := runSchedule(QueueHeap, ops, steps)
		got := runSchedule(QueueLadder, ops, steps)
		if len(want) != len(got) {
			t.Fatalf("trial %d: heap ran %d events, ladder %d", trial, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: execution order diverges at event %d: heap %s, ladder %s",
					trial, i, want[i], got[i])
			}
		}
	}
}

// TestLadderUpperRungs exercises the far-future tier that replaced the
// overflow slice: pushes spanning many decades of future time must grow
// geometrically coarser upper rungs (never one linear slice), and the
// drain must return everything in (at, seq) order.
func TestLadderUpperRungs(t *testing.T) {
	for _, count := range []int{128, 4096} {
		e := NewEngineQueue(1, QueueLadder)
		rng := rand.New(rand.NewSource(int64(count)))
		for i := 0; i < count; i++ {
			// Exponentially distributed horizons: every push decade from
			// ~1 µs to ~100 s of simulated time, so coverage needs several
			// ×ladBuckets rung spans.
			at := Time(1_000_000) << rng.Intn(24)
			at += Time(rng.Intn(1_000_000))
			e.Schedule(at, func() {})
		}
		lad := e.lad
		if lad == nil {
			t.Fatal("ladder discipline not active")
		}
		if len(lad.segs) < 2 {
			t.Fatalf("count %d: want multiple upper rungs, got %d", count, len(lad.segs))
		}
		// Rung spans must tile the future contiguously and widen toward
		// the tail (the geometric growth that bounds the rung count).
		for i := 1; i < len(lad.segs); i++ {
			prev, s := lad.segs[i-1], lad.segs[i]
			if s.start != prev.limit {
				t.Fatalf("count %d: rung %d starts at %d, previous limit %d", count, i, s.start, prev.limit)
			}
			if s.width < prev.width {
				t.Fatalf("count %d: rung %d width %d narrower than rung %d width %d",
					count, i, s.width, i-1, prev.width)
			}
		}
		var got []Time
		for e.Step() {
			got = append(got, e.Now())
		}
		if len(got) != count {
			t.Fatalf("count %d: ran %d events", count, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("count %d: out of order at %d: %d after %d", count, i, got[i], got[i-1])
			}
		}
	}
}

// TestLadderUpperRungSpawn packs one upper-rung bucket densely enough
// that draining it must spawn a finer child rung (not heapify it whole),
// and checks order plus FIFO ties survive, like TestLadderSpawn does for
// the near tier.
func TestLadderUpperRungSpawn(t *testing.T) {
	e := NewEngineQueue(1, QueueLadder)
	rng := rand.New(rand.NewSource(11))
	// A spacer beyond everything keeps the dense cluster inside one coarse
	// bucket of a wide upper rung.
	e.Schedule(1_000_000_000_000, func() {})
	n := ladSpawnMin * 3
	type stamp struct {
		at  Time
		tag int
	}
	var got []stamp
	for i := 0; i < n; i++ {
		tag := i
		at := Time(600_000_000_000 + rng.Intn(2_000_000))
		e.Schedule(at, func() { got = append(got, stamp{e.Now(), tag}) })
	}
	e.RunAll()
	if len(got) != n {
		t.Fatalf("ran %d of %d events", len(got), n)
	}
	byAt := map[Time]int{}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("out of order at %d", i)
		}
	}
	for _, s := range got {
		if prev, ok := byAt[s.at]; ok && s.tag < prev {
			t.Fatalf("FIFO tie-break violated at t=%d: tag %d after %d", s.at, s.tag, prev)
		}
		byAt[s.at] = s.tag
	}
}

// TestLadderUpperRungCancel cancels timers parked across several upper
// rungs (plus the near tiers) and verifies the survivors run in order
// with the right total — the O(1) swap-delete must work in grown rungs
// exactly as in spawned ones.
func TestLadderUpperRungCancel(t *testing.T) {
	e := NewEngineQueue(1, QueueLadder)
	rng := rand.New(rand.NewSource(13))
	var timers []Timer
	total := 4000
	for i := 0; i < total; i++ {
		at := Time(1_000) << rng.Intn(30)
		tm := e.Schedule(at+Time(rng.Intn(1000)), func() {})
		if i%2 == 0 {
			timers = append(timers, tm)
		}
	}
	if e.lad == nil || len(e.lad.segs) < 2 {
		t.Fatalf("schedule did not populate multiple rungs")
	}
	canceled := 0
	for _, tm := range timers {
		if tm.Active() {
			tm.Cancel()
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no cancellations exercised")
	}
	ran := 0
	last := Time(-1)
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("out of order after cancellations: %d after %d", e.Now(), last)
		}
		last = e.Now()
		ran++
	}
	if ran+canceled != total {
		t.Fatalf("events ran+cancelled = %d, want %d", ran+canceled, total)
	}
}

// TestLadderUpperRungCheckpoint round-trips an engine whose ladder holds
// events across multiple upper rungs through CaptureState/RestoreState:
// the restored engine must execute the identical schedule.
func TestLadderUpperRungCheckpoint(t *testing.T) {
	src := NewEngineQueue(5, QueueLadder)
	rng := rand.New(rand.NewSource(17))
	n := 3000
	for i := 0; i < n; i++ {
		at := Time(1_000) << rng.Intn(28)
		src.Schedule(at+Time(rng.Intn(4096)), func() {})
	}
	// Advance the drain front so the capture sees active, near-rung, and
	// upper-rung events at once.
	for i := 0; i < 200; i++ {
		src.Step()
	}
	if src.lad == nil || len(src.lad.segs) < 2 {
		t.Fatal("capture point does not span multiple rungs")
	}
	st := src.CaptureState()

	var wantOrder, gotOrder []Time
	for src.Step() {
		wantOrder = append(wantOrder, src.Now())
	}
	dst := NewEngineQueue(5, QueueLadder)
	err := dst.RestoreState(st, func(rec EventRecord) (func(), bool) {
		return func() {}, true
	})
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	for dst.Step() {
		gotOrder = append(gotOrder, dst.Now())
	}
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("restored engine ran %d events, source ran %d", len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if wantOrder[i] != gotOrder[i] {
			t.Fatalf("execution diverges at %d: src %d, restored %d", i, wantOrder[i], gotOrder[i])
		}
	}
}

// TestLadderSpawn drives a burst dense enough to trigger rung spawning
// (one bucket holding > ladSpawnMin events) and checks order plus FIFO
// tie-breaks survive the re-bucketing.
func TestLadderSpawn(t *testing.T) {
	e := NewEngineQueue(1, QueueLadder)
	rng := rand.New(rand.NewSource(3))
	n := ladSpawnMin * 4
	type stamp struct {
		at  Time
		tag int
	}
	var got []stamp
	// A far spacer first so the dense burst lands in one coarse bucket of
	// the re-bucketed overflow segment.
	e.Schedule(100_000_000, func() {})
	for i := 0; i < n; i++ {
		tag := i
		at := Time(1_000_000 + rng.Intn(1000))
		e.Schedule(at, func() { got = append(got, stamp{e.Now(), tag}) })
	}
	e.RunAll()
	if len(got) != n {
		t.Fatalf("ran %d of %d events", len(got), n)
	}
	byAt := map[Time]int{}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("out of order at %d", i)
		}
	}
	for _, s := range got {
		if prev, ok := byAt[s.at]; ok && s.tag < prev {
			t.Fatalf("FIFO tie-break violated at t=%d: tag %d after %d", s.at, s.tag, prev)
		}
		byAt[s.at] = s.tag
	}
}

// TestLadderCancel checks O(1) bucket cancellation across tiers: cancel
// events sitting in the active heap, in segment buckets, and in the
// overflow, then verify the survivors run in order.
func TestLadderCancel(t *testing.T) {
	e := NewEngineQueue(1, QueueLadder)
	rng := rand.New(rand.NewSource(9))
	var timers []Timer
	var want []Time
	for i := 0; i < 5000; i++ {
		at := Time(rng.Intn(20_000_000))
		tm := e.Schedule(at, func() {})
		if i%3 == 0 {
			timers = append(timers, tm)
		} else {
			want = append(want, at)
		}
	}
	// Force the drain front forward so cancellations hit the active heap
	// too, then cancel every held timer that has not fired yet.
	for i := 0; i < 100; i++ {
		e.Step()
	}
	canceled := 0
	for _, tm := range timers {
		if tm.Active() {
			tm.Cancel()
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no cancellations exercised")
	}
	rest := 0
	last := Time(-1)
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("out of order after cancellations: %d after %d", e.Now(), last)
		}
		last = e.Now()
		rest++
	}
	if total := 100 + rest + canceled; total != 5000 {
		t.Fatalf("events ran+cancelled = %d, want 5000", total)
	}
}

// TestEngineFreeListCap verifies the free-list bound: after a burst far
// above maxFreeEvents drains, the engine retains at most maxFreeEvents
// recycled events and drops the rest for the GC.
func TestEngineFreeListCap(t *testing.T) {
	old := maxFreeEvents
	maxFreeEvents = 64
	defer func() { maxFreeEvents = old }()

	e := NewEngine(1)
	for i := 0; i < 1000; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunAll()
	if e.freeN > 64 {
		t.Fatalf("free list holds %d events, cap is 64", e.freeN)
	}
	n := 0
	for ev := e.free; ev != nil; ev = ev.next {
		n++
	}
	if n != e.freeN {
		t.Fatalf("free list length %d, counter says %d", n, e.freeN)
	}
}

// TestPickQueue pins the auto-selection contract.
func TestPickQueue(t *testing.T) {
	if got := PickQueue(QueueHeap, 1<<20); got != QueueHeap {
		t.Fatalf("explicit heap overridden to %v", got)
	}
	if got := PickQueue(QueueLadder, 1); got != QueueLadder {
		t.Fatalf("explicit ladder overridden to %v", got)
	}
	if got := PickQueue(QueueAuto, LadderDensityMin-1); got != QueueHeap {
		t.Fatalf("auto below threshold picked %v", got)
	}
	if got := PickQueue(QueueAuto, LadderDensityMin); got != QueueLadder {
		t.Fatalf("auto at threshold picked %v", got)
	}
}
