package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Checkpoint support. Events hold Go closures, which cannot be
// serialized; what CAN be captured exactly is everything that determines
// future execution order and randomness — the clock, the sequence
// allocator, the (time, seq) key of every pending event, and the RNG
// position. CaptureState returns that as plain data; the checkpoint file
// format lives in internal/checkpoint, and the experiment runner
// (experiments.Resume) reconstructs closures by re-running the
// deterministic setup and replaying to the snapshot time, verifying the
// captured state byte-for-byte on arrival. RestoreState covers the other
// direction for callers that CAN rebind callbacks (round-trip tests, and
// any future self-describing event kinds): it rebuilds the queues from a
// captured state, all-or-nothing.

// EventRecord is the execution-order key of one event: its timestamp and
// its full seq word (band bit included, so band-1 arrival keys are
// preserved verbatim).
type EventRecord struct {
	At  Time
	Seq uint64
}

// EngineState is a complete logical snapshot of one engine: everything
// that determines its future behavior, with physical layout (heap array
// order, ladder bucket geometry, free lists) normalized away. Two engines
// with equal EngineStates execute identically from here on.
type EngineState struct {
	Now    Time
	Seq    uint64 // next band-0 sequence number
	Events uint64 // events executed so far
	Draws  uint64 // RNG draws consumed from the seeded source
	Queue  QueueDiscipline
	// Pending holds every queued event in execution order (sorted by
	// (At, Seq)), both bands merged.
	Pending []EventRecord
}

// CaptureState snapshots the engine. Pure reads: the queues are walked
// without popping (the ladder's drain front is not advanced), so capture
// at a barrier never perturbs the run — the property that lets periodic
// checkpointing coexist with byte-identity goldens.
func (e *Engine) CaptureState() EngineState {
	st := EngineState{
		Now:    e.now,
		Seq:    e.seq,
		Events: e.nEvent,
		Draws:  e.src.Draws(),
		Queue:  e.Queue(),
	}
	st.Pending = make([]EventRecord, 0, e.Pending())
	add := func(evs []*event) {
		for _, t := range evs {
			st.Pending = append(st.Pending, EventRecord{At: t.at, Seq: t.seq})
		}
	}
	add(e.q)
	add(e.qa)
	if l := e.lad; l != nil {
		add(l.active)
		for _, s := range l.segs {
			for b := s.cur; b < ladBuckets; b++ {
				add(s.buckets[b])
			}
		}
	}
	sort.Slice(st.Pending, func(i, j int) bool {
		a, b := st.Pending[i], st.Pending[j]
		return a.At < b.At || (a.At == b.At && a.Seq < b.Seq)
	})
	return st
}

// Draws returns the number of values the engine's RNG has consumed.
func (e *Engine) Draws() uint64 { return e.src.Draws() }

// StartJournal begins recording the (At, Seq) key of every executed
// event. Used by checkpoint bisection to name the first diverging event;
// costs one slice append per event while on, nothing while off.
func (e *Engine) StartJournal() {
	e.journalOn = true
	e.journal = e.journal[:0]
}

// TakeJournal returns the events recorded since StartJournal and resets
// the window (recording stays on).
func (e *Engine) TakeJournal() []EventRecord {
	j := e.journal
	e.journal = nil
	return j
}

// RebindFunc reconstructs the callback for one captured pending event.
// Returning false aborts the restore (the caller cannot rebind that
// event) with the engine untouched.
type RebindFunc func(EventRecord) (func(), bool)

// RestoreState rebuilds the engine from a captured state. All-or-nothing:
// the state is validated and the replacement queues are built in scratch
// storage first, and the engine is only mutated after every step has
// succeeded — a failed restore leaves it exactly as it was (FuzzRestoreState
// asserts this). The restored engine keeps its own queue discipline;
// st.Queue records what the source used but does not constrain the target,
// since both disciplines implement the identical total order.
func (e *Engine) RestoreState(st EngineState, rebind RebindFunc) error {
	// Validate before touching anything.
	var prev EventRecord
	for i, rec := range st.Pending {
		if rec.At < st.Now {
			return fmt.Errorf("sim: restore: pending event %d at %d before clock %d", i, rec.At, st.Now)
		}
		if rec.Seq&arrivalBand == 0 && rec.Seq >= st.Seq {
			return fmt.Errorf("sim: restore: pending event %d seq %d not yet allocated (next seq %d)", i, rec.Seq, st.Seq)
		}
		if i > 0 && !(prev.At < rec.At || (prev.At == rec.At && prev.Seq < rec.Seq)) {
			return fmt.Errorf("sim: restore: pending events not strictly ordered at %d", i)
		}
		prev = rec
	}

	// Build scratch queues. Records arrive sorted by (At, Seq); a sorted
	// array is already a valid min-heap, so band assignment is the only
	// work for the heap discipline. Under the ladder every event is pushed
	// into a fresh ladder, growing upper rungs as needed — drains refine
	// them lazily, and pop order is a function of (at, seq) alone, not
	// placement.
	var q, qa []*event
	var lad *ladder
	if e.lad != nil {
		lad = new(ladder)
	}
	for _, rec := range st.Pending {
		fn, ok := rebind(rec)
		if !ok {
			return fmt.Errorf("sim: restore: no rebinding for event at=%d seq=%#x", rec.At, rec.Seq)
		}
		t := &event{eng: e, at: rec.At, seq: rec.Seq, fn: fn, idx: -1}
		switch {
		case rec.Seq&arrivalBand != 0:
			t.idx = int32(len(qa))
			qa = append(qa, t)
		case lad != nil:
			lad.push(t)
		default:
			t.idx = int32(len(q))
			q = append(q, t)
		}
	}

	// Commit.
	e.now = st.Now
	e.seq = st.Seq
	e.nEvent = st.Events
	e.q, e.qa, e.lad = q, qa, lad
	e.free, e.freeN = nil, 0
	e.src = NewCountingSource(e.seed)
	e.rng = rand.New(e.src)
	e.src.Skip(st.Draws)
	return nil
}

// GroupState is a snapshot of a shard group's barrier counters. The
// engines themselves are captured individually; this is the only state
// the Group adds on top.
type GroupState struct {
	Epochs     uint64
	Dispatched []uint64
	Skipped    []uint64
}

// CaptureState snapshots the group's barrier counters. Only meaningful
// between epochs (when the coordinator owns every engine).
func (g *Group) CaptureState() GroupState {
	return GroupState{
		Epochs:     g.epochs,
		Dispatched: append([]uint64(nil), g.dispatched...),
		Skipped:    append([]uint64(nil), g.skipped...),
	}
}

// CountingSource is a deterministic rand.Source64 that counts how many
// values have been drawn, making the RNG position part of capturable
// state: a restored component reconstructs its source from the same seed
// and Skips to the recorded count. Wrapping does not change the stream —
// both Int63 and Uint64 advance the underlying generator exactly one
// step, as they do unwrapped.
type CountingSource struct {
	src rand.Source64
	n   uint64
}

// NewCountingSource returns a counting source over rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 draws one value.
func (c *CountingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 draws one value.
func (c *CountingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Seed reseeds the underlying source and resets the draw count.
func (c *CountingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// Draws returns the number of values drawn so far.
func (c *CountingSource) Draws() uint64 {
	return c.n
}

// Skip advances the stream by n draws (used when restoring to a captured
// position).
func (c *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.Uint64()
	}
}
