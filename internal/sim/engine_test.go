package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(5 * Microsecond)
	if tm != Time(5_000_000) {
		t.Fatalf("5us = %d ps, want 5e6", tm)
	}
	if d := tm.Sub(Time(1_000_000)); d != 4*Microsecond {
		t.Fatalf("Sub = %v, want 4us", d)
	}
	if s := (2 * Second).Seconds(); s != 2 {
		t.Fatalf("Seconds = %v", s)
	}
	if us := Time(1500).Microseconds(); us != 0.0015 {
		t.Fatalf("Microseconds = %v", us)
	}
}

func TestTransmissionTime(t *testing.T) {
	// 1500 bytes at 100 Gbps = 120 ns.
	if d := TransmissionTime(1500, 100e9); d != 120*Nanosecond {
		t.Fatalf("1500B@100G = %v, want 120ns", d)
	}
	// 64 bytes at 400 Gbps = 1.28 ns = 1280 ps.
	if d := TransmissionTime(64, 400e9); d != 1280*Picosecond {
		t.Fatalf("64B@400G = %v, want 1.28ns", d)
	}
}

func TestDurationScale(t *testing.T) {
	if d := (10 * Microsecond).Scale(1.3); d != 13*Microsecond {
		t.Fatalf("Scale(1.3) = %v, want 13us", d)
	}
	if d := (3 * Picosecond).Scale(0.5); d != 2*Picosecond { // rounds up at .5
		t.Fatalf("Scale rounding = %v, want 2ps", d)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(50, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: got[%d] = %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
		// Same-time event scheduled from within an event still runs.
		e.After(0, func() { fired = append(fired, e.Now()) })
	})
	e.RunAll()
	want := []Time{10, 10, 15}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tm := e.Schedule(10, func() { ran = true })
	if !tm.Active() {
		t.Fatal("Active() = false for a scheduled timer")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("Active() = true after Cancel")
	}
	tm.Cancel() // double cancel is a no-op
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Events() != 0 {
		t.Fatalf("Events = %d, want 0", e.Events())
	}
}

// Regression test for the lazy-cancel leak: cancelled timers used to stay
// in the heap until popped, so Pending() overcounted and long-lived runs
// with many cancellations (RTO timers, token loops) accumulated dead
// entries. Cancel must remove the event immediately.
func TestEngineCancelRemovesFromQueue(t *testing.T) {
	e := NewEngine(1)
	timers := make([]Timer, 1000)
	for i := range timers {
		timers[i] = e.Schedule(Time(10+i), func() {})
	}
	if e.Pending() != 1000 {
		t.Fatalf("Pending = %d, want 1000", e.Pending())
	}
	for i, tm := range timers {
		if i%2 == 0 {
			tm.Cancel()
		}
	}
	if e.Pending() != 500 {
		t.Fatalf("Pending = %d after cancelling half, want 500", e.Pending())
	}
	ran := 0
	e.Schedule(5000, func() { ran = e.Pending() })
	e.RunAll()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
	_ = ran
}

// A handle to a fired timer must stay inert even after the engine recycles
// the event for a new timer: cancelling through the stale handle must not
// cancel the new occupant.
func TestEngineStaleHandleSafety(t *testing.T) {
	e := NewEngine(1)
	fired := false
	stale := e.Schedule(10, func() {})
	e.RunAll() // fires; event returns to the free list
	if stale.Active() {
		t.Fatal("handle still active after fire")
	}
	fresh := e.Schedule(20, func() { fired = true }) // reuses the event
	stale.Cancel()                                   // must be a no-op
	if !fresh.Active() {
		t.Fatal("stale Cancel deactivated a recycled timer")
	}
	if stale.At() != 0 {
		t.Fatalf("stale At() = %v, want 0", stale.At())
	}
	e.RunAll()
	if !fired {
		t.Fatal("recycled timer did not fire after stale Cancel")
	}
}

func TestTimerAt(t *testing.T) {
	e := NewEngine(1)
	tm := e.Schedule(42, func() {})
	if tm.At() != 42 {
		t.Fatalf("At = %v, want 42", tm.At())
	}
	var zero Timer
	zero.Cancel() // zero handle is inert
	if zero.Active() {
		t.Fatal("zero Timer is active")
	}
}

// The free list must not leak behavior between reuses: schedule/fire in a
// loop and verify ordering still holds with recycled events.
func TestEngineFreeListReuse(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for round := 0; round < 3; round++ {
		round := round
		for i := 0; i < 50; i++ {
			i := i
			e.Schedule(e.Now().Add(Duration(1+i)), func() { order = append(order, round*50+i) })
		}
		e.RunAll()
	}
	if len(order) != 150 {
		t.Fatalf("ran %d events, want 150", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestAfterFunc(t *testing.T) {
	e := NewEngine(1)
	type box struct{ n int }
	bx := &box{}
	e.AfterFunc(5, func(a, b any, i int) {
		a.(*box).n = i
		if b != nil {
			t.Error("b leaked")
		}
	}, bx, nil, 7)
	e.RunAll()
	if bx.n != 7 {
		t.Fatalf("AfterFunc arg = %d, want 7", bx.n)
	}
}

func TestScheduleFunc(t *testing.T) {
	e := NewEngine(1)
	var order []int
	rec := func(_, _ any, i int) { order = append(order, i) }
	// Absolute times, deliberately scheduled out of order; same-time events
	// keep scheduling order (FIFO tie-break), like Schedule.
	e.ScheduleFunc(30, rec, nil, nil, 3)
	e.ScheduleFunc(10, rec, nil, nil, 1)
	e.ScheduleFunc(30, rec, nil, nil, 4)
	tm := e.ScheduleFunc(20, rec, nil, nil, 2)
	if !tm.Active() || tm.At() != 20 {
		t.Fatalf("timer at %v active=%v, want 20/true", tm.At(), tm.Active())
	}
	e.RunAll()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestScheduleFuncPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(50, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleFunc in the past did not panic")
		}
	}()
	e.ScheduleFunc(10, func(_, _ any, _ int) {}, nil, nil, 0)
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.Schedule(10, func() { got = append(got, e.Now()) })
	e.Schedule(20, func() { got = append(got, e.Now()) })
	e.Schedule(30, func() { got = append(got, e.Now()) })
	e.Run(20)
	if len(got) != 2 {
		t.Fatalf("ran %d events, want 2 (event at horizon inclusive)", len(got))
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	e.Run(100)
	if len(got) != 3 {
		t.Fatalf("ran %d events after extending horizon, want 3", len(got))
	}
	// Clock advances to the horizon even with an empty queue.
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.RunAll()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var trace []int64
		var step func()
		step = func() {
			trace = append(trace, int64(e.Now()), e.rng.Int63n(1000))
			if len(trace) < 200 {
				e.After(Duration(1+e.rng.Int63n(50)), step)
			}
		}
		e.After(1, step)
		e.RunAll()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("determinism: different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism: traces diverge at %d", i)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: for any multiset of scheduling times, events execute in sorted
// order and the engine clock never moves backwards.
func TestEngineSortedExecutionProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine(7)
		times := make([]Time, len(raw))
		for i, r := range raw {
			times[i] = Time(r % 1_000_000)
		}
		var executed []Time
		for _, at := range times {
			at := at
			e.Schedule(at, func() { executed = append(executed, at) })
		}
		e.RunAll()
		if len(executed) != len(times) {
			return false
		}
		sorted := append([]Time(nil), times...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if executed[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of timers runs exactly the others.
func TestEngineCancelSubsetProperty(t *testing.T) {
	f := func(raw []uint16, mask uint64) bool {
		e := NewEngine(3)
		want := 0
		ran := 0
		for i, r := range raw {
			tm := e.Schedule(Time(r), func() { ran++ })
			if mask>>(uint(i)%64)&1 == 1 {
				tm.Cancel()
			} else {
				want++
			}
		}
		e.RunAll()
		return ran == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleStep(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	r := rand.New(rand.NewSource(1))
	// Keep a standing pool of 1024 pending events, schedule+pop in a loop.
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(r.Int63n(1_000_000)), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now().Add(Duration(1+r.Int63n(1000))), func() {})
		e.Step()
	}
}
