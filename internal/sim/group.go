package sim

import "sync"

// Group runs several engines as the shards of one conservatively
// parallel simulation. Each epoch every shard advances to the same
// barrier time on its own goroutine; between epochs the caller drains
// cross-shard staging queues (see netsim) and computes the next barrier
// from the shards' earliest pending events plus the lookahead window.
//
// Shard 0 always runs on the caller's goroutine; shards 1..n-1 each get
// a persistent worker goroutine fed one barrier time per epoch over a
// channel. Persistent workers keep the per-epoch synchronization cost
// to one channel send + one WaitGroup wait per worker, which matters
// because epochs are only a couple hundred nanoseconds of simulated
// time wide.
//
// A Group of one engine degenerates to plain serial execution with no
// goroutines and no channels, so the serial path pays nothing.
type Group struct {
	engines []*Engine
	work    []chan Time // one per engine 1..n-1
	//lint:ignore simgoroutine Group IS the sanctioned concurrency primitive; this joins its own epoch workers
	wg     sync.WaitGroup
	closed bool

	// Barrier-overhead counters, maintained unconditionally (two slice
	// increments per shard per epoch — noise against an epoch's channel
	// round-trip) and surfaced only through opt-in telemetry
	// (netsim.RegisterShardMetrics), so default runs format nothing.
	epochs     uint64   // barriers executed
	dispatched []uint64 // per shard: epochs it had work inside the window
	skipped    []uint64 // per shard: epochs it was idle and only advanced its clock
}

// NewGroup builds a group over engines. The slice must be non-empty;
// the group takes ownership of running them (callers must not call Run
// on a member engine while an epoch is in flight).
func NewGroup(engines []*Engine) *Group {
	if len(engines) == 0 {
		panic("sim: empty engine group")
	}
	g := &Group{
		engines:    engines,
		dispatched: make([]uint64, len(engines)),
		skipped:    make([]uint64, len(engines)),
	}
	if len(engines) > 1 {
		g.work = make([]chan Time, len(engines)-1)
		for i := range g.work {
			ch := make(chan Time, 1)
			g.work[i] = ch
			eng := engines[i+1]
			//lint:ignore simgoroutine Group's persistent epoch workers are the one sanctioned fabric spawn point
			go func() {
				for t := range ch {
					eng.Run(t)
					g.wg.Done()
				}
			}()
		}
	}
	return g
}

// N returns the number of shards.
func (g *Group) N() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// RunEpoch advances every shard to until and blocks until all have
// arrived at the barrier. With one shard it is exactly Engine.Run.
//
// Shards with no event inside the window are not dispatched: the
// coordinator advances their clock inline (SkipTo) instead of paying a
// channel round-trip for a no-op epoch. Safe because workers are idle
// between epochs — the coordinator already owns every engine here (it
// reads NextAt to size the window and drains staging queues into them).
func (g *Group) RunEpoch(until Time) {
	g.epochs++
	if len(g.engines) == 1 {
		g.engines[0].Run(until)
		g.dispatched[0]++
		return
	}
	busy := 0
	for i, ch := range g.work {
		eng := g.engines[i+1]
		if at, ok := eng.NextAt(); !ok || at > until {
			eng.SkipTo(until)
			g.skipped[i+1]++
			continue
		}
		g.dispatched[i+1]++
		busy++
		g.wg.Add(1)
		ch <- until
	}
	g.engines[0].Run(until)
	g.dispatched[0]++
	if busy > 0 {
		g.wg.Wait()
	}
}

// Close shuts down the worker goroutines. The group must be idle (no
// epoch in flight). Safe to call more than once.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.work {
		close(ch)
	}
}

// Now returns the current barrier time (all shards agree between
// epochs; shard 0 is authoritative).
func (g *Group) Now() Time { return g.engines[0].Now() }

// Events returns the total number of events executed across shards.
func (g *Group) Events() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Events()
	}
	return n
}

// Pending returns the total number of live queued events across shards.
func (g *Group) Pending() int {
	var n int
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// Epochs returns the number of barriers executed so far.
func (g *Group) Epochs() uint64 { return g.epochs }

// Dispatched returns how many epochs shard i ran with work inside the
// window; Skipped how many it skipped as idle. Together they sum to
// Epochs (shard 0 always runs, so its skip count stays zero).
func (g *Group) Dispatched(i int) uint64 { return g.dispatched[i] }

// Skipped returns how many epochs shard i was idle-skipped.
func (g *Group) Skipped(i int) uint64 { return g.skipped[i] }

// NextAt returns the earliest pending event time across shards, or
// false when every shard's queue is empty. Only meaningful between
// epochs.
func (g *Group) NextAt() (Time, bool) {
	var min Time
	ok := false
	for _, e := range g.engines {
		if at, has := e.NextAt(); has && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}
