package sim

import "sync"

// Group runs several engines as the shards of one conservatively
// parallel simulation. Each epoch every shard advances to the same
// barrier time; between epochs the caller drains cross-shard staging
// queues (see netsim) and computes the next barrier from the shards'
// earliest pending events plus the lookahead window.
//
// Shard 0 always runs on the caller's goroutine; shards 1..n-1 each get
// a persistent worker goroutine. How an epoch reaches those workers is
// the BarrierMode: the default hybrid barrier releases each busy worker
// with one atomic store (spin-then-park on both sides) and — the epoch
// batching — runs windows where at most ONE shard has pending work
// entirely inline on the coordinator, costing zero goroutine crossings.
// That is safe for the same reason idle-skipping is: between epochs the
// workers are quiescent and the coordinator already owns every engine
// (it reads NextAt to size the window and drains staging queues into
// them); atomics on the command slots order the handoff both ways.
//
// A Group of one engine degenerates to plain serial execution with no
// goroutines and no channels, so the serial path pays nothing.
// A Group checkpoint (GroupState) carries only the barrier counters that
// equivalence tests compare; the worker machinery below is live goroutine
// state, rebuilt from scratch when the resumed run constructs its Group.
type Group struct {
	engines []*Engine   //ckpt:skip member engines capture their own EngineStates
	mode    BarrierMode //ckpt:skip construction input, chosen again by the resuming run
	closed  bool        //ckpt:skip lifecycle flag; a restored Group starts fresh

	// Hybrid-barrier state: one padded command slot per worker plus the
	// shared join barrier. busy is coordinator-private scratch.
	slots []*workerSlot //ckpt:skip live goroutine handshake state, rebuilt by NewGroup
	join  joinBarrier   //ckpt:skip live goroutine handshake state, rebuilt by NewGroup
	busy  []int         //ckpt:skip coordinator-private scratch, meaningless between epochs

	// Legacy channel-barrier state.
	work []chan Time //ckpt:skip live channels, rebuilt by NewGroup
	//lint:ignore simgoroutine Group IS the sanctioned concurrency primitive; this joins its own epoch workers
	wg sync.WaitGroup //ckpt:skip goroutine join state, rebuilt by NewGroup

	// Barrier-overhead counters, maintained unconditionally (a few slice
	// increments per shard per epoch — noise against an epoch's barrier
	// crossing) and surfaced only through opt-in telemetry
	// (netsim.RegisterShardMetrics), so default runs format nothing.
	// epochs/dispatched/skipped follow identical rules in both modes, so
	// equivalence tests can compare them across modes; crossings and
	// inlined describe the hybrid barrier's batching and stay zero under
	// BarrierChannel.
	epochs     uint64   // barriers executed
	dispatched []uint64 // per shard: epochs it had work inside the window
	skipped    []uint64 // per shard: epochs it was idle and only advanced its clock
	crossings  uint64   //ckpt:skip hybrid-batching telemetry; GroupState compares only the mode-independent counters
	inlined    uint64   //ckpt:skip hybrid-batching telemetry; GroupState compares only the mode-independent counters
}

// NewGroup builds a group over engines using the default hybrid
// barrier. The slice must be non-empty; the group takes ownership of
// running them (callers must not call Run on a member engine while an
// epoch is in flight).
func NewGroup(engines []*Engine) *Group {
	return NewGroupMode(engines, BarrierHybrid)
}

// NewGroupMode builds a group with an explicit barrier mode. Both modes
// execute identical schedules — every event on the same shard in the
// same order — and keep identical epoch/dispatch/skip counters; they
// differ only in synchronization cost.
func NewGroupMode(engines []*Engine, mode BarrierMode) *Group {
	if len(engines) == 0 {
		panic("sim: empty engine group")
	}
	g := &Group{
		engines:    engines,
		mode:       mode,
		dispatched: make([]uint64, len(engines)),
		skipped:    make([]uint64, len(engines)),
	}
	if len(engines) == 1 {
		return g
	}
	switch mode {
	case BarrierChannel:
		g.work = make([]chan Time, len(engines)-1)
		for i := range g.work {
			ch := make(chan Time, 1)
			g.work[i] = ch
			eng := engines[i+1]
			//lint:ignore simgoroutine Group's persistent epoch workers are the one sanctioned fabric spawn point
			go func() {
				for t := range ch {
					eng.Run(t)
					g.wg.Done()
				}
			}()
		}
	default:
		g.join.wake = make(chan struct{}, 1)
		g.busy = make([]int, 0, len(engines)-1)
		g.slots = make([]*workerSlot, len(engines)-1)
		for i := range g.slots {
			s := &workerSlot{wake: make(chan struct{}, 1)}
			g.slots[i] = s
			eng := engines[i+1]
			//lint:ignore simgoroutine Group's persistent epoch workers are the one sanctioned fabric spawn point
			go func() {
				for n := uint64(1); ; n++ {
					t := s.await(n)
					if g.closed {
						return
					}
					eng.Run(t)
					g.join.done()
				}
			}()
		}
	}
	return g
}

// N returns the number of shards.
func (g *Group) N() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Mode returns the group's barrier mode.
func (g *Group) Mode() BarrierMode { return g.mode }

// RunEpoch advances every shard to until and blocks until all have
// arrived at the barrier. With one shard it is exactly Engine.Run.
//
// Shards with no event inside the window are not dispatched: the
// coordinator advances their clock inline (SkipTo) instead of paying a
// barrier crossing for a no-op epoch. Under the hybrid barrier a window
// with exactly one busy worker shard is also run inline — consecutive
// such epochs (the common shape at high shard counts, where idle
// skipping already thins the busy set) batch into zero crossings.
//
//lint:hotpath epoch barrier; 0-alloc contract of BenchmarkGroupEpoch
func (g *Group) RunEpoch(until Time) {
	g.epochs++
	if len(g.engines) == 1 {
		g.engines[0].Run(until)
		g.dispatched[0]++
		return
	}
	if g.mode == BarrierChannel {
		g.runEpochChannel(until)
		return
	}
	busy := g.busy[:0]
	for i := 1; i < len(g.engines); i++ {
		eng := g.engines[i]
		if at, ok := eng.NextAt(); !ok || at > until {
			eng.SkipTo(until)
			g.skipped[i]++
			continue
		}
		g.dispatched[i]++
		//lint:ignore hotalloc coordinator scratch preallocated to len(engines)-1 in NewGroupMode; busy starts at g.busy[:0] so this never grows
		busy = append(busy, i)
	}
	g.busy = busy
	if len(busy) > 1 {
		g.crossings++
		g.join.remaining.Store(int32(len(busy)))
		for _, i := range busy {
			s := g.slots[i-1]
			s.seq++
			s.release(s.seq, until)
		}
	}
	g.engines[0].Run(until)
	g.dispatched[0]++
	switch len(busy) {
	case 0:
	case 1:
		// Epoch batching: a singleton busy set runs on the coordinator.
		// The worker is parked; the last barrier crossing ordered its
		// engine's state to us, and the next release orders ours back.
		g.inlined++
		g.engines[busy[0]].Run(until)
	default:
		g.join.wait()
	}
}

// runEpochChannel is the legacy channel + WaitGroup epoch, preserved
// verbatim as the reference implementation for equivalence tests.
func (g *Group) runEpochChannel(until Time) {
	busy := 0
	for i, ch := range g.work {
		eng := g.engines[i+1]
		if at, ok := eng.NextAt(); !ok || at > until {
			eng.SkipTo(until)
			g.skipped[i+1]++
			continue
		}
		g.dispatched[i+1]++
		busy++
		g.wg.Add(1)
		ch <- until
	}
	g.engines[0].Run(until)
	g.dispatched[0]++
	if busy > 0 {
		g.wg.Wait()
	}
}

// Close shuts down the worker goroutines. The group must be idle (no
// epoch in flight). Safe to call more than once.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.work {
		close(ch)
	}
	for _, s := range g.slots {
		// The closed flag is ordered to the worker by the release store.
		s.seq++
		s.release(s.seq, 0)
	}
}

// Now returns the current barrier time (all shards agree between
// epochs; shard 0 is authoritative).
func (g *Group) Now() Time { return g.engines[0].Now() }

// Events returns the total number of events executed across shards.
func (g *Group) Events() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Events()
	}
	return n
}

// Pending returns the total number of live queued events across shards.
func (g *Group) Pending() int {
	var n int
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// Epochs returns the number of barriers executed so far.
func (g *Group) Epochs() uint64 { return g.epochs }

// Dispatched returns how many epochs shard i ran with work inside the
// window; Skipped how many it skipped as idle. Together they sum to
// Epochs (shard 0 always runs, so its skip count stays zero).
func (g *Group) Dispatched(i int) uint64 { return g.dispatched[i] }

// Skipped returns how many epochs shard i was idle-skipped.
func (g *Group) Skipped(i int) uint64 { return g.skipped[i] }

// Crossings returns how many epochs paid a cross-goroutine barrier
// round-trip under the hybrid barrier (zero under BarrierChannel, which
// crosses on every epoch with any busy worker).
func (g *Group) Crossings() uint64 { return g.crossings }

// Inlined returns how many worker-shard epochs the hybrid barrier ran
// inline on the coordinator (the epoch-batching fast path).
func (g *Group) Inlined() uint64 { return g.inlined }

// NextAt returns the earliest pending event time across shards, or
// false when every shard's queue is empty. Only meaningful between
// epochs.
func (g *Group) NextAt() (Time, bool) {
	var min Time
	ok := false
	for _, e := range g.engines {
		if at, has := e.NextAt(); has && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}
