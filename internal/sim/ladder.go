package sim

import "math"

// ladder is the calendar-queue ("ladder queue") discipline for the
// engine's band-0 events: an alternative to the inlined 4-ary heap that
// trades the heap's O(log n) sift cost for O(1) bucket appends, which
// wins once the pending-event population is large (1024-host and bigger
// fabrics hold 10^4–10^7 concurrent timers; see DESIGN.md §13/§16 for
// the measured crossover).
//
// Structure, front to back in time:
//
//   - active: a small 4-ary min-heap — the drain front. Holds every
//     event with at < activeEnd. Pops come only from here, so the pop
//     order is exactly eventLess (time, then seq), the same total order
//     the heap discipline uses: the two disciplines are execution-order
//     identical by construction (TestQueueDisciplineEquivalence drives
//     randomized schedules through both and asserts it).
//   - segs: ordered rungs, each an equal-width array of UNSORTED
//     buckets covering a contiguous span of future time. Events are
//     appended to their bucket in O(1). When the active heap drains, the
//     next non-empty bucket is heapified wholesale into it. A bucket
//     holding too many events for one heapify spawns a finer rung in
//     front, re-bucketing its contents — that keeps per-transfer work
//     bounded without ever sorting more than one bucket at a time.
//
// Far-future events — past the last rung's horizon — grow new upper
// rungs at the tail, each ladBuckets× coarser than the one before it,
// until a rung spans the timestamp. Rung count is therefore bounded by
// log_ladBuckets of the representable time span (≤ 8 rungs on 63-bit
// picoseconds), push's linear rung scan stays trivially cheap, and the
// old single overflow slice — whose drain re-bucketed the entire
// far-future population at once, a measured hot spot at 10^6–10^7
// pending events — is gone: upper rungs refine one bucket at a time
// through the same spawn step every other rung uses.
//
// Event location is tracked through event.bkt: nil while in the active
// heap (event.idx is the heap slot), otherwise a pointer to the unsorted
// bucket holding it (event.idx is the slice slot), so cancellation is
// O(1) swap-delete everywhere except the small drain front.
//
// Scheduling in the past is impossible (Engine.push checks), so every
// insert lands at or after the drain front and no bucket behind cur can
// ever be targeted.
const (
	ladBuckets  = 256 // buckets per rung
	ladSpawnMin = 512 // bucket size that spawns a finer rung instead of heapifying
)

// ladTimeMax is the saturation point for rung spans: a rung whose
// nominal span would overflow the time axis clamps its limit here, and
// its last bucket absorbs the remainder.
const ladTimeMax = Time(math.MaxInt64)

// Checkpoints walk a ladder only to enumerate pending events; the rung
// geometry is physical layout that EngineState normalizes away and a
// restored engine regrows on its own.
type ladSeg struct {
	start Time     //ckpt:skip rung geometry, physical layout normalized away by EngineState
	width Duration //ckpt:skip bucket width, physical layout normalized away by EngineState
	cur   int      // next bucket to drain
	// limit is the rung's exclusive span end. It can be tighter than
	// start + width*ladBuckets (width rounds up), and drain boundaries
	// clamp to it: a spawned rung must never claim time past its
	// parent bucket's right edge, or its last bucket would interleave
	// out of order with the parent's next one.
	limit   Time //ckpt:skip rung geometry, physical layout normalized away by EngineState
	buckets [ladBuckets][]*event
}

type ladder struct {
	active    []*event // min-heap by eventLess; the drain front
	activeEnd Time     //ckpt:skip drain-front edge, physical layout normalized away by EngineState
	segs      []*ladSeg
	n         int //ckpt:skip derived count, physical layout normalized away by EngineState
}

// push files t into the tier its timestamp selects. O(1) except for
// active-heap inserts, which are O(log |active|) on a deliberately small
// heap, and the rare rung growth (bounded by the geometric rung count).
func (l *ladder) push(t *event) {
	l.n++
	at := t.at
	if at < l.activeEnd {
		t.bkt = nil
		t.idx = int32(len(l.active))
		//lint:ignore hotalloc active-heap growth is amortized to the peak drain-front size; the backing array is reused across refills
		l.active = append(l.active, t)
		siftUp(l.active, int(t.idx))
		return
	}
	for _, s := range l.segs {
		if at >= s.limit {
			continue
		}
		l.file(s, t)
		return
	}
	l.file(l.grow(at), t)
}

// file appends t to its bucket inside rung s (which must span t.at).
func (l *ladder) file(s *ladSeg, t *event) {
	at := t.at
	b := 0
	if at > s.start {
		b = int(int64(at-s.start) / int64(s.width))
	}
	// A saturated top rung's width rounds down; its last bucket absorbs
	// the span remainder.
	if b >= ladBuckets {
		b = ladBuckets - 1
	}
	// Events in the gap before a rung, or at the drained frontier,
	// clamp into the current bucket: they still sort after everything
	// in active (at ≥ activeEnd) and before every later bucket.
	if b < s.cur {
		b = s.cur
	}
	bp := &s.buckets[b]
	t.bkt = bp
	t.idx = int32(len(*bp))
	//lint:ignore hotalloc bucket appends reuse capacity left by earlier drains; growth is amortized to the bucket's peak population
	*bp = append(*bp, t)
}

// grow appends upper rungs — each ladBuckets× coarser than the last —
// until one spans at, and returns it. The first rung over an empty tail
// sizes its bucket width to the observed horizon (the self-sizing that
// makes the calendar robust to densities it was not tuned for); each
// additional rung widens geometrically, so covering any timestamp takes
// O(log_ladBuckets(span)) rungs total over the ladder's lifetime.
//
//lint:coldpath rung growth is geometrically bounded (O(log span) rungs ever); steady state never reaches it
func (l *ladder) grow(at Time) *ladSeg {
	base := l.activeEnd
	var width Duration
	if k := len(l.segs); k > 0 {
		last := l.segs[k-1]
		base = last.limit
		width = mulSat(last.width, ladBuckets)
	} else {
		width = Duration(int64(at-base)/ladBuckets) + 1
	}
	for {
		if width < 1 {
			width = 1
		}
		limit := spanEnd(base, width)
		s := &ladSeg{start: base, width: width, limit: limit}
		l.segs = append(l.segs, s)
		if at < limit || limit == ladTimeMax {
			return s
		}
		base = limit
		width = mulSat(width, ladBuckets)
	}
}

// spanEnd returns base + width*ladBuckets saturated to ladTimeMax. When
// it saturates it also shrinks the caller's effective span arithmetic:
// the rung's width is recomputed so start + width*ladBuckets never
// overflows (the last bucket absorbs the remainder via file's clamp).
func spanEnd(base Time, width Duration) Time {
	span := int64(ladTimeMax - base)
	if int64(width) > span/ladBuckets {
		return ladTimeMax
	}
	return base.Add(width * ladBuckets)
}

// mulSat multiplies a bucket width by the rung fan-out, saturating
// instead of overflowing the time axis.
func mulSat(w Duration, k int64) Duration {
	if int64(w) > math.MaxInt64/k {
		return Duration(math.MaxInt64 / ladBuckets)
	}
	return w * Duration(k)
}

// min returns the earliest pending event without removing it, advancing
// the drain front over empty buckets as needed. Returns nil when empty.
func (l *ladder) min() *event {
	for len(l.active) == 0 {
		if !l.advance() {
			return nil
		}
	}
	return l.active[0]
}

// pop removes and returns the earliest pending event, or nil.
func (l *ladder) pop() *event {
	if l.min() == nil {
		return nil
	}
	l.n--
	return popRoot(&l.active)
}

// advance refills the empty active heap from the next non-empty bucket,
// spawning finer rungs for over-dense buckets on the way. Reports false
// when the whole ladder is empty.
func (l *ladder) advance() bool {
	for len(l.segs) > 0 {
		s := l.segs[0]
		for s.cur < ladBuckets && len(s.buckets[s.cur]) == 0 {
			s.cur++
		}
		if s.cur == ladBuckets {
			l.segs = l.segs[1:] // exhausted
			continue
		}
		b := s.buckets[s.cur]
		bucketEnd := s.start.Add(Duration(int64(s.width) * int64(s.cur+1)))
		if bucketEnd > s.limit || bucketEnd < s.start {
			bucketEnd = s.limit
		}
		s.buckets[s.cur] = nil
		s.cur++
		if len(b) > ladSpawnMin && s.width > 1 {
			l.spawn(b, bucketEnd)
			continue
		}
		l.fill(b, bucketEnd)
		return true
	}
	return false
}

// fill moves one drained bucket into the active heap (4-ary heapify,
// O(len)) and advances the drain boundary to the bucket's right edge.
func (l *ladder) fill(b []*event, end Time) {
	//lint:ignore hotalloc append onto l.active[:0] reuses the heap's backing array; it grows only when a bucket beats the historical peak
	l.active = append(l.active[:0], b...)
	for i, ev := range l.active {
		ev.bkt = nil
		ev.idx = int32(i)
	}
	for i := (len(l.active) - 2) >> 2; i >= 0; i-- {
		siftDown(l.active, i)
	}
	l.activeEnd = end
}

// spawn re-buckets one over-dense bucket into a finer rung prepended
// to the ladder — the rung-spawning step that bounds per-drain work. The
// new rung starts at the bucket's earliest event (not its nominal left
// edge: gap-clamped strays can sit before it, and not the drain boundary:
// a cluster far past it would keep the span — and so the child's bucket
// width — from ever tightening, spawning forever). Anchoring at the true
// minimum shrinks the span to at most the parent's bucket width, so
// resolution improves ~ladBuckets-fold per rung and the recursion
// terminates.
//
//lint:coldpath rung spawning fires only on over-dense buckets (> ladSpawnMin) and its cost is amortized across the events it re-buckets
func (l *ladder) spawn(b []*event, end Time) {
	start := b[0].at
	for _, ev := range b[1:] {
		if ev.at < start {
			start = ev.at
		}
	}
	span := int64(end - start)
	width := (span + ladBuckets - 1) / ladBuckets
	if width < 1 {
		width = 1
	}
	s := &ladSeg{start: start, width: Duration(width), limit: end}
	for _, ev := range b {
		i := int(int64(ev.at-start) / width)
		bp := &s.buckets[i]
		ev.bkt = bp
		ev.idx = int32(len(*bp))
		*bp = append(*bp, ev)
	}
	l.segs = append([]*ladSeg{s}, l.segs...)
}

// remove deletes a queued event (cancellation): heap-remove from the
// drain front, O(1) swap-delete from a bucket.
func (l *ladder) remove(t *event) {
	l.n--
	if t.bkt == nil {
		heapRemove(&l.active, t)
		return
	}
	q := *t.bkt
	i := int(t.idx)
	nn := len(q) - 1
	last := q[nn]
	q[nn] = nil
	if i != nn {
		q[i] = last
		last.idx = int32(i)
	}
	*t.bkt = q[:nn]
}
