package sim

import (
	"runtime"
	"sync/atomic"
)

// BarrierMode selects how a Group synchronizes its per-epoch barrier.
//
// The default, BarrierHybrid, replaces the original per-epoch channel
// round-trip with a spin-then-park handoff plus epoch batching: windows
// where at most one shard has work inside the barrier run entirely on
// the coordinator goroutine with zero cross-goroutine crossings. The
// legacy channel implementation is kept selectable so equivalence tests
// can drive both and assert byte-identical schedules and counters.
type BarrierMode uint8

const (
	// BarrierHybrid (default): per-worker padded command slots that
	// workers spin on briefly and then park behind, plus solo-epoch
	// inlining on the coordinator. One atomic store releases a worker;
	// one atomic decrement joins it.
	BarrierHybrid BarrierMode = iota
	// BarrierChannel: the original one-buffered-channel-per-worker +
	// WaitGroup handoff. Two goroutine wakeups per dispatched worker per
	// epoch. Retained as the reference implementation.
	BarrierChannel
)

func (m BarrierMode) String() string {
	switch m {
	case BarrierHybrid:
		return "hybrid"
	case BarrierChannel:
		return "channel"
	default:
		return "unknown"
	}
}

// barrierSpin bounds how many predicate checks a waiter performs before
// parking on its channel. Epochs are a few hundred simulated nanoseconds
// wide, so on a busy multi-core run the release usually lands within the
// spin window; on an oversubscribed or single-core box the Gosched every
// 16 checks keeps the spin from starving the goroutine holding the work.
const barrierSpin = 256

// workerSlot is one worker's half of the hybrid barrier. The coordinator
// owns seq/until between epochs; cmd/parked are the only cross-goroutine
// fields. The pad keeps neighbouring slots out of one cache line so a
// worker spinning on its own cmd never bounces another worker's line.
type workerSlot struct {
	cmd    atomic.Uint64 // last released command number (monotonic)
	parked atomic.Int32  // 1 while the waiter may be blocked on wake
	until  Time          // barrier target; written before cmd, read after
	seq    uint64        // coordinator-side: next command number to issue
	wake   chan struct{} // park/unpark token channel, capacity 1
	_      [64]byte
}

// release publishes barrier target t as command n and unparks the worker
// if it already went to sleep. The plain until write is ordered by the
// atomic cmd store (release) / load (acquire) pair in await.
func (s *workerSlot) release(n uint64, t Time) {
	s.until = t
	s.cmd.Store(n)
	if s.parked.Swap(0) == 1 {
		s.wake <- struct{}{}
	}
}

// await blocks until command n has been released and returns its barrier
// target. Spin-then-park: a bounded predicate spin, then a parked flag +
// re-check + channel receive. The flag protocol cannot lose a wakeup:
// whichever side swaps the 1 out of parked owns the token — if release
// wins it sends one token, and the waiter (seeing its own swap return 0)
// drains it; if the waiter wins there is no token in flight.
func (s *workerSlot) await(n uint64) Time {
	for i := 0; i < barrierSpin; i++ {
		if s.cmd.Load() >= n {
			return s.until
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	s.parked.Store(1)
	if s.cmd.Load() >= n {
		if s.parked.Swap(0) == 0 {
			<-s.wake // release consumed our flag; its token is in flight
		}
		return s.until
	}
	<-s.wake
	return s.until
}

// joinBarrier is the coordinator's half of epoch completion: remaining
// counts dispatched workers still running, and the coordinator parks
// behind the same flag protocol the workers use.
type joinBarrier struct {
	remaining atomic.Int32
	parked    atomic.Int32
	wake      chan struct{}
}

// done is called by a worker arriving at the barrier; the last arrival
// unparks the coordinator.
func (j *joinBarrier) done() {
	if j.remaining.Add(-1) == 0 {
		if j.parked.Swap(0) == 1 {
			j.wake <- struct{}{}
		}
	}
}

// wait blocks the coordinator until every dispatched worker has arrived.
func (j *joinBarrier) wait() {
	for i := 0; i < barrierSpin; i++ {
		if j.remaining.Load() == 0 {
			return
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	j.parked.Store(1)
	if j.remaining.Load() == 0 {
		if j.parked.Swap(0) == 0 {
			<-j.wake
		}
		return
	}
	<-j.wake
}
