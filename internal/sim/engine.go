package sim

import (
	"container/heap"
	"math/rand"
)

// Engine is a deterministic discrete-event simulator. Events are executed
// in non-decreasing timestamp order; events scheduled for the same instant
// run in the order they were scheduled (stable FIFO tie-break), which keeps
// protocol state machines deterministic.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	nEvent uint64 // total events executed, for instrumentation
}

// Timer is a handle to a scheduled event. It can be cancelled (lazily: the
// event stays in the heap but becomes a no-op) or queried.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the time the timer fires.
func (t *Timer) At() Time { return t.at }

// Cancel prevents the timer's callback from running. Safe to call more than
// once, and safe to call on an already-fired timer.
func (t *Timer) Cancel() { t.cancelled = true }

// Cancelled reports whether Cancel was called.
func (t *Timer) Cancelled() bool { return t.cancelled }

// NewEngine returns an engine with the clock at zero and a random source
// seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All simulation
// components must draw randomness from here to preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nEvent }

// Pending returns the number of events currently queued (including
// cancelled events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at absolute time at. Scheduling in the past panics: it
// would silently corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) *Timer {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, t)
	return t
}

// After runs fn d after the current time.
func (e *Engine) After(d Duration, fn func()) *Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Step executes the next pending event, if any, and reports whether one ran.
// Cancelled events are skipped without being counted.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		t := heap.Pop(&e.queue).(*Timer)
		if t.cancelled {
			continue
		}
		e.now = t.at
		e.nEvent++
		t.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the clock would pass
// until. Events stamped exactly at until still run. The clock is left at
// the later of its current value and until when the horizon is hit.
func (e *Engine) Run(until Time) {
	for len(e.queue) > 0 {
		if e.queue[0].at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue drains. Intended for workloads
// with a natural end (all flows complete); a runaway protocol that
// reschedules itself forever will not terminate, so callers with periodic
// timers should use Run.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}
