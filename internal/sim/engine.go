package sim

import "math/rand"

// Engine is a deterministic discrete-event simulator. Events are executed
// in non-decreasing timestamp order; events scheduled for the same instant
// run in the order they were scheduled (stable FIFO tie-break), which keeps
// protocol state machines deterministic.
//
// The event queue is an inlined 4-ary min-heap ordered by (time, seq): a
// 4-ary layout halves tree depth versus binary, so the sift loops touch
// fewer cache lines per operation, and inlining the comparisons avoids
// container/heap's interface-call overhead. Fired and cancelled events are
// recycled through a free list, so steady-state scheduling allocates
// nothing.
type Engine struct {
	now    Time
	q      []*event // 4-ary min-heap by (at, seq)
	seq    uint64
	rng    *rand.Rand
	nEvent uint64 // total events executed, for instrumentation
	free   *event // recycled events, linked through event.next
}

// event is one scheduled callback. Events are owned by the engine: when
// one fires or is cancelled it returns to the free list and its gen is
// bumped, which atomically invalidates every outstanding Timer handle.
type event struct {
	eng *Engine
	at  Time
	seq uint64
	gen uint32
	idx int32 // heap index; -1 while on the free list

	// Exactly one of fn / fnArgs is set. The argument form lets hot paths
	// (one event per packet hop) schedule a package-level function plus
	// its arguments without allocating a closure.
	fnArgs func(a, b any, i int)
	a, b   any
	i      int
	fn     func()

	next *event // free-list link
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// inert: Cancel is a no-op and Active reports false. A handle stays safe
// to use after its event fires or is cancelled — the generation stamp
// detects that the underlying event object has been recycled, so a stale
// Cancel can never affect a newer timer reusing the same storage.
type Timer struct {
	ev  *event
	gen uint32
}

// Active reports whether the timer is still scheduled (not yet fired and
// not cancelled).
func (t Timer) Active() bool { return t.ev != nil && t.ev.gen == t.gen }

// At returns the time the timer fires, or 0 if it is no longer active.
func (t Timer) At() Time {
	if t.Active() {
		return t.ev.at
	}
	return 0
}

// Cancel removes the timer's event from the queue so it will never run.
// Safe to call more than once, on the zero Timer, and on a timer that
// already fired.
func (t Timer) Cancel() {
	if t.Active() {
		t.ev.eng.remove(t.ev)
	}
}

// NewEngine returns an engine with the clock at zero and a random source
// seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All simulation
// components must draw randomness from here to preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nEvent }

// Pending returns the number of live events currently queued. Cancelled
// events are removed from the queue immediately and never counted.
func (e *Engine) Pending() int { return len(e.q) }

// alloc takes an event from the free list, or makes one.
func (e *Engine) alloc() *event {
	t := e.free
	if t != nil {
		e.free = t.next
		t.next = nil
		return t
	}
	return &event{eng: e}
}

// recycle invalidates outstanding handles and returns t to the free list.
func (e *Engine) recycle(t *event) {
	t.gen++
	t.fn = nil
	t.fnArgs = nil
	t.a, t.b = nil, nil
	t.i = 0
	t.idx = -1
	t.next = e.free
	e.free = t
}

// push allocates an event at absolute time at and inserts it into the
// heap. Scheduling in the past panics: it would silently corrupt
// causality.
func (e *Engine) push(at Time) *event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	t := e.alloc()
	t.at = at
	t.seq = e.seq
	e.seq++
	t.idx = int32(len(e.q))
	e.q = append(e.q, t)
	e.siftUp(int(t.idx))
	return t
}

// Schedule runs fn at absolute time at.
func (e *Engine) Schedule(at Time, fn func()) Timer {
	t := e.push(at)
	t.fn = fn
	return Timer{ev: t, gen: t.gen}
}

// After runs fn d after the current time.
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now.Add(d), fn)
}

// AfterFunc runs fn(a, b, i) d after the current time. Unlike After it
// captures the arguments in the event itself rather than in a closure, so
// per-packet paths can schedule without allocating; fn should be a
// package-level function. Pointer-shaped arguments (the usual case) do
// not allocate when converted to any.
func (e *Engine) AfterFunc(d Duration, fn func(a, b any, i int), a, b any, i int) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	t := e.push(e.now.Add(d))
	t.fnArgs = fn
	t.a, t.b, t.i = a, b, i
	return Timer{ev: t, gen: t.gen}
}

// ScheduleFunc runs fn(a, b, i) at absolute time at — the argument-form
// counterpart of Schedule, used by timeline installers (fault schedules)
// that place many events at pre-computed absolute times without building
// a closure per event.
func (e *Engine) ScheduleFunc(at Time, fn func(a, b any, i int), a, b any, i int) Timer {
	t := e.push(at)
	t.fnArgs = fn
	t.a, t.b, t.i = a, b, i
	return Timer{ev: t, gen: t.gen}
}

// Step executes the next pending event, if any, and reports whether one
// ran. The event is recycled before its callback runs, so the callback may
// immediately reuse the storage by scheduling new events; its own handle
// is already inert by the time it executes.
func (e *Engine) Step() bool {
	if len(e.q) == 0 {
		return false
	}
	t := e.q[0]
	e.popRoot()
	e.now = t.at
	e.nEvent++
	fn, fnArgs, a, b, i := t.fn, t.fnArgs, t.a, t.b, t.i
	e.recycle(t)
	if fnArgs != nil {
		fnArgs(a, b, i)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty or the clock would pass
// until. Events stamped exactly at until still run. The clock is left at
// the later of its current value and until when the horizon is hit.
func (e *Engine) Run(until Time) {
	for len(e.q) > 0 {
		if e.q[0].at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue drains. Intended for workloads
// with a natural end (all flows complete); a runaway protocol that
// reschedules itself forever will not terminate, so callers with periodic
// timers should use Run.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// eventLess is the heap order: earlier time first, scheduling order as the
// tie-break.
func eventLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// popRoot removes the minimum event without recycling it (Step still
// needs its fields).
func (e *Engine) popRoot() {
	n := len(e.q) - 1
	last := e.q[n]
	e.q[n] = nil
	e.q = e.q[:n]
	if n > 0 {
		e.q[0] = last
		last.idx = 0
		e.siftDown(0)
	}
}

// remove deletes an arbitrary queued event (cancellation) and recycles it.
func (e *Engine) remove(t *event) {
	i := int(t.idx)
	n := len(e.q) - 1
	last := e.q[n]
	e.q[n] = nil
	e.q = e.q[:n]
	if i != n {
		e.q[i] = last
		last.idx = int32(i)
		e.siftUp(i)
		if int(last.idx) == i {
			e.siftDown(i)
		}
	}
	e.recycle(t)
}

// siftUp restores the heap above index i (4-ary: parent of i is (i-1)/4).
func (e *Engine) siftUp(i int) {
	q := e.q
	t := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		pt := q[p]
		if !eventLess(t, pt) {
			break
		}
		q[i] = pt
		pt.idx = int32(i)
		i = p
	}
	q[i] = t
	t.idx = int32(i)
}

// siftDown restores the heap below index i (4-ary: children 4i+1..4i+4).
func (e *Engine) siftDown(i int) {
	q := e.q
	n := len(q)
	t := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m, mt := c, q[c]
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if eventLess(q[j], mt) {
				m, mt = j, q[j]
			}
		}
		if !eventLess(mt, t) {
			break
		}
		q[i] = mt
		mt.idx = int32(i)
		i = m
	}
	q[i] = t
	t.idx = int32(i)
}
