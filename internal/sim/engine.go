package sim

import "math/rand"

// Engine is a deterministic discrete-event simulator. Events are executed
// in non-decreasing timestamp order; events scheduled for the same instant
// run in the order they were scheduled (stable FIFO tie-break), which keeps
// protocol state machines deterministic.
//
// The event queue is an inlined 4-ary min-heap ordered by (time, seq): a
// 4-ary layout halves tree depth versus binary, so the sift loops touch
// fewer cache lines per operation, and inlining the comparisons avoids
// container/heap's interface-call overhead. Fired and cancelled events are
// recycled through a free list, so steady-state scheduling allocates
// nothing.
// Sharded execution (see Group) splits one simulation across several
// engines and relies on a two-band ordering of the seq field: ordinary
// events occupy band 0 (engine-local insertion sequence, top bit clear)
// and boundary-link arrivals occupy band 1 (ScheduleArrival, top bit
// set), whose ordinal is derived from the link identity rather than
// insertion order. Band-1 events therefore sort after every band-0 event
// at the same instant, and among themselves in a shard-count-invariant
// order — the property that makes sharded runs byte-identical to serial.
type Engine struct {
	now    Time
	q      []*event // 4-ary min-heap by (at, seq), band-0 events only (heap discipline)
	lad    *ladder  // band-0 events, ladder discipline (nil selects the heap)
	qa     []*event // arrival-band events (ScheduleArrival), same order
	seq    uint64
	seed   int64           //ckpt:skip construction input; the RNG position is captured as Draws
	src    *CountingSource // rng's source, counted so RNG position is checkpointable
	rng    *rand.Rand      //ckpt:skip rebuilt from seed + captured Draws on restore
	nEvent uint64          // total events executed, for instrumentation
	free   *event          //ckpt:skip recycled-event free list, physical layout normalized away by EngineState
	freeN  int             //ckpt:skip free-list length, same normalization as free

	journalOn bool          //ckpt:skip bisection instrumentation, re-armed by StartJournal after resume
	journal   []EventRecord //ckpt:skip bisection instrumentation, not simulation state
}

// QueueDiscipline selects the data structure holding band-0 events.
// Both disciplines implement the identical (time, seq) total order —
// execution order, and therefore every digest, is the same under either;
// only the constant factors differ with event density (DESIGN.md §13).
type QueueDiscipline uint8

const (
	// QueueAuto picks a discipline from the expected event density hint.
	QueueAuto QueueDiscipline = iota
	// QueueHeap is the inlined 4-ary min-heap: fastest at the event
	// densities of small fabrics, where near-sorted pushes terminate
	// their sift almost immediately.
	QueueHeap
	// QueueLadder is the calendar/ladder queue (ladder.go): O(1) bucket
	// appends that win once the pending population is large.
	QueueLadder
)

func (q QueueDiscipline) String() string {
	switch q {
	case QueueHeap:
		return "heap"
	case QueueLadder:
		return "ladder"
	default:
		return "auto"
	}
}

// LadderDensityMin is the expected-pending-events hint at which QueueAuto
// selects the ladder queue. Set from the head-to-head hold-model
// benchmarks in internal/experiments (BenchmarkEngineHold…): the heap
// wins clearly below ~4k pending events, the ladder at and above ~16k;
// the crossover sits between. See DESIGN.md §13.
const LadderDensityMin = 8192

// PickQueue resolves QueueAuto against an expected event-density hint
// (roughly the number of concurrently pending events the simulation will
// hold). Explicit disciplines pass through unchanged.
func PickQueue(q QueueDiscipline, expectedPending int) QueueDiscipline {
	if q != QueueAuto {
		return q
	}
	if expectedPending >= LadderDensityMin {
		return QueueLadder
	}
	return QueueHeap
}

// maxFreeEvents bounds the event free list. A transient event burst
// (fan-in spikes at high load hold 10^6+ concurrent events) would
// otherwise pin its peak allocation for the rest of a long campaign;
// recycles past the bound are dropped for the GC instead. A variable so
// tests can shrink it.
var maxFreeEvents = 1 << 15

// event is one scheduled callback. Events are owned by the engine: when
// one fires or is cancelled it returns to the free list and its gen is
// bumped, which atomically invalidates every outstanding Timer handle.
// Checkpoints capture an event as its execution-order key (at, seq) only:
// the callback fields hold Go closures, which cannot be serialized, and
// the location fields are physical layout that EngineState normalizes
// away (see checkpoint.go). Restore rebinds callbacks via RebindFunc.
type event struct {
	eng *Engine //ckpt:skip owner back-pointer, re-established when the restored engine re-allocates events
	at  Time
	seq uint64
	gen uint32 //ckpt:skip timer-invalidation stamp; outstanding Timers cannot outlive a restore
	idx int32  //ckpt:skip heap slot, physical layout normalized away by EngineState

	// Exactly one of fn / fnArgs is set. The argument form lets hot paths
	// (one event per packet hop) schedule a package-level function plus
	// its arguments without allocating a closure.
	fnArgs func(a, b any, i int) //ckpt:skip closure, rebound by RebindFunc on restore
	a, b   any                   //ckpt:skip closure arguments, rebound with fnArgs
	i      int                   //ckpt:skip closure argument, rebound with fnArgs
	fn     func()                //ckpt:skip closure, rebound by RebindFunc on restore

	// bkt locates the event under the ladder discipline: nil while in a
	// heap (idx is the heap slot), else the unsorted bucket or overflow
	// slice holding it (idx is the slice slot). Always nil under the
	// heap discipline.
	bkt *[]*event //ckpt:skip ladder bucket location, physical layout normalized away by EngineState

	next *event //ckpt:skip free-list link, physical layout normalized away by EngineState
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// inert: Cancel is a no-op and Active reports false. A handle stays safe
// to use after its event fires or is cancelled — the generation stamp
// detects that the underlying event object has been recycled, so a stale
// Cancel can never affect a newer timer reusing the same storage.
type Timer struct {
	ev  *event
	gen uint32
}

// Active reports whether the timer is still scheduled (not yet fired and
// not cancelled).
func (t Timer) Active() bool { return t.ev != nil && t.ev.gen == t.gen }

// At returns the time the timer fires, or 0 if it is no longer active.
func (t Timer) At() Time {
	if t.Active() {
		return t.ev.at
	}
	return 0
}

// Cancel removes the timer's event from the queue so it will never run.
// Safe to call more than once, on the zero Timer, and on a timer that
// already fired.
func (t Timer) Cancel() {
	if t.Active() {
		t.ev.eng.remove(t.ev)
	}
}

// NewEngine returns an engine with the clock at zero, a random source
// seeded with seed, and the heap queue discipline.
func NewEngine(seed int64) *Engine {
	return NewEngineQueue(seed, QueueHeap)
}

// NewEngineQueue returns an engine using the given queue discipline for
// its band-0 events (QueueAuto here means QueueHeap; resolve density
// hints with PickQueue first). The discipline is fixed for the engine's
// lifetime. Execution order — and so every simulation result — is
// identical under either discipline.
func NewEngineQueue(seed int64, q QueueDiscipline) *Engine {
	src := NewCountingSource(seed)
	e := &Engine{seed: seed, src: src, rng: rand.New(src)}
	if q == QueueLadder {
		e.lad = new(ladder)
	}
	return e
}

// Queue reports the engine's band-0 queue discipline.
func (e *Engine) Queue() QueueDiscipline {
	if e.lad != nil {
		return QueueLadder
	}
	return QueueHeap
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was constructed with. Components that
// need their own deterministic random streams (per-device RNGs in the
// sharded fabric) derive them from this.
func (e *Engine) Seed() int64 { return e.seed }

// NextAt returns the timestamp of the earliest pending event, or false
// when the queue is empty. Epoch runners use it to size the next
// conservative window.
func (e *Engine) NextAt() (Time, bool) {
	t := e.peek()
	if t == nil {
		return 0, false
	}
	return t.at, true
}

// Rand returns the engine's deterministic random source. All simulation
// components must draw randomness from here to preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nEvent }

// Pending returns the number of live events currently queued. Cancelled
// events are removed from the queue immediately and never counted.
func (e *Engine) Pending() int {
	n := len(e.q) + len(e.qa)
	if e.lad != nil {
		n += e.lad.n
	}
	return n
}

// alloc takes an event from the free list, or makes one.
//
//lint:coldpath event-slab growth; the free list covers steady state, allocating only while the live event population grows
func (e *Engine) alloc() *event {
	t := e.free
	if t != nil {
		e.free = t.next
		e.freeN--
		t.next = nil
		return t
	}
	return &event{eng: e}
}

// recycle invalidates outstanding handles and returns t to the free
// list — unless the list is already at its bound, in which case the
// event is dropped for the GC so a transient burst's peak does not stay
// resident forever.
func (e *Engine) recycle(t *event) {
	t.gen++
	t.fn = nil
	t.fnArgs = nil
	t.a, t.b = nil, nil
	t.i = 0
	t.idx = -1
	t.bkt = nil
	if e.freeN >= maxFreeEvents {
		return
	}
	t.next = e.free
	e.free = t
	e.freeN++
}

// push allocates an event at absolute time at and inserts it into the
// band-0 queue. Scheduling in the past panics: it would silently corrupt
// causality.
func (e *Engine) push(at Time) *event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	t := e.alloc()
	t.at = at
	t.seq = e.seq
	e.seq++
	if e.lad != nil {
		e.lad.push(t)
		return t
	}
	t.idx = int32(len(e.q))
	//lint:ignore hotalloc heap growth is amortized to the peak event population; the backing array is reused for the rest of the run
	e.q = append(e.q, t)
	siftUp(e.q, int(t.idx))
	return t
}

// mainMin returns the earliest band-0 event without removing it, or nil.
// Under the ladder discipline this may advance the drain front (a pure
// restructuring — pop order is unaffected).
func (e *Engine) mainMin() *event {
	if e.lad != nil {
		return e.lad.min()
	}
	if len(e.q) == 0 {
		return nil
	}
	return e.q[0]
}

// mainPop removes and returns the earliest band-0 event; the caller
// guarantees one exists.
func (e *Engine) mainPop() *event {
	if e.lad != nil {
		return e.lad.pop()
	}
	return popRoot(&e.q)
}

// arrivalBand is the top bit of the seq ordering key. Engine-local
// sequence numbers never reach it, so every ScheduleArrival event sorts
// after every ordinary event at the same timestamp.
const arrivalBand = uint64(1) << 63

// ScheduleArrival runs fn(a, b, i) at absolute time at, ordered among
// same-instant events by the band-1 key rather than by insertion order:
// all arrivals sort after every ordinarily-scheduled event at that
// instant, and among themselves by key. Callers derive the key from
// stable simulation identity (directed link id and per-link sequence),
// which makes the execution order independent of *when* the event was
// inserted — the property cross-shard staging queues need to keep
// sharded runs byte-identical to serial ones. Keys must be unique per
// (time, key) pair; the caller's per-link counters guarantee that.
//
// Arrivals live in their own heap: identity-derived keys are not
// insertion-ordered, and mixing them into the main heap measurably slows
// its sift paths (band-0 pushes are near-sorted, so their sifts terminate
// almost immediately). The split keeps the main heap's comparisons on
// monotonic keys and confines arrival-key comparisons to the small
// in-flight-arrivals heap; Step merges the two roots, where the band bit
// in seq settles every same-instant tie in the main heap's favor.
//
//lint:hotpath one event per packet hop; 0-alloc contract of BenchmarkFabricForwarding
func (e *Engine) ScheduleArrival(at Time, key uint64, fn func(a, b any, i int), a, b any, i int) {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	t := e.alloc()
	t.at = at
	t.seq = arrivalBand | key
	t.idx = int32(len(e.qa))
	//lint:ignore hotalloc arrival-heap growth is amortized to the peak in-flight arrival count; the backing array is reused for the rest of the run
	e.qa = append(e.qa, t)
	siftUp(e.qa, int(t.idx))
	t.fnArgs = fn
	t.a, t.b, t.i = a, b, i
}

// Schedule runs fn at absolute time at.
func (e *Engine) Schedule(at Time, fn func()) Timer {
	t := e.push(at)
	t.fn = fn
	return Timer{ev: t, gen: t.gen}
}

// After runs fn d after the current time.
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now.Add(d), fn)
}

// AfterFunc runs fn(a, b, i) d after the current time. Unlike After it
// captures the arguments in the event itself rather than in a closure, so
// per-packet paths can schedule without allocating; fn should be a
// package-level function. Pointer-shaped arguments (the usual case) do
// not allocate when converted to any.
//
//lint:hotpath per-packet timer scheduling; 0-alloc contract of the forwarding benchmarks
func (e *Engine) AfterFunc(d Duration, fn func(a, b any, i int), a, b any, i int) Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	t := e.push(e.now.Add(d))
	t.fnArgs = fn
	t.a, t.b, t.i = a, b, i
	return Timer{ev: t, gen: t.gen}
}

// ScheduleFunc runs fn(a, b, i) at absolute time at — the argument-form
// counterpart of Schedule, used by timeline installers (fault schedules)
// that place many events at pre-computed absolute times without building
// a closure per event.
func (e *Engine) ScheduleFunc(at Time, fn func(a, b any, i int), a, b any, i int) Timer {
	t := e.push(at)
	t.fnArgs = fn
	t.a, t.b, t.i = a, b, i
	return Timer{ev: t, gen: t.gen}
}

// Step executes the next pending event, if any, and reports whether one
// ran. The event is recycled before its callback runs, so the callback may
// immediately reuse the storage by scheduling new events; its own handle
// is already inert by the time it executes.
//
//lint:hotpath event drain loop; 0-alloc contract of BenchmarkEngineHold at both disciplines
func (e *Engine) Step() bool {
	var t *event
	if len(e.qa) == 0 {
		if t = e.mainMin(); t == nil {
			return false
		}
		t = e.mainPop()
	} else if m := e.mainMin(); m == nil || eventLess(e.qa[0], m) {
		t = popRoot(&e.qa)
	} else {
		t = e.mainPop()
	}
	e.now = t.at
	e.nEvent++
	if e.journalOn {
		//lint:ignore hotalloc opt-in replay journal, off on every measured path; the guard above keeps default runs alloc-free
		e.journal = append(e.journal, EventRecord{At: t.at, Seq: t.seq})
	}
	fn, fnArgs, a, b, i := t.fn, t.fnArgs, t.a, t.b, t.i
	e.recycle(t)
	if fnArgs != nil {
		fnArgs(a, b, i)
	} else {
		fn()
	}
	return true
}

// SkipTo advances the clock to at without executing anything. Callers
// must have checked that no pending event is stamped at or before at
// (Group's idle-skip dispatch does, via NextAt); otherwise events would
// run late. Equivalent to Run(at) on an idle engine, minus the queue
// peeks.
func (e *Engine) SkipTo(at Time) {
	if at > e.now {
		e.now = at
	}
}

// Run executes events until the queue is empty or the clock would pass
// until. Events stamped exactly at until still run. The clock is left at
// the later of its current value and until when the horizon is hit.
func (e *Engine) Run(until Time) {
	for {
		t := e.peek()
		if t == nil || t.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// peek returns the next event to run without removing it, or nil when
// both bands are empty. Arrival events carry the band bit in seq, so
// eventLess breaks every same-instant tie toward the main band.
func (e *Engine) peek() *event {
	m := e.mainMin()
	if len(e.qa) == 0 {
		return m
	}
	if m == nil || eventLess(e.qa[0], m) {
		return e.qa[0]
	}
	return m
}

// RunAll executes events until the queue drains. Intended for workloads
// with a natural end (all flows complete); a runaway protocol that
// reschedules itself forever will not terminate, so callers with periodic
// timers should use Run.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// eventLess is the heap order: earlier time first, scheduling order as the
// tie-break.
func eventLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// popRoot removes and returns a heap's minimum event without recycling
// it (Step still needs its fields).
func popRoot(qp *[]*event) *event {
	q := *qp
	t := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	*qp = q[:n]
	if n > 0 {
		q[0] = last
		last.idx = 0
		siftDown(q[:n], 0)
	}
	return t
}

// remove deletes an arbitrary queued event (cancellation) and recycles
// it. Only band-0 events can be cancelled: ScheduleArrival returns no
// Timer, so arrival events never come through here.
func (e *Engine) remove(t *event) {
	if e.lad != nil {
		e.lad.remove(t)
	} else {
		heapRemove(&e.q, t)
	}
	e.recycle(t)
}

// heapRemove deletes an arbitrary event from a (time, seq) heap.
func heapRemove(qp *[]*event, t *event) {
	q := *qp
	i := int(t.idx)
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	*qp = q[:n]
	if i != n {
		q = q[:n]
		q[i] = last
		last.idx = int32(i)
		siftUp(q, i)
		if int(last.idx) == i {
			siftDown(q, i)
		}
	}
}

// siftUp restores the heap above index i (4-ary: parent of i is (i-1)/4).
func siftUp(q []*event, i int) {
	t := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		pt := q[p]
		if !eventLess(t, pt) {
			break
		}
		q[i] = pt
		pt.idx = int32(i)
		i = p
	}
	q[i] = t
	t.idx = int32(i)
}

// siftDown restores the heap below index i (4-ary: children 4i+1..4i+4).
func siftDown(q []*event, i int) {
	n := len(q)
	t := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m, mt := c, q[c]
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if eventLess(q[j], mt) {
				m, mt = j, q[j]
			}
		}
		if !eventLess(mt, t) {
			break
		}
		q[i] = mt
		mt.idx = int32(i)
		i = m
	}
	q[i] = t
	t.idx = int32(i)
}
