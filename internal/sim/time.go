// Package sim provides a deterministic discrete-event simulation engine:
// a nanosecond-resolution virtual clock (stored in picoseconds so that
// sub-nanosecond serialization times on 400 Gbps links stay exact), a
// binary-heap event queue with stable FIFO ordering for simultaneous
// events, cancellable timers, and a seeded random source.
//
// The engine is single-threaded by design: all hosts, switches and links
// of a simulated datacenter share one event loop, which makes runs with
// identical seeds bit-for-bit reproducible.
package sim

import "fmt"

// Time is a point in simulated time, measured in integer picoseconds.
// Picosecond resolution keeps the serialization delay of a 64-byte control
// packet on a 400 Gbps link (1.28 ns) exact, avoiding the cumulative
// rounding drift a nanosecond clock would suffer.
type Time int64

// Duration is a span of simulated time in picoseconds. Time and Duration
// are distinct types so that "point + span" arithmetic is explicit.
type Duration int64

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts t to floating-point seconds since the start of the run.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e6 }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Microseconds converts d to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e6 }

// Nanoseconds converts d to floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / 1e3 }

// Scale returns d scaled by x, rounding to the nearest picosecond.
func (d Duration) Scale(x float64) Duration {
	return Duration(float64(d)*x + 0.5)
}

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

func (d Duration) String() string { return fmt.Sprintf("%.3fus", d.Microseconds()) }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s*1e12 + 0.5) }

// FromMicroseconds converts floating-point microseconds to a Duration.
func FromMicroseconds(us float64) Duration { return Duration(us*1e6 + 0.5) }

// TransmissionTime returns the time to serialize size bytes onto a link of
// rateBps bits per second.
func TransmissionTime(sizeBytes int, rateBps float64) Duration {
	return Duration(float64(sizeBytes*8)/rateBps*1e12 + 0.5)
}
