package sim

import "testing"

// TestGroupEpochs runs two engines through barrier-synchronized epochs
// and checks each executes exactly its own events, in time order, with
// the barrier clock agreeing across shards.
func TestGroupEpochs(t *testing.T) {
	a, b := NewEngine(1), NewEngine(1)
	g := NewGroup([]*Engine{a, b})
	defer g.Close()

	var ran []Time
	a.Schedule(10, func() { ran = append(ran, a.Now()) })
	var ranB []Time
	b.Schedule(5, func() { ranB = append(ranB, b.Now()) })
	b.Schedule(25, func() { ranB = append(ranB, b.Now()) })

	g.RunEpoch(15)
	if len(ran) != 1 || ran[0] != 10 {
		t.Fatalf("shard 0 ran %v, want [10]", ran)
	}
	if len(ranB) != 1 || ranB[0] != 5 {
		t.Fatalf("shard 1 ran %v, want [5]", ranB)
	}
	if a.Now() != 15 || b.Now() != 15 || g.Now() != 15 {
		t.Fatalf("clocks after epoch: %v %v %v, want 15", a.Now(), b.Now(), g.Now())
	}
	if at, ok := g.NextAt(); !ok || at != 25 {
		t.Fatalf("NextAt = %v %v, want 25 true", at, ok)
	}
	g.RunEpoch(30)
	if len(ranB) != 2 || ranB[1] != 25 {
		t.Fatalf("shard 1 after second epoch: %v", ranB)
	}
	if g.Pending() != 0 {
		t.Fatalf("pending %d after drain", g.Pending())
	}
	if g.Events() != 3 {
		t.Fatalf("events %d, want 3", g.Events())
	}
}

// TestGroupSingle checks the n=1 degenerate path is plain Engine.Run.
func TestGroupSingle(t *testing.T) {
	e := NewEngine(7)
	g := NewGroup([]*Engine{e})
	fired := false
	e.Schedule(3, func() { fired = true })
	g.RunEpoch(3)
	if !fired || g.Now() != 3 {
		t.Fatalf("single-engine epoch: fired=%v now=%v", fired, g.Now())
	}
	g.Close()
	g.Close() // idempotent
}

// TestGroupCrossScheduling has shard 0's events schedule onto shard 1's
// engine for a later epoch — the pattern the netsim staging drain uses
// between epochs.
func TestGroupCrossScheduling(t *testing.T) {
	a, b := NewEngine(1), NewEngine(1)
	g := NewGroup([]*Engine{a, b})
	defer g.Close()

	var got Time
	a.Schedule(10, func() {})
	g.RunEpoch(10)
	// Between epochs (barrier held), scheduling on any shard is safe.
	b.Schedule(20, func() { got = b.Now() })
	g.RunEpoch(30)
	if got != 20 {
		t.Fatalf("cross-scheduled event ran at %v, want 20", got)
	}
}
