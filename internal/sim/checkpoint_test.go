package sim

import (
	"math/rand"
	"testing"
)

// captureAndRestore snapshots src, restores into dst (rebinding each
// event to append its record to got), and returns the captured state.
func captureAndRestore(t *testing.T, src, dst *Engine, got *[]EventRecord) EngineState {
	t.Helper()
	st := src.CaptureState()
	err := dst.RestoreState(st, func(rec EventRecord) (func(), bool) {
		return func() { *got = append(*got, rec) }, true
	})
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	return st
}

// fillRandom schedules n events over [now, now+spread) on e, returning
// the expected pop order implicitly via the engine's own execution.
func fillRandom(e *Engine, rng *rand.Rand, n int, spread int64) {
	for i := 0; i < n; i++ {
		at := e.Now().Add(Duration(rng.Int63n(spread)))
		e.Schedule(at, func() {})
	}
}

func testRoundTripPopOrder(t *testing.T, q QueueDiscipline, fill func(e *Engine)) {
	src := NewEngineQueue(7, q)
	fill(src)

	st := src.CaptureState()
	if st.Queue != q {
		t.Fatalf("captured discipline %v, want %v", st.Queue, q)
	}

	// Restore into both disciplines; pop order must equal the captured
	// execution order (st.Pending is already sorted into it).
	for _, dq := range []QueueDiscipline{QueueHeap, QueueLadder} {
		dst := NewEngineQueue(7, dq)
		var got []EventRecord
		err := dst.RestoreState(st, func(rec EventRecord) (func(), bool) {
			return func() { got = append(got, rec) }, true
		})
		if err != nil {
			t.Fatalf("restore into %v: %v", dq, err)
		}
		if dst.Now() != st.Now || dst.Pending() != len(st.Pending) {
			t.Fatalf("restore into %v: now=%d pending=%d, want %d/%d",
				dq, dst.Now(), dst.Pending(), st.Now, len(st.Pending))
		}
		dst.RunAll()
		if len(got) != len(st.Pending) {
			t.Fatalf("restore into %v: popped %d events, want %d", dq, len(got), len(st.Pending))
		}
		for i, rec := range st.Pending {
			if got[i] != rec {
				t.Fatalf("restore into %v: pop %d = %+v, want %+v", dq, i, got[i], rec)
			}
		}
		// The restored engine continues allocating seqs where the source
		// left off.
		if dst.seq != st.Seq {
			t.Fatalf("restore into %v: seq %d, want %d", dq, dst.seq, st.Seq)
		}
	}
}

func TestCaptureRestoreHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	testRoundTripPopOrder(t, QueueHeap, func(e *Engine) {
		e.Run(1000)
		fillRandom(e, rng, 500, 50_000)
	})
}

func TestCaptureRestoreLadderOverflowTier(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	testRoundTripPopOrder(t, QueueLadder, func(e *Engine) {
		// Everything lands in the overflow tier (fresh ladder, activeEnd
		// 0), including far-future stragglers.
		fillRandom(e, rng, 300, 10_000)
		e.Schedule(5_000_000, func() {})
		e.Schedule(5_000_001, func() {})
	})
}

func TestCaptureRestoreLadderSpawnedRung(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	testRoundTripPopOrder(t, QueueLadder, func(e *Engine) {
		// Force a rung spawn: > ladSpawnMin events dense in one narrow
		// range plus a wide spread, then drain past the first bucket so
		// advance() re-buckets and spawns a min-anchored finer segment.
		for i := 0; i < ladSpawnMin+200; i++ {
			e.Schedule(Time(800_000+rng.Int63n(2_000)), func() {})
		}
		fillRandom(e, rng, 400, 3_000_000)
		e.Run(700_000) // drain into the segment structure mid-ladder
		if len(e.lad.segs) == 0 {
			t.Fatal("test did not build any ladder segments")
		}
		fillRandom(e, rng, 100, 1_000_000) // gap-clamped inserts at the drained frontier
	})
}

func TestCaptureRestoreLadderCancelledSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	testRoundTripPopOrder(t, QueueLadder, func(e *Engine) {
		var timers []Timer
		for i := 0; i < 2_000; i++ {
			at := Time(rng.Int63n(500_000))
			timers = append(timers, e.Schedule(at, func() {}))
		}
		e.Run(100_000) // move the drain front into the structure
		// Cancel a third of what's left — swap-deleted bucket slots and
		// heap-removed drain-front entries must simply be absent from the
		// capture.
		for i, tm := range timers {
			if i%3 == 0 {
				tm.Cancel()
			}
		}
		fillRandom(e, rng, 200, 400_000)
	})
}

func TestCaptureRestoreArrivalBand(t *testing.T) {
	// Band-1 events keep their identity-derived keys through a round
	// trip and still sort after same-instant band-0 events.
	src := NewEngine(5)
	src.Schedule(100, func() {})
	src.ScheduleArrival(100, 7, func(a, b any, i int) {}, nil, nil, 0)
	src.ScheduleArrival(100, 3, func(a, b any, i int) {}, nil, nil, 0)
	src.Schedule(50, func() {})

	st := src.CaptureState()
	want := []EventRecord{
		{At: 50, Seq: 1},
		{At: 100, Seq: 0},
		{At: 100, Seq: arrivalBand | 3},
		{At: 100, Seq: arrivalBand | 7},
	}
	if len(st.Pending) != len(want) {
		t.Fatalf("captured %d events, want %d", len(st.Pending), len(want))
	}
	for i := range want {
		if st.Pending[i] != want[i] {
			t.Fatalf("capture[%d] = %+v, want %+v", i, st.Pending[i], want[i])
		}
	}

	dst := NewEngine(5)
	var got []EventRecord
	captureAndRestore(t, src, dst, &got)
	dst.RunAll()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCaptureIsPure(t *testing.T) {
	// Capturing must not perturb the run: two identical engines, one
	// captured mid-run repeatedly, drain identically.
	for _, q := range []QueueDiscipline{QueueHeap, QueueLadder} {
		a := NewEngineQueue(9, q)
		b := NewEngineQueue(9, q)
		var ta, tb []Time
		rngA, rngB := rand.New(rand.NewSource(8)), rand.New(rand.NewSource(8))
		schedule := func(e *Engine, rng *rand.Rand, out *[]Time) {
			for i := 0; i < 2_000; i++ {
				at := Time(rng.Int63n(1_000_000))
				e.Schedule(at, func() { *out = append(*out, e.Now()) })
			}
		}
		schedule(a, rngA, &ta)
		schedule(b, rngB, &tb)
		for _, horizon := range []Time{100_000, 400_000, 900_000} {
			a.Run(horizon)
			b.Run(horizon)
			_ = a.CaptureState() // a is captured, b is the control
		}
		a.RunAll()
		b.RunAll()
		if len(ta) != len(tb) {
			t.Fatalf("%v: %d vs %d events", q, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("%v: event %d at %d vs %d", q, i, ta[i], tb[i])
			}
		}
	}
}

func TestRestoreStateRejectsInvalid(t *testing.T) {
	okRebind := func(EventRecord) (func(), bool) { return func() {}, true }
	base := func() (*Engine, EngineState) {
		e := NewEngine(1)
		e.Schedule(10, func() {})
		e.Schedule(20, func() {})
		e.Run(5)
		return NewEngine(1), e.CaptureState()
	}

	t.Run("event before clock", func(t *testing.T) {
		dst, st := base()
		st.Pending[0].At = st.Now - 1
		if err := dst.RestoreState(st, okRebind); err == nil {
			t.Fatal("accepted event before clock")
		}
	})
	t.Run("unallocated seq", func(t *testing.T) {
		dst, st := base()
		st.Pending[1].Seq = st.Seq + 5
		if err := dst.RestoreState(st, okRebind); err == nil {
			t.Fatal("accepted seq beyond allocator")
		}
	})
	t.Run("unordered", func(t *testing.T) {
		dst, st := base()
		st.Pending[0], st.Pending[1] = st.Pending[1], st.Pending[0]
		if err := dst.RestoreState(st, okRebind); err == nil {
			t.Fatal("accepted unsorted pending list")
		}
	})
	t.Run("rebind refusal leaves engine untouched", func(t *testing.T) {
		dst, st := base()
		dst.Schedule(99, func() {})
		before := dst.CaptureState()
		err := dst.RestoreState(st, func(rec EventRecord) (func(), bool) {
			return nil, rec.Seq == 0 // refuse the second event
		})
		if err == nil {
			t.Fatal("accepted refused rebinding")
		}
		after := dst.CaptureState()
		if len(after.Pending) != len(before.Pending) || after.Now != before.Now || after.Seq != before.Seq {
			t.Fatalf("failed restore mutated engine: %+v -> %+v", before, after)
		}
	})
}

// FuzzRestoreState drives arbitrary states through RestoreState: it must
// either succeed (and then drain in exactly the stated order) or reject
// with the target engine left byte-for-byte as it was.
func FuzzRestoreState(f *testing.F) {
	f.Add(int64(1), uint64(3), []byte{1, 0, 2, 0, 3, 1})
	f.Add(int64(50), uint64(0), []byte{})
	f.Add(int64(0), uint64(2), []byte{5, 0, 5, 0})
	f.Fuzz(func(t *testing.T, now int64, seq uint64, raw []byte) {
		st := EngineState{Now: Time(now), Seq: seq}
		for i := 0; i+1 < len(raw); i += 2 {
			rec := EventRecord{At: Time(now) + Time(raw[i]), Seq: uint64(raw[i+1])}
			if raw[i+1]&0x80 != 0 {
				rec.Seq = arrivalBand | uint64(raw[i+1]&0x7f)
			}
			st.Pending = append(st.Pending, rec)
		}
		for _, q := range []QueueDiscipline{QueueHeap, QueueLadder} {
			dst := NewEngineQueue(2, q)
			dst.Schedule(Time(now)+1_000_000, func() {})
			dst.Run(Time(now) / 2)
			before := dst.CaptureState()
			var got []EventRecord
			err := dst.RestoreState(st, func(rec EventRecord) (func(), bool) {
				return func() { got = append(got, rec) }, true
			})
			if err != nil {
				after := dst.CaptureState()
				if after.Now != before.Now || after.Seq != before.Seq || len(after.Pending) != len(before.Pending) {
					t.Fatalf("%v: failed restore mutated engine", q)
				}
				continue
			}
			dst.RunAll()
			if len(got) != len(st.Pending) {
				t.Fatalf("%v: drained %d events, want %d", q, len(got), len(st.Pending))
			}
			for i, rec := range st.Pending {
				if got[i] != rec {
					t.Fatalf("%v: pop %d = %+v, want %+v", q, i, got[i], rec)
				}
			}
		}
	})
}

func TestCountingSourceStreamIdentity(t *testing.T) {
	// Wrapping must not change the stream rand.Rand produces.
	plain := rand.New(rand.NewSource(42))
	counted := rand.New(NewCountingSource(42))
	for i := 0; i < 1_000; i++ {
		if a, b := plain.Int63(), counted.Int63(); a != b {
			t.Fatalf("Int63 %d: %d vs %d", i, a, b)
		}
	}
	if a, b := plain.Float64(), counted.Float64(); a != b {
		t.Fatalf("Float64: %v vs %v", a, b)
	}
	if a, b := plain.Intn(97), counted.Intn(97); a != b {
		t.Fatalf("Intn: %d vs %d", a, b)
	}
}

func TestCountingSourceSkip(t *testing.T) {
	a := NewCountingSource(7)
	r := rand.New(a)
	for i := 0; i < 137; i++ {
		r.Int63()
	}
	n := a.Draws()
	next := r.Int63()

	b := NewCountingSource(7)
	b.Skip(n)
	if b.Draws() != n {
		t.Fatalf("Draws after Skip = %d, want %d", b.Draws(), n)
	}
	if got := rand.New(b).Int63(); got != next {
		t.Fatalf("post-skip draw %d, want %d", got, next)
	}
}

func TestJournal(t *testing.T) {
	e := NewEngine(3)
	e.Schedule(10, func() {})
	e.Schedule(10, func() {})
	e.Schedule(30, func() {})
	e.Run(20) // two events before the journal starts... none recorded
	if j := e.TakeJournal(); len(j) != 0 {
		t.Fatalf("journal recorded %d events while off", len(j))
	}
	e.StartJournal()
	e.Schedule(40, func() {})
	e.RunAll()
	j := e.TakeJournal()
	want := []EventRecord{{At: 30, Seq: 2}, {At: 40, Seq: 3}}
	if len(j) != len(want) {
		t.Fatalf("journal has %d events, want %d", len(j), len(want))
	}
	for i := range want {
		if j[i] != want[i] {
			t.Fatalf("journal[%d] = %+v, want %+v", i, j[i], want[i])
		}
	}
	// TakeJournal resets the window but keeps recording.
	e.Schedule(50, func() {})
	e.RunAll()
	if j := e.TakeJournal(); len(j) != 1 || j[0] != (EventRecord{At: 50, Seq: 4}) {
		t.Fatalf("second window = %+v", j)
	}
}

func TestGroupCaptureState(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2)}
	engines[0].Schedule(10, func() {})
	g := NewGroup(engines)
	defer g.Close()
	g.RunEpoch(100)
	g.RunEpoch(200)
	st := g.CaptureState()
	if st.Epochs != 2 || len(st.Dispatched) != 2 || len(st.Skipped) != 2 {
		t.Fatalf("group state = %+v", st)
	}
	if st.Dispatched[0] != 2 || st.Skipped[1] != 2 {
		t.Fatalf("counters = %+v", st)
	}
	st.Dispatched[0] = 99 // must be a copy
	if g.Dispatched(0) == 99 {
		t.Fatal("CaptureState aliased group counters")
	}
}
