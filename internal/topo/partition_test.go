package topo

import (
	"reflect"
	"testing"
)

// TestPartitionUnits pins the partition-unit counts of the stock
// topologies: a leaf-spine splits into racks + spines, a fat-tree into
// pods + cores.
func TestPartitionUnits(t *testing.T) {
	cases := []struct {
		name string
		topo *Topology
		want int
	}{
		{"leafspine-8", SmallLeafSpine().Build(), 4},      // 2 racks + 2 spines
		{"leafspine-144", DefaultLeafSpine().Build(), 13}, // 9 racks + 4 spines
		{"fattree-16", SmallFatTree().Build(), 8},         // 4 pods + 4 cores
	}
	for _, c := range cases {
		if got := MaxShards(c.topo); got != c.want {
			t.Errorf("%s: MaxShards = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestMakePartitionErrors(t *testing.T) {
	tp := SmallLeafSpine().Build()
	if _, err := MakePartition(tp, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MakePartition(tp, MaxShards(tp)+1); err == nil {
		t.Error("n beyond unit count accepted")
	}
}

// TestMakePartitionInvariants checks, for every shard count a topology
// supports: hosts co-located with their ToR, only boundary links
// crossing shards, a positive lookahead at n > 1, and determinism.
func TestMakePartitionInvariants(t *testing.T) {
	for _, tp := range []*Topology{SmallLeafSpine().Build(), SmallFatTree().Build()} {
		max := MaxShards(tp)
		for n := 1; n <= max; n++ {
			p, err := MakePartition(tp, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", tp.Name, n, err)
			}
			if p.NumShards != n {
				t.Fatalf("%s n=%d: NumShards %d", tp.Name, n, p.NumShards)
			}
			for h := 0; h < tp.NumHosts; h++ {
				if p.ShardOfHost(h) != p.ShardOfSwitch(tp.HostSwitch[h]) {
					t.Fatalf("%s n=%d: host %d not on its ToR's shard", tp.Name, n, h)
				}
			}
			seen := make(map[int]bool)
			for _, sw := range tp.Switches {
				seen[p.ShardOfSwitch(sw.ID)] = true
				for pi, port := range sw.Ports {
					if port.ToHost || port.Boundary {
						continue
					}
					if p.ShardOfSwitch(sw.ID) != p.ShardOfSwitch(port.Peer) {
						t.Fatalf("%s n=%d: non-boundary link sw%d:%d crosses shards", tp.Name, n, sw.ID, pi)
					}
				}
			}
			if len(seen) != n {
				t.Errorf("%s n=%d: only %d shards populated", tp.Name, n, len(seen))
			}
			if n > 1 && p.Lookahead <= 0 {
				t.Errorf("%s n=%d: lookahead %v", tp.Name, n, p.Lookahead)
			}
			q, err := MakePartition(tp, n)
			if err != nil || !reflect.DeepEqual(p, q) {
				t.Errorf("%s n=%d: partition not deterministic", tp.Name, n)
			}
		}
	}
}
