package topo

import (
	"reflect"
	"testing"
)

// TestPartitionUnits pins the partition-unit counts of the stock
// topologies: a leaf-spine splits into racks + spines, a fat-tree into
// pods + cores.
func TestPartitionUnits(t *testing.T) {
	cases := []struct {
		name string
		topo *Topology
		want int
	}{
		{"leafspine-8", SmallLeafSpine().Build(), 4},      // 2 racks + 2 spines
		{"leafspine-144", DefaultLeafSpine().Build(), 13}, // 9 racks + 4 spines
		{"fattree-16", SmallFatTree().Build(), 8},         // 4 pods + 4 cores
	}
	for _, c := range cases {
		if got := MaxShards(c.topo); got != c.want {
			t.Errorf("%s: MaxShards = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestMakePartitionBalance1024 checks the weighted-LPT placement on the
// paper's 1024-host FatTree (16 pods + 64 cores = 80 units) at the shard
// counts the scale campaign sweeps. Pods are indivisible, so perfect
// balance means every host-bearing shard holds exactly pods' worth of
// hosts: at 16 shards one pod (64 hosts) plus 4 cores each; at 64
// shards no shard may hold more than one pod and every shard must own
// at least one unit.
func TestMakePartitionBalance1024(t *testing.T) {
	tp := DefaultFatTree().Build()
	if got := MaxShards(tp); got != 80 {
		t.Fatalf("fattree-1024 has %d units, want 80", got)
	}
	for _, n := range []int{8, 16, 64, 80} {
		p, err := MakePartition(tp, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		hosts := make([]int, n)
		units := make([]int, n)
		seen := map[int32]bool{}
		for h := 0; h < tp.NumHosts; h++ {
			hosts[p.ShardOfHost(h)]++
		}
		for _, sw := range tp.Switches {
			if !seen[p.SwitchShard[sw.ID]] {
				seen[p.SwitchShard[sw.ID]] = true
			}
		}
		for k := 0; k < n; k++ {
			if !seen[int32(k)] {
				t.Errorf("n=%d: shard %d owns no switches", n, k)
			}
			_ = units
		}
		podHosts := 1024 / 16
		wantMax := podHosts * ((16 + n - 1) / n) // ceil(pods/shards) pods each
		for k, hc := range hosts {
			if hc > wantMax {
				t.Errorf("n=%d: shard %d holds %d hosts, LPT bound is %d", n, k, hc, wantMax)
			}
		}
		if n >= 16 {
			// Every pod on its own shard: exactly 16 shards with 64 hosts.
			withHosts := 0
			for _, hc := range hosts {
				if hc == podHosts {
					withHosts++
				} else if hc != 0 {
					t.Errorf("n=%d: shard holds %d hosts, want 0 or %d", n, hc, podHosts)
				}
			}
			if withHosts != 16 {
				t.Errorf("n=%d: %d host-bearing shards, want 16", n, withHosts)
			}
		}
	}
}

func TestMakePartitionErrors(t *testing.T) {
	tp := SmallLeafSpine().Build()
	if _, err := MakePartition(tp, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MakePartition(tp, MaxShards(tp)+1); err == nil {
		t.Error("n beyond unit count accepted")
	}
}

// TestMakePartitionInvariants checks, for every shard count a topology
// supports: hosts co-located with their ToR, only boundary links
// crossing shards, a positive lookahead at n > 1, and determinism.
func TestMakePartitionInvariants(t *testing.T) {
	for _, tp := range []*Topology{SmallLeafSpine().Build(), SmallFatTree().Build()} {
		max := MaxShards(tp)
		for n := 1; n <= max; n++ {
			p, err := MakePartition(tp, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", tp.Name, n, err)
			}
			if p.NumShards != n {
				t.Fatalf("%s n=%d: NumShards %d", tp.Name, n, p.NumShards)
			}
			for h := 0; h < tp.NumHosts; h++ {
				if p.ShardOfHost(h) != p.ShardOfSwitch(tp.HostSwitch[h]) {
					t.Fatalf("%s n=%d: host %d not on its ToR's shard", tp.Name, n, h)
				}
			}
			seen := make(map[int]bool)
			for _, sw := range tp.Switches {
				seen[p.ShardOfSwitch(sw.ID)] = true
				for pi, port := range sw.Ports {
					if port.ToHost || port.Boundary {
						continue
					}
					if p.ShardOfSwitch(sw.ID) != p.ShardOfSwitch(port.Peer) {
						t.Fatalf("%s n=%d: non-boundary link sw%d:%d crosses shards", tp.Name, n, sw.ID, pi)
					}
				}
			}
			if len(seen) != n {
				t.Errorf("%s n=%d: only %d shards populated", tp.Name, n, len(seen))
			}
			if n > 1 && p.Lookahead <= 0 {
				t.Errorf("%s n=%d: lookahead %v", tp.Name, n, p.Lookahead)
			}
			q, err := MakePartition(tp, n)
			if err != nil || !reflect.DeepEqual(p, q) {
				t.Errorf("%s n=%d: partition not deterministic", tp.Name, n)
			}
		}
	}
}
