package topo

import (
	"fmt"

	"dcpim/internal/sim"
)

// LeafSpineConfig parameterizes a two-tier leaf-spine fabric: Racks leaf
// switches each attaching HostsPerRack hosts at HostRate, fully meshed to
// Spines spine switches at SpineRate.
type LeafSpineConfig struct {
	Racks        int
	HostsPerRack int
	Spines       int
	HostRate     float64 // access link rate, bits/s
	SpineRate    float64 // leaf↔spine link rate, bits/s
	PropDelay    sim.Duration
	SwitchDelay  sim.Duration
	HostDelay    sim.Duration
	Name         string
}

// DefaultLeafSpine returns the paper's default simulation topology
// (Table 1): 9 racks × 16 hosts = 144 hosts, 4 spines, 100 Gbps access,
// 400 Gbps core, 200 ns propagation, 450 ns switch processing. The host
// stack latency is calibrated (225 ns per send/receive) so that the
// unloaded data RTT is 5.8 µs and the control RTT is ≈5.2 µs, matching
// §3.4's worked example (BDP = 72.5 KB).
func DefaultLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{
		Racks: 9, HostsPerRack: 16, Spines: 4,
		HostRate: 100e9, SpineRate: 400e9,
		PropDelay:   200 * sim.Nanosecond,
		SwitchDelay: 450 * sim.Nanosecond,
		HostDelay:   225 * sim.Nanosecond,
		Name:        "leafspine-144",
	}
}

// OversubscribedLeafSpine returns the paper's 2:1 oversubscribed variant:
// identical to the default but with 200 Gbps leaf↔spine links.
func OversubscribedLeafSpine() LeafSpineConfig {
	c := DefaultLeafSpine()
	c.SpineRate = 200e9
	c.Name = "leafspine-144-oversub2"
	return c
}

// TestbedLeafSpine approximates the paper's 32-server CloudLab testbed
// (§4.2): 2 racks × 16 hosts, 10 Gbps links everywhere, and a software
// host stack (kernel-bypass DPDK, but still microsecond-scale end-host
// latency) giving a control RTT of roughly 8 µs.
func TestbedLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{
		Racks: 2, HostsPerRack: 16, Spines: 2,
		HostRate: 10e9, SpineRate: 10e9,
		PropDelay:   200 * sim.Nanosecond,
		SwitchDelay: 450 * sim.Nanosecond,
		HostDelay:   750 * sim.Nanosecond,
		Name:        "testbed-32",
	}
}

// SmallLeafSpine returns a 2-rack, 8-host topology convenient for unit and
// integration tests: same link technology as the default but small enough
// that full simulations finish in milliseconds of wall-clock time.
func SmallLeafSpine() LeafSpineConfig {
	c := DefaultLeafSpine()
	c.Racks, c.HostsPerRack, c.Spines = 2, 4, 2
	c.Name = "leafspine-8"
	return c
}

// Build constructs the topology graph and routing tables.
func (c LeafSpineConfig) Build() *Topology {
	if c.Racks <= 0 || c.HostsPerRack <= 0 || c.Spines <= 0 {
		panic(fmt.Sprintf("topo: invalid leaf-spine config %+v", c))
	}
	n := c.Racks * c.HostsPerRack
	t := &Topology{
		Name:        c.Name,
		NumHosts:    n,
		HostRate:    c.HostRate,
		HostDelay:   c.HostDelay,
		SwitchDelay: c.SwitchDelay,
		HostSwitch:  make([]int, n),
		HostPort:    make([]int, n),
		HostLink:    Port{Rate: c.HostRate, Delay: c.PropDelay},

		maxPathSwitches: 3, // leaf, spine, leaf
	}

	// Switch ids: leaves 0..Racks-1, spines Racks..Racks+Spines-1.
	for l := 0; l < c.Racks; l++ {
		sw := &Switch{ID: l}
		// Downlinks: ports 0..HostsPerRack-1.
		for h := 0; h < c.HostsPerRack; h++ {
			host := l*c.HostsPerRack + h
			sw.Ports = append(sw.Ports, Port{
				ToHost: true, Peer: host, PeerPort: -1,
				Rate: c.HostRate, Delay: c.PropDelay,
			})
			t.HostSwitch[host] = l
			t.HostPort[host] = h
		}
		// Uplinks: ports HostsPerRack..HostsPerRack+Spines-1 to each spine.
		// Leaf↔spine links are the shard boundary: cutting there keeps each
		// rack (and each spine) whole.
		for s := 0; s < c.Spines; s++ {
			sw.Ports = append(sw.Ports, Port{
				Peer: c.Racks + s, PeerPort: l,
				Rate: c.SpineRate, Delay: c.PropDelay, Boundary: true,
			})
		}
		t.Switches = append(t.Switches, sw)
	}
	for s := 0; s < c.Spines; s++ {
		sw := &Switch{ID: c.Racks + s}
		// Port l connects down to leaf l.
		for l := 0; l < c.Racks; l++ {
			sw.Ports = append(sw.Ports, Port{
				Peer: l, PeerPort: c.HostsPerRack + s,
				Rate: c.SpineRate, Delay: c.PropDelay, Boundary: true,
			})
		}
		t.Switches = append(t.Switches, sw)
	}

	// Routing, as structural rules (O(1) per switch — see RouteRule): a
	// leaf serves its own rack on ports [0,HostsPerRack) and sprays
	// everything else across its spine uplinks; a spine reaches every
	// host downward, HostsPerRack per leaf port.
	uplinks := make([]int32, c.Spines)
	for s := range uplinks {
		uplinks[s] = int32(c.HostsPerRack + s)
	}
	for l := 0; l < c.Racks; l++ {
		t.Switches[l].Rule = &RouteRule{
			DownBase:  int32(l * c.HostsPerRack),
			DownCount: int32(c.HostsPerRack),
			DownDiv:   1,
			Up:        uplinks,
		}
	}
	for s := 0; s < c.Spines; s++ {
		t.Switches[c.Racks+s].Rule = &RouteRule{
			DownCount: int32(n),
			DownDiv:   int32(c.HostsPerRack),
		}
	}
	return t
}
