package topo

import (
	"fmt"

	"dcpim/internal/sim"
)

// FatTreeConfig parameterizes a three-tier k-ary fat-tree: k pods, each
// with k/2 edge and k/2 aggregation switches, (k/2)² core switches, and
// k³/4 hosts. All links run at Rate (the paper's FatTree uses 100 Gbps
// everywhere).
type FatTreeConfig struct {
	K           int // even, ≥ 2
	Rate        float64
	PropDelay   sim.Duration
	SwitchDelay sim.Duration
	HostDelay   sim.Duration
	Name        string
}

// DefaultFatTree returns the paper's three-tier 1024-host FatTree (k=16,
// 100 Gbps links).
func DefaultFatTree() FatTreeConfig {
	return FatTreeConfig{
		K: 16, Rate: 100e9,
		PropDelay:   200 * sim.Nanosecond,
		SwitchDelay: 450 * sim.Nanosecond,
		HostDelay:   225 * sim.Nanosecond,
		Name:        "fattree-1024",
	}
}

// SmallFatTree returns a k=4 (16-host) fat-tree for tests.
func SmallFatTree() FatTreeConfig {
	c := DefaultFatTree()
	c.K = 4
	c.Name = "fattree-16"
	return c
}

// FatTreeK returns the paper-parameterized fat-tree at an arbitrary even
// k (k³/4 hosts), named fattree-<hosts>.
func FatTreeK(k int) FatTreeConfig {
	c := DefaultFatTree()
	c.K = k
	c.Name = fmt.Sprintf("fattree-%d", k*k*k/4)
	return c
}

// HyperscaleFatTree returns the k=32 (8192-host) three-tier fat-tree —
// the first rung past the paper's 1024-host evaluation scale.
func HyperscaleFatTree() FatTreeConfig { return FatTreeK(32) }

// MegaFatTree returns the k=48-class (27648-host) three-tier fat-tree.
// Structural routing (Switch.Rule) is what makes this size affordable:
// explicit per-switch tables at k=48 would cost gigabytes.
func MegaFatTree() FatTreeConfig { return FatTreeK(48) }

// Build constructs the fat-tree graph and routing tables.
func (c FatTreeConfig) Build() *Topology {
	k := c.K
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree k must be even and ≥2, got %d", k))
	}
	half := k / 2
	numHosts := k * half * half // k pods × k/2 edges × k/2 hosts
	numEdge := k * half
	numAgg := k * half
	numCore := half * half

	t := &Topology{
		Name:        c.Name,
		NumHosts:    numHosts,
		HostRate:    c.Rate,
		HostDelay:   c.HostDelay,
		SwitchDelay: c.SwitchDelay,
		HostSwitch:  make([]int, numHosts),
		HostPort:    make([]int, numHosts),
		HostLink:    Port{Rate: c.Rate, Delay: c.PropDelay},

		maxPathSwitches: 5, // edge, agg, core, agg, edge
	}

	edgeID := func(pod, i int) int { return pod*half + i }
	aggID := func(pod, j int) int { return numEdge + pod*half + j }
	coreID := func(ci int) int { return numEdge + numAgg + ci }
	link := func(peer, peerPort int) Port {
		return Port{Peer: peer, PeerPort: peerPort, Rate: c.Rate, Delay: c.PropDelay}
	}
	// Agg↔core links are the shard boundary: cutting there keeps each pod
	// (and each core switch) whole.
	blink := func(peer, peerPort int) Port {
		p := link(peer, peerPort)
		p.Boundary = true
		return p
	}

	t.Switches = make([]*Switch, numEdge+numAgg+numCore)

	// Edge switches: ports [0,half) hosts, [half,k) aggs.
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			sw := &Switch{ID: edgeID(pod, i)}
			for h := 0; h < half; h++ {
				host := (pod*half+i)*half + h
				sw.Ports = append(sw.Ports, Port{
					ToHost: true, Peer: host, PeerPort: -1,
					Rate: c.Rate, Delay: c.PropDelay,
				})
				t.HostSwitch[host] = sw.ID
				t.HostPort[host] = h
			}
			for j := 0; j < half; j++ {
				// Edge i ↔ agg j within the pod; agg's downlink port i.
				sw.Ports = append(sw.Ports, link(aggID(pod, j), i))
			}
			t.Switches[sw.ID] = sw
		}
	}
	// Aggregation switches: ports [0,half) edges, [half,k) cores.
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			sw := &Switch{ID: aggID(pod, j)}
			for i := 0; i < half; i++ {
				sw.Ports = append(sw.Ports, link(edgeID(pod, i), half+j))
			}
			for x := 0; x < half; x++ {
				// Agg j connects to cores j*half .. j*half+half-1; the
				// core's port toward this pod is port index pod.
				sw.Ports = append(sw.Ports, blink(coreID(j*half+x), pod))
			}
			t.Switches[sw.ID] = sw
		}
	}
	// Core switches: port p connects down to pod p's agg (ci/half).
	for ci := 0; ci < numCore; ci++ {
		sw := &Switch{ID: coreID(ci)}
		j := ci / half
		x := ci % half
		for pod := 0; pod < k; pod++ {
			sw.Ports = append(sw.Ports, blink(aggID(pod, j), half+x))
		}
		t.Switches[sw.ID] = sw
	}

	// Routing, as structural rules (O(1) per switch — see RouteRule).
	// These reproduce the explicit tables exactly: an edge switch serves
	// its half consecutive hosts on ports [0,half) (one host per port)
	// and sends everything else to its half uplinks; an agg switch
	// serves its pod's half² hosts, half per edge; a core switch reaches
	// every host downward, half² per pod port.
	upPorts := make([]int32, half)
	for i := 0; i < half; i++ {
		upPorts[i] = int32(half + i)
	}
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			sw := t.Switches[edgeID(pod, i)]
			sw.Rule = &RouteRule{
				DownBase:  int32(sw.ID * half), // global edge index == switch id
				DownCount: int32(half),
				DownDiv:   1,
				Up:        upPorts,
			}
		}
		for j := 0; j < half; j++ {
			sw := t.Switches[aggID(pod, j)]
			sw.Rule = &RouteRule{
				DownBase:  int32(pod * half * half),
				DownCount: int32(half * half),
				DownDiv:   int32(half),
				Up:        upPorts,
			}
		}
	}
	for ci := 0; ci < numCore; ci++ {
		t.Switches[coreID(ci)].Rule = &RouteRule{
			DownCount: int32(numHosts),
			DownDiv:   int32(half * half),
		}
	}
	return t
}
