// Package topo models datacenter network topologies as explicit graphs of
// hosts and switches with per-port link rates and delays, plus precomputed
// multipath routing tables. It also provides the latency arithmetic the
// paper's evaluation depends on: unloaded round-trip times, bandwidth-delay
// product, and ideal (alone-in-the-network) flow completion times used as
// the slowdown baseline.
package topo

import (
	"fmt"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

// Port describes one switch port: what it connects to and the properties of
// the attached link. Links are full duplex; each direction is modeled by
// the output port on its sending side.
type Port struct {
	ToHost   bool         // true if the peer is a host
	Peer     int          // host id, or switch id
	PeerPort int          // port index on the peer switch (-1 for hosts)
	Rate     float64      // link rate, bits per second
	Delay    sim.Duration // propagation delay

	// Boundary marks ports on links that cross the topology's natural
	// partition boundary (leaf↔spine in a leaf-spine, agg↔core in a
	// fat-tree). Sharded execution may only cut the fabric along boundary
	// links; arrivals over them are ordered by link identity rather than
	// insertion order so that event order is shard-count-invariant (see
	// sim.Engine's arrival band). Builders set it on both directions of a
	// boundary link.
	Boundary bool
}

// Switch is a node in the fabric with a set of ports and a route. Regular
// topologies (fat-tree, leaf-spine) describe routing structurally through
// Rule — O(1) memory per switch instead of an O(hosts) table, which is
// what makes 10k-host fabrics affordable (a k=48 fat-tree's explicit
// tables alone would cost ~2 GB). Hand-built or irregular topologies may
// instead populate Routes[dst] with candidate output ports toward host
// dst; multiple candidates mean the fabric may spray or ECMP-hash across
// them. Exactly one of Rule and Routes should be set; consumers go
// through Route.
type Switch struct {
	ID     int
	Ports  []Port
	Rule   *RouteRule
	Routes [][]int32
}

// RouteRule is the closed-form routing of one switch in a regular
// multi-rooted tree: a contiguous range of hosts is reached downward,
// each down port serving DownDiv consecutive hosts; every other host is
// reached through the Up candidates (spray/ECMP). It reproduces exactly
// the tables the builders used to materialize — same candidate sets in
// the same order, so ECMP hashing and spraying draw identically.
type RouteRule struct {
	DownBase  int32   // first host id reached via down ports
	DownCount int32   // number of hosts in the down range
	DownDiv   int32   // consecutive hosts per down port, ≥ 1
	DownPort  int32   // port index of the first down port
	Up        []int32 // uplink candidates for hosts outside the range
}

// Route returns the output toward dst: either a single resolved port
// (second result nil) or the multipath candidate set to spray/hash
// across. No allocation on either path.
func (s *Switch) Route(dst int) (int32, []int32) {
	if r := s.Rule; r != nil {
		if d := int32(dst) - r.DownBase; d >= 0 && d < r.DownCount {
			return r.DownPort + d/r.DownDiv, nil
		}
		return -1, r.Up
	}
	c := s.Routes[dst]
	if len(c) == 1 {
		return c[0], nil
	}
	return -1, c
}

// Topology is an immutable description of a datacenter network.
type Topology struct {
	Name        string
	NumHosts    int
	HostRate    float64      // access link rate, bits per second
	HostDelay   sim.Duration // host stack latency per send or receive
	SwitchDelay sim.Duration // switch processing latency per traversal
	Switches    []*Switch

	HostSwitch []int // ToR switch id for each host
	HostPort   []int // ToR port index facing each host
	HostLink   Port  // template for the host→ToR uplink (rate/delay)

	// maxPathSwitches is the largest number of switches on any host-to-host
	// path, used for worst-case RTT computations.
	maxPathSwitches int
}

// Validate checks structural invariants: every route resolves, links are
// symmetric, and every host is reachable from every switch.
func (t *Topology) Validate() error {
	if t.NumHosts <= 0 {
		return fmt.Errorf("topology %s: no hosts", t.Name)
	}
	for _, sw := range t.Switches {
		if err := t.validateRoutes(sw); err != nil {
			return err
		}
		for pi, p := range sw.Ports {
			if p.ToHost {
				if p.Peer < 0 || p.Peer >= t.NumHosts {
					return fmt.Errorf("switch %d port %d: bad host %d", sw.ID, pi, p.Peer)
				}
				if t.HostSwitch[p.Peer] != sw.ID || t.HostPort[p.Peer] != pi {
					return fmt.Errorf("switch %d port %d: host %d back-reference mismatch", sw.ID, pi, p.Peer)
				}
				continue
			}
			peer := t.Switches[p.Peer]
			back := peer.Ports[p.PeerPort]
			if back.ToHost || back.Peer != sw.ID || back.PeerPort != pi {
				return fmt.Errorf("switch %d port %d: asymmetric wiring to switch %d", sw.ID, pi, p.Peer)
			}
			if back.Rate != p.Rate || back.Delay != p.Delay {
				return fmt.Errorf("switch %d port %d: asymmetric link properties", sw.ID, pi)
			}
			if back.Boundary != p.Boundary {
				return fmt.Errorf("switch %d port %d: asymmetric boundary flag", sw.ID, pi)
			}
		}
	}
	return nil
}

// validateRoutes checks one switch's routing: a structural rule is
// checked in O(ports) (range arithmetic plus full-coverage), an explicit
// table in O(hosts × candidates).
func (t *Topology) validateRoutes(sw *Switch) error {
	if r := sw.Rule; r != nil {
		if sw.Routes != nil {
			return fmt.Errorf("switch %d: both Rule and Routes set", sw.ID)
		}
		if r.DownDiv < 1 {
			return fmt.Errorf("switch %d: rule DownDiv %d < 1", sw.ID, r.DownDiv)
		}
		if r.DownCount < 0 || int(r.DownBase) < 0 || int(r.DownBase)+int(r.DownCount) > t.NumHosts {
			return fmt.Errorf("switch %d: rule down range [%d,%d) outside hosts [0,%d)",
				sw.ID, r.DownBase, int(r.DownBase)+int(r.DownCount), t.NumHosts)
		}
		if r.DownCount > 0 {
			lastPort := r.DownPort + (r.DownCount-1)/r.DownDiv
			if r.DownPort < 0 || int(lastPort) >= len(sw.Ports) {
				return fmt.Errorf("switch %d: rule down ports [%d,%d] outside ports [0,%d)",
					sw.ID, r.DownPort, lastPort, len(sw.Ports))
			}
		}
		if int(r.DownCount) < t.NumHosts && len(r.Up) == 0 {
			return fmt.Errorf("switch %d: rule covers %d of %d hosts with no uplinks",
				sw.ID, r.DownCount, t.NumHosts)
		}
		for _, pi := range r.Up {
			if pi < 0 || int(pi) >= len(sw.Ports) {
				return fmt.Errorf("switch %d: rule uplink uses bad port %d", sw.ID, pi)
			}
		}
		return nil
	}
	if len(sw.Routes) != t.NumHosts {
		return fmt.Errorf("switch %d: routing table covers %d hosts, want %d",
			sw.ID, len(sw.Routes), t.NumHosts)
	}
	for dst, cands := range sw.Routes {
		if len(cands) == 0 {
			return fmt.Errorf("switch %d: no route to host %d", sw.ID, dst)
		}
		for _, pi := range cands {
			if int(pi) >= len(sw.Ports) {
				return fmt.Errorf("switch %d: route to %d uses bad port %d", sw.ID, dst, pi)
			}
		}
	}
	return nil
}

// Path returns a representative host-to-host path as the sequence of
// (rate, delay) links traversed, always taking the first routing candidate.
// In the regular topologies built here all equal-cost paths have identical
// latency, so the representative path is exact for latency math.
func (t *Topology) Path(src, dst int) []Port {
	path := []Port{t.hostUplink(src)}
	if src == dst {
		return path
	}
	sw := t.Switches[t.HostSwitch[src]]
	for hops := 0; ; hops++ {
		if hops > 16 {
			panic("topo: routing loop")
		}
		pi, cands := sw.Route(dst)
		if pi < 0 {
			pi = cands[0]
		}
		p := sw.Ports[pi]
		path = append(path, p)
		if p.ToHost {
			return path
		}
		sw = t.Switches[p.Peer]
	}
}

func (t *Topology) hostUplink(host int) Port {
	// The host's uplink mirrors the ToR's downlink to it.
	sw := t.Switches[t.HostSwitch[host]]
	down := sw.Ports[t.HostPort[host]]
	return Port{ToHost: false, Peer: sw.ID, Rate: down.Rate, Delay: down.Delay}
}

// OneWayDelay returns the unloaded latency for a single packet of the given
// wire size from src to dst: host stack latency at both ends, plus per-link
// serialization and propagation, plus switch processing at each switch.
func (t *Topology) OneWayDelay(src, dst int, size int) sim.Duration {
	path := t.Path(src, dst)
	d := 2 * t.HostDelay // sender stack + receiver stack
	for i, l := range path {
		d += sim.TransmissionTime(size, l.Rate) + l.Delay
		if i < len(path)-1 {
			d += t.SwitchDelay // a switch sits between consecutive links
		}
	}
	return d
}

// maxDistancePair returns a pair of hosts at maximum topological distance
// (first and last host — regular topologies place them in different racks
// and pods).
func (t *Topology) maxDistancePair() (int, int) {
	if t.NumHosts == 1 {
		return 0, 0
	}
	return 0, t.NumHosts - 1
}

// DataRTT returns the unloaded round-trip time for full-MTU packets between
// a maximally distant host pair (MTU out, MTU back). This matches the
// paper's "unloaded RTT for data packets" (5.8 µs on the default
// leaf-spine).
func (t *Topology) DataRTT() sim.Duration {
	a, b := t.maxDistancePair()
	return t.OneWayDelay(a, b, packet.MTU) + t.OneWayDelay(b, a, packet.MTU)
}

// CtrlRTT returns the unloaded round-trip time for control packets between
// a maximally distant pair (the paper's cRTT, 5.2 µs on the default
// leaf-spine).
func (t *Topology) CtrlRTT() sim.Duration {
	a, b := t.maxDistancePair()
	return t.OneWayDelay(a, b, packet.HeaderSize) + t.OneWayDelay(b, a, packet.HeaderSize)
}

// BDP returns the bandwidth-delay product in bytes: access rate × DataRTT.
func (t *Topology) BDP() int64 {
	return int64(t.HostRate * t.DataRTT().Seconds() / 8)
}

// UnloadedFCT returns the ideal completion time for a flow of size payload
// bytes from src to dst when it is alone in the network: the time from the
// sender starting transmission to the last byte arriving at the receiver,
// with store-and-forward pipelining across hops. This is the denominator of
// the paper's slowdown metric.
func (t *Topology) UnloadedFCT(src, dst int, size int64) sim.Duration {
	n := packet.PacketsForBytes(size)
	if n == 0 {
		return 0
	}
	first := packet.DataPacketSize(size, 0)
	// First packet pipelines through every hop; the rest drain behind it at
	// the bottleneck (access) rate. All topologies here have core links at
	// least as fast as access links, so the access link is the bottleneck.
	d := t.OneWayDelay(src, dst, first)
	bottleneck := t.HostRate
	for _, l := range t.Path(src, dst) {
		if l.Rate < bottleneck {
			bottleneck = l.Rate
		}
	}
	for i := 1; i < n; i++ {
		d += sim.TransmissionTime(packet.DataPacketSize(size, i), bottleneck)
	}
	return d
}

// Rack returns the index of the ToR switch of a host, usable as a rack id.
func (t *Topology) Rack(host int) int { return t.HostSwitch[host] }

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return len(t.Switches) }

// MaxPathSwitches returns the largest number of switches on any
// host-to-host path.
func (t *Topology) MaxPathSwitches() int { return t.maxPathSwitches }
