package topo

import (
	"fmt"
	"sort"

	"dcpim/internal/sim"
)

// Partition assigns every host and switch of a topology to one of
// NumShards shards such that only Boundary-marked links cross shards.
// Lookahead is the minimum propagation delay over cross-shard links —
// the conservative synchronization window: no event executed in one
// shard before the barrier can affect another shard until at least
// Lookahead later, because every cross-shard packet or PFC signal rides
// a boundary link with at least that much delay.
type Partition struct {
	NumShards   int
	HostShard   []int32 // host id → shard
	SwitchShard []int32 // switch id → shard
	Lookahead   sim.Duration
}

// ShardOfHost returns the shard owning host h.
func (p *Partition) ShardOfHost(h int) int { return int(p.HostShard[h]) }

// ShardOfSwitch returns the shard owning switch s.
func (p *Partition) ShardOfSwitch(s int) int { return int(p.SwitchShard[s]) }

// MaxShards returns the number of partition units (connected components
// under non-boundary links) in the topology — the largest shard count
// MakePartition accepts. For a leaf-spine this is racks + spines; for a
// k-ary fat-tree, pods + cores.
func MaxShards(t *Topology) int {
	return len(components(t))
}

// MakePartition splits t into n shards. The partition units are the
// connected components of the switch graph with boundary links removed
// (a rack plus its hosts in a leaf-spine; a pod in a fat-tree; each
// spine or core switch is its own unit). Units are placed by weighted
// LPT (longest-processing-time) greedy: heaviest unit first onto the
// currently lightest shard, where a unit's weight is dominated by its
// host count (protocol and NIC events scale with hosts) with switch
// count as the fractional part, so host-bearing units spread evenly and
// switch-only units (spines, cores — weight ≥ 1 each) fill in the gaps
// and keep every shard populated. All orderings and tie-breaks are by
// id, so the partition is a pure function of (topology, n).
//
// The balance ceiling is structural: units cannot be split (a pod is
// one unit — only agg↔core links are boundaries), so at shard counts
// approaching the unit count most shards hold only switch-only units
// and the host-bearing shards dominate the critical path; the barrier
// loop's idle-skip dispatch (sim.Group) keeps those near-empty shards
// cheap. See DESIGN.md §13 for the measured 16–64-shard profile.
//
// It fails when n exceeds the unit count, when a unit-internal link is
// marked Boundary inconsistently (cross-shard link with zero delay), or
// when n < 1.
func MakePartition(t *Topology, n int) (*Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: partition needs ≥1 shard, got %d", n)
	}
	comps := components(t)
	if n > len(comps) {
		return nil, fmt.Errorf("topo: %s has %d partition units, cannot split into %d shards",
			t.Name, len(comps), n)
	}

	p := &Partition{
		NumShards:   n,
		HostShard:   make([]int32, t.NumHosts),
		SwitchShard: make([]int32, len(t.Switches)),
	}
	hostsOn := make([]int, len(t.Switches))
	for h := 0; h < t.NumHosts; h++ {
		hostsOn[t.HostSwitch[h]]++
	}
	// Weight: hosts dominate, switches break host-ties and guarantee a
	// positive weight for switch-only units.
	const hostWeight = 1 << 16
	weight := make([]int64, len(comps))
	order := make([]int, len(comps))
	for k, unit := range comps {
		order[k] = k
		w := int64(len(unit))
		for _, sw := range unit {
			w += int64(hostsOn[sw]) * hostWeight
		}
		weight[k] = w
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weight[order[a]] > weight[order[b]]
	})
	load := make([]int64, n)
	for _, k := range order {
		shard := 0
		for s := 1; s < n; s++ {
			if load[s] < load[shard] {
				shard = s
			}
		}
		load[shard] += weight[k]
		for _, sw := range comps[k] {
			p.SwitchShard[sw] = int32(shard)
		}
	}
	for h := 0; h < t.NumHosts; h++ {
		p.HostShard[h] = p.SwitchShard[t.HostSwitch[h]]
	}

	// Lookahead: minimum delay over links that actually cross shards.
	// Every cross-shard link must be a boundary link with positive delay;
	// anything else would break conservative synchronization.
	for _, sw := range t.Switches {
		for pi, port := range sw.Ports {
			if port.ToHost {
				continue
			}
			if p.SwitchShard[sw.ID] == p.SwitchShard[port.Peer] {
				continue
			}
			if !port.Boundary {
				return nil, fmt.Errorf("topo: %s: non-boundary link sw%d:%d–sw%d crosses shards (partition unit split)",
					t.Name, sw.ID, pi, port.Peer)
			}
			if port.Delay <= 0 {
				return nil, fmt.Errorf("topo: %s: cross-shard link sw%d:%d–sw%d has zero delay; lookahead would be empty",
					t.Name, sw.ID, pi, port.Peer)
			}
			if p.Lookahead == 0 || port.Delay < p.Lookahead {
				p.Lookahead = port.Delay
			}
		}
	}
	if n > 1 && p.Lookahead == 0 {
		return nil, fmt.Errorf("topo: %s: no cross-shard links in a %d-shard partition", t.Name, n)
	}
	return p, nil
}

// components returns the connected components of the switch graph with
// boundary links removed, each as a sorted slice of switch ids, ordered
// by smallest member id.
func components(t *Topology) [][]int {
	nSw := len(t.Switches)
	parent := make([]int, nSw)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra // root at smallest id for stable ordering
		}
	}
	for _, sw := range t.Switches {
		for _, port := range sw.Ports {
			if !port.ToHost && !port.Boundary {
				union(sw.ID, port.Peer)
			}
		}
	}
	var comps [][]int
	rootComp := map[int]int{}
	for id := 0; id < nSw; id++ { // ascending id ⇒ components ordered by min member
		r := find(id)
		k, ok := rootComp[r]
		if !ok {
			k = len(comps)
			rootComp[r] = k
			comps = append(comps, nil)
		}
		comps[k] = append(comps[k], id)
	}
	return comps
}
