package topo

import (
	"math"
	"testing"
	"testing/quick"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

func TestLeafSpineStructure(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 144 {
		t.Fatalf("hosts = %d, want 144", tp.NumHosts)
	}
	if got := tp.NumSwitches(); got != 13 { // 9 leaves + 4 spines
		t.Fatalf("switches = %d, want 13", got)
	}
	// Host 17 lives in rack 1.
	if tp.Rack(17) != 1 {
		t.Fatalf("Rack(17) = %d, want 1", tp.Rack(17))
	}
	// Same-rack path: 2 links (host→leaf→host).
	if p := tp.Path(0, 1); len(p) != 2 {
		t.Fatalf("same-rack path length = %d, want 2", len(p))
	}
	// Cross-rack path: 4 links.
	if p := tp.Path(0, 143); len(p) != 4 {
		t.Fatalf("cross-rack path length = %d, want 4", len(p))
	}
}

// The paper's §3.4 worked example: unloaded data RTT 5.8 µs, control RTT
// 5.2 µs, BDP 72.5 KB on the default leaf-spine. Our calibration must
// land within 1% of those numbers.
func TestLeafSpineCalibration(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	within := func(got sim.Duration, wantUs, tol float64) bool {
		return math.Abs(got.Microseconds()-wantUs) <= tol*wantUs
	}
	if d := tp.DataRTT(); !within(d, 5.8, 0.01) {
		t.Errorf("DataRTT = %v, want ≈5.8us", d)
	}
	if d := tp.CtrlRTT(); !within(d, 5.2, 0.01) {
		t.Errorf("CtrlRTT = %v, want ≈5.2us", d)
	}
	bdp := tp.BDP()
	if math.Abs(float64(bdp)-72500) > 0.01*72500 {
		t.Errorf("BDP = %d bytes, want ≈72500", bdp)
	}
}

func TestOversubscribedLeafSpine(t *testing.T) {
	tp := OversubscribedLeafSpine().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Core links at 200G: 16 hosts × 100G vs 4 uplinks × 200G = 2:1.
	up := tp.Switches[0].Ports[16]
	if up.Rate != 200e9 {
		t.Fatalf("uplink rate = %g, want 200e9", up.Rate)
	}
}

func TestTestbedLeafSpine(t *testing.T) {
	tp := TestbedLeafSpine().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 32 {
		t.Fatalf("hosts = %d, want 32", tp.NumHosts)
	}
	// Software stack: RTT should be on the order of 8 µs.
	rtt := tp.CtrlRTT().Microseconds()
	if rtt < 6 || rtt > 10 {
		t.Fatalf("testbed cRTT = %.2fus, want ~8us", rtt)
	}
}

func TestFatTreeStructure(t *testing.T) {
	tp := DefaultFatTree().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 1024 {
		t.Fatalf("hosts = %d, want 1024", tp.NumHosts)
	}
	// 128 edge + 128 agg + 64 core.
	if got := tp.NumSwitches(); got != 320 {
		t.Fatalf("switches = %d, want 320", got)
	}
	// Same-edge: 2 links; same-pod: 4 links; cross-pod: 6 links.
	if p := tp.Path(0, 1); len(p) != 2 {
		t.Fatalf("same-edge path = %d links, want 2", len(p))
	}
	if p := tp.Path(0, 9); len(p) != 4 {
		t.Fatalf("same-pod path = %d links, want 4", len(p))
	}
	if p := tp.Path(0, 1023); len(p) != 6 {
		t.Fatalf("cross-pod path = %d links, want 6", len(p))
	}
}

func TestSmallFatTree(t *testing.T) {
	tp := SmallFatTree().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 16 || tp.NumSwitches() != 20 {
		t.Fatalf("k=4 fat-tree: hosts=%d switches=%d, want 16/20", tp.NumHosts, tp.NumSwitches())
	}
}

// routeCandidates returns every output port Route offers toward dst.
func routeCandidates(sw *Switch, dst int) []int32 {
	pi, cands := sw.Route(dst)
	if pi >= 0 {
		return []int32{pi}
	}
	return cands
}

// reaches reports whether every candidate path from sw leads to dst
// within the hop budget (exhaustive multipath walk).
func reaches(tp *Topology, sw *Switch, dst, budget int) bool {
	if budget < 0 {
		return false
	}
	for _, pi := range routeCandidates(sw, dst) {
		p := sw.Ports[pi]
		if p.ToHost {
			if p.Peer != dst {
				return false
			}
			continue
		}
		if !reaches(tp, tp.Switches[p.Peer], dst, budget-1) {
			return false
		}
	}
	return true
}

// Property: every switch in a fat-tree can reach every host over EVERY
// routing candidate (all sprayed/ECMP paths make progress and terminate
// at the destination), with the structural rules standing in for the
// explicit tables they replaced.
func TestFatTreeRoutesProperty(t *testing.T) {
	tp := SmallFatTree().Build()
	for _, sw := range tp.Switches {
		for dst := 0; dst < tp.NumHosts; dst++ {
			if !reaches(tp, sw, dst, tp.MaxPathSwitches()) {
				t.Fatalf("switch %d cannot reach host %d over all candidates", sw.ID, dst)
			}
		}
	}
}

// The structural rules must reproduce the explicit tables exactly: same
// single down port, same uplink candidate set in the same order. The
// test re-materializes the k=4 fat-tree tables from first principles.
func TestFatTreeRuleMatchesTable(t *testing.T) {
	tp := SmallFatTree().Build()
	k := 4
	half := k / 2
	numEdge := k * half
	numAgg := k * half
	hostPod := func(h int) int { return h / (half * half) }
	hostEdge := func(h int) int { return h / half }
	var up []int32
	for i := 0; i < half; i++ {
		up = append(up, int32(half+i))
	}
	for _, sw := range tp.Switches {
		for dst := 0; dst < tp.NumHosts; dst++ {
			var want []int32
			switch {
			case sw.ID < numEdge: // edge
				if hostEdge(dst) == sw.ID {
					want = []int32{int32(dst % half)}
				} else {
					want = up
				}
			case sw.ID < numEdge+numAgg: // agg
				pod := (sw.ID - numEdge) / half
				if hostPod(dst) == pod {
					want = []int32{int32(hostEdge(dst) - pod*half)}
				} else {
					want = up
				}
			default: // core
				want = []int32{int32(hostPod(dst))}
			}
			got := routeCandidates(sw, dst)
			if len(got) != len(want) {
				t.Fatalf("switch %d dst %d: %v candidates, want %v", sw.ID, dst, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("switch %d dst %d: candidates %v, want %v", sw.ID, dst, got, want)
				}
			}
		}
	}
}

// The hyperscale rungs: k=32 (8192 hosts) and the k=48 class (27648
// hosts) must build, validate, and route in reasonable time and memory —
// the point of structural routing.
func TestHyperscaleFatTrees(t *testing.T) {
	for _, tc := range []struct {
		cfg             FatTreeConfig
		hosts, switches int
	}{
		{HyperscaleFatTree(), 8192, 32*16 + 32*16 + 256},
		{MegaFatTree(), 27648, 48*24 + 48*24 + 576},
	} {
		tp := tc.cfg.Build()
		if err := tp.Validate(); err != nil {
			t.Fatal(err)
		}
		if tp.NumHosts != tc.hosts || tp.NumSwitches() != tc.switches {
			t.Fatalf("%s: hosts=%d switches=%d, want %d/%d",
				tp.Name, tp.NumHosts, tp.NumSwitches(), tc.hosts, tc.switches)
		}
		// Cross-pod path: 6 links through edge/agg/core/agg/edge.
		if p := tp.Path(0, tp.NumHosts-1); len(p) != 6 {
			t.Fatalf("%s: cross-pod path = %d links, want 6", tp.Name, len(p))
		}
		// Spot-check routing correctness from a few vantage switches.
		for _, swID := range []int{0, tp.NumSwitches() / 2, tp.NumSwitches() - 1} {
			for _, dst := range []int{0, 1, tp.NumHosts / 2, tp.NumHosts - 1} {
				if !reaches(tp, tp.Switches[swID], dst, tp.MaxPathSwitches()) {
					t.Fatalf("%s: switch %d cannot reach host %d", tp.Name, swID, dst)
				}
			}
		}
	}
}

func TestOneWayDelayComponents(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	// Cross-rack MTU one-way: serialization 120+30+30+120 ns, propagation
	// 4×200 ns, switching 3×450 ns, host stack 2×225 ns = 2900 ns.
	want := 2900 * sim.Nanosecond
	if d := tp.OneWayDelay(0, 143, packet.MTU); d != want {
		t.Fatalf("OneWayDelay cross-rack MTU = %v, want %v", d, want)
	}
	// Same-rack is strictly faster than cross-rack.
	if tp.OneWayDelay(0, 1, packet.MTU) >= d0143(tp) {
		t.Fatal("same-rack delay not below cross-rack delay")
	}
}

func d0143(tp *Topology) sim.Duration { return tp.OneWayDelay(0, 143, packet.MTU) }

func TestUnloadedFCT(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	// A one-packet flow's FCT equals its one-way delay.
	one := tp.UnloadedFCT(0, 143, 100)
	if want := tp.OneWayDelay(0, 143, 100+packet.HeaderSize); one != want {
		t.Fatalf("1-pkt FCT = %v, want %v", one, want)
	}
	// A large flow is dominated by access-link serialization:
	// 1 MB ≈ 1e6/1436 packets ≈ 697 MTUs ≈ 83.7 µs at 100G.
	big := tp.UnloadedFCT(0, 143, 1_000_000)
	lower := sim.TransmissionTime(1_000_000, tp.HostRate)
	if big < lower {
		t.Fatalf("1MB FCT %v below pure serialization %v", big, lower)
	}
	if big > lower+20*sim.Microsecond {
		t.Fatalf("1MB FCT %v too far above serialization %v", big, lower)
	}
	// Monotonic in size.
	if tp.UnloadedFCT(0, 143, 5000) <= tp.UnloadedFCT(0, 143, 500) {
		t.Fatal("FCT not monotonic in flow size")
	}
}

// Property: unloaded FCT is monotone non-decreasing in flow size for
// arbitrary sizes and host pairs.
func TestUnloadedFCTMonotoneProperty(t *testing.T) {
	tp := SmallLeafSpine().Build()
	f := func(a, b uint32, src, dst uint8) bool {
		s1 := int64(a%10_000_000) + 1
		s2 := int64(b%10_000_000) + 1
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		sh := int(src) % tp.NumHosts
		dh := int(dst) % tp.NumHosts
		return tp.UnloadedFCT(sh, dh, s1) <= tp.UnloadedFCT(sh, dh, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadWiring(t *testing.T) {
	tp := SmallLeafSpine().Build()
	// Corrupt a backlink: leaf 0's uplink to spine 0 claims the spine's
	// port toward leaf 1.
	tp.Switches[0].Ports[4].PeerPort = 1
	if err := tp.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric wiring")
	}
}

func TestPathSameHost(t *testing.T) {
	tp := SmallLeafSpine().Build()
	if p := tp.Path(3, 3); len(p) != 1 {
		t.Fatalf("self path length = %d, want 1", len(p))
	}
}
