package topo

import (
	"math"
	"testing"
	"testing/quick"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

func TestLeafSpineStructure(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 144 {
		t.Fatalf("hosts = %d, want 144", tp.NumHosts)
	}
	if got := tp.NumSwitches(); got != 13 { // 9 leaves + 4 spines
		t.Fatalf("switches = %d, want 13", got)
	}
	// Host 17 lives in rack 1.
	if tp.Rack(17) != 1 {
		t.Fatalf("Rack(17) = %d, want 1", tp.Rack(17))
	}
	// Same-rack path: 2 links (host→leaf→host).
	if p := tp.Path(0, 1); len(p) != 2 {
		t.Fatalf("same-rack path length = %d, want 2", len(p))
	}
	// Cross-rack path: 4 links.
	if p := tp.Path(0, 143); len(p) != 4 {
		t.Fatalf("cross-rack path length = %d, want 4", len(p))
	}
}

// The paper's §3.4 worked example: unloaded data RTT 5.8 µs, control RTT
// 5.2 µs, BDP 72.5 KB on the default leaf-spine. Our calibration must
// land within 1% of those numbers.
func TestLeafSpineCalibration(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	within := func(got sim.Duration, wantUs, tol float64) bool {
		return math.Abs(got.Microseconds()-wantUs) <= tol*wantUs
	}
	if d := tp.DataRTT(); !within(d, 5.8, 0.01) {
		t.Errorf("DataRTT = %v, want ≈5.8us", d)
	}
	if d := tp.CtrlRTT(); !within(d, 5.2, 0.01) {
		t.Errorf("CtrlRTT = %v, want ≈5.2us", d)
	}
	bdp := tp.BDP()
	if math.Abs(float64(bdp)-72500) > 0.01*72500 {
		t.Errorf("BDP = %d bytes, want ≈72500", bdp)
	}
}

func TestOversubscribedLeafSpine(t *testing.T) {
	tp := OversubscribedLeafSpine().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Core links at 200G: 16 hosts × 100G vs 4 uplinks × 200G = 2:1.
	up := tp.Switches[0].Ports[16]
	if up.Rate != 200e9 {
		t.Fatalf("uplink rate = %g, want 200e9", up.Rate)
	}
}

func TestTestbedLeafSpine(t *testing.T) {
	tp := TestbedLeafSpine().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 32 {
		t.Fatalf("hosts = %d, want 32", tp.NumHosts)
	}
	// Software stack: RTT should be on the order of 8 µs.
	rtt := tp.CtrlRTT().Microseconds()
	if rtt < 6 || rtt > 10 {
		t.Fatalf("testbed cRTT = %.2fus, want ~8us", rtt)
	}
}

func TestFatTreeStructure(t *testing.T) {
	tp := DefaultFatTree().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 1024 {
		t.Fatalf("hosts = %d, want 1024", tp.NumHosts)
	}
	// 128 edge + 128 agg + 64 core.
	if got := tp.NumSwitches(); got != 320 {
		t.Fatalf("switches = %d, want 320", got)
	}
	// Same-edge: 2 links; same-pod: 4 links; cross-pod: 6 links.
	if p := tp.Path(0, 1); len(p) != 2 {
		t.Fatalf("same-edge path = %d links, want 2", len(p))
	}
	if p := tp.Path(0, 9); len(p) != 4 {
		t.Fatalf("same-pod path = %d links, want 4", len(p))
	}
	if p := tp.Path(0, 1023); len(p) != 6 {
		t.Fatalf("cross-pod path = %d links, want 6", len(p))
	}
}

func TestSmallFatTree(t *testing.T) {
	tp := SmallFatTree().Build()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 16 || tp.NumSwitches() != 20 {
		t.Fatalf("k=4 fat-tree: hosts=%d switches=%d, want 16/20", tp.NumHosts, tp.NumSwitches())
	}
}

// Property: every switch in a fat-tree can reach every host, and sprayed
// candidates all make progress (no candidate port points back to a host
// unless it is the destination).
func TestFatTreeRoutesProperty(t *testing.T) {
	tp := SmallFatTree().Build()
	for _, sw := range tp.Switches {
		for dst := 0; dst < tp.NumHosts; dst++ {
			for _, pi := range sw.Routes[dst] {
				p := sw.Ports[pi]
				if p.ToHost && p.Peer != dst {
					t.Fatalf("switch %d route to %d exits to wrong host %d", sw.ID, dst, p.Peer)
				}
			}
		}
	}
}

func TestOneWayDelayComponents(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	// Cross-rack MTU one-way: serialization 120+30+30+120 ns, propagation
	// 4×200 ns, switching 3×450 ns, host stack 2×225 ns = 2900 ns.
	want := 2900 * sim.Nanosecond
	if d := tp.OneWayDelay(0, 143, packet.MTU); d != want {
		t.Fatalf("OneWayDelay cross-rack MTU = %v, want %v", d, want)
	}
	// Same-rack is strictly faster than cross-rack.
	if tp.OneWayDelay(0, 1, packet.MTU) >= d0143(tp) {
		t.Fatal("same-rack delay not below cross-rack delay")
	}
}

func d0143(tp *Topology) sim.Duration { return tp.OneWayDelay(0, 143, packet.MTU) }

func TestUnloadedFCT(t *testing.T) {
	tp := DefaultLeafSpine().Build()
	// A one-packet flow's FCT equals its one-way delay.
	one := tp.UnloadedFCT(0, 143, 100)
	if want := tp.OneWayDelay(0, 143, 100+packet.HeaderSize); one != want {
		t.Fatalf("1-pkt FCT = %v, want %v", one, want)
	}
	// A large flow is dominated by access-link serialization:
	// 1 MB ≈ 1e6/1436 packets ≈ 697 MTUs ≈ 83.7 µs at 100G.
	big := tp.UnloadedFCT(0, 143, 1_000_000)
	lower := sim.TransmissionTime(1_000_000, tp.HostRate)
	if big < lower {
		t.Fatalf("1MB FCT %v below pure serialization %v", big, lower)
	}
	if big > lower+20*sim.Microsecond {
		t.Fatalf("1MB FCT %v too far above serialization %v", big, lower)
	}
	// Monotonic in size.
	if tp.UnloadedFCT(0, 143, 5000) <= tp.UnloadedFCT(0, 143, 500) {
		t.Fatal("FCT not monotonic in flow size")
	}
}

// Property: unloaded FCT is monotone non-decreasing in flow size for
// arbitrary sizes and host pairs.
func TestUnloadedFCTMonotoneProperty(t *testing.T) {
	tp := SmallLeafSpine().Build()
	f := func(a, b uint32, src, dst uint8) bool {
		s1 := int64(a%10_000_000) + 1
		s2 := int64(b%10_000_000) + 1
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		sh := int(src) % tp.NumHosts
		dh := int(dst) % tp.NumHosts
		return tp.UnloadedFCT(sh, dh, s1) <= tp.UnloadedFCT(sh, dh, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadWiring(t *testing.T) {
	tp := SmallLeafSpine().Build()
	// Corrupt a backlink: leaf 0's uplink to spine 0 claims the spine's
	// port toward leaf 1.
	tp.Switches[0].Ports[4].PeerPort = 1
	if err := tp.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric wiring")
	}
}

func TestPathSameHost(t *testing.T) {
	tp := SmallLeafSpine().Build()
	if p := tp.Path(3, 3); len(p) != 1 {
		t.Fatalf("self path length = %d, want 1", len(p))
	}
}
