package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcpim/internal/sim"
)

// metricsGoldenSpec is goldenSpec with the telemetry layer on.
func metricsGoldenSpec(t *testing.T, proto string) RunSpec {
	t.Helper()
	spec := goldenSpec(t, proto, false)
	spec.Metrics = &MetricsSpec{Interval: 10 * sim.Microsecond, Label: "golden-" + proto}
	return spec
}

// TestMetricsSamplerDeterminism is the telemetry layer's core guarantee:
// the sampled CSV series and JSON report are byte-identical between a
// serial run and RunMany at any worker count, and turning metrics on
// does not perturb the simulated packet stream (the golden digest is
// unchanged).
func TestMetricsSamplerDeterminism(t *testing.T) {
	serial := Run(metricsGoldenSpec(t, DCPIM))
	if serial.Digest != goldenDigestClean {
		t.Errorf("metrics-enabled digest %#016x != golden %#016x: sampling perturbed the run",
			serial.Digest, goldenDigestClean)
	}
	if len(serial.MetricsCSV) == 0 || len(serial.MetricsJSON) == 0 {
		t.Fatal("metrics run produced no CSV/JSON")
	}
	for _, workers := range []int{4, 8} {
		specs := make([]RunSpec, workers)
		for i := range specs {
			specs[i] = metricsGoldenSpec(t, DCPIM)
		}
		for i, res := range RunMany(specs, workers) {
			if !bytes.Equal(res.MetricsCSV, serial.MetricsCSV) {
				t.Errorf("workers=%d run %d: CSV differs from serial", workers, i)
			}
			if !bytes.Equal(res.MetricsJSON, serial.MetricsJSON) {
				t.Errorf("workers=%d run %d: JSON differs from serial", workers, i)
			}
		}
	}
}

// TestMetricsContent sanity-checks the emitted artifacts of a dcPIM run:
// the CSV has the expected header layout and the report carries the
// instruments the paper's arguments lean on (token-window occupancy,
// unscheduled-bypass split, per-round matching, fabric queues).
func TestMetricsContent(t *testing.T) {
	res := Run(metricsGoldenSpec(t, DCPIM))

	lines := strings.Split(string(res.MetricsCSV), "\n")
	if len(lines) < 3 {
		t.Fatalf("CSV too short: %d lines", len(lines))
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "time_ps" {
		t.Fatalf("CSV header starts %q, want time_ps", header[0])
	}
	for _, want := range []string{
		"core/tokens_outstanding", "core/unsched_bytes", "core/sched_bytes",
		"core/match/round0_accepted_channels",
		"netsim/nic_queued_bytes", "netsim/max_port_queue_bytes",
	} {
		found := false
		for _, h := range header {
			if h == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("CSV header missing column %q", want)
		}
	}
	for i := 2; i < len(header); i++ {
		if header[i] < header[i-1] {
			t.Fatalf("CSV columns not sorted: %q after %q", header[i], header[i-1])
		}
	}

	var rep RunReport
	if err := json.Unmarshal(res.MetricsJSON, &rep); err != nil {
		t.Fatalf("run report: %v", err)
	}
	if rep.Protocol != DCPIM || rep.Label != "golden-dcpim" {
		t.Fatalf("report identity: %+v", rep)
	}
	if rep.Samples != len(lines)-2 { // header + trailing newline
		t.Errorf("report samples %d, CSV rows %d", rep.Samples, len(lines)-2)
	}
	counters := map[string]float64{}
	for _, c := range rep.Counters {
		counters[c.Name] = c.Value
	}
	if counters["core/tokens_issued"] == 0 {
		t.Error("no tokens issued in a loaded dcPIM run")
	}
	if counters["core/unsched_bytes"] == 0 || counters["core/sched_bytes"] == 0 {
		t.Error("unscheduled/scheduled byte split not populated")
	}
	if counters["netsim/delivered_bytes"] == 0 {
		t.Error("fabric delivered-bytes counter not populated")
	}
}

// TestMetricsFilesWritten covers the -metrics dir/ path: files land under
// the directory with sanitized names.
func TestMetricsFilesWritten(t *testing.T) {
	dir := t.TempDir()
	spec := metricsGoldenSpec(t, DCPIM)
	spec.Metrics.Dir = dir
	spec.Metrics.Label = "fig weird/label"
	res := Run(spec)

	csvPath := filepath.Join(dir, "fig-weird-label.csv")
	jsonPath := filepath.Join(dir, "fig-weird-label.json")
	csvB, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	jsonB, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON not written: %v", err)
	}
	if !bytes.Equal(csvB, res.MetricsCSV) || !bytes.Equal(jsonB, res.MetricsJSON) {
		t.Fatal("on-disk artifacts differ from RunResult bytes")
	}
}

// TestMetricsAcrossProtocols runs every comparator with telemetry enabled:
// instruments register without name collisions and each protocol
// populates its own section.
func TestMetricsAcrossProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("comparator metrics sweep")
	}
	prefixes := map[string]string{
		DCPIM:      "core/",
		HomaAeolus: "homa-aeolus/",
		NDP:        "ndp/",
		HPCC:       "hpcc/",
	}
	for _, proto := range Comparators {
		res := Run(metricsGoldenSpec(t, proto))
		var rep RunReport
		if err := json.Unmarshal(res.MetricsJSON, &rep); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		found := false
		for _, c := range rep.Counters {
			if strings.HasPrefix(c.Name, prefixes[proto]) && c.Value > 0 {
				found = true
				break
			}
		}
		if !found {
			for _, h := range rep.Histograms {
				if strings.HasPrefix(h.Name, prefixes[proto]) && h.Count > 0 {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("%s: no populated instrument under %q", proto, prefixes[proto])
		}
	}
}
