package experiments

import (
	"fmt"
	"io"
	"strings"

	"dcpim/internal/sim"
)

// table accumulates rows and renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int, int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// steadyUtilization returns mean fabric utilization (fraction of aggregate
// host capacity) over [from, to).
func steadyUtilization(res RunResult, from, to sim.Duration) float64 {
	series := res.Col.UtilizationSeries(res.Hosts, res.HostRate)
	bin := 10 * sim.Microsecond
	lo, hi := int(from/bin), int(to/bin)
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return 0
	}
	var sum float64
	for _, u := range series[lo:hi] {
		sum += u
	}
	return sum / float64(hi-lo)
}

// sustains reports whether the protocol kept up with the offered load.
// Runs include 50% drain time past the trace horizon; a protocol that
// keeps its backlog bounded delivers ≳95% of offered bytes (the remainder
// is the undeliverable heavy tail arriving near the horizon), while one
// that cannot sustain the load leaves a growing backlog and lands well
// below. Completion guards against protocols that move bytes but strand
// flows.
func sustains(res RunResult, load float64, traceHorizon sim.Duration) bool {
	_ = load
	_ = traceHorizon
	return res.Utilization() >= 0.90 && res.Completion() >= 0.90
}
