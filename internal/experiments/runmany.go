package experiments

import (
	"sync"
	"sync/atomic"
)

// RunMany executes the given runs on a pool of workers goroutines and
// returns their results in input order. workers <= 1 (or a single spec)
// degenerates to the plain serial loop.
//
// Determinism contract: every simulation is hermetic — it owns its engine,
// RNG, fabric and collector, all seeded from the spec alone — so each
// RunResult is a pure function of its RunSpec. Parallel execution therefore
// yields exactly the results of the serial loop, in the same order; only
// wall-clock time changes. The one shared structure, the packet free pool,
// is a sync.Pool holding only zeroed packets, so pool scheduling cannot
// leak state between runs. Experiments exploit this by batching independent
// probes (sweep points, bisection iterations) through RunMany and printing
// from the ordered results, which keeps their output byte-identical to a
// serial run at any worker count.
func RunMany(specs []RunSpec, workers int) []RunResult {
	results := make([]RunResult, len(specs))
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i := range specs {
			results[i] = Run(specs[i])
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				results[i] = Run(specs[i])
			}
		}()
	}
	wg.Wait()
	return results
}
