package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunMany executes the given runs on a pool of workers goroutines and
// returns their results in input order. workers <= 0 means one worker
// per CPU (runtime.GOMAXPROCS(0)); workers == 1 (or a single spec) is
// the plain serial loop. Each run itself uses max(1, RunSpec.Shards)
// goroutines, so a sweep of sharded specs runs up to workers × shards
// goroutines — Options.workers divides the pool by the shard count to
// keep that product near GOMAXPROCS.
//
// Determinism contract: every simulation is hermetic — it owns its engine,
// RNG, fabric and collector, all seeded from the spec alone — so each
// RunResult is a pure function of its RunSpec. Parallel execution therefore
// yields exactly the results of the serial loop, in the same order; only
// wall-clock time changes. The one shared structure, the packet free pool,
// is a sync.Pool holding only zeroed packets, so pool scheduling cannot
// leak state between runs. Experiments exploit this by batching independent
// probes (sweep points, bisection iterations) through RunMany and printing
// from the ordered results, which keeps their output byte-identical to a
// serial run at any worker count.
func RunMany(specs []RunSpec, workers int) []RunResult {
	results := make([]RunResult, len(specs))
	forEachIndex(len(specs), workers, func(i int) {
		results[i] = Run(specs[i])
	})
	return results
}

// forEachIndex invokes fn(i) for every i in [0, n) on a pool of workers
// goroutines (<= 0 means GOMAXPROCS; <= 1 is a plain serial loop). It is
// the execution core of RunMany and MatcherSweep: fn must be a pure
// function of i writing only to its own slot, which makes the result
// independent of the worker count and scheduling — parallelism changes
// wall-clock time only.
func forEachIndex(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	//lint:ignore simgoroutine forEachIndex is the sanctioned sweep-level worker pool; each worker owns whole cells
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//lint:ignore simgoroutine pool workers never share a fabric or RNG; parallelism is across independent cells
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
