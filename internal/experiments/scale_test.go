package experiments

import (
	"testing"

	"dcpim/internal/sim"
	"dcpim/internal/workload"
)

// TestQueueDisciplineByteIdentity locks the queue-discipline invariant:
// both event-queue implementations execute the same (time, seq) order, so
// the golden digest runs — serial and sharded, clean and faulted — must
// reproduce the checked-in digests under the ladder exactly as the
// existing golden tests do under the heap.
func TestQueueDisciplineByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults bool
		want   uint64
	}{
		{"clean", false, goldenDigestClean},
		{"faulted", true, goldenDigestFaulted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 4} {
				spec := goldenSpec(t, DCPIM, tc.faults)
				spec.Shards = shards
				spec.Queue = sim.QueueLadder
				res := Run(spec)
				if res.Queue != sim.QueueLadder {
					t.Fatalf("shards=%d resolved discipline %s, want ladder", shards, res.Queue)
				}
				if res.Digest != tc.want {
					t.Errorf("ladder shards=%d digest %#016x, want golden %#016x", shards, res.Digest, tc.want)
				}
			}
		})
	}
}

// golden1024Digest locks the 1024-host FatTree campaign cell (WebSearch
// all-to-all at load 0.3, 100 µs trace, seed 8 — the `-run scale` low-load
// point). Regenerate the same way as the leaf-spine goldens: run the test
// with -v and copy the measured digest, with the change explained by the
// commit.
const golden1024Digest uint64 = 0xfdbadd4100015ba2

// scale1024Spec mirrors the low-load 1024-host cell of RunScale.
func scale1024Spec() RunSpec {
	tp := fatTreeFor(1024)
	horizon := 100 * sim.Microsecond
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.3,
		Dist: workload.WebSearch(), Horizon: horizon, Seed: 1,
	}.Generate()
	return RunSpec{
		Protocol: DCPIM, Topo: tp, Trace: tr,
		Horizon: horizon + horizon/2, Seed: 8, Digest: true,
	}
}

// Test1024HostDigest runs the 1024-host FatTree at 1, 8, 16 and 64 shards
// under both queue disciplines and requires every run to reproduce the
// committed digest: the hyperscale configurations the campaign actually
// uses stay byte-identical to serial execution, not just the small
// topologies the other determinism tests cover.
func Test1024HostDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("eight 1024-host runs")
	}
	for _, shards := range []int{1, 8, 16, 64} {
		for _, q := range []sim.QueueDiscipline{sim.QueueHeap, sim.QueueLadder} {
			spec := scale1024Spec()
			spec.Shards = shards
			spec.Queue = q
			res := Run(spec)
			if res.Digest != golden1024Digest {
				t.Errorf("shards=%d queue=%s digest %#016x, want golden %#016x (see regeneration note)",
					shards, q, res.Digest, golden1024Digest)
			}
		}
	}
}

// golden8192Digest locks the k=32 (8192-host) FatTree cell: WebSearch
// all-to-all at load 0.3 over a 10 µs trace, seed 8 — the hyperscale
// rung the multi-core campaign sweeps, on a horizon short enough for a
// unit test. Regenerate like the other goldens: run with -v and copy the
// measured digest, with the change explained by the commit.
const golden8192Digest uint64 = 0xa5a45b638a5e4730

// scale8192Spec mirrors the 8192-host campaign cell at test scale.
func scale8192Spec() RunSpec {
	tp := fatTreeFor(8192)
	horizon := 10 * sim.Microsecond
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.3,
		Dist: workload.WebSearch(), Horizon: horizon, Seed: 1,
	}.Generate()
	return RunSpec{
		Protocol: DCPIM, Topo: tp, Trace: tr,
		Horizon: horizon + horizon/2, Seed: 8, Digest: true,
	}
}

// Test8192HostDigest is the hyperscale-rung sibling of Test1024HostDigest:
// the 8192-host FatTree must reproduce its committed digest serially and
// at 8 shards, under both queue disciplines — structural routing, the
// hybrid barrier and the ladder's upper rungs all in the hot path.
func Test8192HostDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("four 8192-host runs")
	}
	for _, shards := range []int{1, 8} {
		for _, q := range []sim.QueueDiscipline{sim.QueueHeap, sim.QueueLadder} {
			spec := scale8192Spec()
			spec.Shards = shards
			spec.Queue = q
			res := Run(spec)
			if res.Digest != golden8192Digest {
				t.Errorf("shards=%d queue=%s digest %#016x, want golden %#016x (see regeneration note)",
					shards, q, res.Digest, golden8192Digest)
			}
		}
	}
}

// TestWorkersClamp pins the RunMany pool division: the pool is the floor
// of the worker budget over the shard count, clamped to one, so
// workers × shards never exceeds the budget (the old ceiling division
// oversubscribed whenever shards didn't divide it).
func TestWorkersClamp(t *testing.T) {
	for _, tc := range []struct {
		workers, shards, want int
	}{
		{8, 1, 8},
		{8, 2, 4},
		{4, 3, 1},  // ceiling division used to give 2 → 6 goroutines on 4 CPUs
		{8, 3, 2},  // floor: 2×3 = 6 ≤ 8; ceiling gave 3×3 = 9
		{2, 8, 1},  // one simulation wider than the budget still runs
		{1, 64, 1}, // never zero
	} {
		o := Options{Workers: tc.workers, Shards: tc.shards}
		if got := o.workers(); got != tc.want {
			t.Errorf("workers=%d shards=%d: pool %d, want %d", tc.workers, tc.shards, got, tc.want)
		}
		if got := o.EffectiveWorkers(); got != tc.want {
			t.Errorf("EffectiveWorkers(workers=%d shards=%d) = %d, want %d", tc.workers, tc.shards, got, tc.want)
		}
	}
}
