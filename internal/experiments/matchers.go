package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dcpim/internal/matching"
)

// The matchers experiment compares every registered matcher head-to-head
// on the same demand graphs: convergence rounds, control bytes per
// matched byte, and matching size relative to M* (converged PIM), over
// ports up to 10^5 × sparse/dense graphs × communication budgets. It is
// ROADMAP item 3 — the paper's theory core turned into a research
// instrument.

// MatcherSweepConfig enumerates one sweep. Every cell — one (graph kind,
// ports, matcher, budget, trial) tuple — is a pure function of its
// indices and Seed, so the sweep is byte-identical at any worker count.
type MatcherSweepConfig struct {
	Matchers    []string  // registry names, run in the given order
	SparsePorts []int     // sparse-graph sizes (n per side)
	DensePorts  []int     // dense-graph sizes (complete bipartite)
	Degree      float64   // sparse average sender degree δ̄
	BudgetFracs []float64 // per-round budgets as fractions of an unconstrained round (budgeted matchers only)
	Trials      int
	Seed        int64
	Workers     int
}

// MatcherRow is one sweep cell's result — the machine-readable schema
// behind matchers.csv and BENCH_matchers.json.
type MatcherRow struct {
	Matcher         string  `json:"matcher"`
	Graph           string  `json:"graph"` // "sparse" or "dense"
	Ports           int     `json:"ports"`
	Degree          float64 `json:"degree"`      // realized average sender degree
	BudgetFrac      float64 `json:"budget_frac"` // 0 = unlimited
	BudgetBits      int64   `json:"budget_bits"` // realized per-round budget (0 = unlimited)
	Trial           int     `json:"trial"`
	Rounds          int     `json:"rounds"`
	Converged       bool    `json:"converged"`
	ControlMsgs     int64   `json:"control_msgs"`
	ControlBits     int64   `json:"control_bits"`
	MaxRoundBits    int64   `json:"max_round_bits"`
	Matched         int     `json:"matched"`
	MStar           int     `json:"m_star"`
	SizeVsMStar     float64 `json:"size_vs_mstar"`
	CtlBytesPerByte float64 `json:"control_bytes_per_matched_byte"`
	Reconfigs       int     `json:"reconfigs"`
}

// matcherCell is one unit of sweep work, fully determined before any
// cell executes.
type matcherCell struct {
	kind       string // "sparse" | "dense"
	kindIdx    int
	ports      int
	portIdx    int
	matcher    string
	cfgIdx     int // index over (matcher, budget) configurations
	budgetFrac float64
	trial      int
}

// MatcherSweep runs every cell on a forEachIndex worker pool and returns
// rows in enumeration order (graph kind → ports → matcher/budget config
// → trial). Each cell rebuilds its graph from a seed derived only from
// the cell's indices, runs the matcher with an independent derived seed,
// and compares against M* (the registry's "pim" matcher) computed on the
// same graph — so rows are pure functions of (Config, cell index) and
// the sweep is byte-identical at any Workers value.
func MatcherSweep(cfg MatcherSweepConfig) ([]MatcherRow, error) {
	// Resolve matcher constructors up front so an unknown name fails
	// before any work runs.
	descs := make(map[string]matching.Descriptor, len(cfg.Matchers))
	for _, name := range cfg.Matchers {
		d, ok := matching.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("matchers: unknown matcher %q (registered: %v)", name, matching.Names())
		}
		descs[name] = d
	}

	// Enumerate cells: (matcher, budget) configs first, then the graph
	// grid. Non-budgeted matchers get only the unlimited config.
	type cfgEntry struct {
		matcher string
		frac    float64
	}
	var cfgs []cfgEntry
	for _, name := range cfg.Matchers {
		cfgs = append(cfgs, cfgEntry{name, 0})
		if descs[name].Budgeted {
			for _, f := range cfg.BudgetFracs {
				if f > 0 {
					cfgs = append(cfgs, cfgEntry{name, f})
				}
			}
		}
	}
	var cells []matcherCell
	kinds := []struct {
		kind  string
		ports []int
	}{{"sparse", cfg.SparsePorts}, {"dense", cfg.DensePorts}}
	for kindIdx, k := range kinds {
		for portIdx, n := range k.ports {
			for cfgIdx, ce := range cfgs {
				for trial := 0; trial < cfg.Trials; trial++ {
					cells = append(cells, matcherCell{
						kind: k.kind, kindIdx: kindIdx,
						ports: n, portIdx: portIdx,
						matcher: ce.matcher, cfgIdx: cfgIdx,
						budgetFrac: ce.frac, trial: trial,
					})
				}
			}
		}
	}

	rows := make([]MatcherRow, len(cells))
	errs := make([]error, len(cells))
	forEachIndex(len(cells), cfg.Workers, func(i int) {
		rows[i], errs[i] = runMatcherCell(cfg, cells[i], descs[cells[i].matcher])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// runMatcherCell executes one cell: graph, M* reference, matcher run.
func runMatcherCell(cfg MatcherSweepConfig, c matcherCell, d matching.Descriptor) (MatcherRow, error) {
	// Seeds derive from the cell's grid coordinates only — not the cell's
	// position in the flattened slice — so adding matchers or budgets
	// leaves other cells' graphs unchanged.
	gseed := cfg.Seed + 1_000_000*int64(c.portIdx) + 100_000*int64(c.kindIdx) + int64(c.trial)
	var g *matching.Graph
	if c.kind == "dense" {
		g = matching.DenseGraph(c.ports, c.ports)
	} else {
		g = matching.SparseRandomGraph(rand.New(rand.NewSource(gseed)), c.ports, c.ports, cfg.Degree)
	}

	// M* — converged PIM on this graph, the paper's reference point.
	ref, err := matching.MustLookup("pim").New(matching.Options{})
	if err != nil {
		return MatcherRow{}, err
	}
	mStarM, _ := ref.Match(g, rand.New(rand.NewSource(gseed+13)))
	mStar := mStarM.Size()

	// Budget: a fraction of the worst-case unconstrained round cost
	// (every edge requested, each request echoed by grant + accept).
	var budgetBits int64
	if c.budgetFrac > 0 {
		budgetBits = int64(c.budgetFrac * 3 * float64(g.Edges()) * matching.ControlMsgBits)
	}
	m, err := d.New(matching.Options{BudgetBits: float64(budgetBits)})
	if err != nil {
		return MatcherRow{}, err
	}
	got, st := m.Match(g, rand.New(rand.NewSource(gseed+7919*int64(c.cfgIdx+1))))
	if !got.Valid(g) {
		return MatcherRow{}, fmt.Errorf("matchers: %s returned invalid matching on %s n=%d trial=%d",
			c.matcher, c.kind, c.ports, c.trial)
	}

	var maxRound int64
	for _, b := range st.RoundBits {
		if b > maxRound {
			maxRound = b
		}
	}
	row := MatcherRow{
		Matcher: c.matcher, Graph: c.kind, Ports: c.ports,
		Degree:     g.AvgDegree(),
		BudgetFrac: c.budgetFrac, BudgetBits: budgetBits,
		Trial: c.trial, Rounds: st.Rounds, Converged: st.Converged,
		ControlMsgs: st.Msgs, ControlBits: st.ControlBits, MaxRoundBits: maxRound,
		Matched: got.Size(), MStar: mStar,
		CtlBytesPerByte: st.ControlBytesPerMatchedByte(got),
		Reconfigs:       st.Reconfigs,
	}
	if mStar > 0 {
		row.SizeVsMStar = float64(got.Size()) / float64(mStar)
	}
	return row, nil
}

// WriteMatcherCSV writes sweep rows in the stable column order the
// golden determinism test digests.
func WriteMatcherCSV(w io.Writer, rows []MatcherRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"matcher", "graph", "ports", "degree", "budget_frac", "budget_bits",
		"trial", "rounds", "converged", "control_msgs", "control_bits",
		"max_round_bits", "matched", "m_star", "size_vs_mstar",
		"control_bytes_per_matched_byte", "reconfigs",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Matcher, r.Graph, strconv.Itoa(r.Ports),
			fmt.Sprintf("%.3f", r.Degree),
			fmt.Sprintf("%.3f", r.BudgetFrac),
			strconv.FormatInt(r.BudgetBits, 10),
			strconv.Itoa(r.Trial), strconv.Itoa(r.Rounds),
			strconv.FormatBool(r.Converged),
			strconv.FormatInt(r.ControlMsgs, 10),
			strconv.FormatInt(r.ControlBits, 10),
			strconv.FormatInt(r.MaxRoundBits, 10),
			strconv.Itoa(r.Matched), strconv.Itoa(r.MStar),
			fmt.Sprintf("%.4f", r.SizeVsMStar),
			fmt.Sprintf("%.6f", r.CtlBytesPerByte),
			strconv.Itoa(r.Reconfigs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatMatcherTable renders sweep rows as an aligned text table,
// aggregating trials per (matcher, graph, ports, budget) configuration
// in first-seen order (cells enumerate trials innermost, so
// configurations appear in sweep order).
func FormatMatcherTable(w io.Writer, rows []MatcherRow) {
	type aggKey struct {
		matcher, graph string
		ports          int
		frac           float64
	}
	type agg struct {
		rounds, sizeVs, ctl, reconfigs float64
		converged, n                   int
	}
	var order []aggKey
	byKey := map[aggKey]*agg{}
	for _, r := range rows {
		k := aggKey{r.Matcher, r.Graph, r.Ports, r.BudgetFrac}
		a := byKey[k]
		if a == nil {
			a = &agg{}
			byKey[k] = a
			order = append(order, k)
		}
		a.rounds += float64(r.Rounds)
		a.sizeVs += r.SizeVsMStar
		a.ctl += r.CtlBytesPerByte
		a.reconfigs += float64(r.Reconfigs)
		if r.Converged {
			a.converged++
		}
		a.n++
	}
	tbl := newTable("matcher", "graph", "ports", "budget", "rounds", "size/M*", "ctl-B/B", "converged", "reconfigs")
	for _, k := range order {
		a := byKey[k]
		budget := "-"
		if k.frac > 0 {
			budget = fmt.Sprintf("%.0f%%", k.frac*100)
		}
		tbl.add(k.matcher, k.graph, k.ports, budget,
			a.rounds/float64(a.n), a.sizeVs/float64(a.n),
			fmt.Sprintf("%.5f", a.ctl/float64(a.n)),
			fmt.Sprintf("%d/%d", a.converged, a.n),
			int(a.reconfigs)/a.n)
	}
	tbl.write(w)
}

// matcherDigest folds the canonical CSV rendering of the rows with
// FNV-1a — the digest the golden determinism test pins across -parallel
// 1/4/8.
func matcherDigest(rows []MatcherRow) (uint64, error) {
	var buf bytes.Buffer
	if err := WriteMatcherCSV(&buf, rows); err != nil {
		return 0, err
	}
	h := fnvOffset
	for _, b := range buf.Bytes() {
		h = fnvMix(h, uint64(b))
	}
	return h, nil
}

// defaultMatcherSweep resolves the sweep grid from experiment Options:
// the full campaign by default (sparse up to 10^5 ports), a small grid
// under quick/smoke settings.
func defaultMatcherSweep(o Options) MatcherSweepConfig {
	cfg := MatcherSweepConfig{
		Matchers:    matching.Names(),
		SparsePorts: []int{1024, 16384, 100_000},
		DensePorts:  []int{256, 1024},
		Degree:      4,
		BudgetFracs: []float64{0.25, 0.05},
		Trials:      3,
		Seed:        o.Seed,
		Workers:     o.workers(),
	}
	if o.Matchers != "" {
		cfg.Matchers = nil
		for _, name := range strings.Split(o.Matchers, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.Matchers = append(cfg.Matchers, name)
			}
		}
	}
	if o.Hosts != 0 {
		cfg.SparsePorts = []int{o.Hosts}
		cfg.DensePorts = nil
		// Dense graphs have n² edges; keep the dense axis to sizes where
		// that is affordable.
		if o.Hosts <= 2048 {
			cfg.DensePorts = []int{o.Hosts}
		}
	}
	if o.Scale > 0 && o.Scale < 1 {
		cfg.Trials = 2
		if o.Hosts == 0 {
			cfg.SparsePorts = []int{256}
			cfg.DensePorts = []int{64}
		}
	}
	return cfg
}

// RunMatchers is the `-run matchers` experiment: the registry-wide
// matcher-vs-matcher sweep. It prints a per-configuration table
// (averaged over trials), the sweep digest, and — with -metrics DIR —
// writes DIR/matchers.csv (every trial row) plus
// DIR/BENCH_matchers.json for CI archiving.
func RunMatchers(o Options, w io.Writer) error {
	cfg := defaultMatcherSweep(o)
	fmt.Fprintf(w, "Matcher lab: %v\n", cfg.Matchers)
	fmt.Fprintf(w, "sparse n=%v (δ̄=%.0f), dense n=%v, budgets %v of an unconstrained round, %d trials\n\n",
		cfg.SparsePorts, cfg.Degree, cfg.DensePorts, cfg.BudgetFracs, cfg.Trials)

	rows, err := MatcherSweep(cfg)
	if err != nil {
		return err
	}
	FormatMatcherTable(w, rows)

	digest, err := matcherDigest(rows)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsweep digest: 0x%016x (%d rows; identical at any -parallel value)\n", digest, len(rows))

	if o.MetricsDir != "" {
		if err := os.MkdirAll(o.MetricsDir, 0o755); err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := WriteMatcherCSV(&buf, rows); err != nil {
			return err
		}
		csvPath := filepath.Join(o.MetricsDir, "matchers.csv")
		if err := os.WriteFile(csvPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
		bench, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		benchPath := filepath.Join(o.MetricsDir, "BENCH_matchers.json")
		if err := os.WriteFile(benchPath, append(bench, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s and %s\n", csvPath, benchPath)
	}
	return nil
}
