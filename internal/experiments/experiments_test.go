package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dcpim/internal/sim"
	"dcpim/internal/workload"
)

// quick returns options that shrink every experiment to seconds of wall
// time: 8–16 host topologies and 5–10% horizons.
func quick() Options { return Options{Seed: 1, Scale: 0.08, Hosts: 8} }

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			o := quick()
			if e.ID == "fig4a" {
				o.Hosts = 0 // needs 3 racks; use the full topology briefly
				o.Scale = 0.3
			}
			if e.ID == "fig7" {
				o.Scale = 0.05
			}
			if err := e.Run(o, &buf); err != nil {
				t.Fatalf("%s: %v\noutput:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if len(out) < 100 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			if strings.Contains(out, "NaN") {
				t.Fatalf("%s: NaN in output:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig3a"); !ok {
		t.Fatal("fig3a not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id found")
	}
	if len(All()) != 17 {
		t.Fatalf("experiments = %d, want 17", len(All()))
	}
}

func TestRunSpecBasic(t *testing.T) {
	tp := leafSpineFor(8)
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.4,
		Dist: workload.IMC10(), Horizon: 200 * sim.Microsecond, Seed: 3,
	}.Generate()
	for _, proto := range []string{DCPIM, HomaAeolus, Homa, NDP, HPCC, PHost} {
		res := Run(RunSpec{
			Protocol: proto, Topo: tp, Trace: tr,
			Horizon: 500 * sim.Microsecond, Seed: 4,
		})
		if res.Completion() < 0.9 {
			t.Errorf("%s: completion %.2f at load 0.4", proto, res.Completion())
		}
		if res.Utilization() <= 0 || res.Utilization() > 1.01 {
			t.Errorf("%s: utilization %.2f out of range", proto, res.Utilization())
		}
	}
}

func TestRunSpecTCPVariants(t *testing.T) {
	tp := leafSpineConfigFor(8)
	tb := tp
	tb.HostRate, tb.SpineRate = 10e9, 10e9
	topo := tb.Build()
	tr := workload.AllToAllConfig{
		Hosts: topo.NumHosts, HostRate: topo.HostRate, Load: 0.3,
		Dist: workload.IMC10(), Horizon: 2 * sim.Millisecond, Seed: 5,
	}.Generate()
	for _, proto := range []string{DCTCP, Cubic} {
		res := Run(RunSpec{
			Protocol: proto, Topo: topo, Trace: tr,
			Horizon: 6 * sim.Millisecond, Seed: 6,
		})
		if res.Completion() < 0.85 {
			t.Errorf("%s: completion %.2f", proto, res.Completion())
		}
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown protocol accepted")
		}
	}()
	tp := leafSpineFor(8)
	Run(RunSpec{Protocol: "bogus", Topo: tp,
		Trace: &workload.Trace{}, Horizon: sim.Microsecond})
}

func TestSteadyUtilizationWindow(t *testing.T) {
	tp := leafSpineFor(8)
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.5,
		Dist: workload.IMC10(), Horizon: 500 * sim.Microsecond, Seed: 7,
	}.Generate()
	res := Run(RunSpec{Protocol: DCPIM, Topo: tp, Trace: tr,
		Horizon: 750 * sim.Microsecond, Seed: 8})
	u := steadyUtilization(res, 250*sim.Microsecond, 500*sim.Microsecond)
	if u < 0.25 || u > 0.75 {
		t.Fatalf("steady utilization %.2f, want near the (noisy 8-host) offered 0.5", u)
	}
	// At a longer horizon the whole-run ratio stabilizes; dcPIM sustains.
	tr2 := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.5,
		Dist: workload.IMC10(), Horizon: 2 * sim.Millisecond, Seed: 7,
	}.Generate()
	res2 := Run(RunSpec{Protocol: DCPIM, Topo: tp, Trace: tr2,
		Horizon: 3 * sim.Millisecond, Seed: 8})
	if !sustains(res2, 0.5, 2*sim.Millisecond) {
		t.Fatalf("dcPIM does not sustain load 0.5: util=%.2f completion=%.2f",
			res2.Utilization(), res2.Completion())
	}
}

func TestTopologyScaling(t *testing.T) {
	if tp := leafSpineFor(0); tp.NumHosts != 144 {
		t.Fatalf("default hosts = %d", tp.NumHosts)
	}
	if tp := leafSpineFor(8); tp.NumHosts != 8 {
		t.Fatalf("small hosts = %d", tp.NumHosts)
	}
	if tp := leafSpineFor(32); tp.NumHosts != 32 {
		t.Fatalf("32-host variant = %d", tp.NumHosts)
	}
	if tp := leafSpineFor(64); tp.NumHosts != 64 {
		t.Fatalf("custom hosts = %d", tp.NumHosts)
	}
	if tp := oversubFor(0); tp.Switches[0].Ports[16].Rate != 200e9 {
		t.Fatal("oversub uplink rate")
	}
	if tp := fatTreeFor(16); tp.NumHosts != 16 {
		t.Fatalf("small fat-tree = %d", tp.NumHosts)
	}
	if tp := fatTreeFor(128); tp.NumHosts != 128 {
		t.Fatalf("k=8 fat-tree = %d", tp.NumHosts)
	}
	if tp := fatTreeFor(0); tp.NumHosts != 1024 {
		t.Fatalf("full fat-tree = %d", tp.NumHosts)
	}
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Scale: 0.5}
	if got := o.scaled(2 * sim.Millisecond); got != sim.Millisecond {
		t.Fatalf("scaled = %v", got)
	}
	o.Scale = 0
	if got := o.scaled(sim.Millisecond); got != sim.Millisecond {
		t.Fatalf("zero scale should keep duration, got %v", got)
	}
}

func TestCappedUtilizationBounds(t *testing.T) {
	tp := leafSpineFor(8)
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.3,
		Dist: workload.IMC10(), Horizon: 300 * sim.Microsecond, Seed: 5,
	}.Generate()
	res := Run(RunSpec{Protocol: DCPIM, Topo: tp, Trace: tr,
		Horizon: 600 * sim.Microsecond, Seed: 6})
	u := res.CappedUtilization()
	if u <= 0 || u > 1.01 {
		t.Fatalf("capped utilization %v out of range", u)
	}
	// Capped denominator can only shrink relative to raw offered bytes.
	if res.CappedUtilization() < res.Utilization() {
		t.Fatal("capped utilization below raw (denominator grew?)")
	}
}
