// Package experiments reproduces every table and figure of the dcPIM
// paper's evaluation (§4): it wires workloads, topologies and protocols
// into the fabric simulator, runs them, and prints the same rows and
// series the paper plots. cmd/experiments exposes each one on the command
// line; EXPERIMENTS.md records paper-reported versus measured values.
package experiments

import (
	"io"
	"runtime"

	"dcpim/internal/core"
	"dcpim/internal/faults"
	"dcpim/internal/metrics"
	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/protocols"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"

	// Each protocol package self-registers with the protocol registry in
	// its init; core registers "dcpim" the same way. Blank imports pull
	// every comparator into the binary.
	_ "dcpim/internal/protocols/fastpass"
	_ "dcpim/internal/protocols/homa"
	_ "dcpim/internal/protocols/hpcc"
	_ "dcpim/internal/protocols/ndp"
	_ "dcpim/internal/protocols/phost"
	_ "dcpim/internal/protocols/tcp"
)

// Protocol names usable in RunSpec.
const (
	DCPIM      = "dcpim"
	HomaAeolus = "homa-aeolus"
	Homa       = "homa"
	NDP        = "ndp"
	HPCC       = "hpcc"
	PHost      = "phost"
	DCTCP      = "dctcp"
	Cubic      = "cubic"
	Fastpass   = "fastpass"
)

// Comparators is the paper's simulation protocol set (Figures 3–5).
var Comparators = []string{DCPIM, HomaAeolus, NDP, HPCC}

// Options tunes experiment execution.
type Options struct {
	// Seed for all randomness.
	Seed int64
	// Scale multiplies simulation horizons; < 1 gives quick smoke runs,
	// 1 the default fidelity.
	Scale float64
	// Hosts overrides topology size where the experiment allows scaling
	// (0 = the paper's size).
	Hosts int
	// Workers bounds how many simulations sweep experiments run
	// concurrently through RunMany (0 = GOMAXPROCS, 1 = serial). Results
	// and printed output are identical at any setting.
	Workers int
	// Shards splits every fabric into this many barrier-synchronized
	// shards along topology boundary links (0 or 1 = serial). Collector
	// output, counters, digests and sampled metrics are byte-identical at
	// any value; only wall-clock time changes. See DESIGN.md §11.
	Shards int
	// Procs pins the GOMAXPROCS axis of the scale campaign (0 = sweep
	// {1, min(8, NumCPU)}). Execution order — and every digest — is
	// independent of it; only wall-clock time changes. See DESIGN.md §16.
	Procs int
	// MetricsDir, when non-empty, enables the telemetry layer on
	// instrumented experiments: each labeled run writes its sampled CSV
	// series and JSON report under this directory.
	MetricsDir string
	// CheckpointEvery, when positive, snapshots every instrumented run at
	// this simulated-time cadence (see internal/checkpoint). Snapshots are
	// pure reads taken at barrier sync points, so the simulated packet
	// stream — and every digest — is unchanged.
	CheckpointEvery sim.Duration
	// CheckpointDir, when non-empty, receives the snapshot files
	// (<label>.ck<index>.dcpimck) of checkpointed runs.
	CheckpointDir string
	// Queue selects the engine event-queue discipline (heap, ladder, or
	// auto-pick from expected event density). Execution order — and thus
	// every digest — is identical under either discipline; only wall-clock
	// time changes. See DESIGN.md §13.
	Queue sim.QueueDiscipline
	// Matchers restricts the `matchers` experiment to a comma-separated
	// list of registered matcher names (empty = all registered; see
	// internal/matching's registry and DESIGN.md §15).
	Matchers string
}

// DefaultOptions returns full-fidelity settings.
func DefaultOptions() Options { return Options{Seed: 1, Scale: 1} }

func (o Options) scaled(d sim.Duration) sim.Duration {
	if o.Scale <= 0 {
		return d
	}
	return sim.Duration(float64(d) * o.Scale)
}

// workers resolves the worker-pool size for RunMany. Each concurrent
// simulation runs max(1, Shards) engine goroutines, so the pool is the
// floor of GOMAXPROCS over the shard count — workers × shards never
// exceeds GOMAXPROCS (the old ceiling division oversubscribed the
// machine whenever shards didn't divide it evenly: 4 CPUs at 3 shards
// gave 2 workers × 3 shards = 6 runnable engine goroutines). The floor
// is clamped to one worker so sweeps always make progress even when a
// single simulation is wider than the machine.
func (o Options) workers() int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if o.Shards > 1 {
		w /= o.Shards
		if w < 1 {
			w = 1
		}
	}
	return w
}

// EffectiveWorkers reports the RunMany pool size the options resolve to —
// what actually bounds sweep concurrency after the shard clamp — so run
// reports can surface it instead of the raw -parallel flag.
func (o Options) EffectiveWorkers() int { return o.workers() }

// metrics returns a MetricsSpec labeled for one run, or nil when the
// telemetry layer is disabled (no MetricsDir).
func (o Options) metrics(label string) *MetricsSpec {
	if o.MetricsDir == "" {
		return nil
	}
	return &MetricsSpec{Dir: o.MetricsDir, Label: label}
}

// checkpoint returns a CheckpointSpec labeled for one run, or nil when
// periodic snapshots are disabled (no CheckpointEvery).
func (o Options) checkpoint(label string) *CheckpointSpec {
	if o.CheckpointEvery <= 0 {
		return nil
	}
	return &CheckpointSpec{Every: o.CheckpointEvery, Dir: o.CheckpointDir, Label: label, Journal: true}
}

// RunSpec describes one simulation run.
type RunSpec struct {
	Protocol string
	Topo     *topo.Topology
	Trace    *workload.Trace
	Horizon  sim.Duration // total run time (trace horizon + drain)
	Seed     int64
	Shards   int                 // fabric shard count (0 or 1 = serial)
	Queue    sim.QueueDiscipline // engine event-queue discipline (QueueAuto = pick by density)
	Barrier  sim.BarrierMode     // epoch-barrier implementation (zero value = hybrid; byte-identical either way)
	BinWidth sim.Duration        // utilization series bin (0 = 10 µs)
	DcPIM    *core.Config        // optional dcPIM parameter override
	Fabric   *netsim.Config      // optional fabric override

	// Faults, when set, is installed on the fabric before the run: the
	// resilience experiment scripts link failures, loss bursts, switch
	// reboots and host pauses against every protocol identically.
	Faults *faults.Schedule
	// Checkpoint, when set, snapshots the full simulation state every
	// Checkpoint.Every of simulated time (Run then routes through
	// RunCheckpointed). Capture is pure reads at barrier sync points, so
	// results are byte-identical with and without it.
	Checkpoint *CheckpointSpec
	// Digest, when set, folds every delivered packet (time, host, and
	// header fields) into RunResult.Digest. Determinism tests compare
	// digests across serial and parallel execution and against golden
	// values.
	Digest bool
	// Metrics, when set, enables the telemetry layer: instruments are
	// registered on a per-run registry, sampled on the simulation clock,
	// and serialized into RunResult.MetricsCSV / MetricsJSON (and to
	// Metrics.Dir when set). Sampling adds pure-read events only, so the
	// simulated packet stream — and Digest — is unchanged.
	Metrics *MetricsSpec
}

// RunResult carries everything the figures need from one run.
type RunResult struct {
	Protocol string
	Records  []stats.FlowRecord
	Col      *stats.Collector
	Counters netsim.Counters
	Offered  int64
	Started  int64
	Hosts    int
	HostRate float64
	Trace    *workload.Trace
	End      sim.Time            // simulation end (horizon)
	Digest   uint64              // FNV-1a over the delivered-packet stream (RunSpec.Digest)
	Events   uint64              // engine events executed, summed over shards
	Queue    sim.QueueDiscipline // resolved event-queue discipline

	// ShardStats profiles the barrier loop: per-shard event counts,
	// staged boundary arrivals, and epochs dispatched versus idle-skipped.
	ShardStats []netsim.ShardStats

	// MetricsCSV / MetricsJSON hold the sampled time series and the
	// end-of-run report when RunSpec.Metrics is set (nil otherwise).
	MetricsCSV  []byte
	MetricsJSON []byte
}

// Utilization returns goodput over the run relative to offered load.
func (r RunResult) Utilization() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Col.DeliveredBytes()) / float64(r.Offered)
}

// CappedUtilization returns delivered bytes relative to the bytes that
// were physically deliverable by the end of the run: each flow's offered
// bytes are capped at line rate times its time in the system. This makes
// sustainability checks robust to heavy-tailed workloads, where a few
// gigantic flows hold a large share of raw offered bytes that no protocol
// could have delivered within the horizon.
func (r RunResult) CappedUtilization() float64 {
	var capped int64
	end := r.End
	for _, fl := range r.Trace.Flows {
		max := int64(r.HostRate / 8 * end.Sub(fl.Arrival).Seconds())
		if max > fl.Size {
			max = fl.Size
		}
		if max > 0 {
			capped += max
		}
	}
	if capped == 0 {
		return 0
	}
	return float64(r.Col.DeliveredBytes()) / float64(capped)
}

// Completion returns the fraction of injected flows that completed.
func (r RunResult) Completion() float64 {
	if r.Started == 0 {
		return 0
	}
	return float64(r.Col.Completed()) / float64(r.Started)
}

// Run executes one simulation to its horizon and collects results. The
// protocol is resolved through the registry (protocols.MustLookup), so
// any self-registered protocol name works here.
//
// Spec.Shards > 1 runs the fabric as barrier-synchronized shards, one
// engine goroutine each; every engine carries the run seed, every device
// a seed-derived RNG stream, so the result — records, counters, digest,
// metrics — is the same at every shard count. Panics when the topology
// cannot be cut into that many shards (topo.MaxShards gives the limit).
//
// When spec.Checkpoint is set the run routes through RunCheckpointed,
// which advances in cadence-sized windows and snapshots at each
// boundary; results are byte-identical either way.
func Run(spec RunSpec) RunResult {
	if spec.Checkpoint != nil {
		res, _ := RunCheckpointed(spec)
		return res
	}
	rs := newRunState(spec)
	defer rs.close()
	rs.runTo(sim.Time(spec.Horizon))
	return rs.result()
}

// runState is one simulation mid-flight: the wired fabric, engines,
// collector and sampler, paused at a barrier sync point. Run drives it
// to the horizon in one call; the checkpoint paths (RunCheckpointed,
// Resume) drive it window by window, capturing snapshots between
// windows. Window placement never changes execution order — engines run
// events strictly in (time, seq) order and windows only bound how far —
// so both drivers produce byte-identical results.
type runState struct {
	spec        RunSpec
	q           sim.QueueDiscipline
	engines     []*sim.Engine
	grp         *sim.Group
	col         *stats.Collector
	fab         *netsim.Fabric
	reg         *metrics.Registry
	smp         *metrics.Sampler
	interval    sim.Duration
	hostDigests []uint64
}

// newRunState wires one simulation and injects its trace; the returned
// state sits at t=0 ready for runTo. Call close when done.
func newRunState(spec RunSpec) *runState {
	n := spec.Shards
	if n < 1 {
		n = 1
	}
	q := sim.PickQueue(spec.Queue, expectedPending(spec.Topo.NumHosts, n))
	engines := make([]*sim.Engine, n)
	for i := range engines {
		engines[i] = sim.NewEngineQueue(spec.Seed, q)
	}
	grp := sim.NewGroupMode(engines, spec.Barrier)
	part, err := topo.MakePartition(spec.Topo, n)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	bin := spec.BinWidth
	if bin == 0 {
		bin = 10 * sim.Microsecond
	}
	col := stats.NewCollector(bin)

	desc := protocols.MustLookup(spec.Protocol)
	fc := desc.FabricConfig()
	if spec.Fabric != nil {
		fc = *spec.Fabric
	}
	fab := netsim.NewSharded(grp, spec.Topo, fc, part)

	var reg *metrics.Registry
	if spec.Metrics != nil {
		reg = metrics.NewRegistry()
		fab.RegisterMetrics(reg)
	}
	var protoCfg any
	if spec.DcPIM != nil {
		protoCfg = spec.DcPIM
	}
	desc.Attach(fab, protocols.AttachOptions{
		Collector:   col,
		Metrics:     reg,
		ProtoConfig: protoCfg,
	})

	// The digest folds each host's delivered-packet stream separately —
	// deliveries for one host all run on its shard's engine, so the
	// per-host fold is race-free and ordered by simulation time — then
	// combines the host digests in host-id order at the end. Both levels
	// are independent of shard count.
	var hostDigests []uint64
	if spec.Digest {
		hostDigests = make([]uint64, spec.Topo.NumHosts)
		for i := range hostDigests {
			hostDigests[i] = fnvOffset
		}
		fab.AddObserver(netsim.ObserverFuncs{
			Delivered: func(host int, p *packet.Packet) {
				d := hostDigests[host]
				d = fnvMix(d, uint64(fab.HostEngine(host).Now()))
				d = fnvMix(d, uint64(host))
				d = fnvMix(d, uint64(p.Kind)<<32|uint64(uint32(p.Size)))
				d = fnvMix(d, uint64(uint32(p.Src))<<32|uint64(uint32(p.Dst)))
				d = fnvMix(d, p.Flow)
				d = fnvMix(d, uint64(p.Seq))
				hostDigests[host] = d
			},
		})
	}
	if spec.Faults != nil {
		faults.Install(fab, spec.Faults)
	}
	// The sampler freezes its column set at construction: build it after
	// every instrument is registered (fabric + protocol). It is driven
	// from barrier sync points (never engine ticks), so sampled series
	// match at every shard count; the first snapshot lands at t=0.
	var smp *metrics.Sampler
	interval := sim.Duration(0)
	if spec.Metrics != nil {
		interval = spec.Metrics.sampleInterval(spec.Horizon)
		smp = metrics.NewSampler(engines[0], reg, interval)
	}
	if spec.Checkpoint != nil && spec.Checkpoint.Journal {
		for _, eng := range engines {
			eng.StartJournal()
		}
	}
	fab.Start()
	fab.Inject(spec.Trace)
	smp.SampleAt(0)
	return &runState{
		spec: spec, q: q, engines: engines, grp: grp, col: col,
		fab: fab, reg: reg, smp: smp, interval: interval,
		hostDigests: hostDigests,
	}
}

// runTo advances the simulation to t (a no-op when already there).
// Repeated calls with increasing targets execute the same event stream
// as a single call to the final target.
func (rs *runState) runTo(t sim.Time) {
	rs.fab.RunSynced(t, rs.interval, rs.smp.SampleAt)
}

func (rs *runState) close() { rs.grp.Close() }

// result assembles the RunResult; call after runTo(horizon).
func (rs *runState) result() RunResult {
	spec := rs.spec
	var digest uint64
	if spec.Digest {
		digest = fnvOffset
		for _, d := range rs.hostDigests {
			digest = fnvMix(digest, d)
		}
	}
	var events uint64
	for _, eng := range rs.engines {
		events += eng.Events()
	}
	res := RunResult{
		Digest:     digest,
		Events:     events,
		Queue:      rs.q,
		ShardStats: rs.fab.ShardStats(),
		Protocol:   spec.Protocol,
		Records:    rs.col.Records(),
		Col:        rs.col,
		Counters:   rs.fab.Counters,
		Offered:    spec.Trace.OfferedBytes,
		Started:    int64(len(spec.Trace.Flows)),
		Hosts:      spec.Topo.NumHosts,
		HostRate:   spec.Topo.HostRate,
		Trace:      spec.Trace,
		End:        sim.Time(spec.Horizon),
	}
	if spec.Metrics != nil {
		res.MetricsCSV, res.MetricsJSON = emitMetrics(spec, rs.reg, rs.smp)
	}
	return res
}

// pendingPerHost is the measured peak of engine-pending events per host
// under the heaviest steady workloads used here (dcPIM all-to-all at load
// 0.6 peaks near 19 pending events per host on both the 128- and
// 1024-host FatTrees; see DESIGN.md §13). QueueAuto compares the
// resulting per-engine estimate against sim.LadderDensityMin.
const pendingPerHost = 19

// expectedPending estimates peak pending events on one engine when hosts
// are spread over n shards. The LPT partition keeps host counts within
// one pod of even, so the mean is a faithful per-engine estimate.
func expectedPending(hosts, n int) int {
	if n < 1 {
		n = 1
	}
	return pendingPerHost * hosts / n
}

// FNV-1a 64 folded over 8-byte words: cheap enough to run on every
// delivered packet and stable across Go versions (unlike maphash).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime
		w >>= 8
	}
	return h
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string // e.g. "fig3a"
	Title string
	Run   func(o Options, w io.Writer) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"theorem1", "Theorem 1: bounded-round matching quality vs. analytical bound", RunTheorem1},
		{"fig3a", "Figure 3(a): maximum sustainable load (IMC10, leaf-spine)", RunFig3a},
		{"fig3b", "Figure 3(b): mean slowdown across flows at load 0.6", RunFig3b},
		{"fig3cde", "Figure 3(c–e): slowdown by flow size per workload at load 0.6", RunFig3cde},
		{"fig4a", "Figure 4(a): bursty microbenchmark utilization timeline", RunFig4a},
		{"fig4b", "Figure 4(b): worst case — all flows of size BDP+1", RunFig4b},
		{"fig4c", "Figure 4(c): dense 144×143 traffic matrix utilization", RunFig4c},
		{"fig5ab", "Figure 5(a,b): 2:1 oversubscribed leaf-spine at load 0.5", RunFig5ab},
		{"fig5cd", "Figure 5(c,d): 1024-host FatTree at load 0.6", RunFig5cd},
		{"fig6", "Figure 6: sensitivity to r, k and β at load 0.54", RunFig6},
		{"fig7", "Figure 7: 32-host 10G testbed — dcPIM vs DCTCP vs Cubic", RunFig7},
		{"fastpass", "§5 comparison: dcPIM vs Fastpass (centralized arbiter) short-flow latency", RunFastpass},
		{"ablation", "dcPIM design ablations: FCT round on/off, token window sizing", RunAblation},
		{"faults", "Fault resilience: FCT and completion vs fault intensity", RunFaults},
		{"scale", "Hyperscale campaign: hosts × load × shards × GOMAXPROCS × queue discipline", RunScale},
		{"ckpt", "Checkpoint/restore: periodic snapshots, verified resume equivalence", RunCkpt},
		{"matchers", "Matcher lab: registry-wide matcher-vs-matcher sweep (rounds, control bytes, size vs M*)", RunMatchers},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
