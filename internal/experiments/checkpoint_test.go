package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"dcpim/internal/checkpoint"
	"dcpim/internal/sim"
)

// assertRunsEqual requires every observable of two runs to match:
// digest, event count, flow records, counters, and metrics artifacts.
// ShardStats is deliberately excluded — window placement changes epoch
// bookkeeping without changing execution.
func assertRunsEqual(t *testing.T, what string, want, got RunResult) {
	t.Helper()
	if got.Digest != want.Digest {
		t.Errorf("%s: digest %#016x != %#016x", what, got.Digest, want.Digest)
	}
	if got.Events != want.Events {
		t.Errorf("%s: events %d != %d", what, got.Events, want.Events)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Errorf("%s: flow records differ", what)
	}
	if got.Counters != want.Counters {
		t.Errorf("%s: counters %+v != %+v", what, got.Counters, want.Counters)
	}
	if !bytes.Equal(got.MetricsCSV, want.MetricsCSV) {
		t.Errorf("%s: metrics CSV differs", what)
	}
	if !bytes.Equal(got.MetricsJSON, want.MetricsJSON) {
		t.Errorf("%s: metrics JSON differs", what)
	}
}

// TestResumeEquivalence is the resume-equivalence property proof:
// checkpoint at a randomized mid-run cadence, resume from a randomized
// snapshot, and require every observable — digest, records, counters,
// CSV/JSON, and all post-resume snapshots — byte-identical to the
// uninterrupted run, across shard counts and queue disciplines, with
// and without a fault schedule. The checkpointed run itself must also
// match a plain (never-checkpointed) run, proving capture is pure.
func TestResumeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for _, withFaults := range []bool{false, true} {
		for _, shards := range []int{1, 4} {
			for _, q := range []sim.QueueDiscipline{sim.QueueHeap, sim.QueueLadder} {
				every := sim.Duration(int64(2*sim.Millisecond) / int64(3+rng.Intn(4)))
				pick := rng.Int63()
				t.Run(fmt.Sprintf("faults=%v/shards=%d/%s", withFaults, shards, q), func(t *testing.T) {
					prep := func(withCk bool) RunSpec {
						spec := goldenSpec(t, DCPIM, withFaults)
						spec.Shards = shards
						spec.Queue = q
						spec.Metrics = &MetricsSpec{Interval: 10 * sim.Microsecond, Label: "ckpt-prop"}
						if withCk {
							spec.Checkpoint = &CheckpointSpec{Every: every, Journal: true}
						}
						return spec
					}
					plain := Run(prep(false))
					ckRes, snaps := RunCheckpointed(prep(true))
					assertRunsEqual(t, "checkpointed vs plain", plain, ckRes)
					if len(snaps) == 0 {
						t.Fatalf("no snapshots at cadence %v", every)
					}
					k := int(pick % int64(len(snaps)))
					resRes, post, err := Resume(prep(true), snaps[k])
					if err != nil {
						t.Fatalf("resume from snapshot %d (t=%v): %v", k, sim.Time(snaps[k].Meta.TimePs), err)
					}
					assertRunsEqual(t, fmt.Sprintf("resumed-from-%d vs plain", k), plain, resRes)
					want := snaps[k+1:]
					if len(post) != len(want) {
						t.Fatalf("resume took %d post-resume snapshots, uninterrupted took %d", len(post), len(want))
					}
					for i := range post {
						if err := checkpoint.Compare(want[i], post[i]); err != nil {
							t.Errorf("post-resume snapshot %d: %v", want[i].Meta.Index, err)
						}
					}
				})
			}
		}
	}
}

// TestResumeRejectsWrongSpec locks the compatibility gate: resuming a
// snapshot under a different seed must fail with a typed CompatError —
// before any replay work — never by silently diverging.
func TestResumeRejectsWrongSpec(t *testing.T) {
	spec := goldenSpec(t, DCPIM, false)
	spec.Checkpoint = &CheckpointSpec{Every: 500 * sim.Microsecond}
	_, snaps := RunCheckpointed(spec)
	other := goldenSpec(t, DCPIM, false)
	other.Seed++
	other.Checkpoint = spec.Checkpoint
	_, _, err := Resume(other, snaps[0])
	var ce *checkpoint.CompatError
	if !errors.As(err, &ce) {
		t.Fatalf("want CompatError, got %v", err)
	}
	if ce.Field != "seed" {
		t.Errorf("CompatError field %q, want \"seed\"", ce.Field)
	}
}

// TestBisectLocalizesInjectedDivergence injects a one-event divergence —
// the golden fault schedule's loss burst shifted 1µs later, which keeps
// the scheduled-event count (and thus all setup seq allocation)
// unchanged — and requires Bisect to localize it to the first snapshot
// window and to the single perturbed event.
func TestBisectLocalizesInjectedDivergence(t *testing.T) {
	const every = 250 * sim.Microsecond
	run := func(perturb bool) []*checkpoint.Snapshot {
		spec := goldenSpec(t, DCPIM, true)
		if perturb {
			ev := &spec.Faults.Events[1] // loss burst at t=60µs
			if ev.At != sim.Time(60*sim.Microsecond) {
				t.Fatalf("golden schedule changed: event 1 at %v, want 60µs", ev.At)
			}
			ev.At = ev.At.Add(sim.Microsecond)
		}
		spec.Checkpoint = &CheckpointSpec{Every: every, Journal: true}
		_, snaps := RunCheckpointed(spec)
		return snaps
	}
	ref := run(false)
	got := run(true)
	rep, err := Bisect(ref, got)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstBad != 0 {
		t.Errorf("first bad snapshot index %d, want 0 (fault at 60µs is inside the first window)", rep.FirstBad)
	}
	if rep.WindowEnd != sim.Time(every) {
		t.Errorf("window end %v, want %v", rep.WindowEnd, sim.Time(every))
	}
	ev := rep.Event
	if ev == nil {
		t.Fatal("bisect found no event-level divergence despite journals")
	}
	if ev.Engine != 0 {
		t.Errorf("diverging engine %d, want 0 (single shard)", ev.Engine)
	}
	// The reference side's diverging event is exactly the unperturbed
	// fault firing: everything before 60µs is identical by construction.
	if ev.RefAt != sim.Time(60*sim.Microsecond) {
		t.Errorf("first diverging event at %v on reference side, want 60µs (the injected perturbation)", ev.RefAt)
	}
	if ev.RefAt == ev.GotAt && ev.RefSeq == ev.GotSeq && !ev.RefMissing && !ev.GotMissing {
		t.Error("event divergence does not actually differ")
	}
}

// TestBisectNoDivergence: identical streams must refuse to bisect
// rather than invent a divergence.
func TestBisectNoDivergence(t *testing.T) {
	spec := goldenSpec(t, DCPIM, false)
	spec.Checkpoint = &CheckpointSpec{Every: 500 * sim.Microsecond, Journal: true}
	_, a := RunCheckpointed(spec)
	spec2 := goldenSpec(t, DCPIM, false)
	spec2.Checkpoint = spec.Checkpoint
	_, b := RunCheckpointed(spec2)
	if _, err := Bisect(a, b); err == nil {
		t.Fatal("bisect of identical streams succeeded, want error")
	}
}

// fixtureSpec pins the golden snapshot fixture's run: the canonical
// ckpt-experiment spec at committed parameters (16-host FatTree).
func fixtureSpec() RunSpec {
	return ckptSpec(7, 16, 200*sim.Microsecond, 50*sim.Microsecond, 0, sim.QueueHeap, "")
}

const fixturePath = "testdata/ckpt-fattree16.dcpimck"

// TestGoldenCheckpointFixture locks the on-disk snapshot format and the
// simulation's event stream to a checked-in fixture. A failure here
// means checkpoint files written by earlier builds no longer resume: if
// the behavior change is deliberate, regenerate with
//
//	DCPIM_REGEN_CKPT=1 go test ./internal/experiments -run TestGoldenCheckpointFixture
//
// and bump checkpoint.Version if the byte format itself changed.
func TestGoldenCheckpointFixture(t *testing.T) {
	if os.Getenv("DCPIM_REGEN_CKPT") != "" {
		_, snaps := RunCheckpointed(fixtureSpec())
		if len(snaps) != 4 {
			t.Fatalf("fixture run took %d snapshots, want 4", len(snaps))
		}
		var buf bytes.Buffer
		if err := snaps[1].Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixturePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", fixturePath, buf.Len())
	}
	raw, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("golden fixture missing (see regeneration note above): %v", err)
	}
	snap, err := checkpoint.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden fixture unreadable: %v", err)
	}

	t.Run("resume", func(t *testing.T) {
		res, post, err := Resume(fixtureSpec(), snap)
		if err != nil {
			t.Fatalf("golden fixture no longer resumes — the event stream or capture format changed (see regeneration note): %v", err)
		}
		if res.Digest == 0 {
			t.Error("resumed run produced no digest")
		}
		if len(post) != 2 {
			t.Errorf("post-resume snapshots = %d, want 2 (fixture is snapshot 1 of 4)", len(post))
		}
	})

	t.Run("version-mismatch", func(t *testing.T) {
		bad := *snap
		bad.Meta.Version = checkpoint.Version + 1
		_, _, err := Resume(fixtureSpec(), &bad)
		var ve *checkpoint.VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("want VersionError, got %v", err)
		}
		if ve.Got != checkpoint.Version+1 || ve.Want != checkpoint.Version {
			t.Errorf("VersionError %+v, want got=%d want=%d", ve, checkpoint.Version+1, checkpoint.Version)
		}
	})

	t.Run("topology-mismatch", func(t *testing.T) {
		spec := ckptSpec(7, 128, 200*sim.Microsecond, 50*sim.Microsecond, 0, sim.QueueHeap, "")
		_, _, err := Resume(spec, snap)
		var ce *checkpoint.CompatError
		if !errors.As(err, &ce) {
			t.Fatalf("want CompatError, got %v", err)
		}
		if ce.Field != "hosts" {
			t.Errorf("CompatError field %q, want \"hosts\"", ce.Field)
		}
	})

	t.Run("corrupted-bytes", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[len(mut)/2] ^= 0x40
		if _, err := checkpoint.Read(bytes.NewReader(mut)); err == nil {
			t.Fatal("corrupted fixture read succeeded, want checksum error")
		}
	})
}

// TestCkptSpecFromMetaRoundTrip: a snapshot's metadata alone must
// reconstruct the exact spec it came from (the property -resume relies
// on), proven by the spec-hash gate inside Resume accepting it.
func TestCkptSpecFromMetaRoundTrip(t *testing.T) {
	spec := ckptSpec(11, 16, 120*sim.Microsecond, 40*sim.Microsecond, 0, sim.QueueLadder, "")
	_, snaps := RunCheckpointed(spec)
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	rebuilt := ckptSpecFromMeta(Options{}, snaps[0].Meta)
	if _, _, err := Resume(rebuilt, snaps[0]); err != nil {
		t.Fatalf("spec rebuilt from meta does not resume its own snapshot: %v", err)
	}
}
