package experiments

import (
	"fmt"
	"io"

	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// RunFig7 reproduces Figure 7, the paper's testbed result: 32 servers on
// a 10 Gbps leaf-spine with software host stacks (~8 µs RTT), all-to-all
// traffic at load 0.5, comparing dcPIM against DCTCP and TCP Cubic. The
// paper reports dcPIM short flows 21–43× better mean slowdown and 34–76×
// better p99 than DCTCP/TCP, with 1.71–2.61× higher long-flow throughput.
// Here the CloudLab testbed is replaced by the simulated testbed topology
// (see DESIGN.md substitutions); the protocol code paths are identical.
func RunFig7(o Options, w io.Writer) error {
	tp := topo.TestbedLeafSpine().Build()
	horizon := o.scaled(40 * sim.Millisecond)
	dist := workload.WebSearch()
	protos := []string{DCPIM, DCTCP, Cubic}

	fmt.Fprintf(w, "Figure 7: 32-host 10G testbed, %s, load 0.5 (horizon %v)\n\n", dist.Name(), horizon)
	buckets := stats.DefaultBuckets(tp.BDP())
	tbl := newTable(append([]string{"protocol", "metric"}, bucketLabels(buckets)...)...)
	type agg struct{ shortMean, shortP99, longMean float64 }
	results := map[string]agg{}
	for _, proto := range protos {
		tr := workload.AllToAllConfig{
			Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.5,
			Dist: dist, Horizon: horizon, Seed: o.Seed,
		}.Generate()
		res := Run(RunSpec{
			Protocol: proto, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: o.Seed + 41, Shards: o.Shards, Queue: o.Queue,
			BinWidth: 100 * sim.Microsecond,
		})
		bs := stats.BucketSlowdowns(res.Records, buckets)
		mean := []any{proto, "mean"}
		tail := []any{proto, "p99"}
		for _, b := range bs {
			mean = append(mean, cell(b.Summary.Count, b.Summary.Mean))
			tail = append(tail, cell(b.Summary.Count, b.Summary.P99))
		}
		tbl.add(mean...)
		tbl.add(tail...)
		short := stats.Summarize(res.Records, func(r stats.FlowRecord) bool { return r.Size <= tp.BDP() })
		long := stats.Summarize(res.Records, func(r stats.FlowRecord) bool { return r.Size > 16*tp.BDP() })
		results[proto] = agg{short.Mean, short.P99, long.Mean}
	}
	tbl.write(w)

	d := results[DCPIM]
	fmt.Fprintf(w, "\nshort-flow advantage of dcPIM (paper: 21-43x mean, 34-76x p99):\n")
	for _, proto := range protos[1:] {
		r := results[proto]
		if d.shortMean > 0 && d.shortP99 > 0 {
			fmt.Fprintf(w, "  vs %-6s mean %.1fx, p99 %.1fx; long-flow mean slowdown ratio %.2fx\n",
				proto, r.shortMean/d.shortMean, r.shortP99/d.shortP99, r.longMean/d.longMean)
		}
	}
	return nil
}
