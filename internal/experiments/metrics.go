package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dcpim/internal/metrics"
	"dcpim/internal/sim"
)

// MetricsSpec enables the telemetry layer for one run: a per-run
// metrics.Registry is created, the fabric and protocol register their
// instruments on it, and a Sampler snapshots them on a simulation-clock
// cadence. The sampled series lands in RunResult.MetricsCSV and the
// end-of-run report in RunResult.MetricsJSON; when Dir is non-empty both
// are also written to <Dir>/<label>.csv and <Dir>/<label>.json.
type MetricsSpec struct {
	// Interval is the sampling cadence (0 = Horizon/256).
	Interval sim.Duration
	// Dir, when non-empty, receives the CSV series and JSON report.
	Dir string
	// Label names the output files (sanitized to [A-Za-z0-9._-]);
	// empty defaults to "<protocol>-seed<seed>".
	Label string
}

// RunReport is the JSON run-report schema emitted next to the CSV series:
// identifying fields plus the final value of every instrument, each list
// sorted by instrument name.
type RunReport struct {
	Label      string                     `json:"label"`
	Protocol   string                     `json:"protocol"`
	Seed       int64                      `json:"seed"`
	HorizonPs  int64                      `json:"horizon_ps"`
	IntervalPs int64                      `json:"interval_ps"`
	Samples    int                        `json:"samples"`
	Counters   []metrics.NameValue        `json:"counters"`
	Gauges     []metrics.NameValue        `json:"gauges"`
	Histograms []metrics.HistogramSummary `json:"histograms"`
}

// sampleInterval resolves the cadence for a run.
func (m *MetricsSpec) sampleInterval(horizon sim.Duration) sim.Duration {
	iv := m.Interval
	if iv <= 0 {
		iv = horizon / 256
	}
	if iv <= 0 {
		iv = sim.Microsecond
	}
	return iv
}

// label resolves the output-file stem.
func (m *MetricsSpec) label(spec RunSpec) string {
	l := m.Label
	if l == "" {
		l = fmt.Sprintf("%s-seed%d", spec.Protocol, spec.Seed)
	}
	return sanitizeLabel(l)
}

// sanitizeLabel maps anything outside [A-Za-z0-9._-] to '-' so labels are
// always safe file stems.
func sanitizeLabel(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			b[i] = '-'
		}
	}
	return string(b)
}

// emitMetrics serializes the run's telemetry into CSV + JSON bytes and,
// when spec.Metrics.Dir is set, writes them to disk. Serialization is
// deterministic: columns sort by name, times are integer picoseconds, and
// JSON field order is fixed by the RunReport struct. File-system failures
// panic — the output directory is caller-provided configuration.
func emitMetrics(spec RunSpec, reg *metrics.Registry, smp *metrics.Sampler) (csvB, jsonB []byte) {
	var buf bytes.Buffer
	if err := smp.WriteCSV(&buf); err != nil {
		panic(fmt.Sprintf("experiments: metrics CSV: %v", err))
	}
	csvB = append([]byte(nil), buf.Bytes()...)

	rep := RunReport{
		Label:      spec.Metrics.label(spec),
		Protocol:   spec.Protocol,
		Seed:       spec.Seed,
		HorizonPs:  int64(spec.Horizon),
		IntervalPs: int64(smp.Interval()),
		Samples:    smp.Len(),
		Counters:   reg.CounterValues(),
		Gauges:     reg.GaugeValues(),
		Histograms: reg.HistogramSummaries(),
	}
	var err error
	jsonB, err = json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("experiments: metrics JSON: %v", err))
	}
	jsonB = append(jsonB, '\n')

	if dir := spec.Metrics.Dir; dir != "" {
		stem := filepath.Join(dir, rep.Label)
		if err := os.WriteFile(stem+".csv", csvB, 0o644); err != nil {
			panic(fmt.Sprintf("experiments: writing metrics: %v", err))
		}
		if err := os.WriteFile(stem+".json", jsonB, 0o644); err != nil {
			panic(fmt.Sprintf("experiments: writing metrics: %v", err))
		}
	}
	return csvB, jsonB
}
