package experiments

import (
	"fmt"
	"io"

	"dcpim/internal/faults"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// faultSpec is loadSpec plus a fault schedule generated at the given
// intensity level. Every protocol at the same level gets the identical
// schedule (same generator seed), so the comparison is apples-to-apples:
// the same links die at the same times under every transport.
func faultSpec(o Options, proto string, level int, horizon sim.Duration) RunSpec {
	tp := leafSpineFor(o.Hosts)
	dist := workload.TruncatedDist{Base: workload.IMC10(), Max: 1 << 20}
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.5,
		Dist: dist, Horizon: horizon, Seed: o.Seed,
	}.Generate()
	spec := RunSpec{
		Protocol: proto, Topo: tp, Trace: tr,
		// Faulted runs need more drain than clean sweeps: recovery
		// timers only fire after links return.
		Horizon: horizon * 3, Seed: o.Seed + 77, Shards: o.Shards, Queue: o.Queue,
	}
	if level > 0 {
		spec.Faults = faults.Generate(faults.Intensity(level, o.Seed+int64(level)*1000, horizon), tp)
	}
	return spec
}

// RunFaults measures resilience to structured faults (§3.5 taken beyond
// i.i.d. loss): a grid of fault intensity levels — 0 clean, 1 link flaps,
// 2 plus loss bursts and degraded links, 3 plus a switch reboot and host
// pauses — against the simulation comparator set at load 0.5. Reported
// per cell: completion rate, mean and p99 slowdown of completed flows,
// and packets destroyed by the faults themselves. dcPIM's multi-round
// matching and token-window recovery should hold completion at 100% with
// modest slowdown inflation while loss-sensitive protocols degrade.
func RunFaults(o Options, w io.Writer) error {
	horizon := o.scaled(2 * sim.Millisecond)
	levels := []int{0, 1, 2, 3}
	fmt.Fprintf(w, "Fault resilience: FCT and completion vs fault intensity at load 0.5 (horizon %v)\n", horizon)
	fmt.Fprintf(w, "levels: 0 = clean, 1 = +link flaps, 2 = +loss bursts/degrades, 3 = +reboot/host pauses\n\n")
	var specs []RunSpec
	for _, level := range levels {
		for _, proto := range Comparators {
			spec := faultSpec(o, proto, level, horizon)
			spec.Metrics = o.metrics(fmt.Sprintf("faults-level%d-%s", level, proto))
			spec.Checkpoint = o.checkpoint(fmt.Sprintf("faults-level%d-%s", level, proto))
			specs = append(specs, spec)
		}
	}
	results := RunMany(specs, o.workers())
	tbl := newTable("level", "protocol", "completed", "mean", "p99", "fault-drops")
	for li, level := range levels {
		for pi, proto := range Comparators {
			res := results[li*len(Comparators)+pi]
			s := stats.Summarize(res.Records, nil)
			tbl.add(level, proto,
				fmt.Sprintf("%d/%d", res.Col.Completed(), res.Started),
				s.Mean, s.P99, res.Counters.FaultDrops)
		}
	}
	tbl.write(w)
	fmt.Fprintln(w, "\nexpectation: dcPIM completes every flow at every level; slowdown grows with intensity")
	return nil
}
