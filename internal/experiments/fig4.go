package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"dcpim/internal/matching"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// fig4aProtocols: the microbenchmarks compare dcPIM against the three
// simulated baselines.
var fig4aProtocols = []string{DCPIM, HomaAeolus, NDP, HPCC}

// RunFig4a reproduces Figure 4(a): 16 senders in one rack run an
// all-to-all shuffle to 16 receivers in another rack, while every 100 µs
// for the first 600 µs, 50 other hosts send a 128 KB incast to one of the
// receivers. The figure is utilization (of the 16 receiver downlinks)
// over time; dcPIM stays high, HPCC stumbles on PFC, Homa Aeolus and NDP
// converge slowly.
func RunFig4a(o Options, w io.Writer) error {
	tp := leafSpineFor(o.Hosts)
	hpr := 16
	if tp.NumHosts < 48 {
		return fmt.Errorf("fig4a needs ≥48 hosts (3 racks), topology has %d", tp.NumHosts)
	}
	horizon := o.scaled(1 * sim.Millisecond)

	senders := make([]int, hpr)
	receivers := make([]int, hpr)
	var others []int
	for i := 0; i < hpr; i++ {
		senders[i] = i         // rack 0
		receivers[i] = hpr + i // rack 1
	}
	for h := 2 * hpr; h < tp.NumHosts; h++ {
		others = append(others, h)
	}

	shuffle := workload.SubsetAllToAll{
		Senders: senders, Receivers: receivers,
		HostRate: tp.HostRate, Load: 0.9,
		Dist:    workload.FixedDist{Size: 500 << 10, Tag: "shuffle-500KB"},
		Horizon: horizon, Seed: o.Seed,
	}.Generate()
	incast := workload.IncastConfig{
		Senders: others, Receivers: receivers[:1], Fanin: 50,
		BurstSize: 128 << 10, Interval: 100 * sim.Microsecond,
		Bursts: 6, Horizon: horizon, Seed: o.Seed + 1,
	}.Generate()
	if len(others) < 50 {
		incast = workload.IncastConfig{
			Senders: others, Receivers: receivers[:1], Fanin: len(others),
			BurstSize: 128 << 10, Interval: 100 * sim.Microsecond,
			Bursts: 6, Horizon: horizon, Seed: o.Seed + 1,
		}.Generate()
	}
	trace := workload.Merge(shuffle, incast)

	fmt.Fprintf(w, "Figure 4(a): bursty microbenchmark — receiver-rack utilization over time (horizon %v)\n\n", horizon)
	bins := int(horizon / (50 * sim.Microsecond))
	header := []string{"protocol"}
	for b := 0; b < bins; b++ {
		header = append(header, fmt.Sprintf("%dus", (b+1)*50))
	}
	tbl := newTable(header...)
	for _, proto := range fig4aProtocols {
		res := Run(RunSpec{
			Protocol: proto, Topo: tp, Trace: trace,
			Horizon: horizon, Seed: o.Seed + 9, Shards: o.Shards, Queue: o.Queue, BinWidth: 50 * sim.Microsecond,
			Metrics: o.metrics("fig4a-" + proto),
		})
		// Normalize by the 16 loaded receiver downlinks, not all hosts.
		series := res.Col.UtilizationSeries(hpr, tp.HostRate)
		row := []any{proto}
		for b := 0; b < bins; b++ {
			if b < len(series) {
				row = append(row, series[b])
			} else {
				row = append(row, 0.0)
			}
		}
		tbl.add(row...)
	}
	tbl.write(w)
	fmt.Fprintln(w, "\npaper: dcPIM converges in tens of µs and stays high; HPCC stumbles (PFC); Homa Aeolus/NDP take 300-600µs")
	return nil
}

// RunFig4b reproduces Figure 4(b): the adversarial workload where every
// flow has size BDP+1 — each flow must be matched but fills only a
// fraction of a data phase. The paper finds HPCC beats dcPIM on mean
// latency here; NDP and Homa Aeolus stay worse.
func RunFig4b(o Options, w io.Writer) error {
	tp := leafSpineFor(o.Hosts)
	horizon := o.scaled(1 * sim.Millisecond)
	size := tp.BDP() + 1

	fmt.Fprintf(w, "Figure 4(b): all flows of size BDP+1 = %d bytes, load 0.6 (horizon %v)\n\n", size, horizon)
	tbl := newTable("protocol", "mean-slowdown", "p99-slowdown", "completed")
	for _, proto := range fig4aProtocols {
		tr := workload.AllToAllConfig{
			Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
			Dist:    workload.FixedDist{Size: size, Tag: "BDP+1"},
			Horizon: horizon, Seed: o.Seed,
		}.Generate()
		res := Run(RunSpec{
			Protocol: proto, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: o.Seed + 5, Shards: o.Shards, Queue: o.Queue,
		})
		s := stats.Summarize(res.Records, nil)
		tbl.add(proto, s.Mean, s.P99, fmt.Sprintf("%d/%d", res.Col.Completed(), res.Started))
	}
	tbl.write(w)
	fmt.Fprintln(w, "\npaper: HPCC wins mean and slightly wins tail here (dcPIM's worst case); NDP/Homa Aeolus worse")
	return nil
}

// RunFig4c reproduces Figure 4(c): the dense traffic matrix — every host
// sends one long flow to every other host (144×143). dcPIM sustains
// ~93.5% utilization, far above its Theorem 1 floor of 32.9%; the
// baselines collapse (HPCC on PFC storms, NDP on retransmissions, Homa
// Aeolus on slow convergence).
func RunFig4c(o Options, w io.Writer) error {
	tp := leafSpineFor(o.Hosts)
	horizon := o.scaled(1 * sim.Millisecond)
	flowSize := int64(1 << 20)

	fmt.Fprintf(w, "Figure 4(c): dense %d×%d traffic matrix of %d-byte flows (horizon %v)\n\n",
		tp.NumHosts, tp.NumHosts-1, flowSize, horizon)
	tr := workload.DenseTMConfig{Hosts: tp.NumHosts, FlowSize: flowSize, Horizon: horizon}.Generate()

	tbl := newTable("protocol", "util(steady)", "util(100-300us)", "drops", "trims", "pfc-pauses")
	for _, proto := range fig4aProtocols {
		res := Run(RunSpec{
			Protocol: proto, Topo: tp, Trace: tr,
			Horizon: horizon, Seed: o.Seed + 3, Shards: o.Shards, Queue: o.Queue,
		})
		steady := steadyUtilization(res, horizon/2, horizon)
		early := steadyUtilization(res, 100*sim.Microsecond, 300*sim.Microsecond)
		tbl.add(proto, steady, early, res.Counters.DataDrops, res.Counters.Trims, res.Counters.PFCPauses)
	}
	tbl.write(w)

	// Theoretical floor for comparison (paper: M* ≈ 120 ⇒ bound 32.9%).
	n := tp.NumHosts
	bound := matching.TheoremBound(float64(n), float64(n)/(float64(n)*0.83), 4)
	fmt.Fprintf(w, "\nTheorem 1 floor at δ̄=n=%d, α≈1.2, r=4: %.1f%% — dcPIM should far exceed it (paper: ~93.5%%)\n",
		n, bound*100)

	// Measured counterpart via the matcher registry: the bounded-round
	// dcpim matcher on the same dense demand graph, reported as matched
	// fraction — shows how loose the analytical floor is in practice.
	bounded, err := matching.MustLookup("dcpim").New(matching.Options{Rounds: 4})
	if err != nil {
		return err
	}
	dg := matching.DenseGraph(n, n)
	dm, dst := bounded.Match(dg, rand.New(rand.NewSource(o.Seed+11)))
	fmt.Fprintf(w, "Measured dcpim matcher (registry, r=4) on the dense graph: %d/%d matched (%.1f%%) in %d rounds\n",
		dm.Size(), n, 100*float64(dm.Size())/float64(n), dst.Rounds)
	_ = packet.MTU
	return nil
}
