package experiments

import "dcpim/internal/topo"

// leafSpineFor builds the evaluation leaf-spine at the paper's size (144
// hosts) or a scaled-down variant for quick runs: callers pass
// Options.Hosts (0 = full size).
func leafSpineFor(hosts int) *topo.Topology {
	cfg := leafSpineConfigFor(hosts)
	return cfg.Build()
}

func leafSpineConfigFor(hosts int) topo.LeafSpineConfig {
	switch {
	case hosts == 0 || hosts >= 144:
		return topo.DefaultLeafSpine()
	case hosts <= 8:
		return topo.SmallLeafSpine()
	case hosts <= 32:
		c := topo.DefaultLeafSpine()
		c.Racks, c.HostsPerRack, c.Spines = 2, 16, 2
		c.Name = "leafspine-32"
		return c
	default:
		c := topo.DefaultLeafSpine()
		c.Racks = (hosts + 15) / 16
		c.Name = "leafspine-custom"
		return c
	}
}

// oversubFor is the 2:1 oversubscribed variant at the requested scale.
func oversubFor(hosts int) *topo.Topology {
	c := leafSpineConfigFor(hosts)
	c.SpineRate /= 2
	c.Name += "-oversub2"
	return c.Build()
}

// fatTreeFor builds the FatTree tier covering the requested host count:
// k=4 (16 hosts) for quick runs, k=8 (128), the paper's k=16 (1024, also
// the 0-default), then the hyperscale rungs — k=32 (8192) and the 3-tier
// k=48-class tree (27648). The mapping is monotone in hosts and is part
// of the checkpoint contract: ckptSpecFromMeta rebuilds specs from a
// snapshot's host count through this function.
func fatTreeFor(hosts int) *topo.Topology {
	switch {
	case hosts != 0 && hosts <= 16:
		return topo.SmallFatTree().Build()
	case hosts != 0 && hosts <= 128:
		c := topo.DefaultFatTree()
		c.K = 8
		c.Name = "fattree-128"
		return c.Build()
	case hosts == 0 || hosts <= 1024:
		return topo.DefaultFatTree().Build()
	case hosts <= 8192:
		return topo.HyperscaleFatTree().Build()
	default:
		return topo.MegaFatTree().Build()
	}
}
