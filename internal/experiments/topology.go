package experiments

import "dcpim/internal/topo"

// leafSpineFor builds the evaluation leaf-spine at the paper's size (144
// hosts) or a scaled-down variant for quick runs: callers pass
// Options.Hosts (0 = full size).
func leafSpineFor(hosts int) *topo.Topology {
	cfg := leafSpineConfigFor(hosts)
	return cfg.Build()
}

func leafSpineConfigFor(hosts int) topo.LeafSpineConfig {
	switch {
	case hosts == 0 || hosts >= 144:
		return topo.DefaultLeafSpine()
	case hosts <= 8:
		return topo.SmallLeafSpine()
	case hosts <= 32:
		c := topo.DefaultLeafSpine()
		c.Racks, c.HostsPerRack, c.Spines = 2, 16, 2
		c.Name = "leafspine-32"
		return c
	default:
		c := topo.DefaultLeafSpine()
		c.Racks = (hosts + 15) / 16
		c.Name = "leafspine-custom"
		return c
	}
}

// oversubFor is the 2:1 oversubscribed variant at the requested scale.
func oversubFor(hosts int) *topo.Topology {
	c := leafSpineConfigFor(hosts)
	c.SpineRate /= 2
	c.Name += "-oversub2"
	return c.Build()
}

// fatTreeFor builds the paper's 1024-host FatTree, or k=4 (16 hosts) for
// quick runs.
func fatTreeFor(hosts int) *topo.Topology {
	if hosts != 0 && hosts <= 16 {
		return topo.SmallFatTree().Build()
	}
	if hosts != 0 && hosts <= 128 {
		c := topo.DefaultFatTree()
		c.K = 8
		c.Name = "fattree-128"
		return c.Build()
	}
	return topo.DefaultFatTree().Build()
}
