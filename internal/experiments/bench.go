package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// Bench is one substrate benchmark in testing.Benchmark form. The suite
// exists so cmd/experiments -benchjson can emit machine-readable perf
// numbers (BENCH_<name>.json) without go test: CI archives them per
// commit, giving the repo a perf trajectory instead of scrollback.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// BenchResult is the serialized measurement of one benchmark.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// SubstrateBenches returns the perf-trajectory suite: raw fabric
// forwarding, a full dcPIM run, the sharded FatTree run at 1, 2 and
// 4 shards (same seed and trace — the shardsN results measure scaling of
// one identical simulation), and the engine hold-model head-to-head of
// both queue disciplines at the measured event densities of the 128-,
// 1024- and 4096-host campaigns.
func SubstrateBenches() []Bench {
	benches := []Bench{
		{"FabricForwarding", benchForwarding},
		{"DcPIMEndToEnd", benchEndToEnd},
	}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		benches = append(benches, Bench{
			Name: fmt.Sprintf("FatTreeSharded_shards%d", shards),
			Fn:   func(b *testing.B) { benchFatTreeSharded(b, shards) },
		})
	}
	for _, hosts := range []int{128, 1024, 4096} {
		for _, q := range []sim.QueueDiscipline{sim.QueueHeap, sim.QueueLadder} {
			hosts, q := hosts, q
			benches = append(benches, Bench{
				Name: fmt.Sprintf("EngineHold_%s_%dh", q, hosts),
				Fn:   func(b *testing.B) { benchEngineHold(b, q, expectedPending(hosts, 1)) },
			})
		}
	}
	for _, q := range []sim.QueueDiscipline{sim.QueueHeap, sim.QueueLadder} {
		q := q
		benches = append(benches, Bench{
			Name: fmt.Sprintf("EngineHoldDeep_%s_1M", q),
			Fn:   func(b *testing.B) { benchEngineHoldDeep(b, q, 1_000_000) },
		})
	}
	for _, mode := range []sim.BarrierMode{sim.BarrierChannel, sim.BarrierHybrid} {
		for _, busy := range []struct {
			name string
			n    int
		}{{"solo", 1}, {"all4", 4}} {
			mode, busy := mode, busy
			benches = append(benches, Bench{
				Name: fmt.Sprintf("GroupEpoch_%s_%s", mode, busy.name),
				Fn:   func(b *testing.B) { benchGroupEpoch(b, mode, busy.n) },
			})
		}
	}
	return benches
}

// benchTrials is how many times each benchmark is measured; the fastest
// trial is kept. One-second samples on a shared CI box swing by >10% on
// identical code, which would drown the regression budget in noise; the
// minimum over a few trials is the standard de-noised estimator (the
// fastest run is the one least disturbed by the machine).
const benchTrials = 3

// measure runs one benchmark benchTrials times and returns the fastest
// trial's result.
func measure(bench Bench) BenchResult {
	best := BenchResult{Name: bench.Name}
	for trial := 0; trial < benchTrials; trial++ {
		r := testing.Benchmark(bench.Fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if trial == 0 || ns < best.NsPerOp {
			best.Iterations = r.N
			best.NsPerOp = ns
			best.BytesPerOp = r.AllocedBytesPerOp()
			best.AllocsPerOp = r.AllocsPerOp()
		}
	}
	return best
}

// WriteBenchJSON runs every substrate benchmark and writes one
// BENCH_<name>.json per result under dir, reporting each to w as it
// lands.
func WriteBenchJSON(dir string, w io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, bench := range SubstrateBenches() {
		res := measure(bench)
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		path := filepath.Join(dir, "BENCH_"+bench.Name+".json")
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %12.0f ns/op %8d allocs/op  -> %s\n",
			bench.Name, res.NsPerOp, res.AllocsPerOp, path)
	}
	return nil
}

// benchRegressionMax is the ns/op ratio (measured over baseline) above
// which CheckBenchJSON declares a regression. 10% sits well clear of
// run-to-run noise for these second-long benchmarks while still catching
// any real algorithmic slip.
const benchRegressionMax = 1.10

// CheckBenchJSON re-runs the substrate benchmark suite and compares each
// result against the committed baseline BENCH_<name>.json files in
// baselineDir, returning an error if any benchmark runs more than 10%
// slower (ns/op) than its baseline. Benchmarks without a baseline file
// are reported and skipped, so adding a new benchmark never breaks CI
// before its baseline lands.
func CheckBenchJSON(baselineDir string, w io.Writer) error {
	var regressions []string
	for _, bench := range SubstrateBenches() {
		path := filepath.Join(baselineDir, "BENCH_"+bench.Name+".json")
		buf, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(w, "%-28s no baseline (%s); skipped\n", bench.Name, path)
			continue
		}
		var base BenchResult
		if err := json.Unmarshal(buf, &base); err != nil {
			return fmt.Errorf("benchcheck: %s: %w", path, err)
		}
		if base.NsPerOp <= 0 {
			return fmt.Errorf("benchcheck: %s: non-positive baseline ns/op", path)
		}
		ns := measure(bench).NsPerOp
		ratio := ns / base.NsPerOp
		verdict := "ok"
		if ratio > benchRegressionMax {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s %.0f ns/op vs baseline %.0f (%.2fx)", bench.Name, ns, base.NsPerOp, ratio))
		}
		fmt.Fprintf(w, "%-28s %12.0f ns/op  baseline %12.0f  (%.2fx) %s\n",
			bench.Name, ns, base.NsPerOp, ratio, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s) over the %.0f%% budget: %v",
			len(regressions), (benchRegressionMax-1)*100, regressions)
	}
	return nil
}

type nopProto struct{}

func (nopProto) Start(*netsim.Host)          {}
func (nopProto) OnFlowArrival(workload.Flow) {}
func (nopProto) OnPacket(*packet.Packet)     {}

// benchForwarding mirrors the root BenchmarkFabricForwarding: raw packets
// through a loaded leaf-spine with a no-op protocol.
func benchForwarding(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	for i := 0; i < tp.NumHosts; i++ {
		fab.AttachProtocol(i, nopProto{})
	}
	fab.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % 8
		dst := (i + 1) % 8
		fab.Host(src).Send(packet.NewData(src, dst, uint64(i), 0, packet.MTU, packet.PrioShort))
		if (i+1)%64 == 0 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

// benchEndToEnd mirrors the root BenchmarkDcPIMEndToEnd through the Run
// pipeline: an 8-host dcPIM simulation at load 0.6.
func benchEndToEnd(b *testing.B) {
	b.ReportAllocs()
	tp := topo.SmallLeafSpine().Build()
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
		Dist: workload.IMC10(), Horizon: 200 * sim.Microsecond, Seed: 1,
	}.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(RunSpec{
			Protocol: DCPIM, Topo: tp, Trace: tr,
			Horizon: 300 * sim.Microsecond, Seed: int64(i + 1),
		})
	}
}

// benchEngineHold is the classic hold-model queue benchmark at a fixed
// population: `pending` events are live at all times, and each pop
// schedules one replacement. The delay mix mirrors dcPIM's event stream
// — dominated by sub-µs per-packet serialization and control timers,
// with a tail of epoch-scale (tens of µs) matching and retransmission
// timers — which is what separates a calendar queue (O(1) near the
// cursor) from a heap (log n everywhere). One op = one Step.
func benchEngineHold(b *testing.B, q sim.QueueDiscipline, pending int) {
	b.ReportAllocs()
	eng := sim.NewEngineQueue(int64(pending), q)
	rng := eng.Rand()
	delay := func() sim.Duration {
		if rng.Intn(16) == 0 {
			return sim.Duration(1 + rng.Int63n(int64(40*sim.Microsecond)))
		}
		return sim.Duration(1 + rng.Int63n(int64(800*sim.Nanosecond)))
	}
	var hold func()
	hold = func() { eng.After(delay(), hold) }
	for i := 0; i < pending; i++ {
		eng.After(delay(), hold)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.Fatal("hold population drained")
		}
	}
}

// benchEngineHoldDeep is the hold model at hyperscale population — 10⁶
// live events — with a delay mix that adds a 1-in-64 far-future tail
// (up to 80 ms) on top of the dcPIM-shaped mix. The population puts the
// heap ~20 comparisons deep per op, and the far tail lands beyond the
// ladder's spawn range, exercising its hierarchical upper rungs (the
// tier that replaced the O(n) overflow re-bucketing); near-cursor pops
// stay O(1). One op = one Step.
func benchEngineHoldDeep(b *testing.B, q sim.QueueDiscipline, pending int) {
	b.ReportAllocs()
	eng := sim.NewEngineQueue(int64(pending), q)
	rng := eng.Rand()
	delay := func() sim.Duration {
		switch {
		case rng.Intn(64) == 0:
			return sim.Duration(1 + rng.Int63n(int64(80*sim.Millisecond)))
		case rng.Intn(16) == 0:
			return sim.Duration(1 + rng.Int63n(int64(40*sim.Microsecond)))
		default:
			return sim.Duration(1 + rng.Int63n(int64(800*sim.Nanosecond)))
		}
	}
	var hold func()
	hold = func() { eng.After(delay(), hold) }
	for i := 0; i < pending; i++ {
		eng.After(delay(), hold)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.Fatal("hold population drained")
		}
	}
}

// benchGroupEpoch measures raw epoch-barrier overhead: a 4-engine group
// where `busy` engines each execute exactly one event per epoch (the
// rest idle-skip). One op = one RunEpoch. busy=1 is the solo window the
// hybrid barrier inlines on the coordinator (zero crossings); busy=4 is
// a full crossing, the channel barrier's worst case of two wakeups per
// worker per epoch.
func benchGroupEpoch(b *testing.B, mode sim.BarrierMode, busy int) {
	b.ReportAllocs()
	engines := make([]*sim.Engine, 4)
	for i := range engines {
		engines[i] = sim.NewEngine(int64(i + 1))
	}
	g := sim.NewGroupMode(engines, mode)
	defer g.Close()
	const step = sim.Microsecond
	for i := 0; i < busy; i++ {
		eng := engines[i]
		var tick func()
		tick = func() { eng.After(step, tick) }
		eng.After(step, tick)
	}
	b.ResetTimer()
	until := sim.Time(0)
	for i := 0; i < b.N; i++ {
		until = until.Add(step)
		g.RunEpoch(until)
	}
}

// benchFatTreeSharded runs one fixed dcPIM FatTree simulation at the
// given shard count (the k=4 16-host tree — small enough for a CI
// benchmarks job; the root bench_test variant covers the 128-host tree).
func benchFatTreeSharded(b *testing.B, shards int) {
	b.ReportAllocs()
	tp := topo.SmallFatTree().Build()
	horizon := 100 * sim.Microsecond
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
		Dist: workload.IMC10(), Horizon: horizon, Seed: 42,
	}.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(RunSpec{
			Protocol: DCPIM, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: 99, Shards: shards,
		})
		if res.Col.Completed() == 0 {
			b.Fatal("no flows completed")
		}
	}
}
