package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// Bench is one substrate benchmark in testing.Benchmark form. The suite
// exists so cmd/experiments -benchjson can emit machine-readable perf
// numbers (BENCH_<name>.json) without go test: CI archives them per
// commit, giving the repo a perf trajectory instead of scrollback.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// BenchResult is the serialized measurement of one benchmark.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// SubstrateBenches returns the perf-trajectory suite: raw fabric
// forwarding, a full dcPIM run, and the sharded FatTree run at 1, 2 and
// 4 shards (same seed and trace — the shardsN results measure scaling of
// one identical simulation).
func SubstrateBenches() []Bench {
	benches := []Bench{
		{"FabricForwarding", benchForwarding},
		{"DcPIMEndToEnd", benchEndToEnd},
	}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		benches = append(benches, Bench{
			Name: fmt.Sprintf("FatTreeSharded_shards%d", shards),
			Fn:   func(b *testing.B) { benchFatTreeSharded(b, shards) },
		})
	}
	return benches
}

// WriteBenchJSON runs every substrate benchmark and writes one
// BENCH_<name>.json per result under dir, reporting each to w as it
// lands.
func WriteBenchJSON(dir string, w io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, bench := range SubstrateBenches() {
		r := testing.Benchmark(bench.Fn)
		res := BenchResult{
			Name:        bench.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		path := filepath.Join(dir, "BENCH_"+bench.Name+".json")
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %12.0f ns/op %8d allocs/op  -> %s\n",
			bench.Name, res.NsPerOp, res.AllocsPerOp, path)
	}
	return nil
}

type nopProto struct{}

func (nopProto) Start(*netsim.Host)          {}
func (nopProto) OnFlowArrival(workload.Flow) {}
func (nopProto) OnPacket(*packet.Packet)     {}

// benchForwarding mirrors the root BenchmarkFabricForwarding: raw packets
// through a loaded leaf-spine with a no-op protocol.
func benchForwarding(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	for i := 0; i < tp.NumHosts; i++ {
		fab.AttachProtocol(i, nopProto{})
	}
	fab.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % 8
		dst := (i + 1) % 8
		fab.Host(src).Send(packet.NewData(src, dst, uint64(i), 0, packet.MTU, packet.PrioShort))
		if (i+1)%64 == 0 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

// benchEndToEnd mirrors the root BenchmarkDcPIMEndToEnd through the Run
// pipeline: an 8-host dcPIM simulation at load 0.6.
func benchEndToEnd(b *testing.B) {
	b.ReportAllocs()
	tp := topo.SmallLeafSpine().Build()
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
		Dist: workload.IMC10(), Horizon: 200 * sim.Microsecond, Seed: 1,
	}.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(RunSpec{
			Protocol: DCPIM, Topo: tp, Trace: tr,
			Horizon: 300 * sim.Microsecond, Seed: int64(i + 1),
		})
	}
}

// benchFatTreeSharded runs one fixed dcPIM FatTree simulation at the
// given shard count (the k=4 16-host tree — small enough for a CI
// benchmarks job; the root bench_test variant covers the 128-host tree).
func benchFatTreeSharded(b *testing.B, shards int) {
	b.ReportAllocs()
	tp := topo.SmallFatTree().Build()
	horizon := 100 * sim.Microsecond
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
		Dist: workload.IMC10(), Horizon: horizon, Seed: 42,
	}.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(RunSpec{
			Protocol: DCPIM, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: 99, Shards: shards,
		})
		if res.Col.Completed() == 0 {
			b.Fatal("no flows completed")
		}
	}
}
