package experiments

import (
	"fmt"
	"io"

	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// RunFig5ab reproduces Figure 5(a,b): the 2:1 oversubscribed leaf-spine
// at load 0.5 (the highest load every baseline survives there). The paper
// compares dcPIM, NDP and HPCC (Homa Aeolus was not runnable on
// oversubscribed topologies); dcPIM's token clocking absorbs core
// congestion.
func RunFig5ab(o Options, w io.Writer) error {
	tp := oversubFor(o.Hosts)
	horizon := o.scaled(2 * sim.Millisecond)
	protos := []string{DCPIM, NDP, HPCC}

	fmt.Fprintf(w, "Figure 5(a,b): oversubscribed (2:1) leaf-spine at load 0.5 (horizon %v)\n", horizon)
	fmt.Fprintln(w, "(Homa Aeolus omitted, as in the paper)")
	buckets := stats.DefaultBuckets(tp.BDP())
	dists := fig3Workloads()
	var specs []RunSpec
	for _, dist := range dists {
		for _, proto := range protos {
			tr := workload.AllToAllConfig{
				Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.5,
				Dist: dist, Horizon: horizon, Seed: o.Seed,
			}.Generate()
			specs = append(specs, RunSpec{
				Protocol: proto, Topo: tp, Trace: tr,
				Horizon: horizon + horizon/2, Seed: o.Seed + 13, Shards: o.Shards, Queue: o.Queue,
			})
		}
	}
	results := RunMany(specs, o.workers())
	for di, dist := range dists {
		fmt.Fprintf(w, "\n-- workload %s --\n", dist.Name())
		tbl := newTable(append([]string{"protocol", "metric"}, bucketLabels(buckets)...)...)
		for pi, proto := range protos {
			res := results[di*len(protos)+pi]
			bs := stats.BucketSlowdowns(res.Records, buckets)
			mean := []any{proto, "mean"}
			tail := []any{proto, "p99"}
			for _, b := range bs {
				mean = append(mean, cell(b.Summary.Count, b.Summary.Mean))
				tail = append(tail, cell(b.Summary.Count, b.Summary.P99))
			}
			tbl.add(mean...)
			tbl.add(tail...)
		}
		tbl.write(w)
	}
	fmt.Fprintln(w, "\npaper: same trend as Figure 3 — dcPIM's token clocking handles core congestion")
	return nil
}

// RunFig5cd reproduces Figure 5(c,d): the three-tier 1024-host FatTree at
// load 0.6. Pipelining hides the longer RTTs; results mirror Figure 3.
func RunFig5cd(o Options, w io.Writer) error {
	tp := fatTreeFor(o.Hosts)
	horizon := o.scaled(1 * sim.Millisecond)
	dists := fig3Workloads()
	if o.Scale < 1 {
		dists = dists[:1] // quick mode: IMC10 only
	}

	fmt.Fprintf(w, "Figure 5(c,d): FatTree %s at load 0.6 (horizon %v)\n", tp.Name, horizon)
	buckets := stats.DefaultBuckets(tp.BDP())
	var specs []RunSpec
	for _, dist := range dists {
		for _, proto := range Comparators {
			tr := workload.AllToAllConfig{
				Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
				Dist: dist, Horizon: horizon, Seed: o.Seed,
			}.Generate()
			specs = append(specs, RunSpec{
				Protocol: proto, Topo: tp, Trace: tr,
				Horizon: horizon + horizon/2, Seed: o.Seed + 21, Shards: o.Shards, Queue: o.Queue,
			})
		}
	}
	results := RunMany(specs, o.workers())
	for di, dist := range dists {
		fmt.Fprintf(w, "\n-- workload %s --\n", dist.Name())
		tbl := newTable(append([]string{"protocol", "metric"}, bucketLabels(buckets)...)...)
		for pi, proto := range Comparators {
			res := results[di*len(Comparators)+pi]
			bs := stats.BucketSlowdowns(res.Records, buckets)
			mean := []any{proto, "mean"}
			tail := []any{proto, "p99"}
			for _, b := range bs {
				mean = append(mean, cell(b.Summary.Count, b.Summary.Mean))
				tail = append(tail, cell(b.Summary.Count, b.Summary.P99))
			}
			tbl.add(mean...)
			tbl.add(tail...)
		}
		tbl.write(w)
	}
	fmt.Fprintln(w, "\npaper: same trend as Figure 3; matching-phase length set by the longest cRTT is hidden by pipelining")
	_ = topo.DefaultFatTree
	return nil
}
