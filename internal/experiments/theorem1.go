package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"dcpim/internal/matching"
)

// RunTheorem1 validates the paper's core theory result on random sparse
// bipartite graphs: after r rounds, PIM-style matching reaches at least a
// (1 − δ̄α/4^r) fraction of the converged matching size M*. The table
// prints the measured fraction next to the bound for each r, plus the
// paper's headline example (n = large, δ̄ = 5, 80% matched by PIM → ≥78%
// of hosts matched with r = 4).
func RunTheorem1(o Options, w io.Writer) error {
	n := 1024
	if o.Hosts != 0 {
		n = o.Hosts
	}
	trials := 20
	if o.Scale < 1 && o.Scale > 0 {
		trials = 5
	}

	fmt.Fprintf(w, "Theorem 1 validation: n=%d random bipartite graphs, %d trials/row\n\n", n, trials)
	tbl := newTable("avg-degree", "rounds", "measured M/M*", "theorem bound", "holds")
	// Matchers come from the registry rather than hardwired calls:
	// "pim" is the converged M* reference, "dcpim" the bounded-round
	// Theorem 1 regime. The adapters replay the exact RNG streams of the
	// old ConvergedPIM/PIM calls, so this table is byte-identical to the
	// pre-registry output.
	mStarMatcher, err := matching.MustLookup("pim").New(matching.Options{})
	if err != nil {
		return err
	}
	for _, deg := range []float64{2, 5, 10} {
		for _, r := range []int{1, 2, 3, 4, 6} {
			bounded, err := matching.MustLookup("dcpim").New(matching.Options{Rounds: r})
			if err != nil {
				return err
			}
			var fracSum, boundSum float64
			holds := true
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(o.Seed + int64(trial) + int64(1000*r) + int64(deg)))
				g := matching.RandomGraph(rng, n, n, deg)
				ref, _ := mStarMatcher.Match(g, rand.New(rand.NewSource(o.Seed+int64(trial))))
				mStar := ref.Size()
				if mStar == 0 {
					continue
				}
				alpha := float64(n) / float64(mStar)
				mm, _ := bounded.Match(g, rng)
				m := mm.Size()
				frac := float64(m) / float64(mStar)
				bound := matching.TheoremBound(g.AvgDegree(), alpha, r)
				fracSum += frac
				boundSum += bound
			}
			meanFrac := fracSum / float64(trials)
			meanBound := boundSum / float64(trials)
			// Both sides are Monte-Carlo estimates (M* itself comes from
			// one converged run per trial); allow 1% estimator noise when
			// the bound approaches 1.
			if meanFrac < meanBound-0.01 {
				holds = false
			}
			tbl.add(deg, r, meanFrac, meanBound, fmt.Sprintf("%v", holds))
		}
	}
	tbl.write(w)

	// The paper's worked example (§3.1): δ̄ = 5, α = 1.25, r = 4 ⇒ the
	// bound guarantees ≥ 97.5% of M*, i.e. > 78% of all hosts matched.
	b := matching.TheoremBound(5, 1.25, 4)
	fmt.Fprintf(w, "\nPaper example: δ̄=5, 80%% matched by PIM, r=4 ⇒ bound %.4f of M* (paper: >78%% of hosts = %.1f%%)\n",
		b, b*80)
	// Fig. 4c's worked example: dense 144×144, α = 1.2, r = 4 ⇒ 32.9%.
	bd := matching.TheoremBound(144, 1.2, 4)
	fmt.Fprintf(w, "Dense-TM example: δ̄=144, α=1.2, r=4 ⇒ bound %.3f (paper: 32.9%% expected utilization floor)\n", bd)
	return nil
}
