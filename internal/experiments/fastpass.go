package experiments

import (
	"fmt"
	"io"

	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// RunFastpass reproduces the paper's §5 quantitative claim about
// Fastpass: a centralized arbiter delivers good utilization, but every
// short flow must be scheduled before transmission, putting its average
// and tail latency at least ~2× from optimal — while dcPIM's short flows
// bypass matching entirely and land near 1.
func RunFastpass(o Options, w io.Writer) error {
	tp := leafSpineFor(o.Hosts)
	horizon := o.scaled(1 * sim.Millisecond)
	fmt.Fprintf(w, "§5: dcPIM vs Fastpass, IMC10 all-to-all at load 0.5 (horizon %v)\n\n", horizon)
	tbl := newTable("protocol", "short-mean", "short-p99", "all-mean", "completed", "drops")
	for _, proto := range []string{DCPIM, Fastpass} {
		tr := workload.AllToAllConfig{
			Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.5,
			Dist: workload.IMC10(), Horizon: horizon, Seed: o.Seed,
		}.Generate()
		res := Run(RunSpec{
			Protocol: proto, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: o.Seed + 51, Shards: o.Shards, Queue: o.Queue,
		})
		short := stats.Summarize(res.Records, func(r stats.FlowRecord) bool {
			return r.Size <= tp.BDP()
		})
		all := stats.Summarize(res.Records, nil)
		tbl.add(proto, short.Mean, short.P99, all.Mean,
			fmt.Sprintf("%d/%d", res.Col.Completed(), res.Started), res.Counters.DataDrops)
	}
	tbl.write(w)
	fmt.Fprintln(w, "\npaper (§5): Fastpass short flows are ≥2x from optimal at mean and tail; dcPIM ≈1")
	return nil
}
