package experiments

import (
	"reflect"
	"testing"

	"dcpim/internal/sim"
)

// TestBarrierModeByteIdentity pins the epoch-barrier swap end to end:
// the hybrid spin-then-park barrier (the default) and the legacy
// channel+WaitGroup barrier must produce bit-identical runs — digest,
// flow records, counters, and the per-shard dispatched/skipped epoch
// profile — at every shard count, clean and faulted, and both must still
// reproduce the checked-in golden digests. The sim-level randomized
// property (sim.TestGroupBarrierEquivalence) covers synthetic event
// graphs; this covers the full protocol stack.
func TestBarrierModeByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults bool
		want   uint64
	}{
		{"clean", false, goldenDigestClean},
		{"faulted", true, goldenDigestFaulted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 4} {
				ref := goldenSpec(t, DCPIM, tc.faults)
				ref.Shards = shards
				ref.Barrier = sim.BarrierChannel
				refRes := Run(ref)
				if refRes.Digest != tc.want {
					t.Fatalf("channel shards=%d digest %#016x, want golden %#016x", shards, refRes.Digest, tc.want)
				}
				got := goldenSpec(t, DCPIM, tc.faults)
				got.Shards = shards
				got.Barrier = sim.BarrierHybrid
				gotRes := Run(got)
				if gotRes.Digest != refRes.Digest {
					t.Errorf("hybrid shards=%d digest %#016x != channel %#016x", shards, gotRes.Digest, refRes.Digest)
				}
				if !reflect.DeepEqual(gotRes.Records, refRes.Records) {
					t.Errorf("hybrid shards=%d flow records differ from channel barrier", shards)
				}
				if gotRes.Counters != refRes.Counters {
					t.Errorf("hybrid shards=%d counters %+v != channel %+v", shards, gotRes.Counters, refRes.Counters)
				}
				if !reflect.DeepEqual(gotRes.ShardStats, refRes.ShardStats) {
					t.Errorf("hybrid shards=%d shard stats %+v != channel %+v", shards, gotRes.ShardStats, refRes.ShardStats)
				}
			}
		})
	}
}

// TestBarrierMode64Shards runs the 1024-host campaign cell at the
// widest cut the topology allows under both barriers: 64 single-pod
// shards is where barrier overhead dominates, so any batching or
// park/wake defect that only shows under heavy contention surfaces
// here. Both runs must also match the committed 1024-host golden.
func TestBarrierMode64Shards(t *testing.T) {
	if testing.Short() {
		t.Skip("two 1024-host 64-shard runs")
	}
	ref := scale1024Spec()
	ref.Shards = 64
	ref.Barrier = sim.BarrierChannel
	refRes := Run(ref)
	if refRes.Digest != golden1024Digest {
		t.Fatalf("channel digest %#016x, want golden %#016x", refRes.Digest, golden1024Digest)
	}
	got := scale1024Spec()
	got.Shards = 64
	got.Barrier = sim.BarrierHybrid
	gotRes := Run(got)
	if gotRes.Digest != golden1024Digest {
		t.Errorf("hybrid digest %#016x, want golden %#016x", gotRes.Digest, golden1024Digest)
	}
	if !reflect.DeepEqual(gotRes.ShardStats, refRes.ShardStats) {
		t.Errorf("hybrid shard stats differ from channel barrier")
	}
}
