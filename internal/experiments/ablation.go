package experiments

import (
	"fmt"
	"io"

	"dcpim/internal/core"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// RunAblation isolates two dcPIM design choices beyond the paper's Figure
// 6 sweeps:
//
//   - The FCT-optimizing first round (§3.5): with flow-size information
//     the first matching round picks smallest-remaining-flow; without it
//     (sizes unknown) the round degenerates to uniform random choice.
//     The ablation quantifies what that optimization buys medium flows.
//   - The token window (§3.2): halving or doubling the 1-BDP window
//     trades loss-recovery lag against in-network buffering.
func RunAblation(o Options, w io.Writer) error {
	tp := leafSpineFor(o.Hosts)
	horizon := o.scaled(1 * sim.Millisecond)
	const load = 0.54

	specFor := func(cfg core.Config) RunSpec {
		tr := workload.AllToAllConfig{
			Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: load,
			Dist: workload.WebSearch(), Horizon: horizon, Seed: o.Seed,
		}.Generate()
		c := cfg
		return RunSpec{
			Protocol: DCPIM, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: o.Seed + 61, Shards: o.Shards, Queue: o.Queue, DcPIM: &c,
		}
	}
	summarize := func(res RunResult) (short, medium, all stats.Summary) {
		bdp := tp.BDP()
		short = stats.Summarize(res.Records, func(r stats.FlowRecord) bool { return r.Size <= bdp })
		medium = stats.Summarize(res.Records, func(r stats.FlowRecord) bool {
			return r.Size > bdp && r.Size <= 16*bdp
		})
		all = stats.Summarize(res.Records, nil)
		return short, medium, all
	}

	fcts := []bool{true, false}
	fracs := []float64{0.5, 1.0, 2.0}
	var specs []RunSpec
	for _, fct := range fcts {
		cfg := core.DefaultConfig()
		cfg.FCTRound = fct
		specs = append(specs, specFor(cfg))
	}
	bdp := tp.BDP()
	for _, frac := range fracs {
		cfg := core.DefaultConfig()
		cfg.WindowBytes = int64(frac * float64(bdp))
		specs = append(specs, specFor(cfg))
	}
	results := RunMany(specs, o.workers())

	fmt.Fprintf(w, "dcPIM design ablations, WebSearch at load %.2f (horizon %v)\n", load, horizon)

	fmt.Fprintf(w, "\n-- FCT-optimizing round (§3.5): flow sizes known vs unknown --\n")
	tbl := newTable("first-round", "short-mean", "short-p99", "medium-mean", "medium-p99", "all-mean")
	for i, fct := range fcts {
		label := "SRPT (sizes known)"
		if !fct {
			label = "random (sizes unknown)"
		}
		s, m, a := summarize(results[i])
		tbl.add(label, s.Mean, s.P99, m.Mean, m.P99, a.Mean)
	}
	tbl.write(w)

	fmt.Fprintf(w, "\n-- token window (§3.2): fraction of one BDP --\n")
	tbl = newTable("window", "short-mean", "short-p99", "medium-mean", "medium-p99", "all-mean")
	for i, frac := range fracs {
		s, m, a := summarize(results[len(fcts)+i])
		tbl.add(fmt.Sprintf("%.1f BDP", frac), s.Mean, s.P99, m.Mean, m.P99, a.Mean)
	}
	tbl.write(w)

	fmt.Fprintln(w, "\nexpected: the SRPT round mainly helps medium flows; a 1-BDP window is the sweet spot")
	return nil
}
