package experiments

import (
	"fmt"
	"io"

	"dcpim/internal/core"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// RunFig6 reproduces Figure 6: dcPIM's sensitivity to its three
// parameters — matching rounds r, channels k, and slack β — at load 0.54
// (the highest load sustainable across every combination). One parameter
// varies per sweep; the others stay at the defaults (r=4, k=4, β=1.3).
// The paper's findings: going 1→2 rounds buys 18–24% more sustainable
// load; 2–4 channels are the sweet spot; β has no effect beyond 1.1.
func RunFig6(o Options, w io.Writer) error {
	horizon := o.scaled(1 * sim.Millisecond)
	const load = 0.54
	tp := leafSpineFor(o.Hosts)
	dist := workload.IMC10()

	specFor := func(cfg core.Config) RunSpec {
		tr := workload.AllToAllConfig{
			Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: load,
			Dist: dist, Horizon: horizon, Seed: o.Seed,
		}.Generate()
		c := cfg
		return RunSpec{
			Protocol: DCPIM, Topo: tp, Trace: tr,
			Horizon: horizon + horizon/2, Seed: o.Seed + 31, Shards: o.Shards, Queue: o.Queue, DcPIM: &c,
		}
	}
	summarize := func(res RunResult) (util float64, short, all stats.Summary) {
		util = steadyUtilization(res, horizon/2, horizon) / load
		short = stats.Summarize(res.Records, func(r stats.FlowRecord) bool {
			return r.Size <= tp.BDP()
		})
		all = stats.Summarize(res.Records, nil)
		return
	}

	// All three sweeps are independent probes of one parameter each; run
	// them as a single batch and print from the ordered results.
	rounds := []int{1, 2, 4, 6, 8}
	channels := []int{1, 2, 4, 8}
	betas := []float64{1.0, 1.1, 1.3, 2.0, 3.0}
	var specs []RunSpec
	for _, r := range rounds {
		cfg := core.DefaultConfig()
		cfg.Rounds = r
		specs = append(specs, specFor(cfg))
	}
	for _, k := range channels {
		cfg := core.DefaultConfig()
		cfg.Channels = k
		specs = append(specs, specFor(cfg))
	}
	for _, b := range betas {
		cfg := core.DefaultConfig()
		cfg.Beta = b
		specs = append(specs, specFor(cfg))
	}
	results := RunMany(specs, o.workers())

	fmt.Fprintf(w, "Figure 6: dcPIM sensitivity at load %.2f (horizon %v)\n", load, horizon)

	fmt.Fprintf(w, "\n-- rounds r (k=4, β=1.3) --\n")
	tbl := newTable("r", "goodput/offered", "short-mean", "short-p99", "all-mean")
	for i, r := range rounds {
		util, short, all := summarize(results[i])
		tbl.add(r, util, short.Mean, short.P99, all.Mean)
	}
	tbl.write(w)

	fmt.Fprintf(w, "\n-- channels k (r=4, β=1.3) --\n")
	tbl = newTable("k", "goodput/offered", "short-mean", "short-p99", "all-mean")
	for i, k := range channels {
		util, short, all := summarize(results[len(rounds)+i])
		tbl.add(k, util, short.Mean, short.P99, all.Mean)
	}
	tbl.write(w)

	fmt.Fprintf(w, "\n-- slack β (r=4, k=4) --\n")
	tbl = newTable("beta", "goodput/offered", "short-mean", "short-p99", "all-mean")
	for i, b := range betas {
		util, short, all := summarize(results[len(rounds)+len(channels)+i])
		tbl.add(b, util, short.Mean, short.P99, all.Mean)
	}
	tbl.write(w)

	fmt.Fprintln(w, "\npaper: 1→2 rounds has the largest effect; k=2-4 best; β irrelevant beyond 1.1")
	_ = sim.Microsecond
	return nil
}
