package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dcpim/internal/matching"
)

// goldenMatcherDigest pins the matchers sweep at the canonical smoke
// configuration (quick() options, Workers forced to 1/4/8 below). The
// sweep is a pure function of its config, so any change here means the
// matcher algorithms, seed derivation, or CSV schema changed — regenerate
// deliberately with:
//
//	go test ./internal/experiments -run TestMatcherSweepGoldenDigest -v
const goldenMatcherDigest uint64 = 0x0f539d1274ea359f

// matcherQuick is the canonical smoke config: every registered matcher,
// small sparse+dense grid, two budgets for budgeted matchers.
func matcherQuick(workers int) MatcherSweepConfig {
	return MatcherSweepConfig{
		Matchers:    matching.Names(),
		SparsePorts: []int{64, 256},
		DensePorts:  []int{32},
		Degree:      4,
		BudgetFracs: []float64{0.25, 0.05},
		Trials:      2,
		Seed:        1,
		Workers:     workers,
	}
}

// The sweep digest must be byte-identical at -parallel 1, 4 and 8, and
// must match the pinned golden value.
func TestMatcherSweepGoldenDigest(t *testing.T) {
	var ref uint64
	for _, workers := range []int{1, 4, 8} {
		rows, err := MatcherSweep(matcherQuick(workers))
		if err != nil {
			t.Fatal(err)
		}
		digest, err := matcherDigest(rows)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			ref = digest
			t.Logf("matchers digest (serial): %#016x over %d rows", digest, len(rows))
			if digest != goldenMatcherDigest {
				t.Errorf("sweep digest %#016x != golden %#016x — matcher behavior or schema changed",
					digest, goldenMatcherDigest)
			}
			continue
		}
		if digest != ref {
			t.Errorf("workers=%d digest %#016x != serial %#016x", workers, digest, ref)
		}
	}
}

// RunMatchers' full printed report must be byte-identical at -parallel
// 1, 4 and 8 (the experiment prints no wall-clock timing).
func TestMatchersOutputParallelInvariant(t *testing.T) {
	var ref bytes.Buffer
	o := quick()
	o.Workers = 1
	if err := RunMatchers(o, &ref); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		var got bytes.Buffer
		o.Workers = workers
		if err := RunMatchers(o, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), got.Bytes()) {
			t.Errorf("-parallel %d output differs from serial:\n%s\nvs\n%s", workers, got.String(), ref.String())
		}
	}
}

// Every row the sweep emits must satisfy the schema invariants the docs
// promise: valid matchers, budget rows only for budgeted matchers,
// per-round bits within budget, size_vs_mstar in [0, ~1].
func TestMatcherSweepRowInvariants(t *testing.T) {
	rows, err := MatcherSweep(matcherQuick(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range rows {
		d, ok := matching.Lookup(r.Matcher)
		if !ok {
			t.Fatalf("row names unregistered matcher %q", r.Matcher)
		}
		if r.BudgetFrac > 0 && !d.Budgeted {
			t.Fatalf("non-budgeted %s has budget row", r.Matcher)
		}
		if r.BudgetBits > 0 && r.MaxRoundBits > r.BudgetBits {
			t.Fatalf("%s on %s n=%d: round spent %d bits > budget %d",
				r.Matcher, r.Graph, r.Ports, r.MaxRoundBits, r.BudgetBits)
		}
		if r.SizeVsMStar < 0 || r.SizeVsMStar > 1.2 {
			t.Fatalf("%s: size_vs_mstar %v out of range", r.Matcher, r.SizeVsMStar)
		}
		if r.MStar <= 0 {
			t.Fatalf("%s on %s n=%d: M* = %d", r.Matcher, r.Graph, r.Ports, r.MStar)
		}
	}
}

// Unknown matcher names fail loudly, listing the registry.
func TestMatcherSweepUnknownMatcher(t *testing.T) {
	cfg := matcherQuick(1)
	cfg.Matchers = []string{"pim", "bogus"}
	_, err := MatcherSweep(cfg)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want unknown-matcher error, got %v", err)
	}
}

// The CSV writer emits one header plus one line per row with the
// documented column count.
func TestWriteMatcherCSVShape(t *testing.T) {
	rows, err := MatcherSweep(matcherQuick(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatcherCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("CSV has %d lines for %d rows", len(lines), len(rows))
	}
	wantCols := len(strings.Split(lines[0], ","))
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != wantCols {
			t.Fatalf("line %d has %d columns, header has %d", i, got, wantCols)
		}
	}
}
