package experiments

import "time"

// WallTimer is the one sanctioned bridge between internal/ code and the
// host's wall clock: it returns a func that reports the wall time elapsed
// since the WallTimer call. Hosts of the experiment binaries use it for
// progress reporting; nothing on the simulation path may read the wall
// clock (sim.Time is the only clock there), and the wallclock analyzer
// (internal/analysis) allowlists exactly this function — so host-side
// timing concentrates here instead of spreading time.Now calls that the
// linter would have to except file by file.
func WallTimer() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}
