package experiments

import (
	"bytes"
	"testing"

	"dcpim/internal/faults"
	"dcpim/internal/sim"
	"dcpim/internal/workload"
)

// goldenFaults is the fixed schedule for the golden digest run: one
// multi-epoch dark downlink, a total-loss burst, and a cold spine reboot.
const goldenFaults = `
linkdown sw=0 port=1 at=40us dur=90us
burst sw=1 port=2 at=60us dur=30us rate=1.0
reboot sw=2 at=100us dur=50us drain=drop
`

// goldenSpec builds the fixed-seed digest run. Every call constructs a
// fresh trace and topology so serial and parallel executions share
// nothing.
func goldenSpec(t *testing.T, proto string, withFaults bool) RunSpec {
	t.Helper()
	tp := leafSpineFor(8)
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.4,
		Dist: workload.IMC10(), Horizon: 200 * sim.Microsecond, Seed: 42,
	}.Generate()
	spec := RunSpec{
		Protocol: proto, Topo: tp, Trace: tr,
		Horizon: 2 * sim.Millisecond, Seed: 99, Digest: true,
	}
	if withFaults {
		sched, err := faults.ParseSchedule(goldenFaults)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(tp); err != nil {
			t.Fatal(err)
		}
		spec.Faults = sched
	}
	return spec
}

// Golden delivered-stream digests for goldenSpec. If a deliberate
// behavior change shifts the packet stream, rerun
//
//	go test ./internal/experiments -run TestGoldenDigest -v
//
// and copy the measured digests printed in the failure. A change here
// must be explainable by the commit touching protocol or fabric timing.
const (
	goldenDigestClean   uint64 = 0x8b585328efe0256b
	goldenDigestFaulted uint64 = 0x8bd2213b1227a90a
)

// TestGoldenDigest locks the delivered-packet event stream of a
// fixed-seed dcPIM run — with and without faults — to checked-in
// digests, and requires serial and parallel RunMany execution to agree
// bit-for-bit at any worker count.
func TestGoldenDigest(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults bool
		want   uint64
	}{
		{"clean", false, goldenDigestClean},
		{"faulted", true, goldenDigestFaulted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := Run(goldenSpec(t, DCPIM, tc.faults))
			if serial.Digest == 0 {
				t.Fatal("digest not computed")
			}
			if serial.Digest != tc.want {
				t.Errorf("digest %#016x, want %#016x (see regeneration note)", serial.Digest, tc.want)
			}
			specs := make([]RunSpec, 4)
			for i := range specs {
				specs[i] = goldenSpec(t, DCPIM, tc.faults)
			}
			for i, res := range RunMany(specs, 4) {
				if res.Digest != serial.Digest {
					t.Errorf("parallel run %d digest %#016x != serial %#016x", i, res.Digest, serial.Digest)
				}
			}
		})
	}
}

// TestGoldenDigestPerProtocol ensures digesting works for every
// comparator (the fault grid runs them all) and that faults change the
// stream while reruns do not.
func TestGoldenDigestPerProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("comparator digest sweep")
	}
	for _, proto := range Comparators {
		clean := Run(goldenSpec(t, proto, false))
		again := Run(goldenSpec(t, proto, false))
		faulted := Run(goldenSpec(t, proto, true))
		if clean.Digest != again.Digest {
			t.Errorf("%s: rerun digest %#x != %#x", proto, again.Digest, clean.Digest)
		}
		if clean.Digest == faulted.Digest {
			t.Errorf("%s: fault schedule did not change delivered stream (%#x)", proto, clean.Digest)
		}
	}
}

// TestFaultsOutputParallelInvariant requires the faults experiment's
// printed report to be byte-identical at -parallel 1, 4 and 8.
func TestFaultsOutputParallelInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fault grid three times")
	}
	var ref bytes.Buffer
	o := quick()
	o.Workers = 1
	if err := RunFaults(o, &ref); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		var got bytes.Buffer
		o.Workers = workers
		if err := RunFaults(o, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), got.Bytes()) {
			t.Errorf("-parallel %d output differs from serial:\n%s\nvs\n%s", workers, got.String(), ref.String())
		}
	}
}
