package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"dcpim/internal/faults"
	"dcpim/internal/sim"
	"dcpim/internal/workload"
)

// goldenFaults is the fixed schedule for the golden digest run: one
// multi-epoch dark downlink, a total-loss burst, and a cold spine reboot.
const goldenFaults = `
linkdown sw=0 port=1 at=40us dur=90us
burst sw=1 port=2 at=60us dur=30us rate=1.0
reboot sw=2 at=100us dur=50us drain=drop
`

// goldenSpec builds the fixed-seed digest run. Every call constructs a
// fresh trace and topology so serial and parallel executions share
// nothing.
func goldenSpec(t *testing.T, proto string, withFaults bool) RunSpec {
	t.Helper()
	tp := leafSpineFor(8)
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.4,
		Dist: workload.IMC10(), Horizon: 200 * sim.Microsecond, Seed: 42,
	}.Generate()
	spec := RunSpec{
		Protocol: proto, Topo: tp, Trace: tr,
		Horizon: 2 * sim.Millisecond, Seed: 99, Digest: true,
	}
	if withFaults {
		sched, err := faults.ParseSchedule(goldenFaults)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(tp); err != nil {
			t.Fatal(err)
		}
		spec.Faults = sched
	}
	return spec
}

// Golden delivered-stream digests for goldenSpec. If a deliberate
// behavior change shifts the packet stream, rerun
//
//	go test ./internal/experiments -run TestGoldenDigest -v
//
// and copy the measured digests printed in the failure. A change here
// must be explainable by the commit touching protocol or fabric timing.
// (Last regeneration: sharded execution gave every device its own
// seed-derived RNG stream and made the digest a per-host fold, both of
// which shift the stream and its hash once, for every shard count.)
const (
	goldenDigestClean   uint64 = 0x1eb6e81d4616af03
	goldenDigestFaulted uint64 = 0x68dea6ffa9e57f4c
)

// TestGoldenDigest locks the delivered-packet event stream of a
// fixed-seed dcPIM run — with and without faults — to checked-in
// digests, and requires serial and parallel RunMany execution to agree
// bit-for-bit at any worker count.
func TestGoldenDigest(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults bool
		want   uint64
	}{
		{"clean", false, goldenDigestClean},
		{"faulted", true, goldenDigestFaulted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := Run(goldenSpec(t, DCPIM, tc.faults))
			if serial.Digest == 0 {
				t.Fatal("digest not computed")
			}
			if serial.Digest != tc.want {
				t.Errorf("digest %#016x, want %#016x (see regeneration note)", serial.Digest, tc.want)
			}
			specs := make([]RunSpec, 4)
			for i := range specs {
				specs[i] = goldenSpec(t, DCPIM, tc.faults)
			}
			for i, res := range RunMany(specs, 4) {
				if res.Digest != serial.Digest {
					t.Errorf("parallel run %d digest %#016x != serial %#016x", i, res.Digest, serial.Digest)
				}
			}
		})
	}
}

// TestGoldenDigestPerProtocol ensures digesting works for every
// comparator (the fault grid runs them all) and that faults change the
// stream while reruns do not.
func TestGoldenDigestPerProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("comparator digest sweep")
	}
	for _, proto := range Comparators {
		clean := Run(goldenSpec(t, proto, false))
		again := Run(goldenSpec(t, proto, false))
		faulted := Run(goldenSpec(t, proto, true))
		if clean.Digest != again.Digest {
			t.Errorf("%s: rerun digest %#x != %#x", proto, again.Digest, clean.Digest)
		}
		if clean.Digest == faulted.Digest {
			t.Errorf("%s: fault schedule did not change delivered stream (%#x)", proto, clean.Digest)
		}
	}
}

// TestShardedByteIdentity is the sharded engine's core invariant: one
// seed, run serially and across 2 and 4 shards, produces bit-identical
// digests, flow records, counters, and sampled metrics artifacts — with
// and without a fault schedule. goldenSpec's topology (leafspine-8: two
// racks, two spines) splits into at most 4 single-switch shards, so 4
// is the hardest cut: every switch↔switch link is a shard boundary.
func TestShardedByteIdentity(t *testing.T) {
	sharded := func(t *testing.T, withFaults bool, shards int) RunSpec {
		spec := goldenSpec(t, DCPIM, withFaults)
		spec.Metrics = &MetricsSpec{Interval: 10 * sim.Microsecond, Label: "shard"}
		spec.Shards = shards
		return spec
	}
	for _, tc := range []struct {
		name   string
		faults bool
		want   uint64
	}{
		{"clean", false, goldenDigestClean},
		{"faulted", true, goldenDigestFaulted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := Run(sharded(t, tc.faults, 1))
			if serial.Digest != tc.want {
				t.Fatalf("serial digest %#016x, want golden %#016x", serial.Digest, tc.want)
			}
			for _, shards := range []int{2, 4} {
				res := Run(sharded(t, tc.faults, shards))
				if res.Digest != serial.Digest {
					t.Errorf("shards=%d digest %#016x != serial %#016x", shards, res.Digest, serial.Digest)
				}
				if !reflect.DeepEqual(res.Records, serial.Records) {
					t.Errorf("shards=%d flow records differ from serial", shards)
				}
				if res.Counters != serial.Counters {
					t.Errorf("shards=%d counters %+v != serial %+v", shards, res.Counters, serial.Counters)
				}
				if !bytes.Equal(res.MetricsCSV, serial.MetricsCSV) {
					t.Errorf("shards=%d metrics CSV differs from serial", shards)
				}
				if !bytes.Equal(res.MetricsJSON, serial.MetricsJSON) {
					t.Errorf("shards=%d metrics JSON differs from serial", shards)
				}
			}
		})
	}
}

// TestShardedPerProtocol runs every comparator sharded: the boundary
// staging path must be protocol-agnostic (trims, PFC, Aeolus drops, and
// fastpass's centralized arbiter messages all cross rack boundaries).
func TestShardedPerProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("comparator sharded sweep")
	}
	protos := append([]string{Fastpass}, Comparators...)
	for _, proto := range protos {
		serial := Run(goldenSpec(t, proto, true))
		spec := goldenSpec(t, proto, true)
		spec.Shards = 4
		res := Run(spec)
		if res.Digest != serial.Digest {
			t.Errorf("%s: shards=4 digest %#016x != serial %#016x", proto, res.Digest, serial.Digest)
		}
	}
}

// TestExperimentOutputShardInvariant requires the printed artifacts of
// fig3a (leaf-spine load bisection) and fig5cd (FatTree slowdowns) — the
// acceptance experiments — to be byte-identical between serial and 2/4
// shard execution at quick scale.
func TestExperimentOutputShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two experiments three times each")
	}
	for _, id := range []string{"fig3a", "fig5cd"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		var ref bytes.Buffer
		o := quick()
		if err := e.Run(o, &ref); err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		for _, shards := range []int{2, 4} {
			var got bytes.Buffer
			os := o
			os.Shards = shards
			if err := e.Run(os, &got); err != nil {
				t.Fatalf("%s shards=%d: %v", id, shards, err)
			}
			if !bytes.Equal(ref.Bytes(), got.Bytes()) {
				t.Errorf("%s: -shards %d output differs from serial:\n%s\nvs\n%s",
					id, shards, got.String(), ref.String())
			}
		}
	}
}

// TestFaultsOutputShardInvariant requires the full resilience grid —
// fault generation, installation, auditing, and report printing — to be
// byte-identical between serial and 4-shard fabrics, proving the fault
// injector and packet-conservation auditor are shard-safe end to end.
func TestFaultsOutputShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fault grid twice")
	}
	var ref bytes.Buffer
	o := quick()
	o.Workers = 1
	if err := RunFaults(o, &ref); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	o.Shards = 4
	if err := RunFaults(o, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Bytes(), got.Bytes()) {
		t.Errorf("-shards 4 output differs from serial:\n%s\nvs\n%s", got.String(), ref.String())
	}
}

// TestFaultsOutputParallelInvariant requires the faults experiment's
// printed report to be byte-identical at -parallel 1, 4 and 8.
func TestFaultsOutputParallelInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fault grid three times")
	}
	var ref bytes.Buffer
	o := quick()
	o.Workers = 1
	if err := RunFaults(o, &ref); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		var got bytes.Buffer
		o.Workers = workers
		if err := RunFaults(o, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), got.Bytes()) {
			t.Errorf("-parallel %d output differs from serial:\n%s\nvs\n%s", workers, got.String(), ref.String())
		}
	}
}
