package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"dcpim/internal/sim"
	"dcpim/internal/workload"
)

// someSpecs builds a mixed batch of small runs covering several protocols
// and loads.
func someSpecs() []RunSpec {
	o := quick()
	var specs []RunSpec
	for i, proto := range []string{DCPIM, HomaAeolus, NDP, HPCC, DCPIM, HomaAeolus} {
		load := 0.4 + 0.05*float64(i)
		specs = append(specs, loadSpec(o, proto, workload.IMC10(), load, 150*sim.Microsecond))
	}
	return specs
}

// TestRunManyMatchesSerial pins the determinism contract: a worker pool
// must produce exactly the serial loop's results, in input order.
func TestRunManyMatchesSerial(t *testing.T) {
	serial := RunMany(someSpecs(), 1)
	parallel := RunMany(someSpecs(), 4)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Protocol != p.Protocol {
			t.Fatalf("run %d: protocol order changed: %s vs %s", i, s.Protocol, p.Protocol)
		}
		if !reflect.DeepEqual(s.Records, p.Records) {
			t.Errorf("run %d (%s): flow records differ between serial and parallel", i, s.Protocol)
		}
		if s.Counters != p.Counters {
			t.Errorf("run %d (%s): fabric counters differ: %+v vs %+v", i, s.Protocol, s.Counters, p.Counters)
		}
		if s.Col.DeliveredBytes() != p.Col.DeliveredBytes() {
			t.Errorf("run %d (%s): delivered bytes differ: %d vs %d",
				i, s.Protocol, s.Col.DeliveredBytes(), p.Col.DeliveredBytes())
		}
	}
}

// TestRunManyFig3aDeterministic runs the fig3a load search twice serially
// and twice on four workers; all four reports must be byte-identical.
func TestRunManyFig3aDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("four fig3a smoke runs are not short")
	}
	render := func(workers int) string {
		var buf bytes.Buffer
		o := quick()
		o.Workers = workers
		if err := RunFig3a(o, &buf); err != nil {
			t.Fatalf("fig3a (workers=%d): %v", workers, err)
		}
		return buf.String()
	}
	s1, s2 := render(1), render(1)
	p1, p2 := render(4), render(4)
	if s1 != s2 {
		t.Fatal("serial fig3a output is not reproducible")
	}
	if p1 != p2 {
		t.Fatal("parallel fig3a output is not reproducible")
	}
	if s1 != p1 {
		t.Fatalf("parallel fig3a output differs from serial:\n-- serial --\n%s\n-- parallel --\n%s", s1, p1)
	}
}

// TestRunManyEmptyAndSingle covers the degenerate batch shapes.
func TestRunManyEmptyAndSingle(t *testing.T) {
	if got := RunMany(nil, 8); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	specs := someSpecs()[:1]
	res := RunMany(specs, 8)
	if len(res) != 1 || res[0].Protocol != specs[0].Protocol {
		t.Fatalf("single-spec batch mangled: %+v", res)
	}
}
