package experiments

import (
	"fmt"
	"io"

	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// loadSpec generates an all-to-all trace at the given load on the default
// topology and describes one protocol run over it, with 50% drain time
// past the trace horizon. Sweeps batch these through RunMany.
func loadSpec(o Options, proto string, dist workload.SizeDist, load float64, horizon sim.Duration) RunSpec {
	tp := leafSpineFor(o.Hosts)
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: load,
		Dist: dist, Horizon: horizon, Seed: o.Seed,
	}.Generate()
	return RunSpec{
		Protocol: proto, Topo: tp, Trace: tr,
		Horizon: horizon + horizon/2, Seed: o.Seed + 77, Shards: o.Shards, Queue: o.Queue,
	}
}

// loadRun executes loadSpec immediately (single-run call sites).
func loadRun(o Options, proto string, dist workload.SizeDist, load float64, horizon sim.Duration) RunResult {
	return Run(loadSpec(o, proto, dist, load, horizon))
}

// RunFig3a reproduces Figure 3(a): the maximum load each protocol
// sustains on the IMC10 workload over the default leaf-spine, found by
// binary search on offered load (sustained = steady goodput within 6% of
// offered). The paper reports dcPIM ≈ 0.84, Homa Aeolus next, then HPCC,
// then NDP.
func RunFig3a(o Options, w io.Writer) error {
	horizon := o.scaled(2 * sim.Millisecond)
	// The IMC10 tail (flows to ~21 MB) needs tens of milliseconds of
	// warm-up before raw throughput is stationary; for the sustainability
	// search we truncate flow sizes at 1 MB (≈14 BDP — still firmly in
	// matched-long-flow territory) so each probe converges within the
	// horizon. See EXPERIMENTS.md for the substitution note.
	dist := workload.TruncatedDist{Base: workload.IMC10(), Max: 1 << 20}

	fmt.Fprintf(w, "Figure 3(a): max sustainable load, %s, leaf-spine (horizon %v)\n\n", dist.Name(), horizon)
	tbl := newTable("protocol", "max-load", "capped-util@max", "probes")
	// All protocols bisect the same starting interval, so they need the
	// same number of probes and the searches advance in lockstep: each
	// iteration probes every protocol's midpoint as one RunMany batch.
	// Per-protocol trajectories are unchanged from a serial search.
	type search struct {
		lo, hi, utilAt float64
		probes         int
	}
	ss := make([]search, len(Comparators))
	for i := range ss {
		ss[i] = search{lo: 0.40, hi: 0.96}
	}
	for ss[0].hi-ss[0].lo > 0.03 {
		specs := make([]RunSpec, len(Comparators))
		for i, proto := range Comparators {
			load := (ss[i].lo + ss[i].hi) / 2
			specs[i] = loadSpec(o, proto, dist, load, horizon)
			specs[i].Metrics = o.metrics(fmt.Sprintf("fig3a-%s-load%.3f", proto, load))
			specs[i].Checkpoint = o.checkpoint(fmt.Sprintf("fig3a-%s-load%.3f", proto, load))
		}
		for i, res := range RunMany(specs, o.workers()) {
			s := &ss[i]
			mid := (s.lo + s.hi) / 2
			s.probes++
			if sustainsCapped(res) {
				s.lo = mid
				s.utilAt = res.CappedUtilization()
			} else {
				s.hi = mid
			}
		}
	}
	for i, proto := range Comparators {
		tbl.add(proto, ss[i].lo, ss[i].utilAt, ss[i].probes)
	}
	tbl.write(w)
	fmt.Fprintln(w, "\npaper: dcPIM 0.84, Homa Aeolus ~0.8, HPCC/NDP lower")
	return nil
}

// sustainsCapped is the sustainability criterion for the truncated
// workload: delivered bytes within 8% of the physically deliverable
// offered bytes, and ≥95% of flows completed.
func sustainsCapped(res RunResult) bool {
	return res.CappedUtilization() >= 0.92 && res.Completion() >= 0.95
}

// fig3Workloads are the three evaluation workloads.
func fig3Workloads() []workload.SizeDist {
	return []workload.SizeDist{workload.IMC10(), workload.WebSearch(), workload.DataMining()}
}

// RunFig3b reproduces Figure 3(b): mean slowdown across all flows at load
// 0.6 for each workload × protocol.
func RunFig3b(o Options, w io.Writer) error {
	horizon := o.scaled(2 * sim.Millisecond)
	fmt.Fprintf(w, "Figure 3(b): mean slowdown across all flows at load 0.6 (horizon %v)\n\n", horizon)
	tbl := newTable("workload", "protocol", "mean", "p99", "completed")
	dists := fig3Workloads()
	var specs []RunSpec
	for _, dist := range dists {
		for _, proto := range Comparators {
			spec := loadSpec(o, proto, dist, 0.6, horizon)
			spec.Metrics = o.metrics(fmt.Sprintf("fig3b-%s-%s", dist.Name(), proto))
			spec.Checkpoint = o.checkpoint(fmt.Sprintf("fig3b-%s-%s", dist.Name(), proto))
			specs = append(specs, spec)
		}
	}
	results := RunMany(specs, o.workers())
	for di, dist := range dists {
		for pi, proto := range Comparators {
			res := results[di*len(Comparators)+pi]
			s := stats.Summarize(res.Records, nil)
			tbl.add(dist.Name(), proto, s.Mean, s.P99, fmt.Sprintf("%d/%d", res.Col.Completed(), res.Started))
		}
	}
	tbl.write(w)
	fmt.Fprintln(w, "\npaper: dcPIM lowest mean slowdown; Homa Aeolus close; NDP worst")
	return nil
}

// RunFig3cde reproduces Figures 3(c,d,e): mean and 99th-percentile
// slowdown broken down by flow-size bucket, one block per workload. The
// headline numbers: dcPIM short-flow mean 1.03–1.04 and tail 1.09–1.16,
// versus 2.5–2.7 / 3–6.1 for Homa Aeolus, 2.5–4.1 / 12.5–22.3 for NDP,
// and 1.1–1.9 / 2–5.8 for HPCC.
func RunFig3cde(o Options, w io.Writer) error {
	horizon := o.scaled(2 * sim.Millisecond)
	tp := leafSpineFor(o.Hosts)
	buckets := stats.DefaultBuckets(tp.BDP())
	fmt.Fprintf(w, "Figure 3(c-e): slowdown by flow size at load 0.6 (horizon %v)\n", horizon)
	dists := fig3Workloads()
	var specs []RunSpec
	for _, dist := range dists {
		for _, proto := range Comparators {
			specs = append(specs, loadSpec(o, proto, dist, 0.6, horizon))
		}
	}
	results := RunMany(specs, o.workers())
	for di, dist := range dists {
		fmt.Fprintf(w, "\n-- workload %s --\n", dist.Name())
		tbl := newTable(append([]string{"protocol", "metric"}, bucketLabels(buckets)...)...)
		for pi, proto := range Comparators {
			res := results[di*len(Comparators)+pi]
			bs := stats.BucketSlowdowns(res.Records, buckets)
			mean := []any{proto, "mean"}
			tail := []any{proto, "p99"}
			for _, b := range bs {
				mean = append(mean, cell(b.Summary.Count, b.Summary.Mean))
				tail = append(tail, cell(b.Summary.Count, b.Summary.P99))
			}
			tbl.add(mean...)
			tbl.add(tail...)
		}
		tbl.write(w)
	}
	fmt.Fprintln(w, "\npaper: dcPIM short-flow mean 1.03-1.04, p99 1.09-1.16; medium flows pay the matching latency")
	return nil
}

func bucketLabels(bs []stats.SizeBucket) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Label
	}
	return out
}

func cell(count int, v float64) string {
	if count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}
