package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"dcpim/internal/checkpoint"
	"dcpim/internal/sim"
	"dcpim/internal/workload"
)

// ScaleResult is one cell of the hyperscale campaign, serialized into
// BENCH_scale.json so CI can archive the scaling trajectory per commit.
type ScaleResult struct {
	Hosts        int     `json:"hosts"`
	Load         float64 `json:"load"`
	Shards       int     `json:"shards"`
	Procs        int     `json:"procs"` // GOMAXPROCS the cell ran under
	Queue        string  `json:"queue"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Flows        int64   `json:"flows"`
	Completed    int64   `json:"completed"`
	Epochs       uint64  `json:"epochs"`
	SkippedPct   float64 `json:"skipped_pct"`
	Resumed      bool    `json:"resumed,omitempty"` // cell restored from a snapshot
	Digest       string  `json:"digest"`
}

// scaleHorizon is the per-tier trace horizon: the hyperscale trees carry
// ~8× the event rate of the 1024-host tree, so their cells run a shorter
// horizon to keep the full campaign's wall time bounded without thinning
// the grid.
func scaleHorizon(o Options, hosts int) sim.Duration {
	h := 100 * sim.Microsecond
	if hosts >= 4096 {
		h = 25 * sim.Microsecond
	}
	return o.scaled(h)
}

// procsFor resolves the campaign's GOMAXPROCS axis: the pinned -procs
// value, or {1, min(8, NumCPU)} — the serial baseline plus the widest
// point the acceptance grid asks for that the machine can provide.
func procsFor(o Options) []int {
	if o.Procs != 0 {
		return []int{o.Procs}
	}
	top := runtime.NumCPU()
	if top > 8 {
		top = 8
	}
	if top <= 1 {
		return []int{1}
	}
	return []int{1, top}
}

// scaleCellLabel names one campaign cell's snapshot files. Every axis
// that changes the run (or its snapshot metadata) is in the name, so a
// resumed cell can only ever pick up its own snapshots.
func scaleCellLabel(hosts int, load float64, shards, procs int, q sim.QueueDiscipline) string {
	return fmt.Sprintf("scale-h%d-l%02d-s%d-p%d-%s", hosts, int(load*100), shards, procs, q)
}

// latestSnapshot returns the highest-index snapshot of one cell label in
// dir, or nil when the cell has none (first run, or checkpointing off).
func latestSnapshot(dir, label string) *checkpoint.Snapshot {
	if dir == "" {
		return nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, label+".ck*.dcpimck"))
	if err != nil || len(paths) == 0 {
		return nil
	}
	sort.Strings(paths)
	f, err := os.Open(paths[len(paths)-1])
	if err != nil {
		return nil
	}
	defer f.Close()
	snap, err := checkpoint.Read(f)
	if err != nil {
		return nil
	}
	return snap
}

// runScaleCell executes one campaign cell, honoring the checkpoint
// options: with a cadence set the run snapshots as it goes, and when the
// cell's own latest snapshot already exists in CheckpointDir — an
// interrupted earlier campaign — the cell resumes from it (verified
// replay, DESIGN.md §14) instead of starting cold. A snapshot that fails
// to resume (stale build, changed grid) is reported and the cell runs
// fresh; the campaign never wedges on leftover files.
func runScaleCell(spec RunSpec, w io.Writer) (RunResult, bool) {
	if spec.Checkpoint == nil {
		return Run(spec), false
	}
	if snap := latestSnapshot(spec.Checkpoint.Dir, spec.Checkpoint.Label); snap != nil {
		res, _, err := Resume(spec, snap)
		if err == nil {
			return res, true
		}
		fmt.Fprintf(w, "  (snapshot %s.ck%04d not resumable — %v — running fresh)\n",
			snap.Meta.Label, snap.Meta.Index, err)
	}
	return Run(spec), false
}

// RunScale is the hyperscale campaign (DESIGN.md §13, §16): it sweeps
// the FatTree over hosts × load × shard count × GOMAXPROCS × queue
// discipline, reporting wall time, event throughput, barrier profile
// (epochs dispatched vs idle-skipped), and the delivered-stream digest
// for every cell. Within one (hosts, load) group the digest must be
// identical across every shard count, processor count and both
// disciplines — the run fails otherwise, making the campaign itself a
// determinism check at scales the unit tests don't reach.
//
// Flags narrow the sweep: -hosts, -shards and -procs pin those axes, and
// quick passes (-scale < 1) keep only the low-load point. CI runs two
// smoke legs: 1024 hosts serially and 8192 hosts at 8 shards with
// -procs 4 — the multi-core figures a single-core dev box cannot
// produce. With -metrics DIR set, the machine-readable rows land in
// DIR/BENCH_scale.json; with -checkpoint/-checkpoint-dir set each cell
// snapshots at the cadence and an interrupted campaign resumes cells
// from their latest snapshots.
func RunScale(o Options, w io.Writer) error {
	hostSet := []int{128, 1024, 8192}
	if o.Hosts != 0 {
		hostSet = []int{o.Hosts}
	}
	loads := []float64{0.3, 0.6}
	if o.Scale > 0 && o.Scale < 1 {
		loads = loads[:1]
	}
	shardsFor := func(hosts int) []int {
		if o.Shards != 0 {
			return []int{o.Shards}
		}
		switch {
		case hosts >= 4096:
			return []int{1, 8}
		case hosts >= 1024:
			return []int{1, 8, 16, 64}
		default:
			return []int{1, 4, 8}
		}
	}
	procsSet := procsFor(o)
	queues := []sim.QueueDiscipline{sim.QueueHeap, sim.QueueLadder}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	var rows []ScaleResult
	fmt.Fprintf(w, "sweep pool: %d workers (GOMAXPROCS %d); procs axis %v\n",
		o.EffectiveWorkers(), prevProcs, procsSet)
	fmt.Fprintf(w, "%6s %5s %7s %6s %7s %10s %9s %12s %7s %8s  %s\n",
		"hosts", "load", "shards", "procs", "queue", "wall_ms", "events", "events/s", "flows", "skipped", "digest")
	for _, hosts := range hostSet {
		tp := fatTreeFor(hosts)
		horizon := scaleHorizon(o, hosts)
		for _, load := range loads {
			tr := workload.AllToAllConfig{
				Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: load,
				Dist: workload.WebSearch(), Horizon: horizon, Seed: o.Seed,
			}.Generate()
			var groupDigest uint64
			haveDigest := false
			for _, shards := range shardsFor(hosts) {
				for _, q := range queues {
					for _, procs := range procsSet {
						runtime.GOMAXPROCS(procs)
						spec := RunSpec{
							Protocol: DCPIM, Topo: tp, Trace: tr,
							Horizon: horizon + horizon/2, Seed: o.Seed + 7,
							Shards: shards, Queue: q, Digest: true,
						}
						if o.CheckpointEvery > 0 {
							spec.Checkpoint = &CheckpointSpec{
								Every: o.CheckpointEvery, Dir: o.CheckpointDir,
								Label: scaleCellLabel(hosts, load, shards, procs, q), Journal: true,
							}
						}
						elapsed := WallTimer()
						res, resumed := runScaleCell(spec, w)
						wall := elapsed()
						runtime.GOMAXPROCS(prevProcs)
						if !haveDigest {
							groupDigest, haveDigest = res.Digest, true
						} else if res.Digest != groupDigest {
							return fmt.Errorf("scale: hosts=%d load=%.1f shards=%d procs=%d queue=%s digest %#016x diverges from group %#016x",
								hosts, load, shards, procs, q, res.Digest, groupDigest)
						}
						var dispatched, skipped, epochs uint64
						for _, s := range res.ShardStats {
							dispatched += s.Dispatched
							skipped += s.Skipped
							if n := s.Dispatched + s.Skipped; n > epochs {
								epochs = n
							}
						}
						var skippedPct float64
						if dispatched+skipped > 0 {
							skippedPct = 100 * float64(skipped) / float64(dispatched+skipped)
						}
						row := ScaleResult{
							Hosts: hosts, Load: load, Shards: shards, Procs: procs, Queue: q.String(),
							WallMS:       float64(wall.Microseconds()) / 1000,
							Events:       res.Events,
							EventsPerSec: float64(res.Events) / wall.Seconds(),
							Flows:        res.Started,
							Completed:    res.Col.Completed(),
							Epochs:       epochs,
							SkippedPct:   skippedPct,
							Resumed:      resumed,
							Digest:       fmt.Sprintf("%#016x", res.Digest),
						}
						rows = append(rows, row)
						mark := ""
						if resumed {
							mark = " (resumed)"
						}
						fmt.Fprintf(w, "%6d %5.1f %7d %6d %7s %10.1f %9d %12.0f %7d %7.1f%%  %s%s\n",
							hosts, load, shards, procs, q, row.WallMS, row.Events,
							row.EventsPerSec, row.Flows, row.SkippedPct, row.Digest, mark)
					}
				}
			}
		}
	}
	printScaleSpeedups(w, rows)
	if o.MetricsDir != "" {
		buf, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		path := filepath.Join(o.MetricsDir, "BENCH_scale.json")
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d rows)\n", path, len(rows))
	}
	return nil
}

// printScaleSpeedups condenses the campaign into the figure the grid is
// for: per (hosts, load), best parallel events/sec over the serial
// (shards=1, procs=1, heap) baseline. Groups without both a baseline and
// a parallel cell (pinned axes) are skipped.
func printScaleSpeedups(w io.Writer, rows []ScaleResult) {
	type key struct {
		hosts int
		load  float64
	}
	base := map[key]float64{}
	best := map[key]ScaleResult{}
	seen := map[key]bool{}
	var order []key
	for _, r := range rows {
		k := key{r.Hosts, r.Load}
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
		if r.Shards == 1 && r.Procs == 1 && r.Queue == "heap" {
			base[k] = r.EventsPerSec
		}
		if r.Shards > 1 && r.EventsPerSec > best[k].EventsPerSec {
			best[k] = r
		}
	}
	printed := false
	for _, k := range order {
		b, okB := base[k]
		p, okP := best[k]
		if !okB || !okP || b <= 0 {
			continue
		}
		if !printed {
			fmt.Fprintf(w, "speedup vs serial (shards=1, procs=1, heap):\n")
			printed = true
		}
		fmt.Fprintf(w, "  %5d hosts load %.1f: %.2fx at shards=%d procs=%d %s (%.0f vs %.0f events/s)\n",
			k.hosts, k.load, p.EventsPerSec/b, p.Shards, p.Procs, p.Queue, p.EventsPerSec, b)
	}
}
