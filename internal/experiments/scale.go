package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dcpim/internal/sim"
	"dcpim/internal/workload"
)

// ScaleResult is one cell of the hyperscale campaign, serialized into
// BENCH_scale.json so CI can archive the scaling trajectory per commit.
type ScaleResult struct {
	Hosts        int     `json:"hosts"`
	Load         float64 `json:"load"`
	Shards       int     `json:"shards"`
	Queue        string  `json:"queue"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Flows        int64   `json:"flows"`
	Completed    int64   `json:"completed"`
	Epochs       uint64  `json:"epochs"`
	SkippedPct   float64 `json:"skipped_pct"`
	Digest       string  `json:"digest"`
}

// RunScale is the hyperscale campaign (DESIGN.md §13): it sweeps the
// FatTree over hosts × load × shard count × queue discipline, reporting
// wall time, event throughput, barrier profile (epochs dispatched vs
// idle-skipped), and the delivered-stream digest for every cell. Within
// one (hosts, load) group the digest must be identical across every
// shard count and both disciplines — the run fails otherwise, making the
// campaign itself a determinism check at scales the unit tests don't
// reach.
//
// Flags narrow the sweep: -hosts and -shards pin those axes, and quick
// passes (-scale < 1) keep only the low-load point — which is what the
// CI smoke job runs (1024 hosts, 8 shards, both disciplines). With
// -metrics DIR set, the machine-readable rows land in DIR/BENCH_scale.json.
func RunScale(o Options, w io.Writer) error {
	hostSet := []int{128, 1024}
	if o.Hosts != 0 {
		hostSet = []int{o.Hosts}
	}
	loads := []float64{0.3, 0.6}
	if o.Scale > 0 && o.Scale < 1 {
		loads = loads[:1]
	}
	shardsFor := func(hosts int) []int {
		if o.Shards != 0 {
			return []int{o.Shards}
		}
		if hosts >= 1024 {
			return []int{1, 8, 16, 64}
		}
		return []int{1, 4, 8}
	}
	queues := []sim.QueueDiscipline{sim.QueueHeap, sim.QueueLadder}

	horizon := o.scaled(100 * sim.Microsecond)
	var rows []ScaleResult
	fmt.Fprintf(w, "%6s %5s %7s %7s %10s %9s %12s %7s %8s  %s\n",
		"hosts", "load", "shards", "queue", "wall_ms", "events", "events/s", "flows", "skipped", "digest")
	for _, hosts := range hostSet {
		tp := fatTreeFor(hosts)
		for _, load := range loads {
			tr := workload.AllToAllConfig{
				Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: load,
				Dist: workload.WebSearch(), Horizon: horizon, Seed: o.Seed,
			}.Generate()
			var groupDigest uint64
			haveDigest := false
			for _, shards := range shardsFor(hosts) {
				for _, q := range queues {
					elapsed := WallTimer()
					res := Run(RunSpec{
						Protocol: DCPIM, Topo: tp, Trace: tr,
						Horizon: horizon + horizon/2, Seed: o.Seed + 7,
						Shards: shards, Queue: q, Digest: true,
					})
					wall := elapsed()
					if !haveDigest {
						groupDigest, haveDigest = res.Digest, true
					} else if res.Digest != groupDigest {
						return fmt.Errorf("scale: hosts=%d load=%.1f shards=%d queue=%s digest %#016x diverges from group %#016x",
							hosts, load, shards, q, res.Digest, groupDigest)
					}
					var dispatched, skipped, epochs uint64
					for _, s := range res.ShardStats {
						dispatched += s.Dispatched
						skipped += s.Skipped
						if n := s.Dispatched + s.Skipped; n > epochs {
							epochs = n
						}
					}
					var skippedPct float64
					if dispatched+skipped > 0 {
						skippedPct = 100 * float64(skipped) / float64(dispatched+skipped)
					}
					row := ScaleResult{
						Hosts: hosts, Load: load, Shards: shards, Queue: q.String(),
						WallMS:       float64(wall.Microseconds()) / 1000,
						Events:       res.Events,
						EventsPerSec: float64(res.Events) / wall.Seconds(),
						Flows:        res.Started,
						Completed:    res.Col.Completed(),
						Epochs:       epochs,
						SkippedPct:   skippedPct,
						Digest:       fmt.Sprintf("%#016x", res.Digest),
					}
					rows = append(rows, row)
					fmt.Fprintf(w, "%6d %5.1f %7d %7s %10.1f %9d %12.0f %7d %7.1f%%  %s\n",
						hosts, load, shards, q, row.WallMS, row.Events,
						row.EventsPerSec, row.Flows, row.SkippedPct, row.Digest)
				}
			}
		}
	}
	if o.MetricsDir != "" {
		buf, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		path := filepath.Join(o.MetricsDir, "BENCH_scale.json")
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d rows)\n", path, len(rows))
	}
	return nil
}
