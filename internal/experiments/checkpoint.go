package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"dcpim/internal/checkpoint"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// Checkpoint/restore orchestration (DESIGN.md §14). Engines hold Go
// closures, so a snapshot cannot be deserialized back into a live run;
// instead it is a complete canonical assertion of simulation state, and
// Resume is a verified replay: rebuild the run from its spec, advance to
// the snapshot time, prove the re-captured state byte-identical to the
// snapshot, then continue. That makes every checkpoint double as a
// correctness oracle, and makes two builds' snapshot streams bisectable
// to the first diverging event (Bisect).

// CheckpointSpec asks Run for periodic full-state snapshots.
type CheckpointSpec struct {
	// Every is the snapshot cadence in simulated time (must be > 0).
	// Snapshots land at Every, 2·Every, … up to the horizon.
	Every sim.Duration
	// Dir, when non-empty, receives one <label>.ck<index>.dcpimck file
	// per snapshot.
	Dir string
	// Label names the snapshot files (sanitized like metrics labels);
	// empty defaults to "<protocol>-seed<seed>".
	Label string
	// Journal additionally records the (time, seq) key of every executed
	// event, window by window, into each snapshot — the data Bisect uses
	// to name the first diverging event. Costs one append per event.
	Journal bool
}

// label resolves the snapshot-file stem.
func (c *CheckpointSpec) label(spec RunSpec) string {
	l := c.Label
	if l == "" {
		l = fmt.Sprintf("%s-seed%d", spec.Protocol, spec.Seed)
	}
	return sanitizeLabel(l)
}

// RunCheckpointed executes the run in cadence-sized windows, capturing a
// snapshot at each boundary. The event stream is identical to Run's —
// windows only bound how far engines advance between captures, and
// capture itself is pure reads — so the RunResult is byte-identical to
// an uncheckpointed run of the same spec.
func RunCheckpointed(spec RunSpec) (RunResult, []*checkpoint.Snapshot) {
	ck := spec.Checkpoint
	if ck == nil || ck.Every <= 0 {
		panic("experiments: RunCheckpointed requires spec.Checkpoint with Every > 0")
	}
	rs := newRunState(spec)
	defer rs.close()
	horizon := sim.Time(spec.Horizon)
	var snaps []*checkpoint.Snapshot
	idx := 0
	for t := sim.Time(0).Add(ck.Every); t <= horizon; t = t.Add(ck.Every) {
		rs.runTo(t)
		snap := rs.capture(t, idx)
		snaps = append(snaps, snap)
		writeSnapshot(ck, snap)
		idx++
	}
	rs.runTo(horizon)
	return rs.result(), snaps
}

// Resume is the verified-replay restore: it checks the snapshot is
// compatible with spec (typed CompatError/VersionError otherwise),
// rebuilds the run, replays to the snapshot time with the same window
// schedule RunCheckpointed used, proves the re-captured state
// byte-identical to the snapshot (DivergenceError otherwise), and
// continues to the horizon. It returns the completed result and the
// snapshots taken after the resume point — byte-identical to the ones
// the uninterrupted run would have produced.
func Resume(spec RunSpec, snap *checkpoint.Snapshot) (RunResult, []*checkpoint.Snapshot, error) {
	ck := spec.Checkpoint
	if ck == nil || ck.Every <= 0 {
		return RunResult{}, nil, &checkpoint.CompatError{
			Field: "checkpoint cadence", Got: "none", Want: "spec.Checkpoint with Every > 0"}
	}
	if snap.Meta.Version != checkpoint.Version {
		return RunResult{}, nil, &checkpoint.VersionError{Got: snap.Meta.Version, Want: checkpoint.Version}
	}
	if err := checkCompat(spec, snap.Meta); err != nil {
		return RunResult{}, nil, err
	}
	rs := newRunState(spec)
	defer rs.close()
	horizon := sim.Time(spec.Horizon)
	at := sim.Time(snap.Meta.TimePs)
	var replayed *checkpoint.Snapshot
	idx := 0
	for t := sim.Time(0).Add(ck.Every); t <= at; t = t.Add(ck.Every) {
		rs.runTo(t)
		replayed = rs.capture(t, idx)
		idx++
	}
	if replayed == nil || replayed.Meta.TimePs != snap.Meta.TimePs {
		return RunResult{}, nil, &checkpoint.CompatError{
			Field: "snapshot time",
			Got:   fmt.Sprintf("%d ps", snap.Meta.TimePs),
			Want:  fmt.Sprintf("a positive multiple of cadence %d ps", int64(ck.Every)),
		}
	}
	if err := checkpoint.Compare(replayed, snap); err != nil {
		return RunResult{}, nil, fmt.Errorf("experiments: resume replay does not reproduce snapshot %d: %w",
			snap.Meta.Index, err)
	}
	var post []*checkpoint.Snapshot
	for t := at.Add(ck.Every); t <= horizon; t = t.Add(ck.Every) {
		rs.runTo(t)
		s := rs.capture(t, idx)
		post = append(post, s)
		writeSnapshot(ck, s)
		idx++
	}
	rs.runTo(horizon)
	return rs.result(), post, nil
}

// checkCompat rejects snapshots that belong to a different run than
// spec describes. Field order is most-specific-message first.
func checkCompat(spec RunSpec, m checkpoint.Meta) error {
	n := spec.Shards
	if n < 1 {
		n = 1
	}
	q := sim.PickQueue(spec.Queue, expectedPending(spec.Topo.NumHosts, n))
	for _, c := range []struct{ field, got, want string }{
		{"protocol", m.Protocol, spec.Protocol},
		{"seed", fmt.Sprint(m.Seed), fmt.Sprint(spec.Seed)},
		{"hosts", fmt.Sprint(m.Hosts), fmt.Sprint(spec.Topo.NumHosts)},
		{"topology hash", fmt.Sprintf("%#016x", m.TopoHash), fmt.Sprintf("%#016x", topoHash(spec.Topo))},
		{"spec hash", fmt.Sprintf("%#016x", m.SpecHash), fmt.Sprintf("%#016x", specHash(spec))},
		{"shards", fmt.Sprint(m.Shards), fmt.Sprint(n)},
		{"queue discipline", m.Queue, q.String()},
		{"horizon", fmt.Sprintf("%d ps", m.HorizonPs), fmt.Sprintf("%d ps", int64(spec.Horizon))},
		{"cadence", fmt.Sprintf("%d ps", m.EveryPs), fmt.Sprintf("%d ps", int64(spec.Checkpoint.Every))},
	} {
		if c.got != c.want {
			return &checkpoint.CompatError{Field: c.field, Got: c.got, Want: c.want}
		}
	}
	return nil
}

// capture serializes the complete simulation state at time at. Pure
// reads — engines, fabric, collector and sampler are only walked — so a
// capturing run stays byte-identical to a non-capturing one. Section
// order is fixed: engines, group, fabric, stats, digest, metrics, then
// per-engine journals when enabled.
func (rs *runState) capture(at sim.Time, idx int) *checkpoint.Snapshot {
	ck := rs.spec.Checkpoint
	snap := &checkpoint.Snapshot{Meta: checkpoint.Meta{
		Version:   checkpoint.Version,
		Label:     ck.label(rs.spec),
		Protocol:  rs.spec.Protocol,
		Seed:      rs.spec.Seed,
		Hosts:     rs.spec.Topo.NumHosts,
		Shards:    len(rs.engines),
		Queue:     rs.q.String(),
		TopoHash:  topoHash(rs.spec.Topo),
		SpecHash:  specHash(rs.spec),
		HorizonPs: int64(rs.spec.Horizon),
		TimePs:    int64(at),
		Index:     idx,
		EveryPs:   int64(ck.Every),
	}}
	for i, eng := range rs.engines {
		var e checkpoint.Encoder
		encodeEngineState(&e, eng.CaptureState())
		snap.AddSection(fmt.Sprintf("engine/%d", i), e.Data())
	}
	var ge checkpoint.Encoder
	gs := rs.grp.CaptureState()
	ge.U64(gs.Epochs)
	ge.U32(uint32(len(gs.Dispatched)))
	for _, v := range gs.Dispatched {
		ge.U64(v)
	}
	ge.U32(uint32(len(gs.Skipped)))
	for _, v := range gs.Skipped {
		ge.U64(v)
	}
	snap.AddSection("group", ge.Data())
	var fe checkpoint.Encoder
	rs.fab.CaptureState(&fe)
	snap.AddSection("fabric", fe.Data())
	var se checkpoint.Encoder
	rs.col.CaptureState(&se)
	snap.AddSection("stats", se.Data())
	var de checkpoint.Encoder
	de.U32(uint32(len(rs.hostDigests)))
	for _, d := range rs.hostDigests {
		de.U64(d)
	}
	snap.AddSection("digest", de.Data())
	var me checkpoint.Encoder
	rs.smp.CaptureState(&me)
	snap.AddSection("metrics", me.Data())
	if ck.Journal {
		for i, eng := range rs.engines {
			var e checkpoint.Encoder
			encodeJournal(&e, eng.TakeJournal())
			snap.AddSection(fmt.Sprintf("journal/%d", i), e.Data())
		}
	}
	return snap
}

func encodeEngineState(e *checkpoint.Encoder, st sim.EngineState) {
	e.I64(int64(st.Now))
	e.U64(st.Seq)
	e.U64(st.Events)
	e.U64(st.Draws)
	e.U8(uint8(st.Queue))
	e.U32(uint32(len(st.Pending)))
	for _, rec := range st.Pending {
		e.I64(int64(rec.At))
		e.U64(rec.Seq)
	}
}

func encodeJournal(e *checkpoint.Encoder, j []sim.EventRecord) {
	e.U32(uint32(len(j)))
	for _, rec := range j {
		e.I64(int64(rec.At))
		e.U64(rec.Seq)
	}
}

// decodeJournal parses a journal section; nil on malformed data (journal
// sections are advisory bisection data, not load-bearing state).
func decodeJournal(b []byte) []sim.EventRecord {
	d := checkpoint.NewDecoder(b)
	n := int(d.U32())
	if d.Err() != nil || n > d.Remaining()/16 {
		return nil
	}
	out := make([]sim.EventRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := sim.EventRecord{At: sim.Time(d.I64()), Seq: d.U64()}
		if d.Err() != nil {
			return nil
		}
		out = append(out, rec)
	}
	return out
}

// writeSnapshot emits one snapshot file under ck.Dir (no-op when unset).
// File-system failures panic, matching emitMetrics: the directory is
// caller-provided configuration.
func writeSnapshot(ck *CheckpointSpec, snap *checkpoint.Snapshot) {
	if ck.Dir == "" {
		return
	}
	path := filepath.Join(ck.Dir, fmt.Sprintf("%s.ck%04d.dcpimck", snap.Meta.Label, snap.Meta.Index))
	f, err := os.Create(path)
	if err != nil {
		panic(fmt.Sprintf("experiments: writing checkpoint: %v", err))
	}
	if err := snap.Checkpoint(f); err != nil {
		f.Close()
		panic(fmt.Sprintf("experiments: writing checkpoint: %v", err))
	}
	if err := f.Close(); err != nil {
		panic(fmt.Sprintf("experiments: writing checkpoint: %v", err))
	}
}

// topoHash fingerprints the topology shape a snapshot was taken on:
// name, sizes, rates, delays and per-switch port counts.
func topoHash(t *topo.Topology) uint64 {
	h := checkpoint.FoldBytes(checkpoint.FoldInit, []byte(t.Name))
	h = checkpoint.Fold(h, uint64(t.NumHosts))
	h = checkpoint.Fold(h, math.Float64bits(t.HostRate))
	h = checkpoint.Fold(h, uint64(t.HostDelay))
	h = checkpoint.Fold(h, uint64(t.SwitchDelay))
	h = checkpoint.Fold(h, uint64(len(t.Switches)))
	for _, sw := range t.Switches {
		h = checkpoint.Fold(h, uint64(len(sw.Ports)))
	}
	return h
}

// specHash fingerprints everything else that determines the event
// stream: protocol, seed, horizon, bin width, every trace flow, and the
// fault schedule. Two specs with equal topo- and spec-hashes replay
// identically, which is what lets Resume trust a snapshot.
func specHash(spec RunSpec) uint64 {
	h := checkpoint.FoldBytes(checkpoint.FoldInit, []byte(spec.Protocol))
	h = checkpoint.Fold(h, uint64(spec.Seed))
	h = checkpoint.Fold(h, uint64(spec.Horizon))
	h = checkpoint.Fold(h, uint64(spec.BinWidth))
	h = checkpoint.Fold(h, uint64(len(spec.Trace.Flows)))
	for _, fl := range spec.Trace.Flows {
		h = checkpoint.Fold(h, fl.ID)
		h = checkpoint.Fold(h, uint64(uint32(fl.Src))<<32|uint64(uint32(fl.Dst)))
		h = checkpoint.Fold(h, uint64(fl.Size))
		h = checkpoint.Fold(h, uint64(fl.Arrival))
	}
	return checkpoint.Fold(h, spec.Faults.Fingerprint())
}

// EventDivergence names the first executed event on which two journaled
// runs disagree.
type EventDivergence struct {
	Engine int // engine (shard) whose journal diverges
	Index  int // position within the diverging window's journal
	RefAt  sim.Time
	GotAt  sim.Time
	RefSeq uint64
	GotSeq uint64
	// RefMissing/GotMissing mark a one-sided event: that side's journal
	// ended before the other's at Index.
	RefMissing, GotMissing bool
}

// BisectReport localizes the first divergence between two snapshot
// streams of the same spec (typically two builds).
type BisectReport struct {
	FirstBad    int      // index of the first diverging snapshot
	WindowStart sim.Time // last agreeing snapshot time (0 = run start)
	WindowEnd   sim.Time // time of the first diverging snapshot
	Section     string   // first diverging section ("" = snapshot shape)
	Detail      string
	// Event is the first diverging executed event, when both snapshot
	// streams carry journals; nil when they don't or when event keys
	// agree (a same-events, different-state build difference).
	Event *EventDivergence
}

// Bisect binary-searches two snapshot streams for the first diverging
// snapshot, then scans that snapshot's journals for the first diverging
// event. Determinism makes divergence monotone — once state differs it
// stays different — which is what licenses the binary search.
func Bisect(ref, got []*checkpoint.Snapshot) (BisectReport, error) {
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	if n == 0 {
		return BisectReport{}, errors.New("experiments: bisect needs at least one snapshot on each side")
	}
	if checkpoint.Compare(ref[n-1], got[n-1]) == nil {
		return BisectReport{}, errors.New("experiments: snapshot streams agree at every common checkpoint — nothing to bisect")
	}
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if checkpoint.Compare(ref[mid], got[mid]) != nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	rep := BisectReport{FirstBad: lo, WindowEnd: sim.Time(ref[lo].Meta.TimePs)}
	if lo > 0 {
		rep.WindowStart = sim.Time(ref[lo-1].Meta.TimePs)
	}
	var de *checkpoint.DivergenceError
	if errors.As(checkpoint.Compare(ref[lo], got[lo]), &de) {
		rep.Section, rep.Detail = de.Section, de.Detail
	}
	rep.Event = firstEventDivergence(ref[lo], got[lo])
	return rep, nil
}

// firstEventDivergence walks the per-engine journal sections of the
// first diverging snapshot pair and returns the earliest event-key
// mismatch, or nil when journals are absent or agree.
func firstEventDivergence(a, b *checkpoint.Snapshot) *EventDivergence {
	for e := 0; ; e++ {
		name := fmt.Sprintf("journal/%d", e)
		ra, oka := a.Section(name)
		rb, okb := b.Section(name)
		if !oka || !okb {
			return nil
		}
		ja, jb := decodeJournal(ra), decodeJournal(rb)
		limit := len(ja)
		if len(jb) < limit {
			limit = len(jb)
		}
		for i := 0; i < limit; i++ {
			if ja[i] != jb[i] {
				return &EventDivergence{Engine: e, Index: i,
					RefAt: ja[i].At, GotAt: jb[i].At, RefSeq: ja[i].Seq, GotSeq: jb[i].Seq}
			}
		}
		if len(ja) != len(jb) {
			ev := &EventDivergence{Engine: e, Index: limit}
			if limit < len(ja) {
				ev.RefAt, ev.RefSeq, ev.GotMissing = ja[limit].At, ja[limit].Seq, true
			} else {
				ev.GotAt, ev.GotSeq, ev.RefMissing = jb[limit].At, jb[limit].Seq, true
			}
			return ev
		}
	}
}

// ckptSpec is the canonical checkpoint-experiment run: dcPIM on a
// FatTree sized by hosts, IMC10 all-to-all at load 0.5, snapshots with
// journals every `every`. ResumeFile reconstructs this spec from a
// snapshot's meta alone, so every parameter must derive from the
// arguments deterministically.
func ckptSpec(seed int64, hosts int, horizon, every sim.Duration, shards int, q sim.QueueDiscipline, dir string) RunSpec {
	tp := fatTreeFor(hosts)
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.5,
		Dist: workload.IMC10(), Horizon: horizon * 2 / 3, Seed: seed,
	}.Generate()
	return RunSpec{
		Protocol: DCPIM, Topo: tp, Trace: tr,
		Horizon: horizon, Seed: seed, Shards: shards, Queue: q,
		Digest: true,
		Checkpoint: &CheckpointSpec{
			Every: every, Dir: dir, Journal: true,
			Label: fmt.Sprintf("ckpt-%s-seed%d", tp.Name, seed),
		},
	}
}

// ckptSpecFromMeta rebuilds the canonical run a ckpt-experiment snapshot
// came from. Resume's spec-hash check then proves the reconstruction
// exact (snapshots from other experiments fail it with a CompatError).
func ckptSpecFromMeta(o Options, m checkpoint.Meta) RunSpec {
	var q sim.QueueDiscipline
	switch m.Queue {
	case "heap":
		q = sim.QueueHeap
	case "ladder":
		q = sim.QueueLadder
	}
	return ckptSpec(m.Seed, m.Hosts, sim.Duration(m.HorizonPs), sim.Duration(m.EveryPs),
		m.Shards, q, o.CheckpointDir)
}

// RunCkpt is the checkpoint/restore acceptance experiment: run the
// canonical spec with periodic snapshots, resume from the middle one,
// and require the resumed run — digest, event count, and every
// post-resume snapshot — to be byte-identical to the uninterrupted run.
func RunCkpt(o Options, w io.Writer) error {
	horizon := o.scaled(600 * sim.Microsecond)
	every := o.CheckpointEvery
	if every <= 0 {
		every = horizon / 4
	}
	if every <= 0 {
		every = sim.Microsecond
	}
	spec := ckptSpec(o.Seed, o.Hosts, horizon, every, o.Shards, o.Queue, o.CheckpointDir)
	fmt.Fprintf(w, "checkpoint run: %s on %s, %d flows, horizon %v, snapshot every %v\n",
		spec.Protocol, spec.Topo.Name, len(spec.Trace.Flows), sim.Time(0).Add(horizon), every)
	res, snaps := RunCheckpointed(spec)
	fmt.Fprintf(w, "uninterrupted: digest=%#016x events=%d snapshots=%d\n", res.Digest, res.Events, len(snaps))
	if len(snaps) == 0 {
		return fmt.Errorf("no snapshots taken (horizon %v, cadence %v)", sim.Time(0).Add(horizon), every)
	}
	mid := snaps[len(snaps)/2]
	res2, post, err := Resume(ckptSpec(o.Seed, o.Hosts, horizon, every, o.Shards, o.Queue, ""), mid)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "resumed from snapshot %d (t=%v): replay verified, digest=%#016x events=%d\n",
		mid.Meta.Index, sim.Time(mid.Meta.TimePs), res2.Digest, res2.Events)
	if res2.Digest != res.Digest {
		return fmt.Errorf("resumed digest %#016x != uninterrupted %#016x", res2.Digest, res.Digest)
	}
	if res2.Events != res.Events {
		return fmt.Errorf("resumed event count %d != uninterrupted %d", res2.Events, res.Events)
	}
	want := snaps[len(snaps)/2+1:]
	if len(post) != len(want) {
		return fmt.Errorf("resumed run took %d post-resume snapshots, uninterrupted took %d", len(post), len(want))
	}
	for i := range post {
		if err := checkpoint.Compare(want[i], post[i]); err != nil {
			return fmt.Errorf("post-resume snapshot %d: %w", want[i].Meta.Index, err)
		}
	}
	fmt.Fprintf(w, "resume equivalence: digest, %d events and %d post-resume snapshots byte-identical\n",
		res.Events, len(post))
	return nil
}

// ResumeFile loads one ckpt-experiment snapshot file and resumes it:
// verified replay to the snapshot time, then on to the horizon. The run
// spec is rebuilt from the snapshot's own metadata; o supplies only
// output settings (CheckpointDir for post-resume snapshot files).
func ResumeFile(o Options, path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	snap, err := checkpoint.Read(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	spec := ckptSpecFromMeta(o, snap.Meta)
	res, post, err := Resume(spec, snap)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "resumed %s from t=%v (snapshot %d of label %s)\n",
		filepath.Base(path), sim.Time(snap.Meta.TimePs), snap.Meta.Index, snap.Meta.Label)
	fmt.Fprintf(w, "replay verified byte-identical; ran to horizon %v\n", res.End)
	fmt.Fprintf(w, "digest=%#016x events=%d post-resume snapshots=%d\n", res.Digest, res.Events, len(post))
	return nil
}

// BisectDirs reads the snapshot streams two runs wrote into dirA and
// dirB (same spec, typically different builds) and localizes their first
// divergence to a snapshot window and, when journals are present, to a
// single executed event.
func BisectDirs(dirA, dirB string, w io.Writer) error {
	ref, err := readSnapshotDir(dirA)
	if err != nil {
		return err
	}
	got, err := readSnapshotDir(dirB)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bisecting %d vs %d snapshots\n", len(ref), len(got))
	rep, err := Bisect(ref, got)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "first diverging snapshot: index %d, window (%v, %v]\n",
		rep.FirstBad, rep.WindowStart, rep.WindowEnd)
	if rep.Section != "" {
		fmt.Fprintf(w, "first diverging section: %s (%s)\n", rep.Section, rep.Detail)
	} else if rep.Detail != "" {
		fmt.Fprintf(w, "snapshots diverge in shape: %s\n", rep.Detail)
	}
	switch ev := rep.Event; {
	case ev == nil:
		fmt.Fprintln(w, "no event-key divergence (journals absent or identical); the section above localizes the state difference")
	case ev.GotMissing:
		fmt.Fprintf(w, "first diverging event: engine %d event %d — %s has (t=%v seq=%#x), %s has none\n",
			ev.Engine, ev.Index, dirA, ev.RefAt, ev.RefSeq, dirB)
	case ev.RefMissing:
		fmt.Fprintf(w, "first diverging event: engine %d event %d — %s has (t=%v seq=%#x), %s has none\n",
			ev.Engine, ev.Index, dirB, ev.GotAt, ev.GotSeq, dirA)
	default:
		fmt.Fprintf(w, "first diverging event: engine %d event %d — (t=%v seq=%#x) vs (t=%v seq=%#x)\n",
			ev.Engine, ev.Index, ev.RefAt, ev.RefSeq, ev.GotAt, ev.GotSeq)
	}
	return nil
}

// readSnapshotDir loads every *.dcpimck file in dir, ordered by snapshot
// index.
func readSnapshotDir(dir string) ([]*checkpoint.Snapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.dcpimck"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("experiments: no *.dcpimck snapshots in %s", dir)
	}
	sort.Strings(paths)
	snaps := make([]*checkpoint.Snapshot, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		s, err := checkpoint.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		snaps = append(snaps, s)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Meta.Index < snaps[j].Meta.Index })
	return snaps, nil
}
