package analysis

import (
	"go/ast"
	"go/types"
)

// SimGoroutine forbids ad-hoc concurrency on the simulation path: `go`
// statements, sync.WaitGroup, and host-clock timers (time.Timer,
// time.Ticker). Sharded execution already parallelizes the fabric through
// barrier-synchronized sim.Group workers, and sweeps parallelize through
// experiments.RunMany; any other goroutine racing the event loop breaks
// the byte-identity guarantee in ways -race cannot always see (map
// iteration feeding a digest from two workers is a logic race, not a data
// race). The two sanctioned sites carry //lint:ignore directives in their
// own bodies, so every new spawn point is a finding until justified.
var SimGoroutine = &Analyzer{
	Name: "simgoroutine",
	Doc: "forbid go statements, sync.WaitGroup, and time.Timer/Ticker in " +
		"sim-path packages; concurrency belongs to sim.Group and RunMany",
	Run: runSimGoroutine,
}

func runSimGoroutine(pass *Pass) error {
	if !onSimPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement on the sim path; concurrency belongs to sim.Group / experiments.RunMany")
			case *ast.SelectorExpr:
				tn, ok := pass.TypesInfo.Uses[n.Sel].(*types.TypeName)
				if !ok || tn.Pkg() == nil {
					return true
				}
				switch {
				case tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup":
					pass.Reportf(n.Pos(),
						"sync.WaitGroup on the sim path; use sim.Group's barrier instead of ad-hoc joins")
				case tn.Pkg().Path() == "time" && (tn.Name() == "Timer" || tn.Name() == "Ticker"):
					pass.Reportf(n.Pos(),
						"time.%s is a host-clock timer; schedule sim-time events through sim.Engine", tn.Name())
				}
			}
			return true
		})
	}
	return nil
}
