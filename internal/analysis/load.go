package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"hash/fnv"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// A Package is one type-checked package ready for analysis: the loaded
// equivalent of x/tools' packages.Package, restricted to what the
// analyzers need.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// Target reports whether the package matched the load patterns.
	// Non-target packages are module-internal dependencies, loaded so
	// their analyses can export facts; their own diagnostics are
	// discarded.
	Target bool

	// ModImports lists the package's module-internal imports — the edges
	// facts flow along.
	ModImports []string

	// SrcHash is an FNV-1a hash over the package's source files, the
	// per-package half of the fact cache fingerprint.
	SrcHash uint64
}

// listedPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// pkgSpec is the pre-type-check description of one module-internal
// package: enough to fingerprint it (for the fact cache) without parsing
// it, and to parse + type-check it on demand.
type pkgSpec struct {
	path       string
	dir        string
	target     bool
	files      []string // absolute paths
	src        [][]byte // file contents, read once for hashing and parsing
	modImports []string // imports inside the module, topo edges
	hash       uint64   // FNV-1a over file names and contents
}

// A Module is the loaded view of one Go module: every module-internal
// package in the dependency closure of the matched patterns, in
// topological order (dependencies first), with type-checking deferred
// until Check so cached packages never pay for it. Dependencies outside
// the module (the standard library) are imported from compiler export
// data, never from source.
type Module struct {
	Dir     string
	fset    *token.FileSet
	conf    types.Config
	specs   []*pkgSpec
	byPath  map[string]*pkgSpec
	checked map[string]*Package
}

// LoadModule resolves patterns relative to dir (a directory inside the
// target module) via `go list -export -deps`, reads and hashes the source
// of every module-internal package in the closure, and returns them
// topologically sorted. No parsing or type-checking happens yet.
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// The root module is whichever module the matched packages live in.
	var rootMod string
	for _, p := range listed {
		if !p.DepOnly && p.Module != nil {
			rootMod = p.Module.Path
			break
		}
	}

	exports := make(map[string]string)
	m := &Module{
		Dir:     dir,
		fset:    token.NewFileSet(),
		byPath:  make(map[string]*pkgSpec),
		checked: make(map[string]*Package),
	}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		internal := !p.Standard && p.Module != nil && rootMod != "" && p.Module.Path == rootMod
		if p.Error != nil {
			if !p.DepOnly || internal {
				return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
			}
			continue
		}
		if !internal || p.Name == "" {
			continue
		}
		spec := &pkgSpec{path: p.ImportPath, dir: p.Dir, target: !p.DepOnly}
		h := fnv.New64a()
		for _, name := range p.GoFiles {
			full := filepath.Join(p.Dir, name)
			src, err := os.ReadFile(full)
			if err != nil {
				return nil, fmt.Errorf("reading %s: %w", full, err)
			}
			io.WriteString(h, name)
			h.Write([]byte{0})
			h.Write(src)
			h.Write([]byte{0})
			spec.files = append(spec.files, full)
			spec.src = append(spec.src, src)
		}
		spec.hash = h.Sum64()
		spec.modImports = p.Imports // filtered to module-internal below
		m.byPath[p.ImportPath] = spec
	}

	// Keep only module-internal import edges, then topo-sort
	// (dependencies first, lexicographic among ready packages, so the
	// analysis order — and with it fact and diagnostic production — is
	// deterministic).
	for _, spec := range m.byPath {
		var mod []string
		for _, imp := range spec.modImports {
			if _, ok := m.byPath[imp]; ok {
				mod = append(mod, imp)
			}
		}
		sort.Strings(mod)
		spec.modImports = mod
	}
	m.specs, err = topoSort(m.byPath)
	if err != nil {
		return nil, err
	}

	imp := importer.ForCompiler(m.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	m.conf = types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	return m, nil
}

func topoSort(byPath map[string]*pkgSpec) ([]*pkgSpec, error) {
	indeg := make(map[string]int, len(byPath))
	rdeps := make(map[string][]string, len(byPath))
	for path, spec := range byPath {
		indeg[path] += 0
		for _, imp := range spec.modImports {
			indeg[path]++
			rdeps[imp] = append(rdeps[imp], path)
		}
	}
	var ready []string
	for path, d := range indeg {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	var out []*pkgSpec
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		var woke []string
		for _, rd := range rdeps[path] {
			if indeg[rd]--; indeg[rd] == 0 {
				woke = append(woke, rd)
			}
		}
		sort.Strings(woke)
		ready = append(ready, woke...)
		sort.Strings(ready)
	}
	if len(out) != len(byPath) {
		return nil, fmt.Errorf("import cycle among module packages")
	}
	return out, nil
}

// Check parses and type-checks one package by import path, memoized.
// Test files are host-side code and are not loaded; the determinism
// contracts guard the simulation path, which lives in package GoFiles.
func (m *Module) Check(path string) (*Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	spec, ok := m.byPath[path]
	if !ok {
		return nil, fmt.Errorf("package %s not loaded", path)
	}
	var files []*ast.File
	for i, name := range spec.files {
		f, err := parser.ParseFile(m.fset, name, spec.src[i], parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := m.conf.Check(spec.path, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", spec.path, err)
	}
	pkg := &Package{
		ImportPath: spec.path,
		Dir:        spec.dir,
		Fset:       m.fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
		Target:     spec.target,
		ModImports: spec.modImports,
		SrcHash:    spec.hash,
	}
	m.checked[path] = pkg
	return pkg, nil
}

// Load type-checks the packages matched by patterns plus their
// module-internal dependency closure, in topological order (dependencies
// first). Matched packages have Target set; dependency-only packages
// participate in analysis for their facts but their diagnostics are
// discarded by Run.
func Load(dir string, patterns ...string) ([]*Package, error) {
	m, err := LoadModule(dir, patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(m.specs))
	for _, spec := range m.specs {
		pkg, err := m.Check(spec.path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -e -export -json -deps patterns...` in dir and
// decodes the JSON stream. GOPROXY is forced off: the linter must load
// from local sources and the build cache only, never the network.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
