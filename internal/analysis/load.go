package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// A Package is one type-checked package ready for analysis: the loaded
// equivalent of x/tools' packages.Package, restricted to what the
// analyzers need.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns, resolved relative to
// dir (a directory inside the target module). It shells out to
// `go list -export -deps` so dependencies — including the standard
// library — are imported from compiler export data rather than re-checked
// from source, then parses and type-checks only the matched packages.
// Test files are host-side code and are not loaded; the determinism
// contracts guard the simulation path, which lives in package GoFiles.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, keyed by import path. The gc
	// importer reads these files directly.
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}

// goList runs `go list -e -export -json -deps patterns...` in dir and
// decodes the JSON stream. GOPROXY is forced off: the linter must load
// from local sources and the build cache only, never the network.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
