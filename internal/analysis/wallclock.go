package analysis

import (
	"go/ast"
	"go/types"
)

// Wallclock forbids reading or acting on the host's wall clock inside
// internal/ packages: the simulation has exactly one notion of time
// (sim.Time, advanced by the event engine), and a stray time.Now or
// time.Sleep either breaks determinism or stalls an engine worker.
// Host-side timing (progress reporting in cmd/) is out of scope, and the
// single sanctioned bridge is experiments.WallTimer — an allowlisted
// function, not a file glob, so the exemption cannot grow silently.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep and timer constructors in internal/ " +
		"packages; sim.Time is the only clock (experiments.WallTimer excepted)",
	Run: runWallclock,
}

// wallclockForbidden are the package-level time functions that read or
// wait on the host clock. Types (time.Duration, time.Time) and pure
// conversions remain legal.
var wallclockForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// wallclockAllowed lists the functions whose bodies may touch the wall
// clock: package path → function name. Keep this to exactly the
// experiments.WallTimer bridge.
var wallclockAllowed = map[string]map[string]bool{
	modulePath + "/internal/experiments": {"WallTimer": true},
}

func runWallclock(pass *Pass) error {
	if !hasPathPrefix(pass.Pkg.Path(), modulePath+"/internal") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if allowed := wallclockAllowed[pass.Pkg.Path()]; allowed[fd.Name.Name] && fd.Recv == nil {
					continue
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				if wallclockForbidden[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the host clock inside internal/; use sim.Time (or experiments.WallTimer for host-side reporting)",
						fn.Name())
				}
				return true
			})
		}
	}
	return nil
}
