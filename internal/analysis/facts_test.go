package analysis

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testMarkFact is a minimal fact for the mechanism tests.
type testMarkFact struct {
	Tag string `json:"tag"`
}

func (*testMarkFact) AFact() {}

// factProbe exports a testMarkFact on every package-level function named
// Marked (plus a package fact on every package), and reports a diagnostic
// at every call to a function carrying the fact and in every package one
// of whose imports carries the package fact. Running it over a two-package
// module pins the whole export → topo-order → import chain.
var factProbe = &Analyzer{
	Name:      "factprobe",
	Doc:       "test-only: round-trips facts across packages",
	FactTypes: []Fact{(*testMarkFact)(nil)},
	Run: func(pass *Pass) error {
		pass.ExportPackageFact(&testMarkFact{Tag: "pkg:" + pass.Pkg.Path()})
		if fn, ok := pass.Pkg.Scope().Lookup("Marked").(*types.Func); ok {
			if !pass.ExportObjectFact(fn, &testMarkFact{Tag: "obj:" + pass.Pkg.Path()}) {
				return nil
			}
		}
		for _, imp := range pass.Pkg.Imports() {
			var pf testMarkFact
			if pass.ImportPackageFact(imp.Path(), &pf) {
				pass.Reportf(pass.Files[0].Pos(), "import carries package fact %s", pf.Tag)
			}
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcObject(pass.TypesInfo, call.Fun)
				if fn == nil {
					return true
				}
				var mf testMarkFact
				if pass.ImportObjectFact(fn, &mf) {
					pass.Reportf(call.Pos(), "call to marked function (%s)", mf.Tag)
				}
				return true
			})
		}
		return nil
	},
	Finish: func(fp *FinishPass) error {
		for _, kf := range fp.AllObjectFacts((*testMarkFact)(nil)) {
			var mf testMarkFact
			if !fp.ObjectFact(kf.Object, &mf) {
				return nil
			}
			fp.Report(Diagnostic{
				Message:  "finish sees fact on " + kf.Object,
				Position: Pos{File: "finish", Line: 1, Col: 1}.Position(),
			})
		}
		return nil
	},
}

// writeModule materializes a module in a temp dir; files maps
// module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func factModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod": "module factmod\n\ngo 1.21\n",
		"a/a.go": "package a\n\n// Marked carries the probe's object fact.\nfunc Marked() int { return 1 }\n",
		"b/b.go": "package b\n\nimport \"factmod/a\"\n\n// Use calls across the package boundary.\nfunc Use() int { return a.Marked() }\n",
	})
}

func hasDiag(diags []Diagnostic, substr string) bool {
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

// TestFactFlowAcrossPackages pins the mechanism end to end: package a
// exports an object fact and a package fact; package b — type-checked
// against a's export data, so with different object identities — imports
// both; the Finish pass enumerates them.
func TestFactFlowAcrossPackages(t *testing.T) {
	dir := factModule(t)
	diags, err := RunDir(dir, []*Analyzer{factProbe}, "./b")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"call to marked function (obj:factmod/a)",
		"import carries package fact pkg:factmod/a",
		"finish sees fact on factmod/a#Marked",
	} {
		if !hasDiag(diags, want) {
			t.Errorf("missing diagnostic %q in %v", want, diags)
		}
	}
}

// TestFactCache pins the on-disk cache: a second identical run serves
// every package from disk with identical diagnostics; editing only the
// dependent re-analyzes just it — with the dependency's facts installed
// from the cache, which the cross-package diagnostic proves — and editing
// the dependency invalidates (via the chained fingerprint) its dependents
// too.
func TestFactCache(t *testing.T) {
	dir := factModule(t)
	cache := filepath.Join(t.TempDir(), "factcache")
	opts := Options{CacheDir: cache}
	probe := []*Analyzer{factProbe}

	run := func(label string, wantAnalyzed, wantCached int) *Result {
		t.Helper()
		res, err := RunModule(dir, probe, opts, "./b")
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Stats.Analyzed != wantAnalyzed || res.Stats.Cached != wantCached {
			t.Fatalf("%s: stats = %+v, want analyzed=%d cached=%d",
				label, res.Stats, wantAnalyzed, wantCached)
		}
		if !hasDiag(res.Diags, "call to marked function (obj:factmod/a)") {
			t.Fatalf("%s: cross-package diagnostic missing: %v", label, res.Diags)
		}
		return res
	}

	cold := run("cold run", 2, 0)
	warm := run("warm run", 0, 2)
	if len(cold.Diags) != len(warm.Diags) {
		t.Fatalf("cached diagnostics diverge: cold %v vs warm %v", cold.Diags, warm.Diags)
	}
	for i := range cold.Diags {
		if cold.Diags[i].Message != warm.Diags[i].Message {
			t.Errorf("diag %d diverges: %q vs %q", i, cold.Diags[i].Message, warm.Diags[i].Message)
		}
	}

	// Edit only b: a stays cached, b re-analyzes against a's facts as
	// installed from disk — if installStored dropped them, the run()
	// helper's cross-package diagnostic check fails here.
	bPath := filepath.Join(dir, "b", "b.go")
	bSrc, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, append(bSrc, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	run("b edited", 1, 1)
	run("b cached again", 0, 2)

	// Edit a: its own entry and — through the chained fingerprint — b's
	// must both go stale, even though b's bytes are unchanged.
	aPath := filepath.Join(dir, "a", "a.go")
	aSrc, err := os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, append(aSrc, []byte("\n// edited dep\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	run("a edited", 2, 0)
}

// TestFactCacheSchemaMismatch pins that entries from a different analyzer
// set miss rather than poison the run.
func TestFactCacheSchemaMismatch(t *testing.T) {
	dir := factModule(t)
	cache := filepath.Join(t.TempDir(), "factcache")
	if _, err := RunModule(dir, []*Analyzer{factProbe}, Options{CacheDir: cache}, "./b"); err != nil {
		t.Fatal(err)
	}
	// A different analyzer selection changes the fingerprint: everything
	// re-analyzes instead of hitting the probe's entries.
	res, err := RunModule(dir, []*Analyzer{MapRange}, Options{CacheDir: cache}, "./b")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cached != 0 || res.Stats.Analyzed != 2 {
		t.Fatalf("stats = %+v, want a full re-analysis on analyzer-set change", res.Stats)
	}
}

// TestCkptSkipReasonRequired pins the mandatory-reason rule for the
// //ckpt:skip directive (reported by ckptcomplete itself, in the package
// owning the directive).
func TestCkptSkipReasonRequired(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module factmod\n\ngo 1.21\n",
		"a/a.go": "package a\n\ntype T struct {\n\t//ckpt:skip\n\tX int\n}\n",
	})
	diags, err := RunDir(dir, []*Analyzer{CkptComplete}, "./a")
	if err != nil {
		t.Fatal(err)
	}
	if !hasDiag(diags, "//ckpt:skip directive needs a reason") {
		t.Errorf("reasonless //ckpt:skip not reported: %v", diags)
	}
}
