package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseFixtureSimple(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Fset: fset, Syntax: []*ast.File{f}}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text         string
		name, reason string
		ok           bool
	}{
		{"//lint:ignore maprange commutative sum", "maprange", "commutative sum", true},
		{"//lint:ignore maprange", "maprange", "", true},
		{"//lint:ignore", "ignore", "", true},
		{"//lint:deterministic int sum", "deterministic", "int sum", true},
		{"//lint:deterministic", "deterministic", "", true},
		{"//lint:ignored not a directive", "", "", false},
		{"// plain comment", "", "", false},
		{"//lint:deterministically nope", "", "", false},
	}
	for _, c := range cases {
		name, reason, ok := parseDirective(c.text)
		if name != c.name || reason != c.reason || ok != c.ok {
			t.Errorf("parseDirective(%q) = %q, %q, %v; want %q, %q, %v",
				c.text, name, reason, ok, c.name, c.reason, c.ok)
		}
	}
}

func TestCollectSuppressions(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore wallclock standalone covers the next line
	x := 1
	y := 2 //lint:ignore maprange trailing covers its own line
	_ = x
	_ = y
	//lint:ignore simgoroutine
	_ = 3
}
`
	pkg := parseFixtureSimple(t, src)
	sup, bad := collectSuppressions(pkg)

	if !sup.suppresses("wallclock", token.Position{Filename: "fixture.go", Line: 5}) {
		t.Errorf("standalone directive should cover the following line")
	}
	if !sup.suppresses("maprange", token.Position{Filename: "fixture.go", Line: 6}) {
		t.Errorf("trailing directive should cover its own line")
	}
	if sup.suppresses("wallclock", token.Position{Filename: "fixture.go", Line: 6}) {
		t.Errorf("directive must not leak to unrelated lines")
	}
	// //lint:deterministic suppresses maprange only.
	if sup.suppresses("globalrand", token.Position{Filename: "fixture.go", Line: 5}) {
		t.Errorf("directive must be analyzer-specific")
	}
	if len(bad) != 1 {
		t.Fatalf("want 1 malformed-directive diagnostic, got %d: %v", len(bad), bad)
	}
	if bad[0].Analyzer != "lintdirective" || bad[0].Position.Line != 9 {
		t.Errorf("malformed directive diagnostic = %v; want lintdirective at line 9", bad[0])
	}
	// The reasonless directive must not take effect.
	if sup.suppresses("simgoroutine", token.Position{Filename: "fixture.go", Line: 10}) {
		t.Errorf("directive without a reason must not suppress")
	}
}

func TestDeterministicSuppressesMapRangeOnly(t *testing.T) {
	src := `package p

func f() {
	//lint:deterministic order-insensitive fold
	x := 1
	_ = x
}
`
	pkg := parseFixtureSimple(t, src)
	sup, bad := collectSuppressions(pkg)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	pos := token.Position{Filename: "fixture.go", Line: 5}
	if !sup.suppresses("maprange", pos) {
		t.Errorf("//lint:deterministic should suppress maprange")
	}
	if sup.suppresses("wallclock", pos) {
		t.Errorf("//lint:deterministic must not suppress other analyzers")
	}
}
