package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for range` over maps in digest-path packages. Go
// randomizes map iteration order per run, so any map range whose effects
// reach a digest, counter fold, metrics CSV, or event schedule is a
// nondeterminism bug even when every individual iteration is correct. Two
// shapes stay legal without annotation: a bare `for range m` that never
// binds the key (order cannot matter), and the canonical collect-then-sort
// idiom — a loop body that only appends to slices which are later passed
// to a sort call in the same function. Any other order-insensitive fold
// (e.g. summing into an int) must say so: //lint:deterministic <reason>.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flag map iteration in digest-path packages unless keys are " +
		"collected and sorted, or the site carries //lint:deterministic",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	if !onDigestPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// Every function-like body, innermost-wins, so a range inside a
		// closure is scanned against that closure for the later sort.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rng.Key == nil && rng.Value == nil {
				return true // `for range m` never observes the order
			}
			body := innermostBody(bodies, rng)
			if body != nil && isCollectAndSort(pass.TypesInfo, rng, body) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration order is random and this package feeds the digest path; collect and sort keys first, or annotate //lint:deterministic <reason>")
			return true
		})
	}
	return nil
}

// innermostBody returns the smallest function body containing n.
func innermostBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

// isCollectAndSort recognizes the sanctioned pattern: every statement in
// the range body is `x = append(x, ...)`, and every such x is later (after
// the loop, in the same function body) passed to a sort/slices sorting
// call. Append order into the slice is arbitrary, but the subsequent sort
// erases it.
func isCollectAndSort(info *types.Info, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	var targets []types.Object
	for _, stmt := range rng.Body.List {
		obj := appendTarget(info, stmt)
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	for _, obj := range targets {
		if !sortedAfter(info, fnBody, rng, obj) {
			return false
		}
	}
	return true
}

// appendTarget returns the object appended to if stmt has the exact shape
// `x = append(x, ...)` (or :=), with x an identifier or a selector rooted
// at one; otherwise nil.
func appendTarget(info *types.Info, stmt ast.Stmt) types.Object {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	lhs := rootIdent(assign.Lhs[0])
	first := rootIdent(call.Args[0])
	if lhs == nil || first == nil {
		return nil
	}
	lobj := identObject(info, lhs)
	if lobj == nil || lobj != identObject(info, first) {
		return nil
	}
	return lobj
}

// sortedAfter reports whether obj is mentioned in a sort call that appears
// after the range statement within body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := funcObject(info, call.Fun)
		if fn == nil || fn.Pkg() == nil || !isSortFunc(fn) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of an expression like x,
// x.f.g, or x[i].
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// mentionsObject reports whether expr contains an identifier resolving to obj.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObject(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
