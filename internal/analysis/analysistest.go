package analysis

import (
	"regexp"
	"strconv"
)

// TB is the subset of *testing.T the fixture runner needs; taking an
// interface keeps the testing package out of the non-test build.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRE finds the `want` keyword in fixture comments; quotedRE then
// collects every `"regex"` that follows it, so one comment can expect
// several diagnostics on its line (`// want "a" "b"`). Each quoted
// pattern is a Go string literal, so regex metacharacters needing
// backslashes must be double-escaped.
var (
	wantRE   = regexp.MustCompile(`\bwant\s+(".*)$`)
	quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// RunFixtures loads patterns from the fixture module rooted at dir
// (conventionally testdata/src), applies the analyzer, and checks its
// diagnostics against `// want "regex"` comments in the fixture sources —
// the same golden convention as x/tools' analysistest. Every diagnostic
// must match a want on its line and every want must be matched; directive
// diagnostics (malformed //lint: comments) participate so fixtures can
// assert on them too. Suppression runs first, so a fixture line carrying
// //lint:ignore and no want asserts the directive works.
func RunFixtures(t TB, dir string, a *Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type expectation struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := make(map[suppressionKey][]*expectation)
	for _, pkg := range pkgs {
		// Dependency packages are loaded for their facts only; their own
		// diagnostics are discarded by Run, so their comments carry no
		// expectations. Fixtures wanting diagnostics in several packages
		// pass several patterns.
		if !pkg.Target {
			continue
		}
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					for _, quoted := range quotedRE.FindAllString(m[1], -1) {
						pattern, err := strconv.Unquote(quoted)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v",
								pkg.Fset.Position(c.Pos()), quoted, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v",
								pkg.Fset.Position(c.Pos()), pattern, err)
						}
						pos := pkg.Fset.Position(c.Pos())
						key := suppressionKey{pos.Filename, pos.Line}
						wants[key] = append(wants[key], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := suppressionKey{d.Position.Filename, d.Position.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none",
					key.file, key.line, w.re)
			}
		}
	}
}
