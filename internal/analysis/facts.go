package analysis

// facts.go implements the cross-package fact mechanism (DESIGN.md §17):
// a package's analysis can export typed facts about its objects (or about
// the package as a whole), and analyses of downstream packages — or a
// module-wide Finish pass — import them. The design follows
// golang.org/x/tools/go/analysis facts, adapted to this module's zero-dep
// loader:
//
//   - Facts are keyed by STRINGS, not types.Object identity. The loader
//     type-checks each package against compiler export data, so the same
//     dependency object has a different identity in every importing
//     package; a stable textual key ("pkg#Name", "pkg#T.Method",
//     "pkg#T#field") makes facts identity-free, serializable, and
//     cacheable on disk between runs.
//   - Packages are analyzed in dependency order (load.go topo-sorts), so
//     by the time a package runs, every fact its module-internal imports
//     exported is present — the same guarantee x/tools drivers give.
//   - Analyzers that need a view wider than the import DAG (e.g. "was
//     this field EVER accessed atomically, anywhere?") declare a Finish
//     hook, which runs once after every package and can enumerate all
//     facts. x/tools has no equivalent; our runner owns the whole module,
//     so it can.
//
// Facts must be JSON-serializable pointers to structs and are treated as
// immutable once exported: importing copies the value, but deep state
// (slices, maps) is shared — do not mutate an imported fact.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a datum exported by the analysis of one package for the
// analyses of other packages (or the Finish pass). Implementations must
// be pointers to JSON-serializable structs; AFact is a marker.
type Fact interface{ AFact() }

// Pos is a serializable source position. Facts carry Pos instead of
// token.Pos because fact consumers (Finish hooks, cached runs) may not
// have the exporting package's FileSet — or any FileSet at all.
type Pos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// MakePos converts a resolved token.Position.
func MakePos(p token.Position) Pos {
	return Pos{File: p.Filename, Line: p.Line, Col: p.Column}
}

// Position converts back to a token.Position (offset unknown).
func (p Pos) Position() token.Position {
	return token.Position{Filename: p.File, Line: p.Line, Column: p.Col}
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// StructKey returns the fact key of a named type: "pkgpath#Name".
// Returns "" for universe types (error) and other unkeyable types.
func StructKey(named *types.Named) string {
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "#" + obj.Name()
}

// FieldKey returns the fact key of one field of a named struct type:
// "pkgpath#Type#field". The "#" separator cannot occur in identifiers or
// import paths, so keys never collide; the second "#" distinguishes
// fields from methods ("pkgpath#Type.method").
func FieldKey(named *types.Named, field string) string {
	sk := StructKey(named)
	if sk == "" {
		return ""
	}
	return sk + "#" + field
}

// prettyKey renders an object key for diagnostics: "pkg#T#f" → "pkg.T.f".
func prettyKey(key string) string {
	return strings.ReplaceAll(key, "#", ".")
}

// keyIndex lazily maps types.Objects to their fact keys, one index per
// *types.Package so source-checked and export-data instances of the same
// package each resolve (to identical keys).
type keyIndex map[*types.Package]map[types.Object]string

func (idx keyIndex) keyOf(obj types.Object) (string, bool) {
	if obj == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		obj = o.Origin()
	case *types.Var:
		obj = o.Origin()
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	m, ok := idx[pkg]
	if !ok {
		m = buildKeyIndex(pkg)
		idx[pkg] = m
	}
	k, ok := m[obj]
	return k, ok
}

// buildKeyIndex walks a package scope and keys every package-level
// object, every method of a package-level named type, and every field of
// a package-level named struct type. Function-local types are not keyed:
// facts about them cannot be meaningful outside their package.
func buildKeyIndex(pkg *types.Package) map[types.Object]string {
	m := make(map[types.Object]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		m[obj] = pkg.Path() + "#" + name
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			meth := named.Method(i)
			m[meth] = pkg.Path() + "#" + name + "." + meth.Name()
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				m[f] = pkg.Path() + "#" + name + "#" + f.Name()
			}
		}
	}
	return m
}

// factKey identifies one fact: which analyzer exported it, about which
// object (or package: keys without "#"), of which fact type.
type factKey struct {
	analyzer string
	object   string
	typ      string
}

// storedFact is the serialized form, for the on-disk fact cache.
type storedFact struct {
	Analyzer string          `json:"analyzer"`
	Object   string          `json:"object"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// factStore holds every fact exported during one run, plus the registry
// of concrete fact types (from Analyzer.FactTypes) used to decode cached
// facts back into their Go types.
type factStore struct {
	types map[string]reflect.Type // fact type name → struct type
	m     map[factKey]Fact
	byPkg map[string][]factKey // exporting package → keys, for the cache
}

func newFactStore(analyzers []*Analyzer) (*factStore, error) {
	s := &factStore{
		types: make(map[string]reflect.Type),
		m:     make(map[factKey]Fact),
		byPkg: make(map[string][]factKey),
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
				return nil, fmt.Errorf("analyzer %s: fact type %T must be a pointer to a struct", a.Name, f)
			}
			name := t.Elem().Name()
			if prev, ok := s.types[name]; ok && prev != t.Elem() {
				return nil, fmt.Errorf("fact type name %q registered twice with different types", name)
			}
			s.types[name] = t.Elem()
		}
	}
	return s, nil
}

func factTypeName(f Fact) string { return reflect.TypeOf(f).Elem().Name() }

// put records a fact. Re-exporting the same (analyzer, object, type)
// overwrites: marker facts from several packages coexist naturally, and
// data facts follow the convention that only one package (the declaring
// one) exports them.
func (s *factStore) put(analyzer, exportingPkg, object string, f Fact) {
	k := factKey{analyzer, object, factTypeName(f)}
	if _, dup := s.m[k]; !dup {
		s.byPkg[exportingPkg] = append(s.byPkg[exportingPkg], k)
	}
	s.m[k] = f
}

// get copies the fact for (analyzer, object, type-of-into) into into and
// reports whether one was found.
func (s *factStore) get(analyzer, object string, into Fact) bool {
	f, ok := s.m[factKey{analyzer, object, factTypeName(into)}]
	if !ok {
		return false
	}
	reflect.ValueOf(into).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// A KeyedFact pairs a fact with the key of the object (or package) it
// describes.
type KeyedFact struct {
	Object string
	Fact   Fact
}

// all returns every fact of example's dynamic type exported under
// analyzer, sorted by object key for deterministic iteration. objectOnly
// selects object facts (keys containing "#") vs package facts.
func (s *factStore) all(analyzer string, example Fact, objectOnly bool) []KeyedFact {
	typ := factTypeName(example)
	var out []KeyedFact
	for k, f := range s.m {
		if k.analyzer != analyzer || k.typ != typ {
			continue
		}
		if strings.Contains(k.object, "#") != objectOnly {
			continue
		}
		out = append(out, KeyedFact{Object: k.object, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object < out[j].Object })
	return out
}

// encodePkg serializes every fact exported by one package, for its cache
// entry. Deterministic: sorted by (analyzer, object, type).
func (s *factStore) encodePkg(pkg string) ([]storedFact, error) {
	keys := append([]factKey(nil), s.byPkg[pkg]...)
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		if a.object != b.object {
			return a.object < b.object
		}
		return a.typ < b.typ
	})
	out := make([]storedFact, 0, len(keys))
	for _, k := range keys {
		data, err := json.Marshal(s.m[k])
		if err != nil {
			return nil, fmt.Errorf("marshaling fact %v: %w", k, err)
		}
		out = append(out, storedFact{Analyzer: k.analyzer, Object: k.object, Type: k.typ, Data: data})
	}
	return out, nil
}

// installStored decodes a cache entry's facts into the store, attributed
// to pkg. An unregistered fact type means the cache predates the current
// analyzer set; the caller treats that as a miss.
func (s *factStore) installStored(pkg string, recs []storedFact) error {
	for _, rec := range recs {
		t, ok := s.types[rec.Type]
		if !ok {
			return fmt.Errorf("cached fact type %q is not registered", rec.Type)
		}
		f := reflect.New(t).Interface().(Fact)
		if err := json.Unmarshal(rec.Data, f); err != nil {
			return fmt.Errorf("decoding cached fact %s/%s: %w", rec.Analyzer, rec.Object, err)
		}
		s.put(rec.Analyzer, pkg, rec.Object, f)
	}
	return nil
}
