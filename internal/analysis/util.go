package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// modulePath is the import-path root all path-keyed rules are expressed
// against. Fixture modules under testdata mirror it so the same analyzers
// exercise the same predicates in tests.
const modulePath = "dcpim"

// hasPathPrefix reports whether path is prefix itself or a package below it.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// digestPathPackages are the package subtrees whose iteration order can
// reach golden digests, counters, or CSV/JSON artifacts (DESIGN.md §11).
var digestPathPackages = []string{
	modulePath + "/internal/sim",
	modulePath + "/internal/netsim",
	modulePath + "/internal/core",
	modulePath + "/internal/matching",
	modulePath + "/internal/metrics",
	modulePath + "/internal/experiments",
	modulePath + "/internal/protocols",
}

// onDigestPath reports whether the package's iteration order can feed a
// digest or artifact.
func onDigestPath(pkgPath string) bool {
	for _, p := range digestPathPackages {
		if hasPathPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}

// simPathPackages are the subtrees that execute inside (or orchestrate)
// the event loop, where ad-hoc concurrency would race the engines. The
// sanctioned concurrency sites — sim.Group and experiments.RunMany —
// carry //lint:ignore directives rather than a package exemption, so a
// new `go` statement anywhere near the simulation is a finding by default.
var simPathPackages = append([]string{modulePath + "/internal/packet"}, digestPathPackages...)

// onSimPath reports whether the package runs on the simulation path.
func onSimPath(pkgPath string) bool {
	for _, p := range simPathPackages {
		if hasPathPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}

// funcObject resolves expr to the *types.Func it names, if any: a direct
// identifier or a selector (pkg.F, v.Method).
func funcObject(info *types.Info, expr ast.Expr) *types.Func {
	switch e := expr.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return funcObject(info, e.X)
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isMethod reports whether fn is a method named name whose receiver's
// named type is declared in pkgPath with type name typeName.
func isMethod(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

// callsInto reports whether any call inside expr resolves to the
// package-level function pkgPath.name (e.g. a time.Now() buried in a
// seed expression).
func callsInto(info *types.Info, expr ast.Expr, pkgPath, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(funcObject(info, call.Fun), pkgPath, name) {
			found = true
		}
		return !found
	})
	return found
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// inspectStack walks the AST like ast.Inspect, additionally passing the
// stack of ancestor nodes (outermost first, excluding n itself). The
// callback's return controls descent into n's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		desc := fn(n, stack)
		if desc {
			stack = append(stack, n)
		}
		return desc
	})
}

// directiveLines maps every line of f covered by the named //lint: or
// //ckpt: directive to its reason, using the shared placement convention:
// a directive covers its own line, plus the line below when it stands
// alone. Reasonless directives are included (reason "") — the caller
// decides whether to report them; collectSuppressions already reports
// reasonless //lint: forms, and ckptcomplete reports reasonless
// //ckpt:skip itself.
func directiveLines(fset *token.FileSet, f *ast.File, name string, parse func(text string) (string, string, bool)) map[int]string {
	covered := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return false
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return false
		}
		covered[fset.Position(n.Pos()).Line] = true
		return true
	})
	out := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			dn, reason, ok := parse(c.Text)
			if !ok || dn != name {
				continue
			}
			line := fset.Position(c.Pos()).Line
			out[line] = reason
			if !covered[line] {
				out[line+1] = reason
			}
		}
	}
	return out
}

// namedTypeIs reports whether t (after stripping pointers) is the named
// type pkgPath.typeName.
func namedTypeIs(t types.Type, pkgPath, typeName string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}
