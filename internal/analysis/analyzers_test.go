package analysis

import "testing"

// The fixture module under testdata/src is named dcpim and mirrors the
// real module's package layout, so the path-keyed analyzers exercise the
// exact predicates they apply to the repository.

func TestGlobalRand(t *testing.T) {
	RunFixtures(t, "testdata/src", GlobalRand, "./globalrand")
}

func TestWallclock(t *testing.T) {
	RunFixtures(t, "testdata/src", Wallclock, "./internal/wallclock", "./internal/experiments")
}

func TestMapRange(t *testing.T) {
	RunFixtures(t, "testdata/src", MapRange, "./internal/matching")
}

func TestPacketOwn(t *testing.T) {
	RunFixtures(t, "testdata/src", PacketOwn, "./internal/protocols/demo")
}

func TestSimGoroutine(t *testing.T) {
	RunFixtures(t, "testdata/src", SimGoroutine, "./internal/core")
}

func TestCkptComplete(t *testing.T) {
	// Both the capturing package and the dependency declaring the struct
	// are targets: ckptcomplete's Finish reports at field declarations,
	// which for captureWire sit in ckptfix/types.
	RunFixtures(t, "testdata/src", CkptComplete, "./internal/ckptfix/...")
}

func TestAtomicField(t *testing.T) {
	RunFixtures(t, "testdata/src", AtomicField, "./internal/atomicfix/...")
}

func TestHotAlloc(t *testing.T) {
	RunFixtures(t, "testdata/src", HotAlloc, "./internal/hotfix")
}

func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Errorf("ByName(nosuch) = non-nil")
	}
}
