package analysis

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests are TestRepoClean's negative counterpart: each copies the
// module into a temp dir, injects one representative violation, and
// asserts the matching analyzer reports it — i.e. `dcpimlint ./...` would
// exit 1. Together with TestRepoClean (zero findings on the real tree)
// they pin both directions of the contract: the suite stays quiet on
// clean code and a single regression of each rule is caught.

// copyRepo copies the module's go.mod and every .go file (minus testdata
// fixtures, which carry their own module) into a temp dir.
func copyRepo(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		if d.IsDir() {
			if rel != "." && (d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") && d.Name() != "go.mod" && d.Name() != "go.sum" {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		out := filepath.Join(dst, rel)
		if rerr := os.MkdirAll(filepath.Dir(out), 0o755); rerr != nil {
			return rerr
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// inject replaces needle with repl exactly once in dir/file, failing the
// test if the needle is missing (so tree drift breaks the test loudly
// instead of silently testing nothing).
func inject(t *testing.T, dir, file, needle, repl string) {
	t.Helper()
	path := filepath.Join(dir, filepath.FromSlash(file))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(needle)) {
		t.Fatalf("injection needle %q not found in %s — update the test to match the tree", needle, file)
	}
	if err := os.WriteFile(path, bytes.Replace(data, []byte(needle), []byte(repl), 1), 0o644); err != nil {
		t.Fatal(err)
	}
}

// requireFinding runs the full suite over pattern and asserts a finding
// from the named analyzer whose message contains substr. A non-empty
// diagnostic list is exactly the dcpimlint exit-1 condition.
func requireFinding(t *testing.T, dir, pattern, analyzer, substr string) {
	t.Helper()
	diags, err := RunDir(dir, Analyzers(), pattern)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Fatalf("no %s finding containing %q; got %d findings: %v", analyzer, substr, len(diags), diags)
}

// TestInjectedCkptViolation deletes one field-write from
// core.Proto.CaptureState: ckptcomplete must flag Proto.epoch.
func TestInjectedCkptViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the core dependency closure")
	}
	dir := copyRepo(t)
	inject(t, dir, "internal/core/checkpoint.go",
		"\tenc.I64(p.epoch)\n", "")
	requireFinding(t, dir, "./internal/core", "ckptcomplete",
		"field dcpim/internal/core.Proto.epoch is reachable from the capture path")
}

// TestInjectedAtomicViolation adds one plain read of a hybrid-barrier
// atomic field: atomicfield must flag it.
func TestInjectedAtomicViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the sim package")
	}
	dir := copyRepo(t)
	inject(t, dir, "internal/sim/barrier.go",
		"// joinBarrier is",
		"func (s *workerSlot) injectedPeek() uint64 {\n\tc := s.cmd\n\treturn c.Load()\n}\n\n// joinBarrier is")
	requireFinding(t, dir, "./internal/sim", "atomicfield",
		"field cmd has atomic type sync/atomic.Uint64")
}

// TestInjectedHotAllocViolation adds one append to the body of the
// per-packet OnPacket hot root: hotalloc must flag it.
func TestInjectedHotAllocViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the core dependency closure")
	}
	dir := copyRepo(t)
	inject(t, dir, "internal/core/proto.go",
		"\tswitch pkt.Kind {",
		"\tscratch := append([]int(nil), int(pkt.Kind))\n\t_ = scratch\n\tswitch pkt.Kind {")
	requireFinding(t, dir, "./internal/core", "hotalloc",
		"append growth in hot-path function dcpim/internal/core.Proto.OnPacket")
}
