package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoClean is the self-check: the merged tree must carry zero
// unsuppressed diagnostics, so a refactor that breaks a determinism or
// ownership contract fails `go test ./internal/analysis` as well as the
// CI lint job. Run `go run ./cmd/dcpimlint ./...` for the same check with
// file:line output.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunDir(root, Analyzers(), "./...")
	if err != nil {
		t.Fatalf("running dcpimlint over %s: %v", root, err)
	}
	for _, d := range diags {
		t.Errorf("%v", d)
	}
	if len(diags) > 0 {
		t.Errorf("dcpimlint found %d unsuppressed findings; fix them or add //lint:ignore <analyzer> <reason>", len(diags))
	}
}
