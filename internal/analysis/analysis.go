// Package analysis implements dcpimlint: a suite of static analyzers that
// machine-enforce the simulator's determinism, ownership, checkpoint, and
// hot-path contracts (DESIGN.md §12, §17). The headline invariant — same
// seed ⇒ byte-identical digests, counters, and CSV/JSON artifacts at any
// shard count — rests on conventions that code review alone cannot hold:
// seeded *rand.Rand streams instead of the global math/rand functions, no
// wall-clock reads inside internal/, deterministic iteration over maps
// that feed digests or metrics, the packet.Keep/ReleaseUnlessKept
// ownership contract, concurrency confined to sim.Group/experiments.RunMany,
// complete field coverage on every checkpoint capture path, exclusive
// sync/atomic discipline on fields it manages, and allocation-free
// //lint:hotpath call graphs. Each rule here is an Analyzer; cmd/dcpimlint
// runs them all and CI gates on a clean exit.
//
// The Analyzer/Pass/Diagnostic surface is an API-compatible subset of
// golang.org/x/tools/go/analysis, reimplemented locally on the standard
// library (go/ast, go/types, go list) so the module keeps zero external
// dependencies and the linter builds offline. Cross-package rules ride on
// a fact mechanism (facts.go) modeled on x/tools facts, extended with a
// module-wide Finish pass. If the repo ever vendors x/tools, the
// single-package analyzers port by changing only the import path.
//
// Suppression syntax, shared by every analyzer:
//
//	//lint:ignore <analyzer> <reason>
//
// placed at the end of the offending line or alone on the line directly
// above it. The reason is mandatory; an ignore directive without one is
// itself a diagnostic. Three analyzers honor additional directives:
// //lint:deterministic <reason> (maprange), //ckpt:skip <reason>
// (ckptcomplete), and //lint:hotpath <reason> / //lint:coldpath <reason>
// (hotalloc). See CONTRIBUTING.md for the full directive reference.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named rule. Run inspects a single package via
// its Pass and reports findings through pass.Report/Reportf; analyzers
// with cross-package rules export facts from Run and reconcile them in
// Finish, which the runner calls once after every package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph help text shown by `dcpimlint -list`.
	Doc string

	// Run applies the rule to one type-checked package. Diagnostics go
	// through pass.Report; the error return is for analysis failures
	// (not findings) and aborts the whole run.
	Run func(*Pass) error

	// FactTypes lists prototypes of every fact type Run exports, so the
	// runner can decode them from the on-disk fact cache. Each must be a
	// pointer to a JSON-serializable struct.
	FactTypes []Fact

	// Finish, if non-nil, runs once per analysis run after every package
	// (analyzed or loaded from the fact cache), with access to all
	// exported facts. Diagnostics reported here must carry a resolved
	// Position (facts store Pos for exactly this purpose).
	Finish func(*FinishPass) error
}

// A Pass provides one analyzer with a single type-checked package and a
// sink for diagnostics — the same contract as x/tools' analysis.Pass —
// plus fact export/import against the current run's fact store.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a finding. The runner fills Diagnostic.Analyzer and
	// Diagnostic.Position and applies suppression directives.
	Report func(Diagnostic)

	run *runner
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos against the pass's FileSet.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// ObjectKey returns obj's fact key ("pkg#Name", "pkg#T.M", "pkg#T#f"),
// or ok=false for objects facts cannot describe (locals, universe
// objects). Analyzers use it to record references to other packages'
// objects inside their own facts (e.g. hotalloc's call-graph edges).
func (p *Pass) ObjectKey(obj types.Object) (string, bool) {
	return p.run.keys.keyOf(obj)
}

// ExportObjectFact exports a fact about obj, which must be keyable: a
// package-level object, a method, or a field of a package-level named
// struct type (see facts.go). Reports whether the object was keyable.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) bool {
	key, ok := p.run.keys.keyOf(obj)
	if !ok {
		return false
	}
	p.run.store.put(p.Analyzer.Name, p.Pkg.Path(), key, f)
	return true
}

// ImportObjectFact copies the fact of f's type about obj into f and
// reports whether one was found. Facts exported by this package and by
// every package analyzed before it (its module-internal dependencies, at
// least) are visible.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	key, ok := p.run.keys.keyOf(obj)
	if !ok {
		return false
	}
	return p.run.store.get(p.Analyzer.Name, key, f)
}

// ExportPackageFact exports a fact about the package being analyzed.
func (p *Pass) ExportPackageFact(f Fact) {
	p.run.store.put(p.Analyzer.Name, p.Pkg.Path(), p.Pkg.Path(), f)
}

// ImportPackageFact copies the fact of f's type about the package with
// the given import path into f and reports whether one was found.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	return p.run.store.get(p.Analyzer.Name, path, f)
}

// A FinishPass gives an analyzer's Finish hook a module-wide view of its
// facts. Diagnostics must set Position (there is no FileSet here: facts
// may come from the cache, with no syntax loaded at all).
type FinishPass struct {
	Analyzer *Analyzer

	// Report records a finding at Diagnostic.Position. The runner applies
	// suppression directives collected from every loaded package.
	Report func(Diagnostic)

	run *runner
}

// ObjectFact copies the fact of f's type about the object with the given
// key into f and reports whether one was found.
func (fp *FinishPass) ObjectFact(key string, f Fact) bool {
	return fp.run.store.get(fp.Analyzer.Name, key, f)
}

// AllObjectFacts returns every object fact of example's type exported by
// this analyzer, sorted by object key.
func (fp *FinishPass) AllObjectFacts(example Fact) []KeyedFact {
	return fp.run.store.all(fp.Analyzer.Name, example, true)
}

// AllPackageFacts returns every package fact of example's type exported
// by this analyzer, sorted by package path.
func (fp *FinishPass) AllPackageFacts(example Fact) []KeyedFact {
	return fp.run.store.all(fp.Analyzer.Name, example, false)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos `json:"-"`
	Message string    `json:"message"`

	// Filled in by the runner (Finish hooks set Position themselves).
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`

	// Suggest is the copy-paste directive that would accept this finding
	// (`dcpimlint -fix` prints it). Analyzers may set it; the runner
	// fills a default //lint:ignore form when empty.
	Suggest string `json:"suggest,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzers returns the full dcpimlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GlobalRand,
		Wallclock,
		MapRange,
		PacketOwn,
		SimGoroutine,
		CkptComplete,
		AtomicField,
		HotAlloc,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
