// Package analysis implements dcpimlint: a suite of static analyzers that
// machine-enforce the simulator's determinism and ownership contracts
// (DESIGN.md §12). The headline invariant — same seed ⇒ byte-identical
// digests, counters, and CSV/JSON artifacts at any shard count — rests on
// conventions that code review alone cannot hold: seeded *rand.Rand streams
// instead of the global math/rand functions, no wall-clock reads inside
// internal/, deterministic iteration over maps that feed digests or
// metrics, the packet.Keep/ReleaseUnlessKept ownership contract, and
// concurrency confined to sim.Group/experiments.RunMany. Each rule here is
// an Analyzer; cmd/dcpimlint runs them all and CI gates on a clean exit.
//
// The Analyzer/Pass/Diagnostic surface is an API-compatible subset of
// golang.org/x/tools/go/analysis, reimplemented locally on the standard
// library (go/ast, go/types, go list) so the module keeps zero external
// dependencies and the linter builds offline. If the repo ever vendors
// x/tools, these analyzers port by changing only the import path.
//
// Suppression syntax, shared by every analyzer:
//
//	//lint:ignore <analyzer> <reason>
//
// placed at the end of the offending line or alone on the line directly
// above it. The reason is mandatory; an ignore directive without one is
// itself a diagnostic. The maprange analyzer additionally honors
//
//	//lint:deterministic <reason>
//
// for map iterations whose fold is order-insensitive by construction.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named rule. Run inspects a single package via
// its Pass and reports findings through pass.Report/Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph help text shown by `dcpimlint -list`.
	Doc string

	// Run applies the rule to one type-checked package. Diagnostics go
	// through pass.Report; the error return is for analysis failures
	// (not findings) and aborts the whole run.
	Run func(*Pass) error
}

// A Pass provides one analyzer with a single type-checked package and a
// sink for diagnostics — the same contract as x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a finding. The runner fills Diagnostic.Analyzer and
	// Diagnostic.Position and applies suppression directives.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Filled in by the runner.
	Analyzer string         // reporting analyzer's Name
	Position token.Position // resolved file:line:column
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzers returns the full dcpimlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GlobalRand,
		Wallclock,
		MapRange,
		PacketOwn,
		SimGoroutine,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
