package analysis

import (
	"go/ast"
	"go/types"
)

// PacketOwn enforces the pool ownership contract around packet.Keep and
// packet.ReleaseUnlessKept (see the Packet doc comment): Keep transfers
// ownership from the fabric to the protocol, ReleaseUnlessKept is the
// fabric's post-delivery release point, and the two must never meet in one
// handler — keeping a packet and then handing it back to the fabric's
// release path double-frees it into the shared sync.Pool, corrupting a
// concurrent simulation under experiments.RunMany. Likewise, OnPacket
// bodies and Observer hooks run while the fabric still holds the packet,
// so synchronous Release/ReleaseUnlessKept/pool-Put calls there are
// use-after-free bugs; a kept packet is consumed from a later event
// (closures scheduled from the handler are exempt — they run later).
var PacketOwn = &Analyzer{
	Name: "packetown",
	Doc: "enforce packet pool ownership: no Keep+ReleaseUnlessKept on the " +
		"same packet in one handler, no synchronous release inside " +
		"OnPacket bodies or Observer hooks",
	Run: runPacketOwn,
}

var (
	packetPkg = modulePath + "/internal/packet"
	netsimPkg = modulePath + "/internal/netsim"
)

// observerHooks are the netsim.Observer methods (and the matching
// ObserverFuncs fields, which drop the "Packet" prefix).
var observerHooks = map[string]bool{
	"PacketInjected": true, "PacketDelivered": true,
	"PacketDropped": true, "PacketTrimmed": true,
}

var observerFuncFields = map[string]bool{
	"Injected": true, "Delivered": true, "Dropped": true, "Trimmed": true,
}

func runPacketOwn(pass *Pass) error {
	if pass.Pkg.Path() == packetPkg {
		return nil // the contract's implementation necessarily touches the pool
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkKeepConflict(pass, fd)
			if isPacketHandler(pass.TypesInfo, fd) {
				banSyncRelease(pass, fd.Body, "inside "+fd.Name.Name)
			}
		}
		// Hooks registered through netsim.ObserverFuncs literals are
		// observer bodies too, wherever the literal appears.
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || !namedTypeIs(tv.Type, netsimPkg, "ObserverFuncs") {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !observerFuncFields[key.Name] {
					continue
				}
				if fl, ok := kv.Value.(*ast.FuncLit); ok {
					banSyncRelease(pass, fl.Body, "inside ObserverFuncs."+key.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isPacketHandler reports whether fd is a method the fabric invokes while
// it still owns the packet: Protocol.OnPacket or an Observer hook, by name
// and a *packet.Packet parameter.
func isPacketHandler(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	name := fd.Name.Name
	if name != "OnPacket" && !observerHooks[name] {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok {
			if namedTypeIs(tv.Type, packetPkg, "Packet") {
				return true
			}
		}
	}
	return false
}

// checkKeepConflict flags any packet that one function body both Keep()s
// and passes to ReleaseUnlessKept — flow-insensitively, nested closures
// included, since the double release is wrong in every order.
func checkKeepConflict(pass *Pass, fd *ast.FuncDecl) {
	kept := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !isMethod(fn, packetPkg, "Packet", "Keep") {
			return true
		}
		if id := rootIdent(sel.X); id != nil {
			if obj := identObject(pass.TypesInfo, id); obj != nil {
				kept[obj] = true
			}
		}
		return true
	})
	if len(kept) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObject(pass.TypesInfo, call.Fun)
		if !isPkgFunc(fn, packetPkg, "ReleaseUnlessKept") || len(call.Args) != 1 {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil {
			if obj := identObject(pass.TypesInfo, id); obj != nil && kept[obj] {
				pass.Reportf(call.Pos(),
					"%s is Keep()ed in this handler and also passed to ReleaseUnlessKept; after Keep the protocol owns the packet and must Release it from a later event",
					id.Name)
			}
		}
		return true
	})
}

// banSyncRelease reports packet.Release, packet.ReleaseUnlessKept, and
// (*sync.Pool).Put calls inside body, skipping nested function literals:
// a closure scheduled from a handler runs as a later event, which is
// exactly the sanctioned way to consume a kept packet.
func banSyncRelease(pass *Pass, body *ast.BlockStmt, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObject(pass.TypesInfo, call.Fun)
		switch {
		case isPkgFunc(fn, packetPkg, "Release"):
			pass.Reportf(call.Pos(),
				"synchronous packet.Release %s: the fabric still reads the packet after the hook returns; Keep it and Release from a later event", where)
		case isPkgFunc(fn, packetPkg, "ReleaseUnlessKept"):
			pass.Reportf(call.Pos(),
				"packet.ReleaseUnlessKept %s: that is the fabric's own release point, never a handler's", where)
		case isMethod(fn, "sync", "Pool", "Put"):
			pass.Reportf(call.Pos(),
				"sync.Pool Put %s: handlers must not recycle objects the fabric still holds", where)
		}
		return true
	})
}
