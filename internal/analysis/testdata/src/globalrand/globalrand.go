// Package globalrand is a dcpimlint fixture: the globalrand analyzer
// applies module-wide, so this package can live at the module root.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func badGlobals() {
	_ = rand.Intn(10)                  // want "global rand.Intn draws from the shared auto-seeded source"
	_ = rand.Float64()                 // want "global rand.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle"
	rand.Seed(42)                      // want "global rand.Seed"
	_ = randv2.IntN(10)                // want "global rand.IntN"
}

func badSeed() {
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.NewSource seeded from time.Now" "rand.New seeded from time.Now"
}

func goodSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // method on a seeded *rand.Rand: sanctioned
}

func suppressed() int {
	//lint:ignore globalrand fixture demonstrates a justified suppression
	return rand.Intn(10)
}

func suppressedTrailing() int {
	return rand.Intn(10) //lint:ignore globalrand trailing-form suppression
}
