module dcpim

go 1.22
