// Package ckpttypes declares a struct captured from another package
// (ckptfix.captureWire). Its CkptStructFact must cross the package
// boundary for the Finish pass to diff capture coverage against the
// authoritative field list — the findings below only exist if the fact
// mechanism works.
package ckpttypes

// Wire is encoded by dcpim/internal/ckptfix.captureWire, which covers
// Seq only.
type Wire struct {
	Seq int64
	Gen int64  // want "field dcpim/internal/ckptfix/types.Wire.Gen is reachable from the capture path .* but never encoded"
	Tag string //ckpt:skip debugging label, not protocol state
}
