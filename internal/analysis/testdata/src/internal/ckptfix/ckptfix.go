// Package ckptfix exercises the ckptcomplete analyzer: every field of a
// struct a capture path reads must be covered by that path or carry
// //ckpt:skip <reason>.
package ckptfix

import (
	"dcpim/internal/checkpoint"

	ckpttypes "dcpim/internal/ckptfix/types"
)

// state is bound as a parameter of captureState, so its whole field list
// is in scope for the coverage diff.
type state struct {
	a     int
	b     int // want "field dcpim/internal/ckptfix.state.b is reachable from the capture path .* but never encoded"
	cache int //ckpt:skip derived index, rebuilt from a on resume
}

func captureState(enc *checkpoint.Encoder, s *state) {
	enc.I64(int64(s.a))
}

// ring's CaptureState covers head only: tail is a finding.
type ring struct {
	head int
	tail int // want "field dcpim/internal/ckptfix.ring.tail is reachable from the capture path .* but never encoded"
}

func (r *ring) CaptureState(enc *checkpoint.Encoder) {
	enc.I64(int64(r.head))
}

// silent's capture method reads nothing at all — the receiver struct is
// checked unconditionally, so every field is a finding (a CaptureState
// that encodes nothing is exactly the bug, not a pass).
type silent struct {
	x int // want "field dcpim/internal/ckptfix.silent.x is reachable from the capture path .* but never encoded"
}

func (s *silent) CaptureState(enc *checkpoint.Encoder) {}

// full is fully covered: no findings.
type full struct {
	u int
	v int
}

func captureFull(enc *checkpoint.Encoder, f full) {
	enc.I64(int64(f.u))
	enc.I64(int64(f.v))
}

// opaque is only passed whole to a helper, never field-read on the
// capture path: types that serialize through accessors stay out of scope
// on purpose, so no findings.
type opaque struct {
	hidden int
}

func captureOpaque(enc *checkpoint.Encoder, o opaque) {
	useOpaque(o)
	enc.Bool(true)
}

func useOpaque(opaque) {}

// captureWire reads a struct declared in a dependency package: its field
// list arrives as a cross-package CkptStructFact (exported by types/,
// diffed in the Finish pass — the findings land in types/types.go).
func captureWire(enc *checkpoint.Encoder, w *ckpttypes.Wire) {
	enc.I64(w.Seq)
}
