// Package packet is a stub of the real dcpim/internal/packet, just enough
// surface for the packetown fixtures to type-check against the same
// import path the analyzer keys on.
package packet

type Packet struct {
	Kind int
	keep bool
}

func Get() *Packet      { return new(Packet) }
func Release(p *Packet) { p.keep = false }
func ReleaseUnlessKept(p *Packet) {
	if p.keep {
		p.keep = false
		return
	}
	Release(p)
}
func (p *Packet) Keep() { p.keep = true }
