// Package atomicfix exercises the atomicfield analyzer: fields managed
// via sync/atomic — typed wrappers or pointer-style calls — must never be
// read or written plainly outside construction.
package atomicfix

import "sync/atomic"

// counter mixes the two atomic flavors with an unmanaged plain field.
type counter struct {
	hits   atomic.Int64
	legacy int64 // managed pointer-style in bump, so plain access is a finding
	plain  int
}

// bump uses every field legally: typed atomic as a method-call receiver,
// legacy through sync/atomic (which also marks it), plain field plainly.
func (c *counter) bump() {
	c.hits.Add(1)
	atomic.AddInt64(&c.legacy, 1)
	c.plain++
}

func (c *counter) broken() int64 {
	x := c.hits // want "field hits has atomic type sync/atomic.Int64 and may only be used as a method-call receiver"
	_ = x
	return c.legacy // want "field legacy is managed by sync/atomic .* and must not be accessed plainly"
}

// newCounter constructs the value, so plain initialization of the marked
// field is exempt: nothing else can hold a reference yet.
func newCounter() *counter {
	c := &counter{}
	c.legacy = 0
	return c
}

func (c *counter) reset() {
	//lint:ignore atomicfield single-threaded test reset with no concurrent observers
	c.legacy = 0
}

// Gate is accessed from the dependent package atomicfix/use: the
// AtomicFieldFact exported for Seq here must cross the package boundary
// to flag the plain read over there.
type Gate struct {
	Seq int64
}

// Open marks Gate.Seq as atomically managed.
func (g *Gate) Open() {
	atomic.AddInt64(&g.Seq, 1)
}
