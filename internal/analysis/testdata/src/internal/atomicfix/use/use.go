// Package atomicuse reads a field that package atomicfix manages with
// pointer-style sync/atomic. The finding below only exists if the
// AtomicFieldFact exported by atomicfix is imported here — across the
// export-data package boundary.
package atomicuse

import "dcpim/internal/atomicfix"

// Snoop races Gate.Open on a real run.
func Snoop(g *atomicfix.Gate) int64 {
	return g.Seq // want "field Seq is managed by sync/atomic .* and must not be accessed plainly"
}

// Sanctioned accesses the same field atomically and under an inline
// suppression: no findings.
func Sanctioned(g *atomicfix.Gate) int64 {
	//lint:ignore atomicfield fixture proving suppression crosses packages too
	return g.Seq
}
