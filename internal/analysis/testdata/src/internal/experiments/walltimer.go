// Package experiments mirrors the real internal/experiments package path
// so the wallclock analyzer's single-function allowlist can be exercised.
package experiments

import "time"

// WallTimer is the allowlisted host-timing bridge: its body may read the
// wall clock, and nothing else in internal/ may.
func WallTimer() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// NotAllowlisted proves the exemption is the function, not the package.
func NotAllowlisted() time.Time {
	return time.Now() // want "time.Now reads the host clock inside internal/"
}
