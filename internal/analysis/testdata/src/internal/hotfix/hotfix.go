// Package hotfix exercises the hotalloc analyzer: a //lint:hotpath root
// and everything it statically calls in-module must contain no allocation
// sites, except under //lint:coldpath functions and //lint:ignore lines.
package hotfix

type ring struct {
	buf []int
}

// Push is a hot root: its own append and its callee's make are findings;
// grow is cold, so its make is not.
//
//lint:hotpath fixture hot root covering direct and transitive sites
func (r *ring) Push(v int) {
	r.buf = append(r.buf, v) // want "append growth in hot-path function dcpim/internal/hotfix.ring.Push"
	r.helper(v)
	r.grow(v)
}

func (r *ring) helper(v int) {
	m := make([]int, v) // want "make in hot-path function dcpim/internal/hotfix.ring.helper .reached from //lint:hotpath root dcpim/internal/hotfix.ring.Push."
	_ = m
}

// grow is the deliberate amortized slow path: reachable from Push but
// exempt, so its make is silent.
//
//lint:coldpath fixture amortized growth path
func (r *ring) grow(n int) {
	if cap(r.buf) < n {
		r.buf = append(make([]int, 0, 2*n), r.buf...)
	}
}

func box(v any) {}

// Boxes demonstrates the interface-boxing and closure-capture sites.
//
//lint:hotpath fixture root for boxing and capture sites
func (r *ring) Boxes(v int) {
	box(v)                       // want "interface conversion of int in hot-path function dcpim/internal/hotfix.ring.Boxes"
	f := func() int { return v } // want "closure capturing outer variables in hot-path function dcpim/internal/hotfix.ring.Boxes"
	_ = f
	box(r) // pointer-shaped: stored inline in the interface, no boxing
}

// PushSanctioned's append is proven non-growing, suppressed inline.
//
//lint:hotpath fixture root with a sanctioned site
func (r *ring) PushSanctioned(v int) {
	//lint:ignore hotalloc capacity preallocated at construction; this append never grows
	r.buf = append(r.buf, v)
}

// Steady is hot and clean — no findings anywhere in its call tree.
//
//lint:hotpath fixture clean root
func (r *ring) Steady(v int) {
	if len(r.buf) == 0 {
		return
	}
	r.shift(v)
}

func (r *ring) shift(v int) {
	for i := 1; i < len(r.buf); i++ {
		r.buf[i-1] = r.buf[i]
	}
	r.buf[len(r.buf)-1] = v
}

// coldStart allocates freely but is not reachable from any hot root, so
// nothing here is a finding.
func coldStart() *ring {
	return &ring{buf: make([]int, 0, 64)}
}
