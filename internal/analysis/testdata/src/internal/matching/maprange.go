// Package matching mirrors a digest-path package so the maprange analyzer
// fires on it.
package matching

import (
	"sort"
)

func bad(m map[int]string, out []int) []int {
	for k := range m { // want "map iteration order is random"
		out = append(out, k*2) // collected but never sorted
	}
	for k, v := range m { // want "map iteration order is random"
		if v != "" {
			out = append(out, k)
		}
	}
	return out
}

// collectNoSort appends keys but never sorts: still a finding.
func collectNoSort(m map[int]string) []int {
	var keys []int
	for k := range m { // want "map iteration order is random"
		keys = append(keys, k)
	}
	return keys
}

// collectAndSort is the sanctioned idiom: no annotation needed.
func collectAndSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collectAndSliceSort uses sort.Slice on key-value pairs.
func collectAndSliceSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// bareRange never binds the key, so order cannot be observed.
func bareRange(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// annotated folds are order-insensitive by construction.
func annotated(m map[int]int64) int64 {
	var total int64
	//lint:deterministic int64 sum: map order cannot affect the result
	for _, v := range m {
		total += v
	}
	return total
}

// ignoredForm also accepts the generic ignore directive.
func ignoredForm(m map[int]int64) int64 {
	var total int64
	//lint:ignore maprange commutative sum, checked in review
	for _, v := range m {
		total += v
	}
	return total
}

// inClosure checks that the sort scan uses the innermost function body.
func inClosure(m map[int]string) func() []int {
	return func() []int {
		var keys []int
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		return keys
	}
}

// sortBeforeNotAfter: a sort that happens before the loop does not bless it.
func sortBeforeNotAfter(m map[int]string) []int {
	var keys []int
	sort.Ints(keys)
	for k := range m { // want "map iteration order is random"
		keys = append(keys, k)
	}
	return keys
}
