// Package checkpoint is a fixture stub of the real encoder: ckptcomplete
// recognizes capture paths by a *checkpoint.Encoder parameter, so fixture
// capture functions need the type at the mirrored import path. The
// package itself is exempt from ckptcomplete (its internals are the
// serialization mechanism, not checkpointed state), which the stub's own
// unencoded fields double-check.
package checkpoint

// Encoder is the stub encoder. Its buf field is deliberately never
// "encoded": the checkpoint package exemption must keep it silent.
type Encoder struct {
	buf []byte
}

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) {
	for i := 0; i < 8; i++ {
		e.buf = append(e.buf, byte(v>>(8*i)))
	}
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.I64(int64(v)) }

// Bool appends one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }
