// Package netsim is a stub of the real dcpim/internal/netsim: the
// ObserverFuncs adapter the packetown analyzer recognizes by type.
package netsim

import "dcpim/internal/packet"

type Observer interface {
	PacketInjected(host int, p *packet.Packet)
	PacketDelivered(host int, p *packet.Packet)
	PacketDropped(p *packet.Packet)
	PacketTrimmed(p *packet.Packet)
}

type ObserverFuncs struct {
	Injected  func(host int, p *packet.Packet)
	Delivered func(host int, p *packet.Packet)
	Dropped   func(p *packet.Packet)
	Trimmed   func(p *packet.Packet)
}

func (o ObserverFuncs) PacketInjected(host int, p *packet.Packet)  {}
func (o ObserverFuncs) PacketDelivered(host int, p *packet.Packet) {}
func (o ObserverFuncs) PacketDropped(p *packet.Packet)             {}
func (o ObserverFuncs) PacketTrimmed(p *packet.Packet)             {}
