// Package wallclock is a dcpimlint fixture under internal/, where the
// wallclock analyzer forbids host-clock reads.
package wallclock

import "time"

func bad() {
	_ = time.Now()                 // want "time.Now reads the host clock inside internal/"
	time.Sleep(time.Millisecond)   // want "time.Sleep reads the host clock"
	_ = time.After(time.Second)    // want "time.After reads the host clock"
	_ = time.NewTimer(time.Second) // want "time.NewTimer reads the host clock"
	_ = time.Since(time.Time{})    // want "time.Since reads the host clock"
}

func good(d time.Duration) time.Duration {
	// Types and pure conversions are legal; only clock reads are not.
	return d + 3*time.Millisecond
}

func suppressed() {
	//lint:ignore wallclock fixture demonstrates a justified suppression
	time.Sleep(time.Millisecond)
}
