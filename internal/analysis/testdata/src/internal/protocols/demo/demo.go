// Package demo is the packetown fixture: a fake protocol exercising the
// pool ownership contract.
package demo

import (
	"sync"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
)

type Proto struct {
	buf   []*packet.Packet
	later func(func())
}

// OnPacket with a Keep/ReleaseUnlessKept conflict and a synchronous
// release: both findings.
func (p *Proto) OnPacket(pkt *packet.Packet) {
	pkt.Keep()
	packet.ReleaseUnlessKept(pkt) // want "Keep\\(\\)ed in this handler and also passed to ReleaseUnlessKept" "that is the fabric's own release point"
}

type Proto2 struct{ later func(func()) }

// OnPacket that releases synchronously: use-after-free against the fabric.
func (p *Proto2) OnPacket(pkt *packet.Packet) {
	packet.Release(pkt) // want "synchronous packet.Release inside OnPacket"
}

type Proto3 struct {
	buf   []*packet.Packet
	later func(func())
}

// OnPacket that keeps the packet and consumes it from a scheduled
// closure: the sanctioned pattern, no findings.
func (p *Proto3) OnPacket(pkt *packet.Packet) {
	pkt.Keep()
	p.buf = append(p.buf, pkt)
	p.later(func() {
		for _, q := range p.buf {
			packet.Release(q)
		}
		p.buf = p.buf[:0]
	})
}

// keepConflictHelper shows the conflict is caught in any function, not
// just OnPacket bodies.
func keepConflictHelper(pkt *packet.Packet) {
	packet.ReleaseUnlessKept(pkt) // want "Keep\\(\\)ed in this handler and also passed to ReleaseUnlessKept"
	pkt.Keep()
}

// fabricDeliver mimics the fabric's own release point: without a Keep in
// the same body, ReleaseUnlessKept is legal.
func fabricDeliver(pkt *packet.Packet) {
	packet.ReleaseUnlessKept(pkt)
}

// observer hooks must not recycle either.
type probe struct{ pool sync.Pool }

func (pr *probe) PacketDropped(p *packet.Packet) {
	packet.Release(p) // want "synchronous packet.Release inside PacketDropped"
}

func (pr *probe) PacketDelivered(host int, p *packet.Packet) {
	pr.pool.Put(p) // want "sync.Pool Put inside PacketDelivered"
}

func observerFuncsLiteral() netsim.Observer {
	return netsim.ObserverFuncs{
		Dropped: func(p *packet.Packet) {
			packet.Release(p) // want "synchronous packet.Release inside ObserverFuncs.Dropped"
		},
		Delivered: func(host int, p *packet.Packet) {
			// Copy-only observers are the contract.
			_ = p.Kind
		},
	}
}

type Proto4 struct{}

// suppression works on packetown too.
func (p *Proto4) OnPacket(pkt *packet.Packet) {
	//lint:ignore packetown fixture: protocol guarantees the fabric dropped its reference
	packet.Release(pkt)
}
