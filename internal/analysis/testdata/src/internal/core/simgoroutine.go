// Package core mirrors a sim-path package so the simgoroutine analyzer
// fires on it.
package core

import (
	"sync"
	"time"
)

func spawn(work func()) {
	go work() // want "go statement on the sim path"
}

func adHocJoin(tasks []func()) {
	var wg sync.WaitGroup // want "sync.WaitGroup on the sim path"
	for _, t := range tasks {
		wg.Add(1)
		go func() { // want "go statement on the sim path"
			defer wg.Done()
			t()
		}()
	}
	wg.Wait()
}

type pacer struct {
	t *time.Timer // want "time.Timer is a host-clock timer"
	k time.Ticker // want "time.Ticker is a host-clock timer"
}

// mutexes guard shared state without racing the event order; they stay legal.
type guarded struct {
	mu sync.Mutex
	n  int
}

func suppressedSpawn(work func()) {
	//lint:ignore simgoroutine fixture: sanctioned spawn point under test
	go work()
}
