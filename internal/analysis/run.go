package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// factCacheSchema versions the on-disk fact cache format and the fact
// semantics baked into the analyzers. Bump it whenever either changes;
// stale entries are silently recomputed.
const factCacheSchema = 1

// Options configures a module analysis run.
type Options struct {
	// CacheDir enables the on-disk fact cache: per-package entries keyed
	// by a fingerprint over the package's sources, its module-internal
	// dependencies' fingerprints, and the analyzer set. A package whose
	// fingerprint matches is not parsed, type-checked, or analyzed — its
	// facts, suppressions, and diagnostics come from the cache. Empty
	// disables caching.
	CacheDir string
}

// Stats reports how much work a run did (and the cache saved).
type Stats struct {
	Analyzed int // packages parsed, type-checked, and analyzed
	Cached   int // packages served entirely from the fact cache
}

// Result is the outcome of RunModule.
type Result struct {
	Diags []Diagnostic
	Stats Stats
}

// runner carries one analysis run's shared state: the fact store, the
// lazily built object-key indexes, and the module-wide suppression table
// (Finish-phase diagnostics can land in any loaded package's files, so
// suppression must see every package's directives).
type runner struct {
	analyzers []*Analyzer
	store     *factStore
	keys      keyIndex
	sup       suppressions
}

func newRunner(analyzers []*Analyzer) (*runner, error) {
	store, err := newFactStore(analyzers)
	if err != nil {
		return nil, err
	}
	return &runner{
		analyzers: analyzers,
		store:     store,
		keys:      make(keyIndex),
		sup:       make(suppressions),
	}, nil
}

// runPackage analyzes one package: collects its suppression directives
// (merging them into the module-wide table), runs every analyzer, and
// returns the package's surviving diagnostics — whether they are kept
// depends on the package being a target, which the caller decides.
func (r *runner) runPackage(pkg *Package) ([]Diagnostic, suppressions, error) {
	sup, diags := collectSuppressions(pkg)
	r.mergeSup(sup)
	for _, a := range r.analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			run:       r,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			d.Position = pkg.Fset.Position(d.Pos)
			fillSuggest(&d)
			if !sup.suppresses(a.Name, d.Position) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	return diags, sup, nil
}

// finish runs every analyzer's Finish hook over the completed fact store.
// Duplicate findings (the same analyzer, position, and message — e.g. one
// allocation site reachable from two hot roots) collapse to one.
func (r *runner) finish() ([]Diagnostic, error) {
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, a := range r.analyzers {
		if a.Finish == nil {
			continue
		}
		fp := &FinishPass{Analyzer: a, run: r}
		fp.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			fillSuggest(&d)
			if r.sup.suppresses(a.Name, d.Position) {
				return
			}
			key := fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%s",
				d.Analyzer, d.Position.Filename, d.Position.Line, d.Position.Column, d.Message)
			if seen[key] {
				return
			}
			seen[key] = true
			out = append(out, d)
		}
		if err := a.Finish(fp); err != nil {
			return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
		}
	}
	return out, nil
}

func (r *runner) mergeSup(sup suppressions) {
	for key, names := range sup {
		dst := r.sup[key]
		if dst == nil {
			dst = make(map[string]bool, len(names))
			r.sup[key] = dst
		}
		for name := range names {
			dst[name] = true
		}
	}
}

// fillSuggest gives every finding a copy-paste acceptance directive for
// `dcpimlint -fix`, unless the analyzer set a more specific one (e.g.
// ckptcomplete suggests //ckpt:skip).
func fillSuggest(d *Diagnostic) {
	if d.Suggest == "" && d.Analyzer != "lintdirective" {
		d.Suggest = fmt.Sprintf("//lint:ignore %s <why this is safe>", d.Analyzer)
	}
}

// Run applies every analyzer to every package, resolves positions,
// filters suppressed findings and non-target packages' findings, runs the
// Finish phase over the accumulated facts, and returns the survivors
// sorted by position. pkgs must come from Load (module-internal
// dependencies present, topologically ordered) for cross-package facts to
// flow correctly. A malformed suppression directive (missing reason) is
// reported as a diagnostic from the pseudo-analyzer "lintdirective" so it
// cannot hide a finding silently.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	r, err := newRunner(analyzers)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pkgDiags, _, err := r.runPackage(pkg)
		if err != nil {
			return nil, err
		}
		if pkg.Target {
			diags = append(diags, pkgDiags...)
		}
	}
	fdiags, err := r.finish()
	if err != nil {
		return nil, err
	}
	diags = append(diags, fdiags...)
	sortDiags(diags)
	return diags, nil
}

// RunDir loads patterns relative to dir and runs analyzers over the result.
func RunDir(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	res, err := RunModule(dir, analyzers, Options{}, patterns...)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunModule is the full pipeline with fact-cache support: packages whose
// fingerprint matches a cache entry are skipped entirely (no parse, no
// type-check, no analyzer run) — their facts, suppression directives, and
// diagnostics are installed from disk instead.
func RunModule(dir string, analyzers []*Analyzer, opts Options, patterns ...string) (*Result, error) {
	m, err := LoadModule(dir, patterns...)
	if err != nil {
		return nil, err
	}
	r, err := newRunner(analyzers)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	sig := analyzerSig(analyzers)
	fps := make(map[string]uint64, len(m.specs))
	for _, spec := range m.specs {
		fp := fingerprint(sig, spec, fps)
		fps[spec.path] = fp
		if opts.CacheDir != "" {
			if entry, ok := readCacheEntry(opts.CacheDir, spec.path, fp); ok {
				if err := r.store.installStored(spec.path, entry.Facts); err == nil {
					r.mergeSup(entry.suppressions())
					if spec.target {
						res.Diags = append(res.Diags, entry.Diags...)
					}
					res.Stats.Cached++
					continue
				}
			}
		}
		pkg, err := m.Check(spec.path)
		if err != nil {
			return nil, err
		}
		diags, sup, err := r.runPackage(pkg)
		if err != nil {
			return nil, err
		}
		res.Stats.Analyzed++
		if spec.target {
			res.Diags = append(res.Diags, diags...)
		}
		if opts.CacheDir != "" {
			if err := writeCacheEntry(opts.CacheDir, spec.path, fp, r.store, sup, diags); err != nil {
				return nil, fmt.Errorf("writing fact cache for %s: %w", spec.path, err)
			}
		}
	}
	fdiags, err := r.finish()
	if err != nil {
		return nil, err
	}
	res.Diags = append(res.Diags, fdiags...)
	sortDiags(res.Diags)
	return res, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// analyzerSig hashes the analyzer set (and the fact schema) into the
// cache fingerprint, so runs with different -only selections or analyzer
// versions never share entries.
func analyzerSig(analyzers []*Analyzer) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "schema=%d", factCacheSchema)
	for _, a := range analyzers {
		io.WriteString(h, a.Name)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// fingerprint keys one package's cache entry: analyzer set, the package's
// own sources, and — transitively, via the chained dep fingerprints — the
// sources of everything it imports inside the module. Any edit to a
// dependency therefore invalidates its dependents' entries (the
// stale-fact test in facts_test.go pins this).
func fingerprint(sig uint64, spec *pkgSpec, deps map[string]uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x/%s/%x", sig, spec.path, spec.hash)
	for _, imp := range spec.modImports {
		fmt.Fprintf(h, "/%s=%x", imp, deps[imp])
	}
	return h.Sum64()
}

// cacheEntry is one package's serialized analysis output.
type cacheEntry struct {
	Schema      int          `json:"schema"`
	Fingerprint string       `json:"fingerprint"`
	Package     string       `json:"package"`
	Facts       []storedFact `json:"facts,omitempty"`
	Sups        []cachedSup  `json:"suppressions,omitempty"`
	Diags       []Diagnostic `json:"diagnostics,omitempty"`
}

type cachedSup struct {
	File  string   `json:"file"`
	Line  int      `json:"line"`
	Names []string `json:"names"`
}

func (e *cacheEntry) suppressions() suppressions {
	sup := make(suppressions, len(e.Sups))
	for _, s := range e.Sups {
		names := make(map[string]bool, len(s.Names))
		for _, n := range s.Names {
			names[n] = true
		}
		sup[suppressionKey{s.File, s.Line}] = names
	}
	return sup
}

func cachePath(dir, pkgPath string) string {
	return filepath.Join(dir, strings.ReplaceAll(pkgPath, "/", "_")+".facts.json")
}

func readCacheEntry(dir, pkgPath string, fp uint64) (*cacheEntry, bool) {
	data, err := os.ReadFile(cachePath(dir, pkgPath))
	if err != nil {
		return nil, false
	}
	entry := new(cacheEntry)
	if err := json.Unmarshal(data, entry); err != nil {
		return nil, false
	}
	if entry.Schema != factCacheSchema || entry.Package != pkgPath ||
		entry.Fingerprint != fmt.Sprintf("%016x", fp) {
		return nil, false
	}
	return entry, true
}

func writeCacheEntry(dir, pkgPath string, fp uint64, store *factStore, sup suppressions, diags []Diagnostic) error {
	facts, err := store.encodePkg(pkgPath)
	if err != nil {
		return err
	}
	entry := &cacheEntry{
		Schema:      factCacheSchema,
		Fingerprint: fmt.Sprintf("%016x", fp),
		Package:     pkgPath,
		Facts:       facts,
		Diags:       diags,
	}
	keys := make([]suppressionKey, 0, len(sup))
	for k := range sup {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i].file < keys[j].file || (keys[i].file == keys[j].file && keys[i].line < keys[j].line)
	})
	for _, k := range keys {
		names := make([]string, 0, len(sup[k]))
		for n := range sup[k] {
			names = append(names, n)
		}
		sort.Strings(names)
		entry.Sups = append(entry.Sups, cachedSup{File: k.file, Line: k.line, Names: names})
	}
	data, err := json.MarshalIndent(entry, "", "\t")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(cachePath(dir, pkgPath), data, 0o644)
}

// suppressionKey identifies one line of one file.
type suppressionKey struct {
	file string
	line int
}

// suppressions maps file:line to the set of analyzer names silenced there.
// The special name "deterministic" (from //lint:deterministic) silences
// maprange only.
type suppressions map[suppressionKey]map[string]bool

func (s suppressions) suppresses(analyzer string, pos token.Position) bool {
	names := s[suppressionKey{pos.Filename, pos.Line}]
	if names[analyzer] {
		return true
	}
	return analyzer == "maprange" && names["deterministic"]
}

// collectSuppressions scans every comment in pkg for lint directives. A
// directive covers its own line and, when it stands alone on a line, the
// line directly below — so it can trail the offending statement or sit
// immediately above it. Directives with no reason are returned as
// diagnostics instead of taking effect. The hotpath/coldpath marker
// directives are parsed here only for reason enforcement; hotalloc reads
// them from function doc comments itself.
func collectSuppressions(pkg *Package) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	for _, f := range pkg.Syntax {
		// Lines that contain non-comment code, to distinguish trailing
		// directives from standalone ones.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return false
			}
			codeLines[pkg.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("//lint:%s directive needs a reason", name),
						Analyzer: "lintdirective",
						Position: pos,
					})
					continue
				}
				if name == "hotpath" || name == "coldpath" {
					continue // markers, not suppressions; hotalloc consumes them
				}
				lines := []int{pos.Line}
				if !codeLines[pos.Line] {
					lines = append(lines, pos.Line+1)
				}
				for _, line := range lines {
					key := suppressionKey{pos.Filename, line}
					if sup[key] == nil {
						sup[key] = make(map[string]bool)
					}
					sup[key][name] = true
				}
			}
		}
	}
	return sup, bad
}

// parseDirective recognizes the //lint: directive family:
// "//lint:ignore <name> <reason>" returns the target analyzer name;
// "//lint:deterministic <reason>" returns "deterministic" (maprange
// only); "//lint:hotpath <reason>" and "//lint:coldpath <reason>" return
// "hotpath"/"coldpath" — markers for the hotalloc analyzer rather than
// suppressions, but parsed here so the mandatory-reason rule covers them
// too.
func parseDirective(text string) (name, reason string, ok bool) {
	for _, kw := range [...]string{"deterministic", "hotpath", "coldpath"} {
		if strings.HasPrefix(text, "//lint:"+kw) {
			rest := strings.TrimPrefix(text, "//lint:"+kw)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				return "", "", false
			}
			return kw, strings.TrimSpace(rest), true
		}
	}
	if strings.HasPrefix(text, "//lint:ignore") {
		rest := strings.TrimPrefix(text, "//lint:ignore")
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			return "", "", false
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "ignore", "", true // malformed: no analyzer, no reason
		}
		return fields[0], strings.Join(fields[1:], " "), true
	}
	return "", "", false
}
