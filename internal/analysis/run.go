package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Run applies every analyzer to every package, resolves positions, filters
// suppressed findings, and returns the survivors sorted by position. A
// malformed suppression directive (missing reason) is reported as a
// diagnostic from the pseudo-analyzer "lintdirective" so it cannot hide a
// finding silently.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := collectSuppressions(pkg)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				d.Position = pkg.Fset.Position(d.Pos)
				if !sup.suppresses(a.Name, d.Position) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// RunDir loads patterns relative to dir and runs analyzers over the result.
func RunDir(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return Run(pkgs, analyzers)
}

// suppressionKey identifies one line of one file.
type suppressionKey struct {
	file string
	line int
}

// suppressions maps file:line to the set of analyzer names silenced there.
// The special name "deterministic" (from //lint:deterministic) silences
// maprange only.
type suppressions map[suppressionKey]map[string]bool

func (s suppressions) suppresses(analyzer string, pos token.Position) bool {
	names := s[suppressionKey{pos.Filename, pos.Line}]
	if names[analyzer] {
		return true
	}
	return analyzer == "maprange" && names["deterministic"]
}

// collectSuppressions scans every comment in pkg for lint directives. A
// directive covers its own line and, when it stands alone on a line, the
// line directly below — so it can trail the offending statement or sit
// immediately above it. Directives with no reason are returned as
// diagnostics instead of taking effect.
func collectSuppressions(pkg *Package) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	for _, f := range pkg.Syntax {
		// Lines that contain non-comment code, to distinguish trailing
		// directives from standalone ones.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return false
			}
			codeLines[pkg.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("//lint:%s directive needs a reason", name),
						Analyzer: "lintdirective",
						Position: pos,
					})
					continue
				}
				lines := []int{pos.Line}
				if !codeLines[pos.Line] {
					lines = append(lines, pos.Line+1)
				}
				for _, line := range lines {
					key := suppressionKey{pos.Filename, line}
					if sup[key] == nil {
						sup[key] = make(map[string]bool)
					}
					sup[key][name] = true
				}
			}
		}
	}
	return sup, bad
}

// parseDirective recognizes "//lint:ignore <name> <reason>" and
// "//lint:deterministic <reason>". For ignore directives it returns the
// target analyzer name; for deterministic ones it returns "deterministic".
func parseDirective(text string) (name, reason string, ok bool) {
	switch {
	case strings.HasPrefix(text, "//lint:ignore"):
		rest := strings.TrimPrefix(text, "//lint:ignore")
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			return "", "", false
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "ignore", "", true // malformed: no analyzer, no reason
		}
		return fields[0], strings.Join(fields[1:], " "), true
	case strings.HasPrefix(text, "//lint:deterministic"):
		rest := strings.TrimPrefix(text, "//lint:deterministic")
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			return "", "", false
		}
		return "deterministic", strings.TrimSpace(rest), true
	}
	return "", "", false
}
