package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ckptcomplete enforces the checkpoint completeness contract (DESIGN.md
// §15, §17): every field of a struct that a capture path reads must stay
// in lockstep with the struct's definition. The bug class it catches is
// silent divergence — someone adds a field to Proto or EngineState,
// forgets the matching enc.I64/state line, tests still pass (the digest
// only diverges after a resume), and reproduction breaks weeks later.
//
// Mechanics, in fact form:
//
//   - The declaring package of every named struct type exports a
//     CkptStructFact listing its fields, each with its declared position
//     and any //ckpt:skip <reason> directive found on (or directly above)
//     its declaration.
//   - Every package whose functions sit on a capture path — methods named
//     CaptureState, or any function taking a *checkpoint.Encoder — exports
//     a CkptPkgFact recording (a) which structs that path "checks" and
//     (b) which of their fields it reads. A struct is checked when it is
//     the receiver of a capture method, or when any bound variable of the
//     struct's type (receiver, parameter, local, range variable) has at
//     least one field read inside a capture function. Structs only passed
//     through opaquely (method calls, whole-value copies) are not checked:
//     types like sim.Timer that serialize via accessors stay out of scope
//     on purpose.
//   - Finish unions the coverage from every package (core and netsim both
//     encode packet.Packet fields, from different capture paths) and
//     reports every field of every checked struct that no capture path
//     reads and no //ckpt:skip exempts.
//
// The checkpoint package itself is exempt: its Encoder/Decoder internals
// are the serialization mechanism, not checkpointed state.
var CkptComplete = &Analyzer{
	Name: "ckptcomplete",
	Doc: "every field of a struct read by a CaptureState/encode path must be " +
		"covered by that path or carry //ckpt:skip <reason>",
	Run:       runCkptComplete,
	FactTypes: []Fact{(*CkptStructFact)(nil), (*CkptPkgFact)(nil)},
	Finish:    finishCkptComplete,
}

// checkpointPkg is the encoder package whose *Encoder parameter marks a
// function as a capture path.
const checkpointPkg = modulePath + "/internal/checkpoint"

// CkptField describes one field of a checkpoint-relevant struct.
type CkptField struct {
	Name   string `json:"name"`
	Pos    Pos    `json:"pos"`
	Skip   bool   `json:"skip,omitempty"`   // //ckpt:skip present
	Reason string `json:"reason,omitempty"` // its mandatory reason
}

// CkptStructFact lists the fields of one named struct type, exported by
// its declaring package so capture-path coverage anywhere in the module
// can be diffed against the authoritative definition.
type CkptStructFact struct {
	Fields []CkptField `json:"fields"`
}

func (*CkptStructFact) AFact() {}

// CkptPkgFact records one package's capture-path coverage: which structs
// its capture functions check, and which fields of each they read.
type CkptPkgFact struct {
	// Checked maps struct key → position of the capture function that
	// checks it (for the diagnostic's "checked at" context).
	Checked map[string]Pos `json:"checked,omitempty"`
	// Covered maps struct key → sorted field names read on a capture path.
	Covered map[string][]string `json:"covered,omitempty"`
}

func (*CkptPkgFact) AFact() {}

func runCkptComplete(pass *Pass) error {
	if pass.Pkg.Path() == checkpointPkg {
		return nil
	}

	// Phase 1 (declaring side): export the field list of every
	// package-level named struct type, with //ckpt:skip annotations
	// resolved. Reasonless //ckpt:skip is reported here, in the package
	// that owns the directive.
	skipByFile := make(map[*ast.File]map[int]string)
	for _, f := range pass.Files {
		skipByFile[f] = directiveLines(pass.Fset, f, "skip", parseCkptDirective)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if name, reason, ok := parseCkptDirective(c.Text); ok && name == "skip" && reason == "" {
					pass.Reportf(c.Pos(), "//ckpt:skip directive needs a reason")
				}
			}
		}
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		fact := &CkptStructFact{}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			pos := pass.Position(fld.Pos())
			cf := CkptField{Name: fld.Name(), Pos: MakePos(pos)}
			for _, f := range pass.Files {
				if pass.Position(f.Pos()).Filename != pos.Filename {
					continue
				}
				if reason, ok := skipByFile[f][pos.Line]; ok && reason != "" {
					cf.Skip, cf.Reason = true, reason
				}
			}
			fact.Fields = append(fact.Fields, cf)
		}
		pass.ExportObjectFact(tn, fact)
	}

	// Phase 2 (capturing side): walk every capture function, recording
	// field reads whose root resolves to a bound variable.
	cov := &CkptPkgFact{Checked: make(map[string]Pos), Covered: make(map[string][]string)}
	covered := make(map[string]map[string]bool)
	check := func(key string, pos Pos) {
		if key == "" {
			return
		}
		if _, ok := cov.Checked[key]; !ok {
			cov.Checked[key] = pos
		}
		if covered[key] == nil {
			covered[key] = make(map[string]bool)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isCaptureFunc(pass, fd) {
				continue
			}
			fnPos := MakePos(pass.Position(fd.Pos()))
			// The receiver struct of a capture method is checked
			// unconditionally: a CaptureState that reads nothing at all is
			// exactly the bug (every field unencoded), not a pass.
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if named, ok := deref(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)).(*types.Named); ok {
					if _, isStruct := named.Underlying().(*types.Struct); isStruct {
						check(StructKey(named), fnPos)
					}
				}
			}
			// FuncLits are walked too: sim.Engine.CaptureState does its
			// work through a local `add := func(...)` closure.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				se, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sel := pass.TypesInfo.Selections[se]
				if sel == nil || sel.Kind() != types.FieldVal || !rootIsBoundVar(pass, se) {
					return true
				}
				// Walk the (possibly promoted) selection path so coverage
				// lands on the struct that declares each traversed field.
				t := sel.Recv()
				for _, idx := range sel.Index() {
					named, _ := deref(t).(*types.Named)
					st, ok := deref(t).Underlying().(*types.Struct)
					if !ok || idx >= st.NumFields() {
						return true
					}
					fld := st.Field(idx)
					if named != nil {
						key := StructKey(named)
						check(key, fnPos)
						covered[key][fld.Name()] = true
					}
					t = fld.Type()
				}
				return true
			})
		}
	}
	for key, fields := range covered {
		names := make([]string, 0, len(fields))
		for n := range fields {
			names = append(names, n)
		}
		sort.Strings(names)
		cov.Covered[key] = names
	}
	if len(cov.Checked) > 0 {
		pass.ExportPackageFact(cov)
	}
	return nil
}

// isCaptureFunc reports whether fd sits on a capture path: a method named
// CaptureState (sim.Engine's takes no Encoder — it returns an EngineState
// value instead), or any function with a *checkpoint.Encoder parameter
// (core's captureState helpers, netsim's capturePacket, ...).
func isCaptureFunc(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil && fd.Name.Name == "CaptureState" {
		return true
	}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			if namedTypeIs(pass.TypesInfo.TypeOf(p.Type), checkpointPkg, "Encoder") {
				return true
			}
		}
	}
	return false
}

// rootIsBoundVar unwinds a selector chain (through selectors, indexing,
// parens, derefs) to its root expression and reports whether that root is
// an identifier naming a non-field variable — a receiver, parameter,
// local, or range variable holding the value being serialized. Roots that
// are call results or global state don't bind a checked struct.
func rootIsBoundVar(pass *Pass, se *ast.SelectorExpr) bool {
	e := ast.Expr(se)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[x].(*types.Var)
			return ok && !v.IsField()
		default:
			return false
		}
	}
}

func finishCkptComplete(fp *FinishPass) error {
	// Union checked structs and field coverage across every package's
	// capture paths.
	checked := make(map[string]Pos)
	covered := make(map[string]map[string]bool)
	for _, kf := range fp.AllPackageFacts((*CkptPkgFact)(nil)) {
		pf := kf.Fact.(*CkptPkgFact)
		for key, pos := range pf.Checked {
			if _, ok := checked[key]; !ok {
				checked[key] = pos
			}
			if covered[key] == nil {
				covered[key] = make(map[string]bool)
			}
		}
		for key, fields := range pf.Covered {
			if covered[key] == nil {
				covered[key] = make(map[string]bool)
			}
			for _, f := range fields {
				covered[key][f] = true
			}
		}
	}
	keys := make([]string, 0, len(checked))
	for key := range checked {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		var sf CkptStructFact
		if !fp.ObjectFact(key, &sf) {
			// No field list: a struct outside the module (or without
			// fields). Nothing to diff against.
			continue
		}
		for _, fld := range sf.Fields {
			if fld.Skip || covered[key][fld.Name] {
				continue
			}
			fp.Report(Diagnostic{
				Message: fmt.Sprintf(
					"field %s.%s is reachable from the capture path at %s but never encoded; encode it or mark it //ckpt:skip <reason>",
					prettyKey(key), fld.Name, checked[key]),
				Position: fld.Pos.Position(),
				Suggest:  "//ckpt:skip <why resume is byte-identical without this field>",
			})
		}
	}
	return nil
}

// parseCkptDirective recognizes "//ckpt:skip <reason>".
func parseCkptDirective(text string) (name, reason string, ok bool) {
	if !strings.HasPrefix(text, "//ckpt:skip") {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, "//ckpt:skip")
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	return "skip", strings.TrimSpace(rest), true
}
