package analysis

import (
	"go/ast"
	"go/types"
)

// atomicfield enforces exclusive sync/atomic discipline on fields the
// package manages atomically (DESIGN.md §16–17). The hybrid barrier
// (internal/sim/barrier.go) and the sharded fabric counters stay correct
// under -race only because every access to their coordination fields goes
// through sync/atomic; one plain `s.parked = 0` compiles fine, passes
// single-shard tests, and races only under load.
//
// Two flavors of atomic field, two detection paths:
//
//   - Typed atomics (atomic.Int32, atomic.Uint64, ...): declared atomic by
//     their type. The only legal use of such a field is as the receiver of
//     a method call (Load/Store/Add/CAS); anything else — taking its
//     address to pass around, copying it, ranging over it — is reported
//     immediately, in whatever package the access occurs.
//   - Legacy pointer-style (atomic.AddInt64(&x.f, 1)): the first
//     &x.f-style argument of a sync/atomic call marks the field, and the
//     declaring (or any observing) package exports an AtomicFieldFact on
//     it. Plain reads and writes of a marked field are reported — in the
//     marking package itself and, via fact import, in every package
//     analyzed after it (its dependents). The one exemption is
//     constructor-shaped functions: a function that creates the containing
//     struct (composite literal, new, or var declaration of the type) may
//     initialize the field plainly, since nothing else can hold a
//     reference yet.
//
// Known limit, accepted: a package that is neither the marker nor its
// dependent (a topological sibling) is analyzed before the fact exists and
// escapes the pointer-style check. Typed atomics — the repo's convention —
// have no such gap, which is itself an argument for preferring them.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "fields managed via sync/atomic must never be read or written " +
		"plainly outside the containing struct's construction",
	Run:       runAtomicField,
	FactTypes: []Fact{(*AtomicFieldFact)(nil)},
}

// AtomicFieldFact marks one struct field as managed by pointer-style
// sync/atomic calls. Pos is the marking call site, quoted in diagnostics
// so the reader can see why the field is off-limits.
type AtomicFieldFact struct {
	Pos Pos `json:"pos"`
}

func (*AtomicFieldFact) AFact() {}

// atomicTypeNames are sync/atomic's typed-atomic wrappers.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo

	// Sub-pass 1: find pointer-style atomic call sites. Every &x.f passed
	// to a sync/atomic function marks field f and sanctions that
	// particular selector node.
	marked := make(map[*types.Var]Pos)    // field → marking site (this package)
	sanctioned := make(map[ast.Node]bool) // selectors inside atomic call args
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObject(info, call.Fun)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				se, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldVarOf(info, se); fld != nil {
					sanctioned[se] = true
					if _, dup := marked[fld]; !dup {
						pos := MakePos(pass.Position(un.Pos()))
						marked[fld] = pos
						pass.ExportObjectFact(fld, &AtomicFieldFact{Pos: pos})
					}
				}
			}
			return true
		})
	}

	// Sub-pass 2: check every field selector. Constructor-shaped functions
	// are identified up front per function declaration.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			constructed := constructedTypes(info, fd.Body)
			inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				se, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fld := fieldVarOf(info, se)
				if fld == nil {
					return true
				}
				// Typed atomics: the selector must be the receiver of a
				// further selection (its method) — atomic types export
				// nothing else, so parent-is-selector means method use.
				if isAtomicType(fld.Type()) {
					if len(stack) > 0 {
						if p, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && p.X == se {
							return true
						}
					}
					pass.Reportf(se.Sel.Pos(),
						"field %s has atomic type %s and may only be used as a method-call receiver",
						fld.Name(), fld.Type())
					return true
				}
				// Pointer-style: plain access to a marked field, outside
				// the sanctioned call args and construction.
				if sanctioned[se] {
					return true
				}
				site, isMarked := marked[fld]
				if !isMarked {
					var fact AtomicFieldFact
					if !pass.ImportObjectFact(fld, &fact) {
						return true
					}
					site = fact.Pos
				}
				if owner := owningNamed(info, se); owner != nil && constructed[owner.Origin()] {
					return true
				}
				pass.Reportf(se.Sel.Pos(),
					"field %s is managed by sync/atomic (e.g. at %s) and must not be accessed plainly",
					fld.Name(), site)
				return true
			})
		}
	}
	return nil
}

// fieldVarOf returns the struct field se selects, or nil.
func fieldVarOf(info *types.Info, se *ast.SelectorExpr) *types.Var {
	sel := info.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return nil
	}
	v, _ := sel.Obj().(*types.Var)
	return v
}

// owningNamed returns the named struct type that directly declares the
// field se selects (resolving through embedded promotions), or nil.
func owningNamed(info *types.Info, se *ast.SelectorExpr) *types.Named {
	sel := info.Selections[se]
	if sel == nil {
		return nil
	}
	t := sel.Recv()
	var owner *types.Named
	for _, idx := range sel.Index() {
		named, _ := deref(t).(*types.Named)
		st, ok := deref(t).Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return nil
		}
		owner = named
		t = st.Field(idx).Type()
	}
	return owner
}

// isAtomicType reports whether t is one of sync/atomic's typed wrappers.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

// constructedTypes returns the named struct types body creates: composite
// literals, new(T), and var declarations of T. A function that constructs
// the value owns it exclusively until it escapes, so plain initialization
// of its atomic-managed fields there is safe.
func constructedTypes(info *types.Info, body *ast.BlockStmt) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	add := func(t types.Type) {
		if named, ok := deref(t).(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				out[named.Origin()] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			add(info.TypeOf(x))
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && len(x.Args) == 1 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
					add(info.TypeOf(x.Args[0]))
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				add(info.TypeOf(x.Type))
			}
		}
		return true
	})
	return out
}
