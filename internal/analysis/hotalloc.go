package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// hotalloc enforces the zero-allocation contract on hot paths (DESIGN.md
// §17). The 0-alloc benchmarks (BenchmarkOnPacket, the ladder ops, barrier
// epochs) already gate allocations at the root function, but a benchmark
// only measures the call tree it happens to exercise; a new allocation in
// a rarely-taken branch, or in a helper three calls down, slips through
// until a perf regression shows up as a digest-preserving slowdown.
// hotalloc closes that statically: a function marked //lint:hotpath
// <reason>, plus everything it statically calls inside the module, must
// contain no allocation sites.
//
// Per package, Run exports an AllocProfileFact for every function: whether
// it is marked hot (//lint:hotpath) or cold (//lint:coldpath — e.g. the
// ladder's grow path, amortized and deliberately allocating), its
// syntactic allocation sites, and its static in-module callees. Finish
// walks the call graph from every hot root, stops at cold nodes, and
// reports each reachable allocation once.
//
// Allocation sites recognized (conservative — provability, not escape
// analysis, decides):
//
//   - make, new, append (growth is statically unknowable, so all appends)
//   - &T{...} composite literals, and slice/map literals anywhere
//   - conversions between string and []byte/[]rune
//   - func literals that capture variables of the enclosing function
//   - concrete, non-pointer-shaped values passed to interface parameters
//     (including variadic ...interface{})
//
// Escapes: a site that provably cannot allocate (appends into
// pre-grown capacity, a composite literal the compiler keeps on the
// stack) carries //lint:ignore hotalloc <reason>; a whole deliberate slow
// path carries //lint:coldpath <reason> on its function. Calls through
// interfaces or function values are not resolvable statically and are not
// traversed — the benchmarks still cover those.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "//lint:hotpath functions and their static in-module callees must " +
		"not contain allocation sites",
	Run:       runHotAlloc,
	FactTypes: []Fact{(*AllocProfileFact)(nil)},
	Finish:    finishHotAlloc,
}

// AllocSite is one syntactic allocation inside a function.
type AllocSite struct {
	Pos  Pos    `json:"pos"`
	What string `json:"what"`
}

// AllocProfileFact is one function's hot-path profile: markings,
// allocation sites, and static in-module call edges.
type AllocProfileFact struct {
	Hot    bool        `json:"hot,omitempty"`
	Cold   bool        `json:"cold,omitempty"`
	Allocs []AllocSite `json:"allocs,omitempty"`
	Calls  []string    `json:"calls,omitempty"` // callee fact keys, sorted
}

func (*AllocProfileFact) AFact() {}

func runHotAlloc(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		hotLines := directiveLines(pass.Fset, f, "hotpath", parseDirective)
		coldLines := directiveLines(pass.Fset, f, "coldpath", parseDirective)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			prof := &AllocProfileFact{}
			line := pass.Position(fd.Pos()).Line
			if r, ok := hotLines[line]; ok && r != "" {
				prof.Hot = true
			}
			if r, ok := coldLines[line]; ok && r != "" {
				prof.Cold = true
			}
			prof.Allocs, prof.Calls = scanFuncBody(pass, fd)
			if prof.Hot || prof.Cold || len(prof.Allocs) > 0 || len(prof.Calls) > 0 {
				pass.ExportObjectFact(fn, prof)
			}
		}
	}
	return nil
}

// scanFuncBody collects fd's allocation sites and static in-module call
// edges. Nested func literals are scanned only for the capture check: a
// closure body runs on its own activation, and if the closure itself is
// hot it carries its own marking (closures aren't keyable, so in practice
// hot closures are hoisted to methods — which the capture rule nudges
// toward anyway).
func scanFuncBody(pass *Pass, fd *ast.FuncDecl) ([]AllocSite, []string) {
	info := pass.TypesInfo
	var allocs []AllocSite
	calls := make(map[string]bool)
	counted := make(map[ast.Node]bool) // composite lits already reported via &
	site := func(n ast.Node, what string) {
		allocs = append(allocs, AllocSite{Pos: MakePos(pass.Position(n.Pos())), What: what})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if capturesOuterVars(info, fd, x) {
				site(x, "closure capturing outer variables")
			}
			return false // interior allocs belong to the literal, not fd
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if lit, ok := x.X.(*ast.CompositeLit); ok {
					site(x, "escaping composite literal")
					counted[lit] = true
				}
			}
		case *ast.CompositeLit:
			if counted[x] {
				return true
			}
			switch deref(info.TypeOf(x)).Underlying().(type) {
			case *types.Slice:
				site(x, "slice literal")
			case *types.Map:
				site(x, "map literal")
			}
		case *ast.CallExpr:
			scanCall(pass, x, site, calls)
		}
		return true
	})
	out := make([]string, 0, len(calls))
	for k := range calls {
		out = append(out, k)
	}
	sort.Strings(out)
	return allocs, out
}

// scanCall classifies one call expression: allocating builtin, allocating
// conversion, interface-boxing arguments, or a static call edge.
func scanCall(pass *Pass, call *ast.CallExpr, site func(ast.Node, string), calls map[string]bool) {
	info := pass.TypesInfo
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				site(call, "make")
			case "new":
				site(call, "new")
			case "append":
				site(call, "append growth")
			}
			return
		}
	}
	// Conversions: T(x) where Fun names a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if isStringByteConv(dst, src) {
			site(call, "string conversion")
		}
		return
	}
	// Interface boxing at the call boundary.
	if fn := funcObject(info, call.Fun); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			checkBoxing(pass, call, sig, site)
		}
		if fn.Pkg() != nil && hasPathPrefix(fn.Pkg().Path(), modulePath) {
			if key, ok := pass.ObjectKey(fn); ok {
				calls[key] = true
			}
		}
		return
	}
	// Dynamic call (function value, interface method on unresolvable
	// receiver): not traversable; the boxing check still applies if the
	// signature is known.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		checkBoxing(pass, call, sig, site)
	}
}

// checkBoxing reports args whose concrete, non-pointer-shaped value is
// passed to an interface parameter — the conversion heap-boxes the value.
func checkBoxing(pass *Pass, call *ast.CallExpr, sig *types.Signature, site func(ast.Node, string)) {
	if call.Ellipsis.IsValid() {
		return // slice passed through verbatim, no boxing here
	}
	info := pass.TypesInfo
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		site(arg, fmt.Sprintf("interface conversion of %s", at))
	}
}

// isPointerShaped reports whether converting a value of type t to an
// interface stores it inline (single pointer word) rather than boxing.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// isStringByteConv reports whether dst(src) converts between string and
// []byte/[]rune — conversions that copy.
func isStringByteConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Kind() == types.String
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}

// capturesOuterVars reports whether lit references variables declared in
// the enclosing function outside the literal itself — captures that force
// a heap-allocated closure (and often heap-promote the captured variable).
func capturesOuterVars(info *types.Info, outer *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= outer.Pos() && v.Pos() < outer.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

func finishHotAlloc(fp *FinishPass) error {
	profiles := make(map[string]*AllocProfileFact)
	var roots []string
	for _, kf := range fp.AllObjectFacts((*AllocProfileFact)(nil)) {
		prof := kf.Fact.(*AllocProfileFact)
		profiles[kf.Object] = prof
		if prof.Hot {
			roots = append(roots, kf.Object)
		}
	}
	sort.Strings(roots)
	reported := make(map[Pos]bool)
	for _, root := range roots {
		// BFS over static call edges, skipping cold nodes.
		queue := []string{root}
		visited := map[string]bool{root: true}
		for len(queue) > 0 {
			key := queue[0]
			queue = queue[1:]
			prof := profiles[key]
			if prof == nil {
				continue // leaf with no profile: no allocs, no calls
			}
			if prof.Cold && key != root {
				continue
			}
			for _, a := range prof.Allocs {
				if reported[a.Pos] {
					continue
				}
				reported[a.Pos] = true
				where := prettyKey(key)
				msg := fmt.Sprintf("%s in hot-path function %s", a.What, where)
				if key != root {
					msg += fmt.Sprintf(" (reached from //lint:hotpath root %s)", prettyKey(root))
				}
				fp.Report(Diagnostic{
					Message:  msg,
					Position: a.Pos.Position(),
					Suggest:  "//lint:ignore hotalloc <why this site cannot allocate in practice>, or //lint:coldpath <reason> on the containing function",
				})
			}
			for _, callee := range prof.Calls {
				if !visited[callee] {
					visited[callee] = true
					queue = append(queue, callee)
				}
			}
		}
	}
	return nil
}
