package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRand forbids the process-global math/rand entry points everywhere
// in the module. The simulator's reproducibility contract requires every
// random draw to come from a seeded *rand.Rand (plumbed from the run seed
// through splitmix64 per-device streams); the package-level functions
// share one auto-seeded global source, so a single rand.Intn silently
// invalidates every golden digest. Constructors (rand.New, rand.NewSource,
// rand.NewZipf, and the rand/v2 equivalents) stay legal — unless their
// seed expression reads the wall clock, which is the classic
// rand.NewSource(time.Now().UnixNano()) antipattern.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid global math/rand functions and wall-clock seeds; " +
		"randomness must flow from seeded *rand.Rand streams",
	Run: runGlobalRand,
}

var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand etc. are the sanctioned API
			}
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(sel.Pos(),
					"use of global %s.%s draws from the shared auto-seeded source; use a seeded *rand.Rand",
					fn.Pkg().Name(), fn.Name())
			}
			return true
		})
		// Constructors seeded from the wall clock defeat reproducibility
		// just as thoroughly as the global functions.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObject(pass.TypesInfo, call.Fun)
			if fn == nil || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] ||
				!strings.HasPrefix(fn.Name(), "New") {
				return true
			}
			for _, arg := range call.Args {
				if callsInto(pass.TypesInfo, arg, "time", "Now") {
					pass.Reportf(call.Pos(),
						"%s.%s seeded from time.Now is nondeterministic; plumb the run seed instead",
						fn.Pkg().Name(), fn.Name())
					break
				}
			}
			return true
		})
	}
	return nil
}
