package workload

import (
	"math/rand"
	"sort"

	"dcpim/internal/sim"
)

// Flow is one transfer request: Size payload bytes from Src to Dst,
// arriving at the sender at Arrival.
type Flow struct {
	ID      uint64
	Src     int
	Dst     int
	Size    int64
	Arrival sim.Time
}

// Trace is a time-ordered set of flows plus bookkeeping for load math.
type Trace struct {
	Flows        []Flow
	OfferedBytes int64        // total payload bytes with arrival < Horizon
	Horizon      sim.Duration // generation horizon
}

// sortByArrival puts flows in arrival order with a stable ID tie-break so
// traces are deterministic.
func (t *Trace) sortByArrival() {
	sort.Slice(t.Flows, func(i, j int) bool {
		if t.Flows[i].Arrival != t.Flows[j].Arrival {
			return t.Flows[i].Arrival < t.Flows[j].Arrival
		}
		return t.Flows[i].ID < t.Flows[j].ID
	})
}

// AllToAllConfig generates the paper's default traffic pattern: every host
// is a sender with Poisson flow arrivals; each flow picks a uniformly
// random receiver other than the sender; sizes come from Dist. Load is the
// fraction of per-host access bandwidth offered.
type AllToAllConfig struct {
	Hosts    int
	HostRate float64 // bits per second
	Load     float64 // 0..1 fraction of access bandwidth
	Dist     SizeDist
	Horizon  sim.Duration
	Seed     int64
}

// Generate produces the flow trace.
func (c AllToAllConfig) Generate() *Trace {
	rng := rand.New(rand.NewSource(c.Seed))
	// Per-sender arrival rate: load·rate/8 bytes per second ÷ mean size.
	lambda := c.Load * c.HostRate / 8 / c.Dist.Mean() // flows per second
	tr := &Trace{Horizon: c.Horizon}
	var id uint64
	for src := 0; src < c.Hosts; src++ {
		t := sim.Time(0)
		for {
			// Exponential inter-arrival.
			gap := sim.FromSeconds(rng.ExpFloat64() / lambda)
			t = t.Add(gap)
			if sim.Duration(t) >= c.Horizon {
				break
			}
			dst := rng.Intn(c.Hosts - 1)
			if dst >= src {
				dst++
			}
			size := c.Dist.Sample(rng)
			id++
			tr.Flows = append(tr.Flows, Flow{ID: id, Src: src, Dst: dst, Size: size, Arrival: t})
			tr.OfferedBytes += size
		}
	}
	tr.sortByArrival()
	reID(tr)
	return tr
}

// IncastConfig adds periodic incast bursts (the paper's "bursty" pattern
// and the Fig. 4a microbenchmark): every Interval, Fanin senders each send
// one flow of BurstSize bytes to a single receiver.
type IncastConfig struct {
	Senders   []int // pool of incast senders
	Receivers []int // receivers; each burst targets one, round-robin
	Fanin     int   // senders per burst (e.g. 50)
	BurstSize int64 // bytes per incast flow (e.g. 128 KB)
	Interval  sim.Duration
	Start     sim.Time
	Bursts    int // number of bursts (0 = fill horizon)
	Horizon   sim.Duration
	Seed      int64
}

// Generate produces the incast flow trace.
func (c IncastConfig) Generate() *Trace {
	rng := rand.New(rand.NewSource(c.Seed))
	tr := &Trace{Horizon: c.Horizon}
	var id uint64
	t := c.Start
	for b := 0; ; b++ {
		if c.Bursts > 0 && b >= c.Bursts {
			break
		}
		if sim.Duration(t) >= c.Horizon {
			break
		}
		dst := c.Receivers[b%len(c.Receivers)]
		// Pick Fanin distinct senders, excluding the receiver.
		perm := rng.Perm(len(c.Senders))
		picked := 0
		for _, pi := range perm {
			src := c.Senders[pi]
			if src == dst {
				continue
			}
			id++
			tr.Flows = append(tr.Flows, Flow{ID: id, Src: src, Dst: dst, Size: c.BurstSize, Arrival: t})
			tr.OfferedBytes += c.BurstSize
			picked++
			if picked == c.Fanin {
				break
			}
		}
		t = t.Add(c.Interval)
	}
	tr.sortByArrival()
	reID(tr)
	return tr
}

// DenseTMConfig generates the paper's dense-traffic-matrix microbenchmark
// (Fig. 4c): at time zero every sender has one long flow to every receiver
// (n×(n−1) flows of FlowSize bytes).
type DenseTMConfig struct {
	Hosts    int
	FlowSize int64
	Horizon  sim.Duration
}

// Generate produces the dense matrix trace.
func (c DenseTMConfig) Generate() *Trace {
	tr := &Trace{Horizon: c.Horizon}
	var id uint64
	for src := 0; src < c.Hosts; src++ {
		for dst := 0; dst < c.Hosts; dst++ {
			if src == dst {
				continue
			}
			id++
			tr.Flows = append(tr.Flows, Flow{ID: id, Src: src, Dst: dst, Size: c.FlowSize, Arrival: 0})
			tr.OfferedBytes += c.FlowSize
		}
	}
	tr.sortByArrival()
	reID(tr)
	return tr
}

// Merge combines traces into one time-ordered trace with fresh unique IDs.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		out.Flows = append(out.Flows, t.Flows...)
		out.OfferedBytes += t.OfferedBytes
		if t.Horizon > out.Horizon {
			out.Horizon = t.Horizon
		}
	}
	out.sortByArrival()
	reID(out)
	return out
}

// reID renumbers flows 1..n in arrival order so IDs are dense and unique
// regardless of how traces were combined.
func reID(t *Trace) {
	for i := range t.Flows {
		t.Flows[i].ID = uint64(i + 1)
	}
}

// SubsetAllToAll generates Poisson all-to-all traffic restricted to
// explicit sender and receiver sets (the Fig. 4a shuffle: 16 senders in one
// rack to 16 receivers in another).
type SubsetAllToAll struct {
	Senders   []int
	Receivers []int
	HostRate  float64
	Load      float64
	Dist      SizeDist
	Horizon   sim.Duration
	Seed      int64
}

// Generate produces the flow trace.
func (c SubsetAllToAll) Generate() *Trace {
	rng := rand.New(rand.NewSource(c.Seed))
	lambda := c.Load * c.HostRate / 8 / c.Dist.Mean()
	tr := &Trace{Horizon: c.Horizon}
	var id uint64
	for _, src := range c.Senders {
		t := sim.Time(0)
		for {
			t = t.Add(sim.FromSeconds(rng.ExpFloat64() / lambda))
			if sim.Duration(t) >= c.Horizon {
				break
			}
			dst := c.Receivers[rng.Intn(len(c.Receivers))]
			if dst == src {
				continue
			}
			size := c.Dist.Sample(rng)
			id++
			tr.Flows = append(tr.Flows, Flow{ID: id, Src: src, Dst: dst, Size: size, Arrival: t})
			tr.OfferedBytes += size
		}
	}
	tr.sortByArrival()
	reID(tr)
	return tr
}

// PermutationConfig generates permutation traffic: every host sends one
// flow of FlowSize bytes to a distinct partner (a random derangement) at
// time zero — the classic stress pattern where a perfect matching exists
// and an ideal scheduler reaches 100% utilization.
type PermutationConfig struct {
	Hosts    int
	FlowSize int64
	Horizon  sim.Duration
	Seed     int64
}

// Generate produces the permutation trace.
func (c PermutationConfig) Generate() *Trace {
	rng := rand.New(rand.NewSource(c.Seed))
	// Sattolo's algorithm yields a uniform cyclic permutation: no host
	// maps to itself.
	perm := make([]int, c.Hosts)
	for i := range perm {
		perm[i] = i
	}
	for i := c.Hosts - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	tr := &Trace{Horizon: c.Horizon}
	for src, dst := range perm {
		tr.Flows = append(tr.Flows, Flow{
			ID: uint64(src + 1), Src: src, Dst: dst, Size: c.FlowSize, Arrival: 0,
		})
		tr.OfferedBytes += c.FlowSize
	}
	tr.sortByArrival()
	reID(tr)
	return tr
}
