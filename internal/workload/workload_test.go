package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

func TestNewEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical("x", []CDFPoint{{100, 1}}); err == nil {
		t.Error("accepted single point")
	}
	if _, err := NewEmpirical("x", []CDFPoint{{100, 0.5}, {50, 1}}); err == nil {
		t.Error("accepted decreasing sizes")
	}
	if _, err := NewEmpirical("x", []CDFPoint{{100, 0.5}, {200, 0.4}}); err == nil {
		t.Error("accepted decreasing probabilities")
	}
	if _, err := NewEmpirical("x", []CDFPoint{{100, 0.5}, {200, 0.9}}); err == nil {
		t.Error("accepted CDF not ending at 1")
	}
	if _, err := NewEmpirical("x", []CDFPoint{{100, 0.5}, {200, 1.0}}); err != nil {
		t.Errorf("rejected valid CDF: %v", err)
	}
}

func TestBuiltinsLoad(t *testing.T) {
	for _, name := range []string{"IMC10", "WebSearch", "DataMining"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Mean() <= 0 {
			t.Fatalf("%s: non-positive mean", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

// Sampled mean must match the analytic mean within Monte-Carlo error, and
// samples must stay within the distribution's support.
func TestSampleMatchesMean(t *testing.T) {
	for _, d := range []*EmpiricalDist{IMC10(), WebSearch(), DataMining()} {
		rng := rand.New(rand.NewSource(7))
		const n = 300_000
		var sum float64
		lo := d.points[0].Bytes
		hi := d.points[len(d.points)-1].Bytes
		for i := 0; i < n; i++ {
			s := d.Sample(rng)
			if s < lo || s > hi {
				t.Fatalf("%s: sample %d outside support [%d,%d]", d.Name(), s, lo, hi)
			}
			sum += float64(s)
		}
		got := sum / n
		// Heavy tails make the estimator noisy; 10% suffices to catch
		// sign/unit errors.
		if math.Abs(got-d.Mean()) > 0.10*d.Mean() {
			t.Errorf("%s: sampled mean %.0f vs analytic %.0f", d.Name(), got, d.Mean())
		}
	}
}

// The workload shapes the paper relies on: IMC10 and DataMining are
// dominated by short flows; DataMining has by far the heaviest byte tail.
func TestWorkloadShapes(t *testing.T) {
	countShort := func(d SizeDist, thresh int64) float64 {
		rng := rand.New(rand.NewSource(11))
		short := 0
		const n = 100_000
		for i := 0; i < n; i++ {
			if d.Sample(rng) <= thresh {
				short++
			}
		}
		return float64(short) / n
	}
	bdp := int64(72500)
	if f := countShort(IMC10(), bdp); f < 0.85 {
		t.Errorf("IMC10: only %.2f of flows ≤ 1 BDP, want most", f)
	}
	if f := countShort(DataMining(), 10*1436); f < 0.75 {
		t.Errorf("DataMining: only %.2f of flows ≤ 10 pkts, want ≥0.75", f)
	}
	if DataMining().Mean() < 5*WebSearch().Mean() {
		t.Errorf("DataMining mean %.0f not ≫ WebSearch mean %.0f",
			DataMining().Mean(), WebSearch().Mean())
	}
}

func TestFixedDist(t *testing.T) {
	d := FixedDist{Size: 73001}
	if d.Sample(nil) != 73001 || d.Mean() != 73001 {
		t.Fatal("FixedDist sample/mean mismatch")
	}
	if d.Name() != "Fixed(73001B)" {
		t.Fatalf("Name = %q", d.Name())
	}
	if (FixedDist{Size: 5, Tag: "BDP+1"}).Name() != "BDP+1" {
		t.Fatal("Tag not used")
	}
}

func TestAllToAllLoad(t *testing.T) {
	cfg := AllToAllConfig{
		Hosts: 16, HostRate: 100e9, Load: 0.6,
		Dist: IMC10(), Horizon: 2 * sim.Millisecond, Seed: 1,
	}
	tr := cfg.Generate()
	if len(tr.Flows) == 0 {
		t.Fatal("no flows generated")
	}
	// Offered load should be close to 60% of aggregate access bandwidth.
	offered := float64(tr.OfferedBytes) * 8 / tr.Horizon.Seconds()
	capacity := float64(cfg.Hosts) * cfg.HostRate
	got := offered / capacity
	if math.Abs(got-0.6) > 0.12 {
		t.Fatalf("offered load = %.3f, want ≈0.6", got)
	}
	// No self-flows; arrival-sorted; dense IDs.
	var last sim.Time
	for i, f := range tr.Flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if f.Arrival < last {
			t.Fatal("not sorted by arrival")
		}
		last = f.Arrival
		if f.ID != uint64(i+1) {
			t.Fatal("IDs not dense")
		}
		if f.Src < 0 || f.Src >= 16 || f.Dst < 0 || f.Dst >= 16 {
			t.Fatal("host out of range")
		}
	}
}

func TestAllToAllDeterminism(t *testing.T) {
	cfg := AllToAllConfig{Hosts: 8, HostRate: 100e9, Load: 0.5,
		Dist: WebSearch(), Horizon: sim.Millisecond, Seed: 42}
	a, b := cfg.Generate(), cfg.Generate()
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("non-deterministic flow count")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("non-deterministic trace")
		}
	}
	cfg.Seed = 43
	c := cfg.Generate()
	if len(c.Flows) == len(a.Flows) && len(a.Flows) > 0 && c.Flows[0] == a.Flows[0] {
		t.Fatal("different seed produced identical trace")
	}
}

func TestIncastPattern(t *testing.T) {
	senders := make([]int, 60)
	for i := range senders {
		senders[i] = i + 32
	}
	cfg := IncastConfig{
		Senders: senders, Receivers: []int{3}, Fanin: 50,
		BurstSize: 128 << 10, Interval: 100 * sim.Microsecond,
		Bursts: 6, Horizon: sim.Millisecond, Seed: 9,
	}
	tr := cfg.Generate()
	if len(tr.Flows) != 300 {
		t.Fatalf("flows = %d, want 6 bursts × 50", len(tr.Flows))
	}
	byBurst := map[sim.Time]int{}
	for _, f := range tr.Flows {
		if f.Dst != 3 || f.Size != 128<<10 {
			t.Fatalf("bad incast flow %+v", f)
		}
		byBurst[f.Arrival]++
	}
	if len(byBurst) != 6 {
		t.Fatalf("distinct burst times = %d, want 6", len(byBurst))
	}
	for at, n := range byBurst {
		if n != 50 {
			t.Fatalf("burst at %v has %d flows, want 50", at, n)
		}
	}
}

func TestIncastExcludesReceiverAndDistinctSenders(t *testing.T) {
	cfg := IncastConfig{
		Senders: []int{0, 1, 2, 3, 4}, Receivers: []int{2}, Fanin: 4,
		BurstSize: 1000, Interval: sim.Microsecond, Bursts: 1,
		Horizon: sim.Millisecond, Seed: 5,
	}
	tr := cfg.Generate()
	if len(tr.Flows) != 4 {
		t.Fatalf("flows = %d, want 4", len(tr.Flows))
	}
	seen := map[int]bool{}
	for _, f := range tr.Flows {
		if f.Src == 2 {
			t.Fatal("receiver used as incast sender")
		}
		if seen[f.Src] {
			t.Fatal("duplicate incast sender")
		}
		seen[f.Src] = true
	}
}

func TestDenseTM(t *testing.T) {
	tr := DenseTMConfig{Hosts: 12, FlowSize: 1 << 20, Horizon: sim.Millisecond}.Generate()
	if len(tr.Flows) != 12*11 {
		t.Fatalf("flows = %d, want 132", len(tr.Flows))
	}
	pairs := map[[2]int]bool{}
	for _, f := range tr.Flows {
		if f.Arrival != 0 || f.Size != 1<<20 || f.Src == f.Dst {
			t.Fatalf("bad dense flow %+v", f)
		}
		pairs[[2]int{f.Src, f.Dst}] = true
	}
	if len(pairs) != 132 {
		t.Fatal("duplicate pairs in dense TM")
	}
}

func TestMerge(t *testing.T) {
	a := AllToAllConfig{Hosts: 4, HostRate: 100e9, Load: 0.3,
		Dist: IMC10(), Horizon: 200 * sim.Microsecond, Seed: 1}.Generate()
	b := IncastConfig{Senders: []int{0, 1, 2}, Receivers: []int{3}, Fanin: 2,
		BurstSize: 5000, Interval: 50 * sim.Microsecond, Bursts: 3,
		Horizon: 200 * sim.Microsecond, Seed: 2}.Generate()
	m := Merge(a, b)
	if len(m.Flows) != len(a.Flows)+len(b.Flows) {
		t.Fatal("merge lost flows")
	}
	if m.OfferedBytes != a.OfferedBytes+b.OfferedBytes {
		t.Fatal("merge lost bytes")
	}
	for i, f := range m.Flows {
		if f.ID != uint64(i+1) {
			t.Fatal("merged IDs not dense")
		}
		if i > 0 && f.Arrival < m.Flows[i-1].Arrival {
			t.Fatal("merged trace unsorted")
		}
	}
}

func TestSubsetAllToAll(t *testing.T) {
	sends := []int{0, 1, 2, 3}
	recvs := []int{8, 9, 10, 11}
	tr := SubsetAllToAll{Senders: sends, Receivers: recvs, HostRate: 100e9,
		Load: 0.5, Dist: IMC10(), Horizon: sim.Millisecond, Seed: 3}.Generate()
	if len(tr.Flows) == 0 {
		t.Fatal("no flows")
	}
	for _, f := range tr.Flows {
		if f.Src > 3 || f.Dst < 8 {
			t.Fatalf("flow outside subsets: %+v", f)
		}
	}
}

// Property: CDF sampling is monotone in the uniform variate — a larger
// variate never yields a smaller size. We verify indirectly: quantiles of
// a large sample are non-decreasing.
func TestSampleQuantileMonotonicity(t *testing.T) {
	d := WebSearch()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prev := int64(0)
		// Invert CDF at increasing deterministic points via many samples:
		// approximate by checking support bounds and positivity instead.
		for i := 0; i < 100; i++ {
			s := d.Sample(rng)
			if s < packet.PayloadSize || s > pkts(30000) {
				return false
			}
			_ = prev
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: generated all-to-all traces respect the horizon and offered
// byte accounting.
func TestTraceAccountingProperty(t *testing.T) {
	f := func(seed int64, loadPct uint8) bool {
		load := 0.1 + float64(loadPct%80)/100
		cfg := AllToAllConfig{Hosts: 6, HostRate: 10e9, Load: load,
			Dist: IMC10(), Horizon: 500 * sim.Microsecond, Seed: seed}
		tr := cfg.Generate()
		var sum int64
		for _, fl := range tr.Flows {
			if sim.Duration(fl.Arrival) >= tr.Horizon {
				return false
			}
			sum += fl.Size
		}
		return sum == tr.OfferedBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedDist(t *testing.T) {
	d := TruncatedDist{Base: IMC10(), Max: 1 << 20}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		if s := d.Sample(rng); s > 1<<20 || s < 1 {
			t.Fatalf("sample %d outside (0, 1MB]", s)
		}
	}
	if m := d.Mean(); m <= 0 || m >= IMC10().Mean() {
		t.Fatalf("truncated mean %.0f not below base mean %.0f", m, IMC10().Mean())
	}
	if d.Name() != "IMC10≤1024KB" {
		t.Fatalf("Name = %q", d.Name())
	}
}

func TestPermutation(t *testing.T) {
	tr := PermutationConfig{Hosts: 64, FlowSize: 1 << 20, Horizon: sim.Millisecond, Seed: 9}.Generate()
	if len(tr.Flows) != 64 {
		t.Fatalf("flows = %d", len(tr.Flows))
	}
	seenSrc := map[int]bool{}
	seenDst := map[int]bool{}
	for _, f := range tr.Flows {
		if f.Src == f.Dst {
			t.Fatal("self flow in permutation")
		}
		if seenSrc[f.Src] || seenDst[f.Dst] {
			t.Fatal("not a permutation")
		}
		seenSrc[f.Src] = true
		seenDst[f.Dst] = true
	}
}
