// Package workload generates the traffic the paper evaluates on: flows
// drawn from empirical datacenter flow-size distributions (IMC10, Web
// Search, Data Mining), arranged into traffic patterns (Poisson all-to-all,
// bursty incast, dense traffic matrices) at a configurable network load.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dcpim/internal/packet"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	// Sample draws one flow size (≥ 1 byte).
	Sample(rng *rand.Rand) int64
	// Mean returns the expected flow size in bytes.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// CDFPoint is one knot of an empirical CDF: P[size ≤ Bytes] = Prob.
type CDFPoint struct {
	Bytes int64
	Prob  float64
}

// EmpiricalDist is a piecewise log-linear empirical flow-size distribution,
// the standard way datacenter transport papers encode production traces.
type EmpiricalDist struct {
	name   string
	points []CDFPoint
	mean   float64
}

// NewEmpirical builds a distribution from CDF knots. Knots must be strictly
// increasing in both size and probability, with the last probability 1.
func NewEmpirical(name string, points []CDFPoint) (*EmpiricalDist, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload %s: need ≥2 CDF points", name)
	}
	for i, p := range points {
		// The negated form rejects NaN probabilities, which pass every
		// direct comparison.
		if p.Bytes < 1 || !(p.Prob >= 0 && p.Prob <= 1) {
			return nil, fmt.Errorf("workload %s: bad point %+v", name, p)
		}
		if i > 0 && (p.Bytes <= points[i-1].Bytes || p.Prob <= points[i-1].Prob) {
			return nil, fmt.Errorf("workload %s: non-increasing CDF at %d", name, i)
		}
	}
	if points[len(points)-1].Prob != 1 {
		return nil, fmt.Errorf("workload %s: CDF must end at probability 1", name)
	}
	d := &EmpiricalDist{name: name, points: points}
	d.mean = d.computeMean()
	return d, nil
}

// mustEmpirical panics on invalid knots; used for the package's built-ins.
func mustEmpirical(name string, points []CDFPoint) *EmpiricalDist {
	d, err := NewEmpirical(name, points)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *EmpiricalDist) Name() string { return d.name }

// Sample inverts the CDF at a uniform variate, interpolating sizes
// log-linearly between knots (flow sizes span six orders of magnitude, so
// linear interpolation in log-space matches the published curves).
func (d *EmpiricalDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	pts := d.points
	if u <= pts[0].Prob {
		return pts[0].Bytes
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Prob >= u })
	lo, hi := pts[i-1], pts[i]
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	logSize := math.Log(float64(lo.Bytes)) + frac*(math.Log(float64(hi.Bytes))-math.Log(float64(lo.Bytes)))
	size := int64(math.Exp(logSize) + 0.5)
	if size < lo.Bytes {
		size = lo.Bytes
	}
	if size > hi.Bytes {
		size = hi.Bytes
	}
	return size
}

// Mean returns the expected flow size, computed by integrating the
// piecewise log-linear CDF.
func (d *EmpiricalDist) Mean() float64 { return d.mean }

func (d *EmpiricalDist) computeMean() float64 {
	// E[X] = Σ over segments of E[X | segment] · P(segment). Within a
	// segment, size = exp(a + f·b) with f uniform on (0,1]:
	// E = (e^(a+b) − e^a)/b for b ≠ 0.
	pts := d.points
	mean := float64(pts[0].Bytes) * pts[0].Prob
	for i := 1; i < len(pts); i++ {
		p := pts[i].Prob - pts[i-1].Prob
		a := math.Log(float64(pts[i-1].Bytes))
		b := math.Log(float64(pts[i].Bytes)) - a
		var seg float64
		if b == 0 {
			seg = float64(pts[i].Bytes)
		} else {
			// e^a·(e^b−1)/b via Expm1: the direct difference of
			// exponentials cancels catastrophically when the knots are
			// close in log-space.
			seg = math.Exp(a) * math.Expm1(b) / b
		}
		mean += seg * p
	}
	return mean
}

// pkts converts a count of full payload packets to bytes, the unit the
// published CDFs use (they quote sizes in 1460-byte packets; we use our
// payload size so that packet counts match).
func pkts(n int64) int64 { return n * packet.PayloadSize }

// IMC10 approximates the aggregated datacenter workload measured by Benson
// et al. (IMC 2010), as used by pHost and dcPIM: dominated by sub-10 KB
// flows with a tail into the tens of megabytes.
func IMC10() *EmpiricalDist {
	return mustEmpirical("IMC10", []CDFPoint{
		{pkts(1), 0.50}, {pkts(2), 0.60}, {pkts(4), 0.70}, {pkts(8), 0.80},
		{pkts(20), 0.90}, {pkts(70), 0.95}, {pkts(350), 0.99},
		{pkts(3500), 0.999}, {pkts(15000), 1.0},
	})
}

// WebSearch approximates the DCTCP web-search workload (Alizadeh et al.),
// as distributed with the pFabric/pHost simulators: flows from one packet
// to ~30k packets with about half the flows under 15 KB.
func WebSearch() *EmpiricalDist {
	return mustEmpirical("WebSearch", []CDFPoint{
		{pkts(1), 0.00001}, {pkts(2), 0.10}, {pkts(3), 0.20}, {pkts(5), 0.30},
		{pkts(7), 0.40}, {pkts(10), 0.53}, {pkts(15), 0.60}, {pkts(30), 0.70},
		{pkts(50), 0.80}, {pkts(80), 0.90}, {pkts(200), 0.95},
		{pkts(1000), 0.98}, {pkts(2000), 0.99}, {pkts(10000), 0.999},
		{pkts(30000), 1.0},
	})
}

// DataMining approximates the VL2 data-mining workload (Greenberg et al.),
// as distributed with the pFabric/pHost simulators: 80% of flows under
// 10 KB but with 95% of bytes in multi-megabyte flows and a tail to 1 GB.
func DataMining() *EmpiricalDist {
	return mustEmpirical("DataMining", []CDFPoint{
		{pkts(1), 0.50}, {pkts(2), 0.60}, {pkts(3), 0.70}, {pkts(7), 0.80},
		{pkts(267), 0.90}, {pkts(2107), 0.95}, {pkts(66667), 0.99},
		{pkts(666667), 1.0},
	})
}

// FixedDist returns every flow at exactly size bytes — used for the
// paper's worst-case "all flows of size BDP+1" microbenchmark (Fig. 4b).
type FixedDist struct {
	Size int64
	Tag  string
}

func (d FixedDist) Sample(*rand.Rand) int64 { return d.Size }
func (d FixedDist) Mean() float64           { return float64(d.Size) }
func (d FixedDist) Name() string {
	if d.Tag != "" {
		return d.Tag
	}
	return fmt.Sprintf("Fixed(%dB)", d.Size)
}

// ByName returns a built-in distribution by its report name.
func ByName(name string) (SizeDist, error) {
	switch name {
	case "IMC10", "imc10":
		return IMC10(), nil
	case "WebSearch", "websearch":
		return WebSearch(), nil
	case "DataMining", "datamining":
		return DataMining(), nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", name)
	}
}

// TruncatedDist caps another distribution's samples at Max bytes. The
// sustainable-load experiment uses it to bound time-to-stationarity:
// untruncated heavy tails need tens of milliseconds of simulated warm-up
// before throughput measurements mean anything.
type TruncatedDist struct {
	Base SizeDist
	Max  int64
}

// Sample draws from Base and clamps, keeping the SizeDist contract of
// ≥ 1 byte even for a nonsensical Max.
func (d TruncatedDist) Sample(rng *rand.Rand) int64 {
	s := d.Base.Sample(rng)
	if s > d.Max {
		s = d.Max
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Mean estimates the truncated mean by quadrature over samples — exact
// integration isn't worth the code; generators only use Mean to set
// arrival rates, and a deterministic 64k-sample estimate is stable.
func (d TruncatedDist) Mean() float64 {
	rng := rand.New(rand.NewSource(12345))
	var sum float64
	const n = 1 << 16
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	return sum / n
}

// Name identifies the distribution.
func (d TruncatedDist) Name() string {
	return fmt.Sprintf("%s≤%dKB", d.Base.Name(), d.Max>>10)
}
