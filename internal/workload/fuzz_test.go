package workload

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// decodePoints turns fuzzer bytes into a candidate CDF knot list: 10
// bytes per point — 8 for the size (raw int64, so negatives and zeros
// exercise validation) and 2 for the probability in 1/65535 steps, with
// a leading flag byte that optionally pins the last probability to 1 so
// the fuzzer reaches the post-validation sampling paths easily.
func decodePoints(raw []byte) []CDFPoint {
	if len(raw) == 0 {
		return nil
	}
	pin := raw[0]&1 == 1
	raw = raw[1:]
	var pts []CDFPoint
	for len(raw) >= 10 && len(pts) < 64 {
		size := int64(binary.LittleEndian.Uint64(raw[:8]))
		prob := float64(binary.LittleEndian.Uint16(raw[8:10])) / 65535
		raw = raw[10:]
		pts = append(pts, CDFPoint{Bytes: size, Prob: prob})
	}
	if pin && len(pts) > 0 {
		pts[len(pts)-1].Prob = 1
	}
	return pts
}

// FuzzDistSample asserts that empirical CDF construction never panics on
// arbitrary knots, and that every accepted distribution samples within
// its support (≥ 1 byte, never negative) with a finite positive mean —
// including under truncation with hostile caps.
func FuzzDistSample(f *testing.F) {
	// Seed corpus: valid two-point and multi-point CDFs, plus shapes that
	// must be rejected (non-increasing, probability > 1 impossible here,
	// zero/negative sizes).
	valid := func(pairs ...CDFPoint) []byte {
		b := []byte{1}
		for _, p := range pairs {
			var sz [8]byte
			binary.LittleEndian.PutUint64(sz[:], uint64(p.Bytes))
			b = append(b, sz[:]...)
			var pr [2]byte
			binary.LittleEndian.PutUint16(pr[:], uint16(p.Prob*65535))
			b = append(b, pr[:]...)
		}
		return b
	}
	f.Add(int64(1), valid(CDFPoint{1436, 0.5}, CDFPoint{14360, 1}))
	f.Add(int64(2), valid(CDFPoint{100, 0.1}, CDFPoint{1000, 0.6}, CDFPoint{1 << 30, 1}))
	f.Add(int64(3), valid(CDFPoint{5000, 0.9}, CDFPoint{200, 1})) // non-increasing size
	f.Add(int64(4), valid(CDFPoint{0, 0.5}, CDFPoint{10, 1}))     // zero size
	f.Add(int64(5), valid(CDFPoint{-44, 0.5}, CDFPoint{10, 1}))   // negative size
	f.Add(int64(6), valid(CDFPoint{10, 0.5}, CDFPoint{20, 0.5}))  // flat prob, no 1
	f.Add(int64(7), []byte{0, 1, 2, 3})                           // short tail
	f.Add(int64(8), valid(CDFPoint{math.MaxInt64 - 1, 0.5}, CDFPoint{math.MaxInt64, 1}))
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		pts := decodePoints(raw)
		d, err := NewEmpirical("fuzz", pts)
		if err == nil {
			checkDist(t, d, pts[0].Bytes, pts[len(pts)-1].Bytes, seed)
			// Truncation must hold the ≥1-byte contract even for caps the
			// fuzzer makes zero or negative.
			cap := pts[0].Bytes/2 - 1
			td := TruncatedDist{Base: d, Max: cap}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 16; i++ {
				if s := td.Sample(rng); s < 1 {
					t.Fatalf("truncated sample %d < 1 (cap %d)", s, cap)
				}
			}
		}
		// The built-ins must accept any seed.
		rng := rand.New(rand.NewSource(seed))
		for _, b := range []SizeDist{IMC10(), WebSearch(), DataMining()} {
			if s := b.Sample(rng); s < 1 {
				t.Fatalf("%s sampled %d", b.Name(), s)
			}
		}
	})
}

func checkDist(t *testing.T, d *EmpiricalDist, lo, hi int64, seed int64) {
	t.Helper()
	m := d.Mean()
	// One part in 1e9 of slack covers float rounding in the log-space
	// integration and in the int64→float64 conversion of huge sizes.
	if math.IsNaN(m) || m < 1 || m > float64(hi)*(1+1e-9) {
		t.Fatalf("mean %v outside [1, %d]", m, hi)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 64; i++ {
		s := d.Sample(rng)
		if s < 1 {
			t.Fatalf("sample %d < 1", s)
		}
		if s < lo || s > hi {
			t.Fatalf("sample %d outside support [%d, %d]", s, lo, hi)
		}
	}
}
