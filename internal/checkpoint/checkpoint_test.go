package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func sampleSnapshot() *Snapshot {
	s := &Snapshot{Meta: Meta{
		Version: Version, Label: "fig3a-dcpim-load0.500", Protocol: "dcpim",
		Seed: 99, Hosts: 16, Shards: 4, Queue: "ladder",
		TopoHash: 0xdeadbeefcafe, SpecHash: 0x1234567890ab,
		HorizonPs: 2_000_000_000, TimePs: 1_000_000_000, Index: 3, EveryPs: 250_000_000,
	}}
	s.AddSection("engine/0", []byte{1, 2, 3, 4, 5})
	s.AddSection("engine/1", nil)
	s.AddSection("fabric", bytes.Repeat([]byte{0xaa, 0x55}, 300))
	return s
}

func TestRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Meta != s.Meta {
		t.Fatalf("meta round-trip: got %+v want %+v", got.Meta, s.Meta)
	}
	if len(got.Sections) != len(s.Sections) {
		t.Fatalf("sections: got %d want %d", len(got.Sections), len(s.Sections))
	}
	for i, sec := range s.Sections {
		if got.Sections[i].Name != sec.Name || !bytes.Equal(got.Sections[i].Data, sec.Data) {
			t.Fatalf("section %d differs: %q vs %q", i, got.Sections[i].Name, sec.Name)
		}
	}
	// Re-encoding the decoded snapshot must reproduce the byte stream.
	var buf2 bytes.Buffer
	if err := got.Checkpoint(&buf2); err != nil {
		t.Fatalf("re-Checkpoint: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoded stream is not byte-identical")
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleSnapshot().Checkpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleSnapshot().Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same state differ")
	}
}

func TestReadErrorTaxonomy(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xff
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("short magic", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(good[:4])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		// Any truncation corrupts the checksum or the framing; both are
		// typed errors, never a partial snapshot.
		for _, n := range []int{len(good) - 1, len(good) - 9, len(Magic) + 6, len(Magic) + 20} {
			_, err := Read(bytes.NewReader(good[:n]))
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("truncate to %d: got %v", n, err)
			}
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(Magic)] = 99 // version byte
		// Re-seal so the version check (not the checksum) fires: a future
		// writer produces a valid checksum over a newer version.
		reseal(b)
		var ve *VersionError
		_, err := Read(bytes.NewReader(b))
		if !errors.As(err, &ve) || ve.Got != 99 || ve.Want != Version {
			t.Fatalf("got %v, want *VersionError{99,%d}", err, Version)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)/2] ^= 0x01
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		b := append(append([]byte(nil), good[:len(good)-8]...), 1, 2, 3)
		reseal(append(b, 0, 0, 0, 0, 0, 0, 0, 0))
		b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
		reseal(b)
		var ce *CorruptError
		if _, err := Read(bytes.NewReader(b)); !errors.As(err, &ce) {
			t.Fatalf("got %v, want *CorruptError", err)
		}
	})
	t.Run("section length past end", func(t *testing.T) {
		s := &Snapshot{Meta: Meta{Version: Version}}
		var e Encoder
		e.Raw([]byte(Magic))
		e.U32(Version)
		for i := 0; i < 2; i++ {
			e.String("")
		}
		for i := 0; i < 8; i++ {
			e.I64(0)
		}
		_ = s
		e.U32(1)              // one section
		e.String("x")         //
		e.U64(math.MaxUint32) // claimed length far past the buffer
		b := append(e.Data(), 0, 0, 0, 0, 0, 0, 0, 0)
		reseal(b)
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
}

// reseal rewrites b's trailing checksum to match its body, emulating a
// writer that produced the (possibly hostile) body legitimately.
func reseal(b []byte) {
	sum := fold(b[:len(b)-8])
	for i := 0; i < 8; i++ {
		b[len(b)-8+i] = byte(sum >> (8 * i))
	}
}

func TestCompare(t *testing.T) {
	a := sampleSnapshot()
	if err := Compare(a, sampleSnapshot()); err != nil {
		t.Fatalf("identical snapshots: %v", err)
	}

	b := sampleSnapshot()
	b.Meta.SpecHash++ // build-identity fields are excluded from Compare
	b.Meta.Label = "other"
	if err := Compare(a, b); err != nil {
		t.Fatalf("spec-hash difference should not diverge: %v", err)
	}

	b = sampleSnapshot()
	b.Meta.TimePs++
	var de *DivergenceError
	if err := Compare(a, b); !errors.As(err, &de) {
		t.Fatalf("time mismatch: got %v", err)
	}

	b = sampleSnapshot()
	b.Sections[2].Data[7] ^= 0x10
	if err := Compare(a, b); !errors.As(err, &de) {
		t.Fatalf("payload mismatch: got %v", err)
	} else if de.Section != "fabric" || de.Offset != 7 {
		t.Fatalf("divergence localized to %q@%d, want fabric@7", de.Section, de.Offset)
	}

	b = sampleSnapshot()
	b.Sections = b.Sections[:2]
	if err := Compare(a, b); !errors.As(err, &de) {
		t.Fatalf("section count mismatch: got %v", err)
	}
}

func TestEncoderDecoderPrimitives(t *testing.T) {
	var e Encoder
	e.U8(0xab)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.F64(math.Copysign(0, -1))
	e.F64(math.Inf(1))
	e.String("héllo")
	e.Bytes([]byte{9, 8, 7})

	d := NewDecoder(e.Data())
	if v := d.U8(); v != 0xab {
		t.Fatalf("U8 = %#x", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round-trip")
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %#x", v)
	}
	if v := d.U64(); v != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.F64(); !math.Signbit(v) || v != 0 {
		t.Fatalf("F64 -0.0 = %v", v)
	}
	if v := d.F64(); !math.IsInf(v, 1) {
		t.Fatalf("F64 +Inf = %v", v)
	}
	if v := d.String(); v != "héllo" {
		t.Fatalf("String = %q", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte{9, 8, 7}) {
		t.Fatalf("Bytes = %v", v)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}

	// Reads past the end latch ErrTruncated and return zero values.
	if v := d.U64(); v != 0 || !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("past-end read: v=%d err=%v", v, d.Err())
	}
	if v := d.String(); v != "" {
		t.Fatalf("read after latched error: %q", v)
	}
}

func TestFoldMatchesByteFold(t *testing.T) {
	// Fold(word) must equal folding the word's little-endian bytes — the
	// invariant that lets capture code mix words while files mix bytes.
	w := uint64(0x1122334455667788)
	var b [8]byte
	for i := range b {
		b[i] = byte(w >> (8 * i))
	}
	if Fold(FoldInit, w) != fold(b[:]) {
		t.Fatal("Fold(word) != fold(bytes)")
	}
}

// FuzzRestore feeds arbitrary bytes through Read: it must return typed
// errors on anything invalid, never panic, and anything it accepts must
// re-encode byte-identically (no silent reinterpretation).
func FuzzRestore(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleSnapshot().Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := s.Checkpoint(&out); err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted input does not round-trip: %d vs %d bytes", out.Len(), len(data))
		}
	})
}
