// Package checkpoint defines the versioned binary snapshot format for
// full simulation state. A Snapshot is a set of named, length-prefixed
// sections — one per simulation layer (engines, fabric, protocol cores,
// statistics, telemetry) — behind a fixed header and in front of a
// trailing checksum, so a file is either read back whole and verified or
// rejected with a typed error; nothing is ever applied partially.
//
// Every layer serializes its state canonically (map keys sorted, physical
// layouts like heap array order or free lists normalized away), which
// gives the format its central property: two runs of the same build are
// in the same state at time T if and only if their snapshots at T are
// byte-identical. That makes a snapshot simultaneously a durability
// artifact (experiments.Resume) and the repo's strongest correctness
// oracle — resume-equivalence proofs and replay bisection
// (experiments.Bisect) are both byte comparisons over this format. See
// DESIGN.md §14.
package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic identifies a dcPIM checkpoint stream; the trailing digit is the
// header layout revision (bumped only if the framing itself changes).
const Magic = "DCPIMCK1"

// Version is the current snapshot format version. Any change to what a
// section contains or how it is encoded MUST bump this — Read rejects
// mismatched versions with a VersionError rather than misinterpreting
// bytes. Versioning rules are spelled out in DESIGN.md §14.
const Version uint32 = 1

// Meta identifies what a snapshot is of: the format version, the run's
// identity (protocol, seed, topology and spec hashes, execution shape)
// and the snapshot's position in the run. Restore-side compatibility
// checks compare these before any section is interpreted.
type Meta struct {
	Version   uint32
	Label     string // run label (file stem; informational)
	Protocol  string
	Seed      int64
	Hosts     int    // topology host count
	Shards    int    // resolved shard count (≥ 1)
	Queue     string // resolved queue discipline ("heap" / "ladder")
	TopoHash  uint64 // fingerprint of the topology shape
	SpecHash  uint64 // fingerprint of the full run spec (trace, faults, horizon)
	HorizonPs int64  // run horizon, picoseconds
	TimePs    int64  // simulation time this snapshot was taken at
	Index     int    // snapshot ordinal within the run (0-based)
	EveryPs   int64  // checkpoint cadence, picoseconds
}

// Section is one named chunk of serialized state. Section order within a
// snapshot is fixed by the writer, so Compare can walk two snapshots in
// lockstep.
type Section struct {
	Name string
	Data []byte
}

// Snapshot is one complete serialized simulation state.
type Snapshot struct {
	Meta     Meta
	Sections []Section
}

// AddSection appends a named section.
func (s *Snapshot) AddSection(name string, data []byte) {
	s.Sections = append(s.Sections, Section{Name: name, Data: data})
}

// Section returns the named section's payload.
func (s *Snapshot) Section(name string) ([]byte, bool) {
	for _, sec := range s.Sections {
		if sec.Name == name {
			return sec.Data, true
		}
	}
	return nil, false
}

// Typed error taxonomy. Restore paths distinguish these: a version or
// compatibility error means "wrong snapshot for this build/spec" (fail
// loudly, nothing to repair), corruption means the bytes themselves are
// damaged, and divergence means a verified replay did not reproduce the
// captured state — the one that turns checkpoints into a correctness
// oracle.
var (
	// ErrBadMagic reports a stream that is not a dcPIM checkpoint.
	ErrBadMagic = errors.New("checkpoint: bad magic (not a dcPIM checkpoint)")
	// ErrTruncated reports a stream that ends before its framing says it
	// should.
	ErrTruncated = errors.New("checkpoint: truncated stream")
	// ErrChecksum reports a stream whose trailing checksum does not match
	// its contents.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
)

// VersionError reports a snapshot written by a different format version.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: format version %d, this build reads %d", e.Got, e.Want)
}

// CompatError reports a snapshot that parsed cleanly but belongs to a
// different run: wrong topology, spec, shard count, or protocol.
type CompatError struct {
	Field     string
	Got, Want string
}

func (e *CompatError) Error() string {
	return fmt.Sprintf("checkpoint: incompatible snapshot: %s is %s, this run has %s",
		e.Field, e.Got, e.Want)
}

// CorruptError reports structurally invalid content inside a frame that
// passed the checksum (impossible lengths, out-of-range values).
type CorruptError struct {
	Detail string
}

func (e *CorruptError) Error() string { return "checkpoint: corrupt snapshot: " + e.Detail }

// DivergenceError reports the first point where two snapshots of the
// same nominal state disagree — either a failed resume-equivalence proof
// or the bisection target between two builds.
type DivergenceError struct {
	Section string // diverging section name ("" = section list shape)
	Offset  int    // first differing byte within the section (-1 = length/name)
	Detail  string
}

func (e *DivergenceError) Error() string {
	if e.Section == "" {
		return "checkpoint: snapshots diverge: " + e.Detail
	}
	return fmt.Sprintf("checkpoint: snapshots diverge in section %q at byte %d: %s",
		e.Section, e.Offset, e.Detail)
}

// Compare returns nil when the two snapshots capture identical state,
// or a *DivergenceError naming the first differing section. Meta fields
// that identify the build or spec (SpecHash, Label) are deliberately NOT
// compared: bisection compares snapshots across builds, where those
// legitimately differ. Time and shape must agree.
func Compare(a, b *Snapshot) error {
	if a.Meta.TimePs != b.Meta.TimePs {
		return &DivergenceError{Detail: fmt.Sprintf("times %d vs %d ps", a.Meta.TimePs, b.Meta.TimePs)}
	}
	if len(a.Sections) != len(b.Sections) {
		return &DivergenceError{Detail: fmt.Sprintf("%d vs %d sections", len(a.Sections), len(b.Sections))}
	}
	for i, sa := range a.Sections {
		sb := b.Sections[i]
		if sa.Name != sb.Name {
			return &DivergenceError{Detail: fmt.Sprintf("section %d named %q vs %q", i, sa.Name, sb.Name)}
		}
		if len(sa.Data) != len(sb.Data) {
			return &DivergenceError{Section: sa.Name, Offset: -1,
				Detail: fmt.Sprintf("lengths %d vs %d", len(sa.Data), len(sb.Data))}
		}
		for j := range sa.Data {
			if sa.Data[j] != sb.Data[j] {
				return &DivergenceError{Section: sa.Name, Offset: j,
					Detail: fmt.Sprintf("%#02x vs %#02x", sa.Data[j], sb.Data[j])}
			}
		}
	}
	return nil
}

// Checkpoint serializes the snapshot to w: magic, version, meta, the
// sections in order, and a trailing FNV-1a checksum over everything
// before it. The byte stream is a pure function of the snapshot's
// contents — no timestamps, no map iteration — so equal states produce
// equal files.
func (s *Snapshot) Checkpoint(w io.Writer) error {
	var e Encoder
	e.Raw([]byte(Magic))
	e.U32(Version)
	e.String(s.Meta.Label)
	e.String(s.Meta.Protocol)
	e.I64(s.Meta.Seed)
	e.I64(int64(s.Meta.Hosts))
	e.I64(int64(s.Meta.Shards))
	e.String(s.Meta.Queue)
	e.U64(s.Meta.TopoHash)
	e.U64(s.Meta.SpecHash)
	e.I64(s.Meta.HorizonPs)
	e.I64(s.Meta.TimePs)
	e.I64(int64(s.Meta.Index))
	e.I64(s.Meta.EveryPs)
	e.U32(uint32(len(s.Sections)))
	for _, sec := range s.Sections {
		e.String(sec.Name)
		e.Bytes(sec.Data)
	}
	e.U64(fold(e.buf))
	_, err := w.Write(e.buf)
	return err
}

// maxSnapshotBytes bounds how much Read will buffer — far above any real
// snapshot, low enough that a corrupt length field cannot demand an
// absurd allocation.
const maxSnapshotBytes = 1 << 31

// Read parses a snapshot from r. The whole stream is read and verified —
// magic, version, framing, checksum — before any content is returned, so
// a failed Read never yields a partially valid snapshot. All errors are
// typed: ErrBadMagic, *VersionError, ErrTruncated, ErrChecksum, or
// *CorruptError.
func Read(r io.Reader) (*Snapshot, error) {
	buf, err := io.ReadAll(io.LimitReader(r, maxSnapshotBytes))
	if err != nil {
		return nil, err
	}
	if len(buf) < len(Magic)+4+8 {
		if len(buf) >= len(Magic) && string(buf[:len(Magic)]) != Magic {
			return nil, ErrBadMagic
		}
		return nil, ErrTruncated
	}
	if string(buf[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	body, sum := buf[:len(buf)-8], buf[len(buf)-8:]
	d := Decoder{buf: body}
	d.off = len(Magic)
	if got := uint64(sum[0]) | uint64(sum[1])<<8 | uint64(sum[2])<<16 | uint64(sum[3])<<24 |
		uint64(sum[4])<<32 | uint64(sum[5])<<40 | uint64(sum[6])<<48 | uint64(sum[7])<<56; got != fold(body) {
		return nil, ErrChecksum
	}
	if v := d.U32(); v != Version {
		if d.err != nil {
			return nil, ErrTruncated
		}
		return nil, &VersionError{Got: v, Want: Version}
	}
	var s Snapshot
	s.Meta.Version = Version
	s.Meta.Label = d.String()
	s.Meta.Protocol = d.String()
	s.Meta.Seed = d.I64()
	s.Meta.Hosts = int(d.I64())
	s.Meta.Shards = int(d.I64())
	s.Meta.Queue = d.String()
	s.Meta.TopoHash = d.U64()
	s.Meta.SpecHash = d.U64()
	s.Meta.HorizonPs = d.I64()
	s.Meta.TimePs = d.I64()
	s.Meta.Index = int(d.I64())
	s.Meta.EveryPs = d.I64()
	n := d.U32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		name := d.String()
		data := d.Bytes()
		if d.err == nil {
			s.AddSection(name, data)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, &CorruptError{Detail: fmt.Sprintf("%d trailing bytes", len(body)-d.off)}
	}
	return &s, nil
}

// FNV-1a 64 over a byte stream — the same fold the experiment digests
// use, chosen for stability across Go versions.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fold(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// FoldInit is the initial value for incremental word folds (FNV-1a 64).
const FoldInit = fnvOffset

// Fold mixes one 64-bit word into an FNV-1a 64 hash, byte by byte.
// Capture code uses it to compress unbounded histories (completed-flow id
// sets, sampled rows) into fixed-size state assertions.
func Fold(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime
		w >>= 8
	}
	return h
}

// FoldBytes mixes a byte slice into an FNV-1a 64 hash (the incremental
// form of the file checksum's fold).
func FoldBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// Encoder appends little-endian primitives to a growing buffer. The zero
// value is ready to use.
type Encoder struct {
	buf []byte
}

// Data returns the encoded bytes (aliased, not copied).
func (e *Encoder) Data() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Raw appends b verbatim with no length prefix.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends one byte, 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 by its IEEE-754 bit pattern. Bit-exact: equal
// states encode equal bytes, including negative zero and NaN payloads.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads little-endian primitives from a buffer. The first framing
// violation latches an error; every later read returns zero values, so
// decode sequences can run unchecked and test err once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder reads from b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first framing error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool; any value above 1 is corruption.
func (d *Decoder) Bool() bool {
	v := d.U8()
	if v > 1 && d.err == nil {
		d.err = &CorruptError{Detail: fmt.Sprintf("bool byte %#02x", v)}
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.U32()
	b := d.take(int(n))
	return string(b)
}

// Bytes reads a length-prefixed byte slice (aliased into the buffer).
func (d *Decoder) Bytes() []byte {
	n := d.U64()
	if d.err == nil && n > uint64(d.Remaining()) {
		d.err = ErrTruncated
		return nil
	}
	return d.take(int(n))
}
