package fastpass

import (
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func runFastpass(t *testing.T, tr *workload.Trace, horizon sim.Duration, seed int64) (*stats.Collector, *netsim.Fabric) {
	t.Helper()
	eng := sim.NewEngine(seed)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, FabricConfig())
	col := stats.NewCollector(0)
	Attach(fab, Config{}, col)
	fab.Start()
	fab.Inject(tr)
	eng.Run(sim.Time(horizon))
	return col, fab
}

// The §5 structural property: even an unloaded short flow pays a round
// trip through the arbiter before transmission, so its slowdown is
// bounded away from 1 (the paper cites ≥ 2× optimal).
func TestShortFlowPaysArbiterRTT(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 3, Dst: 7, Size: 5_000, Arrival: sim.Time(20 * sim.Microsecond)},
	}}
	col, _ := runFastpass(t, tr, 500*sim.Microsecond, 1)
	if col.Completed() != 1 {
		t.Fatal("flow not completed")
	}
	sd := col.Records()[0].Slowdown()
	if sd < 1.8 {
		t.Fatalf("unloaded Fastpass short flow slowdown %.2f — the arbiter RTT should cost ≥ ~2x", sd)
	}
	if sd > 8 {
		t.Fatalf("unloaded slowdown %.2f absurdly high", sd)
	}
}

func TestLongFlowCompletes(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 1, Dst: 6, Size: 2_000_000, Arrival: 0},
	}}
	col, _ := runFastpass(t, tr, 5*sim.Millisecond, 2)
	if col.Completed() != 1 {
		t.Fatal("long flow not completed")
	}
	// Allocation batches pipeline: throughput near line rate once running.
	if sd := col.Records()[0].Slowdown(); sd > 2 {
		t.Fatalf("long flow slowdown %.2f", sd)
	}
}

// Conflict-freedom: the arbiter never allocates two senders into one
// receiver in the same batch, so queues barely form and nothing drops.
func TestIncastStaysQueueless(t *testing.T) {
	var flows []workload.Flow
	for src := 1; src < 8; src++ {
		flows = append(flows, workload.Flow{ID: uint64(src), Src: src, Dst: 0, Size: 150_000, Arrival: 0})
	}
	col, fab := runFastpass(t, &workload.Trace{Flows: flows}, 10*sim.Millisecond, 3)
	if col.Completed() != 7 {
		t.Fatalf("completed %d/7", col.Completed())
	}
	if fab.Counters.DataDrops != 0 {
		t.Fatalf("drops = %d under centralized scheduling", fab.Counters.DataDrops)
	}
	// Max queue stays near one batch of packets, not an incast pileup.
	if max := fab.MaxPortQueue(); max > 20*1500 {
		t.Fatalf("max port queue %d — centralized allocations should stay queueless", max)
	}
}

func TestAllToAll(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	tr := workload.AllToAllConfig{
		Hosts: 8, HostRate: cfgT.HostRate, Load: 0.4,
		Dist: workload.IMC10(), Horizon: sim.Millisecond, Seed: 4,
	}.Generate()
	col, _ := runFastpass(t, tr, 6*sim.Millisecond, 4)
	if col.Completed() < int64(len(tr.Flows))*90/100 {
		t.Fatalf("completed %d/%d", col.Completed(), len(tr.Flows))
	}
}

func TestDeterminism(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	mk := func() *workload.Trace {
		return workload.AllToAllConfig{
			Hosts: 8, HostRate: cfgT.HostRate, Load: 0.4,
			Dist: workload.IMC10(), Horizon: 500 * sim.Microsecond, Seed: 5,
		}.Generate()
	}
	a, _ := runFastpass(t, mk(), 3*sim.Millisecond, 6)
	b, _ := runFastpass(t, mk(), 3*sim.Millisecond, 6)
	if a.Completed() != b.Completed() || a.DeliveredBytes() != b.DeliveredBytes() {
		t.Fatal("non-deterministic fastpass run")
	}
}
