package fastpass

import (
	"dcpim/internal/netsim"
	"dcpim/internal/protocols"
)

// Register Fastpass. ProtoConfig accepts a Config override.
func init() {
	protocols.Register(protocols.Descriptor{
		Name:         "fastpass",
		FabricConfig: FabricConfig,
		Attach: func(f *netsim.Fabric, opts protocols.AttachOptions) {
			cfg := Config{}
			if c, ok := opts.ProtoConfig.(Config); ok {
				cfg = c
			}
			Attach(f, cfg, opts.Collector)
		},
	})
}
