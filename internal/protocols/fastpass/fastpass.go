// Package fastpass implements a Fastpass-style centralized transport
// (Perry et al., SIGCOMM 2014), the related-work design the dcPIM paper
// contrasts against in §5: a central arbiter computes conflict-free
// sender↔receiver timeslot allocations, so the fabric runs essentially
// queue-free — but every flow, however small, pays a round trip through
// the arbiter before its first byte moves. That structural extra RTT is
// exactly the ≥2×-optimal short-flow latency the paper cites.
//
// Model: the arbiter runs co-located with host 0; demand reports and
// allocations travel as control packets through the same fabric (so
// arbiter latency is physical, not assumed). Every batch of eight
// timeslots the arbiter computes a greedy SRPT matching over backlogged
// src→dst pairs and grants each matched pair the batch.
package fastpass

import (
	"sort"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/protocols/flowtrack"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// Config tunes the Fastpass deployment.
type Config struct {
	// ArbiterHost is the host co-located with the arbiter (default 0).
	ArbiterHost int
	// BatchSlots is the number of MTU timeslots allocated per matching
	// (0 = 8).
	BatchSlots int
}

// FabricConfig returns the netsim configuration Fastpass expects: ECMP
// (the real system also assigns paths; conflict-free allocations make
// spraying unnecessary) and plain queues.
func FabricConfig() netsim.Config { return netsim.Config{Spray: true} }

// demand is the arbiter's view of one flow's backlog.
type demand struct {
	flow    uint64
	src     int
	dst     int
	remain  int // unallocated packets
	nextSeq int // next seq to allocate
}

// Proto is one host's Fastpass instance; the instance on ArbiterHost also
// runs the arbiter.
type Proto struct {
	cfg Config
	col *stats.Collector

	host *netsim.Host
	eng  *sim.Engine
	id   int

	mtuTime sim.Duration
	ctlRTT  sim.Duration

	tx map[uint64]*flowtrack.Tx
	rx map[uint64]*rxState

	// Arbiter state (ArbiterHost only).
	demands map[uint64]*demand
	order   []uint64 // demand ids, kept sorted lazily

	// Sender allocation queue: granted (flow, count) pairs to pace out.
	allocQ  []alloc
	sending bool
}

type alloc struct {
	flow  uint64
	count int
}

type rxState struct {
	*flowtrack.Rx
}

// New returns an unattached Fastpass host.
func New(cfg Config, col *stats.Collector) *Proto {
	if cfg.BatchSlots == 0 {
		cfg.BatchSlots = 8
	}
	return &Proto{cfg: cfg, col: col,
		tx: make(map[uint64]*flowtrack.Tx),
		rx: make(map[uint64]*rxState),
	}
}

// Attach installs Fastpass on every host of the fabric.
func Attach(fab *netsim.Fabric, cfg Config, col *stats.Collector) []*Proto {
	ps := make([]*Proto, fab.Topology().NumHosts)
	for i := range ps {
		ps[i] = New(cfg, col.ForShard(fab.ShardOfHost(i)))
		fab.AttachProtocol(i, ps[i])
	}
	return ps
}

// Start implements netsim.Protocol.
func (p *Proto) Start(h *netsim.Host) {
	p.host = h
	p.eng = h.Engine()
	p.id = h.ID()
	p.mtuTime = sim.TransmissionTime(packet.MTU, h.LineRate())
	p.ctlRTT = h.Topo().CtrlRTT()
	if p.id == p.cfg.ArbiterHost {
		p.demands = make(map[uint64]*demand)
		p.eng.Schedule(0, p.arbiterTick)
	}
}

// OnFlowArrival reports the demand to the arbiter; nothing is sent until
// an allocation returns (the Fastpass tax on short flows).
func (p *Proto) OnFlowArrival(fl workload.Flow) {
	p.col.FlowStarted()
	f := flowtrack.NewTx(fl.ID, fl.Dst, fl.Size, fl.Arrival)
	p.tx[f.ID] = f

	// The receiver still needs flow metadata for completion tracking.
	n := packet.NewControl(packet.Notification, p.id, f.Dst, f.ID)
	n.FlowSize = f.Size
	p.host.Send(n)

	p.reportDemand(f)
}

func (p *Proto) reportDemand(f *flowtrack.Tx) {
	rts := packet.NewControl(packet.RTS, p.id, p.cfg.ArbiterHost, f.ID)
	rts.FlowSize = f.Size
	rts.Count = f.Dst // carry the true destination; the packet goes to the arbiter
	rts.Remaining = int64(f.Npkts-f.SentCnt) * packet.PayloadSize
	p.host.Send(rts)
}

// OnPacket implements netsim.Protocol.
func (p *Proto) OnPacket(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.RTS:
		p.onDemand(pkt)
	case packet.Grant:
		p.onAlloc(pkt)
	case packet.Notification:
		p.ensureRx(pkt)
	case packet.Data:
		p.onData(pkt)
	case packet.FinishReceiver:
		delete(p.tx, pkt.Flow)
	}
}

// ---- arbiter ----

func (p *Proto) onDemand(rts *packet.Packet) {
	if p.demands == nil {
		return // not the arbiter; stray packet
	}
	pkts := packet.PacketsForBytes(rts.Remaining)
	if pkts <= 0 {
		return
	}
	if d, ok := p.demands[rts.Flow]; ok {
		// Refresh (retransmitted report): keep the larger backlog view.
		if pkts > d.remain {
			d.remain = pkts
		}
		return
	}
	p.demands[rts.Flow] = &demand{
		flow: rts.Flow, src: rts.Src, dst: rts.Count,
		remain: pkts, nextSeq: packet.PacketsForBytes(rts.FlowSize) - pkts,
	}
	p.order = append(p.order, rts.Flow)
}

// arbiterTick runs once per batch of timeslots: greedy SRPT matching over
// backlogged pairs, one sender per receiver and vice versa, each matched
// pair allocated up to BatchSlots packets.
func (p *Proto) arbiterTick() {
	defer p.eng.After(p.mtuTime*sim.Duration(p.cfg.BatchSlots), p.arbiterTick)
	if len(p.demands) == 0 {
		return
	}
	// SRPT order with id tie-break; drop exhausted demands lazily.
	live := p.order[:0]
	for _, id := range p.order {
		if d, ok := p.demands[id]; ok && d.remain > 0 {
			live = append(live, id)
		} else {
			delete(p.demands, id)
		}
	}
	p.order = live
	sort.Slice(p.order, func(i, j int) bool {
		a, b := p.demands[p.order[i]], p.demands[p.order[j]]
		if a.remain != b.remain {
			return a.remain < b.remain
		}
		return a.flow < b.flow
	})
	srcBusy := make(map[int]bool)
	dstBusy := make(map[int]bool)
	for _, id := range p.order {
		d := p.demands[id]
		if srcBusy[d.src] || dstBusy[d.dst] {
			continue
		}
		srcBusy[d.src] = true
		dstBusy[d.dst] = true
		n := p.cfg.BatchSlots
		if n > d.remain {
			n = d.remain
		}
		d.remain -= n
		g := packet.NewControl(packet.Grant, p.id, d.src, d.flow)
		g.Count = n
		p.host.Send(g)
	}
}

// ---- sender ----

func (p *Proto) onAlloc(g *packet.Packet) {
	if p.tx[g.Flow] == nil {
		return
	}
	p.allocQ = append(p.allocQ, alloc{flow: g.Flow, count: g.Count})
	if !p.sending {
		p.sending = true
		p.sendTick()
	}
}

// sendTick paces allocated packets at line rate.
func (p *Proto) sendTick() {
	for len(p.allocQ) > 0 {
		a := &p.allocQ[0]
		f := p.tx[a.flow]
		if f == nil || a.count == 0 {
			p.allocQ = p.allocQ[1:]
			continue
		}
		seq := f.SentCnt
		if seq >= f.Npkts {
			p.allocQ = p.allocQ[1:]
			continue
		}
		a.count--
		d := packet.NewData(p.id, f.Dst, f.ID, seq, packet.DataPacketSize(f.Size, seq), packet.PrioDataHigh)
		d.FlowSize = f.Size
		f.MarkSent(seq)
		p.host.Send(d)
		p.eng.After(p.mtuTime, p.sendTick)
		return
	}
	p.sending = false
}

// ---- receiver ----

func (p *Proto) ensureRx(pkt *packet.Packet) *rxState {
	if f, ok := p.rx[pkt.Flow]; ok {
		return f
	}
	f := &rxState{Rx: flowtrack.NewRx(pkt)}
	p.rx[pkt.Flow] = f
	return f
}

func (p *Proto) onData(pkt *packet.Packet) {
	f := p.ensureRx(pkt)
	payload := f.MarkReceived(pkt.Seq, pkt.Size)
	if payload > 0 {
		p.col.Delivered(p.eng.Now(), payload)
	}
	if payload > 0 && f.Done {
		opt := p.host.Topo().UnloadedFCT(f.Src, p.id, f.Size)
		p.col.FlowDone(stats.FlowRecord{
			ID: f.ID, Src: int32(f.Src), Dst: int32(p.id), Size: f.Size,
			Arrival: f.Arrival, Finish: p.eng.Now(), Optimal: opt,
		})
		fin := packet.NewControl(packet.FinishReceiver, p.id, f.Src, f.ID)
		p.host.Send(fin)
		f.Release()
	}
}
