// Package hpcc implements an HPCC-style transport (Li et al., SIGCOMM
// 2019): senders carry in-band network telemetry (INT) on every data
// packet, receivers echo it on per-packet ACKs, and senders run the HPCC
// window update — estimating per-link utilization U and steering the
// inflight window toward η·BDP. The fabric runs PFC (lossless), which is
// also HPCC's documented failure mode under incast: PFC pauses propagate
// and stall innocent traffic.
package hpcc

import (
	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/protocols/flowtrack"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// Config tunes the HPCC host.
type Config struct {
	// Eta is the target utilization η (0 = 0.95).
	Eta float64
	// MaxStage is the additive-increase stage limit (0 = 5).
	MaxStage int
	// WAIBytes is the additive increase per update (0 = MTU).
	WAIBytes int64
}

// DefaultConfig returns the HPCC paper's parameters.
func DefaultConfig() Config { return Config{Eta: 0.95, MaxStage: 5, WAIBytes: packet.MTU} }

// FabricConfig returns the netsim configuration HPCC expects: per-flow
// ECMP (INT needs consistent paths) and PFC for losslessness.
func (c Config) FabricConfig() netsim.Config {
	// HPCC runs over lossless RoCE fabrics: PFC watermarks with real
	// headroom behind them. Table 1 allows the 16 MB shared-switch-buffer
	// configuration; with 2 MB per port and 400 KB per-ingress pause
	// watermarks the fabric never tail-drops, and congestion manifests as
	// PFC pauses — HPCC's documented failure mode.
	return netsim.Config{
		Spray:           false,
		EnablePFC:       true,
		PortBufferBytes: 2 << 20,
		PFCPause:        400 << 10,
		PFCResume:       200 << 10,
	}
}

// Proto is one host's HPCC instance.
type Proto struct {
	cfg Config
	col *stats.Collector
	ins instruments // optional telemetry (RegisterMetrics); zero value is inert

	host *netsim.Host
	eng  *sim.Engine
	id   int

	baseRTT sim.Duration
	bdp     int64

	tx map[uint64]*txState
	rx map[uint64]*rxState
}

type txState struct {
	*flowtrack.Tx

	w         float64 // current window, bytes
	wc        float64 // reference window
	u         float64 // utilization estimate
	incStage  int
	lastINT   []packet.INTHop
	lastWcSeq int // cumack needed before the next Wc update

	nextSeq  int
	cumAck   int   // packets acknowledged in order
	inflight int64 // wire bytes in flight
	rtoTimer sim.Timer
	lastAck  sim.Time
}

type rxState struct {
	*flowtrack.Rx
	cum int // contiguous received prefix
}

// New returns an unattached HPCC host.
func New(cfg Config, col *stats.Collector) *Proto {
	if cfg.Eta == 0 {
		cfg.Eta = 0.95
	}
	if cfg.MaxStage == 0 {
		cfg.MaxStage = 5
	}
	if cfg.WAIBytes == 0 {
		cfg.WAIBytes = packet.MTU
	}
	return &Proto{cfg: cfg, col: col,
		tx: make(map[uint64]*txState),
		rx: make(map[uint64]*rxState),
	}
}

// Attach installs HPCC on every host of the fabric.
func Attach(fab *netsim.Fabric, cfg Config, col *stats.Collector) []*Proto {
	ps := make([]*Proto, fab.Topology().NumHosts)
	for i := range ps {
		ps[i] = New(cfg, col.ForShard(fab.ShardOfHost(i)))
		fab.AttachProtocol(i, ps[i])
	}
	return ps
}

// Start implements netsim.Protocol.
func (p *Proto) Start(h *netsim.Host) {
	p.host = h
	p.eng = h.Engine()
	p.id = h.ID()
	p.baseRTT = h.Topo().DataRTT()
	p.bdp = h.Topo().BDP()
}

// OnFlowArrival opens the flow at a full BDP window (line rate in the
// first RTT — HPCC's low-latency start).
func (p *Proto) OnFlowArrival(fl workload.Flow) {
	p.col.FlowStarted()
	f := &txState{
		Tx: flowtrack.NewTx(fl.ID, fl.Dst, fl.Size, fl.Arrival),
		w:  float64(p.bdp), wc: float64(p.bdp),
		lastAck: p.eng.Now(),
	}
	p.tx[f.ID] = f
	p.trySend(f)
	p.armRTO(f)
}

func (p *Proto) armRTO(f *txState) {
	f.rtoTimer = p.eng.After(3*p.baseRTT, func() { p.checkRTO(f) })
}

// checkRTO is a safety net: PFC makes loss near-impossible, but a lost
// control packet could strand a window. Go-back-N from the cumulative ack.
func (p *Proto) checkRTO(f *txState) {
	if f.Done {
		return
	}
	if p.eng.Now().Sub(f.lastAck) >= 3*p.baseRTT && f.inflight > 0 {
		f.nextSeq = f.cumAck
		f.inflight = 0
		p.trySend(f)
	}
	p.armRTO(f)
}

// trySend fills the window.
func (p *Proto) trySend(f *txState) {
	w := int64(f.w)
	if w < packet.MTU {
		w = packet.MTU // always allow one packet
	}
	for f.nextSeq < f.Npkts && f.inflight+packet.MTU <= w {
		size := packet.DataPacketSize(f.Size, f.nextSeq)
		d := packet.NewData(p.id, f.Dst, f.ID, f.nextSeq, size, packet.PrioDataHigh)
		d.FlowSize = f.Size
		d.CollectINT = true
		f.MarkSent(f.nextSeq)
		f.nextSeq++
		f.inflight += int64(size)
		p.host.Send(d)
	}
}

// OnPacket implements netsim.Protocol.
func (p *Proto) OnPacket(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.Data:
		p.onData(pkt)
	case packet.Ack:
		p.onAck(pkt)
	case packet.FinishReceiver:
		if f := p.tx[pkt.Flow]; f != nil {
			f.Done = true
			f.rtoTimer.Cancel()
			delete(p.tx, pkt.Flow)
		}
	}
}

// ---- receiver side ----

func (p *Proto) onData(pkt *packet.Packet) {
	f, ok := p.rx[pkt.Flow]
	if !ok {
		f = &rxState{Rx: flowtrack.NewRx(pkt)}
		p.rx[pkt.Flow] = f
	}
	payload := f.MarkReceived(pkt.Seq, pkt.Size)
	if payload > 0 {
		p.col.Delivered(p.eng.Now(), payload)
		for f.cum < f.Npkts && f.State(f.cum) == flowtrack.Received {
			f.cum++
		}
	}
	// Per-packet ACK echoing the telemetry.
	ack := packet.NewControl(packet.Ack, p.id, pkt.Src, pkt.Flow)
	ack.Seq = pkt.Seq
	ack.CumAck = f.cum
	ack.Count = pkt.Size // echo wire size for inflight accounting
	// Copy the telemetry rather than aliasing it: the fabric recycles pkt
	// (and reuses its INT backing array) right after OnPacket returns,
	// while the ack is just beginning its journey back to the sender.
	ack.INT = append(ack.INT[:0], pkt.INT...)
	p.host.Send(ack)

	if payload > 0 && f.Done {
		opt := p.host.Topo().UnloadedFCT(f.Src, p.id, f.Size)
		p.col.FlowDone(stats.FlowRecord{
			ID: f.ID, Src: int32(f.Src), Dst: int32(p.id), Size: f.Size,
			Arrival: f.Arrival, Finish: p.eng.Now(), Optimal: opt,
		})
		fin := packet.NewControl(packet.FinishReceiver, p.id, f.Src, f.ID)
		p.host.Send(fin)
		f.Release()
	}
}

// ---- sender side: the HPCC window update ----

func (p *Proto) onAck(ack *packet.Packet) {
	f := p.tx[ack.Flow]
	if f == nil {
		return
	}
	f.lastAck = p.eng.Now()
	f.inflight -= int64(ack.Count)
	if f.inflight < 0 {
		f.inflight = 0
	}
	if ack.CumAck > f.cumAck {
		f.cumAck = ack.CumAck
	}

	u := p.measureInflight(f, ack.INT)
	updateWc := ack.Seq >= f.lastWcSeq
	p.computeWind(f, u, updateWc)
	if updateWc {
		f.lastWcSeq = f.nextSeq // next reference update one window later
	}
	p.trySend(f)
}

// measureInflight is HPCC's Algorithm 1: per-link utilization from
// consecutive INT snapshots, EWMA-folded into the flow's U estimate.
func (p *Proto) measureInflight(f *txState, hops []packet.INTHop) float64 {
	if len(hops) == 0 {
		return f.u
	}
	if len(f.lastINT) != len(hops) {
		// First sample on this path: just record.
		f.lastINT = append(f.lastINT[:0], hops...)
		return f.u
	}
	T := p.baseRTT.Seconds()
	u := 0.0
	tau := T
	for i, h := range hops {
		prev := f.lastINT[i]
		dt := h.Timestamp.Sub(prev.Timestamp).Seconds()
		if dt <= 0 {
			continue
		}
		txRate := float64(h.TxBytes-prev.TxBytes) * 8 / dt
		qlen := h.QueueBytes
		if prev.QueueBytes < qlen {
			qlen = prev.QueueBytes
		}
		ui := float64(qlen)*8/(h.RateBps*T) + txRate/h.RateBps
		if ui > u {
			u = ui
			tau = dt
		}
	}
	if tau > T {
		tau = T
	}
	f.u = (1-tau/T)*f.u + (tau/T)*u
	f.lastINT = append(f.lastINT[:0], hops...)
	return f.u
}

// computeWind is HPCC's window update: multiplicative alignment toward
// η when over target or out of probe stages, additive probe otherwise.
func (p *Proto) computeWind(f *txState, u float64, updateWc bool) {
	wai := float64(p.cfg.WAIBytes)
	if u >= p.cfg.Eta || f.incStage >= p.cfg.MaxStage {
		ratio := u / p.cfg.Eta
		if ratio < 0.01 {
			ratio = 0.01
		}
		f.w = f.wc/ratio + wai
		if updateWc {
			f.incStage = 0
			f.wc = f.w
		}
	} else {
		f.w = f.wc + wai
		if updateWc {
			f.incStage++
			f.wc = f.w
		}
	}
	// Clamp to sane bounds: at most a few BDPs, at least one packet.
	if max := 4 * float64(p.bdp); f.w > max {
		f.w = max
	}
	if f.w < packet.MTU {
		f.w = packet.MTU
	}
	p.ins.updates.Inc()
	p.ins.cwnd.Observe(f.w)
}
