package hpcc

import (
	"testing"

	"dcpim/internal/protocols/flowtrack"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func runHPCC(t *testing.T, tr *workload.Trace, horizon sim.Duration, seed int64) (*stats.Collector, *netsim.Fabric) {
	t.Helper()
	eng := sim.NewEngine(seed)
	tp := topo.SmallLeafSpine().Build()
	cfg := DefaultConfig()
	fab := netsim.New(eng, tp, cfg.FabricConfig())
	col := stats.NewCollector(0)
	Attach(fab, cfg, col)
	fab.Start()
	fab.Inject(tr)
	eng.Run(sim.Time(horizon))
	return col, fab
}

func TestUnloadedShortFlow(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 10_000, Arrival: 0},
	}}
	col, _ := runHPCC(t, tr, 300*sim.Microsecond, 1)
	if col.Completed() != 1 {
		t.Fatal("flow not completed")
	}
	// HPCC starts at a full BDP window: an unloaded short flow finishes
	// at line rate.
	if sd := col.Records()[0].Slowdown(); sd > 1.25 {
		t.Fatalf("unloaded slowdown %.3f", sd)
	}
}

func TestUnloadedLongFlowSustainsWindow(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 3_000_000, Arrival: 0},
	}}
	col, fab := runHPCC(t, tr, 3*sim.Millisecond, 2)
	if col.Completed() != 1 {
		t.Fatal("long flow not completed")
	}
	if fab.Counters.DataDrops != 0 {
		t.Fatal("drops under PFC")
	}
	// An unloaded path holds U ≈ η: the flow keeps ≈ η of line rate.
	if sd := col.Records()[0].Slowdown(); sd > 1.35 {
		t.Fatalf("unloaded long flow slowdown %.3f (window collapsed?)", sd)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two long flows into one receiver: each should converge near half
	// rate; completion times within 30% of each other.
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 1, Dst: 0, Size: 2_000_000, Arrival: 0},
		{ID: 2, Src: 2, Dst: 0, Size: 2_000_000, Arrival: 0},
	}}
	col, fab := runHPCC(t, tr, 10*sim.Millisecond, 3)
	if col.Completed() != 2 {
		t.Fatalf("completed %d/2", col.Completed())
	}
	if fab.Counters.DataDrops != 0 {
		t.Fatal("drops under PFC")
	}
	a, b := col.Records()[0].FCT().Seconds(), col.Records()[1].FCT().Seconds()
	ratio := a / b
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 1.3 {
		t.Fatalf("unfair share: FCTs %.1fus vs %.1fus", a*1e6, b*1e6)
	}
}

func TestIncastTriggersPFC(t *testing.T) {
	// HPCC's documented weakness: incast fills the downlink queue until
	// PFC pauses upstream — no drops, but pauses fire.
	var flows []workload.Flow
	for src := 1; src < 8; src++ {
		flows = append(flows, workload.Flow{ID: uint64(src), Src: src, Dst: 0, Size: 500_000, Arrival: 0})
	}
	// Tighter watermarks than the deployment defaults so the 7:1 burst
	// reliably crosses them — this exercises the pause/resume machinery.
	eng := sim.NewEngine(4)
	tp := topo.SmallLeafSpine().Build()
	cfg := DefaultConfig()
	fc := cfg.FabricConfig()
	fc.PFCPause = 40 << 10
	fc.PFCResume = 20 << 10
	fab := netsim.New(eng, tp, fc)
	col := stats.NewCollector(0)
	Attach(fab, cfg, col)
	fab.Start()
	fab.Inject(&workload.Trace{Flows: flows})
	eng.Run(sim.Time(10 * sim.Millisecond))
	if fab.Counters.DataDrops != 0 {
		t.Fatal("drops despite PFC")
	}
	if fab.Counters.PFCPauses == 0 {
		t.Fatal("hard incast did not trigger PFC")
	}
	if col.Completed() != 7 {
		t.Fatalf("completed %d/7", col.Completed())
	}
}

func TestWindowReactsToCongestion(t *testing.T) {
	// Direct unit test of the update rule: high measured utilization
	// shrinks the window below the reference; low utilization grows it.
	p := New(DefaultConfig(), stats.NewCollector(0))
	p.bdp = 72_500
	p.baseRTT = 6 * sim.Microsecond
	f := &txState{Tx: mkTx(1), w: 72_500, wc: 72_500}
	p.computeWind(f, 1.9, true) // U = 2η: halve
	if f.w > 0.6*72_500+float64(packet.MTU) {
		t.Fatalf("window after U=1.9: %.0f, want ≈ halved", f.w)
	}
	f2 := &txState{Tx: mkTx(2), w: 40_000, wc: 40_000}
	p.computeWind(f2, 0.3, true) // far below η: additive probe
	if f2.w <= 40_000 {
		t.Fatalf("window did not grow at low U: %.0f", f2.w)
	}
	// After maxStage probes, multiplicative alignment kicks in even at
	// low U (fast ramp): W = Wc/(U/η) ≫ Wc.
	f2.incStage = p.cfg.MaxStage
	p.computeWind(f2, 0.3, true)
	if f2.w < 1.5*40_000 {
		t.Fatalf("MI ramp missing: %.0f", f2.w)
	}
}

func TestDeterminism(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	mk := func() *workload.Trace {
		return workload.AllToAllConfig{
			Hosts: 8, HostRate: cfgT.HostRate, Load: 0.5,
			Dist: workload.WebSearch(), Horizon: 500 * sim.Microsecond, Seed: 6,
		}.Generate()
	}
	c1, _ := runHPCC(t, mk(), 3*sim.Millisecond, 7)
	c2, _ := runHPCC(t, mk(), 3*sim.Millisecond, 7)
	if c1.Completed() != c2.Completed() || c1.DeliveredBytes() != c2.DeliveredBytes() {
		t.Fatal("non-deterministic HPCC run")
	}
	if c1.Completed() == 0 {
		t.Fatal("nothing completed")
	}
}

// mkTx builds sender flow state for unit tests.
func mkTx(id uint64) *flowtrack.Tx { return flowtrack.NewTx(id, 0, 1<<20, 0) }
