package hpcc

import (
	"dcpim/internal/metrics"
	"dcpim/internal/netsim"
	"dcpim/internal/protocols"
)

// instruments is HPCC's optional telemetry, shared across hosts. The
// zero value is inert (nil instruments no-op).
type instruments struct {
	cwnd    *metrics.Histogram // window after each HPCC update, bytes
	updates *metrics.Counter   // window updates (per-ACK)
}

// RegisterMetrics instruments every attached Proto on reg. No-op when
// reg is nil.
func RegisterMetrics(ps []*Proto, reg *metrics.Registry) {
	if reg == nil || len(ps) == 0 {
		return
	}
	ins := instruments{
		cwnd:    reg.Histogram("hpcc/cwnd_bytes"),
		updates: reg.Counter("hpcc/window_updates"),
	}
	for _, p := range ps {
		p.ins = ins
	}
}

// Register HPCC. ProtoConfig accepts a Config override.
func init() {
	protocols.Register(protocols.Descriptor{
		Name:         "hpcc",
		FabricConfig: func() netsim.Config { return DefaultConfig().FabricConfig() },
		Attach: func(f *netsim.Fabric, opts protocols.AttachOptions) {
			cfg := DefaultConfig()
			if c, ok := opts.ProtoConfig.(Config); ok {
				cfg = c
			}
			RegisterMetrics(Attach(f, cfg, opts.Collector), opts.Metrics)
		},
	})
}
