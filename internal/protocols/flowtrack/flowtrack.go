// Package flowtrack provides per-flow sequence bookkeeping shared by the
// receiver-driven baseline transports (pHost, Homa/Aeolus, NDP): which
// packets are still needed, which have credit outstanding, and which have
// arrived. dcPIM keeps its own specialized tracker in internal/core; the
// baselines reuse this one.
package flowtrack

import (
	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

// Seq states.
const (
	Needed uint8 = iota // not yet granted/credited
	Granted
	Received
)

// Rx tracks one incoming flow at a receiver.
type Rx struct {
	ID      uint64
	Src     int
	Size    int64
	Arrival sim.Time
	Npkts   int

	state       []uint8
	nextNew     int
	retx        []int
	Outstanding int // granted, data not yet received
	RecvBytes   int64
	RecvCnt     int
	MaxReceived int // highest seq received so far (-1 before any arrival)
	Done        bool
}

// NewRx builds receiver state from any packet of the flow (which carries
// FlowSize and the sender's send timestamp).
func NewRx(p *packet.Packet) *Rx {
	n := packet.PacketsForBytes(p.FlowSize)
	return &Rx{
		ID: p.Flow, Src: p.Src, Size: p.FlowSize, Arrival: p.SentAt,
		Npkts: n, state: make([]uint8, n), MaxReceived: -1,
	}
}

// Remaining returns bytes not yet received.
func (f *Rx) Remaining() int64 { return f.Size - f.RecvBytes }

// NeededCnt returns the number of packets in Needed state.
func (f *Rx) NeededCnt() int { return f.Npkts - f.RecvCnt - f.Outstanding }

// MarkReceived records arrival of seq and returns the payload bytes it
// contributed (0 for duplicates, out-of-range, or after completion).
func (f *Rx) MarkReceived(seq, wireSize int) int64 {
	if f.Done || seq < 0 || seq >= f.Npkts || f.state[seq] == Received {
		return 0
	}
	if f.state[seq] == Granted {
		f.Outstanding--
	}
	f.state[seq] = Received
	f.RecvCnt++
	if seq > f.MaxReceived {
		f.MaxReceived = seq
	}
	payload := int64(wireSize) - packet.HeaderSize
	if payload < 0 {
		payload = 0
	}
	f.RecvBytes += payload
	if f.RecvBytes >= f.Size {
		f.Done = true
	}
	return payload
}

// NextNeeded returns the lowest seq still in Needed state, or -1.
func (f *Rx) NextNeeded() int {
	for len(f.retx) > 0 {
		if s := f.retx[0]; f.state[s] == Needed {
			return s
		}
		f.retx = f.retx[1:]
	}
	for f.nextNew < f.Npkts && f.state[f.nextNew] != Needed {
		f.nextNew++
	}
	if f.nextNew < f.Npkts {
		return f.nextNew
	}
	return -1
}

// Grant transitions seq from Needed to Granted (credit sent).
func (f *Rx) Grant(seq int) {
	if f.state[seq] != Needed {
		return
	}
	if len(f.retx) > 0 && f.retx[0] == seq {
		f.retx = f.retx[1:]
	}
	f.state[seq] = Granted
	f.Outstanding++
}

// SkipGrant marks seq as Granted without Outstanding accounting — used
// for the unscheduled prefix the sender transmits without credit, so that
// NextNeeded starts beyond it.
func (f *Rx) SkipGrant(seq int) {
	if f.state[seq] == Needed {
		f.state[seq] = Granted
		f.Outstanding++
	}
}

// RevertStale returns every Granted-but-unreceived seq at or below maxSeq
// to the Needed state (timeout-driven loss recovery) and reports how many
// were reverted.
func (f *Rx) RevertStale(maxSeq int) int {
	if f.Done {
		return 0
	}
	n := 0
	if maxSeq >= f.Npkts {
		maxSeq = f.Npkts - 1
	}
	for seq := 0; seq <= maxSeq; seq++ {
		if f.state[seq] == Granted {
			f.state[seq] = Needed
			f.Outstanding--
			f.retx = append(f.retx, seq)
			n++
		}
	}
	return n
}

// State exposes a seq's state (tests and protocol edge cases).
func (f *Rx) State(seq int) uint8 { return f.state[seq] }

// Tx tracks one outgoing flow at a sender.
type Tx struct {
	ID      uint64
	Dst     int
	Size    int64
	Arrival sim.Time
	Npkts   int

	sent    []bool
	SentCnt int
	Done    bool
}

// NewTx builds sender state for a flow.
func NewTx(id uint64, dst int, size int64, arrival sim.Time) *Tx {
	return &Tx{
		ID: id, Dst: dst, Size: size, Arrival: arrival,
		Npkts: packet.PacketsForBytes(size),
		sent:  make([]bool, packet.PacketsForBytes(size)),
	}
}

// MarkSent records transmission of seq (idempotent).
func (f *Tx) MarkSent(seq int) {
	if seq >= 0 && seq < f.Npkts && !f.sent[seq] {
		f.sent[seq] = true
		f.SentCnt++
	}
}

// Sent reports whether seq was ever transmitted.
func (f *Tx) Sent(seq int) bool { return seq >= 0 && seq < f.Npkts && f.sent[seq] }

// RemainingBytes approximates untransmitted payload.
func (f *Tx) RemainingBytes() int64 {
	return int64(f.Npkts-f.SentCnt) * packet.PayloadSize
}

// Release frees a completed flow's bulk state while keeping the Done
// marker, so duplicate packets arriving later resolve against a finished
// flow instead of recreating it (which would double-count delivery).
func (f *Rx) Release() {
	f.state = nil
	f.retx = nil
}

// RevertGaps returns Granted-but-unreceived seqs that sit more than slack
// packets below the highest received seq back to Needed — the gap-based
// drop detector: a later packet arrived, so anything this far behind it
// was dropped, not merely delayed. Returns the number reverted.
func (f *Rx) RevertGaps(slack int) int {
	if f.Done || f.MaxReceived < 0 {
		return 0
	}
	return f.RevertStale(f.MaxReceived - slack)
}
