package flowtrack

import (
	"testing"
	"testing/quick"

	"dcpim/internal/packet"
)

func rxFor(size int64) *Rx {
	p := &packet.Packet{Flow: 1, Src: 2, FlowSize: size}
	return NewRx(p)
}

func TestRxLifecycle(t *testing.T) {
	f := rxFor(3 * packet.PayloadSize)
	if f.Npkts != 3 || f.NeededCnt() != 3 {
		t.Fatalf("npkts=%d needed=%d", f.Npkts, f.NeededCnt())
	}
	if s := f.NextNeeded(); s != 0 {
		t.Fatalf("NextNeeded = %d, want 0", s)
	}
	f.Grant(0)
	if f.Outstanding != 1 || f.NextNeeded() != 1 {
		t.Fatalf("after grant: outstanding=%d next=%d", f.Outstanding, f.NextNeeded())
	}
	if got := f.MarkReceived(0, packet.MTU); got != packet.PayloadSize {
		t.Fatalf("payload = %d", got)
	}
	if f.Outstanding != 0 {
		t.Fatal("outstanding not decremented")
	}
	// Duplicate is ignored.
	if got := f.MarkReceived(0, packet.MTU); got != 0 {
		t.Fatal("duplicate counted")
	}
	f.MarkReceived(1, packet.MTU)
	f.MarkReceived(2, packet.MTU)
	if !f.Done || f.Remaining() != 0 {
		t.Fatalf("done=%v remaining=%d", f.Done, f.Remaining())
	}
}

func TestRxRevertStale(t *testing.T) {
	f := rxFor(5 * packet.PayloadSize)
	for i := 0; i < 4; i++ {
		f.Grant(f.NextNeeded())
	}
	f.MarkReceived(1, packet.MTU)
	// Seqs 0,2,3 are granted-unreceived; 4 still needed.
	if n := f.RevertStale(f.Npkts); n != 3 {
		t.Fatalf("reverted %d, want 3", n)
	}
	if f.Outstanding != 0 {
		t.Fatalf("outstanding = %d", f.Outstanding)
	}
	// Reverted seqs come back first, lowest first.
	if s := f.NextNeeded(); s != 0 {
		t.Fatalf("next = %d, want 0 (retx first)", s)
	}
	f.Grant(0)
	if s := f.NextNeeded(); s != 2 {
		t.Fatalf("next = %d, want 2", s)
	}
}

func TestRxSkipGrant(t *testing.T) {
	f := rxFor(10 * packet.PayloadSize)
	for i := 0; i < 3; i++ {
		f.SkipGrant(i) // unscheduled prefix
	}
	if s := f.NextNeeded(); s != 3 {
		t.Fatalf("next = %d, want 3 (prefix skipped)", s)
	}
	// Unreceived unscheduled packets revert like anything else.
	f.MarkReceived(0, packet.MTU)
	if n := f.RevertStale(2); n != 2 {
		t.Fatalf("reverted %d, want 2", n)
	}
}

func TestRxTrimmedDelivery(t *testing.T) {
	f := rxFor(2 * packet.PayloadSize)
	// A trimmed packet (header only) contributes zero payload and must
	// not complete the flow.
	if got := f.MarkReceived(0, packet.HeaderSize); got != 0 {
		t.Fatalf("trimmed payload = %d", got)
	}
	if f.Done {
		t.Fatal("flow done after header-only arrival")
	}
}

func TestTxLifecycle(t *testing.T) {
	f := NewTx(7, 3, 2*packet.PayloadSize+10, 0)
	if f.Npkts != 3 {
		t.Fatalf("npkts = %d", f.Npkts)
	}
	f.MarkSent(0)
	f.MarkSent(0)
	if f.SentCnt != 1 || !f.Sent(0) || f.Sent(1) {
		t.Fatalf("sent bookkeeping broken: cnt=%d", f.SentCnt)
	}
	if f.RemainingBytes() != 2*packet.PayloadSize {
		t.Fatalf("remaining = %d", f.RemainingBytes())
	}
}

// Property: conservation — needed + outstanding + received == npkts under
// arbitrary interleavings of grant/receive/revert.
func TestRxConservationProperty(t *testing.T) {
	f := func(ops []uint16, sizeRaw uint16) bool {
		size := int64(sizeRaw%50+1) * packet.PayloadSize
		fl := rxFor(size)
		for _, op := range ops {
			seq := int(op) % fl.Npkts
			switch op % 3 {
			case 0:
				if s := fl.NextNeeded(); s >= 0 {
					fl.Grant(s)
				}
			case 1:
				if !fl.Done {
					fl.MarkReceived(seq, packet.MTU)
				}
			case 2:
				fl.RevertStale(seq)
			}
			if fl.Done {
				break
			}
			needed := 0
			for s := 0; s < fl.Npkts; s++ {
				if fl.State(s) == Needed {
					needed++
				}
			}
			if needed+fl.Outstanding+fl.RecvCnt != fl.Npkts {
				return false
			}
			if fl.NeededCnt() != needed || fl.Outstanding < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextNeeded always returns a Needed seq and never skips one
// forever — repeatedly granting NextNeeded exhausts the flow.
func TestNextNeededExhaustsProperty(t *testing.T) {
	f := func(sizeRaw uint16) bool {
		size := int64(sizeRaw%100+1) * packet.PayloadSize
		fl := rxFor(size)
		granted := 0
		for {
			s := fl.NextNeeded()
			if s < 0 {
				break
			}
			if fl.State(s) != Needed {
				return false
			}
			fl.Grant(s)
			granted++
			if granted > fl.Npkts {
				return false
			}
		}
		return granted == fl.Npkts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
