// Package phost implements a pHost-style receiver-driven transport (Gao et
// al., CoNEXT 2015): per-packet tokens from the receiver, a free
// first-BDP window the sender transmits without credit, SRPT token
// scheduling at the receiver, and no reliance on switch priorities for
// data. Mechanically this is the Homa engine with a flat data priority and
// no overcommitment, which is exactly how the dcPIM paper positions the
// two designs (single-round matching protocols, footnote 1).
package phost

import (
	"dcpim/internal/netsim"
	"dcpim/internal/protocols/homa"
	"dcpim/internal/stats"
)

// Config tunes the pHost host.
type Config struct {
	// FreeBytes is the uncredited first window (0 = 1 BDP).
	FreeBytes int64
}

// Proto is one host's pHost instance.
type Proto = homa.Proto

// New returns an unattached pHost host.
func New(cfg Config, col *stats.Collector) *Proto {
	return homa.New(homa.Config{
		Overcommit:   1,
		UnschedBytes: cfg.FreeBytes,
		FlatPriority: true,
	}, col)
}

// Attach installs pHost on every host of the fabric.
func Attach(fab *netsim.Fabric, cfg Config, col *stats.Collector) []*Proto {
	ps := make([]*Proto, fab.Topology().NumHosts)
	for i := range ps {
		ps[i] = New(cfg, col.ForShard(fab.ShardOfHost(i)))
		fab.AttachProtocol(i, ps[i])
	}
	return ps
}

// FabricConfig returns the netsim configuration pHost expects (per-packet
// spraying, plain drop-tail queues).
func FabricConfig() netsim.Config { return netsim.Config{Spray: true} }
