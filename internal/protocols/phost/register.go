package phost

import (
	"dcpim/internal/netsim"
	"dcpim/internal/protocols"
	"dcpim/internal/protocols/homa"
)

// Register pHost. Proto aliases homa.Proto, so the engine's instruments
// apply under the "phost" prefix. ProtoConfig accepts a Config override.
func init() {
	protocols.Register(protocols.Descriptor{
		Name:         "phost",
		FabricConfig: FabricConfig,
		Attach: func(f *netsim.Fabric, opts protocols.AttachOptions) {
			cfg := Config{}
			if c, ok := opts.ProtoConfig.(Config); ok {
				cfg = c
			}
			homa.RegisterMetrics(Attach(f, cfg, opts.Collector), opts.Metrics, "phost")
		},
	})
}
