package phost

import (
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func runPHost(t *testing.T, tr *workload.Trace, horizon sim.Duration, seed int64) (*stats.Collector, *netsim.Fabric) {
	t.Helper()
	eng := sim.NewEngine(seed)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, FabricConfig())
	col := stats.NewCollector(0)
	Attach(fab, Config{}, col)
	fab.Start()
	fab.Inject(tr)
	eng.Run(sim.Time(horizon))
	return col, fab
}

func TestUnloadedFlows(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 10_000, Arrival: 0},
		{ID: 2, Src: 1, Dst: 6, Size: 1_000_000, Arrival: 0},
	}}
	col, _ := runPHost(t, tr, 2*sim.Millisecond, 1)
	if col.Completed() != 2 {
		t.Fatalf("completed %d/2", col.Completed())
	}
	for _, r := range col.Records() {
		if sd := r.Slowdown(); sd > 1.5 {
			t.Fatalf("flow %d unloaded slowdown %.2f", r.ID, sd)
		}
	}
}

func TestFlatPriority(t *testing.T) {
	// pHost does not rely on switch data priorities: every data packet
	// uses one class.
	eng := sim.NewEngine(2)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, FabricConfig())
	col := stats.NewCollector(0)
	Attach(fab, Config{}, col)
	fab.Start()
	prios := map[uint8]bool{}
	fab.AddObserver(netsim.ObserverFuncs{Delivered: func(host int, p *packet.Packet) {
		if p.Kind == packet.Data {
			prios[p.Priority] = true
		}
	}})
	fab.Inject(&workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 500_000, Arrival: 0},
		{ID: 2, Src: 1, Dst: 7, Size: 5_000, Arrival: 0},
	}})
	eng.Run(sim.Time(sim.Millisecond))
	if len(prios) != 1 {
		t.Fatalf("pHost used %d data priorities, want 1", len(prios))
	}
}

func TestAllToAll(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	tr := workload.AllToAllConfig{
		Hosts: 8, HostRate: cfgT.HostRate, Load: 0.5,
		Dist: workload.IMC10(), Horizon: sim.Millisecond, Seed: 3,
	}.Generate()
	col, _ := runPHost(t, tr, 4*sim.Millisecond, 3)
	if col.Completed() < int64(len(tr.Flows))*95/100 {
		t.Fatalf("completed %d/%d", col.Completed(), len(tr.Flows))
	}
}
