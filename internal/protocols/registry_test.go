package protocols

import (
	"strings"
	"testing"

	"dcpim/internal/netsim"
)

// This test binary links no protocol packages (they import this package,
// not the reverse), so the registry starts empty and the test owns it.

func desc(name string) Descriptor {
	return Descriptor{
		Name:         name,
		FabricConfig: func() netsim.Config { return netsim.Config{Spray: true} },
		Attach:       func(*netsim.Fabric, AttachOptions) {},
	}
}

func TestRegisterLookup(t *testing.T) {
	Register(desc("beta"))
	Register(desc("alpha"))

	if _, ok := Lookup("alpha"); !ok {
		t.Fatal("alpha not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unregistered name found")
	}
	d := MustLookup("beta")
	if !d.FabricConfig().Spray {
		t.Fatal("descriptor round-trip lost FabricConfig")
	}
	names := Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Names() = %v, want sorted [alpha beta]", names)
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	expectPanic := func(name string, d Descriptor, wantSub string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if s, ok := r.(string); ok && wantSub != "" && !strings.Contains(s, wantSub) {
				t.Fatalf("%s: panic %q missing %q", name, s, wantSub)
			}
		}()
		Register(d)
	}
	Register(desc("gamma"))
	expectPanic("duplicate", desc("gamma"), "gamma")
	expectPanic("no name", Descriptor{FabricConfig: desc("x").FabricConfig, Attach: desc("x").Attach}, "incomplete")
	expectPanic("no fabric", Descriptor{Name: "y", Attach: desc("y").Attach}, "incomplete")
	expectPanic("no attach", Descriptor{Name: "z", FabricConfig: desc("z").FabricConfig}, "incomplete")
}

func TestMustLookupPanicsWithNames(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "registered:") {
			t.Fatalf("panic %v does not list registered protocols", r)
		}
	}()
	MustLookup("definitely-not-registered")
}
