// Package homa implements a receiver-driven Homa-style transport
// (Montazeri et al., SIGCOMM 2018) and its Aeolus variant (Hu et al.,
// SIGCOMM 2020), the strongest baseline in the dcPIM evaluation.
//
// Mechanisms reproduced:
//
//   - Senders transmit an unscheduled prefix (one BDP) immediately, at a
//     priority derived from flow size (smaller flows → higher priority).
//   - Receivers grant the rest packet-by-packet, SRPT-first, with an
//     overcommitment degree: when the best sender's window is full
//     (the sender is slow or busy), grants spill to the next-best flows.
//   - Classic Homa sends unscheduled traffic above scheduled traffic and
//     has no drop-aware recovery beyond timeouts; with realistic buffers
//     this loses packets under load (the behaviour Aeolus documents).
//   - Aeolus mode marks unscheduled packets (beyond each flow's first)
//     droppable so switches shed them early under buffer pressure
//     (netsim's AeolusThresholdBytes), and recovers dropped unscheduled
//     packets as scheduled retransmissions via gap detection and stall
//     timeouts.
package homa

import (
	"sort"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/protocols/flowtrack"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// Config tunes the Homa host.
type Config struct {
	// Aeolus selects the Aeolus priority layout and selective-drop
	// recovery; the fabric should set AeolusThresholdBytes alongside.
	Aeolus bool
	// Overcommit is the number of senders a receiver keeps granted in
	// parallel (Homa's overcommitment degree). 0 selects 2.
	Overcommit int
	// UnschedBytes is the unscheduled prefix per flow. 0 selects 1 BDP.
	UnschedBytes int64
	// FlatPriority collapses all data to one priority class (used by the
	// pHost-like configuration; control stays at priority 0).
	FlatPriority bool
}

// DefaultConfig returns Homa defaults (classic mode). The overcommitment
// degree follows the Homa paper's observation that several concurrently
// granted senders are needed to keep a downlink busy when senders are
// shared across receivers.
func DefaultConfig() Config { return Config{Overcommit: 4} }

// AeolusConfig returns the Homa Aeolus configuration.
func AeolusConfig() Config { return Config{Aeolus: true, Overcommit: 4} }

// FabricConfig returns the netsim configuration this protocol expects:
// spraying, and in Aeolus mode an early selective-drop threshold for
// unscheduled packets.
func (c Config) FabricConfig() netsim.Config {
	fc := netsim.Config{Spray: true}
	if c.Aeolus {
		// Aeolus sheds unscheduled packets at a shallow threshold — the
		// design point is to keep buffers nearly empty for scheduled
		// traffic and rely on scheduled retransmission for the shed
		// prefix. This is what costs Aeolus its short-flow latency in the
		// dcPIM comparison.
		fc.AeolusThresholdBytes = 32 * packet.MTU
	}
	return fc
}

// Proto is one host's Homa instance.
type Proto struct {
	cfg Config
	col *stats.Collector
	ins instruments // optional telemetry (RegisterMetrics); zero value is inert

	host *netsim.Host
	eng  *sim.Engine
	id   int

	unschedPkts int
	windowPkts  int
	mtuTime     sim.Duration
	dataRTT     sim.Duration

	tx map[uint64]*flowtrack.Tx
	rx map[uint64]*rxState

	granting bool

	credits []*packet.Packet // queued grants awaiting transmission
	pacing  bool
}

type rxState struct {
	*flowtrack.Rx
	lastProgress sim.Time
	checker      sim.Timer
}

// New returns an unattached Homa host.
func New(cfg Config, col *stats.Collector) *Proto {
	if cfg.Overcommit == 0 {
		cfg.Overcommit = 2
	}
	return &Proto{cfg: cfg, col: col,
		tx: make(map[uint64]*flowtrack.Tx),
		rx: make(map[uint64]*rxState),
	}
}

// Attach installs Homa on every host of the fabric.
func Attach(fab *netsim.Fabric, cfg Config, col *stats.Collector) []*Proto {
	ps := make([]*Proto, fab.Topology().NumHosts)
	for i := range ps {
		ps[i] = New(cfg, col.ForShard(fab.ShardOfHost(i)))
		fab.AttachProtocol(i, ps[i])
	}
	return ps
}

// Start implements netsim.Protocol.
func (p *Proto) Start(h *netsim.Host) {
	p.host = h
	p.eng = h.Engine()
	p.id = h.ID()
	bdp := h.Topo().BDP()
	unsched := p.cfg.UnschedBytes
	if unsched == 0 {
		unsched = bdp
	}
	p.unschedPkts = packet.PacketsForBytes(unsched)
	p.windowPkts = packet.PacketsForBytes(bdp)
	p.mtuTime = sim.TransmissionTime(packet.MTU, h.LineRate())
	p.dataRTT = h.Topo().DataRTT()
}

// unschedPrio maps flow size to the unscheduled priority class.
func (p *Proto) unschedPrio(size int64) uint8 {
	if p.cfg.FlatPriority {
		return packet.PrioDataHigh
	}
	bdp := int64(p.windowPkts) * packet.PayloadSize
	var rank uint8
	switch {
	case size <= bdp/8:
		rank = 0
	case size <= bdp:
		rank = 1
	case size <= 8*bdp:
		rank = 2
	default:
		rank = 3
	}
	// Unscheduled rides on top in both modes (these are the first-RTT,
	// latency-critical packets); Aeolus differs by making them droppable
	// in the fabric, not by starving them in queues.
	return 1 + rank
}

// schedPrio maps an SRPT rank to the scheduled priority class.
func (p *Proto) schedPrio(rank int) uint8 {
	if p.cfg.FlatPriority {
		return packet.PrioDataHigh
	}
	if rank > 2 {
		rank = 2
	}
	// Scheduled classes sit below unscheduled (5..7), best SRPT rank
	// highest.
	return uint8(5 + rank)
}

// OnFlowArrival implements netsim.Protocol: notify, then blast the
// unscheduled prefix.
func (p *Proto) OnFlowArrival(fl workload.Flow) {
	p.col.FlowStarted()
	f := flowtrack.NewTx(fl.ID, fl.Dst, fl.Size, fl.Arrival)
	p.tx[f.ID] = f

	n := packet.NewControl(packet.Notification, p.id, f.Dst, f.ID)
	n.FlowSize = f.Size
	p.host.Send(n)

	prio := p.unschedPrio(f.Size)
	for seq := 0; seq < f.Npkts && seq < p.unschedPkts; seq++ {
		// Aeolus guarantees the first unscheduled packet is never
		// selectively dropped (the "probe" the receiver schedules from).
		p.sendData(f, seq, prio, seq > 0)
	}
}

func (p *Proto) sendData(f *flowtrack.Tx, seq int, prio uint8, unsched bool) {
	d := packet.NewData(p.id, f.Dst, f.ID, seq, packet.DataPacketSize(f.Size, seq), prio)
	d.FlowSize = f.Size
	d.Unsched = unsched
	f.MarkSent(seq)
	p.ins.sentBytes.Add(int64(d.Size))
	if unsched {
		p.ins.unschedBytes.Add(int64(d.Size))
	}
	p.host.Send(d)
}

// OnPacket implements netsim.Protocol.
func (p *Proto) OnPacket(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.Notification:
		p.onNotification(pkt)
	case packet.Data:
		p.onData(pkt)
	case packet.Grant:
		p.onGrant(pkt)
	case packet.FinishReceiver:
		delete(p.tx, pkt.Flow)
	}
}

// ---- receiver side ----

func (p *Proto) ensureRx(pkt *packet.Packet) *rxState {
	if f, ok := p.rx[pkt.Flow]; ok {
		return f
	}
	f := &rxState{Rx: flowtrack.NewRx(pkt), lastProgress: p.eng.Now()}
	p.rx[pkt.Flow] = f
	// The unscheduled prefix is in flight without grants.
	for seq := 0; seq < f.Npkts && seq < p.unschedPkts; seq++ {
		f.SkipGrant(seq)
	}
	// Loss detection: if the flow stalls, return granted-unreceived seqs
	// to the needed pool and re-grant them as scheduled packets. This is
	// Homa's timeout path and Aeolus's recovery path in one.
	f.checker = p.eng.After(3*p.dataRTT/2, func() { p.checkProgress(f) })
	p.kickGranter()
	return f
}

func (p *Proto) checkProgress(f *rxState) {
	if f.Done {
		return
	}
	// Gap-based drop detection: credited packets far below the received
	// frontier were dropped (selective dropping or overflow), not merely
	// delayed — revert them so they are re-requested as scheduled. The
	// slack absorbs spraying-induced reordering.
	if n := f.RevertGaps(16); n > 0 {
		p.kickGranter()
	}
	// Full stall: nothing at all arrived for a while — revert everything
	// outstanding (covers a fully dropped unscheduled prefix).
	if p.eng.Now().Sub(f.lastProgress) >= 3*p.dataRTT/2 && f.Outstanding > 0 {
		f.RevertStale(f.Npkts)
		p.kickGranter()
	}
	f.checker = p.eng.After(3*p.dataRTT/2, func() { p.checkProgress(f) })
}

func (p *Proto) onNotification(pkt *packet.Packet) {
	p.ensureRx(pkt)
}

func (p *Proto) onData(pkt *packet.Packet) {
	f := p.ensureRx(pkt)
	wire := pkt.Size
	if pkt.Trimmed {
		wire = packet.HeaderSize // no payload credit
	}
	payload := f.MarkReceived(pkt.Seq, wire)
	if payload > 0 {
		f.lastProgress = p.eng.Now()
		p.col.Delivered(p.eng.Now(), payload)
	}
	if payload > 0 && f.Done {
		// This packet completed the flow (duplicates return 0 payload).
		p.completeRx(f)
		return
	}
	if f.Done {
		return
	}
	// Data-clocked granting keeps the pipe full.
	p.kickGranter()
}

func (p *Proto) completeRx(f *rxState) {
	f.checker.Cancel()
	opt := p.host.Topo().UnloadedFCT(f.Src, p.id, f.Size)
	p.col.FlowDone(stats.FlowRecord{
		ID: f.ID, Src: int32(f.Src), Dst: int32(p.id), Size: f.Size,
		Arrival: f.Arrival, Finish: p.eng.Now(), Optimal: opt,
	})
	fin := packet.NewControl(packet.FinishReceiver, p.id, f.Src, f.ID)
	p.host.Send(fin)
	// Keep the entry (Done) so duplicates don't recreate the flow.
	f.Release()
}

// kickGranter starts the paced grant loop if idle.
func (p *Proto) kickGranter() {
	if p.granting {
		return
	}
	p.granting = true
	p.grantTick()
}

// grantTick runs every MTU time: grant one packet to the best flow with
// window room, falling back through the overcommit set. SRPT order;
// deterministic flow-id tie-break. The receiver's total outstanding
// bytes — including unscheduled packets known (from notifications) to be
// in flight — are capped at the overcommit degree times one BDP, which is
// what keeps Homa's downlink queue bounded.
func (p *Proto) grantTick() {
	cands := p.grantCandidates()
	if len(cands) == 0 {
		p.granting = false
		return
	}
	granted := false
	for rank := 0; rank < len(cands) && rank < p.cfg.Overcommit; rank++ {
		f := cands[rank]
		if f.Outstanding >= p.windowPkts {
			continue
		}
		seq := f.NextNeeded()
		if seq < 0 {
			continue
		}
		f.Grant(seq)
		g := packet.NewControl(packet.Grant, p.id, f.Src, f.ID)
		g.Seq = seq
		g.Count = int(p.schedPrio(rank))
		p.ins.grants.Inc()
		p.ins.grantedBytes.Add(int64(packet.DataPacketSize(f.Size, seq)))
		p.host.Send(g)
		granted = true
		break
	}
	if !granted {
		// Every candidate's window is full: stall until data arrives.
		p.granting = false
		return
	}
	p.eng.After(p.mtuTime, p.grantTick)
}

// grantCandidates returns incomplete flows with grantable work, SRPT
// ordered.
func (p *Proto) grantCandidates() []*rxState {
	var cands []*rxState
	//lint:deterministic filtered collect; the sort below totally orders by (remaining, flow id)
	for _, f := range p.rx {
		if f.Done || f.NeededCnt() <= 0 {
			continue
		}
		cands = append(cands, f)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Remaining() != cands[j].Remaining() {
			return cands[i].Remaining() < cands[j].Remaining()
		}
		return cands[i].ID < cands[j].ID
	})
	return cands
}

// ---- sender side ----

// onGrant queues the granted packet as credit. A sender granted by
// several receivers at once can still only transmit at its line rate, so
// credit is spent one packet per MTU time, smallest-remaining flow first
// (Homa's sender-side SRPT) — this is what keeps sender NIC queues empty
// and makes receiver-side window accounting meaningful.
func (p *Proto) onGrant(g *packet.Packet) {
	if p.tx[g.Flow] == nil {
		return
	}
	g.Keep() // queued as credit until spent
	p.credits = append(p.credits, g)
	if !p.pacing {
		p.pacing = true
		// Deferred one event: spending now could release g inside its own
		// OnPacket, which the packet ownership contract forbids (the
		// fabric still touches the packet after OnPacket returns).
		p.eng.After(0, p.spendCredit)
	}
}

// spendCredit transmits one granted packet per MTU time while credit is
// queued, yielding to unscheduled bursts already occupying the NIC.
func (p *Proto) spendCredit() {
	if len(p.credits) == 0 {
		p.pacing = false
		return
	}
	if p.host.NICQueuedBytes() >= 2*packet.MTU {
		p.eng.After(p.mtuTime, p.spendCredit)
		return
	}
	// Pick the credit whose flow has the fewest remaining bytes.
	best := -1
	var bestRem int64
	for i, g := range p.credits {
		f := p.tx[g.Flow]
		if f == nil {
			continue
		}
		rem := f.RemainingBytes()
		if best < 0 || rem < bestRem || (rem == bestRem && g.Flow < p.credits[best].Flow) {
			best, bestRem = i, rem
		}
	}
	if best < 0 {
		for _, g := range p.credits {
			packet.Release(g) // credit for flows that no longer exist
		}
		p.credits = p.credits[:0]
		p.pacing = false
		return
	}
	g := p.credits[best]
	p.credits[best] = p.credits[len(p.credits)-1]
	p.credits = p.credits[:len(p.credits)-1]
	f := p.tx[g.Flow]
	prio := uint8(g.Count)
	if prio == 0 || prio >= packet.NumPriorities {
		prio = packet.PrioDataLow
	}
	seq := g.Seq
	packet.Release(g) // spent
	p.sendData(f, seq, prio, false)
	p.eng.After(p.mtuTime, p.spendCredit)
}

// DiagState exposes granter state for diagnostics: whether the grant loop
// is active, how many flows still have grantable work, and the total
// outstanding (credited, unreceived) packets.
func (p *Proto) DiagState() (granting bool, candidates, outstanding int) {
	//lint:deterministic commutative counts and sums over per-flow state
	for _, f := range p.rx {
		if f.Done {
			continue
		}
		if f.NeededCnt() > 0 {
			candidates++
		}
		outstanding += f.Outstanding
	}
	return p.granting, candidates, outstanding
}
