package homa

import (
	"dcpim/internal/metrics"
	"dcpim/internal/netsim"
	"dcpim/internal/protocols"
)

// instruments is Homa's optional telemetry, shared across hosts. The
// zero value is inert (nil instruments no-op).
type instruments struct {
	sentBytes    *metrics.Counter // all transmitted data wire bytes
	unschedBytes *metrics.Counter // unscheduled (blind-prefix) wire bytes
	grantedBytes *metrics.Counter // wire bytes granted by receivers
	grants       *metrics.Counter
}

// RegisterMetrics instruments every attached Proto on reg under the
// given name prefix ("homa", "phost", ...). No-op when reg is nil.
func RegisterMetrics(ps []*Proto, reg *metrics.Registry, prefix string) {
	if reg == nil || len(ps) == 0 {
		return
	}
	ins := instruments{
		sentBytes:    reg.Counter(prefix + "/sent_bytes"),
		unschedBytes: reg.Counter(prefix + "/unsched_bytes"),
		grantedBytes: reg.Counter(prefix + "/granted_bytes"),
		grants:       reg.Counter(prefix + "/grants"),
	}
	for _, p := range ps {
		p.ins = ins
	}
}

// Register classic Homa and the Aeolus variant. ProtoConfig accepts a
// Config override.
func init() {
	register := func(name string, def func() Config) {
		protocols.Register(protocols.Descriptor{
			Name:         name,
			FabricConfig: func() netsim.Config { return def().FabricConfig() },
			Attach: func(f *netsim.Fabric, opts protocols.AttachOptions) {
				cfg := def()
				if c, ok := opts.ProtoConfig.(Config); ok {
					cfg = c
				}
				RegisterMetrics(Attach(f, cfg, opts.Collector), opts.Metrics, name)
			},
		})
	}
	register("homa", DefaultConfig)
	register("homa-aeolus", AeolusConfig)
}
