package homa

import (
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func runHoma(t *testing.T, cfg Config, tr *workload.Trace, horizon sim.Duration, seed int64) (*stats.Collector, *netsim.Fabric) {
	t.Helper()
	eng := sim.NewEngine(seed)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, cfg.FabricConfig())
	col := stats.NewCollector(0)
	Attach(fab, cfg, col)
	fab.Start()
	fab.Inject(tr)
	eng.Run(sim.Time(horizon))
	return col, fab
}

func single(size int64) *workload.Trace {
	return &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: size, Arrival: 0},
	}}
}

func TestUnloadedShortFlow(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), AeolusConfig()} {
		col, _ := runHoma(t, cfg, single(10_000), 300*sim.Microsecond, 1)
		if col.Completed() != 1 {
			t.Fatalf("aeolus=%v: flow not completed", cfg.Aeolus)
		}
		if sd := col.Records()[0].Slowdown(); sd > 1.25 {
			t.Fatalf("aeolus=%v: unloaded slowdown %.3f", cfg.Aeolus, sd)
		}
	}
}

func TestUnloadedLongFlow(t *testing.T) {
	col, _ := runHoma(t, AeolusConfig(), single(2_000_000), 2*sim.Millisecond, 2)
	if col.Completed() != 1 {
		t.Fatal("long flow not completed")
	}
	// Grant-clocked tail after the unscheduled prefix: slowdown should
	// stay near 1 when alone (each grant arrives before the window runs
	// dry).
	if sd := col.Records()[0].Slowdown(); sd > 1.5 {
		t.Fatalf("unloaded long flow slowdown %.3f", sd)
	}
}

func TestPriorityLayouts(t *testing.T) {
	classic := New(DefaultConfig(), stats.NewCollector(0))
	aeolus := New(AeolusConfig(), stats.NewCollector(0))
	// Give both window parameters without a fabric.
	classic.windowPkts = 50
	aeolus.windowPkts = 50
	// Unscheduled rides above scheduled in both modes.
	if classic.unschedPrio(1000) >= classic.schedPrio(0) {
		t.Fatal("classic Homa must send unscheduled above scheduled")
	}
	if aeolus.unschedPrio(1000) >= aeolus.schedPrio(0) {
		t.Fatal("Aeolus keeps unscheduled on top; droppability is the difference")
	}
	// Smaller flows get higher unscheduled priority.
	if classic.unschedPrio(1000) >= classic.unschedPrio(100_000_000) {
		t.Fatal("unscheduled priority not size-graded")
	}
}

func TestAeolusDropsRecovered(t *testing.T) {
	// 7:1 incast of 60 KB flows overwhelms the downlink; Aeolus sheds
	// unscheduled packets early but every flow must complete via
	// scheduled retransmission.
	var flows []workload.Flow
	for src := 1; src < 8; src++ {
		flows = append(flows, workload.Flow{ID: uint64(src), Src: src, Dst: 0, Size: 60_000, Arrival: 0})
	}
	col, fab := runHoma(t, AeolusConfig(), &workload.Trace{Flows: flows}, 5*sim.Millisecond, 3)
	if fab.Counters.AeolusDrops == 0 {
		t.Fatal("test premise: no selective drops under incast")
	}
	if col.Completed() != 7 {
		t.Fatalf("completed %d/7 after selective drops", col.Completed())
	}
}

func TestClassicHomaDropsUnderIncast(t *testing.T) {
	// Classic Homa blasts unscheduled at top priority; with realistic
	// buffers a hard incast loses packets (the Aeolus observation), and
	// timeouts still finish the flows eventually.
	var flows []workload.Flow
	for src := 1; src < 8; src++ {
		flows = append(flows, workload.Flow{ID: uint64(src), Src: src, Dst: 0, Size: 300_000, Arrival: 0})
	}
	eng := sim.NewEngine(4)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true, PortBufferBytes: 100 * packet.MTU})
	col := stats.NewCollector(0)
	Attach(fab, DefaultConfig(), col)
	fab.Start()
	fab.Inject(&workload.Trace{Flows: flows})
	eng.Run(sim.Time(20 * sim.Millisecond))
	if fab.Counters.DataDrops == 0 {
		t.Fatal("test premise: classic Homa did not drop under incast")
	}
	if col.Completed() != 7 {
		t.Fatalf("completed %d/7 after drops", col.Completed())
	}
}

func TestAllToAllCompletes(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	tr := workload.AllToAllConfig{
		Hosts: 8, HostRate: cfgT.HostRate, Load: 0.5,
		Dist: workload.IMC10(), Horizon: sim.Millisecond, Seed: 5,
	}.Generate()
	col, _ := runHoma(t, AeolusConfig(), tr, 4*sim.Millisecond, 5)
	if col.Completed() < int64(len(tr.Flows))*95/100 {
		t.Fatalf("completed %d/%d", col.Completed(), len(tr.Flows))
	}
}

func TestOvercommitSpillsGrants(t *testing.T) {
	// Two senders to one receiver with long flows: both must receive
	// grants (the second via overcommitment when the first's window
	// fills).
	flows := []workload.Flow{
		{ID: 1, Src: 1, Dst: 0, Size: 1_000_000, Arrival: 0},
		{ID: 2, Src: 2, Dst: 0, Size: 1_000_000, Arrival: 0},
	}
	col, _ := runHoma(t, AeolusConfig(), &workload.Trace{Flows: flows}, 10*sim.Millisecond, 6)
	if col.Completed() != 2 {
		t.Fatalf("completed %d/2", col.Completed())
	}
}

func TestDeterminism(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	mk := func() *workload.Trace {
		return workload.AllToAllConfig{
			Hosts: 8, HostRate: cfgT.HostRate, Load: 0.6,
			Dist: workload.WebSearch(), Horizon: 500 * sim.Microsecond, Seed: 8,
		}.Generate()
	}
	runOnce := func() (int64, int64) {
		col, fab := runHoma(t, AeolusConfig(), mk(), 2*sim.Millisecond, 9)
		return col.Completed(), fab.Counters.DeliveredData
	}
	c1, d1 := runOnce()
	c2, d2 := runOnce()
	if c1 != c2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, d1, c2, d2)
	}
}
