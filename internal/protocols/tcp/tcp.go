// Package tcp implements a window-based TCP engine at simulator packet
// granularity — slow start, congestion avoidance, fast retransmit on three
// duplicate ACKs, adaptive RTO, per-packet cumulative ACKs with ECN echo —
// parameterized by a CongestionControl variant. Two variants ship: DCTCP
// (ECN-fraction window control) and Cubic (loss-based), the two
// comparators of the paper's testbed evaluation (§4.2, Figure 7).
package tcp

import (
	"math"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/protocols/flowtrack"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// MSS is the sender's segment payload size.
const MSS = packet.PayloadSize

// CongestionControl is the pluggable window policy. Windows are in bytes.
type CongestionControl interface {
	// Init is called once per flow with the initial window.
	Init(cwnd float64)
	// OnAck processes newly acknowledged bytes; ecn reports whether this
	// ACK echoed a congestion mark; rtt is the smoothed RTT estimate.
	OnAck(ackedBytes int64, ecn bool, now sim.Time, rtt sim.Duration)
	// OnLoss reacts to a loss event (fast retransmit or RTO).
	OnLoss(now sim.Time)
	// Window returns the current congestion window in bytes.
	Window() float64
}

// Config tunes the TCP host.
type Config struct {
	// NewCC builds the per-flow congestion controller.
	NewCC func() CongestionControl
	// ECNThreshold configures the fabric's marking threshold in bytes
	// (DCTCP); 0 disables marking.
	ECNThreshold int64
	// InitialWindow in bytes (0 = 10 MSS).
	InitialWindow int64
}

// DCTCPConfig returns a DCTCP deployment: ECN marking at K packets and the
// DCTCP alpha controller.
func DCTCPConfig(kPackets int) Config {
	if kPackets == 0 {
		kPackets = 65
	}
	return Config{
		NewCC:        func() CongestionControl { return NewDCTCP(0.0625) },
		ECNThreshold: int64(kPackets) * packet.MTU,
	}
}

// CubicConfig returns a TCP Cubic deployment (loss-based, drop-tail).
func CubicConfig() Config {
	return Config{NewCC: func() CongestionControl { return NewCubic() }}
}

// FabricConfig returns the netsim configuration for this deployment:
// per-flow ECMP (TCP needs mostly-in-order delivery) and optional ECN.
func (c Config) FabricConfig() netsim.Config {
	return netsim.Config{Spray: false, ECNThresholdBytes: c.ECNThreshold}
}

// Proto is one host's TCP instance.
type Proto struct {
	cfg Config
	col *stats.Collector
	ins instruments // optional telemetry (RegisterMetrics); zero value is inert

	host *netsim.Host
	eng  *sim.Engine
	id   int

	tx map[uint64]*txState
	rx map[uint64]*rxState
}

type txState struct {
	*flowtrack.Tx
	cc CongestionControl

	nextSeq  int
	cumAck   int
	dupAcks  int
	inflight int64

	sentAt   map[int]sim.Time // per in-flight seq, for RTT samples
	srtt     sim.Duration
	rttvar   sim.Duration
	rto      sim.Duration
	rtoTimer sim.Timer
	recover  int // fast-recovery high-water seq
}

type rxState struct {
	*flowtrack.Rx
	cum int
}

// New returns an unattached TCP host.
func New(cfg Config, col *stats.Collector) *Proto {
	if cfg.NewCC == nil {
		panic("tcp: Config.NewCC is required")
	}
	if cfg.InitialWindow == 0 {
		cfg.InitialWindow = 10 * MSS
	}
	return &Proto{cfg: cfg, col: col,
		tx: make(map[uint64]*txState),
		rx: make(map[uint64]*rxState),
	}
}

// Attach installs the TCP variant on every host of the fabric.
func Attach(fab *netsim.Fabric, cfg Config, col *stats.Collector) []*Proto {
	ps := make([]*Proto, fab.Topology().NumHosts)
	for i := range ps {
		ps[i] = New(cfg, col.ForShard(fab.ShardOfHost(i)))
		fab.AttachProtocol(i, ps[i])
	}
	return ps
}

// Start implements netsim.Protocol.
func (p *Proto) Start(h *netsim.Host) {
	p.host = h
	p.eng = h.Engine()
	p.id = h.ID()
}

// OnFlowArrival implements netsim.Protocol.
func (p *Proto) OnFlowArrival(fl workload.Flow) {
	p.col.FlowStarted()
	f := &txState{
		Tx:     flowtrack.NewTx(fl.ID, fl.Dst, fl.Size, fl.Arrival),
		cc:     p.cfg.NewCC(),
		sentAt: make(map[int]sim.Time),
		srtt:   p.host.Topo().DataRTT(),
		rto:    4 * p.host.Topo().DataRTT(),
	}
	f.cc.Init(float64(p.cfg.InitialWindow))
	p.tx[f.ID] = f
	p.trySend(f)
	p.armRTO(f)
}

func (p *Proto) trySend(f *txState) {
	w := int64(f.cc.Window())
	if w < MSS {
		w = MSS
	}
	for f.nextSeq < f.Npkts && f.inflight+MSS <= w {
		p.sendSeq(f, f.nextSeq)
		f.nextSeq++
	}
}

func (p *Proto) sendSeq(f *txState, seq int) {
	size := packet.DataPacketSize(f.Size, seq)
	d := packet.NewData(p.id, f.Dst, f.ID, seq, size, packet.PrioDataHigh)
	d.FlowSize = f.Size
	f.MarkSent(seq)
	f.inflight += int64(size)
	f.sentAt[seq] = p.eng.Now()
	p.host.Send(d)
}

func (p *Proto) armRTO(f *txState) {
	f.rtoTimer.Cancel()
	f.rtoTimer = p.eng.After(f.rto, func() { p.onRTO(f) })
}

func (p *Proto) onRTO(f *txState) {
	if f.Done || f.cumAck >= f.Npkts {
		return
	}
	// Retransmit from the cumulative ack; collapse the window.
	p.ins.rtos.Inc()
	f.cc.OnLoss(p.eng.Now())
	f.cc.OnLoss(p.eng.Now()) // RTO is a stronger signal than a dup-ack loss
	f.nextSeq = f.cumAck
	f.inflight = 0
	f.dupAcks = 0
	f.rto *= 2 // exponential backoff
	if f.rto > sim.Duration(10*sim.Millisecond) {
		f.rto = 10 * sim.Millisecond
	}
	p.trySend(f)
	p.armRTO(f)
}

// OnPacket implements netsim.Protocol.
func (p *Proto) OnPacket(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.Data:
		p.onData(pkt)
	case packet.Ack:
		p.onAck(pkt)
	case packet.FinishReceiver:
		if f := p.tx[pkt.Flow]; f != nil {
			f.Done = true
			f.rtoTimer.Cancel()
			delete(p.tx, pkt.Flow)
		}
	}
}

// ---- receiver ----

func (p *Proto) onData(pkt *packet.Packet) {
	f, ok := p.rx[pkt.Flow]
	if !ok {
		f = &rxState{Rx: flowtrack.NewRx(pkt)}
		p.rx[pkt.Flow] = f
	}
	payload := f.MarkReceived(pkt.Seq, pkt.Size)
	if payload > 0 {
		p.col.Delivered(p.eng.Now(), payload)
		for f.cum < f.Npkts && f.State(f.cum) == flowtrack.Received {
			f.cum++
		}
	}
	ack := packet.NewControl(packet.Ack, p.id, pkt.Src, pkt.Flow)
	ack.Seq = pkt.Seq
	ack.CumAck = f.cum
	ack.ECN = pkt.ECN
	ack.Count = pkt.Size
	p.host.Send(ack)

	if payload > 0 && f.Done {
		opt := p.host.Topo().UnloadedFCT(f.Src, p.id, f.Size)
		p.col.FlowDone(stats.FlowRecord{
			ID: f.ID, Src: int32(f.Src), Dst: int32(p.id), Size: f.Size,
			Arrival: f.Arrival, Finish: p.eng.Now(), Optimal: opt,
		})
		fin := packet.NewControl(packet.FinishReceiver, p.id, f.Src, f.ID)
		p.host.Send(fin)
		f.Release()
	}
}

// ---- sender ----

func (p *Proto) onAck(ack *packet.Packet) {
	f := p.tx[ack.Flow]
	if f == nil {
		return
	}
	now := p.eng.Now()
	// RTT sample from the echoed seq.
	if t0, ok := f.sentAt[ack.Seq]; ok {
		sample := now.Sub(t0)
		delete(f.sentAt, ack.Seq)
		if f.srtt == 0 {
			f.srtt, f.rttvar = sample, sample/2
		} else {
			d := f.srtt - sample
			if d < 0 {
				d = -d
			}
			f.rttvar = (3*f.rttvar + d) / 4
			f.srtt = (7*f.srtt + sample) / 8
		}
		f.rto = f.srtt + 4*f.rttvar
		if min := 2 * f.srtt; f.rto < min {
			f.rto = min
		}
	}

	if ack.CumAck > f.cumAck {
		ackedPkts := ack.CumAck - f.cumAck
		f.cumAck = ack.CumAck
		f.dupAcks = 0
		f.inflight -= int64(ackedPkts) * MSS
		if f.inflight < 0 {
			f.inflight = 0
		}
		f.cc.OnAck(int64(ackedPkts)*MSS, ack.ECN, now, f.srtt)
		p.armRTO(f)
	} else if ack.CumAck == f.cumAck && f.cumAck < f.Npkts {
		// Duplicate cumulative ack: an out-of-order arrival beyond a hole.
		f.dupAcks++
		f.cc.OnAck(0, ack.ECN, now, f.srtt)
		if f.dupAcks == 3 && f.cumAck >= f.recover {
			p.ins.fastRetx.Inc()
			f.cc.OnLoss(now)
			f.recover = f.nextSeq
			p.sendSeq(f, f.cumAck) // fast retransmit the hole
		}
	}
	p.ins.cwnd.Observe(f.cc.Window())
	p.trySend(f)
}

// ---- DCTCP variant ----

// DCTCP tracks the fraction of ECN-marked acknowledgements per window and
// scales the window by α/2 once per RTT (Alizadeh et al., SIGCOMM 2010).
type DCTCP struct {
	g        float64
	alpha    float64
	cwnd     float64
	ssthresh float64

	ackedBytes  int64
	markedBytes int64
	windowEnd   sim.Time
	sawMark     bool
}

// NewDCTCP returns the DCTCP controller with gain g.
func NewDCTCP(g float64) *DCTCP {
	return &DCTCP{g: g, ssthresh: math.MaxFloat64}
}

// Init implements CongestionControl.
func (d *DCTCP) Init(cwnd float64) { d.cwnd = cwnd }

// Window implements CongestionControl.
func (d *DCTCP) Window() float64 { return d.cwnd }

// OnAck implements CongestionControl.
func (d *DCTCP) OnAck(acked int64, ecn bool, now sim.Time, rtt sim.Duration) {
	d.ackedBytes += acked
	if ecn {
		d.markedBytes += acked
		d.sawMark = true
	}
	if now >= d.windowEnd {
		// Close the observation window: fold the mark fraction into α
		// and cut once if anything was marked.
		if d.ackedBytes > 0 {
			frac := float64(d.markedBytes) / float64(d.ackedBytes)
			d.alpha = (1-d.g)*d.alpha + d.g*frac
		}
		if d.sawMark {
			d.cwnd *= 1 - d.alpha/2
			if d.cwnd < MSS {
				d.cwnd = MSS
			}
			d.ssthresh = d.cwnd
		}
		d.ackedBytes, d.markedBytes, d.sawMark = 0, 0, false
		d.windowEnd = now.Add(rtt)
		return
	}
	// Growth: slow start below ssthresh, else +MSS per RTT.
	if d.cwnd < d.ssthresh {
		d.cwnd += float64(acked)
	} else if d.cwnd > 0 {
		d.cwnd += float64(MSS) * float64(acked) / d.cwnd
	}
}

// OnLoss implements CongestionControl.
func (d *DCTCP) OnLoss(now sim.Time) {
	d.cwnd /= 2
	if d.cwnd < MSS {
		d.cwnd = MSS
	}
	d.ssthresh = d.cwnd
}

// ---- Cubic variant ----

// Cubic grows the window along W(t) = C·(t−K)³ + Wmax after each loss
// (Ha, Rhee, Xu 2008), with slow start before the first loss.
type Cubic struct {
	c        float64 // scaling constant, windows in MSS units
	beta     float64
	cwnd     float64
	ssthresh float64
	wmax     float64
	epoch    sim.Time
	k        float64 // seconds
	inEpoch  bool
}

// NewCubic returns the Cubic controller with standard constants
// (C = 0.4, β = 0.7).
func NewCubic() *Cubic {
	return &Cubic{c: 0.4, beta: 0.7, ssthresh: math.MaxFloat64}
}

// Init implements CongestionControl.
func (cu *Cubic) Init(cwnd float64) { cu.cwnd = cwnd }

// Window implements CongestionControl.
func (cu *Cubic) Window() float64 { return cu.cwnd }

// OnAck implements CongestionControl.
func (cu *Cubic) OnAck(acked int64, ecn bool, now sim.Time, rtt sim.Duration) {
	if acked == 0 {
		return
	}
	if cu.cwnd < cu.ssthresh {
		cu.cwnd += float64(acked)
		return
	}
	if !cu.inEpoch {
		cu.inEpoch = true
		cu.epoch = now
		cu.wmax = cu.cwnd
		cu.k = 0
	}
	t := now.Sub(cu.epoch).Seconds()
	// Cubic curve and the TCP-friendly (Reno-tracking) floor, both in
	// MSS units; at datacenter RTTs the friendly region dominates.
	wmaxP := cu.wmax / MSS
	targetP := cu.c*math.Pow(t-cu.k, 3) + wmaxP
	if rttS := rtt.Seconds(); rttS > 0 {
		friendlyP := wmaxP*cu.beta + 3*(1-cu.beta)/(1+cu.beta)*(t/rttS)
		if friendlyP > targetP {
			targetP = friendlyP
		}
	}
	if target := targetP * MSS; target > cu.cwnd {
		// Approach the target over roughly one window of acks.
		cu.cwnd += (target - cu.cwnd) * float64(acked) / cu.cwnd
	}
}

// OnLoss implements CongestionControl.
func (cu *Cubic) OnLoss(now sim.Time) {
	cu.wmax = cu.cwnd
	cu.cwnd *= cu.beta
	if cu.cwnd < MSS {
		cu.cwnd = MSS
	}
	cu.ssthresh = cu.cwnd
	cu.epoch = now
	cu.k = math.Cbrt(cu.wmax * (1 - cu.beta) / (cu.c * MSS))
	cu.inEpoch = true
}
