package tcp

import (
	"dcpim/internal/metrics"
	"dcpim/internal/netsim"
	"dcpim/internal/protocols"
)

// instruments is TCP's optional telemetry, shared across hosts. The zero
// value is inert (nil instruments no-op).
type instruments struct {
	cwnd     *metrics.Histogram // congestion window after each ACK, bytes
	fastRetx *metrics.Counter
	rtos     *metrics.Counter
}

// RegisterMetrics instruments every attached Proto on reg under the
// variant's name prefix ("dctcp", "cubic"). No-op when reg is nil.
func RegisterMetrics(ps []*Proto, reg *metrics.Registry, prefix string) {
	if reg == nil || len(ps) == 0 {
		return
	}
	ins := instruments{
		cwnd:     reg.Histogram(prefix + "/cwnd_bytes"),
		fastRetx: reg.Counter(prefix + "/fast_retransmits"),
		rtos:     reg.Counter(prefix + "/rtos"),
	}
	for _, p := range ps {
		p.ins = ins
	}
}

// Register the two TCP deployments of the paper's testbed comparison.
// ProtoConfig accepts a Config override.
func init() {
	register := func(name string, def func() Config) {
		protocols.Register(protocols.Descriptor{
			Name:         name,
			FabricConfig: func() netsim.Config { return def().FabricConfig() },
			Attach: func(f *netsim.Fabric, opts protocols.AttachOptions) {
				cfg := def()
				if c, ok := opts.ProtoConfig.(Config); ok {
					cfg = c
				}
				RegisterMetrics(Attach(f, cfg, opts.Collector), opts.Metrics, name)
			},
		})
	}
	register("dctcp", func() Config { return DCTCPConfig(0) })
	register("cubic", CubicConfig)
}
