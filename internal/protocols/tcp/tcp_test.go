package tcp

import (
	"math"
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// The testbed topology from the paper's §4.2: 32 hosts, 10 Gbps, ~8 µs RTT.
func runTCP(t *testing.T, cfg Config, tr *workload.Trace, horizon sim.Duration, seed int64) (*stats.Collector, *netsim.Fabric) {
	t.Helper()
	eng := sim.NewEngine(seed)
	tp := topo.TestbedLeafSpine().Build()
	fab := netsim.New(eng, tp, cfg.FabricConfig())
	col := stats.NewCollector(0)
	Attach(fab, cfg, col)
	fab.Start()
	fab.Inject(tr)
	eng.Run(sim.Time(horizon))
	return col, fab
}

func oneFlow(size int64) *workload.Trace {
	return &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 31, Size: size, Arrival: 0},
	}}
}

func TestCubicLongFlowUnloaded(t *testing.T) {
	col, fab := runTCP(t, CubicConfig(), oneFlow(5_000_000), 50*sim.Millisecond, 1)
	if col.Completed() != 1 {
		t.Fatal("flow not completed")
	}
	if fab.Counters.DataDrops != 0 {
		t.Fatal("drops on an unloaded path")
	}
	// Slow start then cubic growth: a 5 MB flow at 10G (4 ms serialized)
	// should finish within ~2× optimal once the window opens.
	if sd := col.Records()[0].Slowdown(); sd > 2 {
		t.Fatalf("unloaded cubic long-flow slowdown %.2f", sd)
	}
}

func TestDCTCPLongFlowUnloaded(t *testing.T) {
	col, _ := runTCP(t, DCTCPConfig(65), oneFlow(5_000_000), 50*sim.Millisecond, 2)
	if col.Completed() != 1 {
		t.Fatal("flow not completed")
	}
	if sd := col.Records()[0].Slowdown(); sd > 2 {
		t.Fatalf("unloaded DCTCP long-flow slowdown %.2f", sd)
	}
}

func TestDCTCPKeepsQueuesShorterThanCubic(t *testing.T) {
	// Two senders share one downlink for a while: DCTCP's ECN control
	// must mark and back off (bounded queues, far fewer drops than
	// Cubic, which fills the 500 KB buffer until it tail-drops).
	flows := []workload.Flow{
		{ID: 1, Src: 1, Dst: 0, Size: 8_000_000, Arrival: 0},
		{ID: 2, Src: 2, Dst: 0, Size: 8_000_000, Arrival: 0},
	}
	dctcpCol, dctcpFab := runTCP(t, DCTCPConfig(65), &workload.Trace{Flows: flows}, 100*sim.Millisecond, 3)
	cubicCol, cubicFab := runTCP(t, CubicConfig(), &workload.Trace{Flows: flows}, 100*sim.Millisecond, 3)
	if dctcpCol.Completed() != 2 || cubicCol.Completed() != 2 {
		t.Fatalf("completions: dctcp %d, cubic %d", dctcpCol.Completed(), cubicCol.Completed())
	}
	if dctcpFab.Counters.ECNMarks == 0 {
		t.Fatal("DCTCP saw no ECN marks under contention")
	}
	if cubicFab.Counters.DataDrops == 0 {
		t.Fatal("test premise: cubic did not fill the buffer")
	}
	if dctcpFab.Counters.DataDrops > cubicFab.Counters.DataDrops/4 {
		t.Fatalf("DCTCP drops %d not ≪ cubic drops %d",
			dctcpFab.Counters.DataDrops, cubicFab.Counters.DataDrops)
	}
}

func TestFastRetransmitRecoversLoss(t *testing.T) {
	// Force drops with a shallow buffer: flows must still complete
	// (via dup-ack fast retransmit and RTO).
	eng := sim.NewEngine(4)
	tp := topo.TestbedLeafSpine().Build()
	cfg := CubicConfig()
	fc := cfg.FabricConfig()
	fc.PortBufferBytes = 15 * 1500
	fab := netsim.New(eng, tp, fc)
	col := stats.NewCollector(0)
	Attach(fab, cfg, col)
	fab.Start()
	var flows []workload.Flow
	for src := 1; src <= 4; src++ {
		flows = append(flows, workload.Flow{ID: uint64(src), Src: src, Dst: 0, Size: 1_000_000, Arrival: 0})
	}
	fab.Inject(&workload.Trace{Flows: flows})
	eng.Run(sim.Time(200 * sim.Millisecond))
	if fab.Counters.DataDrops == 0 {
		t.Fatal("test premise: no drops with shallow buffers")
	}
	if col.Completed() != 4 {
		t.Fatalf("completed %d/4 after drops", col.Completed())
	}
}

func TestShortFlowsSlowedByLongFlows(t *testing.T) {
	// The §4.2 effect: short flows queue behind long-flow buffers. Short
	// flows under contention see much higher slowdown than unloaded.
	flows := []workload.Flow{
		{ID: 1, Src: 1, Dst: 0, Size: 20_000_000, Arrival: 0},
	}
	// Short probes every 500 µs once the long flow has ramped.
	for i := 0; i < 10; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(10 + i), Src: 2, Dst: 0, Size: 20_000,
			Arrival: sim.Time(sim.Duration(4+i) * 500 * sim.Microsecond),
		})
	}
	col, _ := runTCP(t, CubicConfig(), &workload.Trace{Flows: flows}, 100*sim.Millisecond, 5)
	short := stats.Summarize(col.Records(), func(r stats.FlowRecord) bool { return r.Size < 100_000 })
	if short.Count < 8 {
		t.Fatalf("only %d short flows completed", short.Count)
	}
	if short.Mean < 3 {
		t.Fatalf("short flows behind a cubic long flow: mean slowdown %.1f, expected heavy queueing", short.Mean)
	}
}

func TestDCTCPAlphaConverges(t *testing.T) {
	d := NewDCTCP(0.0625)
	d.Init(100 * MSS)
	rtt := 8 * sim.Microsecond
	now := sim.Time(0)
	// All ACKs marked: alpha → 1.
	for i := 0; i < 2000; i++ {
		now = now.Add(sim.Microsecond)
		d.OnAck(MSS, true, now, rtt)
	}
	if d.alpha < 0.9 {
		t.Fatalf("alpha = %.3f after persistent marking, want →1", d.alpha)
	}
	// No marks: alpha decays toward 0.
	for i := 0; i < 2000; i++ {
		now = now.Add(sim.Microsecond)
		d.OnAck(MSS, false, now, rtt)
	}
	if d.alpha > 0.1 {
		t.Fatalf("alpha = %.3f after mark-free period, want →0", d.alpha)
	}
}

func TestCubicWindowCurve(t *testing.T) {
	cu := NewCubic()
	cu.Init(100 * MSS)
	cu.OnLoss(sim.Time(0))
	w0 := cu.Window()
	if w0 >= 100*MSS || w0 < 69*MSS {
		t.Fatalf("post-loss window %.0f, want ≈0.7×", w0/MSS)
	}
	// Window recovers toward Wmax over time (concave region).
	now := sim.Time(0)
	for i := 0; i < 10000; i++ {
		now = now.Add(10 * sim.Microsecond)
		cu.OnAck(MSS, false, now, 8*sim.Microsecond)
	}
	if cu.Window() < 95*MSS {
		t.Fatalf("window %.0f MSS did not recover toward Wmax=100", cu.Window()/MSS)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted nil NewCC")
		}
	}()
	New(Config{}, stats.NewCollector(0))
}

func TestDeterminism(t *testing.T) {
	tp := topo.TestbedLeafSpine()
	mk := func() *workload.Trace {
		return workload.AllToAllConfig{
			Hosts: 32, HostRate: tp.HostRate, Load: 0.3,
			Dist: workload.IMC10(), Horizon: 2 * sim.Millisecond, Seed: 11,
		}.Generate()
	}
	a, _ := runTCP(t, DCTCPConfig(65), mk(), 10*sim.Millisecond, 12)
	b, _ := runTCP(t, DCTCPConfig(65), mk(), 10*sim.Millisecond, 12)
	if a.Completed() != b.Completed() || a.DeliveredBytes() != b.DeliveredBytes() {
		t.Fatal("non-deterministic TCP run")
	}
	if a.Completed() == 0 {
		t.Fatal("nothing completed")
	}
	_ = math.Pi
}
