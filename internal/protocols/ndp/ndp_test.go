package ndp

import (
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

func runNDP(t *testing.T, tr *workload.Trace, horizon sim.Duration, seed int64) (*stats.Collector, *netsim.Fabric) {
	t.Helper()
	eng := sim.NewEngine(seed)
	tp := topo.SmallLeafSpine().Build()
	cfg := Config{}
	fab := netsim.New(eng, tp, cfg.FabricConfig())
	col := stats.NewCollector(0)
	Attach(fab, cfg, col)
	fab.Start()
	fab.Inject(tr)
	eng.Run(sim.Time(horizon))
	return col, fab
}

func TestUnloadedShortFlow(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 10_000, Arrival: 0},
	}}
	col, fab := runNDP(t, tr, 300*sim.Microsecond, 1)
	if col.Completed() != 1 {
		t.Fatal("flow not completed")
	}
	if fab.Counters.Trims != 0 {
		t.Fatal("unloaded flow was trimmed")
	}
	if sd := col.Records()[0].Slowdown(); sd > 1.25 {
		t.Fatalf("unloaded slowdown %.3f", sd)
	}
}

func TestUnloadedLongFlowPullClocked(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 2_000_000, Arrival: 0},
	}}
	col, _ := runNDP(t, tr, 3*sim.Millisecond, 2)
	if col.Completed() != 1 {
		t.Fatal("long flow not completed")
	}
	if sd := col.Records()[0].Slowdown(); sd > 1.5 {
		t.Fatalf("unloaded long flow slowdown %.3f", sd)
	}
}

func TestIncastTrimsAndRecovers(t *testing.T) {
	// NDP's signature behaviour: under incast the 8-packet queues trim
	// aggressively, and every trimmed packet is retransmitted via
	// NACK+pull; all flows complete with zero full-packet losses.
	var flows []workload.Flow
	for src := 1; src < 8; src++ {
		flows = append(flows, workload.Flow{ID: uint64(src), Src: src, Dst: 0, Size: 150_000, Arrival: 0})
	}
	col, fab := runNDP(t, &workload.Trace{Flows: flows}, 10*sim.Millisecond, 3)
	if fab.Counters.Trims == 0 {
		t.Fatal("test premise: incast did not trim")
	}
	if col.Completed() != 7 {
		t.Fatalf("completed %d/7 after trims", col.Completed())
	}
	// Delivered payload is exactly the offered bytes (no double count).
	if col.DeliveredBytes() != 7*150_000 {
		t.Fatalf("delivered %d bytes, want %d", col.DeliveredBytes(), 7*150_000)
	}
}

func TestAllToAllCompletes(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	tr := workload.AllToAllConfig{
		Hosts: 8, HostRate: cfgT.HostRate, Load: 0.5,
		Dist: workload.IMC10(), Horizon: sim.Millisecond, Seed: 4,
	}.Generate()
	col, _ := runNDP(t, tr, 5*sim.Millisecond, 4)
	if col.Completed() < int64(len(tr.Flows))*95/100 {
		t.Fatalf("completed %d/%d", col.Completed(), len(tr.Flows))
	}
}

func TestDeterminism(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	mk := func() *workload.Trace {
		return workload.AllToAllConfig{
			Hosts: 8, HostRate: cfgT.HostRate, Load: 0.6,
			Dist: workload.WebSearch(), Horizon: 500 * sim.Microsecond, Seed: 6,
		}.Generate()
	}
	c1, f1 := runNDP(t, mk(), 2*sim.Millisecond, 7)
	c2, f2 := runNDP(t, mk(), 2*sim.Millisecond, 7)
	if c1.Completed() != c2.Completed() || f1.Counters.Trims != f2.Counters.Trims {
		t.Fatal("non-deterministic NDP run")
	}
}
