package ndp

import (
	"dcpim/internal/metrics"
	"dcpim/internal/netsim"
	"dcpim/internal/protocols"
)

// instruments is NDP's optional telemetry, shared across hosts. The zero
// value is inert (nil instruments no-op).
type instruments struct {
	sentBytes *metrics.Counter // transmitted data wire bytes (incl. retransmissions)
	pulls     *metrics.Counter // pull credits issued by receivers
	nacks     *metrics.Counter // trim/loss NACKs processed by senders
}

// RegisterMetrics instruments every attached Proto on reg. No-op when
// reg is nil.
func RegisterMetrics(ps []*Proto, reg *metrics.Registry) {
	if reg == nil || len(ps) == 0 {
		return
	}
	ins := instruments{
		sentBytes: reg.Counter("ndp/sent_bytes"),
		pulls:     reg.Counter("ndp/pulls"),
		nacks:     reg.Counter("ndp/nacks"),
	}
	for _, p := range ps {
		p.ins = ins
	}
}

// Register NDP. ProtoConfig accepts a Config override.
func init() {
	protocols.Register(protocols.Descriptor{
		Name:         "ndp",
		FabricConfig: func() netsim.Config { return Config{}.FabricConfig() },
		Attach: func(f *netsim.Fabric, opts protocols.AttachOptions) {
			cfg := Config{}
			if c, ok := opts.ProtoConfig.(Config); ok {
				cfg = c
			}
			RegisterMetrics(Attach(f, cfg, opts.Collector), opts.Metrics)
		},
	})
}
