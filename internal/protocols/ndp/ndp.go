// Package ndp implements an NDP-style transport (Handley et al., SIGCOMM
// 2017): switches run tiny queues and trim overflowing data packets to
// headers; receivers turn trimmed headers into NACKs and clock
// retransmissions and fresh packets with a paced pull queue; senders blast
// the first BDP blindly. NDP uses no data priorities (trimmed headers and
// control ride the high-priority class).
package ndp

import (
	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/protocols/flowtrack"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// Config tunes the NDP host.
type Config struct {
	// InitialWindowBytes is the blind first window (0 = 1 BDP).
	InitialWindowBytes int64
	// TrimQueuePkts is the switch queue depth, in full packets, beyond
	// which data is trimmed (0 = 8, the paper's setting for NDP).
	TrimQueuePkts int
}

// FabricConfig returns the netsim configuration NDP requires: spraying and
// aggressive trimming at shallow queues.
func (c Config) FabricConfig() netsim.Config {
	q := c.TrimQueuePkts
	if q == 0 {
		q = 8
	}
	return netsim.Config{
		Spray:              true,
		TrimThresholdBytes: int64(q) * packet.MTU,
	}
}

// Proto is one host's NDP instance.
type Proto struct {
	cfg Config
	col *stats.Collector
	ins instruments // optional telemetry (RegisterMetrics); zero value is inert

	host *netsim.Host
	eng  *sim.Engine
	id   int

	initPkts int
	mtuTime  sim.Duration
	dataRTT  sim.Duration

	tx map[uint64]*txState
	rx map[uint64]*rxState

	pullQ     []pullRef // FIFO of flows owed a pull (fresh data)
	pullQFast []pullRef // priority pulls for retransmissions (trims)
	pulling   bool
}

type pullRef struct {
	flow uint64
	src  int
}

type txState struct {
	*flowtrack.Tx
	retx      []int // NACKed seqs awaiting pull
	next      int   // next fresh seq beyond the initial window
	owedPulls int   // pulls that found nothing to send (NACK still in flight)
}

type rxState struct {
	*flowtrack.Rx
	checker sim.Timer
}

// New returns an unattached NDP host.
func New(cfg Config, col *stats.Collector) *Proto {
	return &Proto{cfg: cfg, col: col,
		tx: make(map[uint64]*txState),
		rx: make(map[uint64]*rxState),
	}
}

// Attach installs NDP on every host of the fabric.
func Attach(fab *netsim.Fabric, cfg Config, col *stats.Collector) []*Proto {
	ps := make([]*Proto, fab.Topology().NumHosts)
	for i := range ps {
		ps[i] = New(cfg, col.ForShard(fab.ShardOfHost(i)))
		fab.AttachProtocol(i, ps[i])
	}
	return ps
}

// Start implements netsim.Protocol.
func (p *Proto) Start(h *netsim.Host) {
	p.host = h
	p.eng = h.Engine()
	p.id = h.ID()
	win := p.cfg.InitialWindowBytes
	if win == 0 {
		win = h.Topo().BDP()
	}
	p.initPkts = packet.PacketsForBytes(win)
	p.mtuTime = sim.TransmissionTime(packet.MTU, h.LineRate())
	p.dataRTT = h.Topo().DataRTT()
}

// OnFlowArrival blasts the first window; the rest is pull-clocked.
func (p *Proto) OnFlowArrival(fl workload.Flow) {
	p.col.FlowStarted()
	f := &txState{Tx: flowtrack.NewTx(fl.ID, fl.Dst, fl.Size, fl.Arrival)}
	p.tx[f.ID] = f

	n := packet.NewControl(packet.Notification, p.id, f.Dst, f.ID)
	n.FlowSize = f.Size
	p.host.Send(n)

	for seq := 0; seq < f.Npkts && seq < p.initPkts; seq++ {
		p.sendData(f, seq, packet.PrioDataHigh)
	}
	f.next = p.initPkts
}

func (p *Proto) sendData(f *txState, seq int, prio uint8) {
	d := packet.NewData(p.id, f.Dst, f.ID, seq, packet.DataPacketSize(f.Size, seq), prio)
	d.FlowSize = f.Size
	f.MarkSent(seq)
	p.ins.sentBytes.Add(int64(d.Size))
	p.host.Send(d)
}

// OnPacket implements netsim.Protocol.
func (p *Proto) OnPacket(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.Notification:
		p.ensureRx(pkt)
	case packet.Data:
		p.onData(pkt)
	case packet.Nack:
		p.onNack(pkt)
	case packet.Pull:
		p.onPull(pkt)
	case packet.FinishReceiver:
		delete(p.tx, pkt.Flow)
	}
}

// ---- receiver side ----

func (p *Proto) ensureRx(pkt *packet.Packet) *rxState {
	if f, ok := p.rx[pkt.Flow]; ok {
		return f
	}
	f := &rxState{Rx: flowtrack.NewRx(pkt)}
	p.rx[pkt.Flow] = f
	// The blind window is implicitly outstanding.
	for seq := 0; seq < f.Npkts && seq < p.initPkts; seq++ {
		f.SkipGrant(seq)
	}
	// Stall detector: NDP relies on trimmed headers for loss signals, but
	// whole-packet losses (e.g. of headers under extreme load) need a
	// timeout: re-pull anything outstanding.
	f.checker = p.eng.After(3*p.dataRTT, func() { p.checkStall(f) })
	return f
}

func (p *Proto) checkStall(f *rxState) {
	if f.Done {
		return
	}
	if n := f.RevertStale(f.Npkts); n > 0 {
		// Re-pull a bounded batch per cycle: re-injecting a whole window
		// at once would recreate the very storm that trimmed it.
		if n > 8 {
			n = 8
		}
		for i := 0; i < n; i++ {
			if seq := f.NextNeeded(); seq >= 0 {
				f.Grant(seq)
				p.enqueuePullNack(f, seq)
			}
		}
	}
	f.checker = p.eng.After(3*p.dataRTT, func() { p.checkStall(f) })
}

// enqueuePullNack NACKs seq to the sender (so it rejoins the retransmit
// set) and schedules a priority pull for the flow.
func (p *Proto) enqueuePullNack(f *rxState, seq int) {
	nack := packet.NewControl(packet.Nack, p.id, f.Src, f.ID)
	nack.Seq = seq
	p.host.Send(nack)
	p.enqueuePullFast(f)
}

func (p *Proto) onData(pkt *packet.Packet) {
	f := p.ensureRx(pkt)
	if pkt.Trimmed {
		// Header arrived, payload was cut: NACK for retransmission and
		// schedule a pull slot for it.
		if !f.Done && pkt.Seq >= 0 && pkt.Seq < f.Npkts && f.State(pkt.Seq) != flowtrack.Received {
			// Stays in Granted state: the retransmission is in the
			// sender's retx queue and will be pulled.
			nack := packet.NewControl(packet.Nack, p.id, f.Src, f.ID)
			nack.Seq = pkt.Seq
			p.host.Send(nack)
			p.enqueuePullFast(f)
		}
		return
	}
	payload := f.MarkReceived(pkt.Seq, pkt.Size)
	if payload > 0 {
		p.col.Delivered(p.eng.Now(), payload)
	}
	if payload > 0 && f.Done {
		// This packet completed the flow (duplicates return 0 payload).
		p.completeRx(f)
		return
	}
	if f.Done {
		return
	}
	// Each arrival earns the flow another pull if work remains: either
	// fresh packets beyond the window or future retransmissions.
	if f.NeededCnt() > 0 {
		next := f.NextNeeded()
		if next >= 0 {
			f.Grant(next)
			p.enqueuePull(f)
		}
	}
}

func (p *Proto) completeRx(f *rxState) {
	f.checker.Cancel()
	opt := p.host.Topo().UnloadedFCT(f.Src, p.id, f.Size)
	p.col.FlowDone(stats.FlowRecord{
		ID: f.ID, Src: int32(f.Src), Dst: int32(p.id), Size: f.Size,
		Arrival: f.Arrival, Finish: p.eng.Now(), Optimal: opt,
	})
	fin := packet.NewControl(packet.FinishReceiver, p.id, f.Src, f.ID)
	p.host.Send(fin)
	// Keep the entry (Done) so duplicates don't recreate the flow.
	f.Release()
}

// enqueuePull adds one pull slot for the flow and starts the paced puller.
func (p *Proto) enqueuePull(f *rxState) {
	p.pullQ = append(p.pullQ, pullRef{flow: f.ID, src: f.Src})
	p.kickPuller()
}

// enqueuePullFast adds a retransmission pull, served before fresh pulls —
// NDP expedites recovery of trimmed packets.
func (p *Proto) enqueuePullFast(f *rxState) {
	p.pullQFast = append(p.pullQFast, pullRef{flow: f.ID, src: f.Src})
	p.kickPuller()
}

func (p *Proto) kickPuller() {
	if !p.pulling {
		p.pulling = true
		p.pullTick()
	}
}

// pullTick drains the pull queues at line rate (one pull per MTU time),
// retransmission pulls first.
func (p *Proto) pullTick() {
	for len(p.pullQFast) > 0 || len(p.pullQ) > 0 {
		var ref pullRef
		if len(p.pullQFast) > 0 {
			ref = p.pullQFast[0]
			p.pullQFast = p.pullQFast[1:]
		} else {
			ref = p.pullQ[0]
			p.pullQ = p.pullQ[1:]
		}
		if f, ok := p.rx[ref.flow]; !ok || f.Done {
			continue
		}
		pull := packet.NewControl(packet.Pull, p.id, ref.src, ref.flow)
		p.ins.pulls.Inc()
		p.host.Send(pull)
		p.eng.After(p.mtuTime, p.pullTick)
		return
	}
	p.pulling = false
}

// ---- sender side ----

func (p *Proto) onNack(pkt *packet.Packet) {
	f := p.tx[pkt.Flow]
	if f == nil {
		return
	}
	p.ins.nacks.Inc()
	for _, s := range f.retx {
		if s == pkt.Seq {
			return // already queued
		}
	}
	f.retx = append(f.retx, pkt.Seq)
	// Under spraying, the pull paired with this NACK may have overtaken
	// it and found nothing to send; spend one owed pull now so the
	// retransmission is not stranded until the stall timer. owedPulls is
	// capped at one so loss storms cannot bypass pull pacing in bulk.
	if f.owedPulls > 0 {
		f.owedPulls = 0
		seq := f.retx[0]
		f.retx = f.retx[1:]
		p.sendData(f, seq, packet.PrioShort)
	}
}

// onPull transmits one packet: queued retransmissions first, then the next
// fresh packet.
func (p *Proto) onPull(pkt *packet.Packet) {
	f := p.tx[pkt.Flow]
	if f == nil {
		return
	}
	if len(f.retx) > 0 {
		// NDP prioritizes retransmissions so a once-trimmed packet is
		// very unlikely to be trimmed again.
		seq := f.retx[0]
		f.retx = f.retx[1:]
		p.sendData(f, seq, packet.PrioShort)
		return
	}
	if f.next < f.Npkts {
		p.sendData(f, f.next, packet.PrioDataHigh)
		f.next++
		return
	}
	if f.owedPulls < 1 {
		f.owedPulls++
	}
}
