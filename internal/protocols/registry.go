// Package protocols is the transport registry: every protocol package
// registers a named Descriptor from its init function, and experiments
// resolve protocols by name — adding a transport no longer edits the
// experiments package, only adds a registration (plus a blank import
// where descriptors should be available).
//
// The package sits between netsim and the transports: it may import the
// fabric, stats and metrics, but never a protocol implementation
// (protocol packages import it to register themselves).
package protocols

import (
	"fmt"
	"sort"

	"dcpim/internal/metrics"
	"dcpim/internal/netsim"
	"dcpim/internal/stats"
)

// AttachOptions carries everything a protocol needs at attach time
// beyond the fabric itself.
type AttachOptions struct {
	// Collector receives flow lifecycle records; required.
	Collector *stats.Collector
	// Metrics, when non-nil, is the run's telemetry registry: the
	// protocol registers its instruments (window occupancy, cwnd,
	// sent/granted bytes, ...) on it. Nil disables telemetry at zero
	// cost.
	Metrics *metrics.Registry
	// ProtoConfig optionally overrides the protocol's default
	// configuration. Each descriptor documents the concrete type it
	// accepts (e.g. *core.Config for "dcpim"); nil selects defaults.
	ProtoConfig any
}

// Descriptor is one registered transport.
type Descriptor struct {
	// Name is the registry key ("dcpim", "homa-aeolus", ...).
	Name string
	// FabricConfig returns the netsim configuration the protocol
	// expects (dataplane features, multipathing mode).
	FabricConfig func() netsim.Config
	// Attach installs the protocol on every host of the fabric and
	// registers its instruments when opts.Metrics is set.
	Attach func(f *netsim.Fabric, opts AttachOptions)
}

var registry = map[string]Descriptor{}

// Register adds a descriptor; protocol packages call it from init.
// Panics on a duplicate or incomplete descriptor — both are programming
// errors caught at process start.
func Register(d Descriptor) {
	if d.Name == "" || d.FabricConfig == nil || d.Attach == nil {
		panic("protocols: incomplete descriptor")
	}
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("protocols: %q registered twice", d.Name))
	}
	registry[d.Name] = d
}

// Lookup resolves a registered protocol by name.
func Lookup(name string) (Descriptor, bool) {
	d, ok := registry[name]
	return d, ok
}

// MustLookup resolves a protocol or panics with the registered names —
// the caller passed an unknown protocol string.
func MustLookup(name string) Descriptor {
	d, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("protocols: unknown protocol %q (registered: %v)", name, Names()))
	}
	return d
}

// Names lists the registered protocols in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
