package core

import (
	"math"
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// harness builds a dcPIM deployment over a topology and runs a trace.
type harness struct {
	eng    *sim.Engine
	fab    *netsim.Fabric
	col    *stats.Collector
	protos []*Proto
	tp     *topo.Topology
}

func newHarness(topoCfg topo.LeafSpineConfig, cfg Config, seed int64) *harness {
	eng := sim.NewEngine(seed)
	tp := topoCfg.Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	col := stats.NewCollector(10 * sim.Microsecond)
	protos := Attach(fab, cfg, col)
	fab.Start()
	return &harness{eng: eng, fab: fab, col: col, protos: protos, tp: tp}
}

func (h *harness) run(tr *workload.Trace, horizon sim.Duration) {
	h.fab.Inject(tr)
	h.eng.Run(sim.Time(horizon))
}

func TestTimingDerivation(t *testing.T) {
	tp := topo.DefaultLeafSpine().Build()
	tm := deriveTiming(DefaultConfig(), tp)
	if tm.stages != 9 {
		t.Fatalf("stages = %d, want 2r+1 = 9", tm.stages)
	}
	// §3.4's worked example: epoch (2r+1)·β·cRTT/2 ≈ 30.4 µs.
	if us := tm.epochLen.Microseconds(); us < 29.5 || us > 31.5 {
		t.Fatalf("epoch = %.2fus, want ≈30.4us", us)
	}
	// Short-flow threshold defaults to 1 BDP = 72.5 KB.
	if tm.shortThresh < 71000 || tm.shortThresh > 74000 {
		t.Fatalf("short threshold = %d, want ≈72500", tm.shortThresh)
	}
	if tm.windowPkts < 45 || tm.windowPkts > 55 {
		t.Fatalf("window = %d packets, want ≈50", tm.windowPkts)
	}
	// Each of the 4 channels carries epoch·rate/4 ≈ 95 KB per phase.
	if tm.channelBytes < 85_000 || tm.channelBytes > 105_000 {
		t.Fatalf("channelBytes = %d, want ≈95K", tm.channelBytes)
	}
}

func TestPrioForRemaining(t *testing.T) {
	bdp := int64(72500)
	if p := prioForRemaining(bdp, bdp); p != packet.PrioDataHigh {
		t.Fatalf("1BDP prio = %d", p)
	}
	if p := prioForRemaining(1000*bdp, bdp); p != packet.PrioDataHigh+4 {
		t.Fatalf("huge prio = %d", p)
	}
	// Monotone non-decreasing in remaining.
	last := uint8(0)
	for _, r := range []int64{1, bdp, 5 * bdp, 20 * bdp, 100 * bdp, 300 * bdp} {
		p := prioForRemaining(r, bdp)
		if p < last {
			t.Fatalf("priority not monotone at %d", r)
		}
		last = p
	}
}

func TestSingleShortFlowNearOptimal(t *testing.T) {
	h := newHarness(topo.SmallLeafSpine(), DefaultConfig(), 1)
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 10_000, Arrival: sim.Time(50 * sim.Microsecond)},
	}}
	h.run(tr, 500*sim.Microsecond)
	recs := h.col.Records()
	if len(recs) != 1 {
		t.Fatalf("completed %d flows, want 1", len(recs))
	}
	if sd := recs[0].Slowdown(); sd > 1.25 {
		t.Fatalf("unloaded short flow slowdown = %.3f, want ≈1", sd)
	}
}

func TestSingleLongFlowCompletes(t *testing.T) {
	h := newHarness(topo.SmallLeafSpine(), DefaultConfig(), 2)
	size := int64(1_000_000)
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: size, Arrival: sim.Time(10 * sim.Microsecond)},
	}}
	h.run(tr, 5*sim.Millisecond)
	recs := h.col.Records()
	if len(recs) != 1 {
		t.Fatalf("completed %d flows, want 1", len(recs))
	}
	// A lone long flow waits ≤ ~2 epochs to match, then transmits at one
	// channel per matched round... but with unlimited demand it asks for
	// all k channels, i.e. full line rate. Unloaded FCT is ~84 µs; allow
	// the matching pipeline plus per-channel pacing slack.
	fct := recs[0].FCT()
	opt := h.tp.UnloadedFCT(0, 7, size)
	if fct < opt {
		t.Fatalf("FCT %v below optimal %v", fct, opt)
	}
	tm := deriveTiming(DefaultConfig(), h.tp)
	if fct > opt+sim.Duration(4)*tm.epochLen {
		t.Fatalf("FCT %v ≫ optimal %v + 4 epochs", fct, opt)
	}
	if h.col.DeliveredBytes() != size {
		t.Fatalf("delivered %d bytes, want %d", h.col.DeliveredBytes(), size)
	}
}

func TestMediumFlowMatchesBeforeSending(t *testing.T) {
	// A 100 KB flow (just above 1 BDP) must go through matching: its FCT
	// includes at least the tail of a matching phase, and no data packet
	// may carry the short-flow priority.
	h := newHarness(topo.SmallLeafSpine(), DefaultConfig(), 3)
	var shortPrio, dataPkts int
	h.fab.AddObserver(netsim.ObserverFuncs{Delivered: func(host int, p *packet.Packet) {
		if p.Kind == packet.Data {
			dataPkts++
			if p.Priority == packet.PrioShort {
				shortPrio++
			}
		}
	}})
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 100_000, Arrival: sim.Time(5 * sim.Microsecond)},
	}}
	h.run(tr, 2*sim.Millisecond)
	if len(h.col.Records()) != 1 {
		t.Fatalf("flow did not complete")
	}
	if dataPkts == 0 || shortPrio != 0 {
		t.Fatalf("long flow data: %d pkts, %d at short priority (want 0)", dataPkts, shortPrio)
	}
}

func TestShortFlowBypassesMatching(t *testing.T) {
	// A 10 KB flow must be delivered entirely at the short-flow priority.
	h := newHarness(topo.SmallLeafSpine(), DefaultConfig(), 4)
	var wrongPrio int
	h.fab.AddObserver(netsim.ObserverFuncs{Delivered: func(host int, p *packet.Packet) {
		if p.Kind == packet.Data && p.Priority != packet.PrioShort {
			wrongPrio++
		}
	}})
	tr := &workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 1, Dst: 6, Size: 10_000, Arrival: 0},
	}}
	h.run(tr, 300*sim.Microsecond)
	if len(h.col.Records()) != 1 {
		t.Fatal("short flow did not complete")
	}
	if wrongPrio != 0 {
		t.Fatalf("%d short-flow packets left the short priority", wrongPrio)
	}
}

func TestAllToAllModerateLoad(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	h := newHarness(cfgT, DefaultConfig(), 5)
	tr := workload.AllToAllConfig{
		Hosts: 8, HostRate: cfgT.HostRate, Load: 0.5,
		Dist: workload.IMC10(), Horizon: 2 * sim.Millisecond, Seed: 7,
	}.Generate()
	h.run(tr, 4*sim.Millisecond) // 2 ms extra drain
	done := h.col.Completed()
	total := int64(len(tr.Flows))
	if done < total*97/100 {
		t.Fatalf("completed %d/%d flows", done, total)
	}
	short := stats.Summarize(h.col.Records(), func(r stats.FlowRecord) bool {
		return r.Size <= h.tp.BDP()
	})
	if short.Mean > 1.6 {
		t.Fatalf("short-flow mean slowdown = %.2f at load 0.5, want near 1", short.Mean)
	}
	if short.P99 > 3 {
		t.Fatalf("short-flow p99 slowdown = %.2f, want small", short.P99)
	}
	if h.fab.Counters.DataDrops > total/50 {
		t.Fatalf("drops = %d, too many for matched traffic", h.fab.Counters.DataDrops)
	}
}

func TestIncastShortFlowRecovery(t *testing.T) {
	// Extreme incast of unscheduled short flows with small buffers forces
	// drops; every flow must still complete via matching-based recovery.
	eng := sim.NewEngine(11)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{
		Spray:           true,
		PortBufferBytes: 20 * packet.MTU,
	})
	col := stats.NewCollector(0)
	Attach(fab, DefaultConfig(), col)
	fab.Start()
	var flows []workload.Flow
	for src := 1; src < 8; src++ {
		flows = append(flows, workload.Flow{
			ID: uint64(src), Src: src, Dst: 0, Size: 40_000, Arrival: 0,
		})
	}
	fab.Inject(&workload.Trace{Flows: flows})
	eng.Run(sim.Time(5 * sim.Millisecond))
	if fab.Counters.DataDrops == 0 {
		t.Fatal("test premise broken: no drops under 7:1 incast with 30KB buffers")
	}
	if col.Completed() != 7 {
		t.Fatalf("completed %d/7 incast flows after drops", col.Completed())
	}
}

func TestDenseMatrixUtilization(t *testing.T) {
	// 8×7 all-pairs long flows: dcPIM's matching should keep the fabric
	// busy and finish everything.
	cfgT := topo.SmallLeafSpine()
	h := newHarness(cfgT, DefaultConfig(), 12)
	tr := workload.DenseTMConfig{Hosts: 8, FlowSize: 400_000, Horizon: sim.Millisecond}.Generate()
	h.run(tr, 6*sim.Millisecond)
	if got, want := h.col.Completed(), int64(56); got != want {
		t.Fatalf("completed %d/%d dense flows", got, want)
	}
	// Aggregate: 56 × 400 KB = 22.4 MB over 8 hosts at 100G ⇒ ≥ 17.9 µs
	// per host minimum. Require ≥ 50% average utilization while active.
	last := h.col.Records()[0].Finish
	for _, r := range h.col.Records() {
		if r.Finish > last {
			last = r.Finish
		}
	}
	util := float64(h.col.DeliveredBytes()) * 8 / (cfgT.HostRate * float64(8) * last.Seconds())
	if util < 0.5 {
		t.Fatalf("dense-matrix utilization = %.2f, want ≥0.5", util)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, sim.Duration, uint64) {
		cfgT := topo.SmallLeafSpine()
		h := newHarness(cfgT, DefaultConfig(), 33)
		tr := workload.AllToAllConfig{
			Hosts: 8, HostRate: cfgT.HostRate, Load: 0.6,
			Dist: workload.WebSearch(), Horizon: sim.Millisecond, Seed: 9,
		}.Generate()
		h.run(tr, 2*sim.Millisecond)
		var sum sim.Duration
		for _, r := range h.col.Records() {
			sum += r.FCT()
		}
		return h.col.Completed(), sum, h.eng.Events()
	}
	c1, s1, e1 := run()
	c2, s2, e2 := run()
	if c1 != c2 || s1 != s2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d,%v,%d) vs (%d,%v,%d)", c1, s1, e1, c2, s2, e2)
	}
	if c1 == 0 {
		t.Fatal("no flows completed")
	}
}

func TestTokenWindowInvariant(t *testing.T) {
	// During a run, no flow's outstanding tokens may exceed the window.
	cfgT := topo.SmallLeafSpine()
	h := newHarness(cfgT, DefaultConfig(), 21)
	tr := workload.DenseTMConfig{Hosts: 8, FlowSize: 300_000, Horizon: sim.Millisecond}.Generate()
	h.fab.Inject(tr)
	tm := deriveTiming(DefaultConfig(), h.tp)
	for step := 0; step < 300; step++ {
		h.eng.Run(h.eng.Now().Add(10 * sim.Microsecond))
		for _, p := range h.protos {
			for _, f := range p.rcv.flows {
				if f.done {
					continue
				}
				if f.outstanding > tm.windowPkts {
					t.Fatalf("flow %d outstanding %d > window %d",
						f.id, f.outstanding, tm.windowPkts)
				}
				if f.untokenedCnt < 0 || f.outstanding < 0 {
					t.Fatalf("flow %d negative counters", f.id)
				}
			}
			if p.snd.reserved < 0 {
				t.Fatalf("host %d negative reserved grant budget", p.id)
			}
			if p.rcv.used > p.cfg.Channels {
				t.Fatalf("host %d accepted %d > k channels", p.id, p.rcv.used)
			}
		}
	}
}

func TestChannelBudgetsRespected(t *testing.T) {
	// Receivers never accept more than k channels; senders' committed
	// grants only exceed k in the rare late-accept case (none here, since
	// the fabric is lossless for control in this test).
	cfgT := topo.SmallLeafSpine()
	h := newHarness(cfgT, DefaultConfig(), 8)
	tr := workload.DenseTMConfig{Hosts: 8, FlowSize: 500_000, Horizon: sim.Millisecond}.Generate()
	h.fab.Inject(tr)
	for step := 0; step < 200; step++ {
		h.eng.Run(h.eng.Now().Add(10 * sim.Microsecond))
		for _, p := range h.protos {
			tot := 0
			for _, ch := range p.rcv.matchedNow {
				tot += ch
			}
			if tot > p.cfg.Channels {
				t.Fatalf("host %d matched %d channels in a phase (k=%d)", p.id, tot, p.cfg.Channels)
			}
			if p.snd.committed > p.cfg.Channels {
				t.Fatalf("host %d sender committed %d > k", p.id, p.snd.committed)
			}
		}
	}
}

func TestNotificationLossRecovered(t *testing.T) {
	// Drop the first notification artificially by using a tiny control
	// budget... control packets share the 500KB buffer and never drop in
	// this fabric, so instead verify the retransmission timer directly:
	// a notification whose ack never comes is re-sent each cRTT.
	h := newHarness(topo.SmallLeafSpine(), DefaultConfig(), 14)
	p := h.protos[0]
	sent := 0
	h.fab.AddObserver(netsim.ObserverFuncs{Delivered: func(host int, pkt *packet.Packet) {
		if pkt.Kind == packet.Notification {
			sent++
		}
	}})
	// Bypass the fabric's flow injection and cut the ack path by pointing
	// the flow at a host, then counting notification deliveries.
	p.OnFlowArrival(workload.Flow{ID: 99, Src: 0, Dst: 7, Size: 500_000, Arrival: 0})
	h.eng.Run(sim.Time(100 * sim.Microsecond))
	if sent < 1 {
		t.Fatal("notification never delivered")
	}
	// Ack arrives, so exactly one send: the timer must have been
	// cancelled (no duplicate notifications in a lossless run).
	if sent != 1 {
		t.Fatalf("notifications delivered = %d, want 1 (timer not cancelled?)", sent)
	}
}

func TestGoodputMatchesOffered(t *testing.T) {
	// At a sustainable load, delivered payload must track offered bytes.
	cfgT := topo.SmallLeafSpine()
	h := newHarness(cfgT, DefaultConfig(), 17)
	tr := workload.AllToAllConfig{
		Hosts: 8, HostRate: cfgT.HostRate, Load: 0.4,
		Dist: workload.IMC10(), Horizon: 2 * sim.Millisecond, Seed: 3,
	}.Generate()
	h.run(tr, 4*sim.Millisecond)
	frac := float64(h.col.DeliveredBytes()) / float64(tr.OfferedBytes)
	if math.Abs(frac-1) > 0.02 {
		t.Fatalf("delivered/offered = %.3f, want ≈1", frac)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	New(Config{Rounds: 0, Channels: 1, Beta: 1}, stats.NewCollector(0))
}
