package core

import (
	"sort"

	"dcpim/internal/checkpoint"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
)

// Checkpoint capture for the dcPIM protocol core: CaptureState serializes
// one host's complete protocol state — matching progress, sender flow
// slab with its sent bitsets, receiver flow slab with its 2-bit seq
// states, token queues, buffered control packets, token loops, and every
// live timer deadline — canonically: maps are walked in sorted key order
// and slab free lists (pure allocator state) are excluded, so equal
// protocol states always serialize to equal bytes. netsim discovers this
// method through the StateCaptor interface; restore is by verified replay
// (experiments.Resume), never by mutating a live Proto.

// CaptureState implements netsim.StateCaptor.
func (p *Proto) CaptureState(enc *checkpoint.Encoder) {
	enc.I64(p.tick)
	enc.I64(p.epoch)
	p.snd.captureState(enc)
	p.rcv.captureState(enc)
}

func (s *sender) captureState(enc *checkpoint.Encoder) {
	enc.I64(s.matchEpoch)
	enc.I64(int64(s.committed))
	enc.I64(int64(s.reserved))
	enc.I64(s.dataEpoch)
	enc.Bool(s.pacing)
	enc.U32(uint32(len(s.rounds)))
	for _, r := range s.rounds {
		enc.I64(int64(r.granted))
		enc.I64(int64(r.accepted))
		enc.Bool(r.released)
	}
	enc.U32(uint32(len(s.tokens)))
	for _, tk := range s.tokens {
		captureCtlPacket(enc, tk)
	}
	enc.U32(uint32(len(s.rtsBuf)))
	for _, round := range s.rtsBuf {
		enc.U32(uint32(len(round)))
		for _, rts := range round {
			captureCtlPacket(enc, rts)
		}
	}
	enc.U32(uint32(len(s.flows)))
	for _, id := range sortedU64Keys(s.flows) {
		f := s.flows[id]
		enc.U64(f.id)
		enc.I64(int64(f.dst))
		enc.I64(f.size)
		enc.I64(int64(f.arrival))
		enc.I64(int64(f.npkts))
		enc.Bool(f.short)
		enc.I64(int64(f.sentCnt))
		// Only the words covering npkts are state; the backing array may
		// be larger from a recycled record.
		for w := 0; w < (f.npkts+63)>>6; w++ {
			enc.U64(f.sent[w])
		}
		enc.Bool(f.notifAcked)
		enc.Bool(f.finSent)
		enc.Bool(f.done)
		captureTimer(enc, f.notifTimer)
		captureTimer(enc, f.finTimer)
		captureTimer(enc, f.burstTimer)
	}
}

func (r *receiver) captureState(enc *checkpoint.Encoder) {
	enc.I64(r.matchEpoch)
	enc.I64(int64(r.used))
	enc.I64(int64(r.matchedTotal))
	enc.U32(uint32(len(r.flows)))
	for _, id := range sortedU64Keys(r.flows) {
		f := r.flows[id]
		enc.U64(f.id)
		enc.I64(int64(f.src))
		enc.I64(f.size)
		enc.I64(int64(f.arrival))
		enc.I64(int64(f.npkts))
		enc.Bool(f.short)
		enc.I64(int64(f.nextNew))
		enc.I64(int64(f.outstanding))
		enc.I64(int64(f.untokenedCnt))
		enc.I64(int64(f.receivedCnt))
		enc.I64(f.receivedByte)
		enc.Bool(f.eligible)
		enc.Bool(f.done)
		for w := 0; w < (f.npkts+31)>>5; w++ {
			enc.U64(f.state[w])
		}
		enc.U32(uint32(len(f.tokened)))
		for _, tr := range f.tokened {
			enc.I64(int64(tr.seq))
			enc.I64(int64(tr.epoch))
		}
		enc.U32(uint32(len(f.retx)))
		for _, seq := range f.retx {
			enc.I64(int64(seq))
		}
		captureTimer(enc, f.recoverTimer)
	}
	// Completed-flow ids are remembered forever; fold them instead of
	// listing, keeping capture size independent of run length.
	enc.U32(uint32(len(r.doneFlows)))
	h := uint64(checkpoint.FoldInit)
	for _, id := range sortedU64Keys(r.doneFlows) {
		h = checkpoint.Fold(h, id)
	}
	enc.U64(h)
	enc.U32(uint32(len(r.planned)))
	for _, src := range sortedKeys(r.planned) {
		enc.I64(int64(src))
		enc.I64(r.planned[src])
	}
	enc.U32(uint32(len(r.grantBuf)))
	for _, round := range r.grantBuf {
		enc.U32(uint32(len(round)))
		for _, g := range round {
			captureCtlPacket(enc, g)
		}
	}
	enc.U32(uint32(len(r.matchedNext)))
	for _, src := range sortedKeys(r.matchedNext) {
		enc.I64(int64(src))
		enc.I64(int64(r.matchedNext[src]))
	}
	enc.U32(uint32(len(r.matchedNow)))
	for _, src := range sortedKeys(r.matchedNow) {
		enc.I64(int64(src))
		enc.I64(int64(r.matchedNow[src]))
	}
	enc.U32(uint32(len(r.loops)))
	for _, src := range sortedKeys(r.loops) {
		l := r.loops[src]
		enc.I64(int64(l.src))
		enc.I64(int64(l.channels))
		enc.I64(int64(l.interval))
		enc.I64(l.epoch)
		enc.Bool(l.stalled)
		captureTimer(enc, l.timer)
	}
}

// captureTimer records a timer as (active, deadline) — the logical state;
// the event object identity behind the handle is allocator bookkeeping.
func captureTimer(enc *checkpoint.Encoder, t sim.Timer) {
	enc.Bool(t.Active())
	enc.I64(int64(t.At()))
}

// captureCtlPacket serializes a protocol-held control packet (tokens,
// buffered RTS/grants). These never carry payload or INT state.
func captureCtlPacket(enc *checkpoint.Encoder, p *packet.Packet) {
	enc.U8(uint8(p.Kind))
	enc.I64(int64(p.Src))
	enc.I64(int64(p.Dst))
	enc.U64(p.Flow)
	enc.I64(int64(p.Seq))
	enc.U8(p.Priority)
	enc.I64(p.FlowSize)
	enc.I64(p.Remaining)
	enc.I64(int64(p.Round))
	enc.I64(p.Epoch)
	enc.I64(int64(p.Channels))
	enc.I64(int64(p.Count))
}

// sortedU64Keys returns map keys in ascending order, for deterministic
// iteration over the flow slabs (the uint64 sibling of sortedKeys).
func sortedU64Keys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
