package core

import (
	"fmt"

	"dcpim/internal/metrics"
	"dcpim/internal/netsim"
	"dcpim/internal/protocols"
)

// instruments is the optional telemetry of a dcPIM run, shared by every
// host's Proto. The zero value is fully inert — nil instrument pointers
// no-op — so uninstrumented runs carry no telemetry branches and no
// allocations.
type instruments struct {
	// tokensOutstanding is the fabric-wide token-window occupancy: tokens
	// issued whose data has not yet arrived. The paper's buffer-bound
	// argument (§3.4) says this stays near one BDP per matched channel.
	tokensOutstanding *metrics.Gauge
	tokensIssued      *metrics.Counter
	tokensReverted    *metrics.Counter // tokens whose data never arrived (re-admitted)

	// unschedBytes / schedBytes split transmitted wire bytes into the
	// short-flow unscheduled bypass and token-admitted traffic; their
	// ratio is the unscheduled-bypass share.
	unschedBytes *metrics.Counter
	schedBytes   *metrics.Counter

	// matchedChannels is the fabric-wide matched channel count of the
	// data phase currently executing.
	matchedChannels *metrics.Gauge

	// roundAccepts[r] counts channels accepted in matching round r —
	// the per-round matched-pair convergence Theorem 1 bounds.
	roundAccepts []*metrics.Counter
}

// roundAccept credits accepted channels to a matching round.
func (ins *instruments) roundAccept(round, channels int) {
	if round >= 0 && round < len(ins.roundAccepts) {
		ins.roundAccepts[round].Add(int64(channels))
	}
}

// RegisterMetrics instruments every Proto of one run on reg (no-op when
// reg is nil). The instruments aggregate across hosts: counters and
// gauges are updated in deterministic event order, so sampled series are
// reproducible.
func RegisterMetrics(ps []*Proto, reg *metrics.Registry) {
	if reg == nil || len(ps) == 0 {
		return
	}
	ins := instruments{
		tokensOutstanding: reg.Gauge("core/tokens_outstanding"),
		tokensIssued:      reg.Counter("core/tokens_issued"),
		tokensReverted:    reg.Counter("core/tokens_reverted"),
		unschedBytes:      reg.Counter("core/unsched_bytes"),
		schedBytes:        reg.Counter("core/sched_bytes"),
		matchedChannels:   reg.Gauge("core/matched_channels"),
	}
	rounds := ps[0].cfg.Rounds
	ins.roundAccepts = make([]*metrics.Counter, rounds)
	for r := 0; r < rounds; r++ {
		ins.roundAccepts[r] = reg.Counter(fmt.Sprintf("core/match/round%d_accepted_channels", r))
	}
	for _, p := range ps {
		p.ins = ins
	}
}

// Register dcPIM with the protocol registry. ProtoConfig accepts a
// *Config override (RunSpec.DcPIM plumbs through it).
func init() {
	protocols.Register(protocols.Descriptor{
		Name:         "dcpim",
		FabricConfig: func() netsim.Config { return netsim.Config{Spray: true} },
		Attach: func(f *netsim.Fabric, opts protocols.AttachOptions) {
			cfg := DefaultConfig()
			if c, ok := opts.ProtoConfig.(*Config); ok && c != nil {
				cfg = *c
			}
			RegisterMetrics(Attach(f, cfg, opts.Collector), opts.Metrics)
		},
	})
}
