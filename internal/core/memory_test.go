package core

import (
	"runtime"
	"testing"

	"dcpim/internal/sim"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// bytesPerFlowBudget is the enforced steady-state memory cost per
// completed flow (see DESIGN.md §13). With flow records slab-recycled
// and per-packet state bit-packed, what remains per flow after
// completion is the collector's FlowRecord (~72 B), the receiver's
// done-flow id, and amortized map/slice growth. The budget leaves
// roughly 2× headroom over the measured figure so it catches regressions
// (a leaked record or timer per flow costs hundreds of bytes), not
// allocator noise.
const bytesPerFlowBudget = 600

// TestSteadyStateBytesPerFlow measures the marginal heap cost per flow
// at steady state: run a warmup wave (populating slabs, buffers, and
// maps), snapshot the live heap, run more waves of the same shape, and
// require the live-heap delta per additional completed flow to stay
// under the budget. Slab recycling is what makes this pass — before it,
// every flow left its record, packed state, and timer closures behind.
func TestSteadyStateBytesPerFlow(t *testing.T) {
	cfgT := topo.SmallLeafSpine()
	h := newHarness(cfgT, DefaultConfig(), 11)

	gen := func(seed int64, start sim.Duration) *workload.Trace {
		tr := workload.AllToAllConfig{
			Hosts: 8, HostRate: cfgT.HostRate, Load: 0.5,
			Dist: workload.IMC10(), Horizon: 2 * sim.Millisecond, Seed: seed,
		}.Generate()
		for i := range tr.Flows {
			tr.Flows[i].Arrival = tr.Flows[i].Arrival.Add(start)
			tr.Flows[i].ID += uint64(seed) << 32 // unique across waves
		}
		return tr
	}

	heapLive := func() uint64 {
		runtime.GC()
		runtime.GC() // second cycle collects what the first's finalizers released
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}

	wave := sim.Duration(3 * sim.Millisecond) // 2 ms arrivals + 1 ms drain
	h.run(gen(1, 0), wave)
	warmup := h.col.Completed()
	if warmup == 0 {
		t.Fatal("warmup wave completed no flows")
	}
	base := heapLive()

	const waves = 4
	for w := int64(0); w < waves; w++ {
		h.fab.Inject(gen(2+w, sim.Duration(int64(wave)*(w+1))))
		h.eng.Run(sim.Time(sim.Duration(int64(wave) * (w + 2))))
	}
	grown := heapLive()

	flows := h.col.Completed() - warmup
	if flows < 1000 {
		t.Fatalf("only %d steady-state flows; wave shape too small to measure", flows)
	}
	var perFlow int64
	if grown > base {
		perFlow = int64(grown-base) / flows
	}
	t.Logf("steady state: %d flows, live heap %d → %d, %d B/flow (budget %d)",
		flows, base, grown, perFlow, bytesPerFlowBudget)
	if perFlow > bytesPerFlowBudget {
		t.Fatalf("steady-state cost %d B/flow exceeds the %d B/flow budget",
			perFlow, bytesPerFlowBudget)
	}
	// The records the collector must keep forever are the budget's floor;
	// sanity-check the measurement itself is not vacuous.
	if len(h.col.Records()) == 0 {
		t.Fatal("collector kept no records; measurement is vacuous")
	}
}
