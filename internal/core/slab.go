package core

// Compact per-flow state. A 1024-host run at high load holds 10^4–10^6
// concurrent flows, so per-flow footprint is a first-order memory cost:
// the per-packet bookkeeping is packed to 1 bit (sender sent-marks) and
// 2 bits (receiver packet states) per sequence number instead of one
// bool/byte each, and flow records recycle through per-host free lists
// so steady state allocates nothing per flow beyond what must outlive it
// (the completion record and the done-flow id). The measured budget is
// enforced by TestSteadyStateBytesPerFlow and recorded in DESIGN.md §13.

// bitset is a packed bit vector (sender-side sent marks).
type bitset []uint64

// grow returns a zeroed bitset able to hold n bits, reusing b's backing
// array when it is large enough.
func (b bitset) grow(n int) bitset {
	w := (n + 63) >> 6
	if cap(b) >= w {
		b = b[:w]
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make(bitset, w)
}

func (b bitset) get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }

// twoBits is a packed 2-bit-per-entry vector (receiver-side seq states:
// seqUntokened/seqTokened/seqReceived).
type twoBits []uint64

// grow returns a zeroed vector able to hold n entries, reusing t's
// backing array when large enough. Zero is seqUntokened, the initial
// state of every sequence number.
//
//lint:coldpath amortized slab growth; recycled backing arrays make steady state zero-alloc once the largest flow shape has been seen
func (t twoBits) grow(n int) twoBits {
	w := (n + 31) >> 5
	if cap(t) >= w {
		t = t[:w]
		for i := range t {
			t[i] = 0
		}
		return t
	}
	return make(twoBits, w)
}

func (t twoBits) get(i int) uint8 {
	return uint8(t[i>>5] >> ((uint(i) & 31) * 2) & 3)
}

func (t twoBits) set(i int, v uint8) {
	sh := (uint(i) & 31) * 2
	w := &t[i>>5]
	*w = *w&^(3<<sh) | uint64(v)<<sh
}

// newSendFlow takes a recycled record from the sender's free list, or
// makes one. Slices keep their backing arrays across recycles, so a
// host's flow churn settles into zero-allocation steady state once the
// largest flow shape has been seen.
func (s *sender) newSendFlow() *sendFlow {
	if n := len(s.freeFlows); n > 0 {
		f := s.freeFlows[n-1]
		s.freeFlows[n-1] = nil
		s.freeFlows = s.freeFlows[:n-1]
		return f
	}
	return &sendFlow{}
}

// recycleSendFlow cancels every timer that could still reference f —
// after this no live closure can observe the record — resets it, and
// returns it to the free list.
//
//lint:coldpath runs once per flow completion; the free-list append reuses capacity after warmup
func (s *sender) recycleSendFlow(f *sendFlow) {
	f.notifTimer.Cancel()
	f.finTimer.Cancel()
	f.burstTimer.Cancel()
	sent := f.sent
	*f = sendFlow{sent: sent}
	s.freeFlows = append(s.freeFlows, f)
}

// newRecvFlow takes a recycled record from the receiver's free list, or
// makes one.
//
//lint:coldpath runs once per flow arrival; the free list covers steady state, allocating only while flow concurrency grows
func (r *receiver) newRecvFlow() *recvFlow {
	if n := len(r.freeFlows); n > 0 {
		f := r.freeFlows[n-1]
		r.freeFlows[n-1] = nil
		r.freeFlows = r.freeFlows[:n-1]
		return f
	}
	return &recvFlow{}
}

// recycleRecvFlow cancels the short-flow recovery timer (the only
// closure that can outlive the flow), resets the record keeping slice
// backings, and returns it to the free list.
//
//lint:coldpath runs once per flow completion; the free-list append reuses capacity after warmup
func (r *receiver) recycleRecvFlow(f *recvFlow) {
	f.recoverTimer.Cancel()
	state, tokened, retx := f.state, f.tokened[:0], f.retx[:0]
	*f = recvFlow{state: state, tokened: tokened, retx: retx}
	r.freeFlows = append(r.freeFlows, f)
}
