package core

import (
	"math/rand"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/workload"
)

// Proto is one host's dcPIM instance: it plays both the sender and the
// receiver role simultaneously. It implements netsim.Protocol.
// Proto's checkpoint (core/checkpoint.go) captures the protocol state
// machine — tick, epoch, and both role halves. The fields below it are
// wiring and configuration the resuming run reconstructs through the same
// deterministic setup before Restore runs.
type Proto struct {
	cfg Config           //ckpt:skip construction input, supplied again by the resuming run
	tm  timing           //ckpt:skip derived from cfg at Attach
	col *stats.Collector //ckpt:skip collector wiring; the Collector captures its own state
	ins instruments      //ckpt:skip optional telemetry wiring, re-registered at setup

	host *netsim.Host //ckpt:skip attachment wiring, re-established by Attach
	eng  *sim.Engine  //ckpt:skip attachment wiring, re-established by Attach
	rng  *rand.Rand   //ckpt:skip aliases the host's stream; its position is captured as Host draws
	id   int          //ckpt:skip topology identity, re-established by Attach

	tick  int64 // stage ticks elapsed
	epoch int64 // current epoch (data phase) index

	snd sender
	rcv receiver
}

// New returns an unattached dcPIM host protocol. The same Config and
// Collector are normally shared across all hosts of a fabric (see Attach).
func New(cfg Config, col *stats.Collector) *Proto {
	if cfg.Rounds < 1 || cfg.Channels < 1 || cfg.Beta <= 0 {
		panic("core: invalid dcPIM config")
	}
	return &Proto{cfg: cfg, col: col}
}

// Attach creates a dcPIM instance on every host of the fabric, all sharing
// cfg, and returns them. Each instance records into col's child collector
// for its host's shard, so completions never contend across shards; col's
// readers merge the children deterministically.
func Attach(fab *netsim.Fabric, cfg Config, col *stats.Collector) []*Proto {
	protos := make([]*Proto, fab.Topology().NumHosts)
	for i := range protos {
		protos[i] = New(cfg, col.ForShard(fab.ShardOfHost(i)))
		fab.AttachProtocol(i, protos[i])
	}
	return protos
}

// Start implements netsim.Protocol: derives timing from the topology and
// launches the per-stage ticker driving the matching state machine.
func (p *Proto) Start(h *netsim.Host) {
	p.host = h
	p.eng = h.Engine()
	p.rng = h.Rng()
	p.id = h.ID()
	p.tm = deriveTiming(p.cfg, h.Topo())
	p.snd.init(p)
	p.rcv.init(p)
	p.epoch = -1 // first onStage call (tick 0) opens epoch 0
	start := sim.Time(0)
	if p.cfg.MaxClockSkew > 0 {
		start = start.Add(sim.Duration(p.rng.Int63n(int64(p.cfg.MaxClockSkew))))
	}
	p.eng.Schedule(start, p.onStage)
}

// Timing exposes derived protocol timing (tests and experiments).
func (p *Proto) Timing() struct {
	StageLen, EpochLen sim.Duration
	ChannelBytes       int64
	ShortThresh        int64
} {
	return struct {
		StageLen, EpochLen sim.Duration
		ChannelBytes       int64
		ShortThresh        int64
	}{p.tm.stageLen, p.tm.epochLen, p.tm.channelBytes, p.tm.shortThresh}
}

// onStage fires every stage length; stage index cycles through the 2r+1
// stages of the pipelined matching phase. Each host uses only its local
// clock (§3.5 asynchronous design).
func (p *Proto) onStage() {
	stage := int(p.tick % int64(p.tm.stages))
	if stage == 0 {
		p.epoch++
		p.snd.onEpochStart(p.epoch)
		p.rcv.onEpochStart(p.epoch)
	}
	// The matching being computed during epoch e serves the data phase of
	// epoch e+1.
	matchEpoch := p.epoch + 1
	if stage%2 == 0 {
		round := stage / 2
		if round > 0 {
			p.rcv.acceptStage(matchEpoch, round-1)
		}
		if round < p.cfg.Rounds {
			p.rcv.requestStage(matchEpoch, round)
		}
	} else {
		round := (stage - 1) / 2
		p.snd.grantStage(matchEpoch, round)
	}
	p.tick++
	p.eng.After(p.tm.stageLen, p.onStage)
}

// OnFlowArrival implements netsim.Protocol (sender role).
func (p *Proto) OnFlowArrival(f workload.Flow) {
	p.col.FlowStarted()
	p.snd.flowArrival(f)
}

// OnPacket implements netsim.Protocol, dispatching by kind to the sender
// or receiver half.
//
//lint:hotpath per-packet fast path under the 0-alloc contract of BenchmarkDcPIMEndToEnd steady state
func (p *Proto) OnPacket(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.Data:
		p.rcv.onData(pkt)
	case packet.Notification:
		p.rcv.onNotification(pkt)
	case packet.FinishSender:
		p.rcv.onFinishSender(pkt)
	case packet.RTS:
		p.snd.onRTS(pkt)
	case packet.Accept:
		p.snd.onAccept(pkt)
	case packet.Token:
		p.snd.onToken(pkt)
	case packet.NotificationAck:
		p.snd.onNotificationAck(pkt)
	case packet.FinishReceiver:
		p.snd.onFinishReceiver(pkt)
	case packet.Grant:
		p.rcv.onGrant(pkt)
	}
}

// send stamps and transmits a packet from this host.
func (p *Proto) send(pkt *packet.Packet) {
	pkt.Src = p.id
	p.host.Send(pkt)
}
